package shmem

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	cl, err := DeployABD(5, 2, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	v := MakeValue(64, 1)
	if err := Write(cl, 0, v); err != nil {
		t.Fatal(err)
	}
	got, err := Read(cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatalf("read %q, want %q", got, v)
	}
	if err := CheckAtomic(cl.Sys.History(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorValidation(t *testing.T) {
	cl, err := DeployABD(3, 1, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	err = Write(cl, 5, []byte("x"))
	if err == nil {
		t.Error("out-of-range writer must fail")
	} else if !strings.Contains(err.Error(), "writer index 5 out of range [0,1)") {
		t.Errorf("writer error %q does not name the valid range", err)
	}
	_, err = Read(cl, 5)
	if err == nil {
		t.Error("out-of-range reader must fail")
	} else if !strings.Contains(err.Error(), "reader index 5 out of range [0,1)") {
		t.Errorf("reader error %q does not name the valid range", err)
	}
}

// TestWriteStepBudgetTyped drives the single-op path into budget
// exhaustion: one delivery cannot complete a quorum write, and the bare
// kernel step-limit sentinel must surface as the typed ErrStepBudget.
// Write/Read share the same helper with the same DefaultStepBudget, which
// at full size is effectively unreachable for a live quorum — so the
// mapping is pinned at a tiny budget here.
func TestWriteStepBudgetTyped(t *testing.T) {
	cl, err := DeployABD(5, 2, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runClusterOp(cl, cl.Writers[0], Invocation{Kind: OpWrite, Value: MakeValue(64, 1)}, 1)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("budget-1 write error = %v, want ErrStepBudget", err)
	}
	if !strings.Contains(err.Error(), "budget 1 deliveries") {
		t.Errorf("error %q does not name the exhausted budget", err)
	}
	if DefaultStepBudget != 2000000 {
		t.Fatalf("DefaultStepBudget = %d, want the documented 2,000,000", DefaultStepBudget)
	}
}

// TestUnknownBackendIsTyped pins the unified selection error: Open with an
// unknown backend fails with the typed ErrUnknownBackend, whose message
// lists every valid name.
func TestUnknownBackendIsTyped(t *testing.T) {
	_, err := Open(Config{}, WithBackend("quantum"))
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("Open with unknown backend: err = %v, want ErrUnknownBackend", err)
	}
	for _, name := range StoreBackends() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list backend %q", err, name)
		}
	}
}

// TestWithTransportSelectsNetBackend pins the WithTransport option: it
// implies the net backend, and a Put/Get pair round-trips over real loopback
// sockets.
func TestWithTransportSelectsNetBackend(t *testing.T) {
	st, err := Open(Config{}, WithTransport("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Backend(); got != "net" {
		t.Fatalf("WithTransport backend = %q, want \"net\"", got)
	}
	ctx := context.Background()
	v := MakeValue(48, 7)
	if err := st.Put(ctx, 0, v); err != nil {
		t.Fatal(err)
	}
	out, err := st.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, v) {
		t.Fatalf("Get returned %d bytes, want the written value", len(out))
	}
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossBackendOpen is the PR's acceptance criterion: the same Config
// opened on "sim" and on "live" drives the same multi-key operation
// sequence through Put/Get, and both backends deliver passing consistency
// verdicts plus populated metrics.
func TestCrossBackendOpen(t *testing.T) {
	cfg := Config{
		Algorithms: []string{"cas", "abd-mwmr"},
		Servers:    5,
		F:          1,
		Shards:     3,
	}
	for _, backend := range StoreBackends() {
		t.Run(backend, func(t *testing.T) {
			st, err := Open(cfg, WithBackend(backend), WithClients(2, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			ctx := context.Background()
			seq := uint64(0)
			for round := 0; round < 2; round++ {
				for key := 0; key < 6; key++ {
					seq++
					if err := st.Put(ctx, key, MakeValue(64, seq)); err != nil {
						t.Fatalf("Put key %d: %v", key, err)
					}
					if _, err := st.Get(ctx, key); err != nil {
						t.Fatalf("Get key %d: %v", key, err)
					}
				}
			}
			if err := st.CheckConsistency(); err != nil {
				t.Errorf("CheckConsistency on %s: %v", backend, err)
			}
			m := st.Metrics()
			if m.Backend != backend {
				t.Errorf("Metrics.Backend = %q, want %q", m.Backend, backend)
			}
			if m.TotalWrites != 12 || m.TotalReads != 12 {
				t.Errorf("op counts = (%d, %d), want (12, 12)", m.TotalWrites, m.TotalReads)
			}
			if m.AggregateMaxTotalBits == 0 {
				t.Error("no storage metered")
			}
			// The client-selection path names valid ranges on both backends.
			if err := st.PutAs(ctx, 9, 0, MakeValue(64, 999)); err == nil ||
				!strings.Contains(err.Error(), "writer index 9 out of range [0,2)") {
				t.Errorf("PutAs range error = %v", err)
			}
		})
	}
}

// TestCrashRecoveryVisibleInMetrics opens a live-backend store whose fault
// scenario crashes and recovers f servers, drives a few interactive
// operations, and checks the wall-clock scheduler's crash, recovery and
// checkpoint counts surface in Store.Metrics — the ISSUE 8 observability
// contract.
func TestCrashRecoveryVisibleInMetrics(t *testing.T) {
	st, err := Open(Config{
		Algorithms: []string{"cas"},
		Servers:    5,
		F:          1,
		Shards:     1,
		Faults:     []string{"crash-f@50:150"},
		Live:       LiveConfig{StepDur: time.Millisecond},
	}, WithBackend("live"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	if err := st.Put(ctx, 0, MakeValue(64, 1)); err != nil {
		t.Fatal(err)
	}
	// Poll metrics until the scheduled crash and recovery (at 50ms and
	// 150ms) have both fired and been counted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := st.Metrics()
		if m.Faults.Crashes >= 1 && m.Faults.Recoveries >= 1 {
			if m.Faults.Checkpoints == 0 {
				t.Errorf("recovery fired with no checkpoints counted: %+v", m.Faults)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crash/recovery never surfaced in Metrics: %+v", m.Faults)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := st.Get(ctx, 0); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if err := st.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestMeasuredStorageRespectsAllApplicableBounds is the repository's
// central invariant (experiments E4-E7): every implemented algorithm's
// measured storage is at least every lower bound that applies to it.
func TestMeasuredStorageRespectsAllApplicableBounds(t *testing.T) {
	const valueBytes = 256
	log2V := float64(8 * valueBytes)

	cases := []struct {
		name    string
		deploy  func() (*Cluster, error)
		nu      int
		regular bool // SWSR regular algorithms: Theorems 4.1/5.1 apply
	}{
		{"abd-swmr", func() (*Cluster, error) { return DeployABD(5, 2, 1, 1, false) }, 1, true},
		{"abd-mwmr", func() (*Cluster, error) { return DeployABD(5, 2, 2, 1, true) }, 2, false},
		{"cas", func() (*Cluster, error) { return DeployCAS(7, 2, -1, 2, 1) }, 2, false},
		{"casgc", func() (*Cluster, error) { return DeployCAS(7, 2, 0, 2, 1) }, 2, false},
		{"two-version", func() (*Cluster, error) { return DeployTwoVersion(5, 2, 1) }, 1, true},
		{"two-version-gossip", func() (*Cluster, error) { return DeployTwoVersionGossip(5, 2, 1) }, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := tc.deploy()
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunWorkload(cl, WorkloadSpec{
				Seed: 3, Writes: 4 * tc.nu, Reads: 2, TargetNu: tc.nu, ValueBytes: valueBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			p := Params{N: len(cl.Servers), F: cl.F}
			measured := float64(res.Storage.MaxTotalBits)
			bounds := map[string]float64{
				"B.1": SingletonTotalBits(p, log2V),
			}
			if tc.regular {
				bounds["4.1"] = Theorem41TotalBits(p, log2V)
				bounds["5.1"] = Theorem51TotalBits(p, log2V)
			}
			if err := cl.Profile.Theorem65Applies(); err == nil {
				bounds["6.5"] = Theorem65TotalBits(p, res.PeakActiveWrites, log2V)
			}
			for name, b := range bounds {
				if measured < b {
					t.Errorf("measured %.0f bits violates Theorem %s bound %.0f", measured, name, b)
				}
			}
		})
	}
}

func TestFigure1MatchesPaperShape(t *testing.T) {
	p := Params{N: 21, F: 10}
	rows, err := Figure1(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Shape facts from the paper's Figure 1:
	// (1) lower bounds are ordered B.1 <= 5.1 <= 6.5 for nu >= 2;
	// (2) Theorem 6.5 meets the ABD line at nu = f+1 and saturates;
	// (3) the erasure upper bound crosses the ABD line between nu=5 and 6.
	for _, r := range rows {
		if r.TheoremB1 > r.Theorem51+1e-9 {
			t.Errorf("nu=%d: B.1 above 5.1", r.Nu)
		}
		if r.Nu >= 2 && r.Theorem51 > r.Theorem65+1e-9 {
			t.Errorf("nu=%d: 5.1 above 6.5", r.Nu)
		}
		if r.Theorem65 > r.ABD+1e-9 {
			t.Errorf("nu=%d: 6.5 above the ABD upper bound", r.Nu)
		}
	}
	if rows[11].Theorem65 != rows[16].Theorem65 {
		t.Error("Theorem 6.5 should saturate at nu = f+1")
	}
	if got := ReplicationCrossoverNu(p); got != 6 {
		t.Errorf("crossover %d, want 6", got)
	}
	if rows[5].Erasure >= rows[5].ABD || rows[6].Erasure < rows[6].ABD {
		t.Error("erasure/ABD crossover should fall between nu=5 and nu=6")
	}
}

func TestProofHarnessesViaFacade(t *testing.T) {
	cfg := ProofConfig{Build: TwoVersionBuilder(5, 2), FailServers: []int{3, 4}}
	vals := [][]byte{MakeValue(16, 1), MakeValue(16, 2), MakeValue(16, 3)}
	r41, err := cfg.RunTheorem41(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !r41.Injective {
		t.Error("Theorem 4.1 injectivity should hold")
	}
	rb, err := cfg.RunAppendixB(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Injective {
		t.Error("Appendix B injectivity should hold")
	}
	cas := ProofConfig{Build: CASBuilder(5, 2, 2), FailServers: []int{4}}
	r65, err := cas.RunTheorem65([][][]byte{
		{MakeValue(16, 1), MakeValue(16, 2)},
		{MakeValue(16, 3), MakeValue(16, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r65.AllRecovered {
		t.Error("CAS values should all be recoverable")
	}
}

func TestSection7ViaFacade(t *testing.T) {
	p := Params{N: 21, F: 10}
	c := Section7Summary(p, 4, 2.0)
	if c.Feasible {
		t.Error("g=2.0 < 42/13 should be infeasible")
	}
}

// Example_openPutGet is the quickstart: open a sharded atomic store on the
// deterministic simulator, write and read across keys, and verify the
// accumulated history.
func Example_openPutGet() {
	st, err := Open(Config{}, WithShards(2))
	if err != nil {
		panic(err)
	}
	defer st.Close()

	ctx := context.Background()
	if err := st.Put(ctx, 1, []byte("hello, shared memory")); err != nil {
		panic(err)
	}
	got, err := st.Get(ctx, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("key 1 reads %q\n", got)

	if err := st.CheckConsistency(); err != nil {
		panic(err)
	}
	fmt.Println("interactive history is consistent")
	// Output:
	// key 1 reads "hello, shared memory"
	// interactive history is consistent
}

// Example_openLiveBackend opens the same Config on the live concurrent
// runtime — node automata on goroutines, messages over channels — and
// drives it through the identical interactive surface.
func Example_openLiveBackend() {
	st, err := Open(Config{}, WithBackend("live"), WithClients(2, 2))
	if err != nil {
		panic(err)
	}
	defer st.Close()

	ctx := context.Background()
	if err := st.Put(ctx, 7, []byte("served from goroutines")); err != nil {
		panic(err)
	}
	got, err := st.Get(ctx, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("key 7 reads %q\n", got)

	if err := st.CheckConsistency(); err != nil {
		panic(err)
	}
	m := st.Metrics()
	fmt.Printf("backend %s completed %d ops, all consistent\n", m.Backend, m.TotalWrites+m.TotalReads)
	// Output:
	// key 7 reads "served from goroutines"
	// backend live completed 2 ops, all consistent
}

// Example_runExperiment runs a seeded multi-key batch experiment through
// the handle and compares the metered storage against the paper's
// Theorem B.1 (Singleton) lower bound.
func Example_runExperiment() {
	st, err := Open(Config{Algorithms: []string{"casgc"}}, WithShards(4), WithSeed(42))
	if err != nil {
		panic(err)
	}
	defer st.Close()

	res, err := st.RunMulti(MultiWorkloadSpec{
		Seed: 42, Keys: 32, Ops: 64, ReadFraction: 0.25,
		TargetNu: 2, ValueBytes: 256,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ran %d writes and %d reads over 4 shards\n", res.TotalWrites, res.TotalReads)

	p := Params{N: 5, F: 1}
	bound := SingletonTotalBits(p, res.Log2V) / res.Log2V
	for _, s := range res.PerShard {
		if s.Writes > 0 && s.NormalizedTotal < bound {
			fmt.Printf("shard %d beats the Singleton bound — impossible!\n", s.Shard)
		}
	}
	fmt.Println("every shard's storage respects the Singleton bound")
	// Output:
	// ran 47 writes and 17 reads over 4 shards
	// every shard's storage respects the Singleton bound
}
