package shmem

import (
	"bytes"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cl, err := DeployABD(5, 2, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	v := MakeValue(64, 1)
	if err := Write(cl, 0, v); err != nil {
		t.Fatal(err)
	}
	got, err := Read(cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatalf("read %q, want %q", got, v)
	}
	if err := CheckAtomic(cl.Sys.History(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorValidation(t *testing.T) {
	cl, err := DeployABD(3, 1, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(cl, 5, []byte("x")); err == nil {
		t.Error("out-of-range writer must fail")
	}
	if _, err := Read(cl, 5); err == nil {
		t.Error("out-of-range reader must fail")
	}
}

// TestMeasuredStorageRespectsAllApplicableBounds is the repository's
// central invariant (experiments E4-E7): every implemented algorithm's
// measured storage is at least every lower bound that applies to it.
func TestMeasuredStorageRespectsAllApplicableBounds(t *testing.T) {
	const valueBytes = 256
	log2V := float64(8 * valueBytes)

	cases := []struct {
		name    string
		deploy  func() (*Cluster, error)
		nu      int
		regular bool // SWSR regular algorithms: Theorems 4.1/5.1 apply
	}{
		{"abd-swmr", func() (*Cluster, error) { return DeployABD(5, 2, 1, 1, false) }, 1, true},
		{"abd-mwmr", func() (*Cluster, error) { return DeployABD(5, 2, 2, 1, true) }, 2, false},
		{"cas", func() (*Cluster, error) { return DeployCAS(7, 2, -1, 2, 1) }, 2, false},
		{"casgc", func() (*Cluster, error) { return DeployCAS(7, 2, 0, 2, 1) }, 2, false},
		{"two-version", func() (*Cluster, error) { return DeployTwoVersion(5, 2, 1) }, 1, true},
		{"two-version-gossip", func() (*Cluster, error) { return DeployTwoVersionGossip(5, 2, 1) }, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := tc.deploy()
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunWorkload(cl, WorkloadSpec{
				Seed: 3, Writes: 4 * tc.nu, Reads: 2, TargetNu: tc.nu, ValueBytes: valueBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			p := Params{N: len(cl.Servers), F: cl.F}
			measured := float64(res.Storage.MaxTotalBits)
			bounds := map[string]float64{
				"B.1": SingletonTotalBits(p, log2V),
			}
			if tc.regular {
				bounds["4.1"] = Theorem41TotalBits(p, log2V)
				bounds["5.1"] = Theorem51TotalBits(p, log2V)
			}
			if err := cl.Profile.Theorem65Applies(); err == nil {
				bounds["6.5"] = Theorem65TotalBits(p, res.PeakActiveWrites, log2V)
			}
			for name, b := range bounds {
				if measured < b {
					t.Errorf("measured %.0f bits violates Theorem %s bound %.0f", measured, name, b)
				}
			}
		})
	}
}

func TestFigure1MatchesPaperShape(t *testing.T) {
	p := Params{N: 21, F: 10}
	rows, err := Figure1(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Shape facts from the paper's Figure 1:
	// (1) lower bounds are ordered B.1 <= 5.1 <= 6.5 for nu >= 2;
	// (2) Theorem 6.5 meets the ABD line at nu = f+1 and saturates;
	// (3) the erasure upper bound crosses the ABD line between nu=5 and 6.
	for _, r := range rows {
		if r.TheoremB1 > r.Theorem51+1e-9 {
			t.Errorf("nu=%d: B.1 above 5.1", r.Nu)
		}
		if r.Nu >= 2 && r.Theorem51 > r.Theorem65+1e-9 {
			t.Errorf("nu=%d: 5.1 above 6.5", r.Nu)
		}
		if r.Theorem65 > r.ABD+1e-9 {
			t.Errorf("nu=%d: 6.5 above the ABD upper bound", r.Nu)
		}
	}
	if rows[11].Theorem65 != rows[16].Theorem65 {
		t.Error("Theorem 6.5 should saturate at nu = f+1")
	}
	if got := ReplicationCrossoverNu(p); got != 6 {
		t.Errorf("crossover %d, want 6", got)
	}
	if rows[5].Erasure >= rows[5].ABD || rows[6].Erasure < rows[6].ABD {
		t.Error("erasure/ABD crossover should fall between nu=5 and nu=6")
	}
}

func TestProofHarnessesViaFacade(t *testing.T) {
	cfg := ProofConfig{Build: TwoVersionBuilder(5, 2), FailServers: []int{3, 4}}
	vals := [][]byte{MakeValue(16, 1), MakeValue(16, 2), MakeValue(16, 3)}
	r41, err := cfg.RunTheorem41(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !r41.Injective {
		t.Error("Theorem 4.1 injectivity should hold")
	}
	rb, err := cfg.RunAppendixB(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Injective {
		t.Error("Appendix B injectivity should hold")
	}
	cas := ProofConfig{Build: CASBuilder(5, 2, 2), FailServers: []int{4}}
	r65, err := cas.RunTheorem65([][][]byte{
		{MakeValue(16, 1), MakeValue(16, 2)},
		{MakeValue(16, 3), MakeValue(16, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r65.AllRecovered {
		t.Error("CAS values should all be recoverable")
	}
}

func TestSection7ViaFacade(t *testing.T) {
	p := Params{N: 21, F: 10}
	c := Section7Summary(p, 4, 2.0)
	if c.Feasible {
		t.Error("g=2.0 < 42/13 should be infeasible")
	}
}
