package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// TestSmoke runs the client-count sweep end to end on the live runtime and
// checks the acceptance shape: one result row per client count reporting
// throughput and latency percentiles.
func TestSmoke(t *testing.T) {
	out := cmdtest.RunWith(t, run, "liveload",
		"-clients", "1,2,4", "-ops", "48", "-shards", "2", "-keys", "16")
	for _, want := range []string{"clients", "ops/sec", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "1 ") || strings.HasPrefix(line, "2 ") || strings.HasPrefix(line, "4 ") {
			rows++
			if !strings.Contains(line, "ok") {
				t.Errorf("row without ok verdict: %q", line)
			}
		}
	}
	if rows != 3 {
		t.Errorf("want 3 client-count rows, got %d:\n%s", rows, out)
	}
}

// TestSmokeWithDelayFaults sweeps under a delay plan: ops must still all
// complete (delays only slow links) and the sweep must stay consistent.
func TestSmokeWithDelayFaults(t *testing.T) {
	out := cmdtest.RunWith(t, run, "liveload",
		"-clients", "1,2", "-ops", "32", "-shards", "2", "-keys", "8",
		"-faults", "delay=1:8")
	if !strings.Contains(out, "delay=1:8") {
		t.Errorf("fault spec not echoed:\n%s", out)
	}
	if strings.Contains(out, "quiescent") {
		t.Errorf("pure delay sweep lost liveness:\n%s", out)
	}
}

// TestRejectsBadFlags pins eager CLI validation.
func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"liveload", "-clients", "0"},
		{"liveload", "-clients", "two"},
		{"liveload", "-faults", "partition@40:10"}, // impossible window: parse-time error
		{"liveload", "-faults", "crash-f@40:10"},   // recovery before crash: parse-time error
	} {
		if err := cmdtest.RunErr(t, run, args...); err == nil {
			t.Errorf("args %v: run succeeded, want error", args[1:])
		}
	}
}
