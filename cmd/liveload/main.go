// Command liveload drives the live concurrent runtime — every node automaton
// on its own goroutine, messages over channels — through a sharded keyspace
// workload and reports what only a live backend can measure: aggregate
// throughput and per-operation latency percentiles, swept across client
// counts. Safety is still enforced by default: every shard's merged history
// is checked against the algorithm's consistency condition, exactly as the
// simulator backend does. High-concurrency sweeps can disable the check
// (-check=false) — the checkers are worst-case exponential in write
// concurrency — while history well-formedness stays enforced. -check-online
// switches to the streaming windowed checker instead: settled operations are
// verified while the run executes, memory stays bounded by the window, and
// the verified/lag columns report how far the linearization frontier got.
//
// Usage:
//
//	liveload -alg cas -shards 4 -clients 2,4,8 -ops 256
//	liveload -alg abd-mwmr -clients 1,2,4 -faults lossy=0.01+delay=1:8
//	liveload -alg abd-mwmr -clients 1000 -pipeline 8 -check=false -ops 4000
//	liveload -alg cas -clients 2 -ops 100000 -check-online
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	shmem "repro"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liveload:", err)
		os.Exit(1)
	}
}

// gridPoint aggregates one client-count setting.
type gridPoint struct {
	clients   int
	completed int
	pending   int
	lost      int
	quiescent int
	verified  int64
	lag       int
	elapsed   time.Duration
	opsPerSec float64
	p50, p99  time.Duration
}

func run() error {
	alg := flag.String("alg", "cas", "algorithm (multi-writer: "+strings.Join(shmem.StoreAlgorithms(), " | ")+")")
	n := flag.Int("n", 5, "servers per shard N")
	f := flag.Int("f", 1, "tolerated server failures per shard f")
	shards := flag.Int("shards", 2, "independent register shards, run concurrently")
	clientsFlag := flag.String("clients", "1,2,4", "comma-separated per-shard client counts (writers; readers match)")
	keys := flag.Int("keys", 32, "keyspace size")
	ops := flag.Int("ops", 128, "total operations across the keyspace per client-count setting")
	readFrac := flag.Float64("reads", 0.3, "fraction of operations that are reads")
	valueBytes := flag.Int("valuebytes", 128, "bytes per written value")
	seed := flag.Int64("seed", 1, "workload and fault seed")
	faultSpec := flag.String("faults", "", "fault scenario applied to every shard (lossy=P, delay=MIN:MAX, partition@START:HEAL, crash-f@STEP[:RECOVER], composable with +)")
	stepDur := flag.Duration("stepdur", 100*time.Microsecond, "wall-clock duration of one fault delay step")
	opTimeout := flag.Duration("optimeout", 5*time.Second, "per-operation completion timeout")
	pipeline := flag.Int("pipeline", 1, "operations kept in flight per client (per-client order preserved)")
	check := flag.Bool("check", true, "consistency-check every shard history (disable for high-concurrency sweeps; the checkers are exponential in write concurrency)")
	checkOnline := flag.Bool("check-online", false, "verify atomicity with the streaming windowed checker while the run executes (memory bounded by the window; adds verified/lag columns)")
	checkWindow := flag.Int("check-window", 0, "online checker retirement window in operations (0 = default)")
	telemetryAddr := flag.String("telemetry", "", "serve Prometheus /metrics, /trace and pprof on this address for the run's duration (e.g. 127.0.0.1:9100; empty disables)")
	statEvery := flag.Duration("stat-interval", 2*time.Second, "interval between telemetry stat lines on stderr (with -telemetry)")
	flag.Parse()

	clients, err := parseClients(*clientsFlag)
	if err != nil {
		return err
	}
	cfg := shmem.LiveConfig{StepDur: *stepDur, OpTimeout: *opTimeout}

	var reg *shmem.Telemetry
	if *telemetryAddr != "" {
		reg = shmem.NewTelemetry()
		srv, err := shmem.ServeTelemetry(*telemetryAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		stopStats := telemetry.LogStats(os.Stderr, reg, *statEvery)
		defer stopStats()
		fmt.Printf("telemetry        : %s/metrics (traces at /trace, pprof at /debug/pprof/)\n", srv.URL())
	}

	fmt.Printf("live load        : %s, %d shards x (N=%d f=%d), %d keys, %d ops/setting, pipeline %d, seed %d\n",
		*alg, *shards, *n, *f, *keys, *ops, *pipeline, *seed)
	fmt.Printf("fault scenario   : %s\n", orNone(*faultSpec))
	if !*check {
		fmt.Println("consistency check: disabled (-check=false)")
	} else if *checkOnline {
		window := *checkWindow
		if window <= 0 {
			window = shmem.DefaultOnlineWindow
		}
		fmt.Printf("consistency check: online, %d-op retirement window (-check-online)\n", window)
	}
	fmt.Println()
	fmt.Printf("%-8s %-7s %-10s %-8s %-6s %-10s %-10s %-6s %-12s %-12s %-10s\n",
		"clients", "shards", "completed", "pending", "lost", "ops/sec", "verified", "lag", "p50", "p99", "verdict")

	for _, c := range clients {
		pt, err := runPoint(*alg, *n, *f, *shards, c, *keys, *ops, *readFrac, *valueBytes, *seed, *faultSpec, *pipeline, *check, *checkOnline, *checkWindow, cfg, reg)
		if err != nil {
			return err
		}
		verdict := "ok"
		if pt.quiescent > 0 {
			verdict = fmt.Sprintf("%d quiescent", pt.quiescent)
		}
		fmt.Printf("%-8d %-7d %-10d %-8d %-6d %-10.0f %-10d %-6d %-12v %-12v %-10s\n",
			pt.clients, *shards, pt.completed, pt.pending, pt.lost, pt.opsPerSec,
			pt.verified, pt.lag,
			pt.p50.Round(time.Microsecond), pt.p99.Round(time.Microsecond), verdict)
	}
	return nil
}

// runPoint runs one client-count setting: a store handle opened on the
// live backend with `clients` writers and readers per shard runs the
// keyspace load through the parallel store engine, which partitions it,
// deploys a fresh cluster per shard, consistency-checks every shard (unless
// disabled) and aggregates the latency percentiles.
func runPoint(alg string, n, f, shards, clients, keys, ops int, readFrac float64, valueBytes int, seed int64, faultSpec string, pipeline int, check, checkOnline bool, checkWindow int, cfg shmem.LiveConfig, reg *shmem.Telemetry) (gridPoint, error) {
	var faultSpecs []string
	if faultSpec != "" {
		faultSpecs = []string{faultSpec}
	}
	opts := []shmem.Option{shmem.WithClients(clients, clients), shmem.WithPipeline(pipeline)}
	if reg != nil {
		opts = append(opts, shmem.WithTelemetry(reg))
	}
	if !check {
		opts = append(opts, shmem.WithSkipCheck())
	} else if checkOnline {
		opts = append(opts, shmem.WithOnlineCheck(), shmem.WithOnlineWindow(checkWindow))
	}
	st, err := shmem.Open(shmem.Config{
		Algorithms: []string{alg},
		Servers:    n,
		F:          f,
		Shards:     shards,
		Backend:    "live",
		Faults:     faultSpecs,
		Live:       cfg,
		Seed:       seed,
	}, opts...)
	if err != nil {
		return gridPoint{}, err
	}
	defer st.Close()
	res, err := st.RunMulti(shmem.MultiWorkloadSpec{
		Seed:         seed,
		Keys:         keys,
		Ops:          ops,
		ReadFraction: readFrac,
		TargetNu:     clients,
		ValueBytes:   valueBytes,
	})
	if err != nil {
		return gridPoint{}, fmt.Errorf("clients=%d: %w", clients, err)
	}
	pt := gridPoint{
		clients:   clients,
		quiescent: res.QuiescentShards,
		verified:  res.OpsVerified,
		lag:       res.MaxWindowLag,
		elapsed:   res.Elapsed,
		p50:       res.LatencyP50,
		p99:       res.LatencyP99,
		lost:      res.Faults.Drops + res.Faults.TransportDropped,
	}
	for _, s := range res.PerShard {
		pt.pending += s.PendingOps
	}
	pt.completed = res.TotalOps - pt.pending
	if secs := pt.elapsed.Seconds(); secs > 0 {
		pt.opsPerSec = float64(pt.completed) / secs
	}
	return pt, nil
}

// parseClients parses the comma-separated client-count sweep.
func parseClients(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad client count %q (want positive integers, e.g. -clients 1,2,4)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
