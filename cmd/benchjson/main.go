// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record on stdout, so each PR can commit a BENCH_<date>.json
// baseline and the repository accumulates a comparable perf trajectory
// (see `make bench-json`).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | benchjson -date 2026-07-27
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Package is the Go package the benchmark ran in (from the preceding
	// "pkg:" context line).
	Package string `json:"package"`
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair: ns/op, B/op,
	// allocs/op, MB/s and any b.ReportMetric custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Record is the file layout of BENCH_<date>.json.
type Record struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output and collects the benchmark lines,
// tracking goos/goarch/cpu/pkg context.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1566661   751.6 ns/op   5449.78 MB/s   0 B/op   0 allocs/op
//
// Zero-sample lines (b.N = 0, as a partial or interrupted bench run can
// emit) are rejected, and non-finite metric values are dropped: a custom
// metric reported as NaN or ±Inf would otherwise reach the JSON encoder,
// which rejects such values and would abort the whole `make bench-json`
// conversion. Metric pairs are scanned with resynchronization rather than
// strict value/unit alternation, so a b.ReportMetric custom unit — or a
// stray token a test framework interleaves — never silently discards the
// rest of the line's metrics along with it.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || i+1 >= len(fields) {
			i++ // not a value (or a value with no unit): resync on the next token
			continue
		}
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			b.Metrics[fields[i+1]] = v
		}
		i += 2
	}
	return b, true
}

func run() error {
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp recorded in the output")
	flag.Parse()
	rec, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	rec.Date = *date
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
