package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/gf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMulSlice/c=0x57-8         	  561081	      2176 ns/op	1882.18 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/gf	3.630s
pkg: repro
BenchmarkE9CheckerThroughput 	    8563	    138480 ns/op	        80.00 ops
PASS
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GoOS != "linux" || rec.GoArch != "amd64" {
		t.Fatalf("context not captured: %+v", rec)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	b := rec.Benchmarks[0]
	if b.Name != "BenchmarkMulSlice/c=0x57" || b.Package != "repro/internal/gf" {
		t.Fatalf("first benchmark misparsed: %+v", b)
	}
	if b.Iterations != 561081 || b.Metrics["ns/op"] != 2176 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics misparsed: %+v", b)
	}
	e9 := rec.Benchmarks[1]
	if e9.Package != "repro" || e9.Metrics["ops"] != 80 {
		t.Fatalf("custom metric misparsed: %+v", e9)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkBroken-8 10 nounit",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
