package main

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/gf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMulSlice/c=0x57-8         	  561081	      2176 ns/op	1882.18 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/gf	3.630s
pkg: repro
BenchmarkE9CheckerThroughput 	    8563	    138480 ns/op	        80.00 ops
PASS
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.GoOS != "linux" || rec.GoArch != "amd64" {
		t.Fatalf("context not captured: %+v", rec)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	b := rec.Benchmarks[0]
	if b.Name != "BenchmarkMulSlice/c=0x57" || b.Package != "repro/internal/gf" {
		t.Fatalf("first benchmark misparsed: %+v", b)
	}
	if b.Iterations != 561081 || b.Metrics["ns/op"] != 2176 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics misparsed: %+v", b)
	}
	e9 := rec.Benchmarks[1]
	if e9.Package != "repro" || e9.Metrics["ops"] != 80 {
		t.Fatalf("custom metric misparsed: %+v", e9)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkBroken-8 10 nounit",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}

// TestParseBenchLineHardening pins the parser against the degenerate lines a
// partial or interrupted bench run can produce: zero-sample results and
// non-finite custom metrics. encoding/json rejects NaN/Inf, so any such
// value surviving into Benchmark.Metrics would make `make bench-json` fail
// on the whole record.
func TestParseBenchLineHardening(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		ok      bool
		iters   int64
		metrics map[string]float64
	}{
		{
			name:    "normal line",
			line:    "BenchmarkX-8 1000 751.6 ns/op 0 B/op",
			ok:      true,
			iters:   1000,
			metrics: map[string]float64{"ns/op": 751.6, "B/op": 0},
		},
		{
			name: "zero samples",
			line: "BenchmarkX-8 0 0 ns/op",
			ok:   false,
		},
		{
			name: "negative samples",
			line: "BenchmarkX-8 -3 12 ns/op",
			ok:   false,
		},
		{
			name:    "NaN custom metric dropped, finite metrics kept",
			line:    "BenchmarkX-8 100 12 ns/op NaN normcost",
			ok:      true,
			iters:   100,
			metrics: map[string]float64{"ns/op": 12},
		},
		{
			name:    "+Inf metric dropped",
			line:    "BenchmarkX-8 100 +Inf MB/s 7 allocs/op",
			ok:      true,
			iters:   100,
			metrics: map[string]float64{"allocs/op": 7},
		},
		{
			name:    "-Inf metric dropped",
			line:    "BenchmarkX-8 100 -Inf normcost 3 ns/op",
			ok:      true,
			iters:   100,
			metrics: map[string]float64{"ns/op": 3},
		},
		{
			name:    "every metric non-finite leaves an empty metric map",
			line:    "BenchmarkX-8 100 NaN ns/op Inf MB/s",
			ok:      true,
			iters:   100,
			metrics: map[string]float64{},
		},
		{
			name:    "stray token resyncs instead of dropping the line",
			line:    "BenchmarkX-8 100 12 ns/op oops 80 ops",
			ok:      true,
			iters:   100,
			metrics: map[string]float64{"ns/op": 12, "ops": 80},
		},
		{
			name:    "odd field count keeps every complete pair",
			line:    "BenchmarkX-8 100 12 ns/op 3.5 widgets/op 99",
			ok:      true,
			iters:   100,
			metrics: map[string]float64{"ns/op": 12, "widgets/op": 3.5},
		},
	}
	for _, tc := range cases {
		b, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("%s: parseBenchLine(%q) ok = %t, want %t", tc.name, tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if b.Iterations != tc.iters {
			t.Errorf("%s: iterations = %d, want %d", tc.name, b.Iterations, tc.iters)
		}
		if !reflect.DeepEqual(b.Metrics, tc.metrics) {
			t.Errorf("%s: metrics = %v, want %v", tc.name, b.Metrics, tc.metrics)
		}
		for unit, v := range b.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite metric %s=%v survived", tc.name, unit, v)
			}
		}
	}
}

// TestParsePartialRunEncodes runs a whole degraded bench stream through
// parse and asserts the result still JSON-encodes.
func TestParsePartialRunEncodes(t *testing.T) {
	const partial = `goos: linux
pkg: repro
BenchmarkE10ShardedStore/shards=1-8 2 6498771 ns/op NaN normcost 39.38 opspersec
BenchmarkE10ShardedStore/shards=2-8 0 0 ns/op
BenchmarkE11FaultScenarios/crash-f-8 2 4198551 ns/op +Inf normcost
PASS
`
	rec, err := parse(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks (zero-sample line dropped), got %d: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	if _, err := json.Marshal(rec); err != nil {
		t.Fatalf("record does not encode: %v", err)
	}
	if got := rec.Benchmarks[0].Metrics["opspersec"]; got != 39.38 {
		t.Errorf("finite custom metric lost: %v", rec.Benchmarks[0].Metrics)
	}
}
