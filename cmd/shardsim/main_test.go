package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// runWith executes run() with fresh flags and the given command line,
// capturing stdout.
func runWith(t *testing.T, args ...string) string {
	t.Helper()
	return cmdtest.RunWith(t, run, args...)
}

func fingerprintOf(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fingerprint") {
			fields := strings.Fields(line)
			return fields[len(fields)-1]
		}
	}
	t.Fatalf("no fingerprint line in output:\n%s", out)
	return ""
}

// TestRunAcceptanceScenario exercises the ISSUE's acceptance command line
// (scaled to test-sized values) and checks per-shard plus aggregate output.
func TestRunAcceptanceScenario(t *testing.T) {
	out := runWith(t, "shardsim", "-shards", "8", "-algo", "cas", "-keys", "64",
		"-skew", "zipf", "-ops", "64", "-valuebytes", "64")
	if !strings.Contains(out, "TOTAL") {
		t.Errorf("missing aggregate row:\n%s", out)
	}
	if !strings.Contains(out, "aggregate storage") {
		t.Errorf("missing aggregate storage line:\n%s", out)
	}
	if got := strings.Count(out, "cas "); got < 1 {
		t.Errorf("missing per-shard rows:\n%s", out)
	}
}

// TestRunReproducibleAcrossWorkers verifies end to end that the same seed
// yields the same fingerprint whether shards run serially or in parallel.
func TestRunReproducibleAcrossWorkers(t *testing.T) {
	args := []string{"shardsim", "-shards", "8", "-algo", "cas", "-keys", "64",
		"-skew", "zipf", "-ops", "64", "-valuebytes", "64", "-seed", "5"}
	serial := fingerprintOf(t, runWith(t, append(args, "-workers", "1")...))
	parallel := fingerprintOf(t, runWith(t, append(args, "-workers", "8")...))
	if serial != parallel {
		t.Errorf("fingerprint differs across worker counts: %s vs %s", serial, parallel)
	}
}

func TestRunMixedAlgorithms(t *testing.T) {
	out := runWith(t, "shardsim", "-shards", "4", "-algo", "abd-mwmr,casgc",
		"-keys", "16", "-ops", "32", "-valuebytes", "64")
	if !strings.Contains(out, "abd-mwmr") || !strings.Contains(out, "casgc") {
		t.Errorf("mixed algorithms missing from table:\n%s", out)
	}
}

// TestRunLiveBackend drives the store CLI on the live concurrent backend:
// the same table shape, every shard consistency-checked on real goroutines.
func TestRunLiveBackend(t *testing.T) {
	out := runWith(t, "shardsim", "-backend", "live", "-shards", "4",
		"-algo", "cas", "-keys", "16", "-ops", "48", "-valuebytes", "64")
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "ok") {
		t.Errorf("live backend output malformed:\n%s", out)
	}
}
