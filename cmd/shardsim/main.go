// Command shardsim runs a sharded multi-register store: a keyspace mapped
// onto many independent register deployments (one cluster per shard, any
// mix of algorithms), driven in parallel through a seeded multi-key
// workload with Zipf or uniform key popularity. It reports per-shard and
// aggregate normalized storage — comparable to the paper's Figure 1 — plus
// throughput and a determinism fingerprint: the same seed produces the same
// fingerprint regardless of the worker count.
//
// Usage:
//
//	shardsim -shards 8 -algo cas -keys 64 -skew zipf
//	shardsim -shards 4 -algo abd-mwmr,casgc -keys 32 -ops 96 -nu 3 -workers 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shardsim:", err)
		os.Exit(1)
	}
}

func run() error {
	shards := flag.Int("shards", 8, "number of independent register shards")
	algo := flag.String("algo", "cas", "comma-separated algorithms, cycled per shard: "+strings.Join(shmem.StoreAlgorithms(), " | "))
	n := flag.Int("n", 5, "servers per shard N")
	f := flag.Int("f", 1, "tolerated server failures per shard f")
	keys := flag.Int("keys", 64, "keyspace size")
	ops := flag.Int("ops", 128, "total operations across the keyspace")
	readFrac := flag.Float64("reads", 0.25, "fraction of operations that are reads")
	skew := flag.String("skew", "uniform", "key popularity: uniform | zipf")
	zipfS := flag.Float64("zipfs", 0, "zipf exponent (> 1; 0 = default 1.2)")
	nu := flag.Int("nu", 2, "per-shard target concurrent writes")
	valueBytes := flag.Int("valuebytes", 256, "bytes per written value")
	crashes := flag.Int("crashes", 0, "per-shard random server crashes")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "parallel shard workers (0 = GOMAXPROCS)")
	backend := flag.String("backend", "sim", "execution backend: "+strings.Join(shmem.StoreBackends(), " | ")+" (fingerprints are sim-only)")
	faultSpecs := flag.String("faults", "", "comma-separated fault scenarios, cycled per shard (see cmd/faultsim); grammar: "+shmem.FaultScenarioUsage())
	flag.Parse()

	var specs []string
	if *faultSpecs != "" {
		specs = strings.Split(*faultSpecs, ",")
	}

	st, err := shmem.Open(shmem.Config{
		Algorithms: strings.Split(*algo, ","),
		Servers:    *n,
		F:          *f,
		Shards:     *shards,
		Backend:    *backend,
		Faults:     specs,
		Seed:       *seed,
		Workers:    *workers,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.RunMulti(shmem.MultiWorkloadSpec{
		Seed:         *seed,
		Keys:         *keys,
		Ops:          *ops,
		ReadFraction: *readFrac,
		Skew:         *skew,
		ZipfS:        *zipfS,
		TargetNu:     *nu,
		ValueBytes:   *valueBytes,
		Crashes:      *crashes,
	})
	if err != nil {
		return err
	}
	p := shmem.Params{N: *n, F: *f}
	log2V := res.Log2V
	fmt.Printf("sharded store    : %d shards x (N=%d f=%d), %d keys (%s), seed %d\n",
		*shards, *n, *f, *keys, *skew, *seed)
	fmt.Printf("operations       : %d writes + %d reads, per-shard target nu=%d, log2|V|=%.0f\n",
		res.TotalWrites, res.TotalReads, *nu, log2V)
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Printf("aggregate storage : %d bits (normalized %.4f)\n", res.AggregateMaxTotalBits, res.NormalizedTotal)
	fmt.Printf("largest shard     : %d bits; largest server: %d bits\n", res.MaxShardTotalBits, res.MaxServerBits)
	fmt.Printf("throughput        : %d ops in %v (%.0f ops/sec, %d workers)\n",
		res.TotalOps, res.Elapsed.Round(time.Microsecond), res.OpsPerSec, res.Workers)
	fmt.Printf("per-shard bounds  : Theorem B.1 %.4f, Theorem 5.1 %.4f (normalized)\n",
		shmem.SingletonTotalBits(p, log2V)/log2V, shmem.Theorem51TotalBits(p, log2V)/log2V)
	fmt.Printf("fingerprint       : %s\n", res.Fingerprint())
	return nil
}
