// Command faultsim runs the sharded store under injected faults: seeded,
// deterministic message drops, bounded delays (which reorder links), link
// partitions that heal, and scheduled server crashes with optional recovery.
// Scenario specs cycle across shards, so one run can hold a partitioned
// shard next to a lossy one next to a fault-free control. Per-shard verdicts
// report whether liveness survived ("ok") or was lost ("quiescent"); safety
// is always enforced — every shard's completed operations are checked
// against its algorithm's consistency condition, faults or not. On the
// simulator, the same seed and fault specs produce the same fingerprint at
// any worker count; the live and net backends execute the same plans in
// wall-clock time via the fault scheduler and are checked for safety.
//
// Usage:
//
//	faultsim -shards 6 -algo cas -faults crash-f,lossy=0.02,none
//	faultsim -backend live -faults crash-f@10:5000 -algo cas
//	faultsim -backend net -shards 2 -faults partition@40:4000
//	faultsim -grid -algo abd-mwmr,cas
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run() error {
	shards := flag.Int("shards", 6, "number of independent register shards")
	algo := flag.String("algo", "cas", "comma-separated algorithms, cycled per shard: "+strings.Join(shmem.StoreAlgorithms(), " | "))
	backend := flag.String("backend", "sim", "execution backend: "+strings.Join(shmem.StoreBackends(), " | ")+" (fingerprints are sim-only)")
	n := flag.Int("n", 5, "servers per shard N")
	f := flag.Int("f", 1, "tolerated server failures per shard f")
	keys := flag.Int("keys", 32, "keyspace size")
	ops := flag.Int("ops", 96, "total operations across the keyspace")
	readFrac := flag.Float64("reads", 0.3, "fraction of operations that are reads")
	nu := flag.Int("nu", 2, "per-shard target concurrent writes")
	valueBytes := flag.Int("valuebytes", 128, "bytes per written value")
	seed := flag.Int64("seed", 1, "workload and fault seed")
	workers := flag.Int("workers", 0, "parallel shard workers (0 = GOMAXPROCS)")
	opTimeout := flag.Duration("optimeout", 0, "live/net per-operation timeout (0 = backend default; quiescent cells cost one timeout)")
	faultSpecs := flag.String("faults", "", "comma-separated fault scenarios, cycled per shard; grammar: "+shmem.FaultScenarioUsage())
	grid := flag.Bool("grid", false, "run the standard scenario library against every -algo on every backend and print the verdict matrix (ignores -shards/-faults; -backend restricts the matrix when set explicitly)")
	flag.Parse()

	if *grid {
		backends := shmem.StoreBackends()
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "backend" {
				backends = strings.Split(*backend, ",")
			}
		})
		return runGrid(backends, *algo, *n, *f, *keys, *ops, *readFrac, *nu, *valueBytes, *seed, *workers, *opTimeout)
	}

	var specs []string
	if *faultSpecs != "" {
		specs = strings.Split(*faultSpecs, ",")
	}
	st, err := shmem.Open(shmem.Config{
		Algorithms: strings.Split(*algo, ","),
		Backend:    *backend,
		Servers:    *n,
		F:          *f,
		Shards:     *shards,
		Faults:     specs,
		Seed:       *seed,
		Workers:    *workers,
		Live:       shmem.LiveConfig{OpTimeout: *opTimeout},
		Net:        shmem.NetConfig{OpTimeout: *opTimeout},
	})
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.RunMulti(shmem.MultiWorkloadSpec{
		Seed:         *seed,
		Keys:         *keys,
		Ops:          *ops,
		ReadFraction: *readFrac,
		TargetNu:     *nu,
		ValueBytes:   *valueBytes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("faulted store    : %d shards x (N=%d f=%d), %d keys, seed %d, backend %s\n",
		*shards, *n, *f, *keys, *seed, *backend)
	fmt.Printf("fault scenarios  : %s\n", orNone(*faultSpecs))
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Printf("fault events     : %d drops, %d delayed (%d steps held), %d crashes, %d recoveries, %d checkpoints\n",
		res.Faults.Drops, res.Faults.DelayedMessages, res.Faults.DelayStepsTotal,
		res.Faults.Crashes, res.Faults.Recoveries, res.Faults.Checkpoints)
	fmt.Printf("liveness         : %d/%d shards quiescent\n", res.QuiescentShards, *shards)
	fmt.Printf("aggregate storage: %d bits (normalized %.4f), largest server %d bits\n",
		res.AggregateMaxTotalBits, res.NormalizedTotal, res.MaxServerBits)
	fmt.Printf("fingerprint      : %s\n", res.Fingerprint())
	return nil
}

// runGrid sweeps the standard scenario library (plus a fault-free control)
// against every requested algorithm on every requested backend, one small
// store run per cell, printing the E11/E13 verdict matrix: storage
// high-water marks, fault events and the checker verdict.
func runGrid(backends []string, algos string, n, f, keys, ops int, readFrac float64, nu, valueBytes int, seed int64, workers int, opTimeout time.Duration) error {
	specs := []string{"none"}
	for _, sc := range shmem.FaultScenarioLibrary() {
		specs = append(specs, sc.String())
	}
	fmt.Printf("scenario matrix: backends %s, N=%d f=%d, %d ops over %d keys per cell, seed %d\n\n",
		strings.Join(backends, ","), n, f, ops, keys, seed)
	fmt.Printf("%-22s %-18s %-5s %6s %8s %6s %8s %5s %10s %10s %-9s\n",
		"scenario", "algorithm", "bknd", "done", "pending", "drops", "crashes", "recov", "maxsrvbits", "normcost", "verdict")
	for _, spec := range specs {
		for _, algo := range strings.Split(algos, ",") {
			for _, backend := range backends {
				st, err := shmem.Open(shmem.Config{
					Algorithms: []string{algo},
					Backend:    backend,
					Servers:    n,
					F:          f,
					Shards:     2,
					Faults:     []string{spec},
					Seed:       seed,
					Workers:    workers,
					Live:       shmem.LiveConfig{OpTimeout: opTimeout},
					Net:        shmem.NetConfig{OpTimeout: opTimeout},
				})
				if err != nil {
					return fmt.Errorf("scenario %q algorithm %q backend %q: %w", spec, algo, backend, err)
				}
				res, err := st.RunMulti(shmem.MultiWorkloadSpec{
					Seed:         seed,
					Keys:         keys,
					Ops:          ops,
					ReadFraction: readFrac,
					TargetNu:     nu,
					ValueBytes:   valueBytes,
				})
				st.Close()
				if err != nil {
					return fmt.Errorf("scenario %q algorithm %q backend %q: %w", spec, algo, backend, err)
				}
				pending := 0
				for _, s := range res.PerShard {
					pending += s.PendingOps
				}
				verdict := "ok"
				if res.QuiescentShards > 0 {
					verdict = "quiescent"
				}
				fmt.Printf("%-22s %-18s %-5s %6d %8d %6d %8d %5d %10d %10.4f %-9s\n",
					spec, algo, backend, res.TotalOps-pending, pending, res.Faults.Drops,
					res.Faults.Crashes, res.Faults.Recoveries, res.MaxServerBits, res.NormalizedTotal, verdict)
			}
		}
	}
	fmt.Println("\nevery cell passed its consistency check (atomic/regular per algorithm);")
	fmt.Println("\"quiescent\" marks scenarios that cost liveness, never safety.")
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
