// Command faultsim runs the sharded store under injected faults: seeded,
// deterministic message drops, bounded delays (which reorder links), link
// partitions that heal, and scheduled server crashes with optional recovery.
// Scenario specs cycle across shards, so one run can hold a partitioned
// shard next to a lossy one next to a fault-free control. Per-shard verdicts
// report whether liveness survived ("ok") or was lost ("quiescent"); safety
// is always enforced — every shard's completed operations are checked
// against its algorithm's consistency condition, faults or not. The same
// seed and fault specs produce the same fingerprint at any worker count.
//
// Usage:
//
//	faultsim -shards 6 -algo cas -faults crash-f,lossy=0.02,none
//	faultsim -shards 4 -algo abd-mwmr -faults partition@40:4000
//	faultsim -grid -algo abd-mwmr,cas
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run() error {
	shards := flag.Int("shards", 6, "number of independent register shards")
	algo := flag.String("algo", "cas", "comma-separated algorithms, cycled per shard: "+strings.Join(shmem.StoreAlgorithms(), " | "))
	n := flag.Int("n", 5, "servers per shard N")
	f := flag.Int("f", 1, "tolerated server failures per shard f")
	keys := flag.Int("keys", 32, "keyspace size")
	ops := flag.Int("ops", 96, "total operations across the keyspace")
	readFrac := flag.Float64("reads", 0.3, "fraction of operations that are reads")
	nu := flag.Int("nu", 2, "per-shard target concurrent writes")
	valueBytes := flag.Int("valuebytes", 128, "bytes per written value")
	seed := flag.Int64("seed", 1, "workload and fault seed")
	workers := flag.Int("workers", 0, "parallel shard workers (0 = GOMAXPROCS)")
	faultSpecs := flag.String("faults", "", "comma-separated fault scenarios, cycled per shard; grammar: "+shmem.FaultScenarioUsage())
	grid := flag.Bool("grid", false, "run the standard scenario library against every -algo and print the verdict grid (ignores -shards/-faults)")
	flag.Parse()

	if *grid {
		return runGrid(*algo, *n, *f, *keys, *ops, *readFrac, *nu, *valueBytes, *seed, *workers)
	}

	var specs []string
	if *faultSpecs != "" {
		specs = strings.Split(*faultSpecs, ",")
	}
	st, err := shmem.Open(shmem.Config{
		Algorithms: strings.Split(*algo, ","),
		Servers:    *n,
		F:          *f,
		Shards:     *shards,
		Faults:     specs,
		Seed:       *seed,
		Workers:    *workers,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.RunMulti(shmem.MultiWorkloadSpec{
		Seed:         *seed,
		Keys:         *keys,
		Ops:          *ops,
		ReadFraction: *readFrac,
		TargetNu:     *nu,
		ValueBytes:   *valueBytes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("faulted store    : %d shards x (N=%d f=%d), %d keys, seed %d\n",
		*shards, *n, *f, *keys, *seed)
	fmt.Printf("fault scenarios  : %s\n", orNone(*faultSpecs))
	fmt.Println()
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Printf("fault events     : %d drops, %d delayed (%d steps held), %d crashes, %d recoveries\n",
		res.Faults.Drops, res.Faults.DelayedMessages, res.Faults.DelayStepsTotal,
		res.Faults.Crashes, res.Faults.Recoveries)
	fmt.Printf("liveness         : %d/%d shards quiescent\n", res.QuiescentShards, *shards)
	fmt.Printf("aggregate storage: %d bits (normalized %.4f), largest server %d bits\n",
		res.AggregateMaxTotalBits, res.NormalizedTotal, res.MaxServerBits)
	fmt.Printf("fingerprint      : %s\n", res.Fingerprint())
	return nil
}

// runGrid sweeps the standard scenario library (plus a fault-free control)
// against every requested algorithm, one small store run per cell, printing
// the E11 verdict grid: storage high-water marks plus the checker verdict.
func runGrid(algos string, n, f, keys, ops int, readFrac float64, nu, valueBytes int, seed int64, workers int) error {
	specs := []string{"none"}
	for _, sc := range shmem.FaultScenarioLibrary() {
		specs = append(specs, sc.String())
	}
	fmt.Printf("scenario grid: N=%d f=%d, %d ops over %d keys per cell, seed %d\n\n",
		n, f, ops, keys, seed)
	fmt.Printf("%-22s %-18s %6s %8s %6s %8s %10s %10s %-9s\n",
		"scenario", "algorithm", "done", "pending", "drops", "crashes", "maxsrvbits", "normcost", "verdict")
	for _, spec := range specs {
		for _, algo := range strings.Split(algos, ",") {
			st, err := shmem.Open(shmem.Config{
				Algorithms: []string{algo},
				Servers:    n,
				F:          f,
				Shards:     2,
				Faults:     []string{spec},
				Seed:       seed,
				Workers:    workers,
			})
			if err != nil {
				return fmt.Errorf("scenario %q algorithm %q: %w", spec, algo, err)
			}
			res, err := st.RunMulti(shmem.MultiWorkloadSpec{
				Seed:         seed,
				Keys:         keys,
				Ops:          ops,
				ReadFraction: readFrac,
				TargetNu:     nu,
				ValueBytes:   valueBytes,
			})
			st.Close()
			if err != nil {
				return fmt.Errorf("scenario %q algorithm %q: %w", spec, algo, err)
			}
			pending := 0
			for _, s := range res.PerShard {
				pending += s.PendingOps
			}
			verdict := "ok"
			if res.QuiescentShards > 0 {
				verdict = "quiescent"
			}
			fmt.Printf("%-22s %-18s %6d %8d %6d %8d %10d %10.4f %-9s\n",
				spec, algo, res.TotalOps-pending, pending, res.Faults.Drops,
				res.Faults.Crashes, res.MaxServerBits, res.NormalizedTotal, verdict)
		}
	}
	fmt.Println("\nevery cell passed its consistency check (atomic/regular per algorithm);")
	fmt.Println("\"quiescent\" marks scenarios that cost liveness, never safety.")
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
