package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func runWith(t *testing.T, args ...string) string {
	t.Helper()
	return cmdtest.RunWith(t, run, args...)
}

// TestRunMixedFaults exercises the headline usage: scenarios cycled across
// shards with a fault-free control, verdict column and fault-event summary.
func TestRunMixedFaults(t *testing.T) {
	out := runWith(t, "faultsim", "-shards", "4", "-algo", "cas",
		"-keys", "16", "-ops", "32", "-valuebytes", "64",
		"-faults", "crash-f@10,lossy=0.05,none")
	for _, want := range []string{"verdict", "fault events", "fingerprint", "crash-f@10", "lossy=0.05"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunQuorumKilling checks that a quorum-killing scenario surfaces as a
// quiescent verdict rather than an error.
func TestRunQuorumKilling(t *testing.T) {
	out := runWith(t, "faultsim", "-shards", "1", "-algo", "abd-mwmr",
		"-n", "3", "-f", "1", "-keys", "4", "-ops", "12", "-valuebytes", "64",
		"-faults", "crash-majority@0")
	if !strings.Contains(out, "quiescent") {
		t.Errorf("quorum-killing run did not report a quiescent shard:\n%s", out)
	}
}

// TestRunReproducibleAcrossWorkers verifies the acceptance criterion end to
// end: identical fingerprints under faults regardless of worker count.
func TestRunReproducibleAcrossWorkers(t *testing.T) {
	args := []string{"faultsim", "-shards", "6", "-algo", "cas,abd-mwmr",
		"-keys", "16", "-ops", "48", "-valuebytes", "64", "-seed", "5",
		"-faults", "crash-f@10,partition@40:2500,delay=1:16,none"}
	fingerprint := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "fingerprint") {
				fields := strings.Fields(line)
				return fields[len(fields)-1]
			}
		}
		t.Fatalf("no fingerprint line in output:\n%s", out)
		return ""
	}
	serial := fingerprint(runWith(t, append(args, "-workers", "1")...))
	parallel := fingerprint(runWith(t, append(args, "-workers", "16")...))
	if serial != parallel {
		t.Errorf("fingerprint differs across worker counts: %s vs %s", serial, parallel)
	}
}

// TestRunBackends smoke-tests the -backend flag: the same crash+recovery
// and partition scenarios deploy and complete on the simulator, the live
// goroutine runtime, and the socket runtime, with the backend named in the
// run header. Crash-f with recovery exercises the snapshot/restore path on
// the wall-clock backends.
func TestRunBackends(t *testing.T) {
	for _, backend := range []string{"sim", "live", "net"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			out := runWith(t, "faultsim", "-backend", backend, "-shards", "3",
				"-algo", "cas", "-keys", "8", "-ops", "18", "-valuebytes", "64",
				"-optimeout", "2s", "-faults", "crash-f@10:400,partition@40:2500,none")
			for _, want := range []string{"backend " + backend, "verdict", "fault events", "crash-f@10:400"} {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", backend, want, out)
				}
			}
		})
	}
}

// TestRunGrid smoke-tests the scenario-grid mode on the simulator backend
// (the full three-backend matrix is exercised by `make chaos-smoke`, where
// quiescent cells may each cost an op timeout).
func TestRunGrid(t *testing.T) {
	out := runWith(t, "faultsim", "-grid", "-algo", "abd-mwmr", "-backend", "sim",
		"-n", "3", "-f", "1", "-keys", "8", "-ops", "16", "-valuebytes", "64")
	for _, want := range []string{"crash-f", "crash-majority", "partition@", "lossy=", "delay=", "none"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid missing scenario %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "quiescent") {
		t.Errorf("grid shows no quiescent cell (crash-majority must lose liveness):\n%s", out)
	}
}
