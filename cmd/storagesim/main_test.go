package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// runWith executes run() with fresh flags and the given command line,
// capturing stdout.
func runWith(t *testing.T, args ...string) string {
	t.Helper()
	return cmdtest.RunWith(t, run, args...)
}

func TestRunABD(t *testing.T) {
	out := runWith(t, "storagesim", "-alg", "abd", "-n", "4", "-f", "1",
		"-nu", "1", "-writes", "3", "-reads", "2", "-valuebytes", "64")
	if !strings.Contains(out, "consistency      : atomic OK") {
		t.Errorf("missing consistency verdict:\n%s", out)
	}
	if !strings.Contains(out, "Theorem B.1") {
		t.Errorf("missing lower-bound comparison:\n%s", out)
	}
}

func TestRunCASGC(t *testing.T) {
	out := runWith(t, "storagesim", "-alg", "casgc", "-n", "5", "-f", "1",
		"-nu", "2", "-writes", "6", "-reads", "2", "-valuebytes", "64")
	if !strings.Contains(out, "Theorem 6.5") {
		t.Errorf("missing Theorem 6.5 line:\n%s", out)
	}
}
