// Command storagesim runs a register-emulation algorithm under a seeded
// workload with a target write concurrency, meters its storage, checks the
// history's consistency, and compares the measured cost against every
// applicable lower bound.
//
// Usage:
//
//	storagesim -alg casgc -n 9 -f 2 -nu 3 -writes 15 -valuebytes 1024
//	storagesim -alg abd -n 5 -f 2 -nu 2
package main

import (
	"flag"
	"fmt"
	"os"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "storagesim:", err)
		os.Exit(1)
	}
}

func run() error {
	alg := flag.String("alg", "casgc", "algorithm: abd | abd-mwmr | cas | casgc | twoversion | twoversion-gossip | solo")
	n := flag.Int("n", 9, "number of servers N")
	f := flag.Int("f", 2, "tolerated server failures f")
	nu := flag.Int("nu", 2, "target concurrent writes")
	writes := flag.Int("writes", 10, "total writes")
	reads := flag.Int("reads", 4, "total reads")
	valueBytes := flag.Int("valuebytes", 1024, "bytes per written value")
	seed := flag.Int64("seed", 1, "workload seed")
	crashes := flag.Int("crashes", 0, "random server crashes during the run")
	flag.Parse()

	cl, cond, err := shmem.DeployAlgorithm(*alg, *n, *f, *nu)
	if err != nil {
		return err
	}
	res, err := shmem.RunWorkload(cl, shmem.WorkloadSpec{
		Seed: *seed, Writes: *writes, Reads: *reads, TargetNu: *nu,
		ValueBytes: *valueBytes, Crashes: *crashes,
	})
	if err != nil {
		return err
	}
	if err := res.CheckConsistency(cond); err != nil {
		return fmt.Errorf("consistency check (%s) FAILED: %w", cond, err)
	}
	p := shmem.Params{N: *n, F: *f}
	log2V := res.Log2V
	fmt.Printf("algorithm        : %s (write profile: %d phases)\n", cl.Name, len(cl.Profile.Phases))
	fmt.Printf("configuration    : N=%d f=%d target-nu=%d log2|V|=%.0f\n", *n, *f, *nu, log2V)
	fmt.Printf("operations       : %d (peak active writes %d)\n", len(res.History.Ops), res.PeakActiveWrites)
	fmt.Printf("consistency      : %s OK\n", cond)
	fmt.Printf("max total storage: %d bits (normalized %.4f)\n", res.Storage.MaxTotalBits, res.NormalizedTotal)
	fmt.Printf("max server       : %d bits\n", res.Storage.MaxServerBits)
	fmt.Println("\nlower bounds (normalized):")
	fmt.Printf("  Theorem B.1: %8.4f\n", shmem.SingletonTotalBits(p, log2V)/log2V)
	fmt.Printf("  Theorem 5.1: %8.4f\n", shmem.Theorem51TotalBits(p, log2V)/log2V)
	if err := cl.Profile.Theorem65Applies(); err == nil {
		fmt.Printf("  Theorem 6.5: %8.4f (at measured nu=%d; applies: single value-dependent phase)\n",
			shmem.Theorem65TotalBits(p, res.PeakActiveWrites, log2V)/log2V, res.PeakActiveWrites)
	} else {
		fmt.Printf("  Theorem 6.5: not applicable: %v\n", err)
	}
	return nil
}
