package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// TestSmoke runs the client-count sweep end to end over real loopback
// sockets and checks the acceptance shape: one result row per client count
// reporting throughput and latency percentiles.
func TestSmoke(t *testing.T) {
	out := cmdtest.RunWith(t, run, "netload",
		"-clients", "1,2,4", "-ops", "48", "-shards", "2", "-keys", "16")
	for _, want := range []string{"clients", "ops/sec", "p50", "p99", "TCP"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "1 ") || strings.HasPrefix(line, "2 ") || strings.HasPrefix(line, "4 ") {
			rows++
			if !strings.Contains(line, "ok") {
				t.Errorf("row without ok verdict: %q", line)
			}
		}
	}
	if rows != 3 {
		t.Errorf("want 3 client-count rows, got %d:\n%s", rows, out)
	}
}

// TestSmokeWithPartitionFaults sweeps under a healing partition, which
// the net backend physically holds at the sockets. At -stepdur 100µs the
// 20ms window heals far inside the op timeout, so all ops must complete
// and stay consistent.
func TestSmokeWithPartitionFaults(t *testing.T) {
	out := cmdtest.RunWith(t, run, "netload",
		"-clients", "1", "-ops", "16", "-shards", "1", "-keys", "4",
		"-faults", "partition@0:200")
	if !strings.Contains(out, "partition@0:200") {
		t.Errorf("fault spec not echoed:\n%s", out)
	}
	if strings.Contains(out, "quiescent") {
		t.Errorf("healing partition sweep lost liveness:\n%s", out)
	}
}

// TestRejectsBadFlags pins eager CLI validation.
func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"netload", "-clients", "0"},
		{"netload", "-clients", "sixty-four"},
		{"netload", "-faults", "partition@40:10"}, // impossible window: parse-time error
		{"netload", "-faults", "crash-f@40:10"},   // recovery before crash: parse-time error
	} {
		if err := cmdtest.RunErr(t, run, args...); err == nil {
			t.Errorf("args %v: run succeeded, want error", args[1:])
		}
	}
}
