package main

import (
	"bufio"
	"flag"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sampleLineRe loosely matches one Prometheus exposition sample line:
// name, optional label set, one float value.
var sampleLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE.+-]+$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [+-]Inf$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? NaN$`)

// TestTelemetrySmoke runs netload with -telemetry and scrapes the live
// /metrics endpoint repeatedly while the sweep executes: every scrape must
// be a well-formed exposition, counters must be monotone across consecutive
// scrapes, and the net-backend families (transport counters, storage
// gauges, latency histograms) must appear. This is the in-process version of
// `make telemetry-smoke`.
func TestTelemetrySmoke(t *testing.T) {
	flag.CommandLine = flag.NewFlagSet("netload", flag.ContinueOnError)
	os.Args = []string{"netload",
		"-clients", "2", "-ops", "600", "-shards", "1", "-keys", "8",
		"-telemetry", "127.0.0.1:0", "-stat-interval", "100ms"}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w

	// Stream stdout as it is produced: the telemetry line carries the
	// ephemeral endpoint address the test must scrape mid-run.
	urlCh := make(chan string, 1)
	outCh := make(chan string, 1)
	go func() {
		var b strings.Builder
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			b.WriteString(line)
			b.WriteByte('\n')
			if rest, ok := strings.CutPrefix(line, "telemetry        : "); ok {
				urlCh <- strings.TrimSuffix(strings.Fields(rest)[0], "/metrics")
			}
		}
		outCh <- b.String()
	}()

	runErr := make(chan error, 1)
	go func() { runErr <- run() }()

	var base string
	select {
	case base = <-urlCh:
	case err := <-runErr:
		w.Close()
		os.Stdout = old
		t.Fatalf("run() finished before printing the telemetry endpoint (err=%v):\n%s", err, <-outCh)
	case <-time.After(30 * time.Second):
		t.Fatal("no telemetry endpoint line within 30s")
	}

	// Scrape until the run completes; each successful scrape is validated
	// and compared against its predecessor.
	var scrapes []map[string]float64
	var errRun error
	for running := true; running; {
		select {
		case errRun = <-runErr:
			running = false
		default:
			if body, ok := tryScrape(base + "/metrics"); ok {
				scrapes = append(scrapes, parseExposition(t, body))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	w.Close()
	os.Stdout = old
	out := <-outCh
	if errRun != nil {
		t.Fatalf("run() failed: %v\n%s", errRun, out)
	}
	if len(scrapes) < 2 {
		t.Fatalf("want at least 2 mid-run scrapes, got %d (run too fast?)", len(scrapes))
	}

	// Counters (…_total series) never move backward between scrapes.
	for i := 1; i < len(scrapes); i++ {
		prev, cur := scrapes[i-1], scrapes[i]
		for series, v0 := range prev {
			if !strings.Contains(series, "_total") {
				continue
			}
			if v1, ok := cur[series]; ok && v1 < v0 {
				t.Errorf("scrape %d: counter %s went backward: %v -> %v", i, series, v0, v1)
			}
		}
	}

	last := scrapes[len(scrapes)-1]
	for _, family := range []string{
		"shmem_storage_max_bits", "shmem_storage_bound_bits",
		"shmem_transport_frames_sent_total", "shmem_ops_started_total",
		"shmem_op_latency_seconds_bucket",
	} {
		found := false
		for series := range last {
			if strings.HasPrefix(series, family) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("final scrape has no %s series", family)
		}
	}
}

// tryScrape fetches one exposition; ok=false when the server is already
// gone (the run can finish between scrapes).
func tryScrape(url string) (string, bool) {
	resp, err := http.Get(url)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// parseExposition validates the Prometheus text format line by line and
// returns series -> value.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	typed := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 || (f[1] != "counter" && f[1] != "gauge" && f[1] != "histogram") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLineRe.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(fam, suffix); ok && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			t.Fatalf("sample %q has no preceding # TYPE for %q", line, fam)
		}
		series[name] = v
	}
	return series
}
