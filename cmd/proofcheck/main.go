// Command proofcheck runs the executable versions of the paper's
// lower-bound proofs against live algorithm implementations:
//
//	proofcheck -thm b1  [-alg twoversion] [-n 5] [-f 2] [-values 5]
//	proofcheck -thm 4.1 [-alg twoversion] [-n 5] [-f 2] [-values 4]
//	proofcheck -thm 6.5 [-n 5] [-f 2] [-nu 2] [-vectors 6]
//
// Each run constructs the execution families of the corresponding proof
// (Appendix B, Section 4.3, Section 6.4), performs the valency probes, and
// verifies the injectivity/counting facts the proof rests on.
package main

import (
	"flag"
	"fmt"
	"os"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	thm := flag.String("thm", "4.1", "theorem to check: b1 | 4.1 | 6.5")
	alg := flag.String("alg", "twoversion", "algorithm for b1/4.1: twoversion | abd")
	n := flag.Int("n", 5, "number of servers N")
	f := flag.Int("f", 2, "tolerated server failures f")
	nValues := flag.Int("values", 4, "size of the value set |V| (b1, 4.1)")
	nu := flag.Int("nu", 2, "concurrent writers (6.5)")
	nVectors := flag.Int("vectors", 6, "number of value vectors (6.5)")
	gossip := flag.Bool("gossip", false, "use the Theorem 5.1 probe variant (drain gossip before reads)")
	flag.Parse()

	failSet := make([]int, *f)
	for i := range failSet {
		failSet[i] = *n - *f + i // the proofs fail the last f servers
	}

	switch *thm {
	case "b1", "B1":
		cfg, err := builderFor(*alg, *n, *f)
		if err != nil {
			return err
		}
		cfg.FailServers = failSet
		cfg.Gossip = *gossip
		vals := makeValues(*nValues)
		res, err := cfg.RunAppendixB(vals)
		if err != nil {
			return err
		}
		fmt.Printf("Theorem B.1 executable proof on %s (N=%d f=%d |V|=%d)\n", *alg, *n, *f, res.Values)
		fmt.Printf("  distinct server-state vectors: %d / %d value(s)\n", res.DistinctVectors, res.Values)
		fmt.Printf("  injective: %v\n", res.Injective)
		fmt.Printf("  certified: sum over N-f live servers of log2|S_n| >= %.3f bits\n", res.WitnessedBitsLowerBound)
	case "4.1", "41":
		cfg, err := builderFor(*alg, *n, *f)
		if err != nil {
			return err
		}
		cfg.FailServers = failSet
		cfg.Gossip = *gossip
		vals := makeValues(*nValues)
		res, err := cfg.RunTheorem41(vals)
		if err != nil {
			return err
		}
		fmt.Printf("Theorem 4.1 executable proof on %s (N=%d f=%d |V|=%d)\n", *alg, *n, *f, res.Values)
		fmt.Printf("  ordered value pairs            : %d\n", res.Pairs)
		fmt.Printf("  distinct critical-state vectors: %d\n", res.DistinctVectors)
		fmt.Printf("  injective (Section 4.3.3)      : %v\n", res.Injective)
		fmt.Printf("  max servers changed at critical pair (Lemma 4.8, must be <=1): %d\n", res.MaxChangedServers)
		fmt.Printf("  certified: prod|S_n| x (N-f) x max|S_n| >= 2^%.3f\n", res.WitnessedBitsLowerBound)
	case "6.5", "65":
		cfg := shmem.ProofConfig{Build: shmem.CASBuilder(*n, *f, *nu)}
		spare := *f + 1 - *nu
		if spare < 0 {
			spare = 0
		}
		for i := 0; i < spare && i < *f; i++ {
			cfg.FailServers = append(cfg.FailServers, *n-1-i)
		}
		var vectors [][][]byte
		for v := 0; v < *nVectors; v++ {
			vec := make([][]byte, *nu)
			for j := range vec {
				vec[j] = shmem.MakeValue(16, uint64(v*(*nu)+j+1))
			}
			vectors = append(vectors, vec)
		}
		res, err := cfg.RunTheorem65(vectors)
		if err != nil {
			return err
		}
		fmt.Printf("Theorem 6.5 executable experiment on cas (N=%d f=%d nu=%d)\n", *n, *f, *nu)
		fmt.Printf("  value-dependent messages delivered to the first %d servers\n", res.PrefixServers)
		fmt.Printf("  per-value recoverability (valency probes): %v (all: %v)\n", res.Recovered, res.AllRecovered)
		fmt.Printf("  distinct prefix-state vectors: %d / %d value vectors\n", res.VectorsDistinct, res.VectorsTried)
		if res.WitnessedBitsLowerBound > 0 {
			fmt.Printf("  certified: sum over prefix servers of log2|S_n| >= %.3f bits\n", res.WitnessedBitsLowerBound)
		}
	default:
		return fmt.Errorf("unknown theorem %q (want b1, 4.1 or 6.5)", *thm)
	}
	return nil
}

func builderFor(alg string, n, f int) (shmem.ProofConfig, error) {
	switch alg {
	case "twoversion":
		return shmem.ProofConfig{Build: shmem.TwoVersionBuilder(n, f)}, nil
	case "abd":
		return shmem.ProofConfig{Build: shmem.ABDBuilder(n, f)}, nil
	default:
		return shmem.ProofConfig{}, fmt.Errorf("unknown algorithm %q (want twoversion or abd)", alg)
	}
}

func makeValues(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = shmem.MakeValue(16, uint64(i+1))
	}
	return out
}
