package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// runWith executes run() with fresh flags and the given command line,
// capturing stdout.
func runWith(t *testing.T, args ...string) string {
	t.Helper()
	return cmdtest.RunWith(t, run, args...)
}

func TestRunAppendixB(t *testing.T) {
	out := runWith(t, "proofcheck", "-thm", "b1", "-n", "4", "-f", "1", "-values", "2")
	if !strings.Contains(out, "Theorem B.1") || !strings.Contains(out, "injective: true") {
		t.Errorf("unexpected Appendix B output:\n%s", out)
	}
}
