package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// runWith executes run() with fresh flags and the given command line,
// capturing stdout.
func runWith(t *testing.T, args ...string) string {
	t.Helper()
	return cmdtest.RunWith(t, run, args...)
}

func TestRunTable(t *testing.T) {
	out := runWith(t, "figure1", "-n", "5", "-f", "2", "-maxnu", "4")
	if !strings.Contains(out, "crossover") {
		t.Errorf("table output missing crossover line:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out := runWith(t, "figure1", "-n", "5", "-f", "2", "-maxnu", "3", "-csv")
	if !strings.HasPrefix(out, "nu,thm_b1,thm_51,thm_65,abd,erasure_upper") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 5 {
		t.Errorf("CSV has %d lines, want header + 4 rows", got)
	}
}
