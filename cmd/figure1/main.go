// Command figure1 regenerates the data behind Figure 1 of the paper:
// normalized total-storage lower and upper bounds against the number of
// active write operations.
//
// Usage:
//
//	figure1 [-n 21] [-f 10] [-maxnu 16] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 21, "number of servers N")
	f := flag.Int("f", 10, "tolerated server failures f")
	maxNu := flag.Int("maxnu", 16, "largest number of active writes to tabulate")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	p := shmem.Params{N: *n, F: *f}
	rows, err := shmem.Figure1(p, *maxNu)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("nu,thm_b1,thm_51,thm_65,abd,erasure_upper")
		for _, r := range rows {
			fmt.Printf("%d,%.6f,%.6f,%.6f,%.6f,%.6f\n",
				r.Nu, r.TheoremB1, r.Theorem51, r.Theorem65, r.ABD, r.Erasure)
		}
		return nil
	}
	fmt.Print(shmem.Figure1Table(p, rows))
	fmt.Printf("\nreplication/erasure crossover: nu = %d\n", shmem.ReplicationCrossoverNu(p))
	return nil
}
