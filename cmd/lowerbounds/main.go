// Command lowerbounds evaluates the paper's storage lower bounds for a
// given configuration, in exact (finite log2|V|) and normalized form, and
// optionally the Section 7 feasibility summary for a hypothetical algorithm.
//
// Usage:
//
//	lowerbounds [-n 21] [-f 10] [-nu 4] [-log2v 1024]
//	lowerbounds -n 21 -f 10 -nu 8 -summary 4.0
package main

import (
	"flag"
	"fmt"
	"os"

	shmem "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbounds:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 21, "number of servers N")
	f := flag.Int("f", 10, "tolerated server failures f")
	nu := flag.Int("nu", 4, "number of active write operations (Theorem 6.5)")
	log2v := flag.Float64("log2v", 1024, "log2 |V| in bits")
	summary := flag.Float64("summary", -1, "normalized cost g to evaluate against the Section 7 summary (negative = skip)")
	flag.Parse()

	p := shmem.Params{N: *n, F: *f}
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Printf("configuration: N=%d f=%d nu=%d log2|V|=%.0f bits\n\n", *n, *f, *nu, *log2v)
	fmt.Printf("%-34s %16s %14s\n", "bound (TotalStorage)", "exact bits", "normalized")
	rows := []struct {
		name  string
		exact float64
	}{
		{"Theorem B.1  N/(N-f)", shmem.SingletonTotalBits(p, *log2v)},
		{"Theorem 4.1  2N/(N-f+1) [no gossip]", shmem.Theorem41TotalBits(p, *log2v)},
		{"Theorem 5.1  2N/(N-f+2) [universal]", shmem.Theorem51TotalBits(p, *log2v)},
		{fmt.Sprintf("Theorem 6.5  nu*N/(N-f+nu*-1) nu=%d", *nu), shmem.Theorem65TotalBits(p, *nu, *log2v)},
	}
	for _, r := range rows {
		fmt.Printf("%-34s %16.1f %14.4f\n", r.name, r.exact, r.exact / *log2v)
	}
	fmt.Printf("\nupper bounds for comparison: ABD/replication = %d, erasure = %.4f (at nu=%d)\n",
		*f+1, float64(*nu)*float64(*n)/float64(*n-*f), *nu)

	if *summary >= 0 {
		fmt.Printf("\nSection 7 summary for g = %.3f at nu = %d:\n", *summary, *nu)
		c := shmem.Section7Summary(p, *nu, *summary)
		if !c.Feasible {
			fmt.Println("  INFEASIBLE:")
		}
		for _, s := range c.Statements {
			fmt.Println("  -", s)
		}
	}
	return nil
}
