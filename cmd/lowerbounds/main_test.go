package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// runWith executes run() with fresh flags and the given command line,
// capturing stdout.
func runWith(t *testing.T, args ...string) string {
	t.Helper()
	return cmdtest.RunWith(t, run, args...)
}

func TestRunBounds(t *testing.T) {
	out := runWith(t, "lowerbounds", "-n", "21", "-f", "10", "-nu", "4")
	for _, want := range []string{"Theorem B.1", "Theorem 4.1", "Theorem 5.1", "Theorem 6.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSummary(t *testing.T) {
	out := runWith(t, "lowerbounds", "-n", "21", "-f", "10", "-nu", "8", "-summary", "4.0")
	if !strings.Contains(out, "Section 7 summary") {
		t.Errorf("output missing Section 7 summary:\n%s", out)
	}
}
