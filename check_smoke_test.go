package shmem

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/live"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestCheckSmokeOnline is the check-smoke CI step (make check-smoke): one
// live-backend cluster streams a >=10^5-op history through the online
// windowed checker while it runs, under -race in CI. It asserts the three
// properties the streaming pipeline exists for: the verdict is clean, the
// linearization frontier keeps up with the run (all but a bounded residue
// retired online), and peak checker memory is bounded by the window, not
// the history. SyncOps matches the store engine's online-check wiring: the
// drivers quiesce every window's worth of operations, so every window is
// guaranteed a clean cut to retire at even with saturated pipelined
// clients that never leave a natural global idle moment.
func TestCheckSmokeOnline(t *testing.T) {
	ops := 100_000
	if testing.Short() {
		ops = 10_000
	}
	const window = 256
	checker := consistency.NewOnlineChecker(nil, consistency.WithWindowOps(window))
	cl, cond, err := store.DeployAlgorithmSized("abd-mwmr", 5, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cond != "atomic" {
		t.Fatalf("condition = %q, want atomic", cond)
	}
	res, err := live.RunConfig(cl, workload.Spec{
		Seed:       11,
		Writes:     ops / 2,
		Reads:      ops / 2,
		TargetNu:   1,
		ValueBytes: 16,
	}, live.Config{Sink: checker, Pipeline: 8, SyncOps: window})
	if err != nil {
		t.Fatal(err)
	}
	if res.PendingOps != 0 {
		t.Fatalf("%d ops pending on a fault-free run", res.PendingOps)
	}
	if err := checker.Result(); err != nil {
		t.Fatalf("online verdict: %v", err)
	}
	if got := checker.OpsObserved(); got < int64(ops) {
		t.Fatalf("observed %d ops, want >= %d", got, ops)
	}
	// The frontier must keep up: all but a bounded residue retired online.
	if v := checker.OpsVerified(); v < int64(ops-4*window) {
		t.Fatalf("only %d of %d ops retired online (residual lag %d)", v, ops, checker.WindowLag())
	}
	// Peak memory bounded by the window, not the history: between two sync
	// cuts at most SyncOps ops issue plus the in-flight pipeline, so the
	// largest window the checker ever held stays a small multiple of the
	// retirement window however long the run is.
	if mw := checker.MaxWindow(); mw > 4*window {
		t.Fatalf("peak checker window held %d ops, want <= %d (bounded by the window, not the history)", mw, 4*window)
	}
}
