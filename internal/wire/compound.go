package wire

import (
	"encoding/binary"
	"fmt"
)

// Compound-frame envelope. The transport's per-connection writer coalesces
// every frame queued in its outbox into one length-prefixed compound frame
// per socket write — memberlist's MakeCompoundMessage idiom — so a burst of
// small protocol messages costs one syscall instead of one per message. The
// first byte of every transport payload is an envelope tag:
//
//	raw:      0x00 | payload
//	compound: 0x01 | uvarint count | count x uvarint length | payloads
//
// Member lengths precede the payloads (not interleaved) so a decoder can
// validate the whole shape before touching any payload bytes.
const (
	// FrameRaw tags a payload carrying exactly one frame.
	FrameRaw byte = 0x00
	// FrameCompound tags a payload carrying a batch of frames.
	FrameCompound byte = 0x01
)

// AppendRaw appends the raw-frame envelope for payload to dst.
func AppendRaw(dst, payload []byte) []byte {
	dst = append(dst, FrameRaw)
	return append(dst, payload...)
}

// AppendCompound appends the compound-frame envelope for the batch to dst.
// A batch of one still round-trips, but callers should prefer AppendRaw for
// it (two bytes cheaper and the common case under light load).
func AppendCompound(dst []byte, frames [][]byte) []byte {
	dst = append(dst, FrameCompound)
	dst = binary.AppendUvarint(dst, uint64(len(frames)))
	for _, f := range frames {
		dst = binary.AppendUvarint(dst, uint64(len(f)))
	}
	for _, f := range frames {
		dst = append(dst, f...)
	}
	return dst
}

// SplitFrames decodes a tagged transport payload into its member frames: a
// raw payload yields one frame, a compound payload yields the batch in
// order. The returned subslices alias data — callers that retain a frame
// past the payload's lifetime must copy it. Malformed envelopes (unknown
// tag, truncated lengths, lengths overrunning the payload) are errors; the
// count is bounded by the payload size before any allocation, so a hostile
// header cannot force one.
func SplitFrames(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty transport payload")
	}
	tag, rest := data[0], data[1:]
	switch tag {
	case FrameRaw:
		return [][]byte{rest}, nil
	case FrameCompound:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wire: compound frame: bad member count")
		}
		rest = rest[n:]
		// Each member costs at least one length byte, so a legitimate count
		// never exceeds the remaining payload size.
		if count > uint64(len(rest)) {
			return nil, fmt.Errorf("wire: compound frame: count %d exceeds payload", count)
		}
		lengths := make([]uint64, count)
		var total uint64
		for i := range lengths {
			l, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("wire: compound frame: truncated length %d/%d", i+1, count)
			}
			rest = rest[n:]
			lengths[i] = l
			// Bound l before summing: a near-2^64 length could wrap total
			// past the overrun check.
			if l > uint64(len(rest)) {
				return nil, fmt.Errorf("wire: compound frame: members overrun payload")
			}
			total += l
			if total > uint64(len(rest)) {
				return nil, fmt.Errorf("wire: compound frame: members overrun payload")
			}
		}
		if total != uint64(len(rest)) {
			return nil, fmt.Errorf("wire: compound frame: %d payload bytes, members declare %d", len(rest), total)
		}
		frames := make([][]byte, count)
		for i, l := range lengths {
			frames[i] = rest[:l:l]
			rest = rest[l:]
		}
		return frames, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame envelope tag 0x%02x", tag)
	}
}
