package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestCompoundRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("a")},
		{[]byte("a"), []byte("bb"), []byte("ccc")},
		{{}, []byte("x"), {}}, // empty members survive
		{bytes.Repeat([]byte{0xab}, 4096), []byte{0}},
	}
	for i, frames := range cases {
		enc := AppendCompound(nil, frames)
		got, err := SplitFrames(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(frames) {
			t.Fatalf("case %d: %d frames, want %d", i, len(got), len(frames))
		}
		for j := range frames {
			if !bytes.Equal(got[j], frames[j]) {
				t.Fatalf("case %d frame %d: %q != %q", i, j, got[j], frames[j])
			}
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{{}, []byte("hello"), {0x00, 0x01}} {
		got, err := SplitFrames(AppendRaw(nil, payload))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], payload) {
			t.Fatalf("raw round trip of %q gave %q", payload, got)
		}
	}
}

func TestSplitFramesRejectsMalformed(t *testing.T) {
	huge := binary.AppendUvarint([]byte{FrameCompound}, 1)
	huge = binary.AppendUvarint(huge, 1<<62) // member length near overflow
	cases := map[string][]byte{
		"empty payload":     {},
		"unknown tag":       {0x7f, 1, 2, 3},
		"truncated count":   {FrameCompound},
		"count too large":   binary.AppendUvarint([]byte{FrameCompound}, 1<<40),
		"truncated lengths": binary.AppendUvarint(binary.AppendUvarint([]byte{FrameCompound}, 2), 1),
		"members overrun":   append(binary.AppendUvarint(binary.AppendUvarint([]byte{FrameCompound}, 1), 9), 'x'),
		"member underrun":   append(binary.AppendUvarint(binary.AppendUvarint([]byte{FrameCompound}, 1), 1), 'x', 'y'),
		"length overflow":   append(huge, 'x'),
	}
	for name, data := range cases {
		if _, err := SplitFrames(data); err == nil {
			t.Errorf("%s: SplitFrames accepted %v", name, data)
		}
	}
}
