// Package wire is the compact binary codec the real-network transport
// backend speaks: every ioa.Message an algorithm sends over a socket is
// framed as a one-byte type identifier followed by a hand-written varint
// body. The codec is a registry — each algorithm package (abd, cas, coded)
// registers a Codec per message type from an assigned identifier range in
// its init, keeping the field layout next to the type it serializes while
// this package owns the envelope, the primitive encoders and the decode
// hardening (bounds-checked lengths, no panics on malformed input).
//
// Identifier ranges (a Register collision panics at init):
//
//	0x10–0x1f  internal/abd    (query/put and their acks)
//	0x20–0x2f  internal/cas    (query-fin, pre-write, finalize, read-fin)
//	0x30–0x3f  internal/coded  (W1/W2, read, gossip finalization notes)
//
// Every Codec also carries a Sample generator, which is how the fuzz tests
// round-trip *every* registered message type without this package knowing
// any concrete type: Sample(seed) -> Encode -> Decode -> re-Encode must be
// the identity on bytes and reflect.DeepEqual on values.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"

	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/register"
)

// TypeID identifies a registered message type on the wire.
type TypeID byte

// Codec serializes one concrete message type. Encode appends the body to
// the buffer; Decode consumes it from the reader and returns the message as
// the same concrete value type the automata type-switch on. Sample produces
// a deterministic pseudo-random instance for the round-trip fuzz tests.
type Codec struct {
	// Name labels the type in errors and test output (e.g. "abd.putMsg").
	Name string
	// Encode appends the message body (everything after the TypeID byte).
	Encode func(b *Buffer, msg ioa.Message)
	// Decode reads the body back. Implementations use the Reader's sticky
	// error: read every field, then rely on Decode's final Err check.
	Decode func(r *Reader) ioa.Message
	// Sample returns a deterministic instance derived from seed.
	Sample func(seed uint64) ioa.Message
}

// registry maps both directions: TypeID -> Codec for decoding and concrete
// reflect.Type -> TypeID for encoding. Populated at init time only (the
// algorithm packages' init functions), read-only afterwards — no locking.
var (
	codecs  = map[TypeID]Codec{}
	typeIDs = map[reflect.Type]TypeID{}
)

// Register binds a TypeID to a codec. The sample message fixes the concrete
// Go type the codec encodes. Register panics on a duplicate id or type —
// a wire-format bug that must fail at init, not at send time.
func Register(id TypeID, c Codec) {
	if _, dup := codecs[id]; dup {
		panic(fmt.Sprintf("wire: duplicate type id 0x%02x (%s)", byte(id), c.Name))
	}
	rt := reflect.TypeOf(c.Sample(0))
	if prev, dup := typeIDs[rt]; dup {
		panic(fmt.Sprintf("wire: type %v registered twice (ids 0x%02x and 0x%02x)", rt, byte(prev), byte(id)))
	}
	codecs[id] = c
	typeIDs[rt] = id
}

// Types returns the registered type ids, ascending — the fuzz tests sweep
// the registry through this.
func Types() []TypeID {
	out := make([]TypeID, 0, len(codecs))
	for id := range codecs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CodecFor returns the codec registered under id.
func CodecFor(id TypeID) (Codec, bool) {
	c, ok := codecs[id]
	return c, ok
}

// Append encodes the message onto dst ([TypeID][body]) and returns the
// extended slice. Unregistered message types are an error: the transport
// backend can only carry what the codec knows.
func Append(dst []byte, msg ioa.Message) ([]byte, error) {
	id, ok := typeIDs[reflect.TypeOf(msg)]
	if !ok {
		return dst, fmt.Errorf("wire: message type %T is not registered", msg)
	}
	b := Buffer{buf: append(dst, byte(id))}
	codecs[id].Encode(&b, msg)
	return b.buf, nil
}

// Encode encodes the message into a fresh envelope.
func Encode(msg ioa.Message) ([]byte, error) { return Append(nil, msg) }

// Decode parses one envelope produced by Encode/Append. Malformed input —
// unknown type id, truncated body, trailing bytes, oversized lengths —
// returns an error; it never panics and never allocates beyond the input's
// own length.
func Decode(data []byte) (ioa.Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty envelope")
	}
	c, ok := codecs[TypeID(data[0])]
	if !ok {
		return nil, fmt.Errorf("wire: unknown type id 0x%02x", data[0])
	}
	r := Reader{buf: data[1:]}
	msg := c.Decode(&r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("wire: %s: %w", c.Name, err)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("wire: %s: %d trailing bytes", c.Name, len(r.buf))
	}
	return msg, nil
}

// --- primitive encoding ---

// Buffer accumulates an encoded body. The primitives mirror Reader's.
type Buffer struct{ buf []byte }

// Bytes returns the accumulated encoding.
func (b *Buffer) Bytes() []byte { return b.buf }

// Uvarint appends an unsigned varint.
func (b *Buffer) Uvarint(v uint64) { b.buf = binary.AppendUvarint(b.buf, v) }

// Varint appends a signed (zigzag) varint.
func (b *Buffer) Varint(v int64) { b.buf = binary.AppendVarint(b.buf, v) }

// Bool appends a single 0/1 byte.
func (b *Buffer) Bool(v bool) {
	if v {
		b.buf = append(b.buf, 1)
	} else {
		b.buf = append(b.buf, 0)
	}
}

// Bytes8 appends a length-prefixed byte string.
func (b *Buffer) Bytes8(v []byte) {
	b.Uvarint(uint64(len(v)))
	b.buf = append(b.buf, v...)
}

// Tag appends a register version tag (sequence + writer id).
func (b *Buffer) Tag(t register.Tag) {
	b.Varint(t.Seq)
	b.Varint(int64(t.Writer))
}

// Shard appends an erasure-coded element (index + data).
func (b *Buffer) Shard(s erasure.Shard) {
	b.Varint(int64(s.Index))
	b.Bytes8(s.Data)
}

// Reader consumes an encoded body with a sticky error: after the first
// malformed field every subsequent read returns the zero value, and Decode
// surfaces Err once at the end — codecs read fields unconditionally.
type Reader struct {
	buf []byte
	err error
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
		r.buf = nil
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) == 0 {
		r.fail("truncated bool")
		return false
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	if v > 1 {
		r.fail("bool byte 0x%02x", v)
		return false
	}
	return v == 1
}

// Bytes8 reads a length-prefixed byte string. The length is validated
// against the remaining input before allocating, so a malicious prefix
// cannot force a huge allocation. Zero length decodes to nil, preserving
// Encode(Decode(x)) == x for messages built with nil slices.
func (r *Reader) Bytes8() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("byte string length %d exceeds %d remaining bytes", n, len(r.buf))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}

// Tag reads a register version tag.
func (r *Reader) Tag() register.Tag {
	seq := r.Varint()
	w := r.Varint()
	if w < math.MinInt32 || w > math.MaxInt32 {
		r.fail("tag writer id %d outside int32 range", w)
	}
	return register.Tag{Seq: seq, Writer: ioa.NodeID(w)}
}

// Shard reads an erasure-coded element.
func (r *Reader) Shard() erasure.Shard {
	idx := r.Varint()
	data := r.Bytes8()
	if idx < 0 || idx > math.MaxInt32 {
		r.fail("shard index %d outside [0, MaxInt32]", idx)
	}
	return erasure.Shard{Index: int(idx), Data: data}
}
