package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// FuzzWireRoundTrip drives every registered message type through
// Encode/Decode with fuzz-chosen sample seeds. Each codec's Sample covers
// its type's value space (optional fields present and absent, varying value
// and shard lengths), so one fuzz target round-trips the whole registry —
// including types added after this test was written.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(1<<63 - 1))
	f.Add(uint64(0xdeadbeefcafe))
	f.Fuzz(func(t *testing.T, seed uint64) {
		for _, id := range wire.Types() {
			c, _ := wire.CodecFor(id)
			msg := c.Sample(seed)
			data, err := wire.Encode(msg)
			if err != nil {
				t.Fatalf("%s: encode: %v", c.Name, err)
			}
			back, err := wire.Decode(data)
			if err != nil {
				t.Fatalf("%s: decode: %v", c.Name, err)
			}
			if !reflect.DeepEqual(msg, back) {
				t.Fatalf("%s: round trip changed the message:\n sent %#v\n got  %#v", c.Name, msg, back)
			}
		}
	})
}

// FuzzWireDecodeRobust throws arbitrary bytes at Decode: it must never
// panic and never allocate beyond the input's own length, whatever the
// (possibly hostile) peer sent.
func FuzzWireDecodeRobust(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x10})
	f.Add([]byte{0x27, 0x01, 0x01, 0xff, 0xff, 0xff, 0xff, 0x0f})
	for _, id := range wire.Types() {
		c, _ := wire.CodecFor(id)
		if data, err := wire.Encode(c.Sample(3)); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := wire.Decode(data)
		if err != nil {
			return
		}
		// Anything that decodes cleanly must survive a second round trip
		// unchanged. (Byte identity is not required: varint readers accept
		// non-minimal paddings that re-encode shorter.)
		again, err := wire.Encode(msg)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", msg, err)
		}
		back, err := wire.Decode(again)
		if err != nil {
			t.Fatalf("re-encoded %T fails to decode: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Fatalf("second round trip changed %T:\n first  %#v\n second %#v", msg, msg, back)
		}
	})
}

// FuzzCompoundSplit drives the compound-frame envelope decoder with
// arbitrary bytes (it must reject or split, never panic or over-read) and,
// when the input survives, re-encodes the members and requires a stable
// round trip.
func FuzzCompoundSplit(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x00})
	f.Add(wire.AppendCompound(nil, [][]byte{[]byte("a"), []byte("bb")}))
	f.Add(wire.AppendRaw(nil, []byte("payload")))
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := wire.SplitFrames(data)
		if err != nil {
			return
		}
		var total int
		for _, fr := range frames {
			total += len(fr)
		}
		if total > len(data) {
			t.Fatalf("decoded %d member bytes from a %d-byte payload", total, len(data))
		}
		again, err := wire.SplitFrames(wire.AppendCompound(nil, frames))
		if err != nil {
			t.Fatalf("re-encode of split output failed: %v", err)
		}
		if len(again) != len(frames) {
			t.Fatalf("round trip changed member count %d -> %d", len(frames), len(again))
		}
		for i := range frames {
			if !bytes.Equal(again[i], frames[i]) {
				t.Fatalf("member %d changed across round trip", i)
			}
		}
	})
}
