package wire_test

import (
	"reflect"
	"testing"

	"repro/internal/wire"

	// Register every algorithm's message codecs.
	_ "repro/internal/abd"
	_ "repro/internal/cas"
	_ "repro/internal/coded"
)

// TestRegistryCoversAllAlgorithms pins the wire surface: every ABD, CAS and
// coded-register message type must be registered, in its package's assigned
// identifier range. A new message type that forgets its codec breaks the
// net backend at send time — this catches it at test time instead.
func TestRegistryCoversAllAlgorithms(t *testing.T) {
	ids := wire.Types()
	if len(ids) != 19 {
		t.Fatalf("registry holds %d types, want 19 (4 abd + 8 cas + 7 coded)", len(ids))
	}
	ranges := map[string][2]wire.TypeID{
		"abd.":   {0x10, 0x1f},
		"cas.":   {0x20, 0x2f},
		"coded.": {0x30, 0x3f},
	}
	for _, id := range ids {
		c, ok := wire.CodecFor(id)
		if !ok {
			t.Fatalf("Types() returned unregistered id 0x%02x", byte(id))
		}
		matched := false
		for prefix, rng := range ranges {
			if len(c.Name) >= len(prefix) && c.Name[:len(prefix)] == prefix {
				matched = true
				if id < rng[0] || id > rng[1] {
					t.Errorf("%s registered at 0x%02x outside its range [0x%02x, 0x%02x]",
						c.Name, byte(id), byte(rng[0]), byte(rng[1]))
				}
			}
		}
		if !matched {
			t.Errorf("codec %q (0x%02x) has no known package prefix", c.Name, byte(id))
		}
	}
}

// TestRoundTripEveryType round-trips deterministic samples of every
// registered message type: Decode(Encode(m)) must equal m structurally and
// re-encode to identical bytes.
func TestRoundTripEveryType(t *testing.T) {
	for _, id := range wire.Types() {
		c, _ := wire.CodecFor(id)
		t.Run(c.Name, func(t *testing.T) {
			for seed := uint64(0); seed < 64; seed++ {
				msg := c.Sample(seed)
				data, err := wire.Encode(msg)
				if err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
				back, err := wire.Decode(data)
				if err != nil {
					t.Fatalf("seed %d: decode: %v", seed, err)
				}
				if !reflect.DeepEqual(msg, back) {
					t.Fatalf("seed %d: round trip changed the message:\n sent %#v\n got  %#v", seed, msg, back)
				}
				again, err := wire.Encode(back)
				if err != nil {
					t.Fatalf("seed %d: re-encode: %v", seed, err)
				}
				if string(again) != string(data) {
					t.Fatalf("seed %d: re-encoding is not byte-identical", seed)
				}
			}
		})
	}
}

// TestDecodeRejectsMalformed covers the decode-hardening paths: empty
// input, unknown ids, truncation and trailing garbage all error cleanly.
func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := wire.Decode(nil); err == nil {
		t.Error("empty envelope must fail")
	}
	if _, err := wire.Decode([]byte{0xff}); err == nil {
		t.Error("unknown type id must fail")
	}
	// Truncate a real envelope at every split point.
	id := wire.Types()[0]
	c, _ := wire.CodecFor(id)
	full, err := wire.Encode(c.Sample(7))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := wire.Decode(full[:cut]); err == nil {
			t.Errorf("truncation at %d of %d decoded cleanly", cut, len(full))
		}
	}
	if _, err := wire.Decode(append(append([]byte(nil), full...), 0)); err == nil {
		t.Error("trailing byte must fail")
	}
	if _, err := wire.Encode("not registered"); err == nil {
		t.Error("unregistered message type must fail to encode")
	}
}
