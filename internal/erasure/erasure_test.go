package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		n, k   int
		wantOK bool
	}{
		{5, 3, true},
		{1, 1, true},
		{255, 255, true},
		{3, 5, false},
		{5, 0, false},
		{256, 3, false},
		{0, 0, false},
	}
	for _, tt := range tests {
		_, err := New(tt.n, tt.k)
		if (err == nil) != tt.wantOK {
			t.Errorf("New(%d, %d): err=%v, wantOK=%v", tt.n, tt.k, err, tt.wantOK)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := New(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	values := [][]byte{
		nil,
		{},
		{0x42},
		[]byte("hello shared memory"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	for _, v := range values {
		shards, err := c.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != 7 {
			t.Fatalf("got %d shards, want 7", len(shards))
		}
		got, err := c.Decode(shards[:3])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v) {
			t.Errorf("round trip mismatch for %q", v)
		}
	}
}

func TestDecodeFromAnySubset(t *testing.T) {
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	value := []byte("the quick brown fox jumps over the lazy dog")
	shards, err := c.Encode(value)
	if err != nil {
		t.Fatal(err)
	}
	// All C(6,3) = 20 subsets must decode.
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			for d := b + 1; d < 6; d++ {
				got, err := c.Decode([]Shard{shards[a], shards[b], shards[d]})
				if err != nil {
					t.Fatalf("subset (%d,%d,%d): %v", a, b, d, err)
				}
				if !bytes.Equal(got, value) {
					t.Fatalf("subset (%d,%d,%d): wrong value", a, b, d)
				}
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := c.Encode([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(shards[:2]); err == nil {
		t.Error("decoding with k-1 shards should fail")
	}
	// Duplicate indices do not count twice.
	if _, err := c.Decode([]Shard{shards[0], shards[0], shards[0]}); err == nil {
		t.Error("decoding with duplicated shard should fail")
	}
	bad := []Shard{shards[0], shards[1], {Index: 99, Data: shards[2].Data}}
	if _, err := c.Decode(bad); err == nil {
		t.Error("out-of-range index should fail")
	}
	mixed := []Shard{shards[0], shards[1], {Index: 2, Data: []byte{1}}}
	if _, err := c.Decode(mixed); err == nil {
		t.Error("inconsistent shard length should fail")
	}
}

func TestEncodeOneMatchesEncode(t *testing.T) {
	c, err := New(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny values make the shards shorter than the 4-byte header, so the
	// header spans several data shards — the degenerate layout EncodeOne's
	// region copies must handle.
	for _, value := range [][]byte{
		nil, {7}, {1, 2}, []byte("abc"), bytes.Repeat([]byte("abc123"), 33),
	} {
		all, err := c.Encode(value)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 9; i++ {
			one, err := c.EncodeOne(value, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(one.Data, all[i].Data) {
				t.Errorf("EncodeOne(%d) differs from Encode for %d-byte value", i, len(value))
			}
		}
	}
	value := bytes.Repeat([]byte("abc123"), 33)
	if _, err := c.EncodeOne(value, 9); err == nil {
		t.Error("EncodeOne out of range should fail")
	}
	if _, err := c.EncodeOne(value, -1); err == nil {
		t.Error("EncodeOne negative index should fail")
	}
}

func TestShardSize(t *testing.T) {
	c, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, valueLen := range []int{0, 1, 2, 3, 100, 1024} {
		value := make([]byte, valueLen)
		shards, err := c.Encode(value)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(shards[0].Data), c.ShardSize(valueLen); got != want {
			t.Errorf("valueLen=%d: shard size %d, want %d", valueLen, got, want)
		}
	}
}

// TestDecodeRandomSubsetsProperty is a property-based test: for random
// (n, k), value and shard subset, Decode(Encode(v)) == v.
func TestDecodeRandomSubsetsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		n := k + r.Intn(8)
		c, err := New(n, k)
		if err != nil {
			return false
		}
		value := make([]byte, r.Intn(200))
		r.Read(value)
		shards, err := c.Encode(value)
		if err != nil {
			return false
		}
		perm := r.Perm(n)
		chosen := make([]Shard, k)
		for i := 0; i < k; i++ {
			chosen[i] = shards[perm[i]]
		}
		got, err := c.Decode(chosen)
		if err != nil {
			return false
		}
		return bytes.Equal(got, value)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestStorageFraction(t *testing.T) {
	// A shard of an (n, k) code must carry ~1/k of the value bits: this is
	// the arithmetic behind every storage-cost bound in the paper.
	c, err := New(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	valueLen := 4096
	shardBits := 8 * c.ShardSize(valueLen)
	valueBits := 8 * valueLen
	ratio := float64(shardBits) / float64(valueBits)
	if ratio < 0.25 || ratio > 0.26 {
		t.Errorf("shard/value bit ratio = %f, want ~1/k = 0.25", ratio)
	}
}

func BenchmarkEncode(b *testing.B) {
	c, err := New(21, 11)
	if err != nil {
		b.Fatal(err)
	}
	value := make([]byte, 64<<10)
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	c, err := New(21, 11)
	if err != nil {
		b.Fatal(err)
	}
	value := make([]byte, 64<<10)
	shards, err := c.Encode(value)
	if err != nil {
		b.Fatal(err)
	}
	subset := shards[10:21]
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(subset); err != nil {
			b.Fatal(err)
		}
	}
}
