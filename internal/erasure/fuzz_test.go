package erasure

import (
	"bytes"
	"testing"
)

// FuzzErasureRoundTrip checks the MDS contract on arbitrary inputs: encode a
// value under an (n, k) code, lose up to n-k shards (chosen by a fuzzed bit
// mask), and the remaining shards must decode to exactly the original value.
func FuzzErasureRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(3), []byte("hello, world"), uint16(0b10001))
	f.Add(uint8(1), uint8(1), []byte{}, uint16(0))
	f.Add(uint8(9), uint8(5), bytes.Repeat([]byte{0xab}, 300), uint16(0b1111))
	f.Add(uint8(12), uint8(4), []byte{0, 0, 0, 0}, uint16(0xffff))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, value []byte, lossMask uint16) {
		n := int(nRaw)%16 + 1
		k := int(kRaw)%n + 1
		if len(value) > 1<<12 {
			value = value[:1<<12]
		}
		code, err := New(n, k)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", n, k, err)
		}
		shards, err := code.Encode(value)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if len(shards) != n {
			t.Fatalf("Encode produced %d shards, want %d", len(shards), n)
		}
		// Lose shards where the mask has a 1 bit, stopping at the n-k
		// erasure budget the MDS property guarantees against.
		kept := make([]Shard, 0, n)
		lost := 0
		for i, s := range shards {
			if lossMask&(1<<i) != 0 && lost < n-k {
				lost++
				continue
			}
			kept = append(kept, s)
		}
		got, err := code.Decode(kept)
		if err != nil {
			t.Fatalf("Decode with %d/%d shards lost: %v", lost, n, err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("round trip mismatch: n=%d k=%d lost=%d got %d bytes, want %d", n, k, lost, len(got), len(value))
		}
	})
}
