// Package erasure implements an (n, k) maximum-distance-separable (MDS)
// erasure code over GF(2^8), in the style of classical Reed-Solomon codes.
//
// A value of b bytes is split into k data shards of ceil(b/k) bytes; n total
// shards are produced such that ANY k of the n shards suffice to reconstruct
// the value. Each shard therefore carries 1/k of the value's bits, which is
// the storage-cost arithmetic at the heart of the paper: a server storing one
// shard of an (n, k) code stores log2|V| / k bits of value information.
//
// The code is systematic: shards 0..k-1 are the raw data splits, and shards
// k..n-1 are parity computed from a Vandermonde-derived encoding matrix whose
// every k x k submatrix is invertible (the MDS property).
package erasure

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/gf"
)

// Code is an (n, k) MDS erasure coder. It is immutable after construction
// (the decode-matrix cache is internally synchronized) and safe for
// concurrent use.
type Code struct {
	n, k   int
	field  *gf.Field
	matrix *gf.Matrix // n x k encoding matrix; top k rows are identity

	// invCache memoizes decode matrices by shard-index set: sweeps decode
	// thousands of values under a handful of availability patterns, and
	// inverting the k x k submatrix per value dwarfs the row multiplies
	// themselves. Keys are string(indices), values are *gf.Matrix.
	invCache sync.Map

	// scratch pools the split buffer used by EncodeOne and Decode so the
	// steady state of a sweep allocates only the bytes it returns.
	scratch sync.Pool
}

// Shard is one coded symbol of a value, tagged with its index in [0, n).
type Shard struct {
	Index int
	Data  []byte
}

// New constructs an (n, k) code. It requires 1 <= k <= n < 256.
func New(n, k int) (*Code, error) {
	if k < 1 || n < k || n >= gf.Order {
		return nil, fmt.Errorf("erasure: invalid parameters n=%d k=%d (need 1 <= k <= n < %d)", n, k, gf.Order)
	}
	field := gf.Default()
	// Build a systematic encoding matrix: start from an n x k Vandermonde
	// matrix, then multiply by the inverse of its top k x k block so the top
	// becomes the identity. The MDS property is preserved by this row basis
	// change.
	vm, err := gf.Vandermonde(field, n, k)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	topRows := make([]int, k)
	for i := range topRows {
		topRows[i] = i
	}
	top, err := vm.SubMatrix(topRows)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	topInv, err := top.Invert(field)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	systematic, err := vm.Mul(field, topInv)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return &Code{n: n, k: k, field: field, matrix: systematic}, nil
}

// N returns the total number of shards produced per value.
func (c *Code) N() int { return c.n }

// K returns the number of shards required to reconstruct a value.
func (c *Code) K() int { return c.k }

// ShardSize returns the byte length of each shard for a value of valueLen
// bytes, including the 4-byte length header amortized into the first split.
func (c *Code) ShardSize(valueLen int) int {
	return (valueLen + 4 + c.k - 1) / c.k
}

// getScratch returns a zeroed buffer of at least size bytes from the pool.
func (c *Code) getScratch(size int) []byte {
	if v := c.scratch.Get(); v != nil {
		buf := *(v.(*[]byte))
		if cap(buf) >= size {
			buf = buf[:size]
			clear(buf)
			return buf
		}
	}
	return make([]byte, size)
}

func (c *Code) putScratch(buf []byte) { c.scratch.Put(&buf) }

// Encode splits value into k data shards and produces all n shards.
// The returned shards do not alias value.
//
// All n shards are carved out of one contiguous block: the header and value
// are laid down directly in the data-shard region, so encoding performs no
// intermediate split copy and allocates exactly the bytes it returns. The
// shards therefore alias each other's backing array — retaining one shard
// long-term retains the whole block; callers keeping a single shard per
// server should use EncodeOne, which allocates that shard alone.
func (c *Code) Encode(value []byte) ([]Shard, error) {
	shardLen := c.ShardSize(len(value))
	block := make([]byte, c.n*shardLen)
	binary.BigEndian.PutUint32(block, uint32(len(value)))
	copy(block[4:], value)
	shards := make([]Shard, c.n)
	for i := 0; i < c.n; i++ {
		data := block[i*shardLen : (i+1)*shardLen : (i+1)*shardLen]
		if i >= c.k {
			for j := 0; j < c.k; j++ {
				c.field.MulSlice(c.matrix.At(i, j), block[j*shardLen:(j+1)*shardLen], data)
			}
		}
		shards[i] = Shard{Index: i, Data: data}
	}
	return shards, nil
}

// EncodeOne produces only the shard with the given index. It is used by
// writers that stream one shard per server without materializing all n.
func (c *Code) EncodeOne(value []byte, index int) (Shard, error) {
	if index < 0 || index >= c.n {
		return Shard{}, fmt.Errorf("erasure: shard index %d out of range [0,%d)", index, c.n)
	}
	shardLen := c.ShardSize(len(value))
	data := make([]byte, shardLen)
	if index < c.k {
		// Data shard: the index-th slice of header+value+padding, assembled
		// by region copies (data is already zeroed, covering the padding).
		off := index * shardLen
		n := 0
		if off < 4 {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(len(value)))
			n = copy(data, hdr[off:])
		}
		if n < shardLen {
			if vstart := off + n - 4; vstart >= 0 && vstart < len(value) {
				copy(data[n:], value[vstart:])
			}
		}
		return Shard{Index: index, Data: data}, nil
	}
	splits := c.getScratch(c.k * shardLen)
	binary.BigEndian.PutUint32(splits, uint32(len(value)))
	copy(splits[4:], value)
	for j := 0; j < c.k; j++ {
		c.field.MulSlice(c.matrix.At(index, j), splits[j*shardLen:(j+1)*shardLen], data)
	}
	c.putScratch(splits)
	return Shard{Index: index, Data: data}, nil
}

// Decode reconstructs the original value from any k (or more) distinct
// shards. Extra shards beyond k are ignored. It returns an error if fewer
// than k distinct shard indices are supplied or the shards are inconsistent
// in length.
func (c *Code) Decode(shards []Shard) ([]byte, error) {
	// Deduplicate by index, keeping the k lowest distinct indices —
	// deterministic, and identical to sorting the distinct set and taking
	// its prefix.
	var have [gf.Order][]byte
	distinct := 0
	for _, s := range shards {
		if s.Index < 0 || s.Index >= c.n {
			return nil, fmt.Errorf("erasure: shard index %d out of range [0,%d)", s.Index, c.n)
		}
		if have[s.Index] == nil {
			have[s.Index] = s.Data
			distinct++
		}
	}
	if distinct < c.k {
		return nil, fmt.Errorf("erasure: need %d distinct shards, have %d", c.k, distinct)
	}
	idxs := make([]int, 0, c.k)
	for i := 0; i < c.n && len(idxs) < c.k; i++ {
		if have[i] != nil {
			idxs = append(idxs, i)
		}
	}
	shardLen := len(have[idxs[0]])
	for _, i := range idxs {
		if len(have[i]) != shardLen {
			return nil, fmt.Errorf("erasure: inconsistent shard lengths (%d vs %d)", len(have[i]), shardLen)
		}
	}

	// Fast path: all k data shards present — gather the value straight out
	// of the shards, no matrix work and no intermediate split buffer.
	if idxs[c.k-1] == c.k-1 {
		return c.joinDataShards(&have, shardLen)
	}

	inv, err := c.decodeMatrix(idxs)
	if err != nil {
		return nil, err
	}
	// splits[j] = sum_i inv[j][i] * shard[idxs[i]], accumulated into one
	// pooled buffer holding all k splits contiguously.
	buf := c.getScratch(c.k * shardLen)
	for j := 0; j < c.k; j++ {
		dst := buf[j*shardLen : (j+1)*shardLen]
		for i := 0; i < c.k; i++ {
			c.field.MulSlice(inv.At(j, i), have[idxs[i]], dst)
		}
	}
	out, err := c.join(buf, shardLen)
	c.putScratch(buf)
	return out, err
}

// decodeMatrix returns the inverse of the encoding submatrix for the given
// ascending shard-index set, memoized per availability pattern.
func (c *Code) decodeMatrix(idxs []int) (*gf.Matrix, error) {
	key := make([]byte, len(idxs))
	for i, idx := range idxs {
		key[i] = byte(idx)
	}
	if m, ok := c.invCache.Load(string(key)); ok {
		return m.(*gf.Matrix), nil
	}
	sub, err := c.matrix.SubMatrix(idxs)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	inv, err := sub.Invert(c.field)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	c.invCache.Store(string(key), inv)
	return inv, nil
}

// joinDataShards reassembles the value directly from the k data shards
// (have[0..k-1]), reading the possibly shard-spanning length header and
// copying each byte exactly once.
func (c *Code) joinDataShards(have *[gf.Order][]byte, shardLen int) ([]byte, error) {
	total := c.k * shardLen
	if total < 4 {
		return nil, fmt.Errorf("erasure: decoded buffer too short (%d bytes)", total)
	}
	var hdr [4]byte
	for i := 0; i < 4; i++ {
		hdr[i] = have[i/shardLen][i%shardLen]
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > total-4 {
		return nil, fmt.Errorf("erasure: corrupt length header %d (buffer %d)", n, total-4)
	}
	out := make([]byte, n)
	copied := 0
	for j := 0; j < c.k && copied < n; j++ {
		off := j * shardLen
		if off+shardLen <= 4 {
			continue // shard holds header bytes only
		}
		s := have[j]
		if off < 4 {
			s = s[4-off:]
		}
		copied += copy(out[copied:], s)
	}
	return out, nil
}

// join extracts the value from the contiguous splits buffer, stripping the
// length header and padding.
func (c *Code) join(buf []byte, shardLen int) ([]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("erasure: decoded buffer too short (%d bytes)", len(buf))
	}
	n := binary.BigEndian.Uint32(buf)
	if int(n) > len(buf)-4 {
		return nil, fmt.Errorf("erasure: corrupt length header %d (buffer %d)", n, len(buf)-4)
	}
	out := make([]byte, n)
	copy(out, buf[4:4+n])
	return out, nil
}
