// Package erasure implements an (n, k) maximum-distance-separable (MDS)
// erasure code over GF(2^8), in the style of classical Reed-Solomon codes.
//
// A value of b bytes is split into k data shards of ceil(b/k) bytes; n total
// shards are produced such that ANY k of the n shards suffice to reconstruct
// the value. Each shard therefore carries 1/k of the value's bits, which is
// the storage-cost arithmetic at the heart of the paper: a server storing one
// shard of an (n, k) code stores log2|V| / k bits of value information.
//
// The code is systematic: shards 0..k-1 are the raw data splits, and shards
// k..n-1 are parity computed from a Vandermonde-derived encoding matrix whose
// every k x k submatrix is invertible (the MDS property).
package erasure

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/gf"
)

// Code is an (n, k) MDS erasure coder. It is immutable after construction
// and safe for concurrent use.
type Code struct {
	n, k   int
	field  *gf.Field
	matrix *gf.Matrix // n x k encoding matrix; top k rows are identity
}

// Shard is one coded symbol of a value, tagged with its index in [0, n).
type Shard struct {
	Index int
	Data  []byte
}

// New constructs an (n, k) code. It requires 1 <= k <= n < 256.
func New(n, k int) (*Code, error) {
	if k < 1 || n < k || n >= gf.Order {
		return nil, fmt.Errorf("erasure: invalid parameters n=%d k=%d (need 1 <= k <= n < %d)", n, k, gf.Order)
	}
	field := gf.NewField()
	// Build a systematic encoding matrix: start from an n x k Vandermonde
	// matrix, then multiply by the inverse of its top k x k block so the top
	// becomes the identity. The MDS property is preserved by this row basis
	// change.
	vm, err := gf.Vandermonde(field, n, k)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	topRows := make([]int, k)
	for i := range topRows {
		topRows[i] = i
	}
	top, err := vm.SubMatrix(topRows)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	topInv, err := top.Invert(field)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	systematic, err := vm.Mul(field, topInv)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return &Code{n: n, k: k, field: field, matrix: systematic}, nil
}

// N returns the total number of shards produced per value.
func (c *Code) N() int { return c.n }

// K returns the number of shards required to reconstruct a value.
func (c *Code) K() int { return c.k }

// ShardSize returns the byte length of each shard for a value of valueLen
// bytes, including the 4-byte length header amortized into the first split.
func (c *Code) ShardSize(valueLen int) int {
	return (valueLen + 4 + c.k - 1) / c.k
}

// Encode splits value into k data shards and produces all n shards.
// The returned shards do not alias value.
func (c *Code) Encode(value []byte) ([]Shard, error) {
	splits := c.split(value)
	shardLen := len(splits[0])
	shards := make([]Shard, c.n)
	for i := 0; i < c.n; i++ {
		data := make([]byte, shardLen)
		if i < c.k {
			copy(data, splits[i])
		} else {
			for j := 0; j < c.k; j++ {
				c.field.MulSlice(c.matrix.At(i, j), splits[j], data)
			}
		}
		shards[i] = Shard{Index: i, Data: data}
	}
	return shards, nil
}

// EncodeOne produces only the shard with the given index. It is used by
// writers that stream one shard per server without materializing all n.
func (c *Code) EncodeOne(value []byte, index int) (Shard, error) {
	if index < 0 || index >= c.n {
		return Shard{}, fmt.Errorf("erasure: shard index %d out of range [0,%d)", index, c.n)
	}
	splits := c.split(value)
	data := make([]byte, len(splits[0]))
	if index < c.k {
		copy(data, splits[index])
	} else {
		for j := 0; j < c.k; j++ {
			c.field.MulSlice(c.matrix.At(index, j), splits[j], data)
		}
	}
	return Shard{Index: index, Data: data}, nil
}

// Decode reconstructs the original value from any k (or more) distinct
// shards. Extra shards beyond k are ignored. It returns an error if fewer
// than k distinct shard indices are supplied or the shards are inconsistent
// in length.
func (c *Code) Decode(shards []Shard) ([]byte, error) {
	// Deduplicate by index, keeping deterministic order.
	byIdx := make(map[int]Shard, len(shards))
	for _, s := range shards {
		if s.Index < 0 || s.Index >= c.n {
			return nil, fmt.Errorf("erasure: shard index %d out of range [0,%d)", s.Index, c.n)
		}
		if _, dup := byIdx[s.Index]; !dup {
			byIdx[s.Index] = s
		}
	}
	if len(byIdx) < c.k {
		return nil, fmt.Errorf("erasure: need %d distinct shards, have %d", c.k, len(byIdx))
	}
	idxs := make([]int, 0, len(byIdx))
	for i := range byIdx {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	idxs = idxs[:c.k]

	shardLen := len(byIdx[idxs[0]].Data)
	for _, i := range idxs {
		if len(byIdx[i].Data) != shardLen {
			return nil, fmt.Errorf("erasure: inconsistent shard lengths (%d vs %d)", len(byIdx[i].Data), shardLen)
		}
	}

	sub, err := c.matrix.SubMatrix(idxs)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	inv, err := sub.Invert(c.field)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	// splits[j] = sum_i inv[j][i] * shard[idxs[i]]
	splits := make([][]byte, c.k)
	for j := 0; j < c.k; j++ {
		splits[j] = make([]byte, shardLen)
		for i := 0; i < c.k; i++ {
			c.field.MulSlice(inv.At(j, i), byIdx[idxs[i]].Data, splits[j])
		}
	}
	return c.join(splits)
}

// split prefixes value with a 4-byte big-endian length and pads to a multiple
// of k, then slices into k equal splits.
func (c *Code) split(value []byte) [][]byte {
	total := len(value) + 4
	shardLen := (total + c.k - 1) / c.k
	buf := make([]byte, shardLen*c.k)
	binary.BigEndian.PutUint32(buf, uint32(len(value)))
	copy(buf[4:], value)
	splits := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		splits[i] = buf[i*shardLen : (i+1)*shardLen]
	}
	return splits
}

// join reassembles the splits and strips the length header and padding.
func (c *Code) join(splits [][]byte) ([]byte, error) {
	shardLen := len(splits[0])
	buf := make([]byte, 0, shardLen*c.k)
	for _, s := range splits {
		buf = append(buf, s...)
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("erasure: decoded buffer too short (%d bytes)", len(buf))
	}
	n := binary.BigEndian.Uint32(buf)
	if int(n) > len(buf)-4 {
		return nil, fmt.Errorf("erasure: corrupt length header %d (buffer %d)", n, len(buf)-4)
	}
	out := make([]byte, n)
	copy(out, buf[4:4+n])
	return out, nil
}
