package erasure

import (
	"bytes"
	"testing"
)

// BenchmarkEncodeDecode measures a full encode of a 4 KiB value into an
// (9, 5) code followed by a worst-case decode (all data shards lost, so the
// decoder must invert a parity submatrix every iteration).
func BenchmarkEncodeDecode(b *testing.B) {
	c, err := New(9, 5)
	if err != nil {
		b.Fatal(err)
	}
	value := make([]byte, 4096)
	for i := range value {
		value[i] = byte(i * 131)
	}
	b.SetBytes(int64(len(value)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shards, err := c.Encode(value)
		if err != nil {
			b.Fatal(err)
		}
		got, err := c.Decode(shards[4:])
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !bytes.Equal(got, value) {
			b.Fatal("round trip mismatch")
		}
	}
}
