package consistency

// deadTable is an open-addressed hash set of fixed-width uint64 keys (the
// linearizability checker's packed search states). Keys live contiguously in
// a flat arena, so inserting a state appends keyWords words instead of
// allocating a string per memo entry, and lookups are word compares with no
// hashing of intermediate allocations.
type deadTable struct {
	keyWords int
	arena    []uint64 // concatenated keys, keyWords each
	slots    []int32  // index of key in arena / keyWords, plus 1; 0 = empty
	n        int
}

const deadTableInitSlots = 256

func (t *deadTable) init(keyWords int) {
	t.keyWords = keyWords
	t.slots = make([]int32, deadTableInitSlots)
	t.arena = t.arena[:0]
	t.n = 0
}

// hash mixes the key words with a splitmix64-style finalizer.
func (t *deadTable) hash(key []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

func (t *deadTable) keyAt(slot int32) []uint64 {
	off := int(slot-1) * t.keyWords
	return t.arena[off : off+t.keyWords]
}

func equalKeys(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// contains reports whether the key is in the set.
func (t *deadTable) contains(key []uint64) bool {
	mask := uint64(len(t.slots) - 1)
	for i := t.hash(key) & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s == 0 {
			return false
		}
		if equalKeys(t.keyAt(s), key) {
			return true
		}
	}
}

// add inserts the key (assumed absent — the checker only adds after a failed
// contains).
func (t *deadTable) add(key []uint64) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	t.arena = append(t.arena, key...)
	t.n++
	t.insertSlot(int32(t.n))
}

func (t *deadTable) insertSlot(s int32) {
	key := t.keyAt(s)
	mask := uint64(len(t.slots) - 1)
	i := t.hash(key) & mask
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = s
}

func (t *deadTable) grow() {
	t.slots = make([]int32, 2*len(t.slots))
	for s := int32(1); s <= int32(t.n); s++ {
		t.insertSlot(s)
	}
}
