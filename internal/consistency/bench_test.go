package consistency

import (
	"encoding/binary"
	"testing"

	"repro/internal/ioa"
)

// denseHistory builds a linearizable history of `rounds` rounds, each with
// two overlapping writes and three reads interleaved among them — the dense
// concurrency shape the sharded-store workloads produce. Values are unique
// 8-byte encodings of the op's global index.
func denseHistory(rounds int) *ioa.History {
	h := ioa.NewHistory()
	val := func(n int) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(n+1))
		return b
	}
	add := func(client ioa.NodeID, kind ioa.OpKind, in, out []byte, inv, resp int) {
		h.Ops = append(h.Ops, ioa.Op{
			ID: len(h.Ops), Client: client, Kind: kind,
			Input: in, Output: out, InvokeStep: inv, RespondStep: resp,
		})
	}
	prev := []byte(nil) // nil history checked with initial=nil
	for r := 0; r < rounds; r++ {
		t := 10 * r
		a, bv := val(2*r), val(2*r+1)
		// Two overlapping writes: A in [t, t+5], B in [t+2, t+7];
		// linearized A then B.
		add(1, ioa.OpWrite, a, nil, t, t+5)
		add(2, ioa.OpWrite, bv, nil, t+2, t+7)
		// A read concurrent with both writes returning the previous round's
		// value (linearized before A), one returning A, one returning B.
		if prev != nil {
			add(3, ioa.OpRead, nil, prev, t, t+4)
		}
		add(4, ioa.OpRead, nil, a, t+4, t+8)
		add(5, ioa.OpRead, nil, bv, t+6, t+9)
		prev = bv
	}
	return h
}

// BenchmarkCheckAtomicDense measures the linearizability checker on the
// dense synthetic history (the checker is the verification hot path of every
// store run: one check per shard per run).
func BenchmarkCheckAtomicDense(b *testing.B) {
	h := denseHistory(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckAtomic(h, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDenseHistoryIsAtomic(t *testing.T) {
	if err := CheckAtomic(denseHistory(10), nil); err != nil {
		t.Fatal(err)
	}
}
