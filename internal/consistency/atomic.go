package consistency

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/ioa"
)

// CheckAtomic verifies linearizability (atomicity) of a register history
// with unique written values. Completed operations must all be linearized;
// pending operations may take effect or not, at the checker's discretion
// (the standard completion semantics).
//
// The checker runs a depth-first search over linearizations with two
// standard optimizations: only "minimal" operations (all real-time
// predecessors already linearized) are candidates, and failed search states
// (chosen-set, last-written-value) are memoized. For the bounded-concurrency
// histories produced by the experiments this is fast; worst-case it is
// exponential, as linearizability checking fundamentally is.
func CheckAtomic(h *ioa.History, initial []byte) error {
	ops := make([]ioa.Op, 0, len(h.Ops))
	for _, op := range h.Ops {
		if op.Pending() && op.Kind == ioa.OpRead {
			// A pending read constrains nothing: it may simply never take
			// effect.
			continue
		}
		ops = append(ops, op)
	}
	if _, err := writesByValue(ops); err != nil {
		return err
	}
	c, err := newLinChecker(ops, initial)
	if err != nil {
		return err
	}
	if c.search() {
		return nil
	}
	return &Violation{
		Condition: "atomicity",
		Op:        c.blame(),
		Detail:    "no linearization of the history exists",
	}
}

// linChecker holds the search state for one linearizability check.
type linChecker struct {
	ops     []ioa.Op
	initial []byte
	// valueID maps each distinct written value (plus initial) to a small
	// integer for compact memo keys.
	valueID map[string]int
	// chosen[i] reports whether ops[i] has been linearized.
	chosen []bool
	nDone  int // count of chosen completed ops
	nMust  int // number of completed ops (all must be linearized)
	memo   map[string]bool
}

func newLinChecker(ops []ioa.Op, initial []byte) (*linChecker, error) {
	// Sort by invocation for deterministic candidate order.
	sorted := append([]ioa.Op(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].InvokeStep < sorted[j].InvokeStep })
	c := &linChecker{
		ops:     sorted,
		initial: initial,
		valueID: map[string]int{string(initial): 0},
		chosen:  make([]bool, len(sorted)),
		memo:    make(map[string]bool),
	}
	for _, op := range sorted {
		if !op.Pending() {
			c.nMust++
		}
		if op.Kind == ioa.OpWrite {
			if _, ok := c.valueID[string(op.Input)]; !ok {
				c.valueID[string(op.Input)] = len(c.valueID)
			}
		}
	}
	for _, op := range sorted {
		if op.Kind == ioa.OpRead && !op.Pending() {
			if _, ok := c.valueID[string(op.Output)]; !ok {
				return nil, &Violation{
					Condition: "atomicity",
					Op:        op,
					Detail:    "read returned a value that was never written",
				}
			}
		}
	}
	return c, nil
}

// respondOrInf treats pending ops as responding at +infinity.
func respondOrInf(op ioa.Op) int {
	if op.Pending() {
		return int(^uint(0) >> 1) // max int
	}
	return op.RespondStep
}

// search tries to linearize all completed ops starting from the initial
// value. Returns true on success.
func (c *linChecker) search() bool {
	return c.dfs(0)
}

func (c *linChecker) dfs(lastVal int) bool {
	if c.nDone == c.nMust {
		return true
	}
	key := c.stateKey(lastVal)
	if c.memo[key] {
		return false // known dead end
	}
	// minResp over unchosen ops: an op is a candidate only if no unchosen op
	// completed before it was invoked.
	minResp := int(^uint(0) >> 1)
	for i, op := range c.ops {
		if c.chosen[i] {
			continue
		}
		if r := respondOrInf(op); r < minResp {
			minResp = r
		}
	}
	for i, op := range c.ops {
		if c.chosen[i] || op.InvokeStep > minResp {
			continue
		}
		switch op.Kind {
		case ioa.OpWrite:
			c.take(i)
			if c.dfs(c.valueID[string(op.Input)]) {
				return true
			}
			c.untake(i)
		case ioa.OpRead:
			if c.valueID[string(op.Output)] != lastVal {
				continue
			}
			c.take(i)
			if c.dfs(lastVal) {
				return true
			}
			c.untake(i)
		}
	}
	c.memo[key] = true
	return false
}

func (c *linChecker) take(i int) {
	c.chosen[i] = true
	if !c.ops[i].Pending() {
		c.nDone++
	}
}

func (c *linChecker) untake(i int) {
	c.chosen[i] = false
	if !c.ops[i].Pending() {
		c.nDone--
	}
}

// stateKey encodes (chosen bitmap, last value) compactly.
func (c *linChecker) stateKey(lastVal int) string {
	buf := make([]byte, (len(c.chosen)+7)/8+4)
	for i, ch := range c.chosen {
		if ch {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	n := len(buf) - 4
	buf[n] = byte(lastVal >> 24)
	buf[n+1] = byte(lastVal >> 16)
	buf[n+2] = byte(lastVal >> 8)
	buf[n+3] = byte(lastVal)
	return string(buf)
}

// blame picks a representative operation to report: the earliest completed
// read whose value never matches a possible predecessor; falls back to the
// first completed op.
func (c *linChecker) blame() ioa.Op {
	for _, op := range c.ops {
		if op.Kind == ioa.OpRead && !op.Pending() {
			return op
		}
	}
	for _, op := range c.ops {
		if !op.Pending() {
			return op
		}
	}
	if len(c.ops) > 0 {
		return c.ops[0]
	}
	return ioa.Op{}
}

// MustBeValue is a test helper asserting a read output.
func MustBeValue(op ioa.Op, want []byte) error {
	if !bytes.Equal(op.Output, want) {
		return fmt.Errorf("consistency: op %s returned %q, want %q", op, op.Output, want)
	}
	return nil
}
