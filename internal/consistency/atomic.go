package consistency

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/ioa"
)

// CheckAtomic verifies linearizability (atomicity) of a register history
// with unique written values. Completed operations must all be linearized;
// pending operations may take effect or not, at the checker's discretion
// (the standard completion semantics).
//
// The checker runs a depth-first search over linearizations with two
// standard optimizations: only "minimal" operations (all real-time
// predecessors already linearized) are candidates, and failed search states
// (chosen-set, last-written-value) are memoized. Candidate minimality is
// tracked through precomputed per-op predecessor counts (no rescan of every
// op per level), and the memo is an open-addressed table over packed uint64
// bitset words backed by a flat arena, so a search state costs no per-state
// allocation. For the bounded-concurrency histories produced by the
// experiments this is fast; worst-case it is exponential, as linearizability
// checking fundamentally is.
func CheckAtomic(h *ioa.History, initial []byte) error {
	ops := make([]ioa.Op, 0, len(h.Ops))
	for _, op := range h.Ops {
		if op.Pending() && op.Kind == ioa.OpRead {
			// A pending read constrains nothing: it may simply never take
			// effect.
			continue
		}
		ops = append(ops, op)
	}
	if _, err := writesByValue(ops); err != nil {
		return err
	}
	c, err := newLinChecker(ops, initial)
	if err != nil {
		return err
	}
	if c.search() {
		return nil
	}
	return &Violation{
		Condition: "atomicity",
		Op:        c.blame(),
		Detail:    "no linearization of the history exists",
	}
}

// linChecker holds the search state for one linearizability check.
type linChecker struct {
	ops     []ioa.Op
	initial []byte
	// chosen[i] reports whether ops[i] has been linearized; state is the
	// same set packed into uint64 words, maintained incrementally as the
	// memo key prefix.
	chosen []bool
	state  []uint64
	nDone  int // count of chosen completed ops
	nMust  int // number of completed ops (all must be linearized)
	// writeVal[i] is the value id a write op installs (-1 for reads);
	// readVal[i] is the value id a read op returns (-1 for writes). Value
	// ids substitute smallint comparisons for byte-slice map lookups in the
	// search.
	writeVal []int
	readVal  []int
	// Ops are sorted by invocation, so the set of ops invoked after op j's
	// response is the suffix starting at succFrom[j]; predLeft[i] counts op
	// i's not-yet-linearized real-time predecessors. An op is a search
	// candidate exactly when predLeft is 0.
	succFrom []int32
	predLeft []int32
	memo     deadTable
	keyBuf   []uint64
}

func newLinChecker(ops []ioa.Op, initial []byte) (*linChecker, error) {
	// Sort by invocation for deterministic candidate order.
	sorted := append([]ioa.Op(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].InvokeStep < sorted[j].InvokeStep })
	n := len(sorted)
	words := (n + 63) / 64
	c := &linChecker{
		ops:      sorted,
		initial:  initial,
		chosen:   make([]bool, n),
		state:    make([]uint64, words),
		writeVal: make([]int, n),
		readVal:  make([]int, n),
		succFrom: make([]int32, n),
		predLeft: make([]int32, n),
		keyBuf:   make([]uint64, words+1),
	}
	c.memo.init(words + 1)
	// valueID maps each distinct written value (plus initial) to a small
	// integer; it is only needed during construction.
	valueID := map[string]int{string(initial): 0}
	for i, op := range sorted {
		if !op.Pending() {
			c.nMust++
		}
		c.writeVal[i], c.readVal[i] = -1, -1
		if op.Kind == ioa.OpWrite {
			key := string(op.Input)
			id, ok := valueID[key]
			if !ok {
				id = len(valueID)
				valueID[key] = id
			}
			c.writeVal[i] = id
		}
	}
	for i, op := range sorted {
		if op.Kind == ioa.OpRead && !op.Pending() {
			id, ok := valueID[string(op.Output)]
			if !ok {
				return nil, &Violation{
					Condition: "atomicity",
					Op:        op,
					Detail:    "read returned a value that was never written",
				}
			}
			c.readVal[i] = id
		}
	}
	// Precompute the real-time precedence structure: j precedes i when j's
	// response happens before i's invocation, and (by the invocation sort)
	// those i form the suffix starting at the first op invoked after j
	// responded.
	for j, opj := range sorted {
		r := respondOrInf(opj)
		lo := sort.Search(n, func(i int) bool { return sorted[i].InvokeStep > r })
		c.succFrom[j] = int32(lo)
		for i := lo; i < n; i++ {
			c.predLeft[i]++
		}
	}
	return c, nil
}

// respondOrInf treats pending ops as responding at +infinity.
func respondOrInf(op ioa.Op) int {
	if op.Pending() {
		return int(^uint(0) >> 1) // max int
	}
	return op.RespondStep
}

// search tries to linearize all completed ops starting from the initial
// value. Returns true on success.
func (c *linChecker) search() bool {
	return c.dfs(0)
}

func (c *linChecker) dfs(lastVal int) bool {
	if c.nDone == c.nMust {
		return true
	}
	if c.memo.contains(c.stateKey(lastVal)) {
		return false // known dead end
	}
	for i := range c.ops {
		if c.chosen[i] || c.predLeft[i] > 0 {
			continue
		}
		if w := c.writeVal[i]; w >= 0 {
			c.take(i)
			if c.dfs(w) {
				return true
			}
			c.untake(i)
		} else if c.readVal[i] == lastVal {
			c.take(i)
			if c.dfs(lastVal) {
				return true
			}
			c.untake(i)
		}
	}
	// stateKey's buffer was clobbered by the recursive calls; rebuild it
	// (take/untake restored the underlying state).
	c.memo.add(c.stateKey(lastVal))
	return false
}

func (c *linChecker) take(i int) {
	c.chosen[i] = true
	c.state[i>>6] |= 1 << (uint(i) & 63)
	for s := int(c.succFrom[i]); s < len(c.predLeft); s++ {
		c.predLeft[s]--
	}
	if !c.ops[i].Pending() {
		c.nDone++
	}
}

func (c *linChecker) untake(i int) {
	c.chosen[i] = false
	c.state[i>>6] &^= 1 << (uint(i) & 63)
	for s := int(c.succFrom[i]); s < len(c.predLeft); s++ {
		c.predLeft[s]++
	}
	if !c.ops[i].Pending() {
		c.nDone--
	}
}

// stateKey packs (chosen bitmap, last value) into the checker's reusable key
// buffer — valid only until the next stateKey call.
func (c *linChecker) stateKey(lastVal int) []uint64 {
	n := copy(c.keyBuf, c.state)
	c.keyBuf[n] = uint64(lastVal)
	return c.keyBuf
}

// blame picks a representative operation to report: the earliest completed
// read whose value never matches a possible predecessor; falls back to the
// first completed op.
func (c *linChecker) blame() ioa.Op {
	for _, op := range c.ops {
		if op.Kind == ioa.OpRead && !op.Pending() {
			return op
		}
	}
	for _, op := range c.ops {
		if !op.Pending() {
			return op
		}
	}
	if len(c.ops) > 0 {
		return c.ops[0]
	}
	return ioa.Op{}
}

// MustBeValue is a test helper asserting a read output.
func MustBeValue(op ioa.Op, want []byte) error {
	if !bytes.Equal(op.Output, want) {
		return fmt.Errorf("consistency: op %s returned %q, want %q", op, op.Output, want)
	}
	return nil
}
