// Package consistency implements checkers for the consistency conditions the
// paper's theorems assume: atomicity (linearizability), regularity for
// single-writer registers [Lamport 86], and the weak regularity of
// multi-writer registers used by Theorem 6.5 [Shao-Welch-Pierce-Lee].
//
// All checkers operate on ioa.History values recorded by the simulation
// kernel and require distinct written values (the experiments' workload
// generators guarantee this; the checkers verify it).
package consistency

import (
	"bytes"
	"fmt"

	"repro/internal/ioa"
)

// Violation describes a consistency failure.
type Violation struct {
	Condition string
	Op        ioa.Op
	Detail    string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("consistency: %s violated by %s: %s", v.Condition, v.Op, v.Detail)
}

// writesByValue indexes completed and pending writes by their (unique)
// values.
func writesByValue(ops []ioa.Op) (map[string]ioa.Op, error) {
	byVal := make(map[string]ioa.Op)
	for _, op := range ops {
		if op.Kind != ioa.OpWrite {
			continue
		}
		key := string(op.Input)
		if prev, dup := byVal[key]; dup {
			return nil, fmt.Errorf("consistency: duplicate write value %q (ops %d and %d); checkers require unique values", key, prev.ID, op.ID)
		}
		byVal[key] = op
	}
	return byVal, nil
}

// CheckRegular verifies single-writer regularity: every completed read
// returns either the value of the last write that completed before the read
// was invoked, or the value of some write overlapping the read, or initial
// when no write completed or overlaps. Writes must come from a single client
// and be sequential (guaranteed by the kernel's well-formedness).
func CheckRegular(h *ioa.History, initial []byte) error {
	if _, err := writesByValue(h.Ops); err != nil {
		return err
	}
	var writer ioa.NodeID
	for _, op := range h.Ops {
		if op.Kind != ioa.OpWrite {
			continue
		}
		if writer == 0 {
			writer = op.Client
		} else if op.Client != writer {
			return fmt.Errorf("consistency: CheckRegular requires a single writer, saw clients %d and %d", writer, op.Client)
		}
	}
	for _, r := range h.Ops {
		if r.Kind != ioa.OpRead || r.Pending() {
			continue
		}
		if err := checkRegularRead(h, r, initial); err != nil {
			return err
		}
	}
	return nil
}

func checkRegularRead(h *ioa.History, r ioa.Op, initial []byte) error {
	// Last write completed before the read's invocation.
	last := ioa.Op{ID: -1}
	haveLast := false
	for _, w := range h.Ops {
		if w.Kind != ioa.OpWrite || w.Pending() {
			continue
		}
		if w.RespondStep < r.InvokeStep && (!haveLast || w.RespondStep > last.RespondStep) {
			last, haveLast = w, true
		}
	}
	allowed := make([][]byte, 0, 4)
	if haveLast {
		allowed = append(allowed, last.Input)
	} else {
		allowed = append(allowed, initial)
	}
	// Any write overlapping the read.
	for _, w := range h.Ops {
		if w.Kind != ioa.OpWrite {
			continue
		}
		overlaps := w.InvokeStep < r.RespondStep && (w.Pending() || w.RespondStep >= r.InvokeStep)
		if overlaps {
			allowed = append(allowed, w.Input)
		}
	}
	for _, v := range allowed {
		if bytes.Equal(r.Output, v) {
			return nil
		}
	}
	return &Violation{
		Condition: "regularity",
		Op:        r,
		Detail:    fmt.Sprintf("returned %q, allowed values: last-complete or overlapping writes only", r.Output),
	}
}

// CheckWeaklyRegular verifies the multi-writer weak regularity of Section
// 6.2: for every completed read there must exist a serialization of the
// terminating writes, some subset of the non-terminating writes and that
// read, consistent with real-time order, in which the read returns the
// immediately preceding write's value. With unique values this reduces to a
// per-read condition:
//
//   - the write w whose value the read returns must not begin after the read
//     completed, and
//   - no terminating write w' may fall strictly between w and the read in
//     real time, and
//   - a read of the initial value must not be preceded by any terminating
//     write.
func CheckWeaklyRegular(h *ioa.History, initial []byte) error {
	byVal, err := writesByValue(h.Ops)
	if err != nil {
		return err
	}
	for _, r := range h.Ops {
		if r.Kind != ioa.OpRead || r.Pending() {
			continue
		}
		if bytes.Equal(r.Output, initial) {
			for _, w := range h.Ops {
				if w.Kind == ioa.OpWrite && w.PrecedesOp(r) {
					return &Violation{
						Condition: "weak regularity",
						Op:        r,
						Detail:    fmt.Sprintf("returned initial value but write op %d completed before it", w.ID),
					}
				}
			}
			continue
		}
		w, ok := byVal[string(r.Output)]
		if !ok {
			return &Violation{Condition: "weak regularity", Op: r, Detail: "returned a value never written"}
		}
		if r.PrecedesOp(w) {
			return &Violation{Condition: "weak regularity", Op: r, Detail: fmt.Sprintf("returned value of write op %d invoked after the read completed", w.ID)}
		}
		for _, w2 := range h.Ops {
			if w2.Kind != ioa.OpWrite || w2.ID == w.ID {
				continue
			}
			if w.PrecedesOp(w2) && w2.PrecedesOp(r) {
				return &Violation{
					Condition: "weak regularity",
					Op:        r,
					Detail:    fmt.Sprintf("write op %d intervenes between returned write op %d and the read", w2.ID, w.ID),
				}
			}
		}
	}
	return nil
}
