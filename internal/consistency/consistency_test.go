package consistency

import (
	"errors"
	"testing"

	"repro/internal/ioa"
)

// hist builds a history from op specs. Times are abstract step numbers.
type opSpec struct {
	client ioa.NodeID
	kind   ioa.OpKind
	in     string
	out    string
	inv    int
	resp   int // -1 = pending
}

func hist(specs ...opSpec) *ioa.History {
	h := ioa.NewHistory()
	for i, s := range specs {
		op := ioa.Op{
			ID:          i,
			Client:      s.client,
			Kind:        s.kind,
			InvokeStep:  s.inv,
			RespondStep: s.resp,
		}
		if s.in != "" {
			op.Input = []byte(s.in)
		}
		if s.kind == ioa.OpRead && s.resp >= 0 {
			op.Output = []byte(s.out)
		}
		h.Ops = append(h.Ops, op)
	}
	return h
}

var v0 = []byte("v0")

func w(client ioa.NodeID, val string, inv, resp int) opSpec {
	return opSpec{client: client, kind: ioa.OpWrite, in: val, inv: inv, resp: resp}
}

func r(client ioa.NodeID, val string, inv, resp int) opSpec {
	return opSpec{client: client, kind: ioa.OpRead, out: val, inv: inv, resp: resp}
}

func TestAtomicSequential(t *testing.T) {
	h := hist(
		w(1, "a", 0, 10),
		r(2, "a", 20, 30),
		w(1, "b", 40, 50),
		r(2, "b", 60, 70),
	)
	if err := CheckAtomic(h, v0); err != nil {
		t.Errorf("sequential history should be atomic: %v", err)
	}
}

func TestAtomicInitialValue(t *testing.T) {
	h := hist(r(2, "v0", 0, 5))
	if err := CheckAtomic(h, v0); err != nil {
		t.Errorf("reading the initial value is atomic: %v", err)
	}
}

func TestAtomicStaleReadRejected(t *testing.T) {
	// Read starts after write "b" completes but returns "a".
	h := hist(
		w(1, "a", 0, 10),
		w(1, "b", 20, 30),
		r(2, "a", 40, 50),
	)
	err := CheckAtomic(h, v0)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("stale read must violate atomicity, got %v", err)
	}
}

func TestAtomicConcurrentReadEitherValue(t *testing.T) {
	// A read concurrent with write "b" may return "a" or "b".
	for _, out := range []string{"a", "b"} {
		h := hist(
			w(1, "a", 0, 10),
			w(1, "b", 20, 60),
			r(2, out, 30, 50),
		)
		if err := CheckAtomic(h, v0); err != nil {
			t.Errorf("concurrent read of %q should be atomic: %v", out, err)
		}
	}
}

func TestAtomicNewOldInversionRejected(t *testing.T) {
	// Two sequential reads during a concurrent write: the second read must
	// not travel back in time.
	h := hist(
		w(1, "a", 0, 10),
		w(1, "b", 20, 100),
		r(2, "b", 30, 40),
		r(2, "a", 50, 60),
	)
	err := CheckAtomic(h, v0)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("new-old inversion must violate atomicity, got %v", err)
	}
}

func TestAtomicPendingWriteMayTakeEffect(t *testing.T) {
	// A write that never completes but whose value is read: allowed.
	h := hist(
		w(1, "a", 0, -1),
		r(2, "a", 10, 20),
	)
	if err := CheckAtomic(h, v0); err != nil {
		t.Errorf("pending write may take effect: %v", err)
	}
}

func TestAtomicPendingWriteMayBeIgnored(t *testing.T) {
	h := hist(
		w(1, "a", 0, -1),
		r(2, "v0", 10, 20),
	)
	if err := CheckAtomic(h, v0); err != nil {
		t.Errorf("pending write may be ignored: %v", err)
	}
}

func TestAtomicPendingReadIgnored(t *testing.T) {
	h := hist(
		w(1, "a", 0, 10),
		r(2, "", 20, -1),
	)
	if err := CheckAtomic(h, v0); err != nil {
		t.Errorf("pending read constrains nothing: %v", err)
	}
}

func TestAtomicUnwrittenValueRejected(t *testing.T) {
	h := hist(r(2, "ghost", 0, 10))
	if err := CheckAtomic(h, v0); err == nil {
		t.Error("reading a never-written value must fail")
	}
}

func TestAtomicDuplicateValuesRejected(t *testing.T) {
	h := hist(
		w(1, "a", 0, 10),
		w(1, "a", 20, 30),
	)
	if err := CheckAtomic(h, v0); err == nil {
		t.Error("duplicate write values must be rejected")
	}
}

func TestAtomicMultiWriterInterleaving(t *testing.T) {
	// Two writers; write "b" overlaps both reads, so it may be linearized
	// between them: a, r(a), b, r(b).
	h := hist(
		w(1, "a", 0, 50),
		w(3, "b", 10, 100),
		r(2, "a", 60, 70),
		r(2, "b", 80, 90),
	)
	if err := CheckAtomic(h, v0); err != nil {
		t.Errorf("want atomic: %v", err)
	}
	// Now writer order is fixed a then b, but reads see b then a: violation.
	h2 := hist(
		w(1, "a", 0, 5),
		w(3, "b", 10, 40),
		r(2, "b", 60, 70),
		r(2, "a", 80, 90),
	)
	if err := CheckAtomic(h2, v0); err == nil {
		t.Error("reads contradicting write real-time order must fail")
	}
}

func TestRegularHappyPath(t *testing.T) {
	h := hist(
		w(1, "a", 0, 10),
		r(2, "a", 20, 30),
		w(1, "b", 40, 80),
		r(2, "a", 50, 60), // concurrent with write b: old value allowed
		r(3, "b", 55, 70), // concurrent with write b: new value allowed
	)
	if err := CheckRegular(h, v0); err != nil {
		t.Errorf("regular history rejected: %v", err)
	}
}

func TestRegularNewOldInversionAllowed(t *testing.T) {
	// Regularity (unlike atomicity) permits new-old inversion between two
	// reads concurrent with the same write.
	h := hist(
		w(1, "a", 0, 10),
		w(1, "b", 20, 100),
		r(2, "b", 30, 40),
		r(2, "a", 50, 60),
	)
	if err := CheckRegular(h, v0); err != nil {
		t.Errorf("regularity should allow new-old inversion: %v", err)
	}
	if err := CheckAtomic(h, v0); err == nil {
		t.Error("sanity: atomicity must reject the same history")
	}
}

func TestRegularStaleReadRejected(t *testing.T) {
	h := hist(
		w(1, "a", 0, 10),
		w(1, "b", 20, 30),
		r(2, "a", 40, 50),
	)
	var v *Violation
	if err := CheckRegular(h, v0); !errors.As(err, &v) {
		t.Fatalf("stale read must violate regularity, got %v", err)
	}
}

func TestRegularInitialValue(t *testing.T) {
	h := hist(r(2, "v0", 0, 5))
	if err := CheckRegular(h, v0); err != nil {
		t.Errorf("initial read should be regular: %v", err)
	}
	h2 := hist(
		w(1, "a", 0, 10),
		r(2, "v0", 20, 30),
	)
	if err := CheckRegular(h2, v0); err == nil {
		t.Error("initial value after a completed write must be rejected")
	}
}

func TestRegularRequiresSingleWriter(t *testing.T) {
	h := hist(
		w(1, "a", 0, 10),
		w(3, "b", 20, 30),
	)
	if err := CheckRegular(h, v0); err == nil {
		t.Error("CheckRegular must reject multi-writer histories")
	}
}

func TestWeaklyRegular(t *testing.T) {
	// Read returning a pending write's value: allowed.
	h := hist(
		w(1, "a", 0, -1),
		r(2, "a", 10, 20),
	)
	if err := CheckWeaklyRegular(h, v0); err != nil {
		t.Errorf("pending write readable under weak regularity: %v", err)
	}
	// Read returning a value whose write started after the read completed:
	// rejected.
	h2 := hist(
		w(1, "a", 50, 60),
		r(2, "a", 10, 20),
	)
	if err := CheckWeaklyRegular(h2, v0); err == nil {
		t.Error("future read must be rejected")
	}
	// Intervening terminated write: rejected.
	h3 := hist(
		w(1, "a", 0, 10),
		w(3, "b", 20, 30),
		r(2, "a", 40, 50),
	)
	if err := CheckWeaklyRegular(h3, v0); err == nil {
		t.Error("intervening write must be rejected")
	}
	// Initial value after completed write: rejected.
	h4 := hist(
		w(1, "a", 0, 10),
		r(2, "v0", 20, 30),
	)
	if err := CheckWeaklyRegular(h4, v0); err == nil {
		t.Error("initial value after completed write must be rejected")
	}
	// Never-written value: rejected.
	h5 := hist(r(2, "ghost", 0, 10))
	if err := CheckWeaklyRegular(h5, v0); err == nil {
		t.Error("unwritten value must be rejected")
	}
}

func TestAtomicIsStrongerThanRegular(t *testing.T) {
	// Property: histories accepted by CheckAtomic (single writer) are also
	// accepted by CheckRegular and CheckWeaklyRegular.
	histories := []*ioa.History{
		hist(w(1, "a", 0, 10), r(2, "a", 20, 30)),
		hist(w(1, "a", 0, 10), w(1, "b", 20, 60), r(2, "b", 30, 50)),
		hist(r(2, "v0", 0, 5), w(1, "a", 10, 20), r(3, "a", 30, 40)),
	}
	for i, h := range histories {
		if err := CheckAtomic(h, v0); err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if err := CheckRegular(h, v0); err != nil {
			t.Errorf("history %d accepted by atomic but rejected by regular: %v", i, err)
		}
		if err := CheckWeaklyRegular(h, v0); err != nil {
			t.Errorf("history %d accepted by atomic but rejected by weakly-regular: %v", i, err)
		}
	}
}

func TestLargeSequentialHistoryFast(t *testing.T) {
	// 400 alternating writes/reads: the search must be near-linear here.
	specs := make([]opSpec, 0, 400)
	tstep := 0
	last := "v0"
	for i := 0; i < 200; i++ {
		val := string(rune('a'+i%26)) + string(rune('0'+i/26))
		specs = append(specs, w(1, val, tstep, tstep+1))
		tstep += 2
		specs = append(specs, r(2, val, tstep, tstep+1))
		tstep += 2
		last = val
	}
	_ = last
	h := hist(specs...)
	if err := CheckAtomic(h, v0); err != nil {
		t.Fatal(err)
	}
}
