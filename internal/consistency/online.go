package consistency

// Online windowed linearizability checking. The offline CheckAtomic holds
// the whole history and searches it at once; the OnlineChecker consumes the
// same histories as a stream (ioa.HistorySink) and retires provably
// linearized prefixes as it goes, so its memory — and each check's cost —
// is bounded by a sliding window rather than the run length.
//
// Soundness rests on a clean-cut composition rule. Call a position c in an
// invocation-ordered history a *clean cut* when every operation before c
// responds before every operation at or after c invokes (no interval
// crosses c). Splitting at a clean cut, H = P · S with no op of S real-time
// preceding or concurrent with any op of P, so every linearization of H
// orders all of P before all of S; conversely, a linearization of P ending
// with register value v composes with any linearization of S starting from
// v. Hence H linearizes iff ∃v: P linearizes ending with v and S linearizes
// from initial value v — an equivalence, not a conservative approximation.
// Chaining it across many cuts only requires carrying the *set* of
// attainable final values from segment to segment; a violation is exactly
// the set becoming empty (or the final residual window failing from every
// carried value).
//
// Two further facts keep each carried set small and each segment check
// cheap: (a) a retired segment contains no pending operations (a pending op
// responds at +inf, so no cut ever forms after it), hence every write in it
// must be linearized and the segment's final value is the input of a write
// with no write invoked entirely after it (a "maximal" write) — or, for
// write-free segments, the inherited value itself; (b) "P linearizes ending
// with u" reduces to the plain check by appending a synthetic probe read of
// u that real-time-follows the whole segment, so the memoized CheckAtomic
// core is reused unchanged.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ioa"
)

// DefaultWindowOps is the retirement window used when none is configured:
// once at least this many settled operations are buffered and a clean cut
// exists, the prefix up to the latest cut is checked and freed.
const DefaultWindowOps = 256

// OnlineChecker verifies atomicity incrementally. Feed it settled
// operations in invocation order with Observe (it implements
// ioa.HistorySink, so an ioa.OpFeed can drive it directly); it buffers them
// in a sliding window, retires the window's longest cleanly-cut prefix
// whenever the window fills, and reports the overall verdict with Result.
// Written values must be globally unique across the whole stream (the
// MakeValue contract every driver in this repository already obeys); unlike
// CheckAtomic, an online checker cannot re-verify uniqueness against
// retired history it has freed.
//
// The zero value is not usable; construct with NewOnlineChecker. All
// methods are safe for concurrent use.
type OnlineChecker struct {
	mu        sync.Mutex
	initial   []byte
	windowOps int

	window     []ioa.Op // settled ops not yet retired, invocation order
	runningMax int      // max respondOrInf over window ops
	lastCut    int      // window index of the latest clean cut (0 = none)
	lastInvoke int      // order enforcement across Observe calls
	carry      [][]byte // values the retired prefix may end with

	observed  int64
	verified  int64
	windows   int64
	maxWindow int

	violation error // sticky: set when a retired window fails to linearize
	misuse    error // sticky: ops delivered out of order or malformed
}

// OnlineOption configures an OnlineChecker.
type OnlineOption func(*OnlineChecker)

// WithWindowOps sets the retirement window size in operations.
func WithWindowOps(n int) OnlineOption {
	return func(c *OnlineChecker) {
		if n > 0 {
			c.windowOps = n
		}
	}
}

// NewOnlineChecker returns an online atomicity checker for a register whose
// initial value is initial (nil for the usual fresh register).
func NewOnlineChecker(initial []byte, opts ...OnlineOption) *OnlineChecker {
	c := &OnlineChecker{
		initial:    initial,
		windowOps:  DefaultWindowOps,
		runningMax: math.MinInt,
		carry:      [][]byte{initial},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Observe delivers the next operation of the history, in invocation order.
// Pending reads are discarded immediately (they constrain nothing, exactly
// as CheckAtomic drops them); pending writes are buffered and pin the
// frontier, since they may take effect arbitrarily late. When the window
// reaches its configured size and contains a clean cut, the prefix is
// verified and retired in-line on the caller's goroutine. Returns the
// sticky violation once one is found.
func (c *OnlineChecker) Observe(op ioa.Op) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.misuse != nil {
		return c.misuse
	}
	if op.InvokeStep < c.lastInvoke {
		c.misuse = fmt.Errorf("consistency: online checker observed an op invoked at step %d after one invoked at step %d (ops must arrive in invocation order)", op.InvokeStep, c.lastInvoke)
		return c.misuse
	}
	if !op.Pending() && op.RespondStep < op.InvokeStep {
		c.misuse = fmt.Errorf("consistency: op %s responds before it invokes", op)
		return c.misuse
	}
	c.lastInvoke = op.InvokeStep
	c.observed++
	if op.Pending() && op.Kind == ioa.OpRead {
		return c.violation
	}
	if len(c.window) > 0 && c.runningMax < op.InvokeStep {
		c.lastCut = len(c.window)
	}
	c.window = append(c.window, op)
	if r := respondOrInf(op); r > c.runningMax {
		c.runningMax = r
	}
	if len(c.window) > c.maxWindow {
		c.maxWindow = len(c.window)
	}
	if len(c.window) >= c.windowOps && c.lastCut > 0 && c.violation == nil {
		c.retireLocked()
	}
	return c.violation
}

// AppendOp makes the checker an ioa.HistorySink.
func (c *OnlineChecker) AppendOp(op ioa.Op) error { return c.Observe(op) }

// Retire forces a retirement attempt at the latest clean cut, regardless of
// window occupancy, and returns the number of operations retired (0 when no
// cut exists, a violation is already recorded, or the window is empty).
func (c *OnlineChecker) Retire() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.verified
	if c.violation == nil && c.misuse == nil {
		c.retireLocked()
	}
	return int(c.verified - before)
}

// retireLocked verifies the window prefix up to the latest clean cut
// against the carried value set and frees it.
func (c *OnlineChecker) retireLocked() {
	if c.lastCut <= 0 {
		return
	}
	newCarry, viol := checkSegment(c.window[:c.lastCut], c.carry)
	if viol != nil {
		c.windows++
		c.violation = fmt.Errorf("consistency: online window %d (after %d verified ops): %w", c.windows, c.verified, viol)
		return
	}
	c.carry = newCarry
	c.verified += int64(c.lastCut)
	c.windows++
	rest := make([]ioa.Op, len(c.window)-c.lastCut) // fresh copy frees the retired backing array
	copy(rest, c.window[c.lastCut:])
	c.window = rest
	// Rescan the surviving suffix for its cut structure: removing a prefix
	// preserves every cut and can only expose new ones.
	c.lastCut = 0
	c.runningMax = math.MinInt
	for i, op := range rest {
		if i > 0 && c.runningMax < op.InvokeStep {
			c.lastCut = i
		}
		if r := respondOrInf(op); r > c.runningMax {
			c.runningMax = r
		}
	}
}

// Result reports the verdict over everything observed so far without
// consuming the window: the sticky violation if a retired window already
// failed, otherwise whether the residual window linearizes from some
// carried value. extra holds operations not yet delivered to the checker —
// an OpFeed snapshot of in-flight tickets — which are checked alongside the
// window: every extra op must have been invoked no earlier than the
// retirement frontier, which feed ordering guarantees. Result may be called
// mid-stream; a nil verdict means every completed op observed so far is
// part of a single witness linearization.
func (c *OnlineChecker) Result(extra ...ioa.Op) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.misuse != nil {
		return c.misuse
	}
	if c.violation != nil {
		return c.violation
	}
	ops := c.window
	if len(extra) > 0 {
		ops = make([]ioa.Op, 0, len(c.window)+len(extra))
		ops = append(ops, c.window...)
		for _, op := range extra {
			if op.Pending() && op.Kind == ioa.OpRead {
				continue
			}
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		return nil
	}
	var firstViol error
	for _, v := range c.carry {
		ok, viol := linearizes(ops, v, nil)
		if ok {
			return nil
		}
		if firstViol == nil {
			firstViol = viol
		}
	}
	return fmt.Errorf("consistency: residual window (after %d verified ops): %w", c.verified, firstViol)
}

// OpsObserved returns the number of operations delivered via Observe.
func (c *OnlineChecker) OpsObserved() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observed
}

// OpsVerified returns the number of operations retired behind the verified
// frontier (pending reads, which are dropped on arrival, count as neither
// observed-and-buffered nor verified).
func (c *OnlineChecker) OpsVerified() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verified
}

// WindowLag returns the number of buffered operations not yet retired — the
// distance between the stream head and the verified frontier.
func (c *OnlineChecker) WindowLag() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.window)
}

// MaxWindow returns the high-water mark of the buffered window — the peak
// checker memory, in operations, over the whole run.
func (c *OnlineChecker) MaxWindow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxWindow
}

// Windows returns the number of retirement checks performed.
func (c *OnlineChecker) Windows() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows
}

// checkSegment decides which register values a linearization of the
// cleanly-cut segment seg may end with, given that it must start from one
// of the carry values. It returns the attainable final-value set, or the
// first violation encountered if the set is empty. seg must contain no
// pending operations (guaranteed for retired segments: a pending op
// suppresses every later cut).
func checkSegment(seg []ioa.Op, carry [][]byte) ([][]byte, error) {
	// Candidate final values: a write can be linearized last only if no
	// other write is invoked entirely after it responds, i.e. its response
	// is no earlier than the latest write invocation.
	maxWriteInvoke := math.MinInt
	for _, op := range seg {
		if op.Kind == ioa.OpWrite && op.InvokeStep > maxWriteInvoke {
			maxWriteInvoke = op.InvokeStep
		}
	}
	finals := maximalWriteValues(seg, maxWriteInvoke)

	out := make([][]byte, 0, len(finals)+1)
	have := make(map[string]bool, len(finals)+1)
	add := func(v []byte) {
		if !have[string(v)] {
			have[string(v)] = true
			out = append(out, v)
		}
	}
	var firstViol error
	for _, v := range carry {
		ok, viol := linearizes(seg, v, nil)
		if !ok {
			if firstViol == nil {
				firstViol = viol
			}
			continue
		}
		switch {
		case finals == nil:
			// No writes: the inherited value survives unchanged.
			add(v)
		case len(finals) == 1:
			// Every write must be linearized, so the unique maximal write
			// is forced to be last; no probe needed.
			add(finals[0])
		default:
			for _, u := range finals {
				if have[string(u)] {
					continue
				}
				if ok, _ := linearizes(seg, v, u); ok {
					add(u)
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, firstViol
	}
	return out, nil
}

// maximalWriteValues returns the distinct inputs of writes that may be
// linearized last in seg (response >= the latest write invocation), or nil
// when seg contains no writes.
func maximalWriteValues(seg []ioa.Op, maxWriteInvoke int) [][]byte {
	if maxWriteInvoke == math.MinInt {
		return nil
	}
	var finals [][]byte
	seen := make(map[string]bool, 2)
	for _, op := range seg {
		if op.Kind == ioa.OpWrite && respondOrInf(op) >= maxWriteInvoke && !seen[string(op.Input)] {
			seen[string(op.Input)] = true
			finals = append(finals, op.Input)
		}
	}
	return finals
}

// linearizes reports whether seg linearizes starting from register value v.
// With probe non-nil it additionally requires some linearization to end
// with the register holding probe, enforced by a synthetic completed read
// of probe appended strictly after every response in seg — the memoized
// CheckAtomic core then does all the work. A false verdict carries the
// violation; a read of a value foreign to seg∪{v} is a per-initial-value
// verdict (that value may be legal under a different carry), not an error.
func linearizes(seg []ioa.Op, v []byte, probe []byte) (bool, error) {
	ops := seg
	if probe != nil {
		maxResp := math.MinInt
		for _, op := range seg {
			if r := respondOrInf(op); r > maxResp {
				maxResp = r
			}
		}
		ops = make([]ioa.Op, len(seg), len(seg)+1)
		copy(ops, seg)
		ops = append(ops, ioa.Op{
			Client:      -1, // synthetic; the checker core never reads Client
			Kind:        ioa.OpRead,
			Output:      probe,
			InvokeStep:  maxResp + 1,
			RespondStep: maxResp + 2,
		})
	}
	c, err := newLinChecker(ops, v)
	if err != nil {
		return false, err
	}
	if c.search() {
		return true, nil
	}
	return false, &Violation{
		Condition: "atomicity",
		Op:        c.blame(),
		Detail:    "no linearization of the window exists",
	}
}

// CheckWindowed verifies atomicity of a batch history with the same
// windowed decomposition the OnlineChecker uses, checking the windows in
// parallel: the history is split at clean cuts at least windowOps apart,
// every segment's (inherited value → final value) transfer relation is
// computed concurrently on a worker pool, and a cheap sequential
// reachability pass over the carried value sets delivers the verdict. The
// verdict is exactly CheckAtomic's on every history; wall-clock drops both
// because windows bound the exponential search and because segments check
// in parallel. windowOps <= 0 selects DefaultWindowOps.
func CheckWindowed(h *ioa.History, initial []byte, windowOps int) error {
	if windowOps <= 0 {
		windowOps = DefaultWindowOps
	}
	ops := make([]ioa.Op, 0, len(h.Ops))
	for _, op := range h.Ops {
		if op.Pending() && op.Kind == ioa.OpRead {
			continue
		}
		ops = append(ops, op)
	}
	if _, err := writesByValue(ops); err != nil {
		return err
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].InvokeStep < ops[j].InvokeStep })
	if len(ops) == 0 {
		return nil
	}

	// Segment boundaries: clean cuts (every earlier op responded before
	// this op invokes) spaced at least windowOps apart.
	starts := []int{0}
	runningMax := math.MinInt
	for i, op := range ops {
		if i-starts[len(starts)-1] >= windowOps && runningMax < op.InvokeStep {
			starts = append(starts, i)
		}
		if r := respondOrInf(op); r > runningMax {
			runningMax = r
		}
	}
	nseg := len(starts)
	segOf := func(k int) []ioa.Op {
		if k+1 < nseg {
			return ops[starts[k]:starts[k+1]]
		}
		return ops[starts[k]:]
	}

	// Candidate inherited/final value sets per segment. A write-free
	// segment passes its inherited set through.
	ins := make([][][]byte, nseg)
	outs := make([][][]byte, nseg)
	cur := [][]byte{initial}
	for k := 0; k < nseg; k++ {
		ins[k] = cur
		maxWriteInvoke := math.MinInt
		for _, op := range segOf(k) {
			if op.Kind == ioa.OpWrite && op.InvokeStep > maxWriteInvoke {
				maxWriteInvoke = op.InvokeStep
			}
		}
		outs[k] = maximalWriteValues(segOf(k), maxWriteInvoke)
		if outs[k] != nil {
			cur = outs[k]
		}
	}

	// Per-(segment, inherited value) checks on a worker pool. Each job
	// writes only its own slots, so no locking is needed.
	type segResult struct {
		plain []bool   // plain[i]: segment linearizes from ins[k][i]
		viol  []error  // violation when !plain[i]
		mat   [][]bool // mat[i][j]: ... ending with outs[k][j]; nil unless needed
	}
	res := make([]segResult, nseg)
	type job struct{ k, i int }
	njobs := 0
	for k := 0; k < nseg; k++ {
		res[k].plain = make([]bool, len(ins[k]))
		res[k].viol = make([]error, len(ins[k]))
		if k < nseg-1 && len(outs[k]) > 1 {
			res[k].mat = make([][]bool, len(ins[k]))
			for i := range res[k].mat {
				res[k].mat[i] = make([]bool, len(outs[k]))
			}
		}
		njobs += len(ins[k])
	}
	jobs := make(chan job, njobs)
	workers := runtime.GOMAXPROCS(0)
	if workers > njobs {
		workers = njobs
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				seg, vin := segOf(jb.k), ins[jb.k][jb.i]
				ok, viol := linearizes(seg, vin, nil)
				if !ok {
					res[jb.k].viol[jb.i] = viol
					continue
				}
				res[jb.k].plain[jb.i] = true
				if res[jb.k].mat != nil {
					for j, u := range outs[jb.k] {
						ok2, _ := linearizes(seg, vin, u)
						res[jb.k].mat[jb.i][j] = ok2
					}
				}
			}
		}()
	}
	for k := 0; k < nseg; k++ {
		for i := range ins[k] {
			jobs <- job{k, i}
		}
	}
	close(jobs)
	wg.Wait()

	// Sequential reachability over the carried value sets.
	reach := make([]bool, len(ins[0]))
	reach[0] = true
	for k := 0; k < nseg; k++ {
		r := res[k]
		anyPass := false
		var next []bool
		switch {
		case outs[k] == nil: // pass-through: next indexes ins[k]
			next = make([]bool, len(ins[k]))
			for i, ok := range reach {
				if ok && r.plain[i] {
					next[i] = true
					anyPass = true
				}
			}
		case len(outs[k]) == 1: // forced final value
			next = make([]bool, 1)
			for i, ok := range reach {
				if ok && r.plain[i] {
					next[0] = true
					anyPass = true
				}
			}
		case k == nseg-1: // last segment: only the plain verdict matters
			for i, ok := range reach {
				if ok && r.plain[i] {
					anyPass = true
				}
			}
		default:
			next = make([]bool, len(outs[k]))
			for i, ok := range reach {
				if !ok || !r.plain[i] {
					continue
				}
				anyPass = true
				for j := range outs[k] {
					if r.mat[i][j] {
						next[j] = true
					}
				}
			}
		}
		if !anyPass {
			end := len(ops)
			if k+1 < nseg {
				end = starts[k+1]
			}
			for i, ok := range reach {
				if ok && r.viol[i] != nil {
					return fmt.Errorf("consistency: window %d of %d (ops %d..%d): %w", k+1, nseg, starts[k], end, r.viol[i])
				}
			}
			// Unreachable in theory (a passing plain check implies an
			// attainable final value); kept as a defensive verdict.
			return &Violation{Condition: "atomicity", Detail: "no linearization of the history exists"}
		}
		reach = next
	}
	return nil
}
