package consistency_test

// Differential tests for the consistency checkers: small random histories
// are checked by CheckAtomic / CheckRegular and, independently, by
// brute-force enumeration of every serialization the definitions admit. The
// two verdicts must agree on every history. The brute force shares no code
// or search strategy with the checkers (the production checker prunes with
// minimal-candidate ordering and memoization; the brute force literally
// tries all subset choices and permutations), so agreement over thousands of
// adversarial histories pins the checkers' semantics, not their
// implementation.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/abd"
	"repro/internal/consistency"
	"repro/internal/ioa"
	"repro/internal/workload"
)

// bruteForceAtomic reports whether the history linearizes, by exhaustive
// enumeration: pending reads are discarded (they constrain nothing), every
// subset of pending writes may take effect, and every permutation of the
// chosen operations is tried against real-time order and register semantics.
func bruteForceAtomic(h *ioa.History, initial []byte) bool {
	ops := make([]ioa.Op, 0, len(h.Ops))
	var pendingWrites []ioa.Op
	for _, op := range h.Ops {
		switch {
		case op.Kind == ioa.OpRead && op.Pending():
			// dropped
		case op.Kind == ioa.OpWrite && op.Pending():
			pendingWrites = append(pendingWrites, op)
		default:
			ops = append(ops, op)
		}
	}
	for mask := 0; mask < 1<<len(pendingWrites); mask++ {
		chosen := append([]ioa.Op(nil), ops...)
		for i, w := range pendingWrites {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, w)
			}
		}
		if permuteAtomic(chosen, nil, initial) {
			return true
		}
	}
	return false
}

// permuteAtomic recursively enumerates all orderings of remaining, appending
// to prefix, and reports whether any ordering is a legal linearization.
func permuteAtomic(remaining, prefix []ioa.Op, lastVal []byte) bool {
	if len(remaining) == 0 {
		return true
	}
	for i, op := range remaining {
		// Real-time order: op may come next only if no remaining operation
		// completed before op was invoked.
		ok := true
		for j, other := range remaining {
			if j != i && other.PrecedesOp(op) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		next := lastVal
		if op.Kind == ioa.OpWrite {
			next = op.Input
		} else if !bytes.Equal(op.Output, lastVal) {
			continue // read must return the current register value
		}
		rest := make([]ioa.Op, 0, len(remaining)-1)
		rest = append(rest, remaining[:i]...)
		rest = append(rest, remaining[i+1:]...)
		if permuteAtomic(rest, append(prefix, op), next) {
			return true
		}
	}
	return false
}

// bruteForceRegular checks single-writer regularity by enumeration: the
// writes of a single writer are totally ordered in real time, and a read is
// regular iff it can be inserted at some position in that order — consistent
// with real time — where it returns the immediately preceding write's value
// (or initial at position zero).
func bruteForceRegular(h *ioa.History, initial []byte) bool {
	var writes []ioa.Op
	for _, op := range h.Ops {
		if op.Kind == ioa.OpWrite {
			writes = append(writes, op)
		}
	}
	for i := 1; i < len(writes); i++ {
		if writes[i].InvokeStep < writes[i-1].InvokeStep {
			writes[i], writes[i-1] = writes[i-1], writes[i]
			i = 0
		}
	}
	for _, r := range h.Ops {
		if r.Kind != ioa.OpRead || r.Pending() {
			continue
		}
		ok := false
		for pos := 0; pos <= len(writes); pos++ {
			valid := true
			for j, w := range writes {
				inPrefix := j < pos
				if w.PrecedesOp(r) && !inPrefix {
					valid = false // write finished before the read began
				}
				if r.PrecedesOp(w) && inPrefix {
					valid = false // write began after the read finished
				}
			}
			if !valid {
				continue
			}
			want := initial
			if pos > 0 {
				want = writes[pos-1].Input
			}
			if bytes.Equal(r.Output, want) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// genHistory builds a random history of at most maxOps operations with
// distinct invoke/respond steps, unique write values and adversarial read
// outputs (written values, the initial value, or garbage). When
// sequentialWrites is set, writes come from one client and never overlap —
// the shape CheckRegular requires.
func genHistory(rng *rand.Rand, maxOps int, sequentialWrites bool) *ioa.History {
	k := 2 + rng.Intn(maxOps-1)
	steps := rng.Perm(64)[: 2*k : 2*k] // distinct step numbers
	next := 0
	takeStep := func() int { s := steps[next]; next++; return s }

	var values [][]byte
	h := &ioa.History{}
	writeSlot := 0 // monotone window for sequential writes
	for i := 0; i < k; i++ {
		op := ioa.Op{ID: i, Client: ioa.NodeID(10 + i)}
		if rng.Intn(2) == 0 {
			op.Kind = ioa.OpWrite
			op.Input = []byte(fmt.Sprintf("v%d", i))
			values = append(values, op.Input)
		} else {
			op.Kind = ioa.OpRead
		}
		a, b := takeStep(), takeStep()
		if a > b {
			a, b = b, a
		}
		op.InvokeStep, op.RespondStep = a, b
		if op.Kind == ioa.OpWrite && sequentialWrites {
			// Re-base the write into its own non-overlapping window. Writes
			// get even steps and reads odd ones below: kernel histories
			// never share a step between two events, and at exact ties the
			// notions of "overlaps" and "precedes" are ill-defined.
			op.Client = 1
			op.InvokeStep = 4 * writeSlot
			op.RespondStep = 4*writeSlot + 2
			writeSlot++
		}
		// A write may go pending only when writes are unconstrained: a
		// single sequential writer can have at most its last write pending
		// (handled below), since a busy client cannot invoke again.
		if rng.Intn(6) == 0 && !(sequentialWrites && op.Kind == ioa.OpWrite) {
			op.RespondStep = -1 // pending
		}
		h.Ops = append(h.Ops, op)
	}
	if sequentialWrites && writeSlot > 0 && rng.Intn(6) == 0 {
		for i := range h.Ops {
			if h.Ops[i].Kind == ioa.OpWrite && h.Ops[i].InvokeStep == 4*(writeSlot-1) {
				h.Ops[i].RespondStep = -1
			}
		}
	}
	if sequentialWrites {
		// Interleave reads with the write windows (odd steps only, so no
		// read event ever ties with a write event) so overlap cases occur.
		for i := range h.Ops {
			if h.Ops[i].Kind == ioa.OpRead {
				h.Ops[i].InvokeStep = 2*rng.Intn(2*writeSlot+4) - 1
				if h.Ops[i].RespondStep >= 0 {
					h.Ops[i].RespondStep = h.Ops[i].InvokeStep + 2*(1+rng.Intn(2*writeSlot+4))
				}
			}
		}
	}
	// Assign read outputs after all writes exist.
	for i := range h.Ops {
		if h.Ops[i].Kind != ioa.OpRead || h.Ops[i].Pending() {
			continue
		}
		switch pick := rng.Intn(8); {
		case pick == 0:
			h.Ops[i].Output = nil // initial value
		case pick == 1:
			h.Ops[i].Output = []byte("never-written")
		case len(values) > 0:
			h.Ops[i].Output = values[rng.Intn(len(values))]
		}
	}
	return h
}

// TestAtomicDifferential compares CheckAtomic against the brute force over
// thousands of random small histories.
func TestAtomicDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	agreeViolating, agreeLinearizable := 0, 0
	for i := 0; i < 3000; i++ {
		h := genHistory(rng, 6, false)
		got := consistency.CheckAtomic(h, nil) == nil
		want := bruteForceAtomic(h, nil)
		if got != want {
			t.Fatalf("case %d: CheckAtomic says %t, brute force says %t, history:\n%v", i, got, want, h.Ops)
		}
		if want {
			agreeLinearizable++
		} else {
			agreeViolating++
		}
	}
	// The generator must actually exercise both verdicts for the
	// differential to mean anything.
	if agreeViolating == 0 || agreeLinearizable == 0 {
		t.Fatalf("degenerate sample: %d linearizable, %d violating", agreeLinearizable, agreeViolating)
	}
}

// TestRegularDifferential compares CheckRegular against the brute force on
// single-writer histories.
func TestRegularDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	agreeViolating, agreeRegular := 0, 0
	for i := 0; i < 3000; i++ {
		h := genHistory(rng, 6, true)
		got := consistency.CheckRegular(h, nil) == nil
		want := bruteForceRegular(h, nil)
		if got != want {
			t.Fatalf("case %d: CheckRegular says %t, brute force says %t, history:\n%v", i, got, want, h.Ops)
		}
		if want {
			agreeRegular++
		} else {
			agreeViolating++
		}
	}
	if agreeViolating == 0 || agreeRegular == 0 {
		t.Fatalf("degenerate sample: %d regular, %d violating", agreeRegular, agreeViolating)
	}
}

// op builds a completed operation for the known-history table.
func op(id int, client ioa.NodeID, kind ioa.OpKind, val string, invoke, respond int) ioa.Op {
	o := ioa.Op{ID: id, Client: client, Kind: kind, InvokeStep: invoke, RespondStep: respond}
	if kind == ioa.OpWrite {
		o.Input = []byte(val)
	} else if val != "" {
		o.Output = []byte(val)
	}
	return o
}

// TestKnownHistories pins the checkers (and the brute forces) to hand-built
// histories with known verdicts, including the classic violations.
func TestKnownHistories(t *testing.T) {
	cases := []struct {
		name            string
		ops             []ioa.Op
		atomic, regular bool
	}{
		{
			name: "stale read after completed write",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 2, ioa.OpRead, "", 2, 3), // returns initial after write completed
			},
			atomic: false, regular: false,
		},
		{
			name: "read of overlapping write",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 5),
				op(1, 2, ioa.OpRead, "a", 1, 2),
			},
			atomic: true, regular: true,
		},
		{
			name: "new-old inversion between two reads",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 1, ioa.OpWrite, "b", 2, 9),
				op(2, 2, ioa.OpRead, "b", 3, 4), // sees the overlapping write...
				op(3, 3, ioa.OpRead, "a", 5, 6), // ...then a later read regresses
			},
			atomic: false, regular: true, // the regression is legal under regularity
		},
		{
			name: "read returns never-written value",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 2, ioa.OpRead, "zz", 2, 3),
			},
			atomic: false, regular: false,
		},
		{
			name: "pending write may take effect",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, -1),
				op(1, 2, ioa.OpRead, "a", 1, 2),
			},
			atomic: true, regular: true,
		},
		{
			name: "value from the future",
			ops: []ioa.Op{
				op(0, 2, ioa.OpRead, "a", 0, 1),
				op(1, 1, ioa.OpWrite, "a", 2, 3), // write invoked after the read completed
			},
			atomic: false, regular: false,
		},
		{
			name: "sequential writes then fresh read",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 1, ioa.OpWrite, "b", 2, 3),
				op(2, 2, ioa.OpRead, "b", 4, 5),
			},
			atomic: true, regular: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &ioa.History{Ops: tc.ops}
			if got := consistency.CheckAtomic(h, nil) == nil; got != tc.atomic {
				t.Errorf("CheckAtomic = %t, want %t", got, tc.atomic)
			}
			if got := bruteForceAtomic(h, nil); got != tc.atomic {
				t.Errorf("bruteForceAtomic = %t, want %t", got, tc.atomic)
			}
			if got := consistency.CheckRegular(h, nil) == nil; got != tc.regular {
				t.Errorf("CheckRegular = %t, want %t", got, tc.regular)
			}
			if got := bruteForceRegular(h, nil); got != tc.regular {
				t.Errorf("bruteForceRegular = %t, want %t", got, tc.regular)
			}
		})
	}
}

// TestSeededRunDifferential feeds real kernel histories (seeded ABD runs,
// which must be atomic) through both the checker and the brute force.
func TestSeededRunDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cl, err := abd.Deploy(abd.Options{Servers: 3, F: 1, Writers: 2, Readers: 2, MultiWriter: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := workload.Run(cl, workload.Spec{
			Seed: seed, Writes: 3, Reads: 3, TargetNu: 2, ValueBytes: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := consistency.CheckAtomic(res.History, nil); err != nil {
			t.Errorf("seed %d: checker rejects a real ABD history: %v", seed, err)
		}
		if !bruteForceAtomic(res.History, nil) {
			t.Errorf("seed %d: brute force rejects a real ABD history", seed)
		}
	}
}
