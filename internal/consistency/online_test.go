package consistency_test

// Differential tests for the online windowed checker: the OnlineChecker and
// CheckWindowed must agree with CheckAtomic on every history — random
// adversarial ones, the PR-2 known-violation table, and fuzzed
// Observe/Retire interleavings — at every window size, including
// pathologically small ones that force a retirement on nearly every op.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/consistency"
	"repro/internal/ioa"
)

// sortedOps returns the history's ops in invocation order, as the sink
// contract requires (genHistory assigns random steps in slice order).
func sortedOps(h *ioa.History) []ioa.Op {
	ops := append([]ioa.Op(nil), h.Ops...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].InvokeStep < ops[j].InvokeStep })
	return ops
}

// feedOnline streams ops into a fresh checker with the given window,
// forcing a Retire after every retireEvery-th op (0 = never force), and
// returns the final verdict.
func feedOnline(ops []ioa.Op, window, retireEvery int) error {
	c := consistency.NewOnlineChecker(nil, consistency.WithWindowOps(window))
	for i, op := range ops {
		c.Observe(op)
		if retireEvery > 0 && (i+1)%retireEvery == 0 {
			c.Retire()
		}
	}
	return c.Result()
}

// TestOnlineDifferential compares the online checker against CheckAtomic
// over thousands of random small histories, across window sizes and forced
// retirement cadences.
func TestOnlineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agreeViolating, agreeLinearizable := 0, 0
	for i := 0; i < 2000; i++ {
		h := genHistory(rng, 6, false)
		want := consistency.CheckAtomic(h, nil) == nil
		ops := sortedOps(h)
		window := 1 + rng.Intn(4)
		retireEvery := rng.Intn(3)
		if got := feedOnline(ops, window, retireEvery) == nil; got != want {
			t.Fatalf("case %d (window %d, retire %d): online says %t, CheckAtomic says %t, history:\n%v",
				i, window, retireEvery, got, want, ops)
		}
		if wgot := consistency.CheckWindowed(h, nil, window) == nil; wgot != want {
			t.Fatalf("case %d (window %d): CheckWindowed says %t, CheckAtomic says %t, history:\n%v",
				i, window, wgot, want, ops)
		}
		if want {
			agreeLinearizable++
		} else {
			agreeViolating++
		}
	}
	if agreeViolating == 0 || agreeLinearizable == 0 {
		t.Fatalf("degenerate sample: %d linearizable, %d violating", agreeLinearizable, agreeViolating)
	}
}

// TestOnlineKnownHistories pins the online checker to the PR-2 known-verdict
// table at several window sizes.
func TestOnlineKnownHistories(t *testing.T) {
	cases := []struct {
		name   string
		ops    []ioa.Op
		atomic bool
	}{
		{
			name: "stale read after completed write",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 2, ioa.OpRead, "", 2, 3),
			},
			atomic: false,
		},
		{
			name: "read of overlapping write",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 5),
				op(1, 2, ioa.OpRead, "a", 1, 2),
			},
			atomic: true,
		},
		{
			name: "new-old inversion between two reads",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 1, ioa.OpWrite, "b", 2, 9),
				op(2, 2, ioa.OpRead, "b", 3, 4),
				op(3, 3, ioa.OpRead, "a", 5, 6),
			},
			atomic: false,
		},
		{
			name: "read returns never-written value",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 2, ioa.OpRead, "zz", 2, 3),
			},
			atomic: false,
		},
		{
			name: "pending write may take effect",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, -1),
				op(1, 2, ioa.OpRead, "a", 1, 2),
			},
			atomic: true,
		},
		{
			name: "value from the future",
			ops: []ioa.Op{
				op(0, 2, ioa.OpRead, "a", 0, 1),
				op(1, 1, ioa.OpWrite, "a", 2, 3),
			},
			atomic: false,
		},
		{
			name: "sequential writes then fresh read",
			ops: []ioa.Op{
				op(0, 1, ioa.OpWrite, "a", 0, 1),
				op(1, 1, ioa.OpWrite, "b", 2, 3),
				op(2, 2, ioa.OpRead, "b", 4, 5),
			},
			atomic: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &ioa.History{Ops: tc.ops}
			if got := consistency.CheckAtomic(h, nil) == nil; got != tc.atomic {
				t.Fatalf("CheckAtomic = %t, want %t (table drifted?)", got, tc.atomic)
			}
			ops := sortedOps(h)
			for _, window := range []int{1, 2, 3, consistency.DefaultWindowOps} {
				for _, retireEvery := range []int{0, 1, 2} {
					if got := feedOnline(ops, window, retireEvery) == nil; got != tc.atomic {
						t.Errorf("online (window %d, retire %d) = %t, want %t", window, retireEvery, got, tc.atomic)
					}
				}
				if got := consistency.CheckWindowed(h, nil, window) == nil; got != tc.atomic {
					t.Errorf("CheckWindowed (window %d) = %t, want %t", window, got, tc.atomic)
				}
			}
		})
	}
}

// TestOnlineSeededViolation verifies the checker localizes an injected
// violation deep in a long clean stream: a stale read thousands of ops past
// the last retirement boundary must still fail, and everything before it
// must have been retired with bounded window occupancy.
func TestOnlineSeededViolation(t *testing.T) {
	const n = 5000
	c := consistency.NewOnlineChecker(nil, consistency.WithWindowOps(64))
	step := 0
	var last string
	for i := 0; i < n; i++ {
		last = fmt.Sprintf("v%d", i)
		if err := c.Observe(op(i, 1, ioa.OpWrite, last, step, step+1)); err != nil {
			t.Fatalf("op %d: unexpected violation: %v", i, err)
		}
		step += 2
	}
	if c.OpsVerified() < n-128 {
		t.Fatalf("frontier lagging: verified %d of %d", c.OpsVerified(), n)
	}
	if mw := c.MaxWindow(); mw > 65 {
		t.Fatalf("window exceeded bound: %d", mw)
	}
	// A read of a long-retired value: new-old inversion against the frontier.
	if err := c.Observe(op(n, 2, ioa.OpRead, "v0", step, step+1)); err == nil && c.Result() == nil {
		t.Fatal("stale read of a retired value not caught")
	}
}

// TestOnlineResultMidStream verifies Result is callable mid-stream with
// in-flight extras: a completed read of a write that is still open (its
// ticket unsettled) must not be misreported as a violation.
func TestOnlineResultMidStream(t *testing.T) {
	c := consistency.NewOnlineChecker(nil)
	// The write w is invoked at step 0 and still pending at snapshot time;
	// a read completed inside w's window already returned its value and was
	// emitted... except feed ordering holds it behind w, so both arrive as
	// extras here.
	inflight := []ioa.Op{
		op(0, 1, ioa.OpWrite, "a", 0, -1),
		op(1, 2, ioa.OpRead, "a", 1, 2),
	}
	if err := c.Result(inflight...); err != nil {
		t.Fatalf("mid-stream Result with in-flight write: %v", err)
	}
	// Same shape, but the read returns a value no in-flight write explains.
	bad := []ioa.Op{
		op(0, 1, ioa.OpWrite, "a", 0, -1),
		op(1, 2, ioa.OpRead, "zz", 1, 2),
	}
	if err := c.Result(bad...); err == nil {
		t.Fatal("unexplained read among extras not caught")
	}
}

// TestOnlineWindowBound verifies peak memory tracks the window, not the
// history: a long low-concurrency stream with periodic quiescence retires
// almost everything.
func TestOnlineWindowBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := consistency.NewOnlineChecker(nil, consistency.WithWindowOps(32))
	reg := []byte(nil)
	step := 0
	var vals [][]byte
	vals = append(vals, nil)
	for i := 0; i < 20000; i++ {
		var o ioa.Op
		if rng.Intn(2) == 0 {
			val := fmt.Sprintf("w%d", i)
			o = op(i, ioa.NodeID(1+rng.Intn(2)), ioa.OpWrite, val, step, step+1)
			reg = []byte(val)
		} else {
			o = op(i, ioa.NodeID(1+rng.Intn(2)), ioa.OpRead, string(reg), step, step+1)
		}
		step += 2
		if err := c.Observe(o); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := c.Result(); err != nil {
		t.Fatalf("clean sequential stream rejected: %v", err)
	}
	if mw := c.MaxWindow(); mw > 33 {
		t.Fatalf("MaxWindow = %d, want <= window+1", mw)
	}
	if c.OpsVerified() < 20000-64 {
		t.Fatalf("OpsVerified = %d of 20000", c.OpsVerified())
	}
	_ = vals
}

// FuzzOnlineChecker fuzzes interleaved Observe/Retire orderings: each input
// byte becomes one operation (kind, overlap span, pending flag, read-output
// selector, retire bit) of a well-formed concurrent history, and the online
// verdict at a fuzzed window size must match CheckAtomic's.
func FuzzOnlineChecker(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x12}, uint8(1))
	f.Add([]byte{0xff, 0x00, 0xa5, 0x3c}, uint8(2))
	f.Add([]byte{0x41, 0x41, 0x41, 0x41, 0x41, 0x41}, uint8(0))
	f.Add([]byte{0x10, 0x92, 0x07, 0xe0, 0x55}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, window uint8) {
		if len(data) == 0 || len(data) > 9 {
			return // keep CheckAtomic's exponential search bounded
		}
		ops := make([]ioa.Op, 0, len(data))
		var values []string
		for i, b := range data {
			o := ioa.Op{ID: i, Client: ioa.NodeID(10 + i)}
			invoke := 2 * i
			respond := invoke + 1 + 2*int(b>>5&0x3) // overlap up to 3 successors
			if b&0x10 != 0 {
				respond = -1
			}
			o.InvokeStep, o.RespondStep = invoke, respond
			if b&0x01 != 0 {
				o.Kind = ioa.OpWrite
				o.Input = []byte(fmt.Sprintf("f%d", i))
				values = append(values, string(o.Input))
			} else {
				o.Kind = ioa.OpRead
			}
			ops = append(ops, o)
		}
		for i, b := range data { // outputs once all writes are known
			if ops[i].Kind != ioa.OpRead || ops[i].Pending() {
				continue
			}
			switch sel := int(b >> 1 & 0x7); {
			case sel == 7:
				ops[i].Output = []byte("never-written")
			case sel == 6 || len(values) == 0:
				ops[i].Output = nil
			default:
				ops[i].Output = []byte(values[sel%len(values)])
			}
		}
		h := &ioa.History{Ops: append([]ioa.Op(nil), ops...)}
		want := consistency.CheckAtomic(h, nil) == nil

		w := 1 + int(window%8)
		c := consistency.NewOnlineChecker(nil, consistency.WithWindowOps(w))
		for i, o := range ops {
			c.Observe(o)
			if data[i]&0x08 != 0 {
				c.Retire()
			}
		}
		if got := c.Result() == nil; got != want {
			t.Fatalf("online (window %d) = %t, CheckAtomic = %t, ops:\n%v", w, got, want, ops)
		}
		if got := consistency.CheckWindowed(h, nil, w) == nil; got != want {
			t.Fatalf("CheckWindowed (window %d) = %t, CheckAtomic = %t, ops:\n%v", w, got, want, ops)
		}
	})
}
