// Package abd implements the Attiya–Bar-Noy–Dolev replication-based atomic
// register [3] over the ioa simulation kernel, in both single-writer (SWMR)
// and multi-writer (MWMR) forms.
//
// ABD is the replication baseline of the paper: every server stores one full
// copy of the latest value it has seen, so per-server storage is
// log2|V| + O(tag) bits regardless of write concurrency. Its write protocol
// satisfies Assumptions 1-3 of Section 6.1 (one or two phases, exactly one of
// which sends value-dependent messages), so Theorem 6.5 applies to it.
//
// Protocol summary:
//
//	write (SWMR):  put(tag,v) to all, await N-f acks.           [1 phase]
//	write (MWMR):  query tags, await N-f; put(max+1,v), await N-f. [2 phases]
//	read:          query (tag,value), await N-f; write back the maximum
//	               (tag,value) to all, await N-f acks; return it.
//
// Quorums of size N-f with N >= 2f+1 pairwise intersect, which yields
// atomicity; liveness holds with up to f crashes.
package abd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/register"
)

// --- messages ---

type queryMsg struct{ RID int64 }

type queryAck struct {
	RID   int64
	Tag   register.Tag
	Value []byte
}

type putMsg struct {
	RID   int64
	Tag   register.Tag
	Value []byte
}

// BearsValue implements ioa.ValueBearer: the put message carries the value.
func (putMsg) BearsValue() bool { return true }

type putAck struct{ RID int64 }

// --- server ---

// Server is an ABD replica storing the highest-tagged (tag, value) pair it
// has received.
type Server struct {
	id    ioa.NodeID
	tag   register.Tag
	value []byte
}

var (
	_ ioa.Node         = (*Server)(nil)
	_ ioa.StorageMeter = (*Server)(nil)
	_ ioa.Digester     = (*Server)(nil)
	_ ioa.Recoverable  = (*Server)(nil)
)

// serverImage is the durable state an ABD replica persists across a crash:
// the highest (tag, value) pair it has acknowledged.
type serverImage struct {
	tag   register.Tag
	value []byte
}

// NewServer returns an ABD server automaton.
func NewServer(id ioa.NodeID) *Server { return &Server{id: id} }

// ID implements ioa.Node.
func (s *Server) ID() ioa.NodeID { return s.id }

// Deliver implements ioa.Node.
func (s *Server) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	switch m := msg.(type) {
	case queryMsg:
		return ioa.Effects{Sends: []ioa.Send{{To: from, Msg: queryAck{RID: m.RID, Tag: s.tag, Value: s.value}}}}
	case putMsg:
		if s.tag.Less(m.Tag) {
			s.tag = m.Tag
			s.value = m.Value
		}
		return ioa.Effects{Sends: []ioa.Send{{To: from, Msg: putAck{RID: m.RID}}}}
	default:
		return ioa.Effects{}
	}
}

// Clone implements ioa.Node. The stored value is immutable and shared.
func (s *Server) Clone() ioa.Node { cp := *s; return &cp }

// Snapshot implements ioa.Recoverable: the replica's durable state is its
// (tag, value) pair. The value is immutable and shared with the image.
func (s *Server) Snapshot() ioa.NodeSnapshot {
	return serverImage{tag: s.tag, value: s.value}
}

// Restore implements ioa.Recoverable.
func (s *Server) Restore(snap ioa.NodeSnapshot) error {
	img, ok := snap.(serverImage)
	if !ok {
		return fmt.Errorf("abd: server %d: foreign snapshot %T", s.id, snap)
	}
	s.tag = img.tag
	s.value = img.value
	return nil
}

// StorageBits implements ioa.StorageMeter: one value plus one tag.
func (s *Server) StorageBits() int {
	return register.ValueBits(s.value) + s.tag.Bits()
}

// StateDigest implements ioa.Digester.
func (s *Server) StateDigest() string {
	return fmt.Sprintf("abd|%s|%x", s.tag, s.value)
}

// --- client ---

// Role distinguishes reader and writer clients.
type Role int

// Client roles.
const (
	RoleWriter Role = iota + 1
	RoleReader
)

// phase numbers of the client state machine.
const (
	phaseIdle  = 0
	phaseQuery = 1
	phasePut   = 2
)

// Client is an ABD reader or writer.
type Client struct {
	id          ioa.NodeID
	role        Role
	servers     []ioa.NodeID
	quorum      int
	multiWriter bool // writers run a query phase to discover the max tag

	// Operation state.
	busy     bool
	phase    int
	rid      int64
	writeVal []byte
	acks     int
	bestTag  register.Tag
	bestVal  []byte
	localSeq int64 // SWMR writer's own sequence counter
}

var (
	_ ioa.Client          = (*Client)(nil)
	_ quorum.PhasedWriter = (*Client)(nil)
)

// Config configures an ABD register deployment.
type Config struct {
	Servers     []ioa.NodeID
	F           int  // tolerated crash failures
	MultiWriter bool // MWMR write protocol (query before put)
}

// Quorum returns the response-quorum size N-f.
func (c Config) Quorum() int { return len(c.Servers) - c.F }

// Validate checks the liveness/safety requirements (N >= 2f+1).
func (c Config) Validate() error {
	n := len(c.Servers)
	if n == 0 {
		return fmt.Errorf("abd: no servers configured")
	}
	if c.F < 0 || 2*c.F+1 > n {
		return fmt.Errorf("abd: need N >= 2f+1, got N=%d f=%d", n, c.F)
	}
	return nil
}

// NewClient returns an ABD client with the given role.
func NewClient(id ioa.NodeID, role Role, cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		id:          id,
		role:        role,
		servers:     append([]ioa.NodeID(nil), cfg.Servers...),
		quorum:      cfg.Quorum(),
		multiWriter: cfg.MultiWriter,
	}, nil
}

// ID implements ioa.Node.
func (c *Client) ID() ioa.NodeID { return c.id }

// Busy implements ioa.Client.
func (c *Client) Busy() bool { return c.busy }

// WritePhase implements quorum.PhasedWriter.
func (c *Client) WritePhase() (int, bool) {
	if !c.busy || c.role != RoleWriter {
		return 0, false
	}
	if !c.multiWriter {
		return 1, true // single phase, value-dependent
	}
	switch c.phase {
	case phaseQuery:
		return 1, false
	case phasePut:
		return 2, true
	default:
		return 0, false
	}
}

// Profile returns the Section 6.1 write-protocol classification of ABD.
func Profile(cfg Config) quorum.WriteProfile {
	q := quorum.System{N: len(cfg.Servers), Size: cfg.Quorum()}
	phases := []quorum.PhaseSpec{}
	if cfg.MultiWriter {
		phases = append(phases, quorum.PhaseSpec{Name: "query", Quorum: q, ValueDependent: false})
	}
	phases = append(phases, quorum.PhaseSpec{Name: "put", Quorum: q, ValueDependent: true})
	name := "abd-swmr"
	if cfg.MultiWriter {
		name = "abd-mwmr"
	}
	return quorum.WriteProfile{
		Algorithm:         name,
		Phases:            phases,
		MetadataSeparated: true,
		BlackBox:          true,
	}
}

// Invoke implements ioa.Client.
func (c *Client) Invoke(inv ioa.Invocation) ioa.Effects {
	c.busy = true
	c.writeVal = inv.Value
	c.bestTag = register.Tag{}
	c.bestVal = nil
	switch {
	case inv.Kind == ioa.OpWrite && !c.multiWriter:
		// SWMR write: straight to the put phase with a local sequence.
		c.localSeq++
		return c.startPut(register.Tag{Seq: c.localSeq, Writer: c.id}, c.writeVal)
	default:
		// Reads, and MWMR writes, start with a query phase.
		return c.startQuery()
	}
}

func (c *Client) startQuery() ioa.Effects {
	c.phase = phaseQuery
	c.rid++
	c.acks = 0
	sends := make([]ioa.Send, 0, len(c.servers))
	for _, s := range c.servers {
		sends = append(sends, ioa.Send{To: s, Msg: queryMsg{RID: c.rid}})
	}
	return ioa.Effects{Sends: sends}
}

func (c *Client) startPut(tag register.Tag, value []byte) ioa.Effects {
	c.phase = phasePut
	c.rid++
	c.acks = 0
	c.bestTag = tag
	c.bestVal = value
	sends := make([]ioa.Send, 0, len(c.servers))
	for _, s := range c.servers {
		sends = append(sends, ioa.Send{To: s, Msg: putMsg{RID: c.rid, Tag: tag, Value: value}})
	}
	return ioa.Effects{Sends: sends}
}

// Deliver implements ioa.Node.
func (c *Client) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	if !c.busy {
		return ioa.Effects{}
	}
	switch m := msg.(type) {
	case queryAck:
		if c.phase != phaseQuery || m.RID != c.rid {
			return ioa.Effects{}
		}
		c.acks++
		if c.bestTag.Less(m.Tag) {
			c.bestTag = m.Tag
			c.bestVal = m.Value
		}
		if c.acks < c.quorum {
			return ioa.Effects{}
		}
		if c.role == RoleWriter {
			// MWMR write: advance to the put phase with a fresh tag.
			return c.startPut(c.bestTag.Next(c.id), c.writeVal)
		}
		// Read: write back the maximum (tag, value) observed.
		return c.startPut(c.bestTag, c.bestVal)
	case putAck:
		if c.phase != phasePut || m.RID != c.rid {
			return ioa.Effects{}
		}
		c.acks++
		if c.acks < c.quorum {
			return ioa.Effects{}
		}
		c.busy = false
		c.phase = phaseIdle
		if c.role == RoleWriter {
			return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpWrite}}
		}
		return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpRead, Value: c.bestVal}}
	default:
		return ioa.Effects{}
	}
}

// Clone implements ioa.Node.
func (c *Client) Clone() ioa.Node {
	cp := *c
	cp.servers = append([]ioa.NodeID(nil), c.servers...)
	return &cp
}
