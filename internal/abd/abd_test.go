package abd

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/consistency"
	"repro/internal/ioa"
	"repro/internal/register"
)

func deploy(t *testing.T, opts Options) *clusterT {
	t.Helper()
	c, err := Deploy(opts)
	if err != nil {
		t.Fatal(err)
	}
	return &clusterT{c.Sys, c.Servers, c.Writers, c.Readers}
}

type clusterT struct {
	sys     *ioa.System
	servers []ioa.NodeID
	writers []ioa.NodeID
	readers []ioa.NodeID
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		n, f   int
		wantOK bool
	}{
		{5, 2, true},
		{3, 1, true},
		{1, 0, true},
		{4, 2, false}, // need N >= 2f+1
		{0, 0, false},
		{5, -1, false},
	}
	for _, tt := range tests {
		cfg := Config{Servers: make([]ioa.NodeID, tt.n), F: tt.f}
		err := cfg.Validate()
		if (err == nil) != tt.wantOK {
			t.Errorf("N=%d f=%d: err=%v wantOK=%v", tt.n, tt.f, err, tt.wantOK)
		}
	}
}

func TestDeployValidation(t *testing.T) {
	if _, err := Deploy(Options{Servers: 3, F: 1, Writers: 0, Readers: 1}); err == nil {
		t.Error("zero writers should fail")
	}
	if _, err := Deploy(Options{Servers: 3, F: 1, Writers: 2, Readers: 1, MultiWriter: false}); err == nil {
		t.Error("SWMR with two writers should fail")
	}
	if _, err := Deploy(Options{Servers: 4, F: 2, Writers: 1, Readers: 1}); err == nil {
		t.Error("N < 2f+1 should fail")
	}
}

func TestWriteThenRead(t *testing.T) {
	c := deploy(t, Options{Servers: 5, F: 2, Writers: 1, Readers: 1})
	v := []byte("value-1")
	if _, err := c.sys.RunOp(c.writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 10000); err != nil {
		t.Fatal(err)
	}
	op, err := c.sys.RunOp(c.readers[0], ioa.Invocation{Kind: ioa.OpRead}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

func TestReadInitialValue(t *testing.T) {
	c := deploy(t, Options{Servers: 3, F: 1, Writers: 1, Readers: 1})
	op, err := c.sys.RunOp(c.readers[0], ioa.Invocation{Kind: ioa.OpRead}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if op.Output != nil {
		t.Fatalf("read %q, want initial nil", op.Output)
	}
}

func TestLivenessUnderFFailures(t *testing.T) {
	c := deploy(t, Options{Servers: 5, F: 2, Writers: 1, Readers: 1})
	c.sys.Crash(c.servers[0])
	c.sys.Crash(c.servers[3])
	v := []byte("survives")
	if _, err := c.sys.RunOp(c.writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 10000); err != nil {
		t.Fatalf("write should terminate with f crashes: %v", err)
	}
	op, err := c.sys.RunOp(c.readers[0], ioa.Invocation{Kind: ioa.OpRead}, 10000)
	if err != nil {
		t.Fatalf("read should terminate with f crashes: %v", err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

func TestMWMRTagOrdering(t *testing.T) {
	c := deploy(t, Options{Servers: 5, F: 2, Writers: 3, Readers: 1, MultiWriter: true})
	for i, w := range c.writers {
		v := register.MakeValue(16, uint64(i+1))
		if _, err := c.sys.RunOp(w, ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 10000); err != nil {
			t.Fatal(err)
		}
	}
	// The last write must win.
	op, err := c.sys.RunOp(c.readers[0], ioa.Invocation{Kind: ioa.OpRead}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := register.MakeValue(16, uint64(len(c.writers)))
	if !bytes.Equal(op.Output, want) {
		t.Fatalf("read %q, want value of last writer %q", op.Output, want)
	}
}

func TestSequentialHistoryAtomic(t *testing.T) {
	c := deploy(t, Options{Servers: 5, F: 2, Writers: 1, Readers: 2})
	for i := 0; i < 5; i++ {
		v := register.MakeValue(16, uint64(i+1))
		if _, err := c.sys.RunOp(c.writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 10000); err != nil {
			t.Fatal(err)
		}
		r := c.readers[i%2]
		if _, err := c.sys.RunOp(r, ioa.Invocation{Kind: ioa.OpRead}, 10000); err != nil {
			t.Fatal(err)
		}
	}
	if err := consistency.CheckAtomic(c.sys.History(), nil); err != nil {
		t.Fatal(err)
	}
	if err := consistency.CheckRegular(c.sys.History(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRandomScheduleAtomic drives concurrent reads and writes
// under random schedules with crashes and checks atomicity of every
// resulting history.
func TestConcurrentRandomScheduleAtomic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		c := deploy(t, Options{Servers: 5, F: 2, Writers: 2, Readers: 2, MultiWriter: true})
		rng := rand.New(rand.NewSource(seed))
		crashBudget := 2
		nextVal := uint64(0)
		// Interleave invocations and random deliveries.
		for step := 0; step < 2500; step++ {
			if rng.Intn(12) == 0 {
				// Try to invoke on a random idle client.
				all := append(append([]ioa.NodeID(nil), c.writers...), c.readers...)
				id := all[rng.Intn(len(all))]
				n, err := c.sys.Node(id)
				if err != nil {
					t.Fatal(err)
				}
				cl, ok := n.(ioa.Client)
				if !ok {
					t.Fatal("client expected")
				}
				if !cl.Busy() && !c.sys.Crashed(id) {
					inv := ioa.Invocation{Kind: ioa.OpRead}
					if id >= 101 && id < 200 {
						nextVal++
						inv = ioa.Invocation{Kind: ioa.OpWrite, Value: register.MakeValue(16, nextVal)}
					}
					if _, err := c.sys.Invoke(id, inv); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if crashBudget > 0 && rng.Intn(400) == 0 {
				c.sys.Crash(c.servers[rng.Intn(len(c.servers))])
				crashBudget--
				continue
			}
			keys := c.sys.DeliverableChannels()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			if err := c.sys.Deliver(k.From, k.To); err != nil {
				t.Fatal(err)
			}
		}
		// Let everything settle fairly; pending ops may remain if their
		// clients cannot reach a quorum (we crashed up to 2 of 5 servers,
		// so ops should finish).
		_ = c.sys.FairRun(100000, ioa.AllOpsDone)
		if err := consistency.CheckAtomic(c.sys.History(), nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStorageIsOneValuePlusTag(t *testing.T) {
	c := deploy(t, Options{Servers: 5, F: 2, Writers: 1, Readers: 1})
	valueBytes := 128
	for i := 0; i < 6; i++ {
		v := register.MakeValue(valueBytes, uint64(i+1))
		if _, err := c.sys.RunOp(c.writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 10000); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.sys.Storage()
	wantPerServer := 8*valueBytes + (register.Tag{}).Bits()
	for id, bits := range rep.PerServerMaxBits {
		if bits != wantPerServer {
			t.Errorf("server %d: %d bits, want %d (one value + one tag, regardless of write count)", id, bits, wantPerServer)
		}
	}
	if rep.MaxTotalBits != 5*wantPerServer {
		t.Errorf("total %d bits, want %d", rep.MaxTotalBits, 5*wantPerServer)
	}
}

func TestWritePhaseIntrospection(t *testing.T) {
	c := deploy(t, Options{Servers: 3, F: 1, Writers: 1, Readers: 1, MultiWriter: true})
	n, err := c.sys.Node(c.writers[0])
	if err != nil {
		t.Fatal(err)
	}
	w, ok := n.(*Client)
	if !ok {
		t.Fatal("writer node is not *Client")
	}
	if ph, _ := w.WritePhase(); ph != 0 {
		t.Errorf("idle phase = %d, want 0", ph)
	}
	if _, err := c.sys.Invoke(c.writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	ph, vd := w.WritePhase()
	if ph != 1 || vd {
		t.Errorf("query phase = (%d,%v), want (1,false)", ph, vd)
	}
	// Deliver the queries, then exactly a quorum (N-f = 2) of acks so the
	// writer advances to — and stays in — the put phase.
	for _, s := range c.servers {
		if err := c.sys.Deliver(c.writers[0], s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c.servers[:2] {
		if err := c.sys.Deliver(s, c.writers[0]); err != nil {
			t.Fatal(err)
		}
	}
	ph, vd = w.WritePhase()
	if ph != 2 || !vd {
		t.Errorf("put phase = (%d,%v), want (2,true)", ph, vd)
	}
}

func TestProfileSatisfiesTheorem65(t *testing.T) {
	for _, mw := range []bool{false, true} {
		cfg := Config{Servers: cluster5(), F: 2, MultiWriter: mw}
		p := Profile(cfg)
		if err := p.Theorem65Applies(); err != nil {
			t.Errorf("multiWriter=%v: ABD should satisfy Assumptions 1-3: %v", mw, err)
		}
		if got := p.ValueDependentPhases(); got != 1 {
			t.Errorf("multiWriter=%v: %d value-dependent phases, want 1", mw, got)
		}
	}
}

func cluster5() []ioa.NodeID {
	return []ioa.NodeID{1, 2, 3, 4, 5}
}

func TestServerDigestDistinguishesStates(t *testing.T) {
	s := NewServer(1)
	d0 := s.StateDigest()
	s.Deliver(100, putMsg{RID: 1, Tag: register.Tag{Seq: 1, Writer: 100}, Value: []byte("a")})
	d1 := s.StateDigest()
	if d0 == d1 {
		t.Error("digest must change when state changes")
	}
	cl, ok := s.Clone().(*Server)
	if !ok {
		t.Fatal("clone type")
	}
	if cl.StateDigest() != d1 {
		t.Error("clone must preserve digest")
	}
}

func TestStaleAcksIgnored(t *testing.T) {
	// A client must ignore acks from a previous phase/request id.
	cfg := Config{Servers: cluster5(), F: 2}
	cl, err := NewClient(300, RoleReader, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Invoke(ioa.Invocation{Kind: ioa.OpRead})
	// Deliver a stale queryAck with wrong rid: no effect.
	eff := cl.Deliver(1, queryAck{RID: 999, Tag: register.Tag{Seq: 9, Writer: 1}, Value: []byte("x")})
	if eff.Response != nil || len(eff.Sends) != 0 {
		t.Error("stale ack must have no effect")
	}
	if cl.bestTag.Seq != 0 {
		t.Error("stale ack must not update bestTag")
	}
	// putAck during query phase: ignored.
	eff = cl.Deliver(1, putAck{RID: cl.rid})
	if eff.Response != nil {
		t.Error("wrong-phase ack must be ignored")
	}
}
