package abd

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ioa"
)

// Options configures an ABD deployment.
type Options struct {
	Servers     int
	F           int
	Writers     int
	Readers     int
	MultiWriter bool
}

// Deploy builds an ABD register cluster with the conventional node-id
// layout.
func Deploy(opts Options) (*cluster.Cluster, error) {
	if err := cluster.ValidateRoleCounts("abd", opts.Writers, opts.Readers); err != nil {
		return nil, err
	}
	if !opts.MultiWriter && opts.Writers > 1 {
		return nil, fmt.Errorf("abd: SWMR mode admits exactly one writer, got %d", opts.Writers)
	}
	serverIDs := cluster.ServerIDs(opts.Servers)
	cfg := Config{Servers: serverIDs, F: opts.F, MultiWriter: opts.MultiWriter}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := ioa.NewSystem()
	for _, id := range serverIDs {
		if err := sys.AddServer(NewServer(id)); err != nil {
			return nil, err
		}
	}
	writers := cluster.WriterIDs(opts.Writers)
	for _, id := range writers {
		c, err := NewClient(id, RoleWriter, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(c); err != nil {
			return nil, err
		}
	}
	readers := cluster.ReaderIDsAfter(opts.Writers, opts.Readers)
	for _, id := range readers {
		c, err := NewClient(id, RoleReader, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(c); err != nil {
			return nil, err
		}
	}
	return &cluster.Cluster{
		Name:    Profile(cfg).Algorithm,
		Sys:     sys,
		Servers: serverIDs,
		Writers: writers,
		Readers: readers,
		F:       opts.F,
		Profile: Profile(cfg),
	}, nil
}
