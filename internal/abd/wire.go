package abd

import (
	"repro/internal/ioa"
	"repro/internal/register"
	"repro/internal/wire"
)

// Wire type identifiers for the ABD messages (wire's 0x10–0x1f range).
const (
	wireQuery    wire.TypeID = 0x10
	wireQueryAck wire.TypeID = 0x11
	wirePut      wire.TypeID = 0x12
	wirePutAck   wire.TypeID = 0x13
)

// sampleTag derives a deterministic tag for the fuzz samples.
func sampleTag(seed uint64) register.Tag {
	return register.Tag{Seq: int64(seed % 1024), Writer: ioa.NodeID(seed % 7)}
}

func init() {
	wire.Register(wireQuery, wire.Codec{
		Name:   "abd.queryMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(queryMsg).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return queryMsg{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return queryMsg{RID: int64(seed)} },
	})
	wire.Register(wireQueryAck, wire.Codec{
		Name: "abd.queryAck",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			a := m.(queryAck)
			b.Varint(a.RID)
			b.Tag(a.Tag)
			b.Bytes8(a.Value)
		},
		Decode: func(r *wire.Reader) ioa.Message {
			return queryAck{RID: r.Varint(), Tag: r.Tag(), Value: r.Bytes8()}
		},
		Sample: func(seed uint64) ioa.Message {
			return queryAck{RID: int64(seed), Tag: sampleTag(seed), Value: register.MakeValue(8+int(seed%24), seed)}
		},
	})
	wire.Register(wirePut, wire.Codec{
		Name: "abd.putMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			p := m.(putMsg)
			b.Varint(p.RID)
			b.Tag(p.Tag)
			b.Bytes8(p.Value)
		},
		Decode: func(r *wire.Reader) ioa.Message {
			return putMsg{RID: r.Varint(), Tag: r.Tag(), Value: r.Bytes8()}
		},
		Sample: func(seed uint64) ioa.Message {
			return putMsg{RID: int64(seed), Tag: sampleTag(seed + 1), Value: register.MakeValue(8+int(seed%16), seed+1)}
		},
	})
	wire.Register(wirePutAck, wire.Codec{
		Name:   "abd.putAck",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(putAck).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return putAck{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return putAck{RID: int64(seed)} },
	})
}
