package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// Scenario is a named, parameterized recipe that expands into a concrete
// Plan for a deployment of n servers tolerating f crashes. Scenarios use the
// conventional node-id layout of package cluster (servers 1..n, writers from
// 101, readers from 201), which every algorithm deployment follows.
type Scenario interface {
	// String renders the scenario in the grammar Parse accepts.
	String() string
	// Validate checks every parameter that does not depend on the
	// deployment size, so an impossible scenario (recovery before crash,
	// heal before partition start, inverted delay range) fails when it is
	// parsed or constructed — not later from Build inside a run.
	Validate() error
	// Build expands the scenario into a plan for an (n, f) deployment.
	Build(n, f int, seed int64) (*Plan, error)
}

// CrashServers crashes the Extra+f highest-numbered servers on a staggered
// schedule. Extra = 0 is the quorum-preserving crash of exactly f servers
// every algorithm must survive; Extra = 1 is the quorum-killing crash of f+1
// that must cost liveness (but never safety).
type CrashServers struct {
	// Extra is added to f to get the crash count.
	Extra int
	// Step is the first crash step; each further crash lands crashStagger
	// steps later. The zero value crashes the first server at step 0.
	Step int
	// RecoverStep, when positive, revives every crashed server at
	// RecoverStep + its own stagger offset.
	RecoverStep int
}

// crashStagger spaces consecutive scheduled crashes so they interleave with
// protocol rounds instead of landing on one step.
const crashStagger = 17

func (c CrashServers) String() string {
	name := "crash-f"
	if c.Extra > 0 {
		name = "crash-majority"
	}
	if c.RecoverStep > 0 {
		return fmt.Sprintf("%s@%d:%d", name, c.Step, c.RecoverStep)
	}
	if c.Step > 0 {
		return fmt.Sprintf("%s@%d", name, c.Step)
	}
	return name
}

// Validate implements Scenario: a scheduled recovery must land strictly
// after its crash (the stagger offsets shift both by the same amount, so the
// base steps alone decide).
func (c CrashServers) Validate() error {
	if c.Extra < 0 {
		return fmt.Errorf("faults: %s: negative extra crash count %d", c, c.Extra)
	}
	if c.Step < 0 || c.RecoverStep < 0 {
		return fmt.Errorf("faults: %s: negative step", c)
	}
	if c.RecoverStep != 0 && c.RecoverStep <= c.Step {
		return fmt.Errorf("faults: %s: recovery step %d not after crash step %d", c, c.RecoverStep, c.Step)
	}
	return nil
}

// Build implements Scenario.
func (c CrashServers) Build(n, f int, seed int64) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	count := f + c.Extra
	if count < 0 || count > n {
		return nil, fmt.Errorf("faults: cannot crash %d of %d servers", count, n)
	}
	plan := &Plan{Seed: seed}
	servers := cluster.ServerIDs(n)
	for i := 0; i < count; i++ {
		cr := Crash{Node: servers[n-1-i], Step: c.Step + i*crashStagger}
		if c.RecoverStep > 0 {
			cr.RecoverStep = c.RecoverStep + i*crashStagger
		}
		plan.Crashes = append(plan.Crashes, cr)
	}
	return plan, plan.Validate()
}

// Partition symmetrically isolates the f+1 highest-numbered servers from
// every other node during [Start, Heal): a quorum-killing partition that
// stalls operations until it heals, after which the held messages flow and
// the history must still check atomic.
type Partition struct {
	Start, Heal int
	// Isolate overrides the number of isolated servers (default f+1).
	Isolate int
}

func (p Partition) String() string {
	if p.Isolate > 0 {
		return fmt.Sprintf("partition@%d:%d:%d", p.Start, p.Heal, p.Isolate)
	}
	return fmt.Sprintf("partition@%d:%d", p.Start, p.Heal)
}

// Validate implements Scenario: the heal step must lie strictly after the
// start, or the outage window [Start, Heal) is empty and the scenario can
// never build.
func (p Partition) Validate() error {
	if p.Start < 0 || p.Isolate < 0 {
		return fmt.Errorf("faults: %s: negative parameter", p)
	}
	if p.Heal <= p.Start {
		return fmt.Errorf("faults: %s: heal step %d not after start step %d", p, p.Heal, p.Start)
	}
	return nil
}

// Build implements Scenario.
func (p Partition) Build(n, f int, seed int64) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	isolate := p.Isolate
	if isolate == 0 {
		isolate = f + 1
	}
	if isolate < 0 || isolate > n {
		return nil, fmt.Errorf("faults: cannot isolate %d of %d servers", isolate, n)
	}
	servers := cluster.ServerIDs(n)
	island := NodeSet(servers[n-isolate:])
	plan := &Plan{
		Seed:    seed,
		Outages: []Outage{{From: island, To: nil, Start: p.Start, End: p.Heal, Symmetric: true}},
	}
	return plan, plan.Validate()
}

// Lossy drops every message independently with probability P on all links.
type Lossy struct{ P float64 }

func (l Lossy) String() string { return fmt.Sprintf("lossy=%g", l.P) }

// Validate implements Scenario.
func (l Lossy) Validate() error {
	if l.P < 0 || l.P > 1 {
		return fmt.Errorf("faults: %s: probability outside [0,1]", l)
	}
	return nil
}

// Build implements Scenario.
func (l Lossy) Build(n, f int, seed int64) (*Plan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Seed: seed, Rules: []Rule{{DropProb: l.P}}}
	return plan, plan.Validate()
}

// Delay holds every message for a uniform random number of steps in
// [Min, Max], reordering every link.
type Delay struct{ Min, Max int }

func (d Delay) String() string { return fmt.Sprintf("delay=%d:%d", d.Min, d.Max) }

// Validate implements Scenario.
func (d Delay) Validate() error {
	if d.Min < 0 || d.Max < d.Min {
		return fmt.Errorf("faults: %s: delay range [%d,%d] invalid", d, d.Min, d.Max)
	}
	return nil
}

// Build implements Scenario.
func (d Delay) Build(n, f int, seed int64) (*Plan, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Seed: seed, Rules: []Rule{{DelayMin: d.Min, DelayMax: d.Max}}}
	return plan, plan.Validate()
}

// Compose overlays several scenarios into one plan (e.g. a lossy network
// that also suffers a healing partition).
type Compose []Scenario

func (c Compose) String() string {
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = s.String()
	}
	return strings.Join(parts, "+")
}

// Validate implements Scenario.
func (c Compose) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("faults: empty composition")
	}
	for _, s := range c {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Build implements Scenario.
func (c Compose) Build(n, f int, seed int64) (*Plan, error) {
	if len(c) == 0 {
		return nil, fmt.Errorf("faults: empty composition")
	}
	var merged *Plan
	for _, s := range c {
		p, err := s.Build(n, f, seed)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = p
		} else {
			merged = merged.Merge(p)
		}
	}
	return merged, merged.Validate()
}

// Usage describes the scenario grammar Parse accepts, for CLI help text.
func Usage() string {
	return "none | crash-f[@STEP[:RECOVER]] | crash-majority[@STEP[:RECOVER]] | " +
		"partition@START:HEAL[:ISOLATE] | lossy=PROB | delay=MIN:MAX " +
		"(combine with +, e.g. lossy=0.02+delay=1:20)"
}

// Library returns the standard scenario grid: the quorum-preserving crash of
// f servers, the quorum-killing crash of f+1, a healing partition, a lossy
// link sweep point and a delay/reorder sweep point.
func Library() []Scenario {
	return []Scenario{
		CrashServers{},
		CrashServers{Extra: 1},
		Partition{Start: 40, Heal: 4000},
		Lossy{P: 0.02},
		Delay{Min: 1, Max: 24},
	}
}

// Parse turns a scenario spec (see Usage) into a Scenario. The empty string
// and "none" parse to nil: no faults.
func Parse(spec string) (Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	parts := strings.Split(spec, "+")
	if len(parts) > 1 {
		comp := make(Compose, 0, len(parts))
		for _, part := range parts {
			s, err := Parse(part)
			if err != nil {
				return nil, err
			}
			if s == nil {
				return nil, fmt.Errorf("faults: empty term in composition %q", spec)
			}
			comp = append(comp, s)
		}
		return comp, nil
	}
	name, args := spec, ""
	for _, sep := range []string{"@", "="} {
		if i := strings.Index(spec, sep); i >= 0 {
			name, args = spec[:i], spec[i+1:]
			break
		}
	}
	switch name {
	case "crash-f", "crash-majority":
		extra := 0
		if name == "crash-majority" {
			extra = 1
		}
		steps, err := parseInts(args, 0, 2)
		if err != nil {
			return nil, fmt.Errorf("faults: %s: %w", name, err)
		}
		sc := CrashServers{Extra: extra}
		if len(steps) > 0 {
			sc.Step = steps[0]
		}
		if len(steps) > 1 {
			sc.RecoverStep = steps[1]
		}
		return sc, sc.Validate()
	case "partition":
		steps, err := parseInts(args, 2, 3)
		if err != nil {
			return nil, fmt.Errorf("faults: partition: %w", err)
		}
		sc := Partition{Start: steps[0], Heal: steps[1]}
		if len(steps) > 2 {
			sc.Isolate = steps[2]
		}
		return sc, sc.Validate()
	case "lossy":
		p, err := strconv.ParseFloat(args, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("faults: lossy probability %q outside [0,1]", args)
		}
		return Lossy{P: p}, nil
	case "delay":
		steps, err := parseInts(args, 2, 2)
		if err != nil {
			return nil, fmt.Errorf("faults: delay: %w", err)
		}
		sc := Delay{Min: steps[0], Max: steps[1]}
		return sc, sc.Validate()
	default:
		return nil, fmt.Errorf("faults: unknown scenario %q (grammar: %s)", spec, Usage())
	}
}

// parseInts parses between min and max colon-separated non-negative ints.
func parseInts(args string, min, max int) ([]int, error) {
	if args == "" {
		if min > 0 {
			return nil, fmt.Errorf("expected %d argument(s)", min)
		}
		return nil, nil
	}
	parts := strings.Split(args, ":")
	if len(parts) < min || len(parts) > max {
		return nil, fmt.Errorf("expected between %d and %d arguments, got %d", min, max, len(parts))
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad argument %q", p)
		}
		out[i] = v
	}
	return out, nil
}
