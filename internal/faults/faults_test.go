package faults_test

import (
	"strings"
	"testing"

	"repro/internal/abd"
	"repro/internal/faults"
	"repro/internal/workload"
)

// TestParseRoundTrip checks that every library scenario (and a composition)
// renders to a spec that parses back to the same scenario.
func TestParseRoundTrip(t *testing.T) {
	specs := make([]string, 0, 8)
	for _, sc := range faults.Library() {
		specs = append(specs, sc.String())
	}
	specs = append(specs,
		"crash-f@30:900",
		"crash-f@0:25", // crash at step zero with recovery
		"crash-majority@10:40",
		"partition@10:500:2", // explicit isolate count
		"lossy=0.02+delay=1:20",
		"crash-majority@5",
		"delay=0:0",
	)
	for _, spec := range specs {
		sc, err := faults.Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if got := sc.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseNone(t *testing.T) {
	for _, spec := range []string{"", "none", "  "} {
		sc, err := faults.Parse(spec)
		if err != nil || sc != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, sc, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"lossy=1.5",
		"lossy=x",
		"partition@10",     // needs start and heal
		"partition@50:10",  // heal before start
		"delay=5",          // needs min and max
		"crash-f@-3",       // negative step
		"lossy=0.1+bogus",  // bad composition term
		"partition@10:+20", // empty term
	} {
		if _, err := faults.Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error at parse time", spec)
		}
	}
}

// TestParseRejectsImpossibleWindows pins the eager window validation per
// grammar production: specs whose parameters can never build (recovery
// before or at the crash step, heal before or at the partition start,
// inverted delay range) must fail at Parse time — a CLI user of
// `shardsim -faults` or `faultsim` gets the error immediately, not from
// Scenario.Build in the middle of a run. Boundary-valid neighbours of each
// bad spec must keep parsing.
func TestParseRejectsImpossibleWindows(t *testing.T) {
	bad := []struct{ spec, wantErr string }{
		{"crash-f@50:10", "recovery step 10 not after crash step 50"},
		{"crash-f@50:50", "recovery step 50 not after crash step 50"},
		{"crash-majority@50:10", "recovery step 10 not after crash step 50"},
		{"partition@40:10", "heal step 10 not after start step 40"},
		{"partition@40:40", "heal step 40 not after start step 40"},
		{"partition@40:10:2", "heal step 10 not after start step 40"},
		{"delay=24:1", "delay range [24,1] invalid"},
		{"lossy=0.02+partition@40:10", "heal step 10 not after start step 40"},
		{"delay=1:24+crash-f@9:3", "recovery step 3 not after crash step 9"},
	}
	for _, tc := range bad {
		_, err := faults.Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want parse-time error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Parse(%q) error %q, want it to contain %q", tc.spec, err, tc.wantErr)
		}
	}
	good := []string{
		"crash-f@50:51",
		"crash-f@0:25",
		"crash-majority@50:51",
		"partition@40:41",
		"partition@40:41:1",
		"delay=24:24",
		"lossy=0.02+partition@40:400",
	}
	for _, spec := range good {
		sc, err := faults.Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v, want boundary-valid spec to parse", spec, err)
			continue
		}
		if _, err := sc.Build(5, 1, 1); err != nil {
			t.Errorf("Build(%q): %v", spec, err)
		}
	}
}

// TestBuildValidatesProgrammaticScenarios checks the same eager validation
// guards scenario values constructed in code, not just parsed specs.
func TestBuildValidatesProgrammaticScenarios(t *testing.T) {
	for _, sc := range []faults.Scenario{
		faults.CrashServers{Step: 50, RecoverStep: 10},
		faults.Partition{Start: 40, Heal: 10},
		faults.Delay{Min: 24, Max: 1},
		faults.Lossy{P: 1.5},
		faults.Compose{faults.Lossy{P: 0.1}, faults.Partition{Start: 9, Heal: 3}},
	} {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s.Validate() = nil, want error", sc)
		}
		if _, err := sc.Build(5, 1, 1); err == nil {
			t.Errorf("%s.Build() succeeded, want error", sc)
		}
	}
}

// TestMessageFateDeterministic checks drop/delay decisions are pure
// functions of (seed, seq) and that different seqs actually vary.
func TestMessageFateDeterministic(t *testing.T) {
	plan := &faults.Plan{Seed: 42, Rules: []faults.Rule{{DropProb: 0.3, DelayMin: 1, DelayMax: 50}}}
	varied := false
	var prevDrop bool
	var prevDelay int
	for seq := uint64(0); seq < 200; seq++ {
		d1, del1 := plan.MessageFate(1, 2, seq, 10)
		d2, del2 := plan.MessageFate(1, 2, seq, 9999) // step must not matter
		if d1 != d2 || del1 != del2 {
			t.Fatalf("seq %d: fate not deterministic: (%t,%d) vs (%t,%d)", seq, d1, del1, d2, del2)
		}
		if seq > 0 && (d1 != prevDrop || (!d1 && del1 != prevDelay)) {
			varied = true
		}
		prevDrop, prevDelay = d1, del1
	}
	if !varied {
		t.Error("200 sequence numbers produced identical fates; hash not mixing")
	}
}

// TestRulesOverlay checks rule composition: a targeted drop rule and a
// catch-all delay rule both apply — the drop decides its link, the delay
// still reaches everything that survives.
func TestRulesOverlay(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{To: faults.NodeSet{3}, DropProb: 1},
		{DelayMin: 2, DelayMax: 5},
	}}
	if drop, _ := plan.MessageFate(1, 3, 0, 0); !drop {
		t.Error("message to node 3 not dropped by the targeted rule")
	}
	drop, delay := plan.MessageFate(1, 2, 0, 0)
	if drop {
		t.Error("message to node 2 dropped despite matching no drop rule")
	}
	if delay < 2 || delay > 5 {
		t.Errorf("message to node 2 delayed %d steps, want within [2,5]", delay)
	}
	// Two matching delay rules accumulate.
	both := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{DelayMin: 10, DelayMax: 10},
		{DelayMin: 7, DelayMax: 7},
	}}
	if _, delay := both.MessageFate(1, 2, 0, 0); delay != 17 {
		t.Errorf("stacked fixed delays gave %d, want 17", delay)
	}
}

// abdRun drives a small SWMR ABD deployment (n=2f+1) through a fixed
// workload under the given fault scenario spec.
func abdRun(t *testing.T, n, f int, spec string) *workload.Result {
	t.Helper()
	cl, err := abd.Deploy(abd.Options{Servers: n, F: f, Writers: 1, Readers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	var plan *faults.Plan
	if sc != nil {
		plan, err = sc.Build(n, f, 7)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := workload.Run(cl, workload.Spec{
		Seed: 5, Writes: 4, Reads: 4, TargetNu: 1, ValueBytes: 16,
		FaultPlan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestABDSurvivesFCrashes is the first acceptance criterion: ABD with
// n = 2f+1 servers completes every operation with f servers crashed from
// step 0, and the history checks atomic.
func TestABDSurvivesFCrashes(t *testing.T) {
	res := abdRun(t, 3, 1, "crash-f@0")
	if res.Quiescent {
		t.Fatal("run went quiescent with only f crashed servers")
	}
	if pending := res.History.PendingOps(); len(pending) != 0 {
		t.Fatalf("%d operations still pending: %v", len(pending), pending)
	}
	if res.Faults.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", res.Faults.Crashes)
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Errorf("atomicity under f crashes: %v", err)
	}
}

// TestABDQuiescentBeyondF is the second acceptance criterion: with f+1
// servers crashed no majority quorum survives, so the run must go quiescent
// (liveness lost) while its completed prefix still checks atomic.
func TestABDQuiescentBeyondF(t *testing.T) {
	res := abdRun(t, 3, 1, "crash-majority@0")
	if !res.Quiescent {
		t.Fatal("run completed despite f+1 crashed servers; quorum math is broken")
	}
	if pending := res.History.PendingOps(); len(pending) == 0 {
		t.Error("quiescent run has no pending operations")
	}
	if res.Faults.Crashes != 2 {
		t.Errorf("crashes = %d, want 2", res.Faults.Crashes)
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Errorf("atomicity of the completed prefix: %v", err)
	}
}

// TestPartitionThenHealAtomic is the third acceptance criterion: a
// quorum-killing partition stalls the run, heals, the held messages flow,
// every operation completes and the history checks atomic.
func TestPartitionThenHealAtomic(t *testing.T) {
	res := abdRun(t, 3, 1, "partition@30:5000")
	if res.Quiescent {
		t.Fatal("run stayed quiescent after the partition healed")
	}
	if pending := res.History.PendingOps(); len(pending) != 0 {
		t.Fatalf("%d operations still pending after heal", len(pending))
	}
	if res.Faults.FastForwards == 0 {
		t.Error("no fast-forwards recorded; the partition never actually stalled the run")
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Errorf("atomicity across partition+heal: %v", err)
	}
}

// TestDelayReorderingKeepsAtomicity runs ABD under heavy random per-message
// delays (which reorder every link) and checks safety is unaffected.
func TestDelayReorderingKeepsAtomicity(t *testing.T) {
	res := abdRun(t, 5, 2, "delay=1:40")
	if res.Quiescent {
		t.Fatal("delays alone must never cost liveness")
	}
	if res.Faults.DelayedMessages == 0 {
		t.Fatal("no messages were delayed; scenario had no effect")
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Errorf("atomicity under delay/reorder: %v", err)
	}
}

// TestLossySweepSafety sweeps drop probabilities; each point must either
// complete or go quiescent, and the completed operations must stay atomic
// either way.
func TestLossySweepSafety(t *testing.T) {
	for _, spec := range []string{"lossy=0.01", "lossy=0.1", "lossy=0.3"} {
		res := abdRun(t, 5, 2, spec)
		if err := res.CheckConsistency("atomic"); err != nil {
			t.Errorf("%s: atomicity violated: %v", spec, err)
		}
		if res.Faults.Drops == 0 && strings.HasSuffix(spec, "0.3") {
			t.Errorf("%s: no drops recorded", spec)
		}
	}
}

// TestCrashRecoverCompletes crashes f servers and revives them: the run must
// complete and stay atomic through the outage.
func TestCrashRecoverCompletes(t *testing.T) {
	res := abdRun(t, 3, 1, "crash-f@10:400")
	if res.Quiescent {
		t.Fatal("run quiescent despite recovery")
	}
	if res.Faults.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", res.Faults.Recoveries)
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Errorf("atomicity across crash/recovery: %v", err)
	}
}

// TestComposedScenario overlays loss and delay in one plan: BOTH effects
// must be observable — a catch-all loss rule must not shadow the delay rule.
func TestComposedScenario(t *testing.T) {
	res := abdRun(t, 5, 2, "lossy=0.05+delay=1:10")
	if res.Faults.Drops == 0 {
		t.Error("composed scenario produced no drops")
	}
	if res.Faults.DelayedMessages == 0 {
		t.Error("composed scenario produced no delays (loss rule shadowed the delay rule)")
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Errorf("atomicity under composed faults: %v", err)
	}
}

// TestSameSeedSameFaultTrace replays the same seeded run twice and compares
// the recorded fault traces event by event.
func TestSameSeedSameFaultTrace(t *testing.T) {
	a := abdRun(t, 5, 2, "lossy=0.1+delay=1:20")
	b := abdRun(t, 5, 2, "lossy=0.1+delay=1:20")
	if len(a.History.Faults) == 0 {
		t.Fatal("no fault events recorded")
	}
	if len(a.History.Faults) != len(b.History.Faults) {
		t.Fatalf("fault trace lengths differ: %d vs %d", len(a.History.Faults), len(b.History.Faults))
	}
	for i := range a.History.Faults {
		if a.History.Faults[i] != b.History.Faults[i] {
			t.Fatalf("fault trace diverges at %d: %+v vs %+v", i, a.History.Faults[i], b.History.Faults[i])
		}
	}
}
