package faults

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ioa"
)

// TestWallClockFiresEventsInOrder checks the event goroutine fires the
// plan's crash and recovery hooks in schedule order and within a loose
// wall-clock tolerance of their step positions.
func TestWallClockFiresEventsInOrder(t *testing.T) {
	const stepDur = time.Millisecond
	plan := &Plan{Crashes: []Crash{
		{Node: 2, Step: 20, RecoverStep: 60},
		{Node: 1, Step: 40},
	}}
	type event struct {
		node    ioa.NodeID
		recover bool
		step    int
	}
	var mu sync.Mutex
	var got []event
	wc := NewWallClock(plan, stepDur)
	record := func(recover bool) func(ioa.NodeID) {
		return func(n ioa.NodeID) {
			mu.Lock()
			got = append(got, event{n, recover, wc.Step()})
			mu.Unlock()
		}
	}
	wc.Start(NodeHooks{Crash: record(false), Recover: record(true)})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 events fired before the deadline", n)
		}
		time.Sleep(stepDur)
	}
	wc.Stop()

	want := []struct {
		node    ioa.NodeID
		recover bool
		step    int
	}{{2, false, 20}, {1, false, 40}, {2, true, 60}}
	for i, ev := range got {
		if ev.node != want[i].node || ev.recover != want[i].recover {
			t.Errorf("event %d = node %d recover=%t, want node %d recover=%t",
				i, ev.node, ev.recover, want[i].node, want[i].recover)
		}
		// The hook must never fire before its scheduled step; the upper
		// tolerance is loose (scheduler jitter on a busy CI host).
		if ev.step < want[i].step || ev.step > want[i].step+2000 {
			t.Errorf("event %d fired at step %d, scheduled for %d", i, ev.step, want[i].step)
		}
	}
	if wc.Crashes() != 2 || wc.Recoveries() != 1 {
		t.Errorf("counters = %d crashes, %d recoveries; want 2, 1", wc.Crashes(), wc.Recoveries())
	}
}

// TestWallClockStopAbandonsSchedule checks Stop joins the event goroutine
// without firing far-future events, and is idempotent.
func TestWallClockStopAbandonsSchedule(t *testing.T) {
	plan := &Plan{Crashes: []Crash{{Node: 1, Step: 1 << 30}}}
	wc := NewWallClock(plan, time.Millisecond)
	fired := make(chan ioa.NodeID, 1)
	wc.Start(NodeHooks{Crash: func(n ioa.NodeID) { fired <- n }})
	wc.Stop()
	wc.Stop() // idempotent
	select {
	case n := <-fired:
		t.Errorf("far-future crash of node %d fired before Stop", n)
	default:
	}
	if wc.Crashes() != 0 {
		t.Errorf("abandoned schedule counted %d crashes", wc.Crashes())
	}
}

// TestWallClockHold checks the pull-based outage gate: inside the window a
// frame is parked until the healing boundary (never less than one step);
// outside it passes immediately; unrelated links are never gated.
func TestWallClockHold(t *testing.T) {
	const stepDur = 10 * time.Millisecond
	plan := &Plan{Outages: []Outage{{
		From: NodeSet{101}, To: NodeSet{1}, Start: 0, End: 50,
	}}}
	wc := NewWallClock(plan, stepDur)
	wc.Start(NodeHooks{})
	defer wc.Stop()

	d, steps := wc.Hold(101, 1)
	if d <= 0 || steps <= 0 {
		t.Fatalf("Hold inside the window = (%v, %d), want a positive park", d, steps)
	}
	if max := 50 * stepDur; d > max {
		t.Errorf("park %v exceeds the window's remaining span %v", d, max)
	}
	if d < stepDur {
		t.Errorf("park %v is below one step %v; a re-dispatch could land inside the window", d, stepDur)
	}
	if d2, s2 := wc.Hold(1, 101); d2 != 0 || s2 != 0 {
		t.Errorf("asymmetric outage gated the reverse link: (%v, %d)", d2, s2)
	}
	if d3, s3 := wc.Hold(101, 2); d3 != 0 || s3 != 0 {
		t.Errorf("outage gated an uncovered link: (%v, %d)", d3, s3)
	}
}

// TestWallClockNilSafety pins the contract that lets hand-assembled
// runtimes skip the clock entirely: every method on a nil *WallClock is a
// no-op reporting zero.
func TestWallClockNilSafety(t *testing.T) {
	var wc *WallClock
	wc.Start(NodeHooks{Crash: func(ioa.NodeID) { t.Error("nil clock fired a hook") }})
	if s := wc.Step(); s != 0 {
		t.Errorf("nil clock Step() = %d", s)
	}
	if d, steps := wc.Hold(1, 2); d != 0 || steps != 0 {
		t.Errorf("nil clock Hold() = (%v, %d)", d, steps)
	}
	if wc.Crashes() != 0 || wc.Recoveries() != 0 {
		t.Error("nil clock counted events")
	}
	wc.Stop()
}

// TestWallClockNoEventsNoGoroutine checks a plan without node events (or a
// nil plan) starts no goroutine: Stop returns immediately.
func TestWallClockNoEventsNoGoroutine(t *testing.T) {
	for _, plan := range []*Plan{nil, {Rules: []Rule{{DropProb: 0.5}}}} {
		wc := NewWallClock(plan, time.Millisecond)
		wc.Start(NodeHooks{})
		if s := wc.Step(); s < 0 {
			t.Errorf("negative step %d", s)
		}
		wc.Stop()
	}
}
