// Package faults builds deterministic, seeded fault plans for the simulation
// kernel: message drops, bounded per-message delays (which reorder links),
// link outages/partitions between node sets, and scheduled server crashes
// with optional recovery. A Plan implements ioa.FaultPlan and is installed on
// a system with System.SetFaultPlan; every decision it makes is a pure
// function of (plan seed, message sequence number, step), so the same seeded
// schedule under the same plan replays byte-identically — the determinism
// contract the sharded store's fingerprints rely on (DESIGN.md section 6).
//
// The paper's lower bounds (Theorems 4.1, 5.1, 6.5) are driven by exactly
// these behaviors: servers must store enough because messages may be delayed
// indefinitely or never arrive, and algorithms must survive f crashed
// servers. A fault plan turns those adversarial possibilities into concrete,
// replayable scenarios that stress the f-tolerance claims of ABD and
// CAS/CASGC.
package faults

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ioa"
)

// ErrUnsupported marks a fault-plan feature the selected execution backend
// genuinely cannot execute — today, scheduled recovery of a node whose
// automaton lacks the ioa.Recoverable snapshot surface. Backends wrap it so
// callers branch with errors.Is(err, faults.ErrUnsupported) instead of
// matching message text. (The wall-clock backends used to reject every
// outage and crash schedule as "step-indexed and simulator-only"; those now
// run everywhere — see internal/faults/wallclock.go and MIGRATION.md.)
var ErrUnsupported = errors.New("faults: plan unsupported on this backend")

// NodeSet selects nodes for a rule or outage. A nil NodeSet matches every
// node; otherwise the set matches exactly the listed ids.
type NodeSet []ioa.NodeID

// Has reports whether the set matches the node.
func (s NodeSet) Has(id ioa.NodeID) bool {
	if s == nil {
		return true
	}
	for _, n := range s {
		if n == id {
			return true
		}
	}
	return false
}

// Rule applies message drops and delays on the links it matches. Every
// matching rule contributes to a message's fate: the message is dropped if
// any matching rule's draw says drop, and otherwise accumulates the delay of
// every matching rule — so composed scenarios (a lossy network that is also
// slow) overlay rather than shadow each other.
type Rule struct {
	// From and To select the links the rule governs (nil = any node).
	From, To NodeSet
	// DropProb is the probability a matched message is dropped at send time.
	DropProb float64
	// DelayMin and DelayMax bound the uniform per-message delivery delay in
	// steps for messages that are not dropped. Unequal delays reorder the
	// link, modeling the paper's unordered asynchronous channels.
	DelayMin, DelayMax int
}

// Outage blocks delivery on matched links during [Start, End). Messages are
// held in the channel, not dropped, and flow again when the window closes —
// the "partition then heal" behavior.
type Outage struct {
	From, To NodeSet
	// Start and End delimit the outage window in kernel steps.
	Start, End int
	// Symmetric also blocks the reverse direction (To -> From).
	Symmetric bool
}

func (o Outage) active(step int) bool { return step >= o.Start && step < o.End }

func (o Outage) covers(from, to ioa.NodeID) bool {
	if o.From.Has(from) && o.To.Has(to) {
		return true
	}
	return o.Symmetric && o.From.Has(to) && o.To.Has(from)
}

// Crash schedules a node crash at Step, with an optional recovery.
type Crash struct {
	Node ioa.NodeID
	Step int
	// RecoverStep, when positive, revives the node at that step with its
	// state intact (crash-recovery). Zero means the node stays down, the
	// paper's permanent-crash model.
	RecoverStep int
}

// Plan is a deterministic fault schedule. Plans are immutable once installed
// on a system; Build-ing scenario values is the usual way to obtain one.
type Plan struct {
	// Seed drives every probabilistic decision (drops, delay draws).
	Seed int64
	// Rules all overlay per sent message (any drop wins, delays add).
	Rules []Rule
	// Outages are link blackout windows; any active matching outage blocks
	// the link.
	Outages []Outage
	// Crashes is the node crash/recovery schedule.
	Crashes []Crash
}

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if r.DropProb < 0 || r.DropProb > 1 {
			return fmt.Errorf("faults: rule %d drop probability %v outside [0,1]", i, r.DropProb)
		}
		if r.DelayMin < 0 || r.DelayMax < r.DelayMin {
			return fmt.Errorf("faults: rule %d delay range [%d,%d] invalid", i, r.DelayMin, r.DelayMax)
		}
	}
	for i, o := range p.Outages {
		if o.Start < 0 || o.End <= o.Start {
			return fmt.Errorf("faults: outage %d window [%d,%d) invalid", i, o.Start, o.End)
		}
	}
	for i, c := range p.Crashes {
		if c.Step < 0 {
			return fmt.Errorf("faults: crash %d at negative step %d", i, c.Step)
		}
		if c.RecoverStep != 0 && c.RecoverStep <= c.Step {
			return fmt.Errorf("faults: crash %d recovery step %d not after crash step %d", i, c.RecoverStep, c.Step)
		}
	}
	return nil
}

// Merge returns a plan combining p's and q's rules, outages and crashes;
// all of them overlay (see Rule). The merged plan keeps p's seed.
func (p *Plan) Merge(q *Plan) *Plan {
	if q == nil {
		return p
	}
	return &Plan{
		Seed:    p.Seed,
		Rules:   append(append([]Rule(nil), p.Rules...), q.Rules...),
		Outages: append(append([]Outage(nil), p.Outages...), q.Outages...),
		Crashes: append(append([]Crash(nil), p.Crashes...), q.Crashes...),
	}
}

// MessageFate implements ioa.FaultPlan: every matching rule contributes —
// the message is dropped if any matching rule's draw says so, and otherwise
// its delays accumulate. Each decision hashes (seed, seq, rule index) so it
// is independent of wall time, worker count and map order.
func (p *Plan) MessageFate(from, to ioa.NodeID, seq uint64, step int) (bool, int) {
	delay := 0
	for i := range p.Rules {
		r := &p.Rules[i]
		if !r.From.Has(from) || !r.To.Has(to) {
			continue
		}
		h := mix64(mix64(uint64(p.Seed), seq), uint64(i))
		if r.DropProb > 0 && unitFloat(h) < r.DropProb {
			return true, 0
		}
		if r.DelayMax > 0 {
			span := uint64(r.DelayMax - r.DelayMin + 1)
			delay += r.DelayMin + int(mix64(h, 0xd1b54a32d192ed03)%span)
		}
	}
	return false, delay
}

// LinkBlocked implements ioa.FaultPlan.
func (p *Plan) LinkBlocked(from, to ioa.NodeID, step int) bool {
	for i := range p.Outages {
		if p.Outages[i].active(step) && p.Outages[i].covers(from, to) {
			return true
		}
	}
	return false
}

// NextLinkChange implements ioa.FaultPlan: the earliest future boundary
// (start or end) of any outage covering the link, or -1.
func (p *Plan) NextLinkChange(from, to ioa.NodeID, step int) int {
	next := -1
	consider := func(t int) {
		if t > step && (next == -1 || t < next) {
			next = t
		}
	}
	for i := range p.Outages {
		o := &p.Outages[i]
		if !o.covers(from, to) {
			continue
		}
		consider(o.Start)
		consider(o.End)
	}
	return next
}

// RecoveredNodes returns the nodes the plan schedules a recovery for,
// deduplicated, in schedule order. Wall-clock backends use it to verify
// every such node's automaton offers the ioa.Recoverable snapshot surface
// before the run starts.
func (p *Plan) RecoveredNodes() []ioa.NodeID {
	var out []ioa.NodeID
	seen := make(map[ioa.NodeID]bool)
	for _, c := range p.Crashes {
		if c.RecoverStep > 0 && !seen[c.Node] {
			seen[c.Node] = true
			out = append(out, c.Node)
		}
	}
	return out
}

// NodeEvents implements ioa.FaultPlan.
func (p *Plan) NodeEvents() []ioa.NodeFaultEvent {
	events := make([]ioa.NodeFaultEvent, 0, 2*len(p.Crashes))
	for _, c := range p.Crashes {
		events = append(events, ioa.NodeFaultEvent{Step: c.Step, Node: c.Node})
		if c.RecoverStep > 0 {
			events = append(events, ioa.NodeFaultEvent{Step: c.RecoverStep, Node: c.Node, Recover: true})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	return events
}

// mix64 is a splitmix64-style finalizer combining two words into a
// well-distributed hash; it is the source of every seeded fault decision.
func mix64(a, b uint64) uint64 {
	z := a ^ (b+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }
