// Wall-clock fault scheduling: the bridge that lets a step-indexed Plan run
// on the concurrent backends (internal/live, internal/netrun), where there is
// no kernel step counter — only real time.
//
// A Plan positions outage windows and crash/recovery events in kernel steps.
// The simulator interprets those steps exactly; a WallClock interprets them
// against a wall-clock epoch scaled by a configurable step duration:
//
//	step(t) = (t - epoch) / stepDur
//
// Everything stays seeded and replayable in the only sense a concurrent
// runtime can offer: the event times are a pure function of (plan, stepDur),
// so the same plan fires the same crashes, recoveries and outage boundaries
// at the same step offsets on every run — only the interleaving with
// protocol traffic varies, exactly as it does for drop/delay rules.
//
// The WallClock owns the node-event schedule (crashes and recoveries) and
// runs it on one goroutine, so a node's crash always precedes its recovery
// even when the two land steps apart at a microsecond step duration. Link
// gating is pull-based instead: backends ask Hold at dispatch time and park
// the frame themselves until the window's boundary, reusing their existing
// delay-timer machinery (DESIGN.md section 12).
package faults

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ioa"
)

// NodeHooks receives the wall-clock schedule's node events. Both callbacks
// run on the WallClock's single event goroutine, in schedule order; a
// backend's Crash hook stops the node (joining its loop is allowed — the
// event goroutine has no other duties) and its Recover hook restarts the
// node from its last durable checkpoint.
type NodeHooks struct {
	Crash   func(node ioa.NodeID)
	Recover func(node ioa.NodeID)
}

// WallClock drives one Plan's step-indexed schedule in real time. Zero or
// nil plans are valid (the clock then only provides the step mapping), and
// every method is safe on a nil *WallClock (everything reports zero) so
// hand-assembled runtimes in tests need no clock at all.
// Start at most once; Stop joins the event goroutine and is idempotent.
type WallClock struct {
	plan    *Plan
	stepDur time.Duration

	epoch time.Time // stamped by Start before any goroutine reads it

	crashes    atomic.Int64
	recoveries atomic.Int64

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewWallClock returns a clock for the plan (which may be nil) with the
// given step duration.
func NewWallClock(plan *Plan, stepDur time.Duration) *WallClock {
	return &WallClock{plan: plan, stepDur: stepDur, done: make(chan struct{})}
}

// Start stamps the epoch and, when the plan schedules node events, launches
// the event goroutine that fires hooks at each event's wall-clock time.
func (w *WallClock) Start(h NodeHooks) {
	if w == nil {
		return
	}
	w.epoch = time.Now()
	if w.plan == nil {
		return
	}
	events := w.plan.NodeEvents()
	if len(events) == 0 {
		return
	}
	w.wg.Add(1)
	go w.run(events, h)
}

// run fires the sorted node events in order on one goroutine. A Stop between
// events abandons the rest of the schedule.
func (w *WallClock) run(events []ioa.NodeFaultEvent, h NodeHooks) {
	defer w.wg.Done()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for _, ev := range events {
		timer.Reset(time.Until(w.StepTime(ev.Step)))
		select {
		case <-w.done:
			return
		case <-timer.C:
		}
		if ev.Recover {
			w.recoveries.Add(1)
			if h.Recover != nil {
				h.Recover(ev.Node)
			}
		} else {
			w.crashes.Add(1)
			if h.Crash != nil {
				h.Crash(ev.Node)
			}
		}
	}
}

// Stop abandons any unfired events and joins the event goroutine. In-flight
// hooks complete before Stop returns.
func (w *WallClock) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.done) })
	w.wg.Wait()
}

// Step maps the current wall-clock time to the plan's step clock.
func (w *WallClock) Step() int {
	if w == nil {
		return 0
	}
	return int(time.Since(w.epoch) / w.stepDur)
}

// StepTime maps a plan step to its wall-clock instant.
func (w *WallClock) StepTime(step int) time.Time {
	return w.epoch.Add(time.Duration(step) * w.stepDur)
}

// Hold reports whether the from->to link is inside an outage window right
// now and, if so, how long a frame must be parked until the window's next
// boundary — both as a wall-clock duration (never less than one step, so a
// re-dispatch always lands on the far side of the boundary it waited for)
// and as the step count the backend's delay accounting records. A second
// Hold at re-dispatch time catches abutting windows.
func (w *WallClock) Hold(from, to ioa.NodeID) (time.Duration, int) {
	if w == nil || w.plan == nil {
		return 0, 0
	}
	step := w.Step()
	if !w.plan.LinkBlocked(from, to, step) {
		return 0, 0
	}
	next := w.plan.NextLinkChange(from, to, step)
	if next <= step {
		next = step + 1 // defensive: Validate() guarantees End > step here
	}
	d := time.Until(w.StepTime(next))
	if d < w.stepDur {
		d = w.stepDur
	}
	return d, next - step
}

// Crashes and Recoveries report the node events fired so far.
func (w *WallClock) Crashes() int {
	if w == nil {
		return 0
	}
	return int(w.crashes.Load())
}

func (w *WallClock) Recoveries() int {
	if w == nil {
		return 0
	}
	return int(w.recoveries.Load())
}
