// Package register defines the shared types of a read/write register
// emulation: version tags, value helpers and bit-size accounting used by the
// storage-cost experiments.
package register

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ioa"
)

// Tag is a version identifier: a sequence number paired with the writer's id
// to break ties, ordered lexicographically. It is the (z, id) "tag" used by
// multi-writer algorithms such as ABD and CAS.
type Tag struct {
	Seq    int64
	Writer ioa.NodeID
}

// Less reports whether t orders strictly before u.
func (t Tag) Less(u Tag) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.Writer < u.Writer
}

// Equal reports whether the tags are identical.
func (t Tag) Equal(u Tag) bool { return t.Seq == u.Seq && t.Writer == u.Writer }

// IsZero reports whether t is the bottom tag (no write yet).
func (t Tag) IsZero() bool { return t.Seq == 0 && t.Writer == 0 }

// Next returns the tag a writer with the given id uses after observing t.
func (t Tag) Next(writer ioa.NodeID) Tag { return Tag{Seq: t.Seq + 1, Writer: writer} }

// Bits returns the metadata size of a tag for storage accounting: 64 bits of
// sequence number plus 32 bits of writer id.
func (t Tag) Bits() int { return 96 }

// String formats the tag.
func (t Tag) String() string { return fmt.Sprintf("(%d,w%d)", t.Seq, t.Writer) }

// MaxTag returns the larger of two tags.
func MaxTag(a, b Tag) Tag {
	if a.Less(b) {
		return b
	}
	return a
}

// ValueBits returns the size of a value in bits; this is the log2|V| of an
// experiment when values are drawn from all byte strings of a fixed length.
func ValueBits(v []byte) int { return 8 * len(v) }

// MakeValue returns a deterministic pseudo-random value of the given byte
// length, distinct for distinct seeds (the first 8 bytes encode the seed).
// Experiments use it to give every write a unique value, which the
// consistency checkers and the injectivity experiments rely on.
func MakeValue(size int, seed uint64) []byte {
	if size < 8 {
		size = 8
	}
	v := make([]byte, size)
	binary.BigEndian.PutUint64(v, seed)
	// Fill the remainder with a cheap xorshift stream so the value is not
	// trivially compressible.
	x := seed*2862933555777941757 + 3037000493
	for i := 8; i < size; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[i] = byte(x)
	}
	return v
}
