package register

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

func TestTagOrdering(t *testing.T) {
	tests := []struct {
		a, b Tag
		less bool
	}{
		{Tag{1, 1}, Tag{2, 1}, true},
		{Tag{2, 1}, Tag{1, 1}, false},
		{Tag{1, 1}, Tag{1, 2}, true}, // writer id breaks ties
		{Tag{1, 2}, Tag{1, 1}, false},
		{Tag{1, 1}, Tag{1, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.less {
			t.Errorf("%v < %v = %v, want %v", tt.a, tt.b, got, tt.less)
		}
	}
}

// TestTagTotalOrder property-checks trichotomy and transitivity.
func TestTagTotalOrder(t *testing.T) {
	prop := func(s1, s2, s3 int16, w1, w2, w3 uint8) bool {
		a := Tag{Seq: int64(s1), Writer: ioa.NodeID(w1)}
		b := Tag{Seq: int64(s2), Writer: ioa.NodeID(w2)}
		c := Tag{Seq: int64(s3), Writer: ioa.NodeID(w3)}
		// Trichotomy.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		if n != 1 {
			return false
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTagSortAgreesWithLess(t *testing.T) {
	tags := []Tag{{3, 1}, {1, 2}, {1, 1}, {2, 9}, {0, 0}}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Less(tags[j]) })
	for i := 1; i < len(tags); i++ {
		if tags[i].Less(tags[i-1]) {
			t.Fatalf("sort produced out-of-order tags: %v", tags)
		}
	}
	if !tags[0].IsZero() {
		t.Error("zero tag should sort first")
	}
}

func TestTagNextAndMax(t *testing.T) {
	tg := Tag{Seq: 4, Writer: 7}
	next := tg.Next(9)
	if next.Seq != 5 || next.Writer != 9 {
		t.Errorf("Next = %v", next)
	}
	if !tg.Less(next) {
		t.Error("Next must be strictly larger")
	}
	if got := MaxTag(tg, next); !got.Equal(next) {
		t.Errorf("MaxTag = %v", got)
	}
	if got := MaxTag(next, tg); !got.Equal(next) {
		t.Errorf("MaxTag symmetric = %v", got)
	}
}

func TestTagBitsAndString(t *testing.T) {
	if (Tag{}).Bits() != 96 {
		t.Error("tag accounting changed; update bound slack in tests")
	}
	if s := (Tag{Seq: 2, Writer: 101}).String(); s != "(2,w101)" {
		t.Errorf("String = %q", s)
	}
}

func TestMakeValueUniqueAndDeterministic(t *testing.T) {
	seen := make(map[string]bool)
	for seed := uint64(1); seed <= 200; seed++ {
		v := MakeValue(32, seed)
		if len(v) != 32 {
			t.Fatalf("len = %d", len(v))
		}
		if seen[string(v)] {
			t.Fatalf("duplicate value at seed %d", seed)
		}
		seen[string(v)] = true
		if !bytes.Equal(v, MakeValue(32, seed)) {
			t.Fatal("MakeValue not deterministic")
		}
	}
	// Tiny sizes are bumped to hold the uniqueness header.
	if got := len(MakeValue(2, 1)); got != 8 {
		t.Errorf("minimum size = %d, want 8", got)
	}
}

func TestValueBits(t *testing.T) {
	if ValueBits(nil) != 0 {
		t.Error("nil value has 0 bits")
	}
	if ValueBits(make([]byte, 16)) != 128 {
		t.Error("16 bytes = 128 bits")
	}
}
