package store

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/netrun"
	"repro/internal/workload"
)

// Backend is the execution substrate a shard runs on. The node automata are
// identical either way — DeployAlgorithm builds the same cluster — and each
// backend drives them through the same workload.Spec, returning the shared
// result shape whose history feeds the same consistency checkers.
//
// A backend offers two execution paths:
//
//   - RunShard drives a whole seeded workload to completion — the batch
//     path every experiment uses; and
//   - OpenShard keeps the shard's deployment running and returns a
//     ShardSession whose RunOp executes individual client operations
//     interactively — the path session.Store routes Put/Get through.
//
// The two implementations differ in their guarantees (DESIGN.md section 8):
// the simulator is the determinism oracle (same seed, byte-identical
// fingerprints at any worker count), while the live runtime runs every node
// on its own goroutine and measures real concurrency — its histories differ
// run to run, and only the safety verdicts are comparable.
type Backend interface {
	// Name returns the backend's selector string.
	Name() string
	// RunShard executes one shard's workload on the cluster.
	RunShard(cl *cluster.Cluster, spec workload.Spec, opts ShardOptions) (*workload.Result, error)
	// OpenShard prepares the cluster for interactive operations and returns
	// the session that executes them.
	OpenShard(cl *cluster.Cluster, opts ShardOptions) (ShardSession, error)
}

// ShardOptions carries the per-shard tuning a backend may need: the fault
// plan, the simulator's per-operation step budget, and the live runtime's
// configuration. Zero values select the defaults.
type ShardOptions struct {
	// Plan is the shard's fault plan (nil = fault-free). RunShard callers
	// install the plan on the spec instead; OpenShard reads it from here.
	Plan *faults.Plan
	// StepBudget bounds the deliveries a single interactive operation may
	// consume on the simulator (0 = workload.DefaultStepBudget). The live
	// and net runtimes bound operations by wall-clock timeout instead.
	StepBudget int
	// Live tunes the live runtime (step duration, op timeout, mailboxes).
	Live live.Config
	// Net tunes the net runtime (listen address, step duration, op timeout,
	// mailboxes, transport dial/queue bounds).
	Net netrun.Config
}

func (o ShardOptions) stepBudget() int {
	if o.StepBudget > 0 {
		return o.StepBudget
	}
	return workload.DefaultStepBudget
}

// ShardSession executes interactive operations against one shard's running
// deployment. Sessions are safe for concurrent use; the simulator serializes
// operations internally (one discrete schedule per shard), while the live
// backend runs operations at distinct clients genuinely in parallel.
type ShardSession interface {
	// RunOp executes one operation at the client to completion and returns
	// its output (the read value; nil for writes). On failure, pending
	// reports whether the operation was genuinely invoked and may still
	// take effect — such operations must stay pending in any checked
	// history. A pending==false error means the operation never started.
	RunOp(ctx context.Context, client ioa.NodeID, inv ioa.Invocation) (out []byte, pending bool, err error)
	// Storage snapshots the shard's per-server storage maxima so far.
	Storage() ioa.StorageReport
	// FaultStats snapshots the fault events applied so far.
	FaultStats() ioa.FaultStats
	// Close releases the shard's resources (live node goroutines).
	Close() error
}

// ErrStepBudget reports that an interactive simulator operation exhausted
// its delivery budget before completing. Callers can widen the budget with
// a larger ShardOptions.StepBudget (shmem.WithStepBudget).
var ErrStepBudget = errors.New("store: step budget exhausted before the operation completed")

// Backend selector names accepted by Options.Backend.
const (
	BackendSim  = "sim"
	BackendLive = "live"
	BackendNet  = "net"
)

// Backends lists the selectable backend names.
func Backends() []string { return []string{BackendSim, BackendLive, BackendNet} }

// ErrUnknownBackend reports a backend selector naming no registered backend.
// Every selection surface — BackendByName, Options.Backend validation,
// shmem.WithBackend, the CLI -backend flags — funnels through it, so callers
// branch with errors.Is(err, ErrUnknownBackend) instead of matching message
// text. The message always lists the valid names.
var ErrUnknownBackend = errors.New("unknown backend")

// BackendByName returns the named backend; "" selects the simulator. An
// unrecognized name wraps ErrUnknownBackend.
func BackendByName(name string) (Backend, error) {
	switch name {
	case "", BackendSim:
		return simBackend{}, nil
	case BackendLive:
		return liveBackend{}, nil
	case BackendNet:
		return netBackend{}, nil
	default:
		return nil, fmt.Errorf("store: %w %q (known: %s)", ErrUnknownBackend, name, strings.Join(Backends(), ", "))
	}
}

// simBackend runs shards on the deterministic ioa simulator.
type simBackend struct{}

func (simBackend) Name() string { return BackendSim }

func (simBackend) RunShard(cl *cluster.Cluster, spec workload.Spec, _ ShardOptions) (*workload.Result, error) {
	return workload.Run(cl, spec)
}

func (simBackend) OpenShard(cl *cluster.Cluster, opts ShardOptions) (ShardSession, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if opts.Plan != nil {
		if err := opts.Plan.Validate(); err != nil {
			return nil, err
		}
		cl.Sys.SetFaultPlan(opts.Plan)
	}
	return &simSession{cl: cl, budget: opts.stepBudget()}, nil
}

// simSession drives interactive operations on a shard's simulated system.
// One mutex serializes operations: the simulator is a single discrete
// schedule, so concurrency within a shard is meaningless there.
type simSession struct {
	mu     sync.Mutex
	cl     *cluster.Cluster
	budget int
}

// fairRunChunk bounds one FairRun slice of an interactive operation, so the
// session can observe context cancellation between slices without giving
// the scheduler a chance to starve anything (FairRun resumes exactly where
// it stopped).
const fairRunChunk = 1 << 16

func (s *simSession) RunOp(ctx context.Context, client ioa.NodeID, inv ioa.Invocation) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	id, err := s.cl.Sys.Invoke(client, inv)
	if err != nil {
		return nil, false, err
	}
	for left := s.budget; left > 0; {
		step := fairRunChunk
		if step > left {
			step = left
		}
		switch err := s.cl.Sys.FairRun(step, ioa.OpDone(id)); {
		case err == nil:
			op, err := s.cl.Sys.History().OpByID(id)
			if err != nil {
				return nil, true, err
			}
			return op.Output, false, nil
		case errors.Is(err, ioa.ErrStepLimit):
			left -= step
			if cerr := ctx.Err(); cerr != nil {
				return nil, true, fmt.Errorf("store: op %v at client %d abandoned: %w", inv.Kind, client, cerr)
			}
		case errors.Is(err, ioa.ErrQuiescent):
			return nil, true, fmt.Errorf("store: op %v at client %d cannot complete (system quiescent under faults): %w", inv.Kind, client, err)
		default:
			return nil, true, fmt.Errorf("store: op %v at client %d: %w", inv.Kind, client, err)
		}
	}
	return nil, true, fmt.Errorf("store: op %v at client %d: %w (budget %d deliveries)", inv.Kind, client, ErrStepBudget, s.budget)
}

func (s *simSession) Storage() ioa.StorageReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Sys.Storage()
}

func (s *simSession) FaultStats() ioa.FaultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cl.Sys.FaultStats()
}

func (s *simSession) Close() error { return nil }

// validateLiveWorkload eagerly rejects multi-key workloads the live backend
// cannot run, so the error surfaces from Options validation, not from inside
// a shard mid-run (matching the eager window validation in faults.Parse).
// Every fault scenario class runs on the live backend now; what remains
// rejected is the random crash budget (it draws crash points from the
// simulator's schedule) and malformed scenario strings.
func validateLiveWorkload(o Options) error {
	if o.Workload.Crashes != 0 {
		return fmt.Errorf("store: live backend: %w: the random crash budget draws crash points from the simulator's schedule; use a crash scenario instead (got Crashes=%d)",
			faults.ErrUnsupported, o.Workload.Crashes)
	}
	for i, spec := range o.Workload.Faults {
		sc, err := faults.Parse(spec)
		if err != nil {
			return fmt.Errorf("store: Faults[%d]: %w", i, err)
		}
		if sc == nil {
			continue
		}
		plan, err := sc.Build(o.Servers, o.F, 1)
		if err != nil {
			return fmt.Errorf("store: Faults[%d] %q: %w", i, spec, err)
		}
		if err := live.PlanSupported(plan); err != nil {
			return fmt.Errorf("store: Faults[%d] %q: %w", i, spec, err)
		}
	}
	return nil
}

// liveBackend runs shards on the live concurrent runtime.
type liveBackend struct{}

func (liveBackend) Name() string { return BackendLive }

func (liveBackend) RunShard(cl *cluster.Cluster, spec workload.Spec, opts ShardOptions) (*workload.Result, error) {
	res, err := live.RunConfig(cl, spec, opts.Live)
	if err != nil {
		return nil, err
	}
	return res.AsWorkload(), nil
}

func (liveBackend) OpenShard(cl *cluster.Cluster, opts ShardOptions) (ShardSession, error) {
	in, err := live.OpenInteractive(cl, opts.Plan, opts.Live)
	if err != nil {
		return nil, err
	}
	return &liveSession{cl: cl, in: in}, nil
}

// liveSession adapts live.Interactive to the ShardSession surface.
type liveSession struct {
	cl *cluster.Cluster
	in *live.Interactive
}

func (s *liveSession) RunOp(ctx context.Context, client ioa.NodeID, inv ioa.Invocation) ([]byte, bool, error) {
	return s.in.Invoke(ctx, client, inv)
}

func (s *liveSession) Storage() ioa.StorageReport { return s.in.Storage(s.cl) }
func (s *liveSession) FaultStats() ioa.FaultStats { return s.in.FaultStats() }
func (s *liveSession) Close() error               { return s.in.Close() }

// validateNetWorkload eagerly rejects multi-key workloads the net backend
// cannot run. Every fault scenario class runs on the net backend now; what
// remains rejected is the random crash budget (it draws crash points from
// the simulator's schedule) and malformed scenario strings.
func validateNetWorkload(o Options) error {
	if o.Workload.Crashes != 0 {
		return fmt.Errorf("store: net backend: %w: the random crash budget draws crash points from the simulator's schedule; use a crash scenario instead (got Crashes=%d)",
			faults.ErrUnsupported, o.Workload.Crashes)
	}
	for i, spec := range o.Workload.Faults {
		sc, err := faults.Parse(spec)
		if err != nil {
			return fmt.Errorf("store: Faults[%d]: %w", i, err)
		}
		if sc == nil {
			continue
		}
		plan, err := sc.Build(o.Servers, o.F, 1)
		if err != nil {
			return fmt.Errorf("store: Faults[%d] %q: %w", i, spec, err)
		}
		if err := netrun.PlanSupported(plan); err != nil {
			return fmt.Errorf("store: Faults[%d] %q: %w", i, spec, err)
		}
	}
	return nil
}

// netBackend runs shards over real TCP sockets: every node automaton owns a
// loopback endpoint, messages cross the wire codec, and fault rules apply at
// socket-write time.
type netBackend struct{}

func (netBackend) Name() string { return BackendNet }

func (netBackend) RunShard(cl *cluster.Cluster, spec workload.Spec, opts ShardOptions) (*workload.Result, error) {
	return netrun.RunConfig(cl, spec, opts.Net)
}

func (netBackend) OpenShard(cl *cluster.Cluster, opts ShardOptions) (ShardSession, error) {
	in, err := netrun.OpenInteractive(cl, opts.Plan, opts.Net)
	if err != nil {
		return nil, err
	}
	return &netSession{cl: cl, in: in}, nil
}

// netSession adapts netrun.Interactive to the ShardSession surface.
type netSession struct {
	cl *cluster.Cluster
	in *netrun.Interactive
}

func (s *netSession) RunOp(ctx context.Context, client ioa.NodeID, inv ioa.Invocation) ([]byte, bool, error) {
	return s.in.Invoke(ctx, client, inv)
}

func (s *netSession) Storage() ioa.StorageReport { return s.in.Storage(s.cl) }
func (s *netSession) FaultStats() ioa.FaultStats { return s.in.FaultStats() }
func (s *netSession) Close() error               { return s.in.Close() }
