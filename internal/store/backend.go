package store

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/workload"
)

// Backend is the execution substrate a shard runs on. The node automata are
// identical either way — DeployAlgorithm builds the same cluster — and each
// backend drives them through the same workload.Spec, returning the shared
// result shape whose history feeds the same consistency checkers.
//
// The two implementations differ in their guarantees (DESIGN.md section 8):
// the simulator is the determinism oracle (same seed, byte-identical
// fingerprints at any worker count), while the live runtime runs every node
// on its own goroutine and measures real concurrency — its histories differ
// run to run, and only the safety verdicts are comparable.
type Backend interface {
	// Name returns the backend's selector string.
	Name() string
	// RunShard executes one shard's workload on the cluster.
	RunShard(cl *cluster.Cluster, spec workload.Spec) (*workload.Result, error)
}

// Backend selector names accepted by Options.Backend.
const (
	BackendSim  = "sim"
	BackendLive = "live"
)

// Backends lists the selectable backend names.
func Backends() []string { return []string{BackendSim, BackendLive} }

// BackendByName returns the named backend; "" selects the simulator.
func BackendByName(name string) (Backend, error) {
	switch name {
	case "", BackendSim:
		return simBackend{}, nil
	case BackendLive:
		return liveBackend{}, nil
	default:
		return nil, fmt.Errorf("store: unknown backend %q (known: %v)", name, Backends())
	}
}

// simBackend runs shards on the deterministic ioa simulator.
type simBackend struct{}

func (simBackend) Name() string { return BackendSim }

func (simBackend) RunShard(cl *cluster.Cluster, spec workload.Spec) (*workload.Result, error) {
	return workload.Run(cl, spec)
}

// validateLiveWorkload eagerly rejects multi-key workloads the live backend
// cannot run — a random crash budget or step-indexed fault scenarios — so
// the error surfaces from Options validation, not from inside a shard
// mid-run (matching the eager window validation in faults.Parse).
func validateLiveWorkload(o Options) error {
	if o.Workload.Crashes != 0 {
		return fmt.Errorf("store: live backend: the random crash budget is simulator-only (got Crashes=%d)", o.Workload.Crashes)
	}
	for i, spec := range o.Workload.Faults {
		sc, err := faults.Parse(spec)
		if err != nil {
			return fmt.Errorf("store: Faults[%d]: %w", i, err)
		}
		if sc == nil {
			continue
		}
		plan, err := sc.Build(o.Servers, o.F, 1)
		if err != nil {
			return fmt.Errorf("store: Faults[%d] %q: %w", i, spec, err)
		}
		if err := live.PlanSupported(plan); err != nil {
			return fmt.Errorf("store: Faults[%d] %q: %w", i, spec, err)
		}
	}
	return nil
}

// liveBackend runs shards on the live concurrent runtime with its default
// configuration.
type liveBackend struct{}

func (liveBackend) Name() string { return BackendLive }

func (liveBackend) RunShard(cl *cluster.Cluster, spec workload.Spec) (*workload.Result, error) {
	res, err := live.Run(cl, spec)
	if err != nil {
		return nil, err
	}
	return res.AsWorkload(), nil
}
