// Package store maps a multi-key keyspace onto many independent register
// deployments — one cluster.Cluster per shard, each running its own
// ioa.System — and drives them in parallel through a partitioned
// workload.MultiSpec while aggregating per-shard storage reports, histories
// and consistency verdicts into one store-level result whose normalized
// total storage is directly comparable to the paper's Figure 1 bounds.
package store

import (
	"fmt"

	"repro/internal/abd"
	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/coded"
)

// Algorithm names accepted by DeployAlgorithm and Options.Algorithms.
const (
	AlgABD              = "abd"
	AlgABDMW            = "abd-mwmr"
	AlgCAS              = "cas"
	AlgCASGC            = "casgc"
	AlgTwoVersion       = "twoversion"
	AlgTwoVersionGossip = "twoversion-gossip"
	AlgSolo             = "solo"
)

// Algorithms lists every deployable algorithm name.
func Algorithms() []string {
	return []string{AlgABD, AlgABDMW, AlgCAS, AlgCASGC, AlgTwoVersion, AlgTwoVersionGossip, AlgSolo}
}

// DeployAlgorithm builds a fresh cluster for the named algorithm with n
// servers tolerating f crashes, sized for a target write concurrency nu,
// and returns it with the consistency condition the algorithm guarantees
// ("atomic" or "regular"). The multi-writer algorithms get max(nu, 1)
// writer clients and two readers; the SWSR registers (twoversion,
// twoversion-gossip, solo) get one writer and one reader.
func DeployAlgorithm(alg string, n, f, nu int) (*cluster.Cluster, string, error) {
	writers := nu
	if writers < 1 {
		writers = 1
	}
	switch alg {
	case AlgABD, AlgTwoVersion, AlgTwoVersionGossip, AlgSolo:
		writers = 1
	}
	readers := 2
	switch alg {
	case AlgTwoVersion, AlgTwoVersionGossip, AlgSolo:
		readers = 1
	}
	return DeployAlgorithmSized(alg, n, f, writers, readers)
}

// DeployAlgorithmSized builds a cluster for the named algorithm with
// explicit writer and reader client counts — the live runtime's load
// generator scales clients this way, where DeployAlgorithm's fixed shapes
// would cap concurrency. Single-writer algorithms (abd, twoversion,
// twoversion-gossip, solo) reject writers != 1.
func DeployAlgorithmSized(alg string, n, f, writers, readers int) (*cluster.Cluster, string, error) {
	switch alg {
	case AlgABD, AlgTwoVersion, AlgTwoVersionGossip, AlgSolo:
		if writers != 1 {
			return nil, "", fmt.Errorf("store: %s is single-writer; got writers=%d", alg, writers)
		}
	}
	switch alg {
	case AlgABD:
		cl, err := abd.Deploy(abd.Options{Servers: n, F: f, Writers: 1, Readers: readers, MultiWriter: false})
		return cl, "atomic", err
	case AlgABDMW:
		cl, err := abd.Deploy(abd.Options{Servers: n, F: f, Writers: writers, Readers: readers, MultiWriter: true})
		return cl, "atomic", err
	case AlgCAS:
		cl, err := cas.Deploy(cas.Options{Servers: n, F: f, GCDepth: -1, Writers: writers, Readers: readers})
		return cl, "atomic", err
	case AlgCASGC:
		cl, err := cas.Deploy(cas.Options{Servers: n, F: f, GCDepth: 0, Writers: writers, Readers: readers})
		return cl, "atomic", err
	case AlgTwoVersion:
		cl, err := coded.Deploy(coded.Options{Servers: n, F: f, Readers: readers})
		return cl, "regular", err
	case AlgTwoVersionGossip:
		cl, err := coded.DeployGossip(coded.Options{Servers: n, F: f, Readers: readers})
		return cl, "regular", err
	case AlgSolo:
		cl, err := coded.DeploySolo(coded.SoloOptions{Servers: n, F: f, Readers: readers})
		return cl, "regular", err
	default:
		return nil, "", fmt.Errorf("store: unknown algorithm %q (known: %v)", alg, Algorithms())
	}
}
