package store

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// acceptanceOptions is the ISSUE's acceptance scenario — 8 CAS shards, a
// 64-key Zipf keyspace — with a worker-count knob.
func acceptanceOptions(workers int) Options {
	return Options{
		Shards:     8,
		Algorithms: []string{AlgCAS},
		Servers:    5,
		F:          1,
		Workers:    workers,
		Workload: workload.MultiSpec{
			Seed:         1,
			Keys:         64,
			Ops:          128,
			ReadFraction: 0.25,
			Skew:         workload.SkewZipf,
			TargetNu:     2,
			ValueBytes:   64,
		},
	}
}

// TestDeterministicAcrossWorkerCounts verifies the acceptance criterion:
// the same seed reproduces byte-identical aggregate results across runs
// despite parallel shard execution.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(acceptanceOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel1, err := Run(acceptanceOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	parallel2, err := Run(acceptanceOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Fingerprint(), parallel1.Fingerprint(); a != b {
		t.Errorf("fingerprint differs between 1 and 8 workers:\n%s\n%s", a, b)
	}
	if a, b := parallel1.Fingerprint(), parallel2.Fingerprint(); a != b {
		t.Errorf("fingerprint differs between identical parallel runs:\n%s\n%s", a, b)
	}
	if a, b := serial.Table(), parallel1.Table(); a != b {
		t.Errorf("table differs between 1 and 8 workers:\n%s\n%s", a, b)
	}
}

func TestAggregation(t *testing.T) {
	res, err := Run(acceptanceOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerShard) != 8 {
		t.Fatalf("got %d shard results, want 8", len(res.PerShard))
	}
	var writes, reads, bits, peak int
	for i, s := range res.PerShard {
		if s.Shard != i {
			t.Errorf("shard result %d has index %d", i, s.Shard)
		}
		if s.Algorithm != AlgCAS || s.Condition != "atomic" {
			t.Errorf("shard %d: algorithm %q condition %q", i, s.Algorithm, s.Condition)
		}
		writes += s.Writes
		reads += s.Reads
		bits += s.Storage.MaxTotalBits
		peak += s.PeakActiveWrites
	}
	if writes+reads != 128 {
		t.Errorf("ops conserved: %d writes + %d reads != 128", writes, reads)
	}
	if res.TotalWrites != writes || res.TotalReads != reads || res.TotalOps != 128 {
		t.Errorf("aggregate op counts %d/%d/%d disagree with shards %d/%d",
			res.TotalWrites, res.TotalReads, res.TotalOps, writes, reads)
	}
	if res.AggregateMaxTotalBits != bits {
		t.Errorf("aggregate bits %d != sum of shards %d", res.AggregateMaxTotalBits, bits)
	}
	if res.PeakActiveWrites != peak {
		t.Errorf("aggregate peak %d != sum of shard peaks %d", res.PeakActiveWrites, peak)
	}
	if res.Log2V != 8*64 {
		t.Errorf("Log2V = %v, want 512", res.Log2V)
	}
	want := float64(bits) / res.Log2V
	if res.NormalizedTotal != want {
		t.Errorf("normalized total %v, want %v", res.NormalizedTotal, want)
	}
}

// TestSingleShardMatchesDirectWorkload pins the store to the existing
// single-register driver: a one-shard store must meter exactly what a
// direct workload.Run of the derived spec meters.
func TestSingleShardMatchesDirectWorkload(t *testing.T) {
	opts := acceptanceOptions(1)
	opts.Shards = 1
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := opts.Workload.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	cl, _, err := DeployAlgorithm(AlgCAS, opts.Servers, opts.F, opts.Workload.TargetNu)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := workload.Run(cl, loads[0].Spec(opts.Workload))
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerShard[0]
	if s.Storage.MaxTotalBits != direct.Storage.MaxTotalBits {
		t.Errorf("store metered %d bits, direct run %d", s.Storage.MaxTotalBits, direct.Storage.MaxTotalBits)
	}
	if s.PeakActiveWrites != direct.PeakActiveWrites {
		t.Errorf("store peak %d, direct %d", s.PeakActiveWrites, direct.PeakActiveWrites)
	}
}

// TestMixedAlgorithms runs a replication shard next to erasure-coded
// shards and checks each is verified against its own condition.
func TestMixedAlgorithms(t *testing.T) {
	opts := Options{
		Shards:     4,
		Algorithms: []string{AlgABDMW, AlgCASGC},
		Servers:    5,
		F:          1,
		Workload: workload.MultiSpec{
			Seed:         7,
			Keys:         16,
			Ops:          48,
			ReadFraction: 0.3,
			TargetNu:     2,
			ValueBytes:   32,
		},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.PerShard {
		wantAlg := []string{AlgABDMW, AlgCASGC}[i%2]
		if s.Algorithm != wantAlg {
			t.Errorf("shard %d runs %q, want %q", i, s.Algorithm, wantAlg)
		}
		if s.Condition != "atomic" {
			t.Errorf("shard %d condition %q", i, s.Condition)
		}
	}
	// Every shard that wrote must meter storage at or above the Theorem
	// B.1 (Singleton) bound N/(N-f) = 5/4 for its configuration.
	for _, s := range res.PerShard {
		if s.Writes == 0 {
			continue
		}
		if s.NormalizedTotal < 1.25 {
			t.Errorf("shard %d (%s) normalized storage %.4f below the Singleton bound 1.25",
				s.Shard, s.Algorithm, s.NormalizedTotal)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	good := acceptanceOptions(1)
	bad := []func(*Options){
		func(o *Options) { o.Shards = 0 },
		func(o *Options) { o.Workers = -1 },
		func(o *Options) { o.Algorithms = []string{"paxos"} },
		func(o *Options) { o.Workload.Crashes = o.F + 1 },
		func(o *Options) { o.Workload.Keys = 0 },
		func(o *Options) { o.Workload.TargetNu = 0 },
	}
	for i, mutate := range bad {
		o := good
		mutate(&o)
		if _, err := Run(o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestUnknownAlgorithmError(t *testing.T) {
	if _, _, err := DeployAlgorithm("raft", 5, 1, 1); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("got %v, want unknown-algorithm error", err)
	}
	for _, alg := range Algorithms() {
		cl, cond, err := DeployAlgorithm(alg, 5, 1, 2)
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		if cond != "atomic" && cond != "regular" {
			t.Errorf("%s: condition %q", alg, cond)
		}
		if err := cl.Validate(); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestCrashesWithinBudget(t *testing.T) {
	opts := acceptanceOptions(0)
	opts.Workload.Crashes = 1 // equals f, allowed per shard
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 128 {
		t.Errorf("ops = %d, want 128", res.TotalOps)
	}
}
