package store

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/workload"
)

// acceptanceOptions is the ISSUE's acceptance scenario — 8 CAS shards, a
// 64-key Zipf keyspace — with a worker-count knob.
func acceptanceOptions(workers int) Options {
	return Options{
		Shards:     8,
		Algorithms: []string{AlgCAS},
		Servers:    5,
		F:          1,
		Workers:    workers,
		Workload: workload.MultiSpec{
			Seed:         1,
			Keys:         64,
			Ops:          128,
			ReadFraction: 0.25,
			Skew:         workload.SkewZipf,
			TargetNu:     2,
			ValueBytes:   64,
		},
	}
}

// TestDeterministicAcrossWorkerCounts verifies the acceptance criterion:
// the same seed reproduces byte-identical aggregate results across runs
// despite parallel shard execution.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(acceptanceOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel1, err := Run(acceptanceOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	parallel2, err := Run(acceptanceOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Fingerprint(), parallel1.Fingerprint(); a != b {
		t.Errorf("fingerprint differs between 1 and 8 workers:\n%s\n%s", a, b)
	}
	if a, b := parallel1.Fingerprint(), parallel2.Fingerprint(); a != b {
		t.Errorf("fingerprint differs between identical parallel runs:\n%s\n%s", a, b)
	}
	if a, b := serial.Table(), parallel1.Table(); a != b {
		t.Errorf("table differs between 1 and 8 workers:\n%s\n%s", a, b)
	}
}

func TestAggregation(t *testing.T) {
	res, err := Run(acceptanceOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerShard) != 8 {
		t.Fatalf("got %d shard results, want 8", len(res.PerShard))
	}
	var writes, reads, bits, peak int
	for i, s := range res.PerShard {
		if s.Shard != i {
			t.Errorf("shard result %d has index %d", i, s.Shard)
		}
		if s.Algorithm != AlgCAS || s.Condition != "atomic" {
			t.Errorf("shard %d: algorithm %q condition %q", i, s.Algorithm, s.Condition)
		}
		writes += s.Writes
		reads += s.Reads
		bits += s.Storage.MaxTotalBits
		peak += s.PeakActiveWrites
	}
	if writes+reads != 128 {
		t.Errorf("ops conserved: %d writes + %d reads != 128", writes, reads)
	}
	if res.TotalWrites != writes || res.TotalReads != reads || res.TotalOps != 128 {
		t.Errorf("aggregate op counts %d/%d/%d disagree with shards %d/%d",
			res.TotalWrites, res.TotalReads, res.TotalOps, writes, reads)
	}
	if res.AggregateMaxTotalBits != bits {
		t.Errorf("aggregate bits %d != sum of shards %d", res.AggregateMaxTotalBits, bits)
	}
	if res.PeakActiveWrites != peak {
		t.Errorf("aggregate peak %d != sum of shard peaks %d", res.PeakActiveWrites, peak)
	}
	if res.Log2V != 8*64 {
		t.Errorf("Log2V = %v, want 512", res.Log2V)
	}
	want := float64(bits) / res.Log2V
	if res.NormalizedTotal != want {
		t.Errorf("normalized total %v, want %v", res.NormalizedTotal, want)
	}
}

// TestSingleShardMatchesDirectWorkload pins the store to the existing
// single-register driver: a one-shard store must meter exactly what a
// direct workload.Run of the derived spec meters.
func TestSingleShardMatchesDirectWorkload(t *testing.T) {
	opts := acceptanceOptions(1)
	opts.Shards = 1
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := opts.Workload.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	cl, _, err := DeployAlgorithm(AlgCAS, opts.Servers, opts.F, opts.Workload.TargetNu)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := workload.Run(cl, loads[0].Spec(opts.Workload))
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerShard[0]
	if s.Storage.MaxTotalBits != direct.Storage.MaxTotalBits {
		t.Errorf("store metered %d bits, direct run %d", s.Storage.MaxTotalBits, direct.Storage.MaxTotalBits)
	}
	if s.PeakActiveWrites != direct.PeakActiveWrites {
		t.Errorf("store peak %d, direct %d", s.PeakActiveWrites, direct.PeakActiveWrites)
	}
}

// TestMixedAlgorithms runs a replication shard next to erasure-coded
// shards and checks each is verified against its own condition.
func TestMixedAlgorithms(t *testing.T) {
	opts := Options{
		Shards:     4,
		Algorithms: []string{AlgABDMW, AlgCASGC},
		Servers:    5,
		F:          1,
		Workload: workload.MultiSpec{
			Seed:         7,
			Keys:         16,
			Ops:          48,
			ReadFraction: 0.3,
			TargetNu:     2,
			ValueBytes:   32,
		},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.PerShard {
		wantAlg := []string{AlgABDMW, AlgCASGC}[i%2]
		if s.Algorithm != wantAlg {
			t.Errorf("shard %d runs %q, want %q", i, s.Algorithm, wantAlg)
		}
		if s.Condition != "atomic" {
			t.Errorf("shard %d condition %q", i, s.Condition)
		}
	}
	// Every shard that wrote must meter storage at or above the Theorem
	// B.1 (Singleton) bound N/(N-f) = 5/4 for its configuration.
	for _, s := range res.PerShard {
		if s.Writes == 0 {
			continue
		}
		if s.NormalizedTotal < 1.25 {
			t.Errorf("shard %d (%s) normalized storage %.4f below the Singleton bound 1.25",
				s.Shard, s.Algorithm, s.NormalizedTotal)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	good := acceptanceOptions(1)
	bad := []func(*Options){
		func(o *Options) { o.Shards = 0 },
		func(o *Options) { o.Workers = -1 },
		func(o *Options) { o.Algorithms = []string{"paxos"} },
		func(o *Options) { o.Workload.Crashes = o.F + 1 },
		func(o *Options) { o.Workload.Keys = 0 },
		func(o *Options) { o.Workload.TargetNu = 0 },
	}
	for i, mutate := range bad {
		o := good
		mutate(&o)
		if _, err := Run(o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestUnknownAlgorithmError(t *testing.T) {
	if _, _, err := DeployAlgorithm("raft", 5, 1, 1); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("got %v, want unknown-algorithm error", err)
	}
	for _, alg := range Algorithms() {
		cl, cond, err := DeployAlgorithm(alg, 5, 1, 2)
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		if cond != "atomic" && cond != "regular" {
			t.Errorf("%s: condition %q", alg, cond)
		}
		if err := cl.Validate(); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestCrashesWithinBudget(t *testing.T) {
	opts := acceptanceOptions(0)
	opts.Workload.Crashes = 1 // equals f, allowed per shard
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 128 {
		t.Errorf("ops = %d, want 128", res.TotalOps)
	}
}

// faultedOptions is the fault acceptance scenario: six shards cycling over a
// quorum-preserving crash, a lossy network, a healing partition and a
// fault-free control, with a worker-count knob.
func faultedOptions(workers int) Options {
	return Options{
		Shards:     6,
		Algorithms: []string{AlgCAS, AlgABDMW},
		Servers:    5,
		F:          1,
		Workers:    workers,
		Workload: workload.MultiSpec{
			Seed:         3,
			Keys:         24,
			Ops:          60,
			ReadFraction: 0.3,
			TargetNu:     2,
			ValueBytes:   64,
			Faults:       []string{"crash-f@10", "lossy=0.05", "partition@40:2500", ""},
		},
	}
}

// TestFaultedDeterministicAcrossWorkerCounts verifies the ISSUE's last
// acceptance criterion: the same seed plus the same per-shard fault plans
// produce an identical fingerprint at 1, 4 and 16 workers.
func TestFaultedDeterministicAcrossWorkerCounts(t *testing.T) {
	var prints []string
	var tables []string
	for _, workers := range []int{1, 4, 16} {
		res, err := Run(faultedOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		prints = append(prints, res.Fingerprint())
		tables = append(tables, res.Table())
	}
	if prints[0] != prints[1] || prints[1] != prints[2] {
		t.Errorf("fingerprints differ across 1/4/16 workers under faults:\n%s\n%s\n%s",
			prints[0], prints[1], prints[2])
	}
	if tables[0] != tables[1] || tables[1] != tables[2] {
		t.Errorf("tables differ across worker counts:\n%s\n%s", tables[0], tables[2])
	}
}

// TestMixedFaultScenarios checks the per-shard fault plumbing: scenario
// specs cycle across shards, fault stats land on the right shards, and the
// fault-free control shards record no events.
func TestMixedFaultScenarios(t *testing.T) {
	res, err := Run(faultedOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{"crash-f@10", "lossy=0.05", "partition@40:2500", ""}
	sawCrash, sawDrop := false, false
	for i, s := range res.PerShard {
		want := specs[i%len(specs)]
		if s.FaultSpec != want {
			t.Errorf("shard %d fault spec %q, want %q", i, s.FaultSpec, want)
		}
		zero := ioa.FaultStats{}
		switch want {
		case "crash-f@10":
			if s.Writes+s.Reads > 0 && s.Faults.Crashes != 1 {
				t.Errorf("shard %d: crashes = %d, want 1", i, s.Faults.Crashes)
			}
			sawCrash = sawCrash || s.Faults.Crashes > 0
		case "":
			if s.Faults != zero {
				t.Errorf("fault-free shard %d has fault stats %+v", i, s.Faults)
			}
			if s.Quiescent {
				t.Errorf("fault-free shard %d reported quiescent", i)
			}
		}
		sawDrop = sawDrop || s.Faults.Drops > 0
	}
	if !sawCrash {
		t.Error("no shard recorded a scheduled crash")
	}
	if !sawDrop {
		t.Error("no shard recorded a dropped message")
	}
	if got := res.Faults.Crashes; got < 2 {
		t.Errorf("aggregate crashes = %d, want >= 2 (two crash-f shards)", got)
	}
}

// TestFingerprintSeesFaults checks that the fingerprint distinguishes a
// faulted run from a fault-free run of the same workload.
func TestFingerprintSeesFaults(t *testing.T) {
	faulted, err := Run(faultedOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	clean := faultedOptions(1)
	clean.Workload.Faults = nil
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Fingerprint() == cleanRes.Fingerprint() {
		t.Error("fingerprint identical with and without fault plans")
	}
}

// failingOptions builds a 16-shard run where shards 5 and 11 deterministically
// fail inside runShard: their fault spec parses (the grammar and windows are
// valid) but cannot build for a 5-server deployment (isolate 99 > n), forcing
// a mid-run shard failure while every other shard keeps working.
func failingOptions(workers int) Options {
	faults := make([]string, 16)
	for i := range faults {
		faults[i] = "none"
	}
	faults[5] = "partition@1:2:99"
	faults[11] = "partition@1:2:99"
	return Options{
		Shards:     16,
		Algorithms: []string{AlgCAS},
		Servers:    5,
		F:          1,
		Workers:    workers,
		Workload: workload.MultiSpec{
			Seed:       1,
			Keys:       64,
			Ops:        96,
			TargetNu:   2,
			ValueBytes: 64,
			Faults:     faults,
		},
	}
}

// TestDeterministicErrorAcrossWorkerCounts pins Run's error surfacing: with
// shards 5 and 11 failing, the reported error must be shard 5's,
// byte-identical at 1, 4 and 16 workers, and the partial result must mark
// skipped shards explicitly — never a shard below the failing index.
func TestDeterministicErrorAcrossWorkerCounts(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, 16} {
		res, err := Run(failingOptions(workers))
		if err == nil {
			t.Fatalf("workers=%d: Run succeeded, want failure", workers)
		}
		if !strings.Contains(err.Error(), "store: shard 5 (cas)") {
			t.Errorf("workers=%d: error %q does not report lowest failing shard 5", workers, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("workers=%d: error differs:\n%q\n%q", workers, err.Error(), want)
		}
		if res == nil {
			t.Fatalf("workers=%d: no partial result alongside the error", workers)
		}
		for _, s := range res.PerShard {
			if s.Skipped && s.Shard <= 5 {
				t.Errorf("workers=%d: shard %d below the failing index was skipped", workers, s.Shard)
			}
			switch {
			case s.Shard == 5 && !s.Failed:
				t.Errorf("workers=%d: failing shard 5 not marked Failed", workers)
			case s.Shard == 11 && !s.Failed && !s.Skipped:
				t.Errorf("workers=%d: shard 11 neither Failed nor Skipped", workers)
			case s.Shard != 5 && s.Shard != 11 && s.Failed:
				t.Errorf("workers=%d: healthy shard %d marked Failed", workers, s.Shard)
			case !s.Skipped && !s.Failed && s.Writes+s.Reads == 0 && s.Storage.MaxTotalBits == 0:
				t.Errorf("workers=%d: shard %d has a zero result but no Skipped/Failed mark", workers, s.Shard)
			}
		}
	}
}

// TestLiveBackendStoreRun runs the acceptance workload on the live backend:
// the same MultiSpec, the same per-shard consistency checks, real
// goroutine-per-node execution. Throughput fields must be populated;
// fingerprints are sim-only and not compared.
func TestLiveBackendStoreRun(t *testing.T) {
	o := acceptanceOptions(4)
	o.Backend = BackendLive
	o.Workload.Ops = 64
	res, err := Run(o)
	if err != nil {
		t.Fatalf("live backend run: %v", err)
	}
	if res.TotalOps != 64 {
		t.Errorf("TotalOps = %d, want 64", res.TotalOps)
	}
	if res.QuiescentShards != 0 {
		t.Errorf("fault-free live run reports %d quiescent shards", res.QuiescentShards)
	}
	if res.OpsPerSec <= 0 || res.AggregateMaxTotalBits <= 0 {
		t.Errorf("live aggregates not populated: ops/sec=%v bits=%d", res.OpsPerSec, res.AggregateMaxTotalBits)
	}
}

// TestBackendValidation pins the eager backend-name check.
func TestBackendValidation(t *testing.T) {
	o := acceptanceOptions(1)
	o.Backend = "quantum"
	if _, err := Run(o); err == nil || !strings.Contains(err.Error(), `unknown backend "quantum"`) {
		t.Errorf("unknown backend: err = %v", err)
	}
	for _, name := range append(Backends(), "") {
		if _, err := BackendByName(name); err != nil {
			t.Errorf("BackendByName(%q): %v", name, err)
		}
	}
	// The random crash budget must still fail eagerly on the live backend —
	// from Options validation, before any shard runs — with the typed error.
	crashes := acceptanceOptions(1)
	crashes.Backend = BackendLive
	crashes.Workload.Crashes = 1
	if _, err := Run(crashes); !errors.Is(err, faults.ErrUnsupported) {
		t.Errorf("live backend with crash budget: err = %v, want faults.ErrUnsupported", err)
	}
	// Step-indexed fault scenarios, by contrast, now pass validation: the
	// wall-clock scheduler runs them.
	stepFaults := acceptanceOptions(1)
	stepFaults.Backend = BackendLive
	stepFaults.Workload.Faults = []string{"crash-f@30"}
	if err := stepFaults.validate(); err != nil {
		t.Errorf("live backend with step-indexed faults: validate = %v, want acceptance", err)
	}
}
