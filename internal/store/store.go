package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/netrun"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Options configures a sharded store run.
type Options struct {
	// Shards is the number of independent register deployments.
	Shards int
	// Algorithms assigns an algorithm per shard, cycling when shorter than
	// Shards (shard i runs Algorithms[i mod len]). Empty defaults to CAS on
	// every shard. Mixing algorithms across shards is allowed — each shard
	// is checked against its own algorithm's consistency condition.
	Algorithms []string
	// Servers and F shape every shard's cluster (N servers, f tolerated
	// crashes).
	Servers int
	F       int
	// Workers bounds the goroutines running shards concurrently; 0 means
	// GOMAXPROCS. On the simulator backend, successful results are
	// independent of the worker count: every shard runs on its own
	// ioa.System with a seed derived from (Workload.Seed, shard index).
	// Failed runs abort early, but the reported error is still
	// deterministic — the lowest-indexed failing shard's — at any worker
	// count (see Run).
	Workers int
	// Backend selects the execution substrate for every shard: BackendSim
	// (default, the deterministic simulator), BackendLive (the concurrent
	// goroutine-per-node runtime) or BackendNet (the live runtime's real-
	// network sibling: one TCP socket per node). Fingerprints are only
	// meaningful on the simulator; live and net results vary run to run and
	// are checked for safety.
	Backend string
	// Writers and Readers override each shard's client counts. Zero keeps
	// DeployAlgorithm's per-algorithm shapes (the default); setting them is
	// how live client-count sweeps scale concurrency. Single-writer
	// algorithms reject Writers > 1.
	Writers int
	Readers int
	// Live tunes the live runtime when Backend is BackendLive (step
	// duration for fault delays, per-op timeout, mailbox capacity). The
	// zero value selects the defaults; ignored on the simulator.
	Live live.Config
	// Net tunes the net runtime when Backend is BackendNet (listen address,
	// step duration, per-op timeout, transport bounds). The zero value
	// selects the defaults; ignored elsewhere.
	Net netrun.Config
	// SkipCheck disables the per-shard consistency check. The checkers are
	// worst-case exponential in write concurrency ν, so high-concurrency
	// throughput sweeps (ν in the hundreds) cannot afford them; safety at
	// those scales is covered by checked runs at checkable concurrency.
	// History well-formedness (per-client interval ordering) is still
	// enforced — it is built into history construction on every backend.
	SkipCheck bool
	// OnlineCheck switches atomic-condition shards to the streaming checker.
	// On the live and net backends the runtime feeds every settled operation
	// into a consistency.OnlineChecker as it completes, so the verdict is
	// ready at shutdown and run memory stays bounded by the checker's window
	// instead of the full history. On the simulator (whose schedule is a
	// single discrete sequence with the complete history already in hand) it
	// selects the parallel windowed batch checker instead. Shards checked
	// under a regular condition keep the offline checker — the windowed
	// decomposition is proved for atomicity. Ignored when SkipCheck is set.
	OnlineCheck bool
	// OnlineWindow is the online checker's retirement window in operations
	// (0 = consistency.DefaultWindowOps).
	OnlineWindow int
	// Telemetry, when non-nil, receives live run metrics from every shard on
	// the concurrent backends: per-node storage gauges against the paper
	// bounds, op counters and latency histograms, transport counters, and
	// checker gauges, each labeled with its shard index. Ignored on the
	// simulator backend, whose runs have no wall-clock dynamics to sample.
	Telemetry *telemetry.Registry
	// Workload is the multi-key workload to partition across shards.
	Workload workload.MultiSpec
}

func (o Options) algorithms() []string {
	if len(o.Algorithms) == 0 {
		return []string{AlgCAS}
	}
	return o.Algorithms
}

func (o Options) validate() error {
	if o.Shards < 1 {
		return fmt.Errorf("store: Shards must be >= 1")
	}
	if o.Workers < 0 {
		return fmt.Errorf("store: negative worker count")
	}
	for _, a := range o.algorithms() {
		if !slices.Contains(Algorithms(), a) {
			return fmt.Errorf("store: unknown algorithm %q (known: %v)", a, Algorithms())
		}
	}
	if o.Writers < 0 || o.Readers < 0 {
		return fmt.Errorf("store: negative client counts (writers=%d readers=%d)", o.Writers, o.Readers)
	}
	if _, err := BackendByName(o.Backend); err != nil {
		return err
	}
	if o.Backend == BackendLive {
		if err := validateLiveWorkload(o); err != nil {
			return err
		}
	}
	if o.Backend == BackendNet {
		if err := validateNetWorkload(o); err != nil {
			return err
		}
	}
	if o.Workload.Crashes > o.F {
		return fmt.Errorf("store: per-shard crash budget %d exceeds f=%d", o.Workload.Crashes, o.F)
	}
	// The workload spec itself is validated by Partition.
	return nil
}

// ShardResult reports one shard's run.
type ShardResult struct {
	// Shard is the shard index.
	Shard int
	// Skipped marks a shard that never ran because an earlier failure
	// aborted the run; every other field is zero. Failed marks a shard
	// that ran and failed — the error Run reports is the lowest-indexed
	// such shard's. Both are only ever set on the partial result an
	// erroring Run returns, and which shards were skipped (always a
	// subset of those above the failing index) varies with scheduling.
	Skipped bool
	Failed  bool
	// Algorithm and Condition name what ran and what was verified.
	Algorithm string
	Condition string
	// FaultSpec is the fault scenario the shard ran under ("" = fault-free)
	// and Faults aggregates the fault events its kernel applied.
	FaultSpec string
	Faults    ioa.FaultStats
	// Quiescent reports that the shard lost liveness under its faults; its
	// completed operations still passed the consistency check.
	Quiescent bool
	// PendingOps counts operations that never completed (nonzero only for
	// quiescent shards).
	PendingOps int
	// Keys is the number of distinct keys that received operations.
	Keys int
	// Writes and Reads count the shard's operations.
	Writes int
	Reads  int
	// PeakActiveWrites is the shard's measured write concurrency ν.
	PeakActiveWrites int
	// Storage is the shard kernel's running-maximum storage report.
	Storage ioa.StorageReport
	// NormalizedTotal is the shard's MaxTotalBits / log2|V|.
	NormalizedTotal float64
	// Latencies holds the shard's per-operation wall-clock durations (live
	// backend only; empty on the simulator). Like Elapsed, they vary run to
	// run and are excluded from Fingerprint.
	Latencies []time.Duration
	// OpsVerified counts operations the online checker retired as provably
	// linearized (Options.OnlineCheck runs only; zero otherwise), and
	// WindowLag is the residual window still unretired at shutdown. Both
	// depend on real-time interleaving, so they are excluded from
	// Fingerprint.
	OpsVerified int64
	WindowLag   int
}

// Result aggregates a sharded store run.
type Result struct {
	// PerShard holds every shard's result, ascending by shard index.
	PerShard []ShardResult
	// TotalWrites, TotalReads and TotalOps sum the shard loads.
	TotalWrites int
	TotalReads  int
	TotalOps    int
	// AggregateMaxTotalBits sums the per-shard total-storage high-water
	// marks — the store's metered footprint.
	AggregateMaxTotalBits int
	// MaxShardTotalBits is the largest single-shard total.
	MaxShardTotalBits int
	// MaxServerBits is the largest single-server maximum across all shards.
	MaxServerBits int
	// PeakActiveWrites sums the per-shard peaks: an upper estimate of the
	// store-level concurrent write load.
	PeakActiveWrites int
	// QuiescentShards counts shards that lost liveness under their fault
	// scenarios, and Faults sums the per-shard fault event counts.
	QuiescentShards int
	Faults          ioa.FaultStats
	// Log2V is 8*ValueBytes.
	Log2V float64
	// NormalizedTotal is AggregateMaxTotalBits / Log2V — the store-level
	// analogue of the Figure 1 y-axis (per shard, compare each shard's
	// NormalizedTotal against the bounds directly).
	NormalizedTotal float64
	// Elapsed and OpsPerSec measure wall-clock performance of the parallel
	// engine, and Workers is the effective worker count that ran the
	// shards. All three vary with the host and the requested parallelism
	// and are excluded from Fingerprint.
	Elapsed   time.Duration
	OpsPerSec float64
	Workers   int
	// LatencyP50 and LatencyP99 are nearest-rank percentiles over every
	// shard's completed-operation latencies (live backend only; zero on the
	// simulator). Excluded from Fingerprint.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
	// OpsVerified sums the per-shard online-checker retirement counts and
	// MaxWindowLag is the largest residual window across shards (online
	// check runs only). Excluded from Fingerprint.
	OpsVerified  int64
	MaxWindowLag int
}

// Fingerprint returns a hex digest of every deterministic field — per-shard
// loads, storage reports (per-server, sorted) and aggregates. Two runs of
// the same Options must produce identical fingerprints regardless of worker
// count or scheduling, which is how the engine's reproducibility is tested.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "shard=%d alg=%s cond=%s keys=%d w=%d r=%d peak=%d total=%d maxsrv=%d norm=%.9f",
			s.Shard, s.Algorithm, s.Condition, s.Keys, s.Writes, s.Reads,
			s.PeakActiveWrites, s.Storage.MaxTotalBits, s.Storage.MaxServerBits, s.NormalizedTotal)
		fmt.Fprintf(&b, " faults=%q q=%t pending=%d drops=%d delayed=%d delaysteps=%d crashes=%d recoveries=%d servers=",
			s.FaultSpec, s.Quiescent, s.PendingOps, s.Faults.Drops, s.Faults.DelayedMessages,
			s.Faults.DelayStepsTotal, s.Faults.Crashes, s.Faults.Recoveries)
		ids := make([]int, 0, len(s.Storage.PerServerMaxBits))
		for id := range s.Storage.PerServerMaxBits {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "%d:%d,", id, s.Storage.PerServerMaxBits[ioa.NodeID(id)])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "agg w=%d r=%d ops=%d total=%d maxshard=%d maxsrv=%d peak=%d log2v=%.1f norm=%.9f quiescent=%d drops=%d\n",
		r.TotalWrites, r.TotalReads, r.TotalOps, r.AggregateMaxTotalBits,
		r.MaxShardTotalBits, r.MaxServerBits, r.PeakActiveWrites, r.Log2V, r.NormalizedTotal,
		r.QuiescentShards, r.Faults.Drops)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Table formats the per-shard results and the aggregate as a text table.
// The verdict column reads "ok" for a live shard and "quiescent" for one
// that lost liveness under its fault scenario.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-18s %-8s %5s %6s %6s %5s %12s %10s %-22s %-9s\n",
		"shard", "algorithm", "cond", "keys", "writes", "reads", "nu", "totalbits", "normcost", "faults", "verdict")
	for _, s := range r.PerShard {
		spec := s.FaultSpec
		if spec == "" {
			spec = "-"
		}
		verdict := "ok"
		if s.Quiescent {
			verdict = "quiescent"
		}
		fmt.Fprintf(&b, "%-6d %-18s %-8s %5d %6d %6d %5d %12d %10.4f %-22s %-9s\n",
			s.Shard, s.Algorithm, s.Condition, s.Keys, s.Writes, s.Reads,
			s.PeakActiveWrites, s.Storage.MaxTotalBits, s.NormalizedTotal, spec, verdict)
	}
	fmt.Fprintf(&b, "%-6s %-18s %-8s %5s %6d %6d %5d %12d %10.4f %-22s %d quiescent\n",
		"TOTAL", "-", "-", "-", r.TotalWrites, r.TotalReads,
		r.PeakActiveWrites, r.AggregateMaxTotalBits, r.NormalizedTotal, "-", r.QuiescentShards)
	return b.String()
}

// Run partitions the workload across the shards, executes every shard on
// the selected backend under a bounded worker pool, verifies each history
// against its algorithm's consistency condition, and aggregates the shard
// results.
//
// Error surfacing is deterministic: when shards fail, Run reports the
// lowest-indexed failing shard, byte-identically at any worker count. A
// worker skips a pending shard only when a lower-indexed shard has already
// failed, so every shard below the reported index provably ran (and
// succeeded) — the reported shard is the global minimum, not an accident of
// goroutine scheduling. On failure Run returns the partial result alongside
// the error, with never-run shards explicitly marked (ShardResult.Skipped)
// and no aggregates computed.
func Run(o Options) (*Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	loads, err := o.Workload.Partition(o.Shards)
	if err != nil {
		return nil, err
	}
	algs := o.algorithms()
	backend, err := BackendByName(o.Backend)
	if err != nil {
		return nil, err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.Shards {
		workers = o.Shards
	}

	shardResults := make([]ShardResult, o.Shards)
	shardErrs := make([]error, o.Shards)
	skipped := make([]bool, o.Shards)
	jobs := make(chan int)
	var wg sync.WaitGroup
	// minFailed tracks the lowest failing shard index so far (MaxInt64 =
	// none). Shards above it are skippable — the run's error is already
	// decided by a lower index — but shards below it must still run, since
	// any of them could fail and become the reported shard.
	var minFailed atomic.Int64
	minFailed.Store(math.MaxInt64)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if int64(i) > minFailed.Load() {
					skipped[i] = true
					continue
				}
				shardResults[i], shardErrs[i] = runShard(o, backend, algs[i%len(algs)], loads[i])
				if shardErrs[i] != nil {
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	for i := 0; i < o.Shards; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	if first := minFailed.Load(); first != math.MaxInt64 {
		i := int(first)
		partial := &Result{PerShard: shardResults, Workers: workers, Elapsed: elapsed}
		for j := range partial.PerShard {
			partial.PerShard[j].Shard = j
			partial.PerShard[j].Skipped = skipped[j]
			partial.PerShard[j].Failed = shardErrs[j] != nil
		}
		return partial, fmt.Errorf("store: shard %d (%s): %w", i, algs[i%len(algs)], shardErrs[i])
	}

	res := &Result{
		PerShard: shardResults,
		Log2V:    float64(8 * o.Workload.ValueBytes),
		Elapsed:  elapsed,
		Workers:  workers,
	}
	for _, s := range shardResults {
		res.TotalWrites += s.Writes
		res.TotalReads += s.Reads
		res.AggregateMaxTotalBits += s.Storage.MaxTotalBits
		res.PeakActiveWrites += s.PeakActiveWrites
		if s.Quiescent {
			res.QuiescentShards++
		}
		res.Faults.Add(s.Faults)
		if s.Storage.MaxTotalBits > res.MaxShardTotalBits {
			res.MaxShardTotalBits = s.Storage.MaxTotalBits
		}
		if s.Storage.MaxServerBits > res.MaxServerBits {
			res.MaxServerBits = s.Storage.MaxServerBits
		}
		res.OpsVerified += s.OpsVerified
		if s.WindowLag > res.MaxWindowLag {
			res.MaxWindowLag = s.WindowLag
		}
	}
	res.TotalOps = res.TotalWrites + res.TotalReads
	res.NormalizedTotal = float64(res.AggregateMaxTotalBits) / res.Log2V
	if secs := elapsed.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.TotalOps) / secs
	}
	var lats []time.Duration
	for _, s := range shardResults {
		lats = append(lats, s.Latencies...)
	}
	if len(lats) > 0 {
		res.LatencyP50 = live.Percentile(lats, 0.50)
		res.LatencyP99 = live.Percentile(lats, 0.99)
	}
	return res, nil
}

func runShard(o Options, backend Backend, alg string, load workload.ShardLoad) (ShardResult, error) {
	cl, cond, err := DeployShard(alg, o.Servers, o.F, o.Workload.TargetNu, o.Writers, o.Readers)
	if err != nil {
		return ShardResult{}, err
	}
	spec := load.Spec(o.Workload)
	plan, err := o.Workload.ShardFaultPlan(load.Shard, o.Servers, o.F)
	if err != nil {
		return ShardResult{}, err
	}
	if plan != nil {
		spec.FaultPlan = plan
	}
	opts := ShardOptions{Live: o.Live, Net: o.Net}
	if o.Telemetry != nil {
		// Each shard gets its own RunTelemetry value into one shared
		// registry; the shard label keeps the series apart.
		shardTel := &telemetry.RunTelemetry{Registry: o.Telemetry, Shard: load.Shard}
		opts.Live.Telemetry = shardTel
		opts.Net.Telemetry = shardTel
	}
	// Online mode streams settled operations into the checker while the
	// concurrent backends run; the verdict and the verified-frontier metrics
	// are ready the moment the run stops. Only the atomic condition has the
	// windowed decomposition; regular-condition shards keep the offline path.
	var checker *consistency.OnlineChecker
	online := o.OnlineCheck && !o.SkipCheck && cond == "atomic"
	if online {
		// The drivers sync (drain + barrier) every window's worth of issued
		// operations unless the caller tuned SyncOps themselves: each sync is
		// a clean cut, so the checker's peak window is bounded by roughly the
		// retirement window plus the in-flight population, by construction.
		syncOps := o.OnlineWindow
		if syncOps <= 0 {
			syncOps = consistency.DefaultWindowOps
		}
		switch backend.Name() {
		case BackendLive:
			checker = consistency.NewOnlineChecker(nil, consistency.WithWindowOps(o.OnlineWindow))
			opts.Live.Sink = checker
			if opts.Live.SyncOps == 0 {
				opts.Live.SyncOps = syncOps
			}
		case BackendNet:
			checker = consistency.NewOnlineChecker(nil, consistency.WithWindowOps(o.OnlineWindow))
			opts.Net.Sink = checker
			if opts.Net.SyncOps == 0 {
				opts.Net.SyncOps = syncOps
			}
		}
	}
	wres, err := backend.RunShard(cl, spec, opts)
	if err != nil {
		return ShardResult{}, err
	}
	// Safety must hold whatever the faults did: the completed operations of
	// even a quiescent shard are checked against the algorithm's condition
	// (unless the caller opted out for a high-ν sweep the exponential
	// checker cannot afford).
	var opsVerified int64
	var windowLag int
	switch {
	case o.SkipCheck:
	case checker != nil:
		// The runtime's flush already pushed the pending tail into the
		// checker, so Result needs no extras here.
		if err := checker.Result(); err != nil {
			return ShardResult{}, fmt.Errorf("consistency (%s, online): %w", cond, err)
		}
		opsVerified = checker.OpsVerified()
		windowLag = checker.WindowLag()
	case online:
		// Simulator shards hold the full history, so the windowed checker
		// runs as a parallel batch pass over the same clean-cut segments.
		if err := consistency.CheckWindowed(wres.History, nil, o.OnlineWindow); err != nil {
			return ShardResult{}, fmt.Errorf("consistency (%s, windowed): %w", cond, err)
		}
		opsVerified = int64(len(wres.History.Ops) - len(wres.History.PendingOps()))
	default:
		if err := wres.CheckConsistency(cond); err != nil {
			return ShardResult{}, fmt.Errorf("consistency (%s): %w", cond, err)
		}
	}
	return ShardResult{
		Shard:            load.Shard,
		Algorithm:        alg,
		Condition:        cond,
		FaultSpec:        o.Workload.ShardFault(load.Shard),
		Faults:           wres.Faults,
		Quiescent:        wres.Quiescent,
		PendingOps:       len(wres.History.PendingOps()),
		Keys:             load.DistinctKeys(),
		Writes:           load.Writes,
		Reads:            load.Reads,
		PeakActiveWrites: wres.PeakActiveWrites,
		Storage:          wres.Storage,
		NormalizedTotal:  wres.NormalizedTotal,
		Latencies:        wres.Latencies,
		OpsVerified:      opsVerified,
		WindowLag:        windowLag,
	}, nil
}

// DeployShard builds one shard's cluster with the engine's client-count
// defaulting: explicit counts when writers or readers is set (zero defaults
// to one), DeployAlgorithm's per-algorithm shapes sized for nu when both
// are zero. The batch engine and the session layer share this rule.
func DeployShard(alg string, n, f, nu, writers, readers int) (*cluster.Cluster, string, error) {
	if writers == 0 && readers == 0 {
		return DeployAlgorithm(alg, n, f, nu)
	}
	if writers == 0 {
		writers = 1
	}
	if readers == 0 {
		readers = 1
	}
	return DeployAlgorithmSized(alg, n, f, writers, readers)
}
