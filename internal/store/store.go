package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ioa"
	"repro/internal/workload"
)

// Options configures a sharded store run.
type Options struct {
	// Shards is the number of independent register deployments.
	Shards int
	// Algorithms assigns an algorithm per shard, cycling when shorter than
	// Shards (shard i runs Algorithms[i mod len]). Empty defaults to CAS on
	// every shard. Mixing algorithms across shards is allowed — each shard
	// is checked against its own algorithm's consistency condition.
	Algorithms []string
	// Servers and F shape every shard's cluster (N servers, f tolerated
	// crashes).
	Servers int
	F       int
	// Workers bounds the goroutines running shards concurrently; 0 means
	// GOMAXPROCS. Successful results are independent of the worker count:
	// every shard runs on its own ioa.System with a seed derived from
	// (Workload.Seed, shard index). Failed runs abort early, so which
	// shard's error surfaces (never whether Run fails) can vary with
	// scheduling.
	Workers int
	// Workload is the multi-key workload to partition across shards.
	Workload workload.MultiSpec
}

func (o Options) algorithms() []string {
	if len(o.Algorithms) == 0 {
		return []string{AlgCAS}
	}
	return o.Algorithms
}

func (o Options) validate() error {
	if o.Shards < 1 {
		return fmt.Errorf("store: Shards must be >= 1")
	}
	if o.Workers < 0 {
		return fmt.Errorf("store: negative worker count")
	}
	for _, a := range o.algorithms() {
		if !slices.Contains(Algorithms(), a) {
			return fmt.Errorf("store: unknown algorithm %q (known: %v)", a, Algorithms())
		}
	}
	if o.Workload.Crashes > o.F {
		return fmt.Errorf("store: per-shard crash budget %d exceeds f=%d", o.Workload.Crashes, o.F)
	}
	// The workload spec itself is validated by Partition.
	return nil
}

// ShardResult reports one shard's run.
type ShardResult struct {
	// Shard is the shard index.
	Shard int
	// Algorithm and Condition name what ran and what was verified.
	Algorithm string
	Condition string
	// Keys is the number of distinct keys that received operations.
	Keys int
	// Writes and Reads count the shard's operations.
	Writes int
	Reads  int
	// PeakActiveWrites is the shard's measured write concurrency ν.
	PeakActiveWrites int
	// Storage is the shard kernel's running-maximum storage report.
	Storage ioa.StorageReport
	// NormalizedTotal is the shard's MaxTotalBits / log2|V|.
	NormalizedTotal float64
}

// Result aggregates a sharded store run.
type Result struct {
	// PerShard holds every shard's result, ascending by shard index.
	PerShard []ShardResult
	// TotalWrites, TotalReads and TotalOps sum the shard loads.
	TotalWrites int
	TotalReads  int
	TotalOps    int
	// AggregateMaxTotalBits sums the per-shard total-storage high-water
	// marks — the store's metered footprint.
	AggregateMaxTotalBits int
	// MaxShardTotalBits is the largest single-shard total.
	MaxShardTotalBits int
	// MaxServerBits is the largest single-server maximum across all shards.
	MaxServerBits int
	// PeakActiveWrites sums the per-shard peaks: an upper estimate of the
	// store-level concurrent write load.
	PeakActiveWrites int
	// Log2V is 8*ValueBytes.
	Log2V float64
	// NormalizedTotal is AggregateMaxTotalBits / Log2V — the store-level
	// analogue of the Figure 1 y-axis (per shard, compare each shard's
	// NormalizedTotal against the bounds directly).
	NormalizedTotal float64
	// Elapsed and OpsPerSec measure wall-clock performance of the parallel
	// engine, and Workers is the effective worker count that ran the
	// shards. All three vary with the host and the requested parallelism
	// and are excluded from Fingerprint.
	Elapsed   time.Duration
	OpsPerSec float64
	Workers   int
}

// Fingerprint returns a hex digest of every deterministic field — per-shard
// loads, storage reports (per-server, sorted) and aggregates. Two runs of
// the same Options must produce identical fingerprints regardless of worker
// count or scheduling, which is how the engine's reproducibility is tested.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "shard=%d alg=%s cond=%s keys=%d w=%d r=%d peak=%d total=%d maxsrv=%d norm=%.9f servers=",
			s.Shard, s.Algorithm, s.Condition, s.Keys, s.Writes, s.Reads,
			s.PeakActiveWrites, s.Storage.MaxTotalBits, s.Storage.MaxServerBits, s.NormalizedTotal)
		ids := make([]int, 0, len(s.Storage.PerServerMaxBits))
		for id := range s.Storage.PerServerMaxBits {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "%d:%d,", id, s.Storage.PerServerMaxBits[ioa.NodeID(id)])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "agg w=%d r=%d ops=%d total=%d maxshard=%d maxsrv=%d peak=%d log2v=%.1f norm=%.9f\n",
		r.TotalWrites, r.TotalReads, r.TotalOps, r.AggregateMaxTotalBits,
		r.MaxShardTotalBits, r.MaxServerBits, r.PeakActiveWrites, r.Log2V, r.NormalizedTotal)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Table formats the per-shard results and the aggregate as a text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-18s %-8s %5s %6s %6s %5s %12s %10s\n",
		"shard", "algorithm", "cond", "keys", "writes", "reads", "nu", "totalbits", "normcost")
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "%-6d %-18s %-8s %5d %6d %6d %5d %12d %10.4f\n",
			s.Shard, s.Algorithm, s.Condition, s.Keys, s.Writes, s.Reads,
			s.PeakActiveWrites, s.Storage.MaxTotalBits, s.NormalizedTotal)
	}
	fmt.Fprintf(&b, "%-6s %-18s %-8s %5s %6d %6d %5d %12d %10.4f\n",
		"TOTAL", "-", "-", "-", r.TotalWrites, r.TotalReads,
		r.PeakActiveWrites, r.AggregateMaxTotalBits, r.NormalizedTotal)
	return b.String()
}

// Run partitions the workload across the shards, executes every shard's
// system on a bounded worker pool, verifies each history against its
// algorithm's consistency condition, and aggregates the shard results.
func Run(o Options) (*Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	loads, err := o.Workload.Partition(o.Shards)
	if err != nil {
		return nil, err
	}
	algs := o.algorithms()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.Shards {
		workers = o.Shards
	}

	shardResults := make([]ShardResult, o.Shards)
	shardErrs := make([]error, o.Shards)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Once any shard has failed the run's outcome is fixed;
				// skip the remaining shards instead of driving them to
				// completion. Successful runs are unaffected, so the
				// determinism guarantee holds.
				if failed.Load() {
					continue
				}
				shardResults[i], shardErrs[i] = runShard(o, algs[i%len(algs)], loads[i])
				if shardErrs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < o.Shards; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	for i, err := range shardErrs {
		if err != nil {
			return nil, fmt.Errorf("store: shard %d (%s): %w", i, algs[i%len(algs)], err)
		}
	}

	res := &Result{
		PerShard: shardResults,
		Log2V:    float64(8 * o.Workload.ValueBytes),
		Elapsed:  elapsed,
		Workers:  workers,
	}
	for _, s := range shardResults {
		res.TotalWrites += s.Writes
		res.TotalReads += s.Reads
		res.AggregateMaxTotalBits += s.Storage.MaxTotalBits
		res.PeakActiveWrites += s.PeakActiveWrites
		if s.Storage.MaxTotalBits > res.MaxShardTotalBits {
			res.MaxShardTotalBits = s.Storage.MaxTotalBits
		}
		if s.Storage.MaxServerBits > res.MaxServerBits {
			res.MaxServerBits = s.Storage.MaxServerBits
		}
	}
	res.TotalOps = res.TotalWrites + res.TotalReads
	res.NormalizedTotal = float64(res.AggregateMaxTotalBits) / res.Log2V
	if secs := elapsed.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.TotalOps) / secs
	}
	return res, nil
}

func runShard(o Options, alg string, load workload.ShardLoad) (ShardResult, error) {
	cl, cond, err := DeployAlgorithm(alg, o.Servers, o.F, o.Workload.TargetNu)
	if err != nil {
		return ShardResult{}, err
	}
	wres, err := workload.Run(cl, load.Spec(o.Workload))
	if err != nil {
		return ShardResult{}, err
	}
	if err := wres.CheckConsistency(cond); err != nil {
		return ShardResult{}, fmt.Errorf("consistency (%s): %w", cond, err)
	}
	return ShardResult{
		Shard:            load.Shard,
		Algorithm:        alg,
		Condition:        cond,
		Keys:             load.DistinctKeys(),
		Writes:           load.Writes,
		Reads:            load.Reads,
		PeakActiveWrites: wres.PeakActiveWrites,
		Storage:          wres.Storage,
		NormalizedTotal:  wres.NormalizedTotal,
	}, nil
}
