package store

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/workload"
)

// TestBackendNameRoundTrip pins the selector contract: every listed backend
// resolves by its own name and reports that name back.
func TestBackendNameRoundTrip(t *testing.T) {
	names := Backends()
	if len(names) < 2 {
		t.Fatalf("Backends() = %v, want at least sim and live", names)
	}
	for _, name := range names {
		b, err := BackendByName(name)
		if err != nil {
			t.Fatalf("BackendByName(%q): %v", name, err)
		}
		if got := b.Name(); got != name {
			t.Errorf("BackendByName(%q).Name() = %q", name, got)
		}
	}
}

// TestBackendEmptyDefaultsToSim pins "" selecting the simulator.
func TestBackendEmptyDefaultsToSim(t *testing.T) {
	b, err := BackendByName("")
	if err != nil {
		t.Fatalf("BackendByName(\"\"): %v", err)
	}
	if b.Name() != BackendSim {
		t.Errorf("empty backend name resolved to %q, want %q", b.Name(), BackendSim)
	}
}

// TestBackendUnknownNameError pins the error contract: an unknown selector
// wraps the typed ErrUnknownBackend, names the bad selector, and lists every
// known backend — the single error every selection surface funnels through.
func TestBackendUnknownNameError(t *testing.T) {
	_, err := BackendByName("quantum")
	if err == nil {
		t.Fatal("BackendByName(\"quantum\") succeeded")
	}
	if !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("error %v is not ErrUnknownBackend", err)
	}
	for _, want := range append([]string{`"quantum"`, "unknown backend"}, Backends()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if _, err := Run(Options{Shards: 1, Backend: "quantum"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("store.Run with unknown backend: err = %v, want ErrUnknownBackend", err)
	}
}

// TestValidateLiveWorkloadPerShard pins that every fault scenario class now
// passes live-backend options validation — the wall-clock scheduler runs
// step-indexed outages and crashes — and that a genuinely malformed spec
// still fails naming the offending per-shard fault index.
func TestValidateLiveWorkloadPerShard(t *testing.T) {
	base := Options{
		Shards:  4,
		Servers: 5,
		F:       1,
		Backend: BackendLive,
		Workload: workload.MultiSpec{
			Keys: 8, Ops: 8, TargetNu: 1, ValueBytes: 64,
		},
	}

	cases := []struct {
		name   string
		faults []string
		want   string // substring the error must carry; "" = no error
	}{
		{"drop and delay rules pass", []string{"lossy=0.02", "delay=1:8", "none"}, ""},
		{"scheduled crash passes", []string{"none", "crash-f@10"}, ""},
		{"crash with recovery passes", []string{"crash-f@10:200"}, ""},
		{"partition window passes", []string{"lossy=0.01", "delay=1:4", "partition@40:4000"}, ""},
		{"malformed spec names its index", []string{"none", "bogus-scenario"}, "Faults[1]"},
		{"malformed window names its index", []string{"none", "none", "partition@40:20"}, "Faults[2]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			o.Workload.Faults = tc.faults
			err := validateLiveWorkload(o)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("faults %v accepted, want error naming %s", tc.faults, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
			// The same rejection must surface from full Options validation.
			if verr := o.validate(); verr == nil || !strings.Contains(verr.Error(), tc.want) {
				t.Errorf("Options.validate() = %v, want error naming %s", verr, tc.want)
			}
		})
	}
}

// TestValidateLiveWorkloadRejectsCrashBudget pins the random crash budget
// rejection and its type: it stays unsupported off the simulator (it draws
// crash points from the simulator's schedule) and surfaces as
// faults.ErrUnsupported.
func TestValidateLiveWorkloadRejectsCrashBudget(t *testing.T) {
	o := Options{
		Shards:  1,
		Servers: 5,
		F:       1,
		Backend: BackendLive,
		Workload: workload.MultiSpec{
			Keys: 4, Ops: 4, TargetNu: 1, ValueBytes: 64, Crashes: 1,
		},
	}
	err := validateLiveWorkload(o)
	if err == nil || !strings.Contains(err.Error(), "Crashes") {
		t.Errorf("crash budget accepted on live backend: %v", err)
	}
	if !errors.Is(err, faults.ErrUnsupported) {
		t.Errorf("crash budget rejection is not faults.ErrUnsupported: %v", err)
	}
}

// TestSimSessionStepBudget pins the interactive path's typed budget error:
// a one-delivery budget cannot complete a quorum write, and the error must
// be ErrStepBudget with the operation left pending.
func TestSimSessionStepBudget(t *testing.T) {
	cl, _, err := DeployAlgorithm(AlgCAS, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BackendByName(BackendSim)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := b.OpenShard(cl, ShardOptions{StepBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, pending, err := sess.RunOp(context.Background(), cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: make([]byte, 64)})
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("RunOp error = %v, want ErrStepBudget", err)
	}
	if !pending {
		t.Error("budget-exhausted op reported as never started; it was invoked and must stay pending")
	}
}

// TestSimSessionCompletesOps drives a write/read pair interactively on the
// simulator session and checks the read returns the written value.
func TestSimSessionCompletesOps(t *testing.T) {
	cl, _, err := DeployAlgorithm(AlgABDMW, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BackendByName("")
	sess, err := b.OpenShard(cl, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	val := []byte("interactive-value-0123456789abcdef")
	if _, pending, err := sess.RunOp(context.Background(), cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: val}); err != nil || pending {
		t.Fatalf("write: pending=%t err=%v", pending, err)
	}
	out, pending, err := sess.RunOp(context.Background(), cl.Readers[0], ioa.Invocation{Kind: ioa.OpRead})
	if err != nil || pending {
		t.Fatalf("read: pending=%t err=%v", pending, err)
	}
	if string(out) != string(val) {
		t.Errorf("read %q, want %q", out, val)
	}
	if rep := sess.Storage(); rep.MaxTotalBits == 0 {
		t.Error("storage report empty after a completed write")
	}
}
