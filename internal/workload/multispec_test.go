package workload

import (
	"reflect"
	"testing"
)

func validMulti() MultiSpec {
	return MultiSpec{Seed: 1, Keys: 16, Ops: 64, ReadFraction: 0.25, TargetNu: 2, ValueBytes: 32}
}

func TestMultiSpecValidate(t *testing.T) {
	if err := validMulti().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []func(*MultiSpec){
		func(m *MultiSpec) { m.Keys = 0 },
		func(m *MultiSpec) { m.Ops = -1 },
		func(m *MultiSpec) { m.ReadFraction = -0.1 },
		func(m *MultiSpec) { m.ReadFraction = 1.1 },
		func(m *MultiSpec) { m.PerKeyReads = map[int]float64{16: 0.5} },
		func(m *MultiSpec) { m.PerKeyReads = map[int]float64{0: 2} },
		func(m *MultiSpec) { m.Skew = "pareto" },
		func(m *MultiSpec) { m.ZipfS = 0.5 },
		func(m *MultiSpec) { m.ZipfS = 1 },
		func(m *MultiSpec) { m.TargetNu = 0 },
		func(m *MultiSpec) { m.ValueBytes = 4 },
		func(m *MultiSpec) { m.Crashes = -1 },
	}
	for i, mutate := range bad {
		m := validMulti()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestPartitionConservesAndRoutes(t *testing.T) {
	m := validMulti()
	m.Skew = SkewZipf
	loads, err := m.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, l := range loads {
		if l.Shard != i {
			t.Errorf("load %d labeled shard %d", i, l.Shard)
		}
		total += l.Writes + l.Reads
		keyOps := 0
		for k, n := range l.KeyOps {
			if k < 0 || k >= m.Keys {
				t.Errorf("shard %d owns out-of-range key %d", i, k)
			}
			if KeyShard(k, 4) != i {
				t.Errorf("key %d routed to shard %d, want %d", k, i, KeyShard(k, 4))
			}
			if n < 1 {
				t.Errorf("key %d has %d ops", k, n)
			}
			keyOps += n
		}
		if keyOps != l.Writes+l.Reads {
			t.Errorf("shard %d: per-key ops %d != writes+reads %d", i, keyOps, l.Writes+l.Reads)
		}
	}
	if total != m.Ops {
		t.Errorf("partition conserves ops: got %d, want %d", total, m.Ops)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	m := validMulti()
	m.Skew = SkewZipf
	a, err := m.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different partitions")
	}
	m.Seed = 2
	c, err := m.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical partitions")
	}
}

func TestZipfConcentratesOnHotKeys(t *testing.T) {
	m := validMulti()
	m.Keys = 64
	m.Ops = 512
	m.Skew = SkewZipf
	m.ZipfS = 2.5
	loads, err := m.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	ops := loads[0].KeyOps
	for k, n := range ops {
		if k != 0 && n > ops[0] {
			t.Errorf("key %d (%d ops) beats hot key 0 (%d ops) under strong zipf", k, n, ops[0])
		}
	}
	if ops[0] < m.Ops/4 {
		t.Errorf("hot key holds %d of %d ops; expected strong concentration", ops[0], m.Ops)
	}
	if loads[0].DistinctKeys() >= m.Keys {
		t.Errorf("strong zipf touched all %d keys", m.Keys)
	}
}

func TestPerKeyReadWriteMix(t *testing.T) {
	m := validMulti()
	m.Keys = 2
	m.Ops = 40
	m.ReadFraction = 0
	m.PerKeyReads = map[int]float64{1: 1}
	loads, err := m.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	// Key 0 is write-only and key 1 read-only, so the shard's write count
	// must equal key 0's ops and its read count key 1's ops exactly.
	l := loads[0]
	if l.Writes != l.KeyOps[0] {
		t.Errorf("write-only key 0 has %d ops but shard logged %d writes", l.KeyOps[0], l.Writes)
	}
	if l.Reads != l.KeyOps[1] {
		t.Errorf("read-only key 1 has %d ops but shard logged %d reads", l.KeyOps[1], l.Reads)
	}
	if l.Writes+l.Reads != m.Ops {
		t.Errorf("mix lost ops: %d + %d != %d", l.Writes, l.Reads, m.Ops)
	}
	if l.Writes == 0 || l.Reads == 0 {
		t.Errorf("both keys should receive ops (writes=%d reads=%d)", l.Writes, l.Reads)
	}
}

func TestKeyShardSpreadsHotKeys(t *testing.T) {
	// The eight hottest Zipf keys (0..7) must not all land on one shard of
	// four, and routing must be stable and in range.
	seen := map[int]bool{}
	for k := 0; k < 8; k++ {
		s := KeyShard(k, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("KeyShard(%d, 4) = %d out of range", k, s)
		}
		if s != KeyShard(k, 4) {
			t.Fatalf("KeyShard(%d, 4) unstable", k)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Errorf("hot keys 0..7 all routed to a single shard of 4")
	}
}

func TestShardLoadSpecDerivation(t *testing.T) {
	m := validMulti()
	m.Crashes = 1
	m.MaxSteps = 1234
	l := ShardLoad{Shard: 3, Writes: 5, Reads: 2}
	spec := l.Spec(m)
	if spec.Seed != ShardSeed(m.Seed, 3) {
		t.Error("spec seed not derived from shard index")
	}
	if spec.Writes != 5 || spec.Reads != 2 || spec.TargetNu != m.TargetNu ||
		spec.ValueBytes != m.ValueBytes || spec.Crashes != 1 || spec.MaxSteps != 1234 {
		t.Errorf("derived spec %+v loses fields", spec)
	}
}

func TestShardSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for shard := 0; shard < 256; shard++ {
		s := ShardSeed(42, shard)
		if prev, ok := seen[s]; ok {
			t.Fatalf("shards %d and %d share seed %d", prev, shard, s)
		}
		seen[s] = shard
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Error("different base seeds collide at shard 0")
	}
}
