package workload

import "testing"

// TestKeyShardRangeAndDeterminism checks the routing function's basic
// invariants: every key maps into [0, shards), and the mapping is a pure
// function (same key, same shard, every time).
func TestKeyShardRangeAndDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 8, 16, 64} {
		for key := 0; key < 4096; key++ {
			s := KeyShard(key, shards)
			if s < 0 || s >= shards {
				t.Fatalf("KeyShard(%d, %d) = %d out of range", key, shards, s)
			}
			if again := KeyShard(key, shards); again != s {
				t.Fatalf("KeyShard(%d, %d) unstable: %d then %d", key, shards, s, again)
			}
		}
	}
}

// TestPartitionRoutesEveryKeyToOneShard checks the partition invariant:
// every key with operations appears in exactly one shard's load, that shard
// is the key's KeyShard, and no operation is lost or duplicated.
func TestPartitionRoutesEveryKeyToOneShard(t *testing.T) {
	for _, skew := range []string{SkewUniform, SkewZipf} {
		m := MultiSpec{Seed: 9, Keys: 256, Ops: 5000, Skew: skew, ReadFraction: 0.4, TargetNu: 1, ValueBytes: 8}
		const shards = 8
		loads, err := m.Partition(shards)
		if err != nil {
			t.Fatal(err)
		}
		owner := make(map[int]int)
		totalOps, keyOps := 0, 0
		for _, l := range loads {
			totalOps += l.Writes + l.Reads
			for key, n := range l.KeyOps {
				if prev, dup := owner[key]; dup {
					t.Fatalf("%s: key %d appears in shards %d and %d", skew, key, prev, l.Shard)
				}
				owner[key] = l.Shard
				if want := KeyShard(key, shards); want != l.Shard {
					t.Fatalf("%s: key %d landed on shard %d, KeyShard says %d", skew, key, l.Shard, want)
				}
				if n <= 0 {
					t.Fatalf("%s: key %d recorded %d ops", skew, key, n)
				}
				keyOps += n
			}
		}
		if totalOps != m.Ops {
			t.Errorf("%s: %d ops routed, want %d", skew, totalOps, m.Ops)
		}
		if keyOps != m.Ops {
			t.Errorf("%s: per-key op counts sum to %d, want %d", skew, keyOps, m.Ops)
		}
	}
}

// zipfSpread partitions a large seeded Zipf workload and returns the
// heaviest and lightest shard loads, the hottest single key's mass, and the
// total.
func zipfSpread(t *testing.T, shards int) (max, min, hottest, total int) {
	t.Helper()
	m := MultiSpec{Seed: 1, Keys: 1024, Ops: 100000, Skew: SkewZipf, TargetNu: 1, ValueBytes: 8}
	loads, err := m.Partition(shards)
	if err != nil {
		t.Fatal(err)
	}
	min = m.Ops
	for _, l := range loads {
		ops := l.Writes + l.Reads
		total += ops
		if ops > max {
			max = ops
		}
		if ops < min {
			min = ops
		}
		for _, n := range l.KeyOps {
			if n > hottest {
				hottest = n
			}
		}
	}
	return max, min, hottest, total
}

// TestZipfSpreadWithinDocumentedBound documents and enforces the load
// spread the bit-mixing router guarantees under the default Zipf skew
// (s = 1.2, 1024 keys): the heaviest shard carries at most the hottest
// key's own mass (which is indivisible — a key lives on exactly one shard)
// plus twice the per-shard mean of the remaining traffic, and no shard
// starves. With key-mod-shards routing the hot keys 0, 1, 2, ... would pile
// onto the low shards and break this bound immediately.
func TestZipfSpreadWithinDocumentedBound(t *testing.T) {
	for _, shards := range []int{4, 8, 16} {
		max, min, hottest, total := zipfSpread(t, shards)
		bound := hottest + 2*(total-hottest)/shards
		if max > bound {
			t.Errorf("shards=%d: heaviest shard %d exceeds documented bound %d (hottest key %d)",
				shards, max, bound, hottest)
		}
		if min == 0 {
			t.Errorf("shards=%d: a shard received no operations", shards)
		}
	}
}

// TestUniformSpreadTight checks the router keeps uniform traffic within 15%
// of the per-shard mean at this seeded configuration.
func TestUniformSpreadTight(t *testing.T) {
	m := MultiSpec{Seed: 1, Keys: 1024, Ops: 100000, Skew: SkewUniform, TargetNu: 1, ValueBytes: 8}
	const shards = 8
	loads, err := m.Partition(shards)
	if err != nil {
		t.Fatal(err)
	}
	mean := m.Ops / shards
	for _, l := range loads {
		ops := l.Writes + l.Reads
		if ops < mean*85/100 || ops > mean*115/100 {
			t.Errorf("shard %d load %d outside 15%% of mean %d under uniform skew", l.Shard, ops, mean)
		}
	}
}

// TestShardSeedsPairwiseDistinct checks that derived per-shard seeds never
// collide across a wide shard range for several base seeds (collisions
// would make two shards replay correlated schedules).
func TestShardSeedsPairwiseDistinct(t *testing.T) {
	for _, base := range []int64{0, 1, -5, 42, 1<<62 - 1} {
		seen := make(map[int64]int, 2048)
		for shard := 0; shard < 2048; shard++ {
			s := ShardSeed(base, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: shards %d and %d share seed %d", base, prev, shard, s)
			}
			seen[s] = shard
		}
	}
}

// TestShardFaultCycling checks the per-shard fault spec assignment mirrors
// the algorithm cycling rule.
func TestShardFaultCycling(t *testing.T) {
	m := MultiSpec{Faults: []string{"crash-f", "lossy=0.1", "none"}}
	want := []string{"crash-f", "lossy=0.1", "none", "crash-f", "lossy=0.1"}
	for shard, w := range want {
		if got := m.ShardFault(shard); got != w {
			t.Errorf("ShardFault(%d) = %q, want %q", shard, got, w)
		}
	}
	if got := (MultiSpec{}).ShardFault(3); got != "" {
		t.Errorf("empty Faults: ShardFault = %q, want \"\"", got)
	}
}

// TestMultiSpecValidatesFaults checks malformed fault specs are rejected at
// validation time, before any shard runs.
func TestMultiSpecValidatesFaults(t *testing.T) {
	m := MultiSpec{Seed: 1, Keys: 4, Ops: 8, TargetNu: 1, ValueBytes: 8, Faults: []string{"bogus"}}
	if err := m.Validate(); err == nil {
		t.Error("bogus fault spec accepted")
	}
	m.Faults = []string{"crash-f", "", "lossy=0.5"}
	if err := m.Validate(); err != nil {
		t.Errorf("valid fault specs rejected: %v", err)
	}
}
