package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/faults"
)

// Key-popularity skews accepted by MultiSpec.Skew.
const (
	SkewUniform = "uniform"
	SkewZipf    = "zipf"
)

// MultiSpec describes a seeded workload over a multi-key keyspace served by
// a sharded store. Keys are hashed onto shards (see KeyShard); each
// operation picks a key according to the configured popularity skew and
// becomes a read or a write according to the key's read fraction. The store
// partitions a MultiSpec into one single-register Spec per shard, so every
// shard replays its slice of the keyspace load deterministically.
type MultiSpec struct {
	// Seed makes the partition and every derived per-shard run reproducible.
	Seed int64
	// Keys is the keyspace size.
	Keys int
	// Ops is the total number of operations issued across all keys.
	Ops int
	// ReadFraction is the probability an operation is a read (the rest are
	// writes). Per-key overrides in PerKeyReads take precedence.
	ReadFraction float64
	// PerKeyReads optionally overrides ReadFraction for individual keys,
	// expressing a per-key read/write mix (e.g. a write-hot key 0 amid a
	// read-mostly keyspace).
	PerKeyReads map[int]float64
	// Skew selects the key-popularity distribution: SkewUniform (default)
	// or SkewZipf.
	Skew string
	// ZipfS is the Zipf exponent (> 1). Zero selects the default 1.2.
	ZipfS float64
	// TargetNu is the per-shard target write concurrency, as in Spec.
	TargetNu int
	// ValueBytes is the size of each written value.
	ValueBytes int
	// Crashes is the per-shard random server crash budget.
	Crashes int
	// MaxSteps bounds deliveries per shard (default as in Spec).
	MaxSteps int
	// Faults assigns a fault scenario per shard, cycling when shorter than
	// the shard count exactly as store.Options.Algorithms does (shard i runs
	// Faults[i mod len]); "" or "none" leaves a shard fault-free. Specs
	// follow the grammar of internal/faults.Parse (e.g. "crash-f",
	// "partition@40:4000", "lossy=0.02+delay=1:20"), so one store run can
	// mix scenarios — a partitioned shard next to a lossy one.
	Faults []string
}

const defaultZipfS = 1.2

func (m MultiSpec) zipfS() float64 {
	if m.ZipfS != 0 {
		return m.ZipfS
	}
	return defaultZipfS
}

// Validate checks the multi-key spec in isolation (cluster-dependent checks
// happen per shard when the derived Specs run).
func (m MultiSpec) Validate() error {
	if m.Keys < 1 {
		return fmt.Errorf("workload: Keys must be >= 1")
	}
	if m.Ops < 0 {
		return fmt.Errorf("workload: negative op count")
	}
	if m.ReadFraction < 0 || m.ReadFraction > 1 {
		return fmt.Errorf("workload: ReadFraction %v outside [0,1]", m.ReadFraction)
	}
	for k, rf := range m.PerKeyReads {
		if k < 0 || k >= m.Keys {
			return fmt.Errorf("workload: PerKeyReads key %d outside keyspace [0,%d)", k, m.Keys)
		}
		if rf < 0 || rf > 1 {
			return fmt.Errorf("workload: PerKeyReads[%d] = %v outside [0,1]", k, rf)
		}
	}
	switch m.Skew {
	case "", SkewUniform, SkewZipf:
	default:
		return fmt.Errorf("workload: unknown skew %q", m.Skew)
	}
	if m.ZipfS != 0 && m.ZipfS <= 1 {
		return fmt.Errorf("workload: ZipfS must be > 1 (got %v)", m.ZipfS)
	}
	if m.TargetNu < 1 {
		return fmt.Errorf("workload: TargetNu must be >= 1")
	}
	if m.ValueBytes < 8 {
		return fmt.Errorf("workload: ValueBytes must be >= 8 (value uniqueness header)")
	}
	if m.Crashes < 0 {
		return fmt.Errorf("workload: negative crash budget")
	}
	for i, spec := range m.Faults {
		if _, err := faults.Parse(spec); err != nil {
			return fmt.Errorf("workload: Faults[%d]: %w", i, err)
		}
	}
	return nil
}

// ShardFault returns the fault scenario spec assigned to the shard ("" when
// the spec declares no faults), cycling the Faults list per shard.
func (m MultiSpec) ShardFault(shard int) string {
	if len(m.Faults) == 0 {
		return ""
	}
	return m.Faults[shard%len(m.Faults)]
}

// faultSeedSalt decorrelates a shard's fault-decision stream from its
// workload stream: both derive from (Seed, shard) via ShardSeed, and without
// a salt the fault plan would hash the same values the workload rng draws.
const faultSeedSalt = 0x7fa17b1a5

// ShardFaultPlan builds the shard's fault plan for an (n, f) deployment, or
// nil when the shard is fault-free. The plan's seed derives from (Seed,
// shard) so same-seed runs replay identical faults on every shard at any
// worker count.
func (m MultiSpec) ShardFaultPlan(shard, n, f int) (*faults.Plan, error) {
	spec := m.ShardFault(shard)
	sc, err := faults.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("workload: shard %d faults: %w", shard, err)
	}
	if sc == nil {
		return nil, nil
	}
	plan, err := sc.Build(n, f, ShardSeed(m.Seed^faultSeedSalt, shard))
	if err != nil {
		return nil, fmt.Errorf("workload: shard %d faults %q: %w", shard, spec, err)
	}
	return plan, nil
}

func (m MultiSpec) readFraction(key int) float64 {
	if rf, ok := m.PerKeyReads[key]; ok {
		return rf
	}
	return m.ReadFraction
}

// ShardLoad is the slice of a MultiSpec that lands on one shard.
type ShardLoad struct {
	// Shard is the shard index.
	Shard int
	// Writes and Reads count the operations routed to this shard.
	Writes int
	Reads  int
	// KeyOps counts operations per key among the keys owned by the shard
	// (only keys that received at least one op appear).
	KeyOps map[int]int
}

// DistinctKeys reports how many distinct keys received operations.
func (l ShardLoad) DistinctKeys() int { return len(l.KeyOps) }

// Spec derives the single-register workload spec that replays this shard's
// load, seeded independently per shard so parallel shard execution stays
// reproducible.
func (l ShardLoad) Spec(m MultiSpec) Spec {
	return Spec{
		Seed:       ShardSeed(m.Seed, l.Shard),
		Writes:     l.Writes,
		Reads:      l.Reads,
		TargetNu:   m.TargetNu,
		ValueBytes: m.ValueBytes,
		Crashes:    m.Crashes,
		MaxSteps:   m.MaxSteps,
	}
}

// Partition deterministically routes the multi-key load onto shards: each
// operation samples a key from the skew distribution, the key's shard is
// KeyShard(key, shards), and the key's read fraction decides the operation
// kind.
func (m MultiSpec) Partition(shards int) ([]ShardLoad, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("workload: shards must be >= 1")
	}
	rng := rand.New(rand.NewSource(m.Seed))
	var zipf *rand.Zipf
	if m.Skew == SkewZipf {
		zipf = rand.NewZipf(rng, m.zipfS(), 1, uint64(m.Keys-1))
	}
	loads := make([]ShardLoad, shards)
	for i := range loads {
		loads[i] = ShardLoad{Shard: i, KeyOps: make(map[int]int)}
	}
	for op := 0; op < m.Ops; op++ {
		var key int
		if zipf != nil {
			key = int(zipf.Uint64())
		} else {
			key = rng.Intn(m.Keys)
		}
		l := &loads[KeyShard(key, shards)]
		l.KeyOps[key]++
		if rng.Float64() < m.readFraction(key) {
			l.Reads++
		} else {
			l.Writes++
		}
	}
	return loads, nil
}

// KeyShard deterministically maps a key to a shard. The key is bit-mixed
// before reduction so that adjacent keys land on unrelated shards: under
// Zipf skew popularity decreases monotonically with key index, and a plain
// key-mod-shards routing would pile every hot key onto the lowest shards.
func KeyShard(key, shards int) int {
	z := uint64(key)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int(z % uint64(shards))
}

// ShardSeed derives an independent deterministic seed for a shard from the
// base workload seed, using a splitmix64 step so neighbouring shards get
// uncorrelated streams.
func ShardSeed(base int64, shard int) int64 {
	z := uint64(base) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
