package workload

import (
	"errors"
	"testing"

	"repro/internal/abd"
	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ioa"
)

func TestSpecValidate(t *testing.T) {
	cl, err := abd.Deploy(abd.Options{Servers: 3, F: 1, Writers: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Writes: -1, TargetNu: 1, ValueBytes: 16},
		{Writes: 1, TargetNu: 0, ValueBytes: 16},
		{Writes: 1, TargetNu: 1, ValueBytes: 4},
		{Writes: 1, TargetNu: 1, ValueBytes: 16, Crashes: 2},
	}
	for i, s := range bad {
		if err := s.Validate(cl); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	good := Spec{Writes: 1, Reads: 1, TargetNu: 1, ValueBytes: 16, Crashes: 1}
	if err := good.Validate(cl); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestRunABDAtomic(t *testing.T) {
	cl, err := abd.Deploy(abd.Options{Servers: 5, F: 2, Writers: 2, Readers: 2, MultiWriter: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cl, Spec{Seed: 1, Writes: 12, Reads: 8, TargetNu: 2, ValueBytes: 256, Crashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckConsistency("atomic"); err != nil {
		t.Fatal(err)
	}
	if res.PeakActiveWrites < 1 || res.PeakActiveWrites > 2 {
		t.Errorf("peak active writes = %d, want in [1,2]", res.PeakActiveWrites)
	}
	if len(res.History.PendingOps()) != 0 {
		t.Error("all operations should have completed")
	}
	// ABD normalized storage ~ N (one copy per server), independent of nu;
	// the slack covers per-server tag metadata (96 bits per 2048-bit value).
	if res.NormalizedTotal < 4.5 || res.NormalizedTotal > 5.5 {
		t.Errorf("ABD normalized total = %f, want ~5 (N copies)", res.NormalizedTotal)
	}
}

// TestCASStorageGrowsWithNu reproduces the paper's Section 2.3 observation
// end to end: CASGC's storage grows with the sustained write concurrency.
func TestCASStorageGrowsWithNu(t *testing.T) {
	measure := func(nu int) float64 {
		cl, err := cas.Deploy(cas.Options{Servers: 9, F: 2, GCDepth: 0, Writers: nu, Readers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cl, Spec{Seed: 7, Writes: 6 * nu, Reads: 2, TargetNu: nu, ValueBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckConsistency("atomic"); err != nil {
			t.Fatal(err)
		}
		return res.NormalizedTotal
	}
	s1 := measure(1)
	s3 := measure(3)
	if s3 <= s1 {
		t.Errorf("storage should grow with nu: nu=1 -> %.2f, nu=3 -> %.2f", s1, s3)
	}
	// Lower bound sanity: measured storage must respect Theorem 6.5.
	p := core.Params{N: 9, F: 2}
	if s1 < core.NormalizedTheorem65(p, 1)*0.9 {
		t.Errorf("nu=1 storage %.2f below Theorem 6.5 bound %.2f", s1, core.NormalizedTheorem65(p, 1))
	}
}

func TestRunRejectsBrokenCluster(t *testing.T) {
	if _, err := Run(&cluster.Cluster{}, Spec{Writes: 1, TargetNu: 1, ValueBytes: 16}); err == nil {
		t.Error("invalid cluster should be rejected")
	}
}

func TestCheckConsistencyUnknown(t *testing.T) {
	r := &Result{}
	if err := r.CheckConsistency("bogus"); err == nil {
		t.Error("unknown condition should fail")
	}
}

// TestRunStepLimit verifies that exhausting the delivery budget surfaces
// the scheduler's ErrStepLimit sentinel through Run's error wrapping.
func TestRunStepLimit(t *testing.T) {
	cl, err := abd.Deploy(abd.Options{Servers: 3, F: 1, Writers: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(cl, Spec{Seed: 1, Writes: 2, TargetNu: 1, ValueBytes: 16, MaxSteps: 1})
	if !errors.Is(err, ioa.ErrStepLimit) {
		t.Errorf("got %v, want ErrStepLimit", err)
	}
}

// TestRunQuiescent verifies that a run which loses liveness — more crashed
// servers than any quorum can tolerate — surfaces ErrQuiescent rather than
// hanging or reporting success with pending operations.
func TestRunQuiescent(t *testing.T) {
	cl, err := abd.Deploy(abd.Options{Servers: 3, F: 1, Writers: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Crash beyond the tolerated f directly on the system: majority quorums
	// become unreachable, so the single write can never complete.
	cl.Sys.Crash(cl.Servers[0])
	cl.Sys.Crash(cl.Servers[1])
	_, err = Run(cl, Spec{Seed: 1, Writes: 1, TargetNu: 1, ValueBytes: 16})
	if !errors.Is(err, ioa.ErrQuiescent) {
		t.Errorf("got %v, want ErrQuiescent", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (*Result, error) {
		cl, err := abd.Deploy(abd.Options{Servers: 5, F: 2, Writers: 2, Readers: 1, MultiWriter: true})
		if err != nil {
			return nil, err
		}
		return Run(cl, Spec{Seed: 99, Writes: 10, Reads: 5, TargetNu: 2, ValueBytes: 16})
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Storage.MaxTotalBits != b.Storage.MaxTotalBits || a.PeakActiveWrites != b.PeakActiveWrites {
		t.Error("same seed must reproduce the same run")
	}
	if len(a.History.Ops) != len(b.History.Ops) {
		t.Error("histories diverged under identical seeds")
	}
}
