package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/ioa"
	"repro/internal/register"
)

// Flight is one asynchronously submitted operation, as handed back by a
// concurrent runtime's async invoke. The live and net runtimes satisfy it
// with their pendingOp.
type Flight interface {
	// Wait blocks until the operation completes or timeout elapses,
	// reporting whether it completed. On timeout the runtime retires the
	// client (the automaton is stuck mid-protocol).
	Wait(timeout time.Duration) bool
	// Abandon retires the operation without waiting a full timeout,
	// reporting whether it won the race against completion. A false return
	// means the op actually completed and must still be settled with Wait.
	Abandon() bool
}

// FlightConfig parameterizes RunFlights with the runtime-specific pieces.
type FlightConfig struct {
	// Pipeline is the per-client in-flight window (>= 1).
	Pipeline int
	// SyncOps > 0 inserts driver quiescence barriers every SyncOps issued
	// operations (see Quiescer).
	SyncOps int
	// OpTimeout bounds each operation's completion wait.
	OpTimeout time.Duration
	// Invoke submits one operation at a client and returns its flight.
	Invoke func(client ioa.NodeID, inv ioa.Invocation) Flight
	// OnSubmit, if non-nil, is called once per submitted operation —
	// the telemetry hook for started-op counters.
	OnSubmit func(isWrite bool)
	// Observe, if non-nil, is called once per settled operation with its
	// wall-clock latency (latency 0 for ops abandoned without waiting) —
	// the telemetry hook for completion counters and latency histograms.
	Observe func(isWrite bool, latency time.Duration, ok bool)
}

// FlightResult is what the windowed driver measures directly.
type FlightResult struct {
	// Latencies holds one wall-clock duration per completed operation, in
	// no particular order.
	Latencies []time.Duration
	// PeakActiveWrites is the maximum of concurrently in-flight writes (the
	// execution's measured ν, counting submitted ops — an upper bound on
	// the protocol-level ν the history records).
	PeakActiveWrites int
	// Elapsed is the wall time from first submission to last settle.
	Elapsed time.Duration
}

// RunFlights is the windowed flight driver shared by the live and net
// runtimes (they drifted once as near-identical copies; this is the single
// home). min(TargetNu, writers) writer goroutines and every reader
// goroutine issue operations from shared budgets until the spec's counts
// are exhausted, keeping up to Pipeline ops in flight per client — the node
// starts each only when its predecessor responds, so per-client program
// order holds and the automaton still sees one op at a time. A timed-out
// operation retires its client: the automaton is stuck mid-protocol, so
// every op queued behind it is abandoned rather than waited out. Latencies
// are collected per driver — mutex-free, like the runtimes' logs — and
// merged after the joins; a pipelined latency includes the queue wait at
// the node.
func RunFlights(cl *cluster.Cluster, spec Spec, cfg FlightConfig) FlightResult {
	var writesLeft, readsLeft atomic.Int64
	writesLeft.Store(int64(spec.Writes))
	readsLeft.Store(int64(spec.Reads))
	var nextVal atomic.Uint64
	var activeWrites, peakWrites atomic.Int64

	type flight struct {
		f       Flight
		start   time.Time
		isWrite bool
	}
	var qc *Quiescer
	driver := func(client ioa.NodeID, kind ioa.OpKind, budget *atomic.Int64) []time.Duration {
		var lats []time.Duration
		var window []flight
		settle := func(fl flight) bool {
			ok := fl.f.Wait(cfg.OpTimeout)
			if fl.isWrite {
				activeWrites.Add(-1)
			}
			lat := time.Since(fl.start)
			if ok {
				lats = append(lats, lat)
			}
			if cfg.Observe != nil {
				cfg.Observe(fl.isWrite, lat, ok)
			}
			return ok
		}
		alive := true
		var synced int64
		defer qc.Leave()
		for alive {
			// Quiescence point (cfg.SyncOps): the global issue counter
			// crossed a sync boundary, so drain the in-flight window and
			// meet the other drivers at the barrier; the moment it releases,
			// nothing is in flight anywhere — a clean cut in the history.
			if r := qc.Due(); r > synced {
				for alive && len(window) > 0 {
					alive = settle(window[0])
					window = window[1:]
				}
				if !alive {
					break
				}
				qc.Await(r)
				synced = r
			}
			if budget.Add(-1) < 0 {
				break
			}
			if len(window) == cfg.Pipeline {
				alive = settle(window[0])
				window = window[1:]
				if !alive {
					budget.Add(1) // this op was never submitted; return its slot
					break
				}
			}
			inv := ioa.Invocation{Kind: kind}
			isWrite := kind == ioa.OpWrite
			if isWrite {
				inv.Value = register.MakeValue(spec.ValueBytes, nextVal.Add(1))
				cur := activeWrites.Add(1)
				for {
					p := peakWrites.Load()
					if cur <= p || peakWrites.CompareAndSwap(p, cur) {
						break
					}
				}
			}
			if cfg.OnSubmit != nil {
				cfg.OnSubmit(isWrite)
			}
			window = append(window, flight{cfg.Invoke(client, inv), time.Now(), isWrite})
			qc.Tick()
		}
		for i, fl := range window {
			if alive {
				alive = settle(fl)
				continue
			}
			// An earlier op at this client is stuck, so nothing behind it
			// can start; abandon instead of waiting a full timeout each.
			// The rare loser of the abandon race (the stuck op completed
			// right after its timeout) is settled normally.
			if fl.f.Abandon() {
				if fl.isWrite {
					activeWrites.Add(-1)
				}
				if cfg.Observe != nil {
					cfg.Observe(fl.isWrite, 0, false)
				}
				continue
			}
			alive = settle(window[i])
		}
		return lats
	}

	nWriters := spec.TargetNu
	if nWriters > len(cl.Writers) {
		nWriters = len(cl.Writers)
	}
	nDrivers := nWriters + len(cl.Readers)
	if cfg.SyncOps > 0 {
		qc = NewQuiescer(int64(cfg.SyncOps), nDrivers)
	}
	latChunks := make([][]time.Duration, nDrivers)
	var dwg sync.WaitGroup
	started := time.Now()
	for i := 0; i < nWriters; i++ {
		dwg.Add(1)
		go func(slot int, id ioa.NodeID) {
			defer dwg.Done()
			latChunks[slot] = driver(id, ioa.OpWrite, &writesLeft)
		}(i, cl.Writers[i])
	}
	for i, id := range cl.Readers {
		dwg.Add(1)
		go func(slot int, id ioa.NodeID) {
			defer dwg.Done()
			latChunks[slot] = driver(id, ioa.OpRead, &readsLeft)
		}(nWriters+i, id)
	}
	dwg.Wait()
	res := FlightResult{PeakActiveWrites: int(peakWrites.Load()), Elapsed: time.Since(started)}
	for _, chunk := range latChunks {
		res.Latencies = append(res.Latencies, chunk...)
	}
	return res
}
