// Package workload drives register clusters through seeded, reproducible
// workloads with a controlled number of concurrently active write
// operations ν — the parameter the paper's storage bounds revolve around —
// while the kernel meters per-server storage.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/ioa"
	"repro/internal/register"
)

// Spec describes a workload.
type Spec struct {
	// Seed makes the run reproducible.
	Seed int64
	// Writes is the total number of write operations to issue.
	Writes int
	// Reads is the total number of read operations to issue.
	Reads int
	// TargetNu caps the number of concurrently active writes; the driver
	// keeps min(TargetNu, len(Writers)) writes in flight while budget
	// remains, producing sustained concurrency at that level.
	TargetNu int
	// ValueBytes is the size of each written value; log2|V| = 8*ValueBytes.
	ValueBytes int
	// Crashes randomly crashes up to this many servers during the run
	// (bounded by the cluster's f).
	Crashes int
	// MaxSteps bounds the total deliveries (default 2,000,000).
	MaxSteps int
}

func (s Spec) maxSteps() int {
	if s.MaxSteps > 0 {
		return s.MaxSteps
	}
	return 2000000
}

// Validate checks the spec against a cluster.
func (s Spec) Validate(cl *cluster.Cluster) error {
	if s.Writes < 0 || s.Reads < 0 {
		return fmt.Errorf("workload: negative op counts")
	}
	if s.TargetNu < 1 {
		return fmt.Errorf("workload: TargetNu must be >= 1")
	}
	if s.ValueBytes < 8 {
		return fmt.Errorf("workload: ValueBytes must be >= 8 (value uniqueness header)")
	}
	if s.Crashes > cl.F {
		return fmt.Errorf("workload: %d crashes exceed cluster f=%d", s.Crashes, cl.F)
	}
	return nil
}

// Result reports what a run produced.
type Result struct {
	// History is the operation history (all ops completed unless the
	// cluster lost liveness, which Run reports as an error).
	History *ioa.History
	// Storage is the kernel's running-maximum storage report.
	Storage ioa.StorageReport
	// PeakActiveWrites is the measured maximum of concurrently active
	// write operations over the run (the execution's ν).
	PeakActiveWrites int
	// Log2V is 8*ValueBytes, for normalizing storage.
	Log2V float64
	// NormalizedTotal is Storage.MaxTotalBits / Log2V — directly comparable
	// to the Figure 1 series.
	NormalizedTotal float64
}

// Run drives the cluster through the workload.
func Run(cl *cluster.Cluster, spec Spec) (*Result, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(cl); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sys := cl.Sys

	writesLeft := spec.Writes
	readsLeft := spec.Reads
	crashesLeft := spec.Crashes
	nextVal := uint64(0)
	activeWrites := 0
	peak := 0

	idle := func(id ioa.NodeID) bool {
		n, err := sys.Node(id)
		if err != nil {
			return false
		}
		c, ok := n.(ioa.Client)
		return ok && !c.Busy() && !sys.Crashed(id)
	}

	maxNu := spec.TargetNu
	if maxNu > len(cl.Writers) {
		maxNu = len(cl.Writers)
	}

	for step := 0; step < spec.maxSteps(); step++ {
		// Keep writes saturated at the target concurrency.
		if writesLeft > 0 && activeWrites < maxNu {
			started := false
			for _, w := range cl.Writers {
				if !idle(w) {
					continue
				}
				nextVal++
				v := register.MakeValue(spec.ValueBytes, nextVal)
				if _, err := sys.Invoke(w, ioa.Invocation{Kind: ioa.OpWrite, Value: v}); err != nil {
					return nil, fmt.Errorf("workload: %w", err)
				}
				writesLeft--
				activeWrites++
				if activeWrites > peak {
					peak = activeWrites
				}
				started = true
				break
			}
			if started {
				continue
			}
		}
		// Occasionally start a read.
		if readsLeft > 0 && rng.Intn(8) == 0 {
			for _, r := range cl.Readers {
				if idle(r) {
					if _, err := sys.Invoke(r, ioa.Invocation{Kind: ioa.OpRead}); err != nil {
						return nil, fmt.Errorf("workload: %w", err)
					}
					readsLeft--
					break
				}
			}
		}
		// Occasionally crash a server.
		if crashesLeft > 0 && rng.Intn(1000) == 0 {
			idx := rng.Intn(len(cl.Servers))
			if !sys.Crashed(cl.Servers[idx]) {
				sys.Crash(cl.Servers[idx])
				crashesLeft--
			}
		}
		// Deliver a random message.
		keys := sys.DeliverableChannels()
		if len(keys) == 0 {
			if writesLeft == 0 && readsLeft == 0 {
				break
			}
			continue
		}
		k := keys[rng.Intn(len(keys))]
		if err := sys.Deliver(k.From, k.To); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		// Track write completions.
		completedWrites := 0
		for _, op := range sys.History().Ops {
			if op.Kind == ioa.OpWrite && !op.Pending() {
				completedWrites++
			}
		}
		activeWrites = (spec.Writes - writesLeft) - completedWrites
	}
	// Let everything settle.
	if err := sys.FairRun(spec.maxSteps(), ioa.AllOpsDone); err != nil {
		return nil, fmt.Errorf("workload: drain: %w", err)
	}
	log2V := float64(8 * spec.ValueBytes)
	rep := sys.Storage()
	return &Result{
		History:          sys.History(),
		Storage:          rep,
		PeakActiveWrites: peak,
		Log2V:            log2V,
		NormalizedTotal:  float64(rep.MaxTotalBits) / log2V,
	}, nil
}

// CheckConsistency verifies the result's history against the named
// condition: "atomic", "regular" or "weakly-regular".
func (r *Result) CheckConsistency(condition string) error {
	switch condition {
	case "atomic":
		return consistency.CheckAtomic(r.History, nil)
	case "regular":
		return consistency.CheckRegular(r.History, nil)
	case "weakly-regular":
		return consistency.CheckWeaklyRegular(r.History, nil)
	default:
		return fmt.Errorf("workload: unknown condition %q", condition)
	}
}
