// Package workload drives register clusters through seeded, reproducible
// workloads with a controlled number of concurrently active write
// operations ν — the parameter the paper's storage bounds revolve around —
// while the kernel meters per-server storage.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/register"
)

// DefaultStepBudget is the delivery budget a run or interactive operation
// gets when no explicit budget is configured: Spec.MaxSteps defaults to it,
// and so does the per-operation budget of interactive simulator sessions
// (store.ShardSession, shmem.Open's WithStepBudget option).
const DefaultStepBudget = 2000000

// Spec describes a workload.
type Spec struct {
	// Seed makes the run reproducible.
	Seed int64
	// Writes is the total number of write operations to issue.
	Writes int
	// Reads is the total number of read operations to issue.
	Reads int
	// TargetNu caps the number of concurrently active writes; the driver
	// keeps min(TargetNu, len(Writers)) writes in flight while budget
	// remains, producing sustained concurrency at that level.
	TargetNu int
	// ValueBytes is the size of each written value; log2|V| = 8*ValueBytes.
	ValueBytes int
	// Crashes randomly crashes up to this many servers during the run
	// (bounded by the cluster's f).
	Crashes int
	// MaxSteps bounds the total deliveries (default DefaultStepBudget).
	MaxSteps int
	// FaultPlan, when non-nil, is installed on the system before the run:
	// messages may be dropped, delayed, reordered or partitioned and servers
	// crashed/recovered on the plan's schedule (see internal/faults). With a
	// plan installed, losing liveness is a reportable outcome
	// (Result.Quiescent) rather than an error, because scenarios such as
	// crashing f+1 servers exist precisely to demonstrate it.
	FaultPlan *faults.Plan
}

func (s Spec) maxSteps() int {
	if s.MaxSteps > 0 {
		return s.MaxSteps
	}
	return DefaultStepBudget
}

// Validate checks the spec against a cluster.
func (s Spec) Validate(cl *cluster.Cluster) error {
	if s.Writes < 0 || s.Reads < 0 {
		return fmt.Errorf("workload: negative op counts")
	}
	if s.TargetNu < 1 {
		return fmt.Errorf("workload: TargetNu must be >= 1")
	}
	if s.ValueBytes < 8 {
		return fmt.Errorf("workload: ValueBytes must be >= 8 (value uniqueness header)")
	}
	if s.Crashes > cl.F {
		return fmt.Errorf("workload: %d crashes exceed cluster f=%d", s.Crashes, cl.F)
	}
	return nil
}

// Result reports what a run produced.
type Result struct {
	// History is the operation history (all ops completed unless the
	// cluster lost liveness, which Run reports as an error).
	History *ioa.History
	// Storage is the kernel's running-maximum storage report.
	Storage ioa.StorageReport
	// PeakActiveWrites is the measured maximum of concurrently active
	// write operations over the run (the execution's ν).
	PeakActiveWrites int
	// Log2V is 8*ValueBytes, for normalizing storage.
	Log2V float64
	// NormalizedTotal is Storage.MaxTotalBits / Log2V — directly comparable
	// to the Figure 1 series.
	NormalizedTotal float64
	// Quiescent reports that the run lost liveness under its fault plan:
	// some operations are still pending and no message can ever become
	// deliverable again. It is always false for fault-free runs, which
	// surface quiescence as an error instead.
	Quiescent bool
	// Faults aggregates the fault events the kernel applied during the run.
	Faults ioa.FaultStats
	// Latencies holds one wall-clock duration per operation that completed
	// within its timeout, in no particular order. Only the live backend
	// fills it — simulator runs have no meaningful per-op wall time — so it
	// is empty for simulator results and excluded from every fingerprint.
	Latencies []time.Duration
}

// Run drives the cluster through the workload.
func Run(cl *cluster.Cluster, spec Spec) (*Result, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(cl); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sys := cl.Sys
	if spec.FaultPlan != nil {
		sys.SetFaultPlan(spec.FaultPlan)
	}

	writesLeft := spec.Writes
	readsLeft := spec.Reads
	crashesLeft := spec.Crashes
	nextVal := uint64(0)
	activeWrites := 0
	peak := 0

	idle := func(id ioa.NodeID) bool {
		n, err := sys.Node(id)
		if err != nil {
			return false
		}
		c, ok := n.(ioa.Client)
		return ok && !c.Busy() && !sys.Crashed(id)
	}

	maxNu := spec.TargetNu
	if maxNu > len(cl.Writers) {
		maxNu = len(cl.Writers)
	}

	var keyBuf []ioa.ChanKey
	for step := 0; step < spec.maxSteps(); step++ {
		// Keep writes saturated at the target concurrency.
		if writesLeft > 0 && activeWrites < maxNu {
			started := false
			for _, w := range cl.Writers {
				if !idle(w) {
					continue
				}
				nextVal++
				v := register.MakeValue(spec.ValueBytes, nextVal)
				if _, err := sys.Invoke(w, ioa.Invocation{Kind: ioa.OpWrite, Value: v}); err != nil {
					return nil, fmt.Errorf("workload: %w", err)
				}
				writesLeft--
				activeWrites++
				if activeWrites > peak {
					peak = activeWrites
				}
				started = true
				break
			}
			if started {
				continue
			}
		}
		// Occasionally start a read.
		if readsLeft > 0 && rng.Intn(8) == 0 {
			for _, r := range cl.Readers {
				if idle(r) {
					if _, err := sys.Invoke(r, ioa.Invocation{Kind: ioa.OpRead}); err != nil {
						return nil, fmt.Errorf("workload: %w", err)
					}
					readsLeft--
					break
				}
			}
		}
		// Occasionally crash a server.
		if crashesLeft > 0 && rng.Intn(1000) == 0 {
			idx := rng.Intn(len(cl.Servers))
			if !sys.Crashed(cl.Servers[idx]) {
				sys.Crash(cl.Servers[idx])
				crashesLeft--
			}
		}
		// Deliver a random message.
		keys := sys.AppendDeliverableChannels(keyBuf[:0])
		keyBuf = keys
		if len(keys) == 0 {
			// Faults may have made the system only temporarily idle; let
			// logical time jump to the next delay expiry, outage boundary
			// or scheduled recovery before concluding anything.
			if sys.FaultForward() {
				continue
			}
			if writesLeft == 0 && readsLeft == 0 {
				break
			}
			// Nothing is deliverable and nothing ever will be unless a new
			// invocation creates messages. If no client is free to invoke,
			// the run is stuck; fall through to the drain, which reports
			// quiescence.
			canWrite := writesLeft > 0 && activeWrites < maxNu && anyIdle(cl.Writers, idle)
			canRead := readsLeft > 0 && anyIdle(cl.Readers, idle)
			if !canWrite && !canRead {
				break
			}
			continue
		}
		k := keys[rng.Intn(len(keys))]
		if err := sys.Deliver(k.From, k.To); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		// Track write completions.
		activeWrites = (spec.Writes - writesLeft) - sys.History().CompletedWrites()
	}
	// Let everything settle.
	quiescent := false
	if err := sys.FairRun(spec.maxSteps(), ioa.AllOpsDone); err != nil {
		if errors.Is(err, ioa.ErrQuiescent) && spec.FaultPlan != nil {
			// Under a fault plan, lost liveness is a scenario verdict, not
			// a driver failure: the partial history is still checkable.
			quiescent = true
		} else {
			return nil, fmt.Errorf("workload: drain: %w", err)
		}
	}
	log2V := float64(8 * spec.ValueBytes)
	rep := sys.Storage()
	return &Result{
		History:          sys.History(),
		Storage:          rep,
		PeakActiveWrites: peak,
		Log2V:            log2V,
		NormalizedTotal:  float64(rep.MaxTotalBits) / log2V,
		Quiescent:        quiescent,
		Faults:           sys.FaultStats(),
	}, nil
}

// anyIdle reports whether any of the clients can accept an invocation.
func anyIdle(ids []ioa.NodeID, idle func(ioa.NodeID) bool) bool {
	for _, id := range ids {
		if idle(id) {
			return true
		}
	}
	return false
}

// CheckConsistency verifies the result's history against the named
// condition: "atomic", "regular" or "weakly-regular".
func (r *Result) CheckConsistency(condition string) error {
	switch condition {
	case "atomic":
		return consistency.CheckAtomic(r.History, nil)
	case "regular":
		return consistency.CheckRegular(r.History, nil)
	case "weakly-regular":
		return consistency.CheckWeaklyRegular(r.History, nil)
	default:
		return fmt.Errorf("workload: unknown condition %q", condition)
	}
}
