package workload

import (
	"sync"
	"sync/atomic"
)

// Quiescer coordinates periodic global drains across the concurrent batch
// drivers of the wall-clock backends (live, net). Every SyncOps issued
// operations, each active driver drains its in-flight window and parks here
// until every other active driver has done the same; only then does anyone
// issue again. At the instant the barrier releases, nothing is in flight, so
// every operation issued before the sync responds before any operation
// issued after it invokes — a clean cut in the recorded history.
//
// This is what makes streaming verification's memory bound hold by
// construction rather than by scheduling luck: an online windowed checker
// can only retire its window at clean cuts, and saturated pipelined clients
// may never leave a natural global idle moment (their idle gaps must align
// in real time). Sync points trade a bounded throughput cost — the drains —
// for a guaranteed cut cadence, so the checker's peak window is bounded by
// roughly SyncOps plus the in-flight population, independent of the run
// length.
//
// Usage: each driver calls Tick for every operation it issues, checks Due
// against the last round it synced at before issuing the next, drains and
// calls Await when a new round is due, and calls Leave exactly once when it
// finishes (so stragglers don't wait for a driver that will never arrive).
type Quiescer struct {
	syncOps int64
	issued  atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	members int
	arrived int
	maxReq  int64 // highest round any arrived driver is waiting on
	round   int64 // latest released round
}

// NewQuiescer creates a Quiescer for `members` drivers syncing every
// syncOps issued operations. It returns nil when syncOps or members is not
// positive (no coordination; callers treat a nil Quiescer as disabled).
func NewQuiescer(syncOps int64, members int) *Quiescer {
	if syncOps <= 0 || members <= 0 {
		return nil
	}
	q := &Quiescer{syncOps: syncOps, members: members}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Tick counts one issued operation. Nil-safe.
func (q *Quiescer) Tick() {
	if q != nil {
		q.issued.Add(1)
	}
}

// Due reports the sync round the global issue counter has reached. A driver
// whose last synced round is behind Due must drain and Await. Nil-safe
// (always round 0, which is never due: drivers start at round 0).
func (q *Quiescer) Due() int64 {
	if q == nil {
		return 0
	}
	return q.issued.Load() / q.syncOps
}

// Await parks the calling driver — whose in-flight window must already be
// drained — until every active driver has arrived for round r. The last
// arrival releases everyone. Drivers may request different rounds when the
// counter advanced between their checks; the release covers the highest
// requested round, which satisfies every earlier one too.
func (q *Quiescer) Await(r int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.round >= r {
		return
	}
	q.arrived++
	if r > q.maxReq {
		q.maxReq = r
	}
	if q.arrived >= q.members {
		q.release()
		return
	}
	for q.round < r {
		q.cond.Wait()
	}
}

// Leave removes a finished driver from the barrier. If the remaining
// arrivals were only waiting on it, the pending round releases. Nil-safe;
// call exactly once per driver, on every exit path.
func (q *Quiescer) Leave() {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.members--
	if q.arrived > 0 && q.arrived >= q.members {
		q.release()
	}
}

// release opens the highest requested round and wakes the waiters. Callers
// hold q.mu.
func (q *Quiescer) release() {
	q.round = q.maxReq
	q.arrived = 0
	q.cond.Broadcast()
}
