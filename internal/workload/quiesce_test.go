package workload

import (
	"testing"
	"time"
)

func TestQuiescerDisabled(t *testing.T) {
	if q := NewQuiescer(0, 3); q != nil {
		t.Fatal("syncOps=0 should disable the quiescer")
	}
	if q := NewQuiescer(16, 0); q != nil {
		t.Fatal("members=0 should disable the quiescer")
	}
	var q *Quiescer
	q.Tick() // nil-safe
	q.Leave()
	if r := q.Due(); r != 0 {
		t.Fatalf("nil quiescer Due() = %d, want 0 (never due)", r)
	}
}

func TestQuiescerDue(t *testing.T) {
	q := NewQuiescer(4, 1)
	for i := 0; i < 3; i++ {
		q.Tick()
	}
	if r := q.Due(); r != 0 {
		t.Fatalf("Due() = %d after 3 of 4 ticks, want 0", r)
	}
	q.Tick()
	if r := q.Due(); r != 1 {
		t.Fatalf("Due() = %d after 4 ticks, want 1", r)
	}
	for i := 0; i < 8; i++ {
		q.Tick()
	}
	if r := q.Due(); r != 3 {
		t.Fatalf("Due() = %d after 12 ticks, want 3", r)
	}
}

// The barrier releases only when every member arrives, and the release
// covers the highest requested round (members may observe different rounds
// when the counter advanced between their checks).
func TestQuiescerBarrier(t *testing.T) {
	q := NewQuiescer(1, 2)
	released := make(chan struct{})
	go func() {
		q.Await(1)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("barrier released with one of two members arrived")
	case <-time.After(20 * time.Millisecond):
	}
	q.Await(2) // second arrival, higher round: releases both
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("barrier did not release after all members arrived")
	}
	// Round 2 covered round 1 and itself; both now return immediately.
	done := make(chan struct{})
	go func() {
		q.Await(1)
		q.Await(2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("released rounds should not block")
	}
}

// A finished driver leaving the barrier must release stragglers that were
// only waiting on it — otherwise they would wait forever on a driver that
// will never arrive.
func TestQuiescerLeaveReleases(t *testing.T) {
	q := NewQuiescer(1, 2)
	released := make(chan struct{})
	go func() {
		q.Await(1)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("barrier released before the other member left")
	case <-time.After(20 * time.Millisecond):
	}
	q.Leave()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Leave did not release the waiting member")
	}
}
