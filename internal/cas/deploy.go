package cas

import (
	"repro/internal/cluster"
	"repro/internal/ioa"
)

// Options configures a CAS deployment.
type Options struct {
	Servers int
	F       int
	K       int // 0 = maximum (N-2f)
	GCDepth int // -1 = plain CAS (no GC), δ >= 0 = CASGC
	Writers int
	Readers int
}

// Deploy builds a CAS register cluster with the conventional node-id layout.
func Deploy(opts Options) (*cluster.Cluster, error) {
	if err := cluster.ValidateRoleCounts("cas", opts.Writers, opts.Readers); err != nil {
		return nil, err
	}
	serverIDs := cluster.ServerIDs(opts.Servers)
	cfg := Config{Servers: serverIDs, F: opts.F, K: opts.K, GCDepth: opts.GCDepth}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := ioa.NewSystem()
	for _, id := range serverIDs {
		if err := sys.AddServer(NewServer(id, opts.GCDepth)); err != nil {
			return nil, err
		}
	}
	writers := cluster.WriterIDs(opts.Writers)
	for _, id := range writers {
		c, err := NewClient(id, RoleWriter, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(c); err != nil {
			return nil, err
		}
	}
	readers := cluster.ReaderIDsAfter(opts.Writers, opts.Readers)
	for _, id := range readers {
		c, err := NewClient(id, RoleReader, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(c); err != nil {
			return nil, err
		}
	}
	return &cluster.Cluster{
		Name:    "cas",
		Sys:     sys,
		Servers: serverIDs,
		Writers: writers,
		Readers: readers,
		F:       opts.F,
		Profile: Profile(cfg),
	}, nil
}
