// Package cas implements a Coded Atomic Storage register in the style of
// Cadambe-Lynch-Medard-Musial [5, 6]: an erasure-coded atomic register whose
// servers store one coded element (shard) per stored version.
//
// The algorithm is the erasure-coded baseline of the paper. Its write
// protocol has three phases — query (value-independent), pre-write
// (value-DEPENDENT: server i receives coded element i), finalize
// (value-independent) — so it satisfies Assumptions 1-3 of Section 6.1 and
// Theorem 6.5 applies to it. Because a server must hold coded elements for
// every write that is concurrent with (or not yet propagated past) the
// latest finalized one, its storage grows linearly with the number of active
// writes ν: this is exactly the ν·N/k·log2|V| behaviour that Figure 1's
// "erasure-coding based algorithms" line depicts and that Theorem 6.5 shows
// is unavoidable for this protocol class.
//
// Quorums have size q = ceil((N+k)/2), so any two quorums intersect in at
// least k servers; liveness under f crashes requires k <= N-2f.
//
// Garbage collection follows CASGC [6]: with GC depth δ >= 0, a server keeps
// records only for tags at or above its (δ+1)-highest finalized tag. Reads
// whose target was collected retry with a fresh query; with at most δ
// concurrent writes the retry terminates.
package cas

import (
	"fmt"
	"sort"

	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/register"
)

// --- messages ---

type queryFinMsg struct{ RID int64 }

type queryFinAck struct {
	RID int64
	Tag register.Tag // responder's highest finalized tag
}

type preWriteMsg struct {
	RID   int64
	Tag   register.Tag
	Shard erasure.Shard
}

// BearsValue implements ioa.ValueBearer: pre-write messages carry coded
// elements of the value.
func (preWriteMsg) BearsValue() bool { return true }

type preWriteAck struct{ RID int64 }

type finalizeMsg struct {
	RID int64
	Tag register.Tag
}

type finalizeAck struct{ RID int64 }

// readFinMsg is the reader's second phase: it finalizes tag at the server
// (tag propagation, needed for atomicity) and asks for the coded element.
type readFinMsg struct {
	RID int64
	Tag register.Tag
}

type readFinAck struct {
	RID      int64
	HasShard bool
	Shard    erasure.Shard
}

// --- server ---

// recordState is a stored version: an optional coded element plus a
// finalized flag.
type recordState struct {
	HasShard bool
	Shard    erasure.Shard
	Fin      bool
}

// Server is a CAS replica.
type Server struct {
	id      ioa.NodeID
	recs    map[register.Tag]recordState
	maxFin  register.Tag
	gcDepth int // -1 = never collect
}

var (
	_ ioa.Node         = (*Server)(nil)
	_ ioa.StorageMeter = (*Server)(nil)
	_ ioa.Digester     = (*Server)(nil)
	_ ioa.Recoverable  = (*Server)(nil)
)

// serverImage is the durable state a CAS replica persists across a crash:
// its version log (tag -> record) and the highest finalized tag. gcDepth is
// configuration, not state, and stays with the node.
type serverImage struct {
	recs   map[register.Tag]recordState
	maxFin register.Tag
}

// NewServer returns a CAS server. gcDepth < 0 disables garbage collection
// (plain CAS); gcDepth = δ keeps the δ+1 highest finalized versions (CASGC).
func NewServer(id ioa.NodeID, gcDepth int) *Server {
	return &Server{id: id, recs: make(map[register.Tag]recordState), gcDepth: gcDepth}
}

// ID implements ioa.Node.
func (s *Server) ID() ioa.NodeID { return s.id }

// Deliver implements ioa.Node.
func (s *Server) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	switch m := msg.(type) {
	case queryFinMsg:
		return reply(from, queryFinAck{RID: m.RID, Tag: s.maxFin})
	case preWriteMsg:
		rec := s.recs[m.Tag]
		if !rec.HasShard {
			rec.HasShard = true
			rec.Shard = m.Shard
			s.recs[m.Tag] = rec
			s.gc()
		}
		return reply(from, preWriteAck{RID: m.RID})
	case finalizeMsg:
		s.finalize(m.Tag)
		return reply(from, finalizeAck{RID: m.RID})
	case readFinMsg:
		s.finalize(m.Tag)
		rec, ok := s.recs[m.Tag]
		ack := readFinAck{RID: m.RID}
		if ok && rec.HasShard {
			ack.HasShard = true
			ack.Shard = rec.Shard
		}
		return reply(from, ack)
	default:
		return ioa.Effects{}
	}
}

func reply(to ioa.NodeID, msg ioa.Message) ioa.Effects {
	return ioa.Effects{Sends: []ioa.Send{{To: to, Msg: msg}}}
}

func (s *Server) finalize(t register.Tag) {
	rec := s.recs[t]
	rec.Fin = true
	s.recs[t] = rec
	if s.maxFin.Less(t) {
		s.maxFin = t
	}
	s.gc()
}

// gc drops records below the (δ+1)-highest finalized tag.
func (s *Server) gc() {
	if s.gcDepth < 0 {
		return
	}
	fins := make([]register.Tag, 0, len(s.recs))
	for t, rec := range s.recs {
		if rec.Fin {
			fins = append(fins, t)
		}
	}
	if len(fins) <= s.gcDepth {
		return
	}
	sort.Slice(fins, func(i, j int) bool { return fins[j].Less(fins[i]) }) // descending
	threshold := fins[s.gcDepth]
	for t := range s.recs {
		if t.Less(threshold) {
			delete(s.recs, t)
		}
	}
}

// StorageBits implements ioa.StorageMeter: per record, a tag, a fin bit and
// the shard payload; plus the maxFin tag.
func (s *Server) StorageBits() int {
	bits := s.maxFin.Bits()
	for t, rec := range s.recs {
		bits += t.Bits() + 1
		if rec.HasShard {
			bits += 8 * len(rec.Shard.Data)
		}
	}
	return bits
}

// VersionsStored returns the number of records currently held; experiments
// use it to relate storage to write concurrency.
func (s *Server) VersionsStored() int { return len(s.recs) }

// StateDigest implements ioa.Digester.
func (s *Server) StateDigest() string {
	tags := make([]register.Tag, 0, len(s.recs))
	for t := range s.recs {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Less(tags[j]) })
	out := fmt.Sprintf("cas|fin=%s", s.maxFin)
	for _, t := range tags {
		rec := s.recs[t]
		out += fmt.Sprintf("|%s:f=%v:h=%v:%x", t, rec.Fin, rec.HasShard, rec.Shard.Data)
	}
	return out
}

// Clone implements ioa.Node.
func (s *Server) Clone() ioa.Node {
	cp := &Server{id: s.id, recs: make(map[register.Tag]recordState, len(s.recs)), maxFin: s.maxFin, gcDepth: s.gcDepth}
	for t, rec := range s.recs {
		cp.recs[t] = rec // shard data immutable, shared
	}
	return cp
}

// Snapshot implements ioa.Recoverable: a copy of the version log plus the
// finalization high-water mark. Shard payloads are immutable and shared.
func (s *Server) Snapshot() ioa.NodeSnapshot {
	img := serverImage{recs: make(map[register.Tag]recordState, len(s.recs)), maxFin: s.maxFin}
	for t, rec := range s.recs {
		img.recs[t] = rec
	}
	return img
}

// Restore implements ioa.Recoverable.
func (s *Server) Restore(snap ioa.NodeSnapshot) error {
	img, ok := snap.(serverImage)
	if !ok {
		return fmt.Errorf("cas: server %d: foreign snapshot %T", s.id, snap)
	}
	s.recs = make(map[register.Tag]recordState, len(img.recs))
	for t, rec := range img.recs {
		s.recs[t] = rec
	}
	s.maxFin = img.maxFin
	return nil
}

// --- configuration ---

// Config configures a CAS deployment.
type Config struct {
	Servers []ioa.NodeID
	F       int
	K       int // code dimension; 0 means the maximum N-2f
	GCDepth int // -1 = never collect, δ >= 0 = CASGC depth
}

// EffectiveK returns the code dimension in use.
func (c Config) EffectiveK() int {
	if c.K > 0 {
		return c.K
	}
	return len(c.Servers) - 2*c.F
}

// QuorumSize returns q = ceil((N+k)/2).
func (c Config) QuorumSize() int {
	n := len(c.Servers)
	return (n + c.EffectiveK() + 1) / 2
}

// Validate checks 1 <= k <= N-2f (which implies quorum liveness under f
// crashes and pairwise quorum intersection of size >= k).
func (c Config) Validate() error {
	n := len(c.Servers)
	if n == 0 {
		return fmt.Errorf("cas: no servers configured")
	}
	k := c.EffectiveK()
	if k < 1 || k > n-2*c.F {
		return fmt.Errorf("cas: need 1 <= k <= N-2f, got N=%d f=%d k=%d", n, c.F, k)
	}
	if c.F < 0 {
		return fmt.Errorf("cas: negative f")
	}
	return nil
}

// Profile returns the Section 6.1 classification of the CAS write protocol.
func Profile(cfg Config) quorum.WriteProfile {
	q := quorum.System{N: len(cfg.Servers), Size: cfg.QuorumSize()}
	return quorum.WriteProfile{
		Algorithm: "cas",
		Phases: []quorum.PhaseSpec{
			{Name: "query", Quorum: q, ValueDependent: false},
			{Name: "pre-write", Quorum: q, ValueDependent: true},
			{Name: "finalize", Quorum: q, ValueDependent: false},
		},
		MetadataSeparated: true,
		BlackBox:          true,
	}
}

// --- client ---

// Role distinguishes reader and writer clients.
type Role int

// Client roles.
const (
	RoleWriter Role = iota + 1
	RoleReader
)

// phases of the client state machine.
const (
	phaseIdle     = 0
	phaseQuery    = 1
	phasePreWrite = 2
	phaseFinalize = 3
	phaseReadFin  = 2 // reader's shard-collection phase
)

// Client is a CAS reader or writer.
type Client struct {
	id      ioa.NodeID
	role    Role
	servers []ioa.NodeID
	q       int
	code    *erasure.Code

	busy     bool
	phase    int
	rid      int64
	writeVal []byte
	tag      register.Tag
	acks     int
	maxFin   register.Tag
	shards   []erasure.Shard
	readVal  []byte
}

var (
	_ ioa.Client          = (*Client)(nil)
	_ quorum.PhasedWriter = (*Client)(nil)
)

// NewClient returns a CAS client.
func NewClient(id ioa.NodeID, role Role, cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(len(cfg.Servers), cfg.EffectiveK())
	if err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	return &Client{
		id:      id,
		role:    role,
		servers: append([]ioa.NodeID(nil), cfg.Servers...),
		q:       cfg.QuorumSize(),
		code:    code,
	}, nil
}

// ID implements ioa.Node.
func (c *Client) ID() ioa.NodeID { return c.id }

// Busy implements ioa.Client.
func (c *Client) Busy() bool { return c.busy }

// WritePhase implements quorum.PhasedWriter: only the pre-write phase sends
// value-dependent messages.
func (c *Client) WritePhase() (int, bool) {
	if !c.busy || c.role != RoleWriter {
		return 0, false
	}
	return c.phase, c.phase == phasePreWrite
}

// Invoke implements ioa.Client.
func (c *Client) Invoke(inv ioa.Invocation) ioa.Effects {
	c.busy = true
	c.writeVal = inv.Value
	return c.startQuery()
}

func (c *Client) startQuery() ioa.Effects {
	c.phase = phaseQuery
	c.rid++
	c.acks = 0
	c.maxFin = register.Tag{}
	c.shards = nil
	sends := make([]ioa.Send, 0, len(c.servers))
	for _, s := range c.servers {
		sends = append(sends, ioa.Send{To: s, Msg: queryFinMsg{RID: c.rid}})
	}
	return ioa.Effects{Sends: sends}
}

// Deliver implements ioa.Node.
func (c *Client) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	if !c.busy {
		return ioa.Effects{}
	}
	switch m := msg.(type) {
	case queryFinAck:
		if c.phase != phaseQuery || m.RID != c.rid {
			return ioa.Effects{}
		}
		c.acks++
		c.maxFin = register.MaxTag(c.maxFin, m.Tag)
		if c.acks < c.q {
			return ioa.Effects{}
		}
		if c.role == RoleWriter {
			return c.startPreWrite()
		}
		if c.maxFin.IsZero() {
			// No write has ever finalized: the register still holds the
			// initial value.
			return c.respondRead(nil)
		}
		return c.startReadFin()
	case preWriteAck:
		if c.phase != phasePreWrite || m.RID != c.rid {
			return ioa.Effects{}
		}
		c.acks++
		if c.acks < c.q {
			return ioa.Effects{}
		}
		return c.startFinalize()
	case finalizeAck:
		if c.phase != phaseFinalize || m.RID != c.rid {
			return ioa.Effects{}
		}
		c.acks++
		if c.acks < c.q {
			return ioa.Effects{}
		}
		c.busy = false
		c.phase = phaseIdle
		return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpWrite}}
	case readFinAck:
		if c.role != RoleReader || c.phase != phaseReadFin || m.RID != c.rid {
			return ioa.Effects{}
		}
		c.acks++
		if m.HasShard {
			c.shards = append(c.shards, m.Shard)
		}
		if c.acks < c.q {
			return ioa.Effects{}
		}
		if len(c.shards) >= c.code.K() {
			val, err := c.code.Decode(c.shards)
			if err == nil {
				return c.respondRead(val)
			}
		}
		// Too few coded elements survived (possible only when garbage
		// collection raced this read): retry from the query phase.
		return c.startQuery()
	default:
		return ioa.Effects{}
	}
}

func (c *Client) startPreWrite() ioa.Effects {
	c.phase = phasePreWrite
	c.rid++
	c.acks = 0
	c.tag = c.maxFin.Next(c.id)
	sends := make([]ioa.Send, 0, len(c.servers))
	for i, s := range c.servers {
		shard, err := c.code.EncodeOne(c.writeVal, i)
		if err != nil {
			// Cannot happen: i < n by construction. Skip defensively.
			continue
		}
		sends = append(sends, ioa.Send{To: s, Msg: preWriteMsg{RID: c.rid, Tag: c.tag, Shard: shard}})
	}
	return ioa.Effects{Sends: sends}
}

func (c *Client) startFinalize() ioa.Effects {
	c.phase = phaseFinalize
	c.rid++
	c.acks = 0
	sends := make([]ioa.Send, 0, len(c.servers))
	for _, s := range c.servers {
		sends = append(sends, ioa.Send{To: s, Msg: finalizeMsg{RID: c.rid, Tag: c.tag}})
	}
	return ioa.Effects{Sends: sends}
}

func (c *Client) startReadFin() ioa.Effects {
	c.phase = phaseReadFin
	c.rid++
	c.acks = 0
	c.tag = c.maxFin
	c.shards = nil
	sends := make([]ioa.Send, 0, len(c.servers))
	for _, s := range c.servers {
		sends = append(sends, ioa.Send{To: s, Msg: readFinMsg{RID: c.rid, Tag: c.tag}})
	}
	return ioa.Effects{Sends: sends}
}

func (c *Client) respondRead(val []byte) ioa.Effects {
	c.busy = false
	c.phase = phaseIdle
	c.readVal = val
	return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpRead, Value: val}}
}

// Clone implements ioa.Node.
func (c *Client) Clone() ioa.Node {
	cp := *c
	cp.servers = append([]ioa.NodeID(nil), c.servers...)
	cp.shards = append([]erasure.Shard(nil), c.shards...)
	return &cp
}
