package cas

import (
	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/register"
	"repro/internal/wire"
)

// Wire type identifiers for the CAS/CASGC messages (wire's 0x20–0x2f range).
const (
	wireQueryFin    wire.TypeID = 0x20
	wireQueryFinAck wire.TypeID = 0x21
	wirePreWrite    wire.TypeID = 0x22
	wirePreWriteAck wire.TypeID = 0x23
	wireFinalize    wire.TypeID = 0x24
	wireFinalizeAck wire.TypeID = 0x25
	wireReadFin     wire.TypeID = 0x26
	wireReadFinAck  wire.TypeID = 0x27
)

func sampleTag(seed uint64) register.Tag {
	return register.Tag{Seq: int64(seed % 512), Writer: ioa.NodeID(seed % 5)}
}

func sampleShard(seed uint64) erasure.Shard {
	return erasure.Shard{Index: int(seed % 9), Data: register.MakeValue(8+int(seed%16), seed)}
}

func init() {
	wire.Register(wireQueryFin, wire.Codec{
		Name:   "cas.queryFinMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(queryFinMsg).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return queryFinMsg{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return queryFinMsg{RID: int64(seed)} },
	})
	wire.Register(wireQueryFinAck, wire.Codec{
		Name: "cas.queryFinAck",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			a := m.(queryFinAck)
			b.Varint(a.RID)
			b.Tag(a.Tag)
		},
		Decode: func(r *wire.Reader) ioa.Message { return queryFinAck{RID: r.Varint(), Tag: r.Tag()} },
		Sample: func(seed uint64) ioa.Message { return queryFinAck{RID: int64(seed), Tag: sampleTag(seed)} },
	})
	wire.Register(wirePreWrite, wire.Codec{
		Name: "cas.preWriteMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			p := m.(preWriteMsg)
			b.Varint(p.RID)
			b.Tag(p.Tag)
			b.Shard(p.Shard)
		},
		Decode: func(r *wire.Reader) ioa.Message {
			return preWriteMsg{RID: r.Varint(), Tag: r.Tag(), Shard: r.Shard()}
		},
		Sample: func(seed uint64) ioa.Message {
			return preWriteMsg{RID: int64(seed), Tag: sampleTag(seed), Shard: sampleShard(seed)}
		},
	})
	wire.Register(wirePreWriteAck, wire.Codec{
		Name:   "cas.preWriteAck",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(preWriteAck).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return preWriteAck{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return preWriteAck{RID: int64(seed)} },
	})
	wire.Register(wireFinalize, wire.Codec{
		Name: "cas.finalizeMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			f := m.(finalizeMsg)
			b.Varint(f.RID)
			b.Tag(f.Tag)
		},
		Decode: func(r *wire.Reader) ioa.Message { return finalizeMsg{RID: r.Varint(), Tag: r.Tag()} },
		Sample: func(seed uint64) ioa.Message { return finalizeMsg{RID: int64(seed), Tag: sampleTag(seed + 2)} },
	})
	wire.Register(wireFinalizeAck, wire.Codec{
		Name:   "cas.finalizeAck",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(finalizeAck).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return finalizeAck{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return finalizeAck{RID: int64(seed)} },
	})
	wire.Register(wireReadFin, wire.Codec{
		Name: "cas.readFinMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			f := m.(readFinMsg)
			b.Varint(f.RID)
			b.Tag(f.Tag)
		},
		Decode: func(r *wire.Reader) ioa.Message { return readFinMsg{RID: r.Varint(), Tag: r.Tag()} },
		Sample: func(seed uint64) ioa.Message { return readFinMsg{RID: int64(seed), Tag: sampleTag(seed + 3)} },
	})
	wire.Register(wireReadFinAck, wire.Codec{
		Name: "cas.readFinAck",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			a := m.(readFinAck)
			b.Varint(a.RID)
			b.Bool(a.HasShard)
			b.Shard(a.Shard)
		},
		Decode: func(r *wire.Reader) ioa.Message {
			return readFinAck{RID: r.Varint(), HasShard: r.Bool(), Shard: r.Shard()}
		},
		Sample: func(seed uint64) ioa.Message {
			a := readFinAck{RID: int64(seed), HasShard: seed%2 == 0}
			if a.HasShard {
				a.Shard = sampleShard(seed)
			}
			return a
		},
	})
}
