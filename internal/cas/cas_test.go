package cas

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/ioa"
	"repro/internal/register"
)

func TestConfigValidate(t *testing.T) {
	mk := func(n int) []ioa.NodeID {
		out := make([]ioa.NodeID, n)
		for i := range out {
			out[i] = ioa.NodeID(i + 1)
		}
		return out
	}
	tests := []struct {
		n, f, k int
		wantOK  bool
		wantQ   int
	}{
		{5, 1, 0, true, 4},  // k defaults to 3, q = ceil(8/2)
		{5, 2, 0, true, 3},  // k = 1
		{9, 2, 5, true, 7},  // explicit k
		{5, 2, 2, false, 0}, // k > N-2f
		{4, 2, 0, false, 0}, // N-2f = 0
		{0, 0, 0, false, 0},
		{5, -1, 1, false, 0},
	}
	for _, tt := range tests {
		cfg := Config{Servers: mk(tt.n), F: tt.f, K: tt.k}
		err := cfg.Validate()
		if (err == nil) != tt.wantOK {
			t.Errorf("N=%d f=%d k=%d: err=%v wantOK=%v", tt.n, tt.f, tt.k, err, tt.wantOK)
		}
		if err == nil && cfg.QuorumSize() != tt.wantQ {
			t.Errorf("N=%d f=%d k=%d: quorum=%d want %d", tt.n, tt.f, tt.k, cfg.QuorumSize(), tt.wantQ)
		}
	}
}

func TestQuorumIntersectionProperty(t *testing.T) {
	// Two quorums of size ceil((N+k)/2) intersect in >= k servers.
	for n := 3; n <= 15; n++ {
		for f := 0; 2*f+1 <= n; f++ {
			k := n - 2*f
			if k < 1 {
				continue
			}
			q := (n + k + 1) / 2
			if inter := 2*q - n; inter < k {
				t.Errorf("N=%d f=%d k=%d: quorum intersection %d < k", n, f, k, inter)
			}
			if q > n-f {
				t.Errorf("N=%d f=%d k=%d: quorum %d not live under f crashes", n, f, k, q)
			}
		}
	}
}

func deploy(t *testing.T, opts Options) (*ioa.System, []ioa.NodeID, []ioa.NodeID, []ioa.NodeID) {
	t.Helper()
	c, err := Deploy(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c.Sys, c.Servers, c.Writers, c.Readers
}

func TestWriteThenRead(t *testing.T) {
	sys, _, writers, readers := deploy(t, Options{Servers: 7, F: 2, GCDepth: -1, Writers: 1, Readers: 1})
	v := register.MakeValue(64, 1)
	if _, err := sys.RunOp(writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatal(err)
	}
	op, err := sys.RunOp(readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

func TestReadInitial(t *testing.T) {
	sys, _, _, readers := deploy(t, Options{Servers: 5, F: 1, GCDepth: -1, Writers: 1, Readers: 1})
	op, err := sys.RunOp(readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if op.Output != nil {
		t.Fatalf("read %q, want nil", op.Output)
	}
}

func TestLivenessUnderFFailures(t *testing.T) {
	sys, servers, writers, readers := deploy(t, Options{Servers: 7, F: 2, GCDepth: -1, Writers: 1, Readers: 1})
	sys.Crash(servers[1])
	sys.Crash(servers[5])
	v := register.MakeValue(64, 9)
	if _, err := sys.RunOp(writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatalf("write under f crashes: %v", err)
	}
	op, err := sys.RunOp(readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatalf("read under f crashes: %v", err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

func TestShardStorageFraction(t *testing.T) {
	// After one write, each server stores ~ log2|V| / k bits of value data.
	n, f := 9, 2
	k := n - 2*f // 5
	sys, servers, writers, _ := deploy(t, Options{Servers: n, F: f, GCDepth: -1, Writers: 1, Readers: 0})
	valBytes := 1 << 12
	v := register.MakeValue(valBytes, 1)
	if _, err := sys.RunOp(writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatal(err)
	}
	rep := sys.Storage()
	valueBits := 8 * valBytes
	perServer := rep.PerServerMaxBits[servers[0]]
	lo := valueBits/k - 64
	hi := valueBits/k + 512 // metadata + padding allowance
	if perServer < lo || perServer > hi {
		t.Errorf("per-server bits = %d, want ~%d (log|V|/k)", perServer, valueBits/k)
	}
}

// TestStorageGrowsWithNu is the paper's central empirical claim about
// erasure-coded algorithms (Section 2.3): with ν writes concurrently in
// flight, servers hold ~ν+1 coded versions.
func TestStorageGrowsWithNu(t *testing.T) {
	n, f := 9, 2
	for _, nu := range []int{1, 2, 4} {
		c, err := Deploy(Options{Servers: n, F: f, GCDepth: -1, Writers: nu, Readers: 0})
		if err != nil {
			t.Fatal(err)
		}
		sys := c.Sys
		// Start ν writes and stall them all after pre-write by running
		// fairly but stopping before any finalize completes; simplest: run
		// each writer's pre-write fully but never deliver finalize acks.
		// Here we simply invoke all and fair-run to completion, then check
		// peak concurrent versions: with no GC every version persists, so
		// peak = nu (+0 since no prior writes).
		for i := 0; i < nu; i++ {
			v := register.MakeValue(256, uint64(i+1))
			if _, err := sys.Invoke(c.Writers[i], ioa.Invocation{Kind: ioa.OpWrite, Value: v}); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.FairRun(1000000, ioa.AllOpsDone); err != nil {
			t.Fatal(err)
		}
		srv, err := sys.Node(c.Servers[0])
		if err != nil {
			t.Fatal(err)
		}
		got := srv.(*Server).VersionsStored()
		if got != nu {
			t.Errorf("nu=%d: server stores %d versions, want %d", nu, got, nu)
		}
	}
}

func TestGCBoundsVersions(t *testing.T) {
	// With GC depth δ=0 and sequential writes, servers keep one finalized
	// version (plus any in-flight pre-writes).
	sys, servers, writers, readers := deploy(t, Options{Servers: 7, F: 2, GCDepth: 0, Writers: 1, Readers: 1})
	var last []byte
	for i := 0; i < 8; i++ {
		last = register.MakeValue(128, uint64(i+1))
		if _, err := sys.RunOp(writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: last}, 100000); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range servers {
		n, err := sys.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := n.(*Server).VersionsStored(); got > 1 {
			t.Errorf("server %d stores %d versions, want <= 1 with δ=0", id, got)
		}
	}
	op, err := sys.RunOp(readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, last) {
		t.Fatalf("read %q, want %q", op.Output, last)
	}
}

func TestConcurrentRandomScheduleAtomic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c, err := Deploy(Options{Servers: 7, F: 2, GCDepth: -1, Writers: 2, Readers: 2})
		if err != nil {
			t.Fatal(err)
		}
		sys := c.Sys
		rng := rand.New(rand.NewSource(seed))
		crashBudget := 2
		nextVal := uint64(0)
		for step := 0; step < 3000; step++ {
			if rng.Intn(12) == 0 {
				all := append(append([]ioa.NodeID(nil), c.Writers...), c.Readers...)
				id := all[rng.Intn(len(all))]
				n, err := sys.Node(id)
				if err != nil {
					t.Fatal(err)
				}
				cl := n.(ioa.Client)
				if !cl.Busy() && !sys.Crashed(id) {
					inv := ioa.Invocation{Kind: ioa.OpRead}
					if id >= 101 && id < 200 {
						nextVal++
						inv = ioa.Invocation{Kind: ioa.OpWrite, Value: register.MakeValue(32, nextVal)}
					}
					if _, err := sys.Invoke(id, inv); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if crashBudget > 0 && rng.Intn(500) == 0 {
				sys.Crash(c.Servers[rng.Intn(len(c.Servers))])
				crashBudget--
				continue
			}
			keys := sys.DeliverableChannels()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			if err := sys.Deliver(k.From, k.To); err != nil {
				t.Fatal(err)
			}
		}
		_ = sys.FairRun(200000, ioa.AllOpsDone)
		if err := consistency.CheckAtomic(sys.History(), nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := consistency.CheckWeaklyRegular(sys.History(), nil); err != nil {
			t.Fatalf("seed %d (weak regularity): %v", seed, err)
		}
	}
}

func TestProfileSatisfiesTheorem65(t *testing.T) {
	cfg := Config{Servers: cluster.ServerIDs(7), F: 2}
	p := Profile(cfg)
	if err := p.Theorem65Applies(); err != nil {
		t.Errorf("CAS should satisfy Assumptions 1-3: %v", err)
	}
	if got := p.ValueDependentPhases(); got != 1 {
		t.Errorf("%d value-dependent phases, want 1 (pre-write only)", got)
	}
	if len(p.Phases) != 3 {
		t.Errorf("%d phases, want 3", len(p.Phases))
	}
}

func TestWritePhaseIntrospection(t *testing.T) {
	c, err := Deploy(Options{Servers: 5, F: 1, GCDepth: -1, Writers: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := c.Sys
	n, err := sys.Node(c.Writers[0])
	if err != nil {
		t.Fatal(err)
	}
	w := n.(*Client)
	if ph, _ := w.WritePhase(); ph != 0 {
		t.Errorf("idle: phase %d, want 0", ph)
	}
	if _, err := sys.Invoke(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	ph, vd := w.WritePhase()
	if ph != 1 || vd {
		t.Fatalf("query: got (%d,%v), want (1,false)", ph, vd)
	}
	// Deliver queries then a quorum of acks to advance to pre-write.
	for _, s := range c.Servers {
		if err := sys.Deliver(c.Writers[0], s); err != nil {
			t.Fatal(err)
		}
	}
	q := Config{Servers: c.Servers, F: 1}.QuorumSize()
	for _, s := range c.Servers[:q] {
		if err := sys.Deliver(s, c.Writers[0]); err != nil {
			t.Fatal(err)
		}
	}
	ph, vd = w.WritePhase()
	if ph != 2 || !vd {
		t.Fatalf("pre-write: got (%d,%v), want (2,true)", ph, vd)
	}
}
