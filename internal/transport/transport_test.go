package transport

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls until cond holds or the deadline passes — socket delivery
// is asynchronous, so tests assert eventual state.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestSendDeliversFrames(t *testing.T) {
	var mu sync.Mutex
	var got [][]byte
	a, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Serve(func(frame []byte) {
		mu.Lock()
		got = append(got, frame)
		mu.Unlock()
	})
	a.Serve(func([]byte) {})

	for i := 0; i < 100; i++ {
		if err := a.Send(b.Addr(), []byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 100
	})
	// One writer goroutine per pooled connection preserves order on the
	// non-overflow path.
	mu.Lock()
	defer mu.Unlock()
	for i, f := range got {
		if want := fmt.Sprintf("frame-%03d", i); string(f) != want {
			t.Fatalf("frame %d = %q, want %q", i, f, want)
		}
	}
}

// TestConnectionReuse pins the pooling behavior: many sends to one peer
// share a single dialed connection.
func TestConnectionReuse(t *testing.T) {
	var frames atomic.Int64
	a, _ := Listen("127.0.0.1:0", Config{})
	defer a.Close()
	b, _ := Listen("127.0.0.1:0", Config{})
	defer b.Close()
	b.Serve(func([]byte) { frames.Add(1) })
	// Count distinct inbound connections by wrapping Accept is invasive;
	// instead check the sender's pool holds exactly one entry after many
	// sends.
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Addr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return frames.Load() == 50 })
	a.mu.Lock()
	pool := len(a.conns)
	a.mu.Unlock()
	if pool != 1 {
		t.Fatalf("pool holds %d connections to one peer, want 1", pool)
	}
}

// TestSendAfterPeerRestart verifies the redial path: frames sent while the
// peer is down are lost (a real network's behavior), and sends succeed
// again once a new listener owns the address-equivalent endpoint.
func TestSendAfterPeerRestart(t *testing.T) {
	a, _ := Listen("127.0.0.1:0", Config{DialTimeout: 200 * time.Millisecond})
	defer a.Close()
	b, _ := Listen("127.0.0.1:0", Config{})
	var frames atomic.Int64
	b.Serve(func([]byte) { frames.Add(1) })
	addr := b.Addr()
	if err := a.Send(addr, []byte("one")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return frames.Load() == 1 })
	b.Close()
	// The pooled connection eventually observes the close; sends in the
	// interim are dropped or error — both acceptable. Eventually the dial
	// itself fails.
	waitFor(t, 5*time.Second, func() bool { return a.Send(addr, []byte("two")) != nil })
}

func TestCloseIsGracefulAndIdempotent(t *testing.T) {
	a, _ := Listen("127.0.0.1:0", Config{})
	b, _ := Listen("127.0.0.1:0", Config{})
	var handled atomic.Int64
	b.Serve(func([]byte) { handled.Add(1) })
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return handled.Load() == 10 })
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("late")); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip got %q", got)
	}
	// Oversized length prefixes are rejected before allocation.
	var evil bytes.Buffer
	evil.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&evil); err == nil {
		t.Fatal("oversized frame length must be rejected")
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized write must be rejected")
	}
}

// TestOutboxOverflowDoesNotBlock floods one link far past the outbox
// capacity from the sending goroutine; Send may block for backpressure but
// only up to SendTimeout per frame, and with a consumer this slow the
// compound batching keeps the queue draining fast enough that every frame
// still arrives.
func TestOutboxOverflowDoesNotBlock(t *testing.T) {
	a, _ := Listen("127.0.0.1:0", Config{Outbox: 4})
	defer a.Close()
	b, _ := Listen("127.0.0.1:0", Config{})
	defer b.Close()
	var handled atomic.Int64
	b.Serve(func([]byte) {
		time.Sleep(100 * time.Microsecond) // slow consumer
		handled.Add(1)
	})
	const n = 500
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), []byte("burst")); err != nil {
			t.Fatal(err)
		}
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("%d sends took %v; Send must not block on a slow peer", n, took)
	}
	waitFor(t, 10*time.Second, func() bool { return handled.Load() == n })
}
