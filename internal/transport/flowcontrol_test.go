package transport

import (
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBatchedDeliveryPreservesOrder floods one link with numbered frames
// through a tiny outbox. The writer coalesces them into compound envelopes;
// the reader must hand every frame to the handler exactly once, in enqueue
// order — the per-link FIFO that the old spawn-on-overflow fallback broke.
func TestBatchedDeliveryPreservesOrder(t *testing.T) {
	a, err := Listen("127.0.0.1:0", Config{Outbox: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 2000
	var mu sync.Mutex
	var got []uint64
	b.Serve(func(frame []byte) {
		v, _ := binary.Uvarint(frame)
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), binary.AppendUvarint(nil, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("frame %d arrived with sequence %d; per-link FIFO broken", i, v)
		}
	}
	if s := a.Stats(); s.DroppedFull+s.DroppedDead > 0 {
		t.Fatalf("healthy link dropped frames: %+v", s)
	}
}

// TestSendBackpressureDropsAreCounted wedges the socket (a peer that
// accepts and never reads) so the outbox cannot drain: once the TCP buffer
// and the outbox are full, each Send must block only for SendTimeout and
// the abandoned frames must show up in Stats — not vanish, not accumulate
// goroutines.
func TestSendBackpressureDropsAreCounted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			<-stop // hold the connection open, never read
		}
	}()

	a, err := Listen("127.0.0.1:0", Config{Outbox: 1, SendTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	before := runtime.NumGoroutine()
	frame := make([]byte, 1<<20) // large frames fill the kernel buffer fast
	for i := 0; i < 64 && a.Stats().DroppedFull < 3; i++ {
		if err := a.Send(ln.Addr().String(), frame); err != nil {
			t.Fatal(err)
		}
	}
	if s := a.Stats(); s.DroppedFull < 3 {
		t.Fatalf("expected counted backpressure drops on a wedged socket, got %+v", s)
	}
	// The old overflow path parked one goroutine per dropped frame.
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Fatalf("goroutines grew %d -> %d under overflow; drops must not spawn", before, after)
	}
}

// TestDeadConnDropsAreCounted sends into connections the peer kills
// immediately: frames stranded when the writer hits the error must be
// counted as dead-connection drops instead of vanishing.
func TestDeadConnDropsAreCounted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.(*net.TCPConn).SetLinger(0) // RST on close: writes fail fast
			c.Close()
		}
	}()

	a, err := Listen("127.0.0.1:0", Config{Outbox: 4, SendTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	frame := make([]byte, 1<<16)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := a.Stats()
		if s.DroppedDead > 0 {
			return
		}
		_ = a.Send(ln.Addr().String(), frame) // dial errors are fine; keep probing
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no dead-connection drops recorded: %+v", a.Stats())
}
