// Package transport is the connection layer of the real-network execution
// backend: every node automaton owns one Endpoint — a TCP listener plus a
// pool of dialed, reused outbound connections — and exchanges opaque
// length-prefixed frames with its peers. The split mirrors memberlist's
// transport design (a listener feeding a handler, connections cached per
// peer address), scaled down to what the register emulations need:
//
//   - Frames, not streams: one message per frame, 4-byte big-endian length
//     prefix, MaxFrame cap enforced on both sides so a corrupt or hostile
//     length cannot force an unbounded allocation.
//   - Dialed-connection reuse: the first Send to a peer dials it (bounded
//     by DialTimeout) and installs a writer goroutine fed by a bounded
//     outbox; later Sends enqueue onto the same connection. A failed dial
//     or write tears the pooled entry down, so the next Send redials —
//     message loss on a broken connection is surfaced to the layer above
//     as what it is on a real network: silence, bounded by op timeouts.
//   - Non-blocking sends: when an outbox is full the frame is handed to a
//     spawned goroutine instead of blocking the caller. Node loops
//     therefore never deadlock on a cycle of full TCP buffers; the cost is
//     possible reordering, which the unordered-channel model and the
//     simulator's delay rules already allow.
//   - Graceful shutdown: Close stops the accept loop, closes every inbound
//     and outbound connection, and joins every goroutine the endpoint
//     started — no frame handler runs after Close returns.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a frame's payload length (16 MiB). Values in this
// repository's workloads are a few KiB; the cap only exists to keep a
// corrupt length prefix from looking like a multi-gigabyte allocation.
const MaxFrame = 16 << 20

// ErrClosed reports a Send on an endpoint that has been closed.
var ErrClosed = errors.New("transport: endpoint closed")

// Config tunes an Endpoint. The zero value selects the defaults.
type Config struct {
	// DialTimeout bounds an outbound connection attempt (default 2s).
	DialTimeout time.Duration
	// Outbox is the per-connection send queue capacity (default 256).
	// Overflow never blocks the sender: excess frames complete from
	// spawned goroutines.
	Outbox int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Outbox <= 0 {
		c.Outbox = 256
	}
	return c
}

// Endpoint is one node's network identity: a TCP listener whose inbound
// frames are delivered to the handler passed to Serve, and a pool of
// outbound connections reused across Sends. Safe for concurrent use.
type Endpoint struct {
	cfg      Config
	listener net.Listener

	mu      sync.Mutex
	conns   map[string]*outConn // keyed by peer address
	inbound map[net.Conn]struct{}
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// outConn is one pooled outbound connection: a writer goroutine drains the
// outbox so senders only ever block on channel capacity, never on the
// socket itself.
type outConn struct {
	c      net.Conn
	outbox chan []byte
	closed chan struct{} // closed when the writer goroutine exits
}

// Listen opens an endpoint on addr ("127.0.0.1:0" for an ephemeral
// loopback port). The listener is live immediately; inbound frames are
// buffered by the kernel until Serve installs the handler.
func Listen(addr string, cfg Config) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Endpoint{
		cfg:      cfg.withDefaults(),
		listener: ln,
		conns:    make(map[string]*outConn),
		inbound:  make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the endpoint's dialable address (with the resolved port).
func (e *Endpoint) Addr() string { return e.listener.Addr().String() }

// Serve starts the accept loop: every inbound connection gets a reader
// goroutine that decodes length-prefixed frames and calls handler with
// each payload. The handler runs on the reader goroutine; a handler that
// blocks exerts backpressure on that peer's TCP stream only. Serve returns
// immediately.
func (e *Endpoint) Serve(handler func(frame []byte)) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			c, err := e.listener.Accept()
			if err != nil {
				return // listener closed
			}
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				c.Close()
				return
			}
			e.inbound[c] = struct{}{}
			e.mu.Unlock()
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				defer func() {
					e.mu.Lock()
					delete(e.inbound, c)
					e.mu.Unlock()
					c.Close()
				}()
				for {
					frame, err := ReadFrame(c)
					if err != nil {
						return
					}
					select {
					case <-e.done:
						return
					default:
					}
					handler(frame)
				}
			}()
		}
	}()
}

// Send enqueues one frame to the peer at addr, dialing (or redialing) it if
// no healthy pooled connection exists. Send never blocks on the socket: a
// full outbox falls back to a spawned goroutine. Frame delivery is not
// acknowledged — a connection that breaks mid-flight loses frames, exactly
// like a real asynchronous network; protocol-level timeouts own recovery.
func (e *Endpoint) Send(addr string, frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", len(frame), MaxFrame)
	}
	oc, err := e.conn(addr)
	if err != nil {
		return err
	}
	select {
	case oc.outbox <- frame:
		return nil
	case <-oc.closed:
		// Writer died between lookup and enqueue; retry once on a fresh
		// connection, then give up (the message is "lost in the network").
		oc2, err := e.conn(addr)
		if err != nil {
			return err
		}
		select {
		case oc2.outbox <- frame:
			return nil
		default:
		}
		e.spawnEnqueue(oc2, frame)
		return nil
	case <-e.done:
		return ErrClosed
	default:
		e.spawnEnqueue(oc, frame)
		return nil
	}
}

// spawnEnqueue completes an overflowing enqueue off the caller's goroutine.
func (e *Endpoint) spawnEnqueue(oc *outConn, frame []byte) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		select {
		case oc.outbox <- frame:
		case <-oc.closed:
		case <-e.done:
		}
	}()
}

// conn returns the pooled connection to addr, dialing one if needed. A
// pooled entry whose writer has exited is replaced.
func (e *Endpoint) conn(addr string) (*outConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if oc, ok := e.conns[addr]; ok {
		select {
		case <-oc.closed:
			delete(e.conns, addr) // writer dead; fall through to redial
		default:
			e.mu.Unlock()
			return oc, nil
		}
	}
	e.mu.Unlock()

	// Dial outside the lock: a slow peer must not serialize every sender.
	c, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}

	oc := &outConn{c: c, outbox: make(chan []byte, e.cfg.Outbox), closed: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if racing, ok := e.conns[addr]; ok {
		// Another sender dialed concurrently; keep theirs.
		select {
		case <-racing.closed:
			e.conns[addr] = oc
		default:
			e.mu.Unlock()
			c.Close()
			return racing, nil
		}
	} else {
		e.conns[addr] = oc
	}
	e.mu.Unlock()

	e.wg.Add(1)
	go e.writeLoop(oc)
	return oc, nil
}

// writeLoop drains one pooled connection's outbox onto the socket. Any
// write error retires the connection (the pool redials on the next Send).
func (e *Endpoint) writeLoop(oc *outConn) {
	defer e.wg.Done()
	defer close(oc.closed)
	defer oc.c.Close()
	for {
		select {
		case frame := <-oc.outbox:
			if err := WriteFrame(oc.c, frame); err != nil {
				return
			}
		case <-e.done:
			return
		}
	}
}

// Close shuts the endpoint down: no new accepts or dials, every connection
// closed, every reader and writer goroutine joined. Frames already handed
// to handlers have completed when Close returns. Idempotent.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	err := e.listener.Close()
	for _, oc := range e.conns {
		oc.c.Close()
	}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	// One Write per frame section; TCP coalesces, and interleaving is
	// impossible because each connection has a single writer goroutine.
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting lengths over
// MaxFrame before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
