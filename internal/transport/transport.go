// Package transport is the connection layer of the real-network execution
// backend: every node automaton owns one Endpoint — a TCP listener plus a
// pool of dialed, reused outbound connections — and exchanges opaque
// length-prefixed frames with its peers. The split mirrors memberlist's
// transport design (a listener feeding a handler, connections cached per
// peer address), scaled down to what the register emulations need:
//
//   - Frames, not streams: one envelope per socket write, 4-byte big-endian
//     length prefix, MaxFrame cap enforced on both sides so a corrupt or
//     hostile length cannot force an unbounded allocation.
//   - Compound batching: the per-connection writer drains everything queued
//     in its outbox and coalesces it into one compound envelope per write
//     (wire.AppendCompound — memberlist's MakeCompoundMessage idiom), so a
//     burst of small protocol messages costs one syscall, not one each. The
//     reader splits the envelope and hands members to the handler in order.
//   - Dialed-connection reuse: the first Send to a peer dials it (bounded
//     by DialTimeout) and installs a writer goroutine fed by a bounded
//     outbox; later Sends enqueue onto the same connection. A failed dial
//     or write tears the pooled entry down, so the next Send redials —
//     message loss on a broken connection is surfaced to the layer above
//     as what it is on a real network: silence, bounded by op timeouts.
//   - Bounded sends: a full outbox blocks the sender up to SendTimeout —
//     real backpressure — and then drops the frame, counted in Stats. The
//     old behavior (hand overflow to a spawned goroutine) kept node loops
//     unblocked at the cost of unbounded goroutine growth, broken per-link
//     FIFO and uncounted loss; per-link order is now preserved from enqueue
//     to handler for every frame that survives.
//   - Graceful shutdown: Close stops the accept loop, closes every inbound
//     and outbound connection, and joins every goroutine the endpoint
//     started — no frame handler runs after Close returns.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// MaxFrame bounds an envelope's payload length (16 MiB). Values in this
// repository's workloads are a few KiB; the cap only exists to keep a
// corrupt length prefix from looking like a multi-gigabyte allocation.
const MaxFrame = 16 << 20

// maxSendFrame bounds one Send's frame so that even a single-frame raw
// envelope (1 tag byte) stays under MaxFrame.
const maxSendFrame = MaxFrame - 1

// Batching caps: a writer coalesces at most maxBatchFrames queued frames or
// maxBatchBytes of payload into one compound envelope. The byte cap keeps
// latency bounded (a huge batch is one long socket write) and, together
// with envelopeSlack, keeps every envelope under MaxFrame.
const (
	maxBatchFrames = 64
	maxBatchBytes  = 64 << 10
	// envelopeSlack over-estimates the compound header: tag + count +
	// per-member uvarint lengths (≤ 5 bytes each at these sizes).
	envelopeSlack = 8 * (maxBatchFrames + 1)
)

// ErrClosed reports a Send on an endpoint that has been closed.
var ErrClosed = errors.New("transport: endpoint closed")

// Config tunes an Endpoint. The zero value selects the defaults.
type Config struct {
	// DialTimeout bounds an outbound connection attempt (default 2s).
	DialTimeout time.Duration
	// Outbox is the per-connection send queue capacity (default 256).
	Outbox int
	// SendTimeout bounds how long Send may block on a full outbox before
	// the frame is dropped and counted (default 1s). This is the
	// backpressure window: under sustained overload senders slow to the
	// socket's drain rate instead of growing unbounded queues.
	SendTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Outbox <= 0 {
		c.Outbox = 256
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = time.Second
	}
	return c
}

// Stats is a point-in-time snapshot of an endpoint's frame-loss accounting.
// Every frame an endpoint accepted for delivery and then lost is counted in
// exactly one bucket; frames still queued at Close are deliberate shutdown
// discards and are not counted.
type Stats struct {
	// DroppedFull counts frames dropped because a connection's outbox
	// stayed full past SendTimeout.
	DroppedFull uint64
	// DroppedDead counts frames lost to a dead connection: the batch in
	// flight when a write failed, plus frames stranded in the dead
	// writer's outbox.
	DroppedDead uint64
	// Requeued counts frames re-enqueued onto a freshly dialed connection
	// after their original connection died between lookup and enqueue.
	Requeued uint64
	// Malformed counts inbound envelopes the reader could not split;
	// their member frames never reach the handler.
	Malformed uint64
	// FramesSent / BatchesSent / BytesSent count the write side: frames
	// successfully written to a socket, the compound envelopes (flushes)
	// carrying them, and the envelope bytes on the wire. BatchesSent <=
	// FramesSent; their ratio is the achieved coalescing factor.
	FramesSent  uint64
	BatchesSent uint64
	BytesSent   uint64
	// FramesReceived / BytesReceived count the read side: member frames
	// handed to the Serve handler and the envelope bytes they arrived in.
	FramesReceived uint64
	BytesReceived  uint64
	// BatchFrames histograms the frames-per-flush distribution:
	// BatchFrames[i] counts flushes with at most BatchBucketBounds[i]
	// frames. The last bound equals the transport's max batch, so every
	// flush lands in a bucket.
	BatchFrames [len(BatchBucketBounds)]uint64
}

// BatchBucketBounds are the upper bounds of the Stats.BatchFrames buckets.
var BatchBucketBounds = [7]int{1, 2, 4, 8, 16, 32, 64}

// Endpoint is one node's network identity: a TCP listener whose inbound
// frames are delivered to the handler passed to Serve, and a pool of
// outbound connections reused across Sends. Safe for concurrent use.
type Endpoint struct {
	cfg      Config
	listener net.Listener

	mu      sync.Mutex
	conns   map[string]*outConn // keyed by peer address
	inbound map[net.Conn]struct{}
	closed  bool

	droppedFull atomic.Uint64
	droppedDead atomic.Uint64
	requeued    atomic.Uint64
	malformed   atomic.Uint64

	framesSent  atomic.Uint64
	batchesSent atomic.Uint64
	bytesSent   atomic.Uint64
	framesRecv  atomic.Uint64
	bytesRecv   atomic.Uint64
	batchFrames [len(BatchBucketBounds)]atomic.Uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// outConn is one pooled outbound connection: a writer goroutine drains the
// outbox so senders only ever block on channel capacity, never on the
// socket itself.
type outConn struct {
	c      net.Conn
	outbox chan []byte
	closed chan struct{} // closed when the writer goroutine exits
}

// Listen opens an endpoint on addr ("127.0.0.1:0" for an ephemeral
// loopback port). The listener is live immediately; inbound frames are
// buffered by the kernel until Serve installs the handler.
func Listen(addr string, cfg Config) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Endpoint{
		cfg:      cfg.withDefaults(),
		listener: ln,
		conns:    make(map[string]*outConn),
		inbound:  make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the endpoint's dialable address (with the resolved port).
func (e *Endpoint) Addr() string { return e.listener.Addr().String() }

// Stats snapshots the endpoint's frame-loss and throughput counters.
func (e *Endpoint) Stats() Stats {
	s := Stats{
		DroppedFull:    e.droppedFull.Load(),
		DroppedDead:    e.droppedDead.Load(),
		Requeued:       e.requeued.Load(),
		Malformed:      e.malformed.Load(),
		FramesSent:     e.framesSent.Load(),
		BatchesSent:    e.batchesSent.Load(),
		BytesSent:      e.bytesSent.Load(),
		FramesReceived: e.framesRecv.Load(),
		BytesReceived:  e.bytesRecv.Load(),
	}
	for i := range e.batchFrames {
		s.BatchFrames[i] = e.batchFrames[i].Load()
	}
	return s
}

// Serve starts the accept loop: every inbound connection gets a reader
// goroutine that decodes length-prefixed envelopes, splits compound
// envelopes, and calls handler with each member frame in order. The handler
// runs on the reader goroutine; a handler that blocks exerts backpressure
// on that peer's TCP stream only. Serve returns immediately.
func (e *Endpoint) Serve(handler func(frame []byte)) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			c, err := e.listener.Accept()
			if err != nil {
				return // listener closed
			}
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				c.Close()
				return
			}
			e.inbound[c] = struct{}{}
			e.mu.Unlock()
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				defer func() {
					e.mu.Lock()
					delete(e.inbound, c)
					e.mu.Unlock()
					c.Close()
				}()
				for {
					payload, err := ReadFrame(c)
					if err != nil {
						return
					}
					select {
					case <-e.done:
						return
					default:
					}
					frames, err := wire.SplitFrames(payload)
					if err != nil {
						e.malformed.Add(1)
						continue
					}
					e.framesRecv.Add(uint64(len(frames)))
					e.bytesRecv.Add(uint64(len(payload)))
					for _, frame := range frames {
						// Members alias payload, which is freshly
						// allocated per ReadFrame and never reused here,
						// so handing them out without a copy is safe.
						handler(frame)
					}
				}
			}()
		}
	}()
}

// Send enqueues one frame to the peer at addr, dialing (or redialing) it if
// no healthy pooled connection exists. A full outbox blocks the caller up
// to SendTimeout and then drops the frame (counted in Stats) — the frame is
// "lost in the network", exactly like a frame on a connection that breaks
// mid-flight; protocol-level timeouts own recovery. Send returns an error
// only when no connection could be established or the endpoint is closed.
func (e *Endpoint) Send(addr string, frame []byte) error {
	if len(frame) > maxSendFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(frame), maxSendFrame)
	}
	oc, err := e.conn(addr)
	if err != nil {
		return err
	}
	select {
	case oc.outbox <- frame:
		return nil
	case <-oc.closed:
		return e.resend(addr, frame)
	case <-e.done:
		return ErrClosed
	default:
	}
	t := time.NewTimer(e.cfg.SendTimeout)
	defer t.Stop()
	select {
	case oc.outbox <- frame:
		return nil
	case <-oc.closed:
		return e.resend(addr, frame)
	case <-t.C:
		e.droppedFull.Add(1)
		return nil
	case <-e.done:
		return ErrClosed
	}
}

// resend retries one frame on a fresh connection after its original
// connection died between lookup and enqueue. One retry only: a second
// death means the peer is gone and the frame is lost like any other frame
// on a broken connection.
func (e *Endpoint) resend(addr string, frame []byte) error {
	oc, err := e.conn(addr)
	if err != nil {
		return err
	}
	t := time.NewTimer(e.cfg.SendTimeout)
	defer t.Stop()
	select {
	case oc.outbox <- frame:
		e.requeued.Add(1)
		return nil
	case <-oc.closed:
		e.droppedDead.Add(1)
		return nil
	case <-t.C:
		e.droppedFull.Add(1)
		return nil
	case <-e.done:
		return ErrClosed
	}
}

// conn returns the pooled connection to addr, dialing one if needed. A
// pooled entry whose writer has exited is replaced, and any frames a racing
// sender managed to enqueue after the dead writer's final drain are counted
// as dead-connection drops here.
func (e *Endpoint) conn(addr string) (*outConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if oc, ok := e.conns[addr]; ok {
		select {
		case <-oc.closed:
			delete(e.conns, addr) // writer dead; fall through to redial
			e.drainDead(oc)
		default:
			e.mu.Unlock()
			return oc, nil
		}
	}
	e.mu.Unlock()

	// Dial outside the lock: a slow peer must not serialize every sender.
	c, err := net.DialTimeout("tcp", addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}

	oc := &outConn{c: c, outbox: make(chan []byte, e.cfg.Outbox), closed: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if racing, ok := e.conns[addr]; ok {
		// Another sender dialed concurrently; keep theirs.
		select {
		case <-racing.closed:
			e.conns[addr] = oc
			e.drainDead(racing)
		default:
			e.mu.Unlock()
			c.Close()
			return racing, nil
		}
	} else {
		e.conns[addr] = oc
	}
	e.mu.Unlock()

	e.wg.Add(1)
	go e.writeLoop(oc)
	return oc, nil
}

// drainDead empties a dead connection's outbox, counting every stranded
// frame as a dead-connection drop.
func (e *Endpoint) drainDead(oc *outConn) {
	for {
		select {
		case <-oc.outbox:
			e.droppedDead.Add(1)
		default:
			return
		}
	}
}

// writeLoop drains one pooled connection's outbox onto the socket, batching
// everything queued at each wakeup into one compound envelope per write. A
// write error retires the connection: the failed batch and every frame
// still queued are counted as dead-connection drops, and the pool redials
// on the next Send.
func (e *Endpoint) writeLoop(oc *outConn) {
	defer e.wg.Done()
	defer oc.c.Close()
	var (
		buf   []byte   // reusable envelope scratch
		batch [][]byte // frames gathered for the current write
		carry []byte   // frame received but deferred to the next batch
	)
	for {
		batch = batch[:0]
		if carry != nil {
			batch = append(batch, carry)
			carry = nil
		} else {
			select {
			case f := <-oc.outbox:
				batch = append(batch, f)
			case <-e.done:
				close(oc.closed)
				return
			}
		}
		size := len(batch[0])
	gather:
		for len(batch) < maxBatchFrames && size < maxBatchBytes {
			select {
			case f := <-oc.outbox:
				if size+len(f)+envelopeSlack > MaxFrame {
					carry = f // would overflow the envelope; next batch
					break gather
				}
				batch = append(batch, f)
				size += len(f)
			default:
				break gather
			}
		}
		if len(batch) == 1 {
			buf = wire.AppendRaw(buf[:0], batch[0])
		} else {
			buf = wire.AppendCompound(buf[:0], batch)
		}
		if err := WriteFrame(oc.c, buf); err == nil {
			e.framesSent.Add(uint64(len(batch)))
			e.batchesSent.Add(1)
			e.bytesSent.Add(uint64(len(buf)))
			for i, ub := range BatchBucketBounds {
				if len(batch) <= ub {
					e.batchFrames[i].Add(1)
					break
				}
			}
		} else {
			lost := uint64(len(batch))
			if carry != nil {
				lost++
			}
			close(oc.closed)
			for {
				select {
				case <-oc.outbox:
					lost++
				default:
					e.droppedDead.Add(lost)
					return
				}
			}
		}
	}
}

// Close shuts the endpoint down: no new accepts or dials, every connection
// closed, every reader and writer goroutine joined. Frames already handed
// to handlers have completed when Close returns. Idempotent.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	err := e.listener.Close()
	for _, oc := range e.conns {
		oc.c.Close()
	}
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return err
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	// One Write per frame section; TCP coalesces, and interleaving is
	// impossible because each connection has a single writer goroutine.
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting lengths over
// MaxFrame before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
