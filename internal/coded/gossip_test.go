package coded

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/consistency"
	"repro/internal/ioa"
	"repro/internal/register"
)

func TestGossipWriteRead(t *testing.T) {
	c, err := DeployGossip(Options{Servers: 7, F: 2, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := register.MakeValue(128, 1)
	if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 200000); err != nil {
		t.Fatal(err)
	}
	op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

// TestGossipActuallyGossips verifies server-to-server traffic exists: the
// property that moves the register into the Theorem 5.1 class.
func TestGossipActuallyGossips(t *testing.T) {
	c, err := DeployGossip(Options{Servers: 5, F: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := c.Sys
	id, err := sys.Invoke(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: register.MakeValue(32, 1)})
	if err != nil {
		t.Fatal(err)
	}
	sawGossip := false
	st := ioa.NewStepper(sys)
	for i := 0; i < 100000; i++ {
		op, err := sys.History().OpByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if !op.Pending() {
			break
		}
		for _, a := range c.Servers {
			for _, b := range c.Servers {
				if a != b && sys.QueueLen(a, b) > 0 {
					sawGossip = true
				}
			}
		}
		if ok, err := st.Step(); err != nil || !ok {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if !sawGossip {
		t.Fatal("no server-to-server messages observed")
	}
}

// TestGossipPromotesWithoutW2: a server that never receives the writer's W2
// learns the finalization from a peer's gossip.
func TestGossipPromotesWithoutW2(t *testing.T) {
	c, err := DeployGossip(Options{Servers: 3, F: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := c.Sys
	// Block the writer's channel to server 3 entirely; W1/W2 never arrive.
	// Wait: blocking W1 also blocks the shard. Instead block only after W1:
	// deliver W1 to all three servers manually, then freeze writer->s3.
	id, err := sys.Invoke(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: register.MakeValue(32, 5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Servers {
		if err := sys.Deliver(c.Writers[0], s); err != nil {
			t.Fatal(err)
		}
	}
	sys.Freeze(c.Writers[0], c.Servers[2])
	if err := sys.FairRun(200000, ioa.OpDone(id)); err != nil {
		t.Fatal(err)
	}
	// Drain gossip so the note reaches server 3.
	if _, err := sys.DrainServerToServer(10000); err != nil {
		t.Fatal(err)
	}
	n, err := sys.Node(c.Servers[2])
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := n.(*GossipServer)
	if !ok {
		t.Fatal("server type")
	}
	if !gs.inner.fin.Used || gs.inner.fin.Tag.Seq != 1 {
		t.Error("server 3 should have promoted via gossip despite never seeing W2")
	}
}

func TestGossipRegularUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c, err := DeployGossip(Options{Servers: 5, F: 2, Readers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sys := c.Sys
		rng := rand.New(rand.NewSource(seed))
		crashBudget := 2
		nextVal := uint64(0)
		for step := 0; step < 2000; step++ {
			if rng.Intn(10) == 0 {
				id := c.Writers[0]
				if rng.Intn(2) == 0 {
					id = c.Readers[0]
				}
				n, err := sys.Node(id)
				if err != nil {
					t.Fatal(err)
				}
				if cl := n.(ioa.Client); !cl.Busy() && !sys.Crashed(id) {
					inv := ioa.Invocation{Kind: ioa.OpRead}
					if id == c.Writers[0] {
						nextVal++
						inv = ioa.Invocation{Kind: ioa.OpWrite, Value: register.MakeValue(32, nextVal)}
					}
					if _, err := sys.Invoke(id, inv); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if crashBudget > 0 && rng.Intn(500) == 0 {
				sys.Crash(c.Servers[rng.Intn(len(c.Servers))])
				crashBudget--
				continue
			}
			keys := sys.DeliverableChannels()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			if err := sys.Deliver(k.From, k.To); err != nil {
				t.Fatal(err)
			}
		}
		_ = sys.FairRun(200000, ioa.AllOpsDone)
		if err := consistency.CheckRegular(sys.History(), nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGossipStorageStillTwoVersions(t *testing.T) {
	// Gossip must not change the storage profile: at most two coded
	// versions per server.
	n, f := 9, 2
	c, err := DeployGossip(Options{Servers: n, F: f, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	valBytes := 1 << 10
	for i := 0; i < 5; i++ {
		v := register.MakeValue(valBytes, uint64(i+1))
		if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 1000000); err != nil {
			t.Fatal(err)
		}
	}
	valueBits := 8 * valBytes
	want := 2 * n * valueBits / (n - 2*f)
	slack := n * 512
	if got := c.Sys.Storage().MaxTotalBits; got > want+slack {
		t.Errorf("gossip register stores %d bits, want <= ~%d", got, want)
	}
}
