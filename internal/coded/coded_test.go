package coded

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/consistency"
	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/register"
)

func TestConfigValidate(t *testing.T) {
	mk := func(n int) []ioa.NodeID {
		out := make([]ioa.NodeID, n)
		for i := range out {
			out[i] = ioa.NodeID(i + 1)
		}
		return out
	}
	if err := (Config{Servers: mk(5), F: 2}).Validate(); err != nil {
		t.Errorf("N=5 f=2 should be valid: %v", err)
	}
	if err := (Config{Servers: mk(4), F: 2}).Validate(); err == nil {
		t.Error("N=4 f=2 leaves k=0, should fail")
	}
	if err := (Config{Servers: nil, F: 0}).Validate(); err == nil {
		t.Error("empty server set should fail")
	}
	if err := (SoloConfig{Servers: mk(3), F: 3}).Validate(); err == nil {
		t.Error("solo with f=N should fail")
	}
}

func TestTwoVersionWriteRead(t *testing.T) {
	c, err := Deploy(Options{Servers: 7, F: 2, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := register.MakeValue(128, 1)
	if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatal(err)
	}
	op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

func TestTwoVersionInitialRead(t *testing.T) {
	c, err := Deploy(Options{Servers: 5, F: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if op.Output != nil {
		t.Fatalf("read %q, want nil (initial)", op.Output)
	}
}

func TestTwoVersionLivenessUnderCrashes(t *testing.T) {
	c, err := Deploy(Options{Servers: 7, F: 2, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Sys.Crash(c.Servers[0])
	c.Sys.Crash(c.Servers[4])
	var last []byte
	for i := 0; i < 3; i++ {
		last = register.MakeValue(96, uint64(i+1))
		if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: last}, 100000); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, last) {
		t.Fatalf("read %q, want %q", op.Output, last)
	}
}

// TestTwoVersionReadWithSilencedWriter reproduces the valency-probe
// scenario of the Theorem 4.1 proof: mid-write, the writer is silenced and a
// read must still terminate, returning the old or the new value.
func TestTwoVersionReadWithSilencedWriter(t *testing.T) {
	for cut := 1; cut < 40; cut += 3 {
		c, err := Deploy(Options{Servers: 5, F: 1, Readers: 1})
		if err != nil {
			t.Fatal(err)
		}
		v1 := register.MakeValue(64, 1)
		v2 := register.MakeValue(64, 2)
		if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v1}, 100000); err != nil {
			t.Fatal(err)
		}
		// Start the second write and advance exactly `cut` deliveries.
		id2, err := c.Sys.Invoke(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v2})
		if err != nil {
			t.Fatal(err)
		}
		err = c.Sys.FairRun(cut, ioa.OpDone(id2))
		if err != nil && !errors.Is(err, ioa.ErrStepLimit) {
			t.Fatal(err)
		}
		c.Sys.Silence(c.Writers[0])
		op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
		if err != nil {
			t.Fatalf("cut=%d: read must terminate with silenced writer: %v", cut, err)
		}
		if !bytes.Equal(op.Output, v1) && !bytes.Equal(op.Output, v2) {
			t.Fatalf("cut=%d: read %q, want v1 or v2", cut, op.Output)
		}
	}
}

func TestTwoVersionRegularUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c, err := Deploy(Options{Servers: 5, F: 2, Readers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sys := c.Sys
		rng := rand.New(rand.NewSource(seed))
		crashBudget := 2
		nextVal := uint64(0)
		for step := 0; step < 2500; step++ {
			if rng.Intn(10) == 0 {
				id := c.Writers[0]
				if rng.Intn(2) == 0 {
					id = c.Readers[0]
				}
				n, err := sys.Node(id)
				if err != nil {
					t.Fatal(err)
				}
				cl := n.(ioa.Client)
				if !cl.Busy() && !sys.Crashed(id) {
					inv := ioa.Invocation{Kind: ioa.OpRead}
					if id == c.Writers[0] {
						nextVal++
						inv = ioa.Invocation{Kind: ioa.OpWrite, Value: register.MakeValue(32, nextVal)}
					}
					if _, err := sys.Invoke(id, inv); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			if crashBudget > 0 && rng.Intn(600) == 0 {
				sys.Crash(c.Servers[rng.Intn(len(c.Servers))])
				crashBudget--
				continue
			}
			keys := sys.DeliverableChannels()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			if err := sys.Deliver(k.From, k.To); err != nil {
				t.Fatal(err)
			}
		}
		_ = sys.FairRun(200000, ioa.AllOpsDone)
		if err := consistency.CheckRegular(sys.History(), nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTwoVersionStorageBound checks the headline property: total storage is
// ~2N/(N-2f)·log2|V| bits, independent of how many writes are performed.
func TestTwoVersionStorageBound(t *testing.T) {
	n, f := 9, 2
	k := n - 2*f // 5
	c, err := Deploy(Options{Servers: n, F: f, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	valBytes := 1 << 12
	for i := 0; i < 6; i++ {
		v := register.MakeValue(valBytes, uint64(i+1))
		if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 1000000); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.Sys.Storage()
	valueBits := 8 * valBytes
	want := 2 * n * valueBits / k
	slack := n * 512 // tags + shard padding
	if rep.MaxTotalBits > want+slack {
		t.Errorf("total storage %d bits exceeds 2N/(N-2f)·log|V| = %d (+%d slack)", rep.MaxTotalBits, want, slack)
	}
	if rep.MaxTotalBits < want/2 {
		t.Errorf("total storage %d bits implausibly small (want ~%d)", rep.MaxTotalBits, want)
	}
}

func TestTwoVersionProfile(t *testing.T) {
	cfg := Config{Servers: []ioa.NodeID{1, 2, 3, 4, 5}, F: 2}
	p := Profile(cfg)
	if err := p.Theorem65Applies(); err != nil {
		t.Errorf("two-version register should satisfy Assumptions 1-3: %v", err)
	}
	if p.ValueDependentPhases() != 1 {
		t.Errorf("want exactly 1 value-dependent phase")
	}
}

// --- Solo register (Theorem B.1 tightness) ---

func TestSoloMeetsSingletonBound(t *testing.T) {
	// In a failure-free solo execution the Solo register's steady-state
	// storage is N/(N-f)·log2|V| + metadata: the Theorem B.1 bound is tight.
	n, f := 8, 2
	c, err := DeploySolo(SoloOptions{Servers: n, F: f, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	valBytes := 1 << 12
	v := register.MakeValue(valBytes, 1)
	if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatal(err)
	}
	op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
	rep := c.Sys.Storage()
	valueBits := 8 * valBytes
	singleton := n * valueBits / (n - f)
	slack := n * 256
	if rep.CurrentTotalBits > singleton+slack {
		t.Errorf("solo storage %d bits, want ~Singleton bound %d", rep.CurrentTotalBits, singleton)
	}
	if rep.CurrentTotalBits < singleton {
		t.Errorf("solo storage %d bits below the Singleton bound %d: impossible", rep.CurrentTotalBits, singleton)
	}
}

func TestSoloSurvivesInitialFailures(t *testing.T) {
	// The Theorem B.1 execution family: f servers fail at the beginning,
	// then a write and a read happen. The Solo register handles exactly
	// this.
	n, f := 8, 2
	c, err := DeploySolo(SoloOptions{Servers: n, F: f, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Sys.Crash(c.Servers[0])
	c.Sys.Crash(c.Servers[5])
	v := register.MakeValue(64, 7)
	if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatal(err)
	}
	op, err := c.Sys.RunOp(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op.Output, v) {
		t.Fatalf("read %q, want %q", op.Output, v)
	}
}

func TestSoloDiesOnLateFailure(t *testing.T) {
	// The flip side: k = N-f cannot tolerate asynchrony plus a failure
	// AFTER the write. Delay the write's coded elements to two servers
	// indefinitely (legal in an asynchronous network), so the write
	// completes with exactly k = N-f shards placed; then crash one holder.
	// Only k-1 shards remain reachable and the read retries forever. This
	// is why the Singleton bound is unattainable by a fault-tolerant
	// emulation and why the paper's stronger bounds exist.
	n, f := 8, 2
	c, err := DeploySolo(SoloOptions{Servers: n, F: f, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Sys.Freeze(c.Writers[0], c.Servers[6])
	c.Sys.Freeze(c.Writers[0], c.Servers[7])
	v := register.MakeValue(64, 7)
	if _, err := c.Sys.RunOp(c.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, 100000); err != nil {
		t.Fatal(err)
	}
	c.Sys.Crash(c.Servers[0]) // holds one of the exactly-k placed shards
	id, err := c.Sys.Invoke(c.Readers[0], ioa.Invocation{Kind: ioa.OpRead})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Sys.FairRun(20000, ioa.OpDone(id))
	if err == nil {
		t.Fatal("read should not terminate: only k-1 shards are reachable")
	}
}

func TestSoloProfileSinglePhase(t *testing.T) {
	cfg := SoloConfig{Servers: []ioa.NodeID{1, 2, 3}, F: 1}
	p := SoloProfile(cfg)
	if err := p.Theorem65Applies(); err != nil {
		t.Errorf("solo register should satisfy Assumptions 1-3: %v", err)
	}
	if len(p.Phases) != 1 {
		t.Errorf("solo register should have exactly one phase")
	}
}

func TestServerDigests(t *testing.T) {
	s := NewServer(1)
	d0 := s.StateDigest()
	s.Deliver(100, w1Msg{RID: 1, Tag: register.Tag{Seq: 1, Writer: 100}, Shard: shardOf(t, []byte("x"))})
	d1 := s.StateDigest()
	if d0 == d1 {
		t.Error("digest must change after W1")
	}
	s.Deliver(100, w2Msg{RID: 2, Tag: register.Tag{Seq: 1, Writer: 100}})
	d2 := s.StateDigest()
	if d1 == d2 {
		t.Error("digest must change after W2 promotion")
	}
	solo := NewSoloServer(2)
	e0 := solo.StateDigest()
	solo.Deliver(100, w1Msg{RID: 1, Tag: register.Tag{Seq: 1, Writer: 100}, Shard: shardOf(t, []byte("y"))})
	if solo.StateDigest() == e0 {
		t.Error("solo digest must change after W1")
	}
}

func shardOf(t *testing.T, v []byte) erasure.Shard {
	t.Helper()
	return erasure.Shard{Index: 0, Data: v}
}
