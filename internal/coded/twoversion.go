// Package coded implements erasure-coded single-writer single-reader (SWSR)
// REGULAR registers without server gossip — the exact algorithm class that
// Theorems 4.1 and 5.1 lower-bound.
//
// Two registers are provided:
//
//   - TwoVersion: each server stores at most two coded versions (one
//     finalized, one pending) of an (N, k=N-2f) MDS code. Its total storage
//     is ~2N/(N-2f)·log2|V| bits, INDEPENDENT of write concurrency,
//     illustrating the regime between the paper's lower bound
//     2N/(N-f+2)·log2|V| (Theorem 5.1) and what known algorithms achieve.
//
//   - Solo: each server stores exactly one coded version of an (N, k=N-f)
//     code, meeting the Singleton-style bound N/(N-f)·log2|V| of Theorem B.1
//     with equality (up to metadata) — but only live for reads when the f
//     failures happen before the written value must be recovered, which is
//     precisely why the bound of Theorem B.1 is not achievable by a general
//     algorithm and the paper's stronger bounds exist.
//
// Write protocol of TwoVersion (two phases, one value-dependent):
//
//	W1(t): send coded element i of the value to server i; await N-f acks.
//	W2(t): send finalize(t) metadata; await N-f acks; respond.
//
// Servers promote the pending version to finalized on W2. Because the writer
// is sequential and channels are FIFO, a pending version is always finalized
// before the next write's W1 arrives, so two slots suffice.
//
// Read protocol: query all servers for both slots; await N-f replies; let t*
// be the largest finalized tag observed; decode the largest tag >= t* with
// at least k coded elements among the replies; retry the query if none
// decodes yet (replies can race the write's W1 messages; a retry round after
// the states settle always succeeds — see the package tests).
package coded

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/register"
)

// --- messages ---

type w1Msg struct {
	RID   int64
	Tag   register.Tag
	Shard erasure.Shard
}

// BearsValue implements ioa.ValueBearer: W1 messages carry coded elements of
// the value.
func (w1Msg) BearsValue() bool { return true }

type w1Ack struct{ RID int64 }

type w2Msg struct {
	RID int64
	Tag register.Tag
}

type w2Ack struct{ RID int64 }

type readMsg struct{ RID int64 }

type readAck struct {
	RID       int64
	HasFin    bool
	FinTag    register.Tag
	FinShard  erasure.Shard
	HasPend   bool
	PendTag   register.Tag
	PendShard erasure.Shard
}

// --- server ---

// slot is one stored coded version.
type slot struct {
	Used  bool
	Tag   register.Tag
	Shard erasure.Shard
}

// Server is a two-version coded replica: one finalized and one pending slot.
type Server struct {
	id   ioa.NodeID
	fin  slot
	pend slot
}

var (
	_ ioa.Node         = (*Server)(nil)
	_ ioa.StorageMeter = (*Server)(nil)
	_ ioa.Digester     = (*Server)(nil)
	_ ioa.Recoverable  = (*Server)(nil)
)

// NewServer returns a two-version coded server.
func NewServer(id ioa.NodeID) *Server { return &Server{id: id} }

// ID implements ioa.Node.
func (s *Server) ID() ioa.NodeID { return s.id }

// Deliver implements ioa.Node.
func (s *Server) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	switch m := msg.(type) {
	case w1Msg:
		if !s.pend.Used || s.pend.Tag.Less(m.Tag) {
			s.pend = slot{Used: true, Tag: m.Tag, Shard: m.Shard}
		}
		return reply(from, w1Ack{RID: m.RID})
	case w2Msg:
		if s.pend.Used && s.pend.Tag.Equal(m.Tag) {
			s.fin = s.pend
			s.pend = slot{}
		}
		return reply(from, w2Ack{RID: m.RID})
	case readMsg:
		ack := readAck{RID: m.RID}
		if s.fin.Used {
			ack.HasFin = true
			ack.FinTag = s.fin.Tag
			ack.FinShard = s.fin.Shard
		}
		if s.pend.Used {
			ack.HasPend = true
			ack.PendTag = s.pend.Tag
			ack.PendShard = s.pend.Shard
		}
		return reply(from, ack)
	default:
		return ioa.Effects{}
	}
}

func reply(to ioa.NodeID, msg ioa.Message) ioa.Effects {
	return ioa.Effects{Sends: []ioa.Send{{To: to, Msg: msg}}}
}

// StorageBits implements ioa.StorageMeter: at most two coded elements plus
// their tags.
func (s *Server) StorageBits() int {
	bits := 0
	for _, sl := range []slot{s.fin, s.pend} {
		if sl.Used {
			bits += sl.Tag.Bits() + 8*len(sl.Shard.Data)
		}
	}
	return bits
}

// StateDigest implements ioa.Digester.
func (s *Server) StateDigest() string {
	return fmt.Sprintf("2v|f=%v:%s:%x|p=%v:%s:%x",
		s.fin.Used, s.fin.Tag, s.fin.Shard.Data,
		s.pend.Used, s.pend.Tag, s.pend.Shard.Data)
}

// Clone implements ioa.Node.
func (s *Server) Clone() ioa.Node { cp := *s; return &cp }

// serverImage is the durable state a two-version replica persists across a
// crash: its finalized and pending slots (shard payloads immutable, shared).
type serverImage struct {
	fin, pend slot
}

// Snapshot implements ioa.Recoverable.
func (s *Server) Snapshot() ioa.NodeSnapshot {
	return serverImage{fin: s.fin, pend: s.pend}
}

// Restore implements ioa.Recoverable.
func (s *Server) Restore(snap ioa.NodeSnapshot) error {
	img, ok := snap.(serverImage)
	if !ok {
		return fmt.Errorf("coded: server %d: foreign snapshot %T", s.id, snap)
	}
	s.fin = img.fin
	s.pend = img.pend
	return nil
}

// --- configuration ---

// Config configures a TwoVersion deployment.
type Config struct {
	Servers []ioa.NodeID
	F       int
}

// K returns the code dimension N-2f.
func (c Config) K() int { return len(c.Servers) - 2*c.F }

// Quorum returns the response-quorum size N-f.
func (c Config) Quorum() int { return len(c.Servers) - c.F }

// Validate checks N >= 2f+1 (so k >= 1).
func (c Config) Validate() error {
	if len(c.Servers) == 0 {
		return fmt.Errorf("coded: no servers configured")
	}
	if c.F < 0 || c.K() < 1 {
		return fmt.Errorf("coded: need N >= 2f+1, got N=%d f=%d", len(c.Servers), c.F)
	}
	return nil
}

// Profile returns the Section 6.1 classification of the TwoVersion write
// protocol: two phases, only W1 value-dependent.
func Profile(cfg Config) quorum.WriteProfile {
	q := quorum.System{N: len(cfg.Servers), Size: cfg.Quorum()}
	return quorum.WriteProfile{
		Algorithm: "coded-two-version",
		Phases: []quorum.PhaseSpec{
			{Name: "w1-shards", Quorum: q, ValueDependent: true},
			{Name: "w2-finalize", Quorum: q, ValueDependent: false},
		},
		MetadataSeparated: true,
		BlackBox:          true,
	}
}

// --- writer ---

// writer phases.
const (
	phaseIdle = 0
	phaseW1   = 1
	phaseW2   = 2
)

// Writer is the sequential SWSR writer.
type Writer struct {
	id      ioa.NodeID
	servers []ioa.NodeID
	q       int
	code    *erasure.Code

	busy  bool
	phase int
	rid   int64
	seq   int64
	tag   register.Tag
	value []byte
	acks  int
}

var (
	_ ioa.Client          = (*Writer)(nil)
	_ quorum.PhasedWriter = (*Writer)(nil)
)

// NewWriter returns the (single) writer client.
func NewWriter(id ioa.NodeID, cfg Config) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(len(cfg.Servers), cfg.K())
	if err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	return &Writer{id: id, servers: append([]ioa.NodeID(nil), cfg.Servers...), q: cfg.Quorum(), code: code}, nil
}

// ID implements ioa.Node.
func (w *Writer) ID() ioa.NodeID { return w.id }

// Busy implements ioa.Client.
func (w *Writer) Busy() bool { return w.busy }

// WritePhase implements quorum.PhasedWriter.
func (w *Writer) WritePhase() (int, bool) {
	if !w.busy {
		return 0, false
	}
	return w.phase, w.phase == phaseW1
}

// Invoke implements ioa.Client.
func (w *Writer) Invoke(inv ioa.Invocation) ioa.Effects {
	w.busy = true
	w.phase = phaseW1
	w.rid++
	w.acks = 0
	w.seq++
	w.tag = register.Tag{Seq: w.seq, Writer: w.id}
	w.value = inv.Value
	sends := make([]ioa.Send, 0, len(w.servers))
	for i, s := range w.servers {
		shard, err := w.code.EncodeOne(w.value, i)
		if err != nil {
			continue // unreachable: i < n
		}
		sends = append(sends, ioa.Send{To: s, Msg: w1Msg{RID: w.rid, Tag: w.tag, Shard: shard}})
	}
	return ioa.Effects{Sends: sends}
}

// Deliver implements ioa.Node.
func (w *Writer) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	if !w.busy {
		return ioa.Effects{}
	}
	switch m := msg.(type) {
	case w1Ack:
		if w.phase != phaseW1 || m.RID != w.rid {
			return ioa.Effects{}
		}
		w.acks++
		if w.acks < w.q {
			return ioa.Effects{}
		}
		w.phase = phaseW2
		w.rid++
		w.acks = 0
		sends := make([]ioa.Send, 0, len(w.servers))
		for _, s := range w.servers {
			sends = append(sends, ioa.Send{To: s, Msg: w2Msg{RID: w.rid, Tag: w.tag}})
		}
		return ioa.Effects{Sends: sends}
	case w2Ack:
		if w.phase != phaseW2 || m.RID != w.rid {
			return ioa.Effects{}
		}
		w.acks++
		if w.acks < w.q {
			return ioa.Effects{}
		}
		w.busy = false
		w.phase = phaseIdle
		return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpWrite}}
	default:
		return ioa.Effects{}
	}
}

// Clone implements ioa.Node.
func (w *Writer) Clone() ioa.Node {
	cp := *w
	cp.servers = append([]ioa.NodeID(nil), w.servers...)
	return &cp
}

// --- reader ---

// Reader is the SWSR reader.
type Reader struct {
	id      ioa.NodeID
	servers []ioa.NodeID
	q       int
	code    *erasure.Code

	busy bool
	rid  int64
	acks int
	// collected replies for the current round
	replies []readAck
}

var _ ioa.Client = (*Reader)(nil)

// NewReader returns a reader client.
func NewReader(id ioa.NodeID, cfg Config) (*Reader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(len(cfg.Servers), cfg.K())
	if err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	return &Reader{id: id, servers: append([]ioa.NodeID(nil), cfg.Servers...), q: cfg.Quorum(), code: code}, nil
}

// ID implements ioa.Node.
func (r *Reader) ID() ioa.NodeID { return r.id }

// Busy implements ioa.Client.
func (r *Reader) Busy() bool { return r.busy }

// Invoke implements ioa.Client.
func (r *Reader) Invoke(inv ioa.Invocation) ioa.Effects {
	r.busy = true
	return r.startRound()
}

func (r *Reader) startRound() ioa.Effects {
	r.rid++
	r.acks = 0
	r.replies = r.replies[:0]
	sends := make([]ioa.Send, 0, len(r.servers))
	for _, s := range r.servers {
		sends = append(sends, ioa.Send{To: s, Msg: readMsg{RID: r.rid}})
	}
	return ioa.Effects{Sends: sends}
}

// Deliver implements ioa.Node.
func (r *Reader) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	if !r.busy {
		return ioa.Effects{}
	}
	m, ok := msg.(readAck)
	if !ok || m.RID != r.rid {
		return ioa.Effects{}
	}
	r.acks++
	r.replies = append(r.replies, m)
	if r.acks < r.q {
		return ioa.Effects{}
	}
	value, decoded := r.tryDecode()
	if !decoded {
		// Replies raced the writer's W1 messages; retry with a fresh round.
		return r.startRound()
	}
	r.busy = false
	return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpRead, Value: value}}
}

// tryDecode returns the decoded value of the largest tag >= t* with at least
// k coded elements among the replies, where t* is the largest finalized tag
// observed. (nil, true) is returned when no write has reached the servers at
// all (initial value).
func (r *Reader) tryDecode() ([]byte, bool) {
	var tstar register.Tag
	sawAny := false
	shardsByTag := make(map[register.Tag][]erasure.Shard)
	for _, rep := range r.replies {
		if rep.HasFin {
			tstar = register.MaxTag(tstar, rep.FinTag)
			sawAny = true
			shardsByTag[rep.FinTag] = append(shardsByTag[rep.FinTag], rep.FinShard)
		}
		if rep.HasPend {
			sawAny = true
			shardsByTag[rep.PendTag] = append(shardsByTag[rep.PendTag], rep.PendShard)
		}
	}
	if !sawAny {
		return nil, true // initial value
	}
	// Candidate tags >= t* with >= k shards, largest first.
	cands := make([]register.Tag, 0, len(shardsByTag))
	for t, shards := range shardsByTag {
		if !t.Less(tstar) && len(shards) >= r.code.K() {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[j].Less(cands[i]) })
	for _, t := range cands {
		if value, err := r.code.Decode(shardsByTag[t]); err == nil {
			return value, true
		}
	}
	return nil, false
}

// Clone implements ioa.Node.
func (r *Reader) Clone() ioa.Node {
	cp := *r
	cp.servers = append([]ioa.NodeID(nil), r.servers...)
	cp.replies = append([]readAck(nil), r.replies...)
	return &cp
}

// --- deployment ---

// Options configures a TwoVersion deployment.
type Options struct {
	Servers int
	F       int
	Readers int
}

// Deploy builds a TwoVersion SWSR cluster (one writer, the given readers).
func Deploy(opts Options) (*cluster.Cluster, error) {
	serverIDs := cluster.ServerIDs(opts.Servers)
	cfg := Config{Servers: serverIDs, F: opts.F}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cluster.ValidateRoleCounts("twoversion", 1, opts.Readers); err != nil {
		return nil, err
	}
	sys := ioa.NewSystem()
	for _, id := range serverIDs {
		if err := sys.AddServer(NewServer(id)); err != nil {
			return nil, err
		}
	}
	writerID := cluster.WriterIDs(1)[0]
	w, err := NewWriter(writerID, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.AddClient(w); err != nil {
		return nil, err
	}
	readers := cluster.ReaderIDs(opts.Readers)
	for _, id := range readers {
		r, err := NewReader(id, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(r); err != nil {
			return nil, err
		}
	}
	return &cluster.Cluster{
		Name:    "coded-two-version",
		Sys:     sys,
		Servers: serverIDs,
		Writers: []ioa.NodeID{writerID},
		Readers: readers,
		F:       opts.F,
		Profile: Profile(cfg),
	}, nil
}
