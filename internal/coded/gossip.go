package coded

import (
	"repro/internal/cluster"
	"repro/internal/ioa"
	"repro/internal/register"
)

// finNote is server-to-server gossip: "tag T is finalized". A server whose
// pending slot holds T promotes it without waiting for the writer's W2.
type finNote struct {
	Tag register.Tag
}

// GossipServer is a two-version coded server that additionally gossips
// finalization notes to its peers. Functionally it converges faster when the
// writer's W2 messages are delayed; architecturally it moves the register
// out of the "no server gossip" class of Theorem 4.1 and into the universal
// class of Theorem 5.1, whose valency probes must first drain the
// server-to-server channels (Definition 5.3). The adversary package runs
// exactly those probes against it.
type GossipServer struct {
	inner Server
	peers []ioa.NodeID
}

var (
	_ ioa.Node         = (*GossipServer)(nil)
	_ ioa.StorageMeter = (*GossipServer)(nil)
	_ ioa.Digester     = (*GossipServer)(nil)
	_ ioa.Recoverable  = (*GossipServer)(nil)
)

// NewGossipServer returns a gossiping two-version server. peers must list
// the other servers.
func NewGossipServer(id ioa.NodeID, peers []ioa.NodeID) *GossipServer {
	return &GossipServer{inner: Server{id: id}, peers: append([]ioa.NodeID(nil), peers...)}
}

// ID implements ioa.Node.
func (g *GossipServer) ID() ioa.NodeID { return g.inner.id }

// Deliver implements ioa.Node.
func (g *GossipServer) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	switch m := msg.(type) {
	case w2Msg:
		eff := g.inner.Deliver(from, msg)
		// Spread the finalization to peers.
		for _, p := range g.peers {
			eff.Sends = append(eff.Sends, ioa.Send{To: p, Msg: finNote{Tag: m.Tag}})
		}
		return eff
	case finNote:
		if g.inner.pend.Used && g.inner.pend.Tag.Equal(m.Tag) {
			g.inner.fin = g.inner.pend
			g.inner.pend = slot{}
		}
		return ioa.Effects{}
	default:
		return g.inner.Deliver(from, msg)
	}
}

// StorageBits implements ioa.StorageMeter.
func (g *GossipServer) StorageBits() int { return g.inner.StorageBits() }

// StateDigest implements ioa.Digester.
func (g *GossipServer) StateDigest() string { return "g" + g.inner.StateDigest() }

// Clone implements ioa.Node.
func (g *GossipServer) Clone() ioa.Node {
	cp := &GossipServer{peers: append([]ioa.NodeID(nil), g.peers...)}
	cp.inner = *(g.inner.Clone().(*Server))
	return cp
}

// Snapshot implements ioa.Recoverable. The peer list is configuration, not
// durable state; only the inner two-version slots are imaged.
func (g *GossipServer) Snapshot() ioa.NodeSnapshot { return g.inner.Snapshot() }

// Restore implements ioa.Recoverable.
func (g *GossipServer) Restore(snap ioa.NodeSnapshot) error { return g.inner.Restore(snap) }

// DeployGossip builds a gossiping two-version SWSR cluster. The client
// protocols are identical to the plain two-version register; only the
// servers differ.
func DeployGossip(opts Options) (*cluster.Cluster, error) {
	serverIDs := cluster.ServerIDs(opts.Servers)
	cfg := Config{Servers: serverIDs, F: opts.F}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cluster.ValidateRoleCounts("twoversion-gossip", 1, opts.Readers); err != nil {
		return nil, err
	}
	sys := ioa.NewSystem()
	for i, id := range serverIDs {
		peers := make([]ioa.NodeID, 0, len(serverIDs)-1)
		for j, p := range serverIDs {
			if j != i {
				peers = append(peers, p)
			}
		}
		if err := sys.AddServer(NewGossipServer(id, peers)); err != nil {
			return nil, err
		}
	}
	writerID := cluster.WriterIDs(1)[0]
	w, err := NewWriter(writerID, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.AddClient(w); err != nil {
		return nil, err
	}
	readers := cluster.ReaderIDs(opts.Readers)
	for _, id := range readers {
		r, err := NewReader(id, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(r); err != nil {
			return nil, err
		}
	}
	profile := Profile(cfg)
	profile.Algorithm = "coded-two-version-gossip"
	return &cluster.Cluster{
		Name:    profile.Algorithm,
		Sys:     sys,
		Servers: serverIDs,
		Writers: []ioa.NodeID{writerID},
		Readers: readers,
		F:       opts.F,
		Profile: profile,
	}, nil
}
