package coded

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/quorum"
	"repro/internal/register"
)

// SoloServer stores exactly one coded element of an (N, k=N-f) code: the
// minimum conceivable storage, N/(N-f)·log2|V| total, matching the Theorem
// B.1 (Singleton) bound with equality up to tag metadata.
//
// The catch — and the paper's point — is that k = N-f makes EVERY surviving
// shard necessary: the register is regular and live only when the f failures
// occur before the value being read was written (the exact execution family
// of the Theorem B.1 proof). A failure after the write, or a read racing a
// write, can leave fewer than N-f matching shards reachable and the read
// retries forever. The package tests demonstrate both sides.
type SoloServer struct {
	id   ioa.NodeID
	cur  slot
	prev slot // previous version, kept only until the next write lands
}

var (
	_ ioa.Node         = (*SoloServer)(nil)
	_ ioa.StorageMeter = (*SoloServer)(nil)
	_ ioa.Digester     = (*SoloServer)(nil)
	_ ioa.Recoverable  = (*SoloServer)(nil)
)

// soloImage is the durable state a Solo replica persists across a crash.
type soloImage struct {
	cur, prev slot
}

// NewSoloServer returns a single-version coded server.
func NewSoloServer(id ioa.NodeID) *SoloServer { return &SoloServer{id: id} }

// ID implements ioa.Node.
func (s *SoloServer) ID() ioa.NodeID { return s.id }

// Deliver implements ioa.Node.
func (s *SoloServer) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	switch m := msg.(type) {
	case w1Msg:
		if !s.cur.Used || s.cur.Tag.Less(m.Tag) {
			s.prev = s.cur
			s.cur = slot{Used: true, Tag: m.Tag, Shard: m.Shard}
		}
		return reply(from, w1Ack{RID: m.RID})
	case readMsg:
		ack := readAck{RID: m.RID}
		if s.cur.Used {
			ack.HasFin = true
			ack.FinTag = s.cur.Tag
			ack.FinShard = s.cur.Shard
		}
		if s.prev.Used {
			ack.HasPend = true
			ack.PendTag = s.prev.Tag
			ack.PendShard = s.prev.Shard
		}
		return ioa.Effects{Sends: []ioa.Send{{To: from, Msg: ack}}}
	default:
		return ioa.Effects{}
	}
}

// StorageBits implements ioa.StorageMeter. Only the current version counts
// as retained storage once the previous is dropped; prev is transiently
// non-empty only between a write's arrival and its overwrite, mirroring the
// "single version" accounting of the classical coding setup.
func (s *SoloServer) StorageBits() int {
	bits := 0
	for _, sl := range []slot{s.cur, s.prev} {
		if sl.Used {
			bits += sl.Tag.Bits() + 8*len(sl.Shard.Data)
		}
	}
	return bits
}

// StateDigest implements ioa.Digester.
func (s *SoloServer) StateDigest() string {
	return fmt.Sprintf("solo|%v:%s:%x|%v:%s:%x",
		s.cur.Used, s.cur.Tag, s.cur.Shard.Data,
		s.prev.Used, s.prev.Tag, s.prev.Shard.Data)
}

// Clone implements ioa.Node.
func (s *SoloServer) Clone() ioa.Node { cp := *s; return &cp }

// Snapshot implements ioa.Recoverable.
func (s *SoloServer) Snapshot() ioa.NodeSnapshot {
	return soloImage{cur: s.cur, prev: s.prev}
}

// Restore implements ioa.Recoverable.
func (s *SoloServer) Restore(snap ioa.NodeSnapshot) error {
	img, ok := snap.(soloImage)
	if !ok {
		return fmt.Errorf("coded: solo server %d: foreign snapshot %T", s.id, snap)
	}
	s.cur = img.cur
	s.prev = img.prev
	return nil
}

// SoloConfig configures a Solo register.
type SoloConfig struct {
	Servers []ioa.NodeID
	F       int
}

// K returns the code dimension N-f.
func (c SoloConfig) K() int { return len(c.Servers) - c.F }

// Validate checks f < N.
func (c SoloConfig) Validate() error {
	if len(c.Servers) == 0 {
		return fmt.Errorf("coded: no servers configured")
	}
	if c.F < 0 || c.K() < 1 {
		return fmt.Errorf("coded: need f < N, got N=%d f=%d", len(c.Servers), c.F)
	}
	return nil
}

// SoloProfile returns the Section 6.1 classification: one value-dependent
// phase.
func SoloProfile(cfg SoloConfig) quorum.WriteProfile {
	q := quorum.System{N: len(cfg.Servers), Size: cfg.K()}
	return quorum.WriteProfile{
		Algorithm: "coded-solo",
		Phases: []quorum.PhaseSpec{
			{Name: "w1-shards", Quorum: q, ValueDependent: true},
		},
		MetadataSeparated: true,
		BlackBox:          true,
	}
}

// SoloWriter writes with a single shard-distribution phase.
type SoloWriter struct {
	id      ioa.NodeID
	servers []ioa.NodeID
	q       int
	code    *erasure.Code

	busy  bool
	rid   int64
	seq   int64
	acks  int
	value []byte
}

var (
	_ ioa.Client          = (*SoloWriter)(nil)
	_ quorum.PhasedWriter = (*SoloWriter)(nil)
)

// NewSoloWriter returns the single writer of a Solo register.
func NewSoloWriter(id ioa.NodeID, cfg SoloConfig) (*SoloWriter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(len(cfg.Servers), cfg.K())
	if err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	return &SoloWriter{id: id, servers: append([]ioa.NodeID(nil), cfg.Servers...), q: cfg.K(), code: code}, nil
}

// ID implements ioa.Node.
func (w *SoloWriter) ID() ioa.NodeID { return w.id }

// Busy implements ioa.Client.
func (w *SoloWriter) Busy() bool { return w.busy }

// WritePhase implements quorum.PhasedWriter.
func (w *SoloWriter) WritePhase() (int, bool) {
	if !w.busy {
		return 0, false
	}
	return 1, true
}

// Invoke implements ioa.Client.
func (w *SoloWriter) Invoke(inv ioa.Invocation) ioa.Effects {
	w.busy = true
	w.rid++
	w.acks = 0
	w.seq++
	w.value = inv.Value
	tag := register.Tag{Seq: w.seq, Writer: w.id}
	sends := make([]ioa.Send, 0, len(w.servers))
	for i, s := range w.servers {
		shard, err := w.code.EncodeOne(w.value, i)
		if err != nil {
			continue // unreachable
		}
		sends = append(sends, ioa.Send{To: s, Msg: w1Msg{RID: w.rid, Tag: tag, Shard: shard}})
	}
	return ioa.Effects{Sends: sends}
}

// Deliver implements ioa.Node.
func (w *SoloWriter) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	if !w.busy {
		return ioa.Effects{}
	}
	m, ok := msg.(w1Ack)
	if !ok || m.RID != w.rid {
		return ioa.Effects{}
	}
	w.acks++
	if w.acks < w.q {
		return ioa.Effects{}
	}
	w.busy = false
	return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpWrite}}
}

// Clone implements ioa.Node.
func (w *SoloWriter) Clone() ioa.Node {
	cp := *w
	cp.servers = append([]ioa.NodeID(nil), w.servers...)
	return &cp
}

// SoloReader reads by collecting one coded element from every reachable
// server; it needs k = N-f matching elements to decode.
type SoloReader struct {
	id      ioa.NodeID
	servers []ioa.NodeID
	q       int
	code    *erasure.Code

	busy    bool
	rid     int64
	acks    int
	replies []readAck
}

var _ ioa.Client = (*SoloReader)(nil)

// NewSoloReader returns a reader client for a Solo register.
func NewSoloReader(id ioa.NodeID, cfg SoloConfig) (*SoloReader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(len(cfg.Servers), cfg.K())
	if err != nil {
		return nil, fmt.Errorf("coded: %w", err)
	}
	return &SoloReader{id: id, servers: append([]ioa.NodeID(nil), cfg.Servers...), q: cfg.K(), code: code}, nil
}

// ID implements ioa.Node.
func (r *SoloReader) ID() ioa.NodeID { return r.id }

// Busy implements ioa.Client.
func (r *SoloReader) Busy() bool { return r.busy }

// Invoke implements ioa.Client.
func (r *SoloReader) Invoke(inv ioa.Invocation) ioa.Effects {
	r.busy = true
	return r.startRound()
}

func (r *SoloReader) startRound() ioa.Effects {
	r.rid++
	r.acks = 0
	r.replies = r.replies[:0]
	sends := make([]ioa.Send, 0, len(r.servers))
	for _, s := range r.servers {
		sends = append(sends, ioa.Send{To: s, Msg: readMsg{RID: r.rid}})
	}
	return ioa.Effects{Sends: sends}
}

// Deliver implements ioa.Node.
func (r *SoloReader) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects {
	if !r.busy {
		return ioa.Effects{}
	}
	m, ok := msg.(readAck)
	if !ok || m.RID != r.rid {
		return ioa.Effects{}
	}
	r.acks++
	r.replies = append(r.replies, m)
	if r.acks < r.q {
		return ioa.Effects{}
	}
	// Group replies by tag (current and previous slots both count).
	shardsByTag := make(map[register.Tag][]erasure.Shard)
	sawAny := false
	for _, rep := range r.replies {
		if rep.HasFin {
			sawAny = true
			shardsByTag[rep.FinTag] = append(shardsByTag[rep.FinTag], rep.FinShard)
		}
		if rep.HasPend {
			sawAny = true
			shardsByTag[rep.PendTag] = append(shardsByTag[rep.PendTag], rep.PendShard)
		}
	}
	if !sawAny {
		r.busy = false
		return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpRead, Value: nil}}
	}
	tags := make([]register.Tag, 0, len(shardsByTag))
	for t := range shardsByTag {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[j].Less(tags[i]) })
	for _, t := range tags {
		if len(shardsByTag[t]) < r.code.K() {
			continue
		}
		if value, err := r.code.Decode(shardsByTag[t]); err == nil {
			r.busy = false
			return ioa.Effects{Response: &ioa.Response{Kind: ioa.OpRead, Value: value}}
		}
	}
	// Not enough matching shards yet: retry.
	return r.startRound()
}

// Clone implements ioa.Node.
func (r *SoloReader) Clone() ioa.Node {
	cp := *r
	cp.servers = append([]ioa.NodeID(nil), r.servers...)
	cp.replies = append([]readAck(nil), r.replies...)
	return &cp
}

// SoloOptions configures a Solo deployment.
type SoloOptions struct {
	Servers int
	F       int
	Readers int
}

// DeploySolo builds a Solo register cluster.
func DeploySolo(opts SoloOptions) (*cluster.Cluster, error) {
	serverIDs := cluster.ServerIDs(opts.Servers)
	cfg := SoloConfig{Servers: serverIDs, F: opts.F}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cluster.ValidateRoleCounts("solo", 1, opts.Readers); err != nil {
		return nil, err
	}
	sys := ioa.NewSystem()
	for _, id := range serverIDs {
		if err := sys.AddServer(NewSoloServer(id)); err != nil {
			return nil, err
		}
	}
	writerID := cluster.WriterIDs(1)[0]
	w, err := NewSoloWriter(writerID, cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.AddClient(w); err != nil {
		return nil, err
	}
	readers := cluster.ReaderIDs(opts.Readers)
	for _, id := range readers {
		r, err := NewSoloReader(id, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddClient(r); err != nil {
			return nil, err
		}
	}
	return &cluster.Cluster{
		Name:    "coded-solo",
		Sys:     sys,
		Servers: serverIDs,
		Writers: []ioa.NodeID{writerID},
		Readers: readers,
		F:       opts.F,
		Profile: SoloProfile(cfg),
	}, nil
}
