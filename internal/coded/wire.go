package coded

import (
	"repro/internal/erasure"
	"repro/internal/ioa"
	"repro/internal/register"
	"repro/internal/wire"
)

// Wire type identifiers for the two-version/solo/gossip coded-register
// messages (wire's 0x30–0x3f range). The solo register reuses w1Msg/readMsg/
// readAck, so these seven codecs cover the whole package.
const (
	wireW1      wire.TypeID = 0x30
	wireW1Ack   wire.TypeID = 0x31
	wireW2      wire.TypeID = 0x32
	wireW2Ack   wire.TypeID = 0x33
	wireRead    wire.TypeID = 0x34
	wireReadAck wire.TypeID = 0x35
	wireFinNote wire.TypeID = 0x36
)

func sampleTag(seed uint64) register.Tag {
	return register.Tag{Seq: int64(seed % 256), Writer: ioa.NodeID(seed % 3)}
}

func sampleShard(seed uint64) erasure.Shard {
	return erasure.Shard{Index: int(seed % 7), Data: register.MakeValue(8+int(seed%12), seed)}
}

func init() {
	wire.Register(wireW1, wire.Codec{
		Name: "coded.w1Msg",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			w := m.(w1Msg)
			b.Varint(w.RID)
			b.Tag(w.Tag)
			b.Shard(w.Shard)
		},
		Decode: func(r *wire.Reader) ioa.Message {
			return w1Msg{RID: r.Varint(), Tag: r.Tag(), Shard: r.Shard()}
		},
		Sample: func(seed uint64) ioa.Message {
			return w1Msg{RID: int64(seed), Tag: sampleTag(seed), Shard: sampleShard(seed)}
		},
	})
	wire.Register(wireW1Ack, wire.Codec{
		Name:   "coded.w1Ack",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(w1Ack).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return w1Ack{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return w1Ack{RID: int64(seed)} },
	})
	wire.Register(wireW2, wire.Codec{
		Name: "coded.w2Msg",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			w := m.(w2Msg)
			b.Varint(w.RID)
			b.Tag(w.Tag)
		},
		Decode: func(r *wire.Reader) ioa.Message { return w2Msg{RID: r.Varint(), Tag: r.Tag()} },
		Sample: func(seed uint64) ioa.Message { return w2Msg{RID: int64(seed), Tag: sampleTag(seed + 1)} },
	})
	wire.Register(wireW2Ack, wire.Codec{
		Name:   "coded.w2Ack",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(w2Ack).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return w2Ack{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return w2Ack{RID: int64(seed)} },
	})
	wire.Register(wireRead, wire.Codec{
		Name:   "coded.readMsg",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Varint(m.(readMsg).RID) },
		Decode: func(r *wire.Reader) ioa.Message { return readMsg{RID: r.Varint()} },
		Sample: func(seed uint64) ioa.Message { return readMsg{RID: int64(seed)} },
	})
	wire.Register(wireReadAck, wire.Codec{
		Name: "coded.readAck",
		Encode: func(b *wire.Buffer, m ioa.Message) {
			a := m.(readAck)
			b.Varint(a.RID)
			b.Bool(a.HasFin)
			b.Tag(a.FinTag)
			b.Shard(a.FinShard)
			b.Bool(a.HasPend)
			b.Tag(a.PendTag)
			b.Shard(a.PendShard)
		},
		Decode: func(r *wire.Reader) ioa.Message {
			return readAck{
				RID:    r.Varint(),
				HasFin: r.Bool(), FinTag: r.Tag(), FinShard: r.Shard(),
				HasPend: r.Bool(), PendTag: r.Tag(), PendShard: r.Shard(),
			}
		},
		Sample: func(seed uint64) ioa.Message {
			a := readAck{RID: int64(seed), HasFin: seed%2 == 0, HasPend: seed%3 == 0}
			if a.HasFin {
				a.FinTag, a.FinShard = sampleTag(seed), sampleShard(seed)
			}
			if a.HasPend {
				a.PendTag, a.PendShard = sampleTag(seed+1), sampleShard(seed+1)
			}
			return a
		},
	})
	wire.Register(wireFinNote, wire.Codec{
		Name:   "coded.finNote",
		Encode: func(b *wire.Buffer, m ioa.Message) { b.Tag(m.(finNote).Tag) },
		Decode: func(r *wire.Reader) ioa.Message { return finNote{Tag: r.Tag()} },
		Sample: func(seed uint64) ioa.Message { return finNote{Tag: sampleTag(seed)} },
	})
}
