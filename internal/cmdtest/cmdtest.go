// Package cmdtest drives a command's run() function end to end for smoke
// tests: it resets the global flag state the commands parse, installs the
// given command line, and captures everything run() writes to stdout.
package cmdtest

import (
	"bytes"
	"flag"
	"io"
	"os"
	"testing"
)

// capture executes run with fresh global flags and the given command line
// (args[0] is the command name), returning the captured stdout and run's
// error.
func capture(t *testing.T, run func() error, args []string) (string, error) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ContinueOnError)
	os.Args = args
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Drain concurrently so a run() that outgrows the OS pipe buffer
	// cannot block on a full pipe nobody is reading.
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	<-done
	return buf.String(), runErr
}

// RunWith executes run under capture and returns the captured stdout. The
// test fails if run returns an error.
func RunWith(t *testing.T, run func() error, args ...string) string {
	t.Helper()
	out, err := capture(t, run, args)
	if err != nil {
		t.Fatalf("run() failed: %v", err)
	}
	return out
}

// RunErr executes run under capture and returns its error instead of
// failing the test — for asserting a command's eager flag/spec validation.
// Stdout is discarded.
func RunErr(t *testing.T, run func() error, args ...string) error {
	t.Helper()
	_, err := capture(t, run, args)
	return err
}
