package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running telemetry HTTP endpoint. Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:9090"; ":0" picks a
// free port) exposing:
//
//	/metrics       Prometheus text exposition of the registry
//	/trace         JSON dump of the tracer's sampled spans + stage summaries
//	/debug/pprof/  the standard runtime profiles
//
// It uses its own mux — nothing is registered on http.DefaultServeMux.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr := reg.Tracer()
		_ = json.NewEncoder(w).Encode(struct {
			Spans  []SpanRecord                 `json:"spans"`
			Stages map[string]HistogramSnapshot `json:"stages"`
		}{tr.Records(), tr.StageSnapshot()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
