package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help", L("shard", "0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) resolves to the same series regardless of label
	// argument order.
	c2 := reg.Counter("c_total", "help", L("shard", "0"))
	c2.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter after aliased inc = %d, want 6", got)
	}
	multi := reg.Counter("m_total", "", L("a", "1"), L("b", "2"))
	multi.Inc()
	if got := reg.Counter("m_total", "", L("b", "2"), L("a", "1")).Value(); got != 1 {
		t.Fatalf("label order should not matter, got %d", got)
	}

	g := reg.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestCounterRaiseIsMonotone(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("r_total", "")
	c.Raise(10)
	c.Raise(7) // must not move backward
	if got := c.Value(); got != 10 {
		t.Fatalf("after Raise(10), Raise(7): %d, want 10", got)
	}
	c.Raise(12)
	if got := c.Value(); got != 12 {
		t.Fatalf("after Raise(12): %d, want 12", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "")
}

// TestHistogramConcurrency hammers one histogram from parallel writers
// while a reader snapshots mid-write; run under -race this doubles as the
// data-race proof, and the final snapshot must account for every observe.
func TestHistogramConcurrency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "", LatencyBuckets())
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			s := h.Snapshot()
			var sum uint64
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Count {
				t.Errorf("snapshot internally inconsistent: bucket sum %d != count %d", sum, s.Count)
				return
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int) {
			defer ww.Done()
			v := float64(seed+1) * 1e-5
			for i := 0; i < perWriter; i++ {
				h.Observe(v)
				v = math.Mod(v*1.7+1e-6, 12)
			}
		}(w)
	}
	ww.Wait()
	close(stopRead)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count %d, want %d", s.Count, writers*perWriter)
	}
}

// TestSnapshotMergeAssociative checks (a⊕b)⊕c == a⊕(b⊕c) for histogram
// snapshots — the property that makes per-shard merge order irrelevant.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(vals ...float64) HistogramSnapshot {
		h := newHistogram(LatencyBuckets())
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a, b, c := mk(1e-5, 2e-3, 7), mk(0.3, 0.4), mk(1e-4, 1e-4, 99, 0.02)

	left := mk()
	for _, s := range []HistogramSnapshot{a, b} {
		if err := left.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := mk()
	for _, s := range []HistogramSnapshot{b, c} {
		if err := bc.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	right := mk()
	for _, s := range []HistogramSnapshot{a, bc} {
		if err := right.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if left.Count != right.Count || math.Abs(left.Sum-right.Sum) > 1e-9 {
		t.Fatalf("merge not associative: count %d vs %d, sum %g vs %g", left.Count, right.Count, left.Sum, right.Sum)
	}
	for i := range left.Counts {
		if left.Counts[i] != right.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, left.Counts[i], right.Counts[i])
		}
	}

	bad := newHistogram([]float64{1, 2}).Snapshot()
	if err := left.Merge(bad); err == nil {
		t.Fatal("merging mismatched bounds should error")
	}
}

func TestQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(1.5) // le=2 bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(7) // le=8 bucket
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %g, want 2", got)
	}
	if got := s.Quantile(0.99); got != 8 {
		t.Fatalf("p99 = %g, want 8", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

// TestWritePrometheusGolden pins the exact exposition-format output for a
// small registry: header lines, label rendering, histogram expansion with
// cumulative buckets, and name-sorted order.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("shmem_ops_total", "ops completed", L("shard", "0"), L("kind", "write")).Add(3)
	reg.Counter("shmem_ops_total", "ops completed", L("shard", "0"), L("kind", "read")).Add(2)
	reg.Gauge("shmem_storage_bits", "per-node storage", L("node", "1")).Set(96)
	h := reg.Histogram("shmem_lat_seconds", "op latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP shmem_lat_seconds op latency
# TYPE shmem_lat_seconds histogram
shmem_lat_seconds_bucket{le="0.01"} 1
shmem_lat_seconds_bucket{le="0.1"} 3
shmem_lat_seconds_bucket{le="+Inf"} 4
shmem_lat_seconds_sum 3.105
shmem_lat_seconds_count 4
# HELP shmem_ops_total ops completed
# TYPE shmem_ops_total counter
shmem_ops_total{kind="read",shard="0"} 2
shmem_ops_total{kind="write",shard="0"} 3
# HELP shmem_storage_bits per-node storage
# TYPE shmem_storage_bits gauge
shmem_storage_bits{node="1"} 96
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestOnScrapeCollector(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("pull", "")
	n := 0.0
	remove := reg.OnScrape(func() { n++; g.Set(n) })
	reg.Gather()
	reg.Gather()
	if got := g.Value(); got != 2 {
		t.Fatalf("collector ran %g times, want 2", got)
	}
	remove()
	reg.Gather()
	if got := g.Value(); got != 2 {
		t.Fatalf("collector ran after remove: %g", got)
	}
}

func TestTracerSamplingAndStages(t *testing.T) {
	tr := NewTracer(1, 8) // sample everything
	sp := tr.Begin("write")
	if sp == nil {
		t.Fatal("every=1 must sample")
	}
	sp.Mark(StageQueue)
	sp.Mark(StageStart)
	sp.Mark(StageEffect)
	sp.Mark(StageComplete)
	sp.End()
	var nilSpan *Span
	nilSpan.Mark(StageQueue) // must not panic
	nilSpan.End()

	recs := tr.Records()
	if len(recs) != 1 || !recs[0].Completed || recs[0].Kind != "write" {
		t.Fatalf("records = %+v", recs)
	}
	for st, ns := range recs[0].StageNs {
		if ns < 0 {
			t.Fatalf("stage %v unmarked", Stage(st))
		}
	}
	st := tr.StageSnapshot()
	if st["complete"].Count != 1 {
		t.Fatalf("complete stage count = %d, want 1", st["complete"].Count)
	}

	tr2 := NewTracer(10, 4)
	sampled := 0
	for i := 0; i < 100; i++ {
		if s := tr2.Begin("read"); s != nil {
			sampled++
			s.End()
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-10 sampling over 100 ops yielded %d spans", sampled)
	}
	if got := len(tr2.Records()); got != 4 {
		t.Fatalf("ring should cap at 4, got %d", got)
	}
}

func TestSummarizeAndLogStats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricOpsCompleted, "", L("shard", "0"), L("kind", "write")).Add(40)
	reg.Counter(MetricOpsCompleted, "", L("shard", "1"), L("kind", "read")).Add(2)
	reg.Counter(MetricOpsFailed, "", L("shard", "0"), L("kind", "write")).Add(1)
	h := reg.Histogram(MetricOpLatency, "", LatencyBuckets(), L("shard", "0"), L("kind", "write"))
	for i := 0; i < 100; i++ {
		h.Observe(2e-3)
	}
	reg.Gauge(MetricStorageMaxBits, "", L("shard", "0"), L("node", "1")).Set(128)
	reg.Gauge(MetricStorageBoundBits, "", L("shard", "0"), L("theorem", "4.1")).Set(170.7)
	reg.Gauge(MetricCheckerLag, "", L("shard", "0")).Set(3)

	s := Summarize(reg)
	if s.Ops != 42 || s.Failed != 1 {
		t.Fatalf("ops=%d failed=%d", s.Ops, s.Failed)
	}
	if s.P50 != 2500*time.Microsecond { // le=2.5ms bucket upper bound
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.MaxStorageBits != 128 || math.Abs(s.BoundBits-170.7) > 1e-9 || s.WindowLag != 3 {
		t.Fatalf("summary = %+v", s)
	}

	var buf strings.Builder
	var mu sync.Mutex
	lw := lockedWriter{mu: &mu, b: &buf}
	stop := LogStats(lw, reg, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "bound 171") || !strings.Contains(out, "window-lag 3") {
		t.Fatalf("stat line missing fields:\n%s", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
