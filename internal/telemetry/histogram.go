package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution: ascending upper bounds plus an
// implicit +Inf bucket. Observe is lock-free (one atomic add per bucket
// touch, a CAS loop for the running sum); Snapshot reads without stopping
// writers. Obtain one from Registry.Histogram.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(bs) {
		panic("telemetry: histogram bounds must be ascending")
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the le bucket
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns a point-in-time copy. Concurrent observes may land
// between bucket reads — each bucket is individually exact and Count is
// recomputed as the sum of the captured buckets, so the snapshot is always
// internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is an immutable capture of a Histogram, mergeable with
// snapshots taken over the same bounds (merge is commutative and
// associative, so per-shard snapshots can be combined in any order).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, ascending.
	Bounds []float64
	// Counts has len(Bounds)+1 entries; the last is the +Inf bucket.
	Counts []uint64
	// Sum is the running total of observed values.
	Sum float64
	// Count is the total number of observations.
	Count uint64
}

// Merge adds o into s. The two snapshots must share identical bounds.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(o.Bounds) != len(s.Bounds) {
		return fmt.Errorf("telemetry: merge of mismatched histograms (%d vs %d buckets)", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("telemetry: merge of mismatched histograms (bound %d: %g vs %g)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
	return nil
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets: it finds
// the bucket holding the target rank and returns that bucket's upper bound
// (midpoint of the first bucket's range; the highest finite bound for the
// +Inf bucket). Resolution is therefore bucket-width; good enough for stat
// lines, not for SLO math.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			if i == 0 {
				return s.Bounds[0] / 2
			}
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets returns the default op-latency bucket bounds in seconds:
// exponential-ish from 50µs to 10s, sized for the live and net runtimes
// (sim-step ops land in the first buckets, cross-network quorum ops in the
// milliseconds, timeouts at the tail).
func LatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}
