// Package telemetry is the live observability layer of the store: a
// dependency-free metrics subsystem (lock-free counters, gauges and
// fixed-bucket histograms, snapshot-on-read and mergeable), a sampled
// op-lifecycle tracer, and an HTTP endpoint serving the Prometheus text
// exposition format plus net/http/pprof.
//
// The paper's headline quantity — per-node storage cost as a function of the
// write concurrency ν — is a time-varying quantity; an end-of-run snapshot
// hides the dynamics (watermark spikes under concurrent writes, retirement
// lag, transport batching). The runtimes sample their storage meters into
// gauges here on a ticker, next to the Theorem 4.1/5.1 bound values for the
// run's shape, so a scrape sees measured-versus-bound slack live (DESIGN.md
// section 14).
//
// Everything hangs off a Registry: metric families are get-or-create by
// (name, labels), writes are single atomic operations on the hot path, and
// reads (Gather, WritePrometheus) take a point-in-time snapshot without
// stopping writers. The package deliberately depends only on the standard
// library, so any layer of the stack can feed it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

const (
	// KindCounter is a monotonically increasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Label is one metric dimension, e.g. {Key: "shard", Value: "0"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is one labeled series inside a family. val holds the counter value
// directly, or a gauge's float64 bit pattern; histograms carry their own
// atomic bucket array.
type metric struct {
	labels []Label // sorted by key
	key    string  // rendered label key, for ordering
	val    atomic.Uint64
	hist   *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histogram families only

	mu      sync.RWMutex
	metrics map[string]*metric
}

// Registry holds metric families and the default tracer. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	cmu        sync.Mutex
	collectors map[int]func()
	nextColl   int

	tracerOnce sync.Once
	tracer     *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:   make(map[string]*family),
		collectors: make(map[int]func()),
	}
}

// Tracer returns the registry's op-lifecycle tracer, creating the default
// one (1-in-64 sampling, 256-span ring) on first use. The HTTP endpoint
// serves its records at /trace.
func (r *Registry) Tracer() *Tracer {
	r.tracerOnce.Do(func() {
		if r.tracer == nil {
			r.tracer = NewTracer(64, 256)
		}
	})
	return r.tracer
}

// OnScrape registers f to run before every Gather/WritePrometheus — the hook
// for collect-on-scrape sources (e.g. lifting transport endpoint stats).
// The returned func deregisters it.
func (r *Registry) OnScrape(f func()) (remove func()) {
	r.cmu.Lock()
	id := r.nextColl
	r.nextColl++
	r.collectors[id] = f
	r.cmu.Unlock()
	return func() {
		r.cmu.Lock()
		delete(r.collectors, id)
		r.cmu.Unlock()
	}
}

func (r *Registry) runCollectors() {
	r.cmu.Lock()
	fs := make([]func(), 0, len(r.collectors))
	for _, f := range r.collectors {
		fs = append(fs, f)
	}
	r.cmu.Unlock()
	for _, f := range fs {
		f()
	}
}

// labelKey renders sorted labels into the family's series key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy, so callers' argument order never matters.
func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// metricFor get-or-creates the series (name, labels) in a family of the
// given kind. Re-registering a name with a different kind is a programming
// error and panics — silently returning the wrong type would corrupt both
// series.
func (r *Registry) metricFor(name, help string, kind Kind, buckets []float64, labels []Label) *metric {
	r.mu.RLock()
	fam := r.families[name]
	r.mu.RUnlock()
	if fam == nil {
		r.mu.Lock()
		if fam = r.families[name]; fam == nil {
			fam = &family{name: name, help: help, kind: kind, buckets: buckets, metrics: make(map[string]*metric)}
			r.families[name] = fam
		}
		r.mu.Unlock()
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, fam.kind, kind))
	}
	ls := sortLabels(labels)
	key := labelKey(ls)
	fam.mu.RLock()
	m := fam.metrics[key]
	fam.mu.RUnlock()
	if m != nil {
		return m
	}
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if m = fam.metrics[key]; m == nil {
		m = &metric{labels: ls, key: key}
		if kind == KindHistogram {
			m.hist = newHistogram(fam.buckets)
		}
		fam.metrics[key] = m
	}
	return m
}

// Counter is a monotone cumulative count. The zero value is invalid; obtain
// one from Registry.Counter.
type Counter struct{ m *metric }

// Counter get-or-creates the counter series (name, labels).
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	return Counter{r.metricFor(name, help, KindCounter, nil, labels)}
}

// Inc adds one.
func (c Counter) Inc() { c.m.val.Add(1) }

// Add adds n.
func (c Counter) Add(n uint64) { c.m.val.Add(n) }

// Raise lifts the counter to v if v is larger — for mirroring an externally
// maintained monotone total (e.g. a transport endpoint's own counters) into
// the registry without double counting. Values below the current count are
// ignored, so the series never moves backward.
func (c Counter) Raise(v uint64) {
	for {
		cur := c.m.val.Load()
		if v <= cur || c.m.val.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current count.
func (c Counter) Value() uint64 { return c.m.val.Load() }

// Gauge is a value that moves both ways, stored as float64 bits in one
// atomic word. The zero value is invalid; obtain one from Registry.Gauge.
type Gauge struct{ m *metric }

// Gauge get-or-creates the gauge series (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{r.metricFor(name, help, KindGauge, nil, labels)}
}

// Set stores v.
func (g Gauge) Set(v float64) { g.m.val.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; lock-free).
func (g Gauge) Add(d float64) {
	for {
		old := g.m.val.Load()
		if g.m.val.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.m.val.Load()) }

// Histogram get-or-creates the histogram series (name, labels) with the
// family's fixed bucket upper bounds (ascending; an implicit +Inf bucket is
// always appended). The first registration of a name fixes its buckets;
// later calls may pass nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.metricFor(name, help, KindHistogram, buckets, labels).hist
}

// Sample is one series in a Gather snapshot.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels are the series labels, sorted by key.
	Labels []Label
	// Kind classifies the family.
	Kind Kind
	// Value carries a counter (as float) or gauge reading; zero for
	// histograms.
	Value float64
	// Hist carries a histogram snapshot; nil for counters and gauges.
	Hist *HistogramSnapshot
}

// Label returns the value of the named label, or "".
func (s Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Gather runs the scrape collectors and snapshots every series, sorted by
// family name then label key — a stable order for goldens and diffing.
func (r *Registry) Gather() []Sample {
	r.runCollectors()
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out []Sample
	for _, fam := range fams {
		fam.mu.RLock()
		ms := make([]*metric, 0, len(fam.metrics))
		for _, m := range fam.metrics {
			ms = append(ms, m)
		}
		fam.mu.RUnlock()
		sort.Slice(ms, func(i, j int) bool { return ms[i].key < ms[j].key })
		for _, m := range ms {
			s := Sample{Name: fam.name, Labels: m.labels, Kind: fam.kind}
			switch fam.kind {
			case KindCounter:
				s.Value = float64(m.val.Load())
			case KindGauge:
				s.Value = math.Float64frombits(m.val.Load())
			case KindHistogram:
				snap := m.hist.Snapshot()
				s.Hist = &snap
			}
			out = append(out, s)
		}
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family, histograms
// expanded into _bucket{le=...}/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, fam := range fams {
		fam.mu.RLock()
		ms := make([]*metric, 0, len(fam.metrics))
		for _, m := range fam.metrics {
			ms = append(ms, m)
		}
		fam.mu.RUnlock()
		if len(ms) == 0 {
			continue
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].key < ms[j].key })
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, m := range ms {
			switch fam.kind {
			case KindCounter:
				b.WriteString(fam.name)
				writeLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(m.val.Load(), 10))
				b.WriteByte('\n')
			case KindGauge:
				b.WriteString(fam.name)
				writeLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(math.Float64frombits(m.val.Load())))
				b.WriteByte('\n')
			case KindHistogram:
				snap := m.hist.Snapshot()
				cum := uint64(0)
				for i, ub := range snap.Bounds {
					cum += snap.Counts[i]
					b.WriteString(fam.name)
					b.WriteString("_bucket")
					writeLabels(&b, m.labels, "le", formatFloat(ub))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				cum += snap.Counts[len(snap.Bounds)]
				b.WriteString(fam.name)
				b.WriteString("_bucket")
				writeLabels(&b, m.labels, "le", "+Inf")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
				b.WriteString(fam.name)
				b.WriteString("_sum")
				writeLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(snap.Sum))
				b.WriteByte('\n')
				b.WriteString(fam.name)
				b.WriteString("_count")
				writeLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders {k1="v1",k2="v2"} with an optional extra label (le)
// appended; nothing at all when there are no labels.
func writeLabels(b *strings.Builder, labels []Label, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
