package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is a point in an operation's lifecycle. The runtimes mark spans at
// each transition: the client invokes, the op is queued into the node's
// mailbox, the node starts it (invQueued→invStarted), the effect lands in
// apply(), and the client observes completion.
type Stage int

const (
	// StageInvoke is the client-side submission (span start).
	StageInvoke Stage = iota
	// StageQueue is the successful post into the node's mailbox.
	StageQueue
	// StageStart is the node picking the op up (invQueued → invStarted).
	StageStart
	// StageEffect is the response landing in apply().
	StageEffect
	// StageComplete is the client observing the result.
	StageComplete

	numStages
)

func (s Stage) String() string {
	switch s {
	case StageInvoke:
		return "invoke"
	case StageQueue:
		return "queue"
	case StageStart:
		return "start"
	case StageEffect:
		return "effect"
	case StageComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// Stages lists the lifecycle stages in order.
func Stages() []Stage {
	return []Stage{StageInvoke, StageQueue, StageStart, StageEffect, StageComplete}
}

// SpanRecord is one finished sampled span: nanosecond offsets from the
// invoke point for each stage that was marked (-1 when a stage never
// happened, e.g. an abandoned op has no effect/complete).
type SpanRecord struct {
	// Kind is the op kind, e.g. "write" or "read".
	Kind string
	// Start is the invoke wall-clock time.
	Start time.Time
	// StageNs[s] is the offset of stage s from Start in nanoseconds, or -1.
	StageNs [5]int64
	// Completed reports whether the op reached StageComplete.
	Completed bool
}

// Tracer samples one in every N operations and records their lifecycle
// spans into a bounded ring, with per-stage duration histograms (time from
// the previous marked stage). All methods are safe for concurrent use; a
// nil *Span is a valid no-op, so the unsampled hot path pays one atomic
// increment and a nil check.
type Tracer struct {
	every uint64
	n     atomic.Uint64

	mu      sync.Mutex
	ring    []SpanRecord
	next    int
	wrapped bool

	stage [numStages]*Histogram
}

// NewTracer samples 1 in every ops (every <= 1 samples everything) into a
// ring of cap records.
func NewTracer(every uint64, cap int) *Tracer {
	if every == 0 {
		every = 1
	}
	if cap <= 0 {
		cap = 1
	}
	t := &Tracer{every: every, ring: make([]SpanRecord, cap)}
	for i := range t.stage {
		t.stage[i] = newHistogram(LatencyBuckets())
	}
	return t
}

// Begin returns a span for this op, or nil when the op is not sampled.
func (t *Tracer) Begin(kind string) *Span {
	if t == nil || t.n.Add(1)%t.every != 0 {
		return nil
	}
	s := &Span{t: t, kind: kind, start: time.Now()}
	for i := range s.stageNs {
		s.stageNs[i].Store(-1)
	}
	s.stageNs[StageInvoke].Store(0)
	return s
}

// Span is one sampled op in flight. Marks may come from different
// goroutines (driver, node loop); each stage offset is a single atomic
// store, ordered by the runtime's own happens-before edges.
type Span struct {
	t       *Tracer
	kind    string
	start   time.Time
	stageNs [numStages]atomic.Int64
	ended   atomic.Bool
}

// Mark records that the op just reached stage s. Safe on a nil span.
func (s *Span) Mark(st Stage) {
	if s == nil || st < 0 || st >= numStages {
		return
	}
	s.stageNs[st].Store(int64(time.Since(s.start)))
}

// End finishes the span and records it. Safe on a nil span and idempotent —
// the op lifecycle has racing exit paths (completion vs timeout vs abandon)
// and only the first End records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{Kind: s.kind, Start: s.start}
	for i := range rec.StageNs {
		rec.StageNs[i] = s.stageNs[i].Load()
	}
	rec.Completed = rec.StageNs[StageComplete] >= 0
	// Per-stage durations: time from the previous marked stage.
	prev := int64(0)
	for st := StageQueue; st < numStages; st++ {
		ns := rec.StageNs[st]
		if ns < 0 {
			continue
		}
		s.t.stage[st].Observe(time.Duration(ns - prev).Seconds())
		prev = ns
	}
	s.t.mu.Lock()
	s.t.ring[s.t.next] = rec
	s.t.next++
	if s.t.next == len(s.t.ring) {
		s.t.next = 0
		s.t.wrapped = true
	}
	s.t.mu.Unlock()
}

// Records returns the retained spans, oldest first.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// StageSnapshot returns the per-stage duration histograms (seconds from the
// previous marked stage), keyed by stage name.
func (t *Tracer) StageSnapshot() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, numStages-1)
	for st := StageQueue; st < numStages; st++ {
		out[st.String()] = t.stage[st].Snapshot()
	}
	return out
}
