package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Canonical metric names emitted by the runtimes. Keeping them as constants
// here means the live and net runtimes, the stat line, and the tests all
// agree on one spelling.
const (
	// Per-op driver metrics (labels: shard, kind).
	MetricOpsStarted   = "shmem_ops_started_total"
	MetricOpsCompleted = "shmem_ops_completed_total"
	MetricOpsFailed    = "shmem_ops_failed_total"
	MetricOpLatency    = "shmem_op_latency_seconds"

	// Storage sampler (labels: shard, node; bounds add theorem).
	MetricStorageBits      = "shmem_storage_bits"
	MetricStorageMaxBits   = "shmem_storage_max_bits"
	MetricStorageBoundBits = "shmem_storage_bound_bits"
	MetricStorageSlackBits = "shmem_storage_slack_bits"

	// Online checker (labels: shard).
	MetricCheckerLag      = "shmem_checker_window_lag"
	MetricCheckerObserved = "shmem_checker_ops_observed_total"
	MetricCheckerVerified = "shmem_checker_ops_verified_total"
	MetricCheckerRetained = "shmem_checker_retained_ops"

	// Transport endpoint counters (labels: shard, node).
	MetricTransportFramesSent  = "shmem_transport_frames_sent_total"
	MetricTransportFramesRecv  = "shmem_transport_frames_received_total"
	MetricTransportBatchesSent = "shmem_transport_batches_sent_total"
	MetricTransportBytesSent   = "shmem_transport_bytes_sent_total"
	MetricTransportBytesRecv   = "shmem_transport_bytes_received_total"
	MetricTransportDroppedFull = "shmem_transport_dropped_full_total"
	MetricTransportDroppedDead = "shmem_transport_dropped_dead_total"
	MetricTransportRequeued    = "shmem_transport_requeued_total"
	MetricTransportMalformed   = "shmem_transport_malformed_total"
	MetricTransportBatchFrames = "shmem_transport_batch_frames"
)

// BatchBuckets returns the bucket bounds for compound-batch sizes (frames
// per flush), matching the transport's max batch of 64.
func BatchBuckets() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64} }

// RunTelemetry configures telemetry for one runtime instance. Runtimes
// treat a nil *RunTelemetry (or nil Registry) as "off" and pay nothing.
type RunTelemetry struct {
	// Registry receives all metrics. nil disables telemetry.
	Registry *Registry
	// Shard labels every series this run emits.
	Shard int
	// Interactive marks a long-lived interactive session's runtime. Its
	// series get "interactive-<shard>" shard labels, so a store's standing
	// interactive shards and its batch runs (which reuse the same shard
	// indices on fresh clusters) never write to the same series.
	Interactive bool
	// Interval is the storage-sampler tick; 0 means DefaultInterval.
	Interval time.Duration
}

// ShardLabel returns the shard-label value this run's series carry.
func (t *RunTelemetry) ShardLabel() string {
	if t.Interactive {
		return "interactive-" + strconv.Itoa(t.Shard)
	}
	return strconv.Itoa(t.Shard)
}

// DefaultInterval is the storage-sampler tick when RunTelemetry.Interval is
// zero: fast enough to catch watermark spikes within a client round-trip,
// slow enough that a 32-node shard costs well under 0.1% of a core (the
// overhead budget in DESIGN.md section 14).
const DefaultInterval = 5 * time.Millisecond

// Active reports whether this config actually records anything.
func (t *RunTelemetry) Active() bool { return t != nil && t.Registry != nil }

// SampleInterval returns the configured tick, defaulted.
func (t *RunTelemetry) SampleInterval() time.Duration {
	if t == nil || t.Interval <= 0 {
		return DefaultInterval
	}
	return t.Interval
}

// OpObserver builds the flight-driver hooks for this run: a submit hook
// feeding started-op counters and a settle hook feeding completed/failed
// counters plus the op-latency histogram, all labeled {shard, kind}.
// Returns (nil, nil) when telemetry is off, which the driver treats as
// no-ops.
func (t *RunTelemetry) OpObserver() (onSubmit func(isWrite bool), observe func(isWrite bool, latency time.Duration, ok bool)) {
	if !t.Active() {
		return nil, nil
	}
	type kindSet struct {
		started, completed, failed Counter
		lat                        *Histogram
	}
	shard := t.ShardLabel()
	mk := func(kind string) kindSet {
		ls := []Label{L("shard", shard), L("kind", kind)}
		return kindSet{
			started:   t.Registry.Counter(MetricOpsStarted, "operations submitted by the driver", ls...),
			completed: t.Registry.Counter(MetricOpsCompleted, "operations completed within their timeout", ls...),
			failed:    t.Registry.Counter(MetricOpsFailed, "operations timed out or abandoned", ls...),
			lat:       t.Registry.Histogram(MetricOpLatency, "wall-clock operation latency in seconds", LatencyBuckets(), ls...),
		}
	}
	w, r := mk("write"), mk("read")
	pick := func(isWrite bool) kindSet {
		if isWrite {
			return w
		}
		return r
	}
	onSubmit = func(isWrite bool) { pick(isWrite).started.Inc() }
	observe = func(isWrite bool, latency time.Duration, ok bool) {
		ks := pick(isWrite)
		if ok {
			ks.completed.Inc()
			ks.lat.ObserveDuration(latency)
		} else {
			ks.failed.Inc()
		}
	}
	return onSubmit, observe
}

// Summary is a compact digest of a registry for periodic stat lines.
type Summary struct {
	// Ops is the total completed op count across shards and kinds.
	Ops uint64
	// Failed is the total failed/abandoned op count.
	Failed uint64
	// P50 and P99 are op-latency quantiles over all merged histograms.
	P50, P99 time.Duration
	// MaxStorageBits is the largest per-node storage watermark seen.
	MaxStorageBits float64
	// BoundBits is the Theorem 4.1 per-node bound for the run (0 if the
	// sampler has not published it).
	BoundBits float64
	// WindowLag is the worst online-checker window lag across shards.
	WindowLag float64
}

// Summarize digests the registry's well-known series into a Summary.
func Summarize(reg *Registry) Summary {
	var s Summary
	var lat *HistogramSnapshot
	for _, sm := range reg.Gather() {
		switch sm.Name {
		case MetricOpsCompleted:
			s.Ops += uint64(sm.Value)
		case MetricOpsFailed:
			s.Failed += uint64(sm.Value)
		case MetricOpLatency:
			if sm.Hist == nil {
				continue
			}
			if lat == nil {
				cp := *sm.Hist
				cp.Counts = append([]uint64(nil), sm.Hist.Counts...)
				lat = &cp
			} else {
				_ = lat.Merge(*sm.Hist)
			}
		case MetricStorageMaxBits:
			s.MaxStorageBits = math.Max(s.MaxStorageBits, sm.Value)
		case MetricStorageBoundBits:
			if sm.Label("theorem") == "4.1" {
				s.BoundBits = math.Max(s.BoundBits, sm.Value)
			}
		case MetricCheckerLag:
			s.WindowLag = math.Max(s.WindowLag, sm.Value)
		}
	}
	if lat != nil {
		s.P50 = time.Duration(lat.Quantile(0.50) * float64(time.Second))
		s.P99 = time.Duration(lat.Quantile(0.99) * float64(time.Second))
	}
	return s
}

// LogStats starts a goroutine printing one stat line to w every interval:
// ops/s since the previous line, p50/p99 op latency, max storage bits
// against the Theorem 4.1 bound, and checker window lag. The returned stop
// func halts it (idempotent) and prints a final line.
func LogStats(w io.Writer, reg *Registry, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	line := func(prev uint64, dt time.Duration) uint64 {
		s := Summarize(reg)
		rate := float64(s.Ops-prev) / dt.Seconds()
		bound := "n/a"
		if s.BoundBits > 0 {
			bound = fmt.Sprintf("%.0f", s.BoundBits)
		}
		fmt.Fprintf(w, "telemetry: %8.0f ops/s  p50 %s  p99 %s  storage max %.0f / bound %s bits  window-lag %.0f\n",
			rate, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.MaxStorageBits, bound, s.WindowLag)
		return s.Ops
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		prev := Summarize(reg).Ops
		last := time.Now()
		for {
			select {
			case <-done:
				if dt := time.Since(last); dt > 100*time.Millisecond {
					line(prev, dt)
				}
				return
			case now := <-tick.C:
				prev = line(prev, now.Sub(last))
				last = now
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
