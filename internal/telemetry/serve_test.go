package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_total", "served").Add(7)
	sp := reg.Tracer().Begin("write")
	for sp == nil { // default tracer samples 1-in-64; drive until one lands
		sp = reg.Tracer().Begin("write")
	}
	sp.Mark(StageComplete)
	sp.End()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content-type = %q", ctype)
	}
	if !strings.Contains(body, "srv_total 7") || !strings.Contains(body, "# TYPE srv_total counter") {
		t.Fatalf("metrics body:\n%s", body)
	}

	body, _ = get("/trace")
	var tr struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, body)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}

	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("pprof cmdline empty")
	}
}
