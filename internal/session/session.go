// Package session is the handle layer behind shmem.Open: one Store that
// owns a sharded set of register deployments and exposes, on either
// execution backend,
//
//   - interactive, context-aware client operations (Put/Get) routed through
//     workload.KeyShard to per-shard deployments,
//   - batch experiments (RunWorkload, RunMulti) over fresh clusters of the
//     same configuration,
//   - a unified metrics snapshot (per-shard storage reports, fault stats,
//     op counts, live latency percentiles), and
//   - consistency checking over the accumulated interactive history.
//
// The store keeps its own per-shard operation record: every interactive
// operation runs as a ticket on the shard's ioa.OpFeed, whose clock stamps
// the invocation when the ticket is issued and the response when the result
// is observed, so the recorded intervals express exactly the real-time
// precedence the caller observed — the relation the consistency checkers
// test. Settled operations stream from the feed into the shard's history
// sink: a batch ioa.History by default (bounded by Config.HistoryCap, see
// ErrHistoryFull), or a consistency.OnlineChecker when Config.OnlineCheck is
// set — then provably-linearized prefixes are retired as the store runs and
// CheckConsistency reads off the standing verdict instead of replaying the
// full history. Operations abandoned by a timeout or a cancelled context
// stay pending (their effects may still land), which is the standard
// completion semantics the atomicity checker already covers.
package session

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/netrun"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config names everything a Store needs: the algorithm mix, the per-shard
// cluster shape (n, f), the shard count, the execution backend, the fault
// scenarios, and the interactive tuning. The zero value opens a one-shard
// CAS store of 5 servers tolerating 1 crash on the simulator.
type Config struct {
	// Algorithms assigns an algorithm per shard, cycling when shorter than
	// Shards (shard i runs Algorithms[i mod len]), exactly as
	// store.Options.Algorithms does. Empty defaults to CAS everywhere.
	Algorithms []string
	// Servers and F shape every shard's cluster (N servers, f tolerated
	// crashes). Servers 0 defaults to 5 servers tolerating 1 crash.
	Servers int
	F       int
	// Shards is the number of independent register deployments (default 1).
	// Keys are routed to shards by workload.KeyShard.
	Shards int
	// Backend selects the execution substrate: store.BackendSim (default,
	// the deterministic simulator), store.BackendLive (the concurrent
	// goroutine-per-node runtime) or store.BackendNet (every node on its own
	// TCP socket over the real loopback network).
	Backend string
	// Faults assigns a fault scenario spec per shard, cycling like
	// Algorithms; "" or "none" leaves a shard fault-free. Specs follow the
	// internal/faults.Parse grammar and every scenario class runs on every
	// backend — the live and net runtimes execute outage windows and
	// crash/recovery schedules against a wall-clock step mapping (see
	// faults.WallClock). Malformed specs are rejected at Open.
	Faults []string
	// Writers and Readers are the per-shard client counts. Zero means the
	// defaults: one writer and one reader for interactive shards, and the
	// per-algorithm DeployAlgorithm shapes for batch runs (RunMulti,
	// RunWorkload). Single-writer algorithms reject Writers > 1.
	Writers int
	Readers int
	// StepBudget bounds the deliveries one interactive simulator operation
	// may consume (0 = workload.DefaultStepBudget). Exhausting it returns
	// store.ErrStepBudget. Ignored on the live and net backends, which
	// bound operations by their OpTimeout instead.
	StepBudget int
	// Live tunes the live runtime; the zero value selects the defaults.
	Live live.Config
	// Net tunes the net runtime; the zero value selects the defaults
	// (ephemeral loopback ports, 5s op timeout).
	Net netrun.Config
	// Seed derives each shard's fault-plan decision stream (and seeds batch
	// runs through RunWorkload). Same seed, same injected faults.
	Seed int64
	// Workers bounds the goroutines RunMulti uses (0 = GOMAXPROCS).
	Workers int
	// Pipeline sets the per-client operation pipeline depth the live and net
	// batch drivers use (0 keeps each runtime's default of 1): each driver
	// keeps up to this many operations in flight at one client, with the
	// node starting each only after its predecessor responds, so per-client
	// program order is preserved. It defaults Live.Pipeline and Net.Pipeline
	// when those are unset; ignored on the simulator and for interactive
	// Put/Get, which stay one-op-per-client.
	Pipeline int
	// SkipCheck disables batch runs' per-shard consistency checking
	// (store.Options.SkipCheck): required for high-concurrency throughput
	// sweeps, since the checkers are worst-case exponential in write
	// concurrency. Interactive CheckConsistency is unaffected.
	SkipCheck bool
	// OnlineCheck streams every settled operation into a windowed online
	// atomicity checker instead of accumulating a batch history. Interactive
	// atomic-condition shards then retire provably-linearized prefixes as the
	// store runs — CheckConsistency reads off the standing verdict plus the
	// residual window, memory stays bounded by the window rather than the op
	// count, and Metrics reports the verified frontier (OpsVerified,
	// WindowLag). Regular-condition shards keep the batch history — the
	// windowed decomposition is proved for atomicity. Batch runs (RunMulti)
	// inherit the same switch through store.Options.OnlineCheck.
	OnlineCheck bool
	// OnlineWindow is the online checker's retirement window in operations
	// (0 = consistency.DefaultWindowOps).
	OnlineWindow int
	// HistoryCap bounds the interactive operations a batch-history shard
	// retains (0 = DefaultHistoryCap). Once a shard's retained history
	// reaches the cap, further operations on it fail with ErrHistoryFull
	// rather than growing without bound. Online-checked shards reclaim
	// retired prefixes instead, so the cap binds only their unretired
	// residue (pending ops plus the open window), not the total op count.
	HistoryCap int
	// Telemetry, when set, wires the store into the metrics registry: the
	// live and net runtimes publish per-node storage-bit gauges against the
	// paper bounds, op-latency histograms, transport counters and
	// online-checker lag under a per-shard "shard" label, for batch runs
	// (RunWorkload, RunMulti) and interactive shards alike. Serve the
	// registry with telemetry.Serve (shmem.ServeTelemetry). Ignored on the
	// simulator backend. Nil disables all instrumentation at zero cost.
	Telemetry *telemetry.Registry
}

// Option mutates a Config before Open validates it — the functional-options
// face of the same knobs, for call sites that start from the zero Config.
type Option func(*Config)

// WithBackend selects the execution backend ("sim", "live" or "net").
func WithBackend(name string) Option { return func(c *Config) { c.Backend = name } }

// WithShards sets the number of independent register shards.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// WithFaults assigns fault scenario specs, cycled per shard.
func WithFaults(specs ...string) Option { return func(c *Config) { c.Faults = specs } }

// WithLiveConfig tunes the live runtime.
func WithLiveConfig(lc live.Config) Option { return func(c *Config) { c.Live = lc } }

// WithNetConfig tunes the net runtime (listen address, step duration, op
// timeout, transport dial/queue bounds).
func WithNetConfig(nc netrun.Config) Option { return func(c *Config) { c.Net = nc } }

// WithTransport selects the net backend listening on addrSpec — an address
// whose port part should stay 0 so every node gets its own ephemeral port
// (e.g. "127.0.0.1:0"). Empty keeps the default loopback spec. It implies
// WithBackend("net").
func WithTransport(addrSpec string) Option {
	return func(c *Config) {
		c.Backend = store.BackendNet
		c.Net.ListenAddr = addrSpec
	}
}

// WithStepBudget bounds each interactive simulator operation's deliveries.
func WithStepBudget(n int) Option { return func(c *Config) { c.StepBudget = n } }

// WithClients sets the per-shard writer and reader client counts.
func WithClients(writers, readers int) Option {
	return func(c *Config) { c.Writers, c.Readers = writers, readers }
}

// WithSeed sets the fault and batch-workload seed.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithWorkers bounds RunMulti's worker pool.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithPipeline sets the per-client pipeline depth for live and net batch
// drivers (per-client program order is preserved; see Config.Pipeline).
func WithPipeline(depth int) Option { return func(c *Config) { c.Pipeline = depth } }

// WithSkipCheck disables batch runs' per-shard consistency checking — for
// high-concurrency throughput sweeps the exponential checkers cannot afford.
func WithSkipCheck() Option { return func(c *Config) { c.SkipCheck = true } }

// WithOnlineCheck streams settled operations into the windowed online
// atomicity checker as the store runs (see Config.OnlineCheck).
func WithOnlineCheck() Option { return func(c *Config) { c.OnlineCheck = true } }

// WithOnlineWindow sets the online checker's retirement window in operations
// (0 keeps consistency.DefaultWindowOps).
func WithOnlineWindow(n int) Option { return func(c *Config) { c.OnlineWindow = n } }

// WithHistoryCap bounds the interactive history a batch shard retains (see
// Config.HistoryCap and ErrHistoryFull).
func WithHistoryCap(n int) Option { return func(c *Config) { c.HistoryCap = n } }

// WithTelemetry publishes the store's runtime metrics — storage gauges vs
// the paper bounds, latency histograms, transport counters — into reg (see
// Config.Telemetry).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *Config) { c.Telemetry = reg }
}

func (c Config) withDefaults() Config {
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{store.AlgCAS}
	}
	if c.Servers == 0 {
		c.Servers = 5
		if c.F == 0 {
			c.F = 1
		}
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Pipeline > 0 {
		if c.Live.Pipeline == 0 {
			c.Live.Pipeline = c.Pipeline
		}
		if c.Net.Pipeline == 0 {
			c.Net.Pipeline = c.Pipeline
		}
	}
	return c
}

// runtimeConfigs returns the live and net runtime configs for one shard,
// carrying the per-shard telemetry handle when a registry is configured.
// Interactive shards get "interactive-<shard>" series labels so their
// standing samplers never collide with batch runs reusing the same shard
// indices.
func (c Config) runtimeConfigs(shard int, interactive bool) (live.Config, netrun.Config) {
	lc, nc := c.Live, c.Net
	if c.Telemetry != nil {
		tel := &telemetry.RunTelemetry{Registry: c.Telemetry, Shard: shard, Interactive: interactive}
		lc.Telemetry = tel
		nc.Telemetry = tel
	}
	return lc, nc
}

// interactiveClients returns the per-shard client counts interactive shards
// deploy with (zero defaults to one each).
func (c Config) interactiveClients() (writers, readers int) {
	writers, readers = c.Writers, c.Readers
	if writers == 0 {
		writers = 1
	}
	if readers == 0 {
		readers = 1
	}
	return writers, readers
}

func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("session: Shards must be >= 1")
	}
	if c.Writers < 0 || c.Readers < 0 {
		return fmt.Errorf("session: negative client counts (writers=%d readers=%d)", c.Writers, c.Readers)
	}
	if c.StepBudget < 0 {
		return fmt.Errorf("session: negative step budget %d", c.StepBudget)
	}
	if c.Workers < 0 {
		return fmt.Errorf("session: negative worker count")
	}
	if c.Pipeline < 0 {
		return fmt.Errorf("session: negative pipeline depth %d", c.Pipeline)
	}
	if c.OnlineWindow < 0 {
		return fmt.Errorf("session: negative online window %d", c.OnlineWindow)
	}
	if c.HistoryCap < 0 {
		return fmt.Errorf("session: negative history cap %d", c.HistoryCap)
	}
	for _, a := range c.Algorithms {
		if !slices.Contains(store.Algorithms(), a) {
			return fmt.Errorf("session: unknown algorithm %q (known: %v)", a, store.Algorithms())
		}
	}
	if _, err := store.BackendByName(c.Backend); err != nil {
		return err
	}
	for i, spec := range c.Faults {
		if _, err := faults.Parse(spec); err != nil {
			return fmt.Errorf("session: Faults[%d]: %w", i, err)
		}
	}
	return nil
}

// DefaultHistoryCap is the retained-history bound a batch shard gets when
// Config.HistoryCap is zero. A million 16-byte operations is roughly 100 MB
// of retained history — past that, callers should either check and reopen,
// or switch to WithOnlineCheck, whose retirement keeps residue small.
const DefaultHistoryCap = 1 << 20

// ErrHistoryFull reports an interactive operation refused because the
// shard's retained history reached Config.HistoryCap. The operation never
// started (the register is untouched); branch with errors.Is.
var ErrHistoryFull = errors.New("session: interactive history at capacity")

// shard is one register deployment plus the session state layered on it.
type shard struct {
	index     int
	cl        *cluster.Cluster
	algorithm string
	condition string
	faultSpec string
	sess      store.ShardSession

	mu sync.Mutex
	// feed stamps and orders the shard's interactive operations; settled ones
	// stream into exactly one of the two sinks below.
	feed *ioa.OpFeed
	// hist is the batch sink: the retained history CheckConsistency replays
	// (nil on online-checked shards).
	hist *ioa.History
	// checker is the streaming sink: it retires provably-linearized prefixes
	// as ops settle (nil on batch shards).
	checker *consistency.OnlineChecker
	// recorded counts operations accepted into the feed and not voided — the
	// batch shard's retained-history size for the HistoryCap bound.
	recorded   int
	latencies  []time.Duration
	writes     int
	reads      int
	nextWriter int
	nextReader int

	// clientLocks serialize operations per client: a register client holds
	// one operation at a time, and the invoke stamp must be taken only once
	// the client is actually free — otherwise two ops at one client record
	// overlapping intervals and the history is malformed.
	clientLocks map[ioa.NodeID]*sync.Mutex
	// retired marks clients whose operation was abandoned (timeout, budget
	// exhaustion, cancellation) while genuinely invoked. The abandoned op
	// must stay the client's last recorded one — on the simulator a later
	// op's FairRun can quietly complete it inside the kernel, and invoking
	// the client again would append after a pending op, malforming the
	// history — so retired clients refuse further session operations, on
	// both backends (the live runtime additionally retires internally).
	retired map[ioa.NodeID]bool
}

// Store is one handle over a sharded register store: interactive client
// operations, batch experiments, metrics and consistency checking — on
// either backend. Open builds it; Close releases it (live node goroutines).
// All methods are safe for concurrent use.
type Store struct {
	cfg     Config
	backend store.Backend
	shards  []*shard
	closed  atomic.Bool
}

// Open deploys the configured shards on the configured backend and returns
// the store handle. Every shard's cluster and fault plan are built eagerly,
// so configuration errors (unknown algorithm or backend, malformed or
// backend-unsupported fault specs, invalid client counts) surface here, not
// mid-operation.
func Open(cfg Config, opts ...Option) (*Store, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	backend, err := store.BackendByName(cfg.Backend)
	if err != nil {
		return nil, err
	}
	// Fault plans reuse the multi-key workload's per-shard derivation, so a
	// store opened with seed s injects exactly the faults a batch RunMulti
	// with seed s would.
	planSpec := workload.MultiSpec{Seed: cfg.Seed, Faults: cfg.Faults}
	writers, readers := cfg.interactiveClients()
	st := &Store{cfg: cfg, backend: backend}
	for i := 0; i < cfg.Shards; i++ {
		alg := cfg.Algorithms[i%len(cfg.Algorithms)]
		cl, cond, err := store.DeployAlgorithmSized(alg, cfg.Servers, cfg.F, writers, readers)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("session: shard %d (%s): %w", i, alg, err)
		}
		plan, err := planSpec.ShardFaultPlan(i, cfg.Servers, cfg.F)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("session: shard %d: %w", i, err)
		}
		shardLive, shardNet := cfg.runtimeConfigs(i, true)
		sess, err := backend.OpenShard(cl, store.ShardOptions{
			Plan:       plan,
			StepBudget: cfg.StepBudget,
			Live:       shardLive,
			Net:        shardNet,
		})
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("session: shard %d (%s, backend %s): %w", i, alg, backend.Name(), err)
		}
		locks := make(map[ioa.NodeID]*sync.Mutex, len(cl.Writers)+len(cl.Readers))
		for _, ids := range [][]ioa.NodeID{cl.Writers, cl.Readers} {
			for _, id := range ids {
				locks[id] = &sync.Mutex{}
			}
		}
		sh := &shard{
			index:       i,
			cl:          cl,
			algorithm:   alg,
			condition:   cond,
			faultSpec:   planSpec.ShardFault(i),
			sess:        sess,
			clientLocks: locks,
			retired:     make(map[ioa.NodeID]bool),
		}
		// The windowed decomposition is proved for atomicity, so only
		// atomic-condition shards stream into the online checker; the rest
		// retain the batch history CheckConsistency replays.
		if cfg.OnlineCheck && cond == "atomic" {
			sh.checker = consistency.NewOnlineChecker(nil, consistency.WithWindowOps(cfg.OnlineWindow))
			sh.feed = ioa.NewOpFeed(sh.checker)
		} else {
			sh.hist = ioa.NewHistory()
			sh.feed = ioa.NewOpFeed(sh.hist)
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// Config returns the effective (defaulted) configuration the store runs.
func (s *Store) Config() Config { return s.cfg }

// Backend returns the execution backend's name.
func (s *Store) Backend() string { return s.backend.Name() }

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// KeyShard returns the shard a key routes to.
func (s *Store) KeyShard(key int) int { return workload.KeyShard(key, len(s.shards)) }

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("session: store is closed")

func (s *Store) shardFor(key int) (*shard, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.shards[workload.KeyShard(key, len(s.shards))], nil
}

// Put writes value under key, routing to the key's shard and rotating
// through the shard's writer clients. Writes that should pass the atomicity
// checker must use values distinct from every other write to the same shard
// (MakeValue produces such values).
func (s *Store) Put(ctx context.Context, key int, value []byte) error {
	sh, err := s.shardFor(key)
	if err != nil {
		return err
	}
	client, err := sh.pickClient(sh.cl.Writers, &sh.nextWriter, "writer")
	if err != nil {
		return err
	}
	_, err = s.runOp(ctx, sh, client, ioa.Invocation{Kind: ioa.OpWrite, Value: value})
	return err
}

// PutAs writes value under key at the shard's writer with the given index.
func (s *Store) PutAs(ctx context.Context, writer, key int, value []byte) error {
	sh, err := s.shardFor(key)
	if err != nil {
		return err
	}
	if writer < 0 || writer >= len(sh.cl.Writers) {
		return fmt.Errorf("session: writer index %d out of range [0,%d) on shard %d", writer, len(sh.cl.Writers), sh.index)
	}
	_, err = s.runOp(ctx, sh, sh.cl.Writers[writer], ioa.Invocation{Kind: ioa.OpWrite, Value: value})
	return err
}

// Get reads the register serving key, routing to the key's shard and
// rotating through the shard's reader clients.
func (s *Store) Get(ctx context.Context, key int) ([]byte, error) {
	sh, err := s.shardFor(key)
	if err != nil {
		return nil, err
	}
	client, err := sh.pickClient(sh.cl.Readers, &sh.nextReader, "reader")
	if err != nil {
		return nil, err
	}
	return s.runOp(ctx, sh, client, ioa.Invocation{Kind: ioa.OpRead})
}

// GetAs reads the register serving key at the shard's reader with the given
// index.
func (s *Store) GetAs(ctx context.Context, reader, key int) ([]byte, error) {
	sh, err := s.shardFor(key)
	if err != nil {
		return nil, err
	}
	if reader < 0 || reader >= len(sh.cl.Readers) {
		return nil, fmt.Errorf("session: reader index %d out of range [0,%d) on shard %d", reader, len(sh.cl.Readers), sh.index)
	}
	return s.runOp(ctx, sh, sh.cl.Readers[reader], ioa.Invocation{Kind: ioa.OpRead})
}

// pickClient rotates through the shard's clients of one role, skipping
// retired ones. Callers must not hold sh.mu.
func (sh *shard) pickClient(ids []ioa.NodeID, next *int, role string) (ioa.NodeID, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for range ids {
		id := ids[*next]
		*next = (*next + 1) % len(ids)
		if !sh.retired[id] {
			return id, nil
		}
	}
	return 0, fmt.Errorf("session: shard %d: every %s client is retired after abandoned operations", sh.index, role)
}

// retainedLocked is the shard's retained-history size for the HistoryCap
// bound: everything recorded on a batch shard (the history keeps it all),
// minus the retired prefix on an online shard (the checker reclaimed it).
// Callers hold sh.mu.
func (sh *shard) retainedLocked() int {
	if sh.checker != nil {
		return sh.recorded - int(sh.checker.OpsVerified())
	}
	return sh.recorded
}

func (c Config) historyCap() int {
	if c.HistoryCap == 0 {
		return DefaultHistoryCap
	}
	return c.HistoryCap
}

// runOp opens a ticket for the operation on the shard's feed, executes it on
// the backend session, and settles the ticket with the outcome. The feed's
// clock stamps the invocation when the ticket is issued — before the backend
// sees the operation — and the response when its completion is observed, so
// recorded precedence is real precedence. The settled prefix streams into
// the shard's sink as tickets resolve.
func (s *Store) runOp(ctx context.Context, sh *shard, client ioa.NodeID, inv ioa.Invocation) ([]byte, error) {
	lk := sh.clientLocks[client]
	lk.Lock()
	defer lk.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if sh.retired[client] {
		sh.mu.Unlock()
		return nil, fmt.Errorf("session: shard %d: client %d is retired after an abandoned operation", sh.index, client)
	}
	if hcap := s.cfg.historyCap(); sh.retainedLocked() >= hcap {
		sh.mu.Unlock()
		return nil, fmt.Errorf("session: shard %d: %w (cap %d; check and reopen, raise WithHistoryCap, or switch to WithOnlineCheck)", sh.index, ErrHistoryFull, hcap)
	}
	tk := sh.feed.Begin(client, inv.Kind, inv.Value)
	sh.recorded++
	if inv.Kind == ioa.OpWrite {
		sh.writes++
	} else {
		sh.reads++
	}
	sh.mu.Unlock()

	start := time.Now()
	out, pending, err := sh.sess.RunOp(ctx, client, inv)
	lat := time.Since(start)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err != nil {
		if pending {
			// The abandoned op must stay the client's last recorded one, so
			// the client accepts no further session operations; its ticket
			// stays permanently pending in the record.
			sh.retired[client] = true
			tk.Abandon()
		} else {
			// The operation never started; void the ticket so no history
			// slot remains, and drop its op count.
			tk.Void()
			sh.recorded--
			if inv.Kind == ioa.OpWrite {
				sh.writes--
			} else {
				sh.reads--
			}
		}
		return nil, fmt.Errorf("session: shard %d: %w", sh.index, err)
	}
	tk.Complete(out)
	sh.latencies = append(sh.latencies, lat)
	return out, nil
}

// history rebuilds a batch shard's checkable history: the sink's settled
// prefix plus the feed's held tail (operations behind an open ticket, the
// open ones appearing pending). Both parts are in invocation order, the tail
// strictly after the prefix, so concatenation preserves the feed's ordering
// contract. Callers hold sh.mu.
func (sh *shard) history() (*ioa.History, error) {
	ops := make([]ioa.Op, 0, len(sh.hist.Ops))
	ops = append(ops, sh.hist.Ops...)
	ops = append(ops, sh.feed.Snapshot()...)
	return ioa.HistoryFromOps(ops)
}

// CheckConsistency verifies every shard's accumulated interactive history
// against its algorithm's consistency condition ("atomic" or "regular").
// Batch shards replay their retained history through the offline checker;
// online-checked shards already verified their retired prefix as operations
// settled, so only the residual window plus the feed's held tail is checked
// here — the call stays cheap no matter how many operations have run.
// Operations abandoned by timeouts stay pending and are checked under the
// standard completion semantics. It returns the lowest-indexed failing
// shard's verdict, or nil when every shard passes. Safe to call mid-run: the
// verdict covers every operation settled so far, with in-flight ones
// treated as pending.
func (s *Store) CheckConsistency() error {
	if s.closed.Load() {
		return ErrClosed
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.checker != nil {
			// The feed's held tail (ops invoked after the last released one,
			// open tickets appearing pending) joins the residual window, so
			// a settled read of an in-flight write's value is not mistaken
			// for a read of a never-written value.
			extra := sh.feed.Snapshot()
			sh.mu.Unlock()
			if err := sh.checker.Result(extra...); err != nil {
				return fmt.Errorf("session: shard %d (%s, %s): %w", sh.index, sh.algorithm, sh.condition, err)
			}
			continue
		}
		if err := sh.feed.Err(); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("session: shard %d history: %w", sh.index, err)
		}
		h, err := sh.history()
		cond := sh.condition
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("session: shard %d history: %w", sh.index, err)
		}
		switch cond {
		case "atomic":
			err = consistency.CheckAtomic(h, nil)
		case "regular":
			err = consistency.CheckRegular(h, nil)
		default:
			err = fmt.Errorf("unknown condition %q", cond)
		}
		if err != nil {
			return fmt.Errorf("session: shard %d (%s, %s): %w", sh.index, sh.algorithm, cond, err)
		}
	}
	return nil
}

// ShardMetrics is one shard's slice of a Metrics snapshot.
type ShardMetrics struct {
	// Shard, Algorithm, Condition and FaultSpec identify the deployment.
	Shard     int
	Algorithm string
	Condition string
	FaultSpec string
	// Writes and Reads count the shard's interactive operations (started
	// ones; abandoned operations are counted until they are known to have
	// never begun). PendingOps counts those not yet (or never) completed.
	Writes     int
	Reads      int
	PendingOps int
	// OpsVerified counts operations the online checker has retired as
	// provably linearized, and WindowLag is how many settled operations
	// still await retirement (both zero on batch-history shards). RetainedOps
	// is what the shard currently holds against Config.HistoryCap.
	OpsVerified int64
	WindowLag   int
	RetainedOps int
	// Storage is the shard's per-server storage high-water report.
	Storage ioa.StorageReport
	// Faults aggregates the shard's injected fault events.
	Faults ioa.FaultStats
}

// Metrics is a unified snapshot of the store: per-shard storage reports and
// fault stats, interactive op counts, and latency percentiles. Safe to take
// while operations are in flight.
type Metrics struct {
	// Backend names the execution substrate.
	Backend string
	// PerShard holds every shard's snapshot, ascending by shard index.
	PerShard []ShardMetrics
	// TotalWrites, TotalReads and PendingOps sum the shard op counts.
	TotalWrites int
	TotalReads  int
	PendingOps  int
	// OpsVerified sums the shards' online-checker retirement counts and
	// MaxWindowLag is the largest residual window across shards (zero
	// without WithOnlineCheck).
	OpsVerified  int64
	MaxWindowLag int
	// AggregateMaxTotalBits sums the per-shard storage high-water marks and
	// MaxServerBits is the largest single-server maximum across shards.
	AggregateMaxTotalBits int
	MaxServerBits         int
	// Faults sums the per-shard fault event counts.
	Faults ioa.FaultStats
	// LatencyP50 and LatencyP99 are nearest-rank percentiles over every
	// completed interactive operation's wall-clock duration. On the
	// simulator these measure host speed, not the algorithm; on the live
	// backend they are the service's real latencies.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// Metrics snapshots the store.
func (s *Store) Metrics() Metrics {
	m := Metrics{Backend: s.backend.Name()}
	var lats []time.Duration
	for _, sh := range s.shards {
		sh.mu.Lock()
		sm := ShardMetrics{
			Shard:       sh.index,
			Algorithm:   sh.algorithm,
			Condition:   sh.condition,
			FaultSpec:   sh.faultSpec,
			Writes:      sh.writes,
			Reads:       sh.reads,
			PendingOps:  sh.feed.Pending(),
			RetainedOps: sh.retainedLocked(),
			Storage:     sh.sess.Storage(),
			Faults:      sh.sess.FaultStats(),
		}
		if sh.checker != nil {
			sm.OpsVerified = sh.checker.OpsVerified()
			sm.WindowLag = sh.checker.WindowLag()
		}
		lats = append(lats, sh.latencies...)
		sh.mu.Unlock()
		m.PerShard = append(m.PerShard, sm)
		m.TotalWrites += sm.Writes
		m.TotalReads += sm.Reads
		m.PendingOps += sm.PendingOps
		m.OpsVerified += sm.OpsVerified
		if sm.WindowLag > m.MaxWindowLag {
			m.MaxWindowLag = sm.WindowLag
		}
		m.AggregateMaxTotalBits += sm.Storage.MaxTotalBits
		if sm.Storage.MaxServerBits > m.MaxServerBits {
			m.MaxServerBits = sm.Storage.MaxServerBits
		}
		m.Faults.Add(sm.Faults)
	}
	if len(lats) > 0 {
		m.LatencyP50 = live.Percentile(lats, 0.50)
		m.LatencyP99 = live.Percentile(lats, 0.99)
	}
	return m
}

// RunWorkload runs one seeded single-register workload on a fresh cluster
// of this store's configuration (first algorithm, same n/f and client
// counts, same backend) — the batch path that replaces the free-function
// RunWorkload/RunLiveWorkload pair. The store's first fault scenario is
// installed unless the spec carries its own plan; the interactive shards
// are untouched. The result's history is not consistency-checked; use
// Result.CheckConsistency with Condition().
func (s *Store) RunWorkload(spec workload.Spec) (*workload.Result, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	alg := s.cfg.Algorithms[0]
	cl, _, err := store.DeployShard(alg, s.cfg.Servers, s.cfg.F, spec.TargetNu, s.cfg.Writers, s.cfg.Readers)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	if spec.FaultPlan == nil {
		planSpec := workload.MultiSpec{Seed: s.cfg.Seed, Faults: s.cfg.Faults}
		plan, err := planSpec.ShardFaultPlan(0, s.cfg.Servers, s.cfg.F)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		spec.FaultPlan = plan
	}
	wlLive, wlNet := s.cfg.runtimeConfigs(0, false)
	return s.backend.RunShard(cl, spec, store.ShardOptions{Live: wlLive, Net: wlNet})
}

// Condition returns the consistency condition the store's first algorithm
// guarantees — the condition to check RunWorkload results against.
func (s *Store) Condition() string {
	return s.shards[0].condition
}

// RunMulti partitions a multi-key workload across this store's shard count
// and runs it on fresh clusters through the parallel store engine — the
// batch path that replaces the free-function RunStore. The store's
// algorithm mix, backend, client counts and fault scenarios apply (the
// spec's own Faults win when set); the interactive shards are untouched.
// Results on the simulator are byte-identical across worker counts.
func (s *Store) RunMulti(m workload.MultiSpec) (*store.Result, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if len(m.Faults) == 0 {
		m.Faults = s.cfg.Faults
	}
	return store.Run(store.Options{
		Shards:       s.cfg.Shards,
		Algorithms:   s.cfg.Algorithms,
		Servers:      s.cfg.Servers,
		F:            s.cfg.F,
		Workers:      s.cfg.Workers,
		Backend:      s.cfg.Backend,
		Writers:      s.cfg.Writers,
		Readers:      s.cfg.Readers,
		Live:         s.cfg.Live,
		Net:          s.cfg.Net,
		SkipCheck:    s.cfg.SkipCheck,
		OnlineCheck:  s.cfg.OnlineCheck,
		OnlineWindow: s.cfg.OnlineWindow,
		Telemetry:    s.cfg.Telemetry,
		Workload:     m,
	})
}

// Close releases every shard (stopping live node goroutines). Idempotent;
// operations after Close fail with ErrClosed.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var first error
	for _, sh := range s.shards {
		if sh == nil || sh.sess == nil {
			continue
		}
		if err := sh.sess.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
