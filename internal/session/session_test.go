package session

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/register"
	"repro/internal/store"
	"repro/internal/workload"
)

// openSim opens a simulator store and registers its cleanup.
func openSim(t *testing.T, cfg Config, opts ...Option) *Store {
	t.Helper()
	st, err := Open(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestOpenDefaults(t *testing.T) {
	st := openSim(t, Config{})
	if st.Shards() != 1 {
		t.Errorf("default Shards = %d, want 1", st.Shards())
	}
	if st.Backend() != store.BackendSim {
		t.Errorf("default backend = %q, want sim", st.Backend())
	}
	cfg := st.Config()
	if cfg.Servers != 5 || cfg.F != 1 {
		t.Errorf("default cluster shape = (%d, %d), want (5, 1)", cfg.Servers, cfg.F)
	}
	if got := cfg.Algorithms; len(got) != 1 || got[0] != store.AlgCAS {
		t.Errorf("default algorithms = %v, want [cas]", got)
	}
}

func TestOpenValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown algorithm", Config{Algorithms: []string{"paxos"}}, "unknown algorithm"},
		{"unknown backend", Config{Backend: "quantum"}, "unknown backend"},
		{"bad fault spec", Config{Faults: []string{"bogus"}}, "Faults[0]"},
		{"negative clients", Config{Writers: -1}, "negative client counts"},
		{"negative budget", Config{StepBudget: -5}, "negative step budget"},
		{"single-writer with many writers", Config{Algorithms: []string{store.AlgABD}, Writers: 3, Readers: 1}, "single-writer"},
		{"malformed fault window", Config{Backend: store.BackendLive, Faults: []string{"partition@40:20"}}, "Faults[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Open(%+v) error = %v, want mention of %q", tc.cfg, err, tc.want)
			}
		})
	}
}

// TestPutGetAcrossShards drives a multi-key sequence on a sharded simulator
// store: every key reads back its latest write, the history stays
// consistent, and the metrics account for every operation.
func TestPutGetAcrossShards(t *testing.T) {
	st := openSim(t, Config{}, WithShards(4), WithClients(2, 2))
	ctx := context.Background()

	latest := make(map[int][]byte)
	seq := uint64(0)
	for round := 0; round < 3; round++ {
		for key := 0; key < 8; key++ {
			seq++
			v := register.MakeValue(64, seq)
			if err := st.Put(ctx, key, v); err != nil {
				t.Fatalf("Put round %d key %d: %v", round, key, err)
			}
			latest[key] = v
		}
	}
	for key, want := range latest {
		got, err := st.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get key %d: %v", key, err)
		}
		// Keys sharing a shard share a register, so a key's read returns the
		// shard's latest write — only keys alone on their shard must match.
		alone := true
		for other := range latest {
			if other != key && st.KeyShard(other) == st.KeyShard(key) {
				alone = false
				break
			}
		}
		if alone && string(got) != string(want) {
			t.Errorf("key %d read %x, want %x", key, got[:8], want[:8])
		}
	}

	if err := st.CheckConsistency(); err != nil {
		t.Errorf("CheckConsistency: %v", err)
	}
	m := st.Metrics()
	if m.TotalWrites != 24 {
		t.Errorf("TotalWrites = %d, want 24", m.TotalWrites)
	}
	if m.TotalReads != len(latest) {
		t.Errorf("TotalReads = %d, want %d", m.TotalReads, len(latest))
	}
	if m.PendingOps != 0 {
		t.Errorf("PendingOps = %d, want 0", m.PendingOps)
	}
	if m.AggregateMaxTotalBits == 0 {
		t.Error("metrics report zero storage after 24 writes")
	}
	if len(m.PerShard) != 4 {
		t.Errorf("PerShard = %d entries, want 4", len(m.PerShard))
	}
}

// TestClientSelectionRangeErrors pins the named-range error text on the
// store's explicit client-selection path.
func TestClientSelectionRangeErrors(t *testing.T) {
	st := openSim(t, Config{}, WithClients(2, 1))
	ctx := context.Background()
	err := st.PutAs(ctx, 5, 0, register.MakeValue(64, 1))
	if err == nil || !strings.Contains(err.Error(), "writer index 5 out of range [0,2)") {
		t.Errorf("PutAs error = %v, want named range [0,2)", err)
	}
	_, err = st.GetAs(ctx, -1, 0)
	if err == nil || !strings.Contains(err.Error(), "reader index -1 out of range [0,1)") {
		t.Errorf("GetAs error = %v, want named range [0,1)", err)
	}
}

// TestStepBudgetTyped pins the typed ErrStepBudget on an interactive op
// whose budget cannot cover a quorum round trip.
func TestStepBudgetTyped(t *testing.T) {
	st := openSim(t, Config{}, WithStepBudget(2))
	err := st.Put(context.Background(), 0, register.MakeValue(64, 1))
	if !errors.Is(err, store.ErrStepBudget) {
		t.Fatalf("Put error = %v, want ErrStepBudget", err)
	}
	// The abandoned op stays pending, and the history remains checkable.
	if m := st.Metrics(); m.PendingOps != 1 {
		t.Errorf("PendingOps = %d, want 1", m.PendingOps)
	}
	if err := st.CheckConsistency(); err != nil {
		t.Errorf("CheckConsistency with pending op: %v", err)
	}
}

// TestSimRetirementAfterAbandonedOp pins the regression where a
// budget-exhausted simulator op could be silently completed inside the
// kernel by a later op's fair run, after which re-invoking the same client
// appended history entries after a pending op and permanently malformed
// the shard history. The client must be retired instead: later Puts
// through the rotation report every writer retired, reads still work, and
// CheckConsistency keeps returning verdicts, not malformed-history errors.
func TestSimRetirementAfterAbandonedOp(t *testing.T) {
	st := openSim(t, Config{Algorithms: []string{store.AlgABD}, Servers: 3, F: 1}, WithStepBudget(2))
	ctx := context.Background()
	if err := st.Put(ctx, 0, register.MakeValue(64, 1)); !errors.Is(err, store.ErrStepBudget) {
		t.Fatalf("first Put = %v, want ErrStepBudget", err)
	}
	// The abandoned Get pumps more deliveries into the shared kernel, which
	// quietly completes the abandoned write inside it — the session history
	// must stay well-formed regardless.
	if _, err := st.Get(ctx, 0); !errors.Is(err, store.ErrStepBudget) {
		t.Fatalf("Get = %v, want ErrStepBudget", err)
	}
	err := st.Put(ctx, 0, register.MakeValue(64, 2))
	if err == nil || !strings.Contains(err.Error(), "retired") {
		t.Fatalf("Put on the retired sole writer = %v, want retirement error", err)
	}
	if err := st.CheckConsistency(); err != nil {
		t.Errorf("CheckConsistency after retirement: %v", err)
	}
	if m := st.Metrics(); m.PendingOps != 2 {
		t.Errorf("PendingOps = %d, want the two abandoned ops", m.PendingOps)
	}
}

// TestContextCancelled pins context awareness: an already-cancelled context
// fails fast without invoking anything.
func TestContextCancelled(t *testing.T) {
	st := openSim(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := st.Put(ctx, 0, register.MakeValue(64, 1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Put on cancelled ctx = %v, want context.Canceled", err)
	}
	if m := st.Metrics(); m.TotalWrites != 0 {
		t.Errorf("cancelled op counted: TotalWrites = %d", m.TotalWrites)
	}
}

// TestLiveInteractive drives the same interactive surface on the live
// backend: concurrent multi-key clients, value round trip, consistency.
func TestLiveInteractive(t *testing.T) {
	st := openSim(t, Config{}, WithBackend(store.BackendLive), WithShards(2), WithClients(2, 2))
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				v := register.MakeValue(64, uint64(k*100+i+1))
				if err := st.Put(ctx, k, v); err != nil {
					errs[k] = fmt.Errorf("put key %d: %w", k, err)
					return
				}
				if _, err := st.Get(ctx, k); err != nil {
					errs[k] = fmt.Errorf("get key %d: %w", k, err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckConsistency(); err != nil {
		t.Errorf("live CheckConsistency: %v", err)
	}
	m := st.Metrics()
	if m.TotalWrites != 12 || m.TotalReads != 12 {
		t.Errorf("op counts = (%d writes, %d reads), want (12, 12)", m.TotalWrites, m.TotalReads)
	}
	if m.LatencyP99 == 0 {
		t.Error("live metrics report zero p99 latency after 24 completed ops")
	}
	if err := st.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := st.Put(ctx, 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
}

// TestRunWorkloadBatch checks the handle's single-register batch path on
// the simulator, including the config fault scenario inheritance.
func TestRunWorkloadBatch(t *testing.T) {
	st := openSim(t, Config{Algorithms: []string{store.AlgABDMW}}, WithFaults("lossy=0.02"), WithSeed(7))
	res, err := st.RunWorkload(workload.Spec{Seed: 7, Writes: 8, Reads: 8, TargetNu: 2, ValueBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckConsistency(st.Condition()); err != nil {
		t.Errorf("consistency (%s): %v", st.Condition(), err)
	}
	if res.Faults.Drops == 0 {
		t.Error("lossy scenario from the store config injected no drops")
	}
}

// TestRunMultiDeterministic checks the handle's sharded batch path: same
// seed, same fingerprint at any worker count, inheriting the store's
// algorithm mix and fault scenarios.
func TestRunMultiDeterministic(t *testing.T) {
	spec := workload.MultiSpec{
		Seed: 3, Keys: 16, Ops: 48, ReadFraction: 0.25, TargetNu: 2, ValueBytes: 64,
	}
	st1 := openSim(t, Config{Algorithms: []string{store.AlgCAS, store.AlgABDMW}}, WithShards(4), WithWorkers(1), WithFaults("delay=1:8"))
	st4 := openSim(t, Config{Algorithms: []string{store.AlgCAS, store.AlgABDMW}}, WithShards(4), WithWorkers(4), WithFaults("delay=1:8"))
	r1, err := st1.RunMulti(spec)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := st4.RunMulti(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r4.Fingerprint() {
		t.Errorf("fingerprints differ across worker counts:\n%s\n%s", r1.Fingerprint(), r4.Fingerprint())
	}
	if r1.Faults.DelayedMessages == 0 {
		t.Error("config fault scenario not inherited by RunMulti")
	}
}
