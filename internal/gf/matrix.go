package gf

import "fmt"

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []Elem // len = Rows*Cols
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]Elem, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) Elem { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v Elem) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols matrix with entry (r, c) = g^(r*c)
// where g is the field generator. Any cols x cols submatrix formed from
// distinct rows r < 255 is invertible, which is the MDS property the erasure
// code relies on.
func Vandermonde(f *Field, rows, cols int) (*Matrix, error) {
	if rows >= Order {
		return nil, fmt.Errorf("gf: vandermonde rows %d exceeds field order %d", rows, Order-1)
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, f.Pow(f.Exp(r), c))
		}
	}
	return m, nil
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(f *Field, other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("gf: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < other.Cols; c++ {
				out.Data[r*out.Cols+c] ^= f.Mul(a, other.At(k, c))
			}
		}
	}
	return out, nil
}

// SubMatrix returns the matrix formed by the given rows of m (in order).
func (m *Matrix) SubMatrix(rows []int) (*Matrix, error) {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		if r < 0 || r >= m.Rows {
			return nil, fmt.Errorf("gf: row %d out of range [0,%d)", r, m.Rows)
		}
		copy(out.Data[i*m.Cols:(i+1)*m.Cols], m.Data[r*m.Cols:(r+1)*m.Cols])
	}
	return out, nil
}

// Invert returns the inverse of the square matrix m using Gauss-Jordan
// elimination. It returns an error when m is singular.
func (m *Matrix) Invert(f *Field) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf: cannot invert non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("gf: singular matrix (no pivot in column %d)", col)
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row so the pivot becomes 1.
		pinv, err := f.Inv(work.At(col, col))
		if err != nil {
			return nil, err
		}
		scaleRow(f, work, col, pinv)
		scaleRow(f, inv, col, pinv)
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := work.At(r, col)
			if factor == 0 {
				continue
			}
			addScaledRow(f, work, r, col, factor)
			addScaledRow(f, inv, r, col, factor)
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(f *Field, m *Matrix, r int, c Elem) {
	row := m.Data[r*m.Cols : (r+1)*m.Cols]
	for i := range row {
		row[i] = f.Mul(row[i], c)
	}
}

// addScaledRow does row[dst] ^= c * row[src].
func addScaledRow(f *Field, m *Matrix, dst, src int, c Elem) {
	rd := m.Data[dst*m.Cols : (dst+1)*m.Cols]
	rs := m.Data[src*m.Cols : (src+1)*m.Cols]
	for i := range rd {
		rd[i] ^= f.Mul(c, rs[i])
	}
}
