package gf

import (
	"fmt"
	"testing"
)

// BenchmarkMulSlice measures the Reed-Solomon inner loop dst[i] ^= c*src[i]
// on a 4 KiB block, the shard size the coded-register experiments hit.
// c=1 exercises the XOR fast path, the general coefficient the table kernel.
func BenchmarkMulSlice(b *testing.B) {
	f := NewField()
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i*31 + 7)
	}
	for _, c := range []Elem{1, 0x57} {
		b.Run(fmt.Sprintf("c=0x%02x", c), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.MulSlice(c, src, dst)
			}
		})
	}
	// The 4-bit nibble-table kernel, for comparison with the flat-row kernel
	// MulSlice settled on (see the MulSliceNibble doc comment).
	b.Run("nibble/c=0x57", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.MulSliceNibble(0x57, src, dst)
		}
	})
}

// TestMulSliceNibbleMatchesMulSlice pins the two slice kernels to each other
// and to the scalar definition.
func TestMulSliceNibbleMatchesMulSlice(t *testing.T) {
	f := NewField()
	src := make([]byte, 1027) // deliberately not a multiple of 8
	for i := range src {
		src[i] = byte(i*89 + 3)
	}
	for _, c := range []Elem{0, 1, 2, 0x1d, 0x57, 0xfe, 0xff} {
		a := make([]byte, len(src))
		bb := make([]byte, len(src))
		want := make([]byte, len(src))
		for i := range src {
			a[i] = byte(i * 7)
			bb[i] = byte(i * 7)
			want[i] = byte(i*7) ^ byte(f.Mul(c, Elem(src[i])))
		}
		f.MulSlice(c, src, a)
		f.MulSliceNibble(c, src, bb)
		for i := range src {
			if a[i] != want[i] {
				t.Fatalf("MulSlice c=%#x byte %d: got %#x want %#x", c, i, a[i], want[i])
			}
			if bb[i] != want[i] {
				t.Fatalf("MulSliceNibble c=%#x byte %d: got %#x want %#x", c, i, bb[i], want[i])
			}
		}
	}
}
