package gf

import (
	"testing"
	"testing/quick"
)

func TestFieldBasics(t *testing.T) {
	f := NewField()
	tests := []struct {
		name string
		got  Elem
		want Elem
	}{
		{"add identity", f.Add(0x53, 0), 0x53},
		{"add self cancels", f.Add(0x53, 0x53), 0},
		{"mul identity", f.Mul(0x53, 1), 0x53},
		{"mul zero", f.Mul(0x53, 0), 0},
		{"known product", f.Mul(0x02, 0x8e), 0x01}, // 2 * 0x8e = 0x11c ^ 0x11d = 1
		{"generator squared", f.Mul(2, 2), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %#x, want %#x", tt.got, tt.want)
			}
		})
	}
}

func TestInverses(t *testing.T) {
	f := NewField()
	for a := 1; a < Order; a++ {
		inv, err := f.Inv(Elem(a))
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if got := f.Mul(Elem(a), inv); got != 1 {
			t.Fatalf("a=%d: a*a^-1 = %d, want 1", a, got)
		}
	}
	if _, err := f.Inv(0); err == nil {
		t.Error("Inv(0) should fail")
	}
	if _, err := f.Div(5, 0); err == nil {
		t.Error("Div(5, 0) should fail")
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := NewField()
	check := func(a, b Elem) bool {
		if b == 0 {
			return true
		}
		q, err := f.Div(a, b)
		if err != nil {
			return false
		}
		return f.Mul(q, b) == a
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestFieldAxioms property-tests associativity, commutativity and
// distributivity over random triples.
func TestFieldAxioms(t *testing.T) {
	f := NewField()
	axioms := func(a, b, c Elem) bool {
		if f.Add(a, b) != f.Add(b, a) {
			return false
		}
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
			return false
		}
		// a*(b+c) == a*b + a*c
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(axioms, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	f := NewField()
	for a := 1; a < 20; a++ {
		acc := Elem(1)
		for n := 0; n < 10; n++ {
			if got := f.Pow(Elem(a), n); got != acc {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, n, got, acc)
			}
			acc = f.Mul(acc, Elem(a))
		}
	}
	if got := f.Pow(0, 0); got != 1 {
		t.Errorf("Pow(0,0) = %d, want 1 (empty product)", got)
	}
	if got := f.Pow(0, 3); got != 0 {
		t.Errorf("Pow(0,3) = %d, want 0", got)
	}
}

func TestExpIsPeriodic(t *testing.T) {
	f := NewField()
	for i := 0; i < 3*(Order-1); i++ {
		if f.Exp(i) != f.Exp(i%(Order-1)) {
			t.Fatalf("Exp not periodic at %d", i)
		}
	}
	if f.Exp(-1) != f.Exp(Order-2) {
		t.Error("Exp should handle negative exponents")
	}
}

func TestMulSlice(t *testing.T) {
	f := NewField()
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, len(src))
	f.MulSlice(7, src, dst)
	for i := range src {
		want := byte(f.Mul(7, Elem(src[i])))
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
	// c = 1 must XOR src into dst.
	dst2 := []byte{9, 9, 9, 9, 9}
	f.MulSlice(1, src, dst2)
	for i := range src {
		if dst2[i] != 9^src[i] {
			t.Fatalf("MulSlice c=1 mismatch at %d", i)
		}
	}
	// c = 0 must be a no-op.
	before := append([]byte(nil), dst...)
	f.MulSlice(0, src, dst)
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("MulSlice c=0 modified dst")
		}
	}
}

func TestMatrixInvert(t *testing.T) {
	f := NewField()
	for n := 1; n <= 8; n++ {
		v, err := Vandermonde(f, n, n)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := v.Invert(f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod, err := v.Mul(f, inv)
		if err != nil {
			t.Fatal(err)
		}
		id := Identity(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("n=%d: V * V^-1 != I at index %d", n, i)
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	f := NewField()
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // identical rows => singular
	if _, err := m.Invert(f); err == nil {
		t.Error("inverting a singular matrix should fail")
	}
	rect := NewMatrix(2, 3)
	if _, err := rect.Invert(f); err == nil {
		t.Error("inverting a non-square matrix should fail")
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	f := NewField()
	v, err := Vandermonde(f, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every 3-row submatrix must be invertible (MDS property).
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			for c := b + 1; c < 8; c++ {
				sub, err := v.SubMatrix([]int{a, b, c})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sub.Invert(f); err != nil {
					t.Fatalf("rows (%d,%d,%d): %v", a, b, c, err)
				}
			}
		}
	}
}

func TestSubMatrixRange(t *testing.T) {
	m := NewMatrix(2, 2)
	if _, err := m.SubMatrix([]int{5}); err == nil {
		t.Error("out-of-range row should fail")
	}
}

func BenchmarkMul(b *testing.B) {
	f := NewField()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(Elem(i), Elem(i>>8))
	}
}

func BenchmarkMulSlice4K(b *testing.B) {
	f := NewField()
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.MulSlice(17, src, dst)
	}
}
