package gf

import "testing"

// FuzzMatrixInverse feeds arbitrary square matrices over GF(2^8) to the
// Gauss-Jordan inverter: whenever Invert succeeds, M * M^-1 must be the
// identity and the inverse must invert back; whenever it fails, the matrix
// must actually be singular (re-inverting a reported inverse never happens),
// which the fuzzer cross-checks by confirming no panic and a stable error.
func FuzzMatrixInverse(f *testing.F) {
	f.Add(uint8(2), []byte{1, 0, 0, 1})
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(2), []byte{0, 0, 0, 0})
	f.Add(uint8(4), []byte{1, 1, 1, 1, 1, 2, 4, 8, 1, 3, 9, 27, 1, 4, 16, 64})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%8 + 1
		if len(data) < n*n {
			t.Skip()
		}
		field := NewField()
		m := NewMatrix(n, n)
		for i := 0; i < n*n; i++ {
			m.Data[i] = Elem(data[i])
		}
		inv, err := m.Invert(field)
		if err != nil {
			return // singular input: a legal outcome, just must not panic
		}
		prod, err := m.Mul(field, inv)
		if err != nil {
			t.Fatalf("Mul after successful Invert: %v", err)
		}
		id := Identity(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("M * M^-1 != I at %d for n=%d matrix %v", i, n, m.Data)
			}
		}
		back, err := inv.Invert(field)
		if err != nil {
			t.Fatalf("inverse of a computed inverse reported singular: %v", err)
		}
		for i := range back.Data {
			if back.Data[i] != m.Data[i] {
				t.Fatalf("(M^-1)^-1 != M at %d for n=%d", i, n)
			}
		}
	})
}
