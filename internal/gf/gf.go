// Package gf implements arithmetic over the finite field GF(2^8).
//
// The field is realized as polynomials over GF(2) modulo the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by
// most Reed-Solomon deployments. Multiplication and division are performed
// through logarithm/antilogarithm tables so that both run in constant time.
//
// GF(2^8) is the substrate for the erasure codes in package erasure, which in
// turn back the coded shared-memory registers that the storage-cost
// experiments measure.
package gf

import "fmt"

// Poly is the primitive polynomial used to construct the field
// (x^8 + x^4 + x^3 + x^2 + 1).
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

// Elem is an element of GF(2^8).
type Elem uint8

// Field holds the precomputed log/exp tables for GF(2^8).
//
// A Field is immutable after construction and safe for concurrent use.
type Field struct {
	exp [2 * (Order - 1)]Elem // exp[i] = g^i, doubled to avoid mod in Mul
	log [Order]int            // log[exp[i]] = i; log[0] unused
}

// NewField builds the GF(2^8) log/exp tables. The generator is g = 2, which
// is primitive for Poly.
func NewField() *Field {
	var f Field
	x := 1
	for i := 0; i < Order-1; i++ {
		f.exp[i] = Elem(x)
		f.log[x] = i
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
	// Duplicate the exp table so Mul can index exp[logA+logB] directly.
	for i := Order - 1; i < 2*(Order-1); i++ {
		f.exp[i] = f.exp[i-(Order-1)]
	}
	return &f
}

// Add returns a + b. In characteristic 2, addition is XOR and is identical to
// subtraction.
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Sub returns a - b, which equals a + b in GF(2^8).
func (f *Field) Sub(a, b Elem) Elem { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a / b. Division by zero is reported as an error.
func (f *Field) Div(a, b Elem) (Elem, error) {
	if b == 0 {
		return 0, fmt.Errorf("gf: division by zero (a=%d)", a)
	}
	if a == 0 {
		return 0, nil
	}
	d := f.log[a] - f.log[b]
	if d < 0 {
		d += Order - 1
	}
	return f.exp[d], nil
}

// Inv returns the multiplicative inverse of a. Zero has no inverse.
func (f *Field) Inv(a Elem) (Elem, error) {
	if a == 0 {
		return 0, fmt.Errorf("gf: zero has no multiplicative inverse")
	}
	return f.exp[(Order-1)-f.log[a]], nil
}

// Pow returns a raised to the power n (n >= 0).
func (f *Field) Pow(a Elem, n int) Elem {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (f.log[a] * n) % (Order - 1)
	return f.exp[l]
}

// Exp returns g^i where g = 2 is the field generator.
func (f *Field) Exp(i int) Elem {
	i %= Order - 1
	if i < 0 {
		i += Order - 1
	}
	return f.exp[i]
}

// MulSlice computes dst[i] ^= c * src[i] for all i. It is the inner loop of
// Reed-Solomon encoding. dst and src must have equal length.
func (f *Field) MulSlice(c Elem, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := f.log[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= byte(f.exp[lc+f.log[s]])
		}
	}
}
