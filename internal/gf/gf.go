// Package gf implements arithmetic over the finite field GF(2^8).
//
// The field is realized as polynomials over GF(2) modulo the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by
// most Reed-Solomon deployments. Single-element products come from a full
// 256x256 product table; division uses logarithm/antilogarithm tables; and
// the slice kernel behind Reed-Solomon encoding uses 4-bit nibble tables
// with 8-bytes-per-step uint64 word processing (the technique popularized by
// klauspost/reedsolomon's pure-Go kernels).
//
// GF(2^8) is the substrate for the erasure codes in package erasure, which in
// turn back the coded shared-memory registers that the storage-cost
// experiments measure.
package gf

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Poly is the primitive polynomial used to construct the field
// (x^8 + x^4 + x^3 + x^2 + 1).
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

// Elem is an element of GF(2^8).
type Elem uint8

// Field holds the precomputed multiplication tables for GF(2^8).
//
// A Field is immutable after construction and safe for concurrent use.
type Field struct {
	exp [2 * (Order - 1)]Elem // exp[i] = g^i, doubled to avoid mod in Div
	log [Order]int            // log[exp[i]] = i; log[0] unused

	// mul is the full product table: mul[a][b] = a*b. It removes the
	// zero-branches and log/exp indirection from the matrix kernels.
	mul [Order][Order]byte

	// low and high are the 4-bit nibble tables of the slice kernel:
	// low[c][x] = c * x and high[c][x] = c * (x << 4), so
	// c * b = low[c][b&15] ^ high[c][b>>4] with two small cache-resident
	// lookups per byte.
	low  [Order][16]byte
	high [Order][16]byte
}

// NewField builds the GF(2^8) tables. The generator is g = 2, which is
// primitive for Poly.
func NewField() *Field {
	var f Field
	x := 1
	for i := 0; i < Order-1; i++ {
		f.exp[i] = Elem(x)
		f.log[x] = i
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
	// Duplicate the exp table so products of logs can index it directly.
	for i := Order - 1; i < 2*(Order-1); i++ {
		f.exp[i] = f.exp[i-(Order-1)]
	}
	for a := 1; a < Order; a++ {
		la := f.log[a]
		for b := 1; b < Order; b++ {
			f.mul[a][b] = byte(f.exp[la+f.log[b]])
		}
	}
	for c := 0; c < Order; c++ {
		for x := 0; x < 16; x++ {
			f.low[c][x] = f.mul[c][x]
			f.high[c][x] = f.mul[c][x<<4]
		}
	}
	return &f
}

// defaultField builds the shared field tables once; every (n, k) code uses
// the same field, so there is no reason to rebuild 80 KiB of tables per
// deployment.
var defaultField = sync.OnceValue(NewField)

// Default returns the shared GF(2^8) field. It is immutable and safe for
// concurrent use.
func Default() *Field { return defaultField() }

// Add returns a + b. In characteristic 2, addition is XOR and is identical to
// subtraction.
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Sub returns a - b, which equals a + b in GF(2^8).
func (f *Field) Sub(a, b Elem) Elem { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b Elem) Elem { return Elem(f.mul[a][b]) }

// Div returns a / b. Division by zero is reported as an error.
func (f *Field) Div(a, b Elem) (Elem, error) {
	if b == 0 {
		return 0, fmt.Errorf("gf: division by zero (a=%d)", a)
	}
	if a == 0 {
		return 0, nil
	}
	d := f.log[a] - f.log[b]
	if d < 0 {
		d += Order - 1
	}
	return f.exp[d], nil
}

// Inv returns the multiplicative inverse of a. Zero has no inverse.
func (f *Field) Inv(a Elem) (Elem, error) {
	if a == 0 {
		return 0, fmt.Errorf("gf: zero has no multiplicative inverse")
	}
	return f.exp[(Order-1)-f.log[a]], nil
}

// Pow returns a raised to the power n (n >= 0).
func (f *Field) Pow(a Elem, n int) Elem {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (f.log[a] * n) % (Order - 1)
	return f.exp[l]
}

// Exp returns g^i where g = 2 is the field generator.
func (f *Field) Exp(i int) Elem {
	i %= Order - 1
	if i < 0 {
		i += Order - 1
	}
	return f.exp[i]
}

// MulSlice computes dst[i] ^= c * src[i] for all i. It is the inner loop of
// Reed-Solomon encoding. dst and src must have equal length.
//
// The kernel walks both slices in uint64 words: eight source bytes are
// loaded at once, multiplied through the coefficient's two 16-entry nibble
// tables, repacked, and folded into dst with a single 8-byte XOR store.
func (f *Field) MulSlice(c Elem, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(src, dst)
		return
	}
	mt := &f.mul[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		p := uint64(mt[s&255]) |
			uint64(mt[s>>8&255])<<8 |
			uint64(mt[s>>16&255])<<16 |
			uint64(mt[s>>24&255])<<24 |
			uint64(mt[s>>32&255])<<32 |
			uint64(mt[s>>40&255])<<40 |
			uint64(mt[s>>48&255])<<48 |
			uint64(mt[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= mt[src[i]]
	}
}

// MulSliceNibble is the 4-bit table variant of MulSlice: each byte is
// resolved through the coefficient's two 16-entry nibble tables (32 bytes of
// table, always cache-resident) instead of its 256-entry product row. On
// cores with large L1 caches the flat row wins (see BenchmarkMulSlice), so
// MulSlice uses the row kernel; this variant is kept for the comparison
// benchmark and for cache-constrained targets.
func (f *Field) MulSliceNibble(c Elem, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(src, dst)
		return
	}
	low, high := &f.low[c], &f.high[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		p := uint64(low[s&15] ^ high[s>>4&15])
		p |= uint64(low[s>>8&15]^high[s>>12&15]) << 8
		p |= uint64(low[s>>16&15]^high[s>>20&15]) << 16
		p |= uint64(low[s>>24&15]^high[s>>28&15]) << 24
		p |= uint64(low[s>>32&15]^high[s>>36&15]) << 32
		p |= uint64(low[s>>40&15]^high[s>>44&15]) << 40
		p |= uint64(low[s>>48&15]^high[s>>52&15]) << 48
		p |= uint64(low[s>>56&15]^high[s>>60&15]) << 56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i < len(src); i++ {
		b := src[i]
		dst[i] ^= low[b&15] ^ high[b>>4]
	}
}

// xorSlice folds src into dst eight bytes per step.
func xorSlice(src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
