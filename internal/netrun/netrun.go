// Package netrun executes register-emulation clusters over a real network:
// every node automaton owns a TCP endpoint (internal/transport), messages
// cross real sockets as compact binary frames (internal/wire), and faults
// become physical events — a dropped message is never written to its socket,
// a delayed message is held before the write, a partitioned link's frames
// are held at the sender until the outage window ends. The node automata are
// exactly the ones `internal/abd`, `internal/cas` and `internal/coded`
// deploy; like the live backend, this package clones them out of the cluster
// registry and drives them itself, so the same deployment runs unchanged on
// any backend.
//
// The contract relative to the other two backends (DESIGN.md section 10):
//
//   - The simulator remains the determinism oracle. The net runtime, like
//     the live one, makes no scheduling promise: histories differ run to
//     run, and only safety verdicts are comparable.
//   - Safety is checked identically: per-client operation logs, ordered by a
//     shared atomic clock whose modification order is consistent with real
//     time, merge into an ioa.History for the internal/consistency checkers.
//   - Faults: drop/delay rules are consulted at socket-write time with a
//     global send sequence number, exactly as the kernel and live runtime
//     do, with delay steps scaled to wall time by Config.StepDur. Outage
//     (partition) windows and scheduled crash/recovery events run against
//     the same wall-clock step mapping via a faults.WallClock (DESIGN.md
//     section 12): each socket write is gated on LinkBlocked at the current
//     step with blocked frames held to the window boundary; a crashed node's
//     goroutine stops and its TCP endpoint closes (peers' in-flight frames
//     die as real network loss), and a scheduled recovery restarts the node
//     from its last durable checkpoint (ioa.Recoverable) on a fresh
//     listening endpoint — peers redial the new address on their next send.
//     Recovery for a node without the Snapshot/Restore surface is the one
//     remaining unsupported combination, rejected with faults.ErrUnsupported.
//   - Flow control (DESIGN.md section 11): mailboxes and the transport's
//     per-connection outboxes are bounded; a full queue blocks the sender
//     up to its SendTimeout and then drops, counted in
//     FaultStats.TransportDropped — real backpressure in place of the old
//     unbounded spawn-on-overflow fallback. A transport reader blocked on
//     a full mailbox stops reading its socket, so backpressure propagates
//     peer-to-peer through TCP's own flow control; the kernel's socket
//     buffers (megabytes per connection) break sender/receiver cycles long
//     before the drop deadline does. The transport writer coalesces queued
//     frames into compound envelopes (internal/wire), so a burst costs one
//     syscall instead of one per message.
//   - Liveness is a verdict, not a hang: every operation carries a timeout,
//     and a run whose operations time out under a fault plan reports
//     Quiescent with those operations pending in the history.
package netrun

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes the net runtime. The zero value selects the defaults.
type Config struct {
	// ListenAddr is the address every node endpoint listens on (default
	// "127.0.0.1:0": one ephemeral loopback port per node). A fixed port in
	// the spec would collide across nodes, so the port part should stay 0.
	ListenAddr string
	// StepDur converts a fault plan's steps into wall-clock time (default
	// 100µs): delay steps scale to holds of delay*StepDur, and outage
	// windows [Start, End) cover wall-clock [Start*StepDur, End*StepDur)
	// from the run's start.
	StepDur time.Duration
	// OpTimeout bounds each operation's completion (default 5s). A client
	// whose operation times out is retired — its automaton may still be
	// waiting on lost frames — and the operation stays pending in the
	// history unless its response arrives before shutdown.
	OpTimeout time.Duration
	// Mailbox is the per-node buffered event queue capacity (default 128).
	Mailbox int
	// DialTimeout bounds each outbound connection attempt (default: the
	// transport's own 2s).
	DialTimeout time.Duration
	// Outbox is the transport's per-connection send queue capacity
	// (default: the transport's own 256).
	Outbox int
	// SendTimeout bounds how long a sender blocks on a full mailbox or
	// transport outbox before the message is dropped and counted (default
	// 1s). This is the backpressure window replacing the old unbounded
	// spawn-on-overflow fallback.
	SendTimeout time.Duration
	// Pipeline is the number of operations each batch driver keeps in
	// flight per client (default 1). The node queues invocations and
	// starts each only when its predecessor responds, so per-client
	// program order is preserved and the automaton still holds one
	// operation at a time.
	Pipeline int
	// Checkpoint is the durable-state snapshot interval for nodes the fault
	// plan schedules a recovery for (default 5ms). A recovering node
	// restarts from its last checkpoint; state mutated after it is lost.
	Checkpoint time.Duration
	// Sink, when non-nil, switches the runtime to streaming history mode:
	// operations are registered with an ioa.OpFeed at invocation and
	// released into the sink in invocation order as they settle, instead of
	// accumulating in per-client logs merged at shutdown. The feed's own
	// clock stamps every op, and Result.History then carries only the
	// pending tail (the sink has absorbed everything else). Feed an
	// OnlineChecker here to verify the run while it executes.
	Sink ioa.HistorySink
	// SyncOps, when positive, installs periodic quiescence points in the
	// batch drivers: after every SyncOps issued operations (globally, across
	// all drivers), every driver drains its in-flight operations and they
	// meet at a barrier before any issues again. Each sync is a moment with
	// nothing in flight — a clean cut in the recorded history — so an online
	// checker fed through Sink is guaranteed a window-retirement opportunity
	// at least once per sync, bounding its peak memory by construction
	// rather than by the scheduler happening to align the clients' idle
	// gaps. Zero disables syncing; the store engine's online-check mode
	// (store.Options.OnlineCheck) defaults it to the retirement window, and
	// a negative value forces it off even there.
	SyncOps int
	// Telemetry, when it carries a registry, streams run metrics into it:
	// per-node storage-bit gauges sampled on a ticker next to the paper's
	// Theorem 4.1/5.1 bounds, per-node transport counters lifted from the
	// endpoints, op counters/latency histograms from the batch drivers,
	// online-checker lag gauges, and sampled op-lifecycle spans. nil (the
	// default) records nothing and costs nothing on the hot path.
	Telemetry *telemetry.RunTelemetry
}

func (c Config) withDefaults() Config {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.StepDur <= 0 {
		c.StepDur = 100 * time.Microsecond
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 128
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Checkpoint <= 0 {
		c.Checkpoint = 5 * time.Millisecond
	}
	return c
}

func (c Config) transportConfig() transport.Config {
	return transport.Config{DialTimeout: c.DialTimeout, Outbox: c.Outbox, SendTimeout: c.SendTimeout}
}

// drainBatch bounds how many extra mailbox events a node loop handles per
// wakeup (see internal/live: coalescing amortizes the scheduler round trip,
// the bound keeps one hot node preemptible).
const drainBatch = 32

// PlanSupported reports whether a fault plan is well-formed for the net
// runtime. Every fault class runs here now — drop/delay rules, outage
// windows and scheduled crash/recovery events, the step-indexed ones mapped
// onto wall time by a faults.WallClock — so this only validates the plan's
// shape. The one genuinely unsupported combination, scheduled recovery of a
// node without the ioa.Recoverable surface, needs the deployed automata to
// detect and is rejected by the runtime itself with faults.ErrUnsupported.
func PlanSupported(p *faults.Plan) error {
	if p == nil {
		return nil
	}
	return p.Validate()
}

// event is one mailbox entry: a message delivery decoded off a socket, or
// (inv != nil) an operation invocation injected by the driver. Both are
// handled on the node's own goroutine, so automaton state stays
// goroutine-confined even though frames arrive on transport reader
// goroutines.
type event struct {
	from ioa.NodeID
	msg  ioa.Message
	inv  *invokeEvent
}

// Invocation lifecycle states, arbitrated by one atomic CAS exactly as on
// the live backend: the node's queued->started transition races the
// driver's queued->abandoned transition and exactly one wins.
const (
	invQueued    int32 = iota // in a mailbox or node queue, not yet started
	invStarted                // the automaton has been invoked
	invAbandoned              // the driver gave up before it started
)

type invokeEvent struct {
	inv   ioa.Invocation
	done  chan []byte     // buffered 1; receives the response value when recorded
	state atomic.Int32    // invQueued -> invStarted (node) | invAbandoned (driver)
	span  *telemetry.Span // sampled lifecycle trace; nil for unsampled ops
}

// opRecord is one per-client log entry, timestamped by the runtime's atomic
// clock (see internal/live: the clock's modification order is consistent
// with real time, so merged records preserve real-time precedence).
type opRecord struct {
	kind      ioa.OpKind
	input     []byte
	output    []byte
	invokeTS  int64
	respondTS int64 // -1 while pending
}

// nodeState is everything a node goroutine owns: the automaton clone, its
// TCP endpoint, its mailbox, the client op log and the server storage
// maxima. Only the node's own goroutine touches the automaton and log
// between start and join — across a scheduled crash, ownership passes to the
// WallClock's event goroutine (which joins the loop first) and back to the
// next incarnation's loop. The endpoint is internally synchronized; the ep
// FIELD is guarded by the runtime's netMu, because recovery replaces it.
type nodeState struct {
	id   ioa.NodeID
	node ioa.Node
	ep   *transport.Endpoint // guarded by runtime.netMu (replaced on recovery)
	mb   chan event          // one channel for the node's whole lifetime, across incarnations

	log         []opRecord
	pendingIdx  int         // index in log of the outstanding op; -1 when none
	pendingTk   *ioa.Ticket // outstanding op's feed ticket (streaming mode)
	pendingDone chan []byte
	invq        []*invokeEvent // pipelined invocations awaiting their turn

	meter            ioa.StorageMeter // nil unless the node reports storage; loop-owned (rewritten on recovery)
	metered          bool             // set once at construction: the automaton type reports storage
	curBits, maxBits atomic.Int64     // written by the node loop, readable mid-run
	pendingSpan      *telemetry.Span  // outstanding op's trace span; loop-owned

	// Crash-recovery machinery (DESIGN.md section 12). crashCh and loopDone
	// belong to one incarnation of the node loop; the WallClock goroutine
	// replaces them only between incarnations (after closing crashCh and
	// joining loopDone), so the loop reads them race-free.
	init     ioa.Node    // pristine automaton recovery restarts from; nil when no recovery is scheduled
	ckpt     bool        // the plan schedules a recovery: checkpoint durable state
	down     atomic.Bool // true between a crash and its recovery
	crashCh  chan struct{}
	loopDone chan struct{}

	snapMu  sync.Mutex
	snap    ioa.NodeSnapshot // last durable checkpoint (written by the loop, read at recovery)
	hasSnap bool
}

// runtime drives one cluster's automata over real sockets.
type runtime struct {
	cfg   Config
	plan  *faults.Plan
	wc    *faults.WallClock // step clock + crash/recovery event schedule
	nodes map[ioa.NodeID]*nodeState

	netMu sync.RWMutex          // guards addrs and every nodeState.ep
	addrs map[ioa.NodeID]string // dialable address per node; recovery re-points a crashed node

	clock atomic.Int64  // history timestamp source (batch mode)
	feed  *ioa.OpFeed   // streaming-mode op pipeline; nil in batch mode
	seq   atomic.Uint64 // global send sequence number for MessageFate

	tracer *telemetry.Tracer // sampled op-lifecycle spans; nil when telemetry is off

	drops, delayed, delaySteps atomic.Int64
	badFrames                  atomic.Int64 // undecodable inbound frames, dropped
	overflow                   atomic.Int64 // events dropped after SendTimeout on a full mailbox
	sendErrs                   atomic.Int64 // frames lost to failed dials/closed endpoints
	checkpoints                atomic.Int64 // durable-state snapshots taken
	retiredDropped             atomic.Int64 // transport loss accumulated off endpoints a crash retired
	retiredRequeued            atomic.Int64

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{} // pending delay/outage timers, stopped at shutdown
	stopped bool

	done chan struct{}
	wg   sync.WaitGroup
}

// newRuntime clones every automaton out of the cluster registry and opens a
// listening endpoint per node, so the full NodeID -> address map exists
// before any frame is sent. The cluster itself is left untouched — its
// simulator System remains pristine. On error every endpoint already opened
// is closed.
func newRuntime(cl *cluster.Cluster, plan *faults.Plan, cfg Config) (*runtime, error) {
	if err := PlanSupported(plan); err != nil {
		return nil, err
	}
	rt := &runtime{
		cfg:    cfg,
		plan:   plan,
		nodes:  make(map[ioa.NodeID]*nodeState),
		addrs:  make(map[ioa.NodeID]string),
		timers: make(map[*time.Timer]struct{}),
		done:   make(chan struct{}),
	}
	if cfg.Sink != nil {
		rt.feed = ioa.NewOpFeed(cfg.Sink)
	}
	if cfg.Telemetry.Active() {
		rt.tracer = cfg.Telemetry.Registry.Tracer()
	}
	for _, id := range cl.Sys.NodeIDs() {
		n, err := cl.Automaton(id)
		if err != nil {
			rt.closeEndpoints()
			return nil, err
		}
		ep, err := transport.Listen(cfg.ListenAddr, cfg.transportConfig())
		if err != nil {
			rt.closeEndpoints()
			return nil, fmt.Errorf("netrun: node %d: %w", id, err)
		}
		ns := &nodeState{
			id:         id,
			node:       n.Clone(),
			ep:         ep,
			mb:         make(chan event, cfg.Mailbox),
			pendingIdx: -1,
			crashCh:    make(chan struct{}),
			loopDone:   make(chan struct{}),
		}
		ns.meter, _ = ns.node.(ioa.StorageMeter)
		ns.metered = ns.meter != nil
		rt.nodes[id] = ns
		rt.addrs[id] = ep.Addr()
	}
	if plan != nil {
		for _, id := range plan.RecoveredNodes() {
			ns := rt.nodes[id]
			if ns == nil {
				rt.closeEndpoints()
				return nil, fmt.Errorf("netrun: fault plan schedules recovery of unknown node %d", id)
			}
			if _, ok := ns.node.(ioa.Recoverable); !ok {
				rt.closeEndpoints()
				return nil, fmt.Errorf("netrun: %w: node %d (%T) is scheduled to recover but has no Snapshot/Restore surface",
					faults.ErrUnsupported, id, ns.node)
			}
			ns.init = ns.node.Clone()
			ns.ckpt = true
		}
	}
	rt.wc = faults.NewWallClock(plan, cfg.StepDur)
	return rt, nil
}

func (rt *runtime) closeEndpoints() {
	rt.netMu.RLock()
	defer rt.netMu.RUnlock()
	for _, ns := range rt.nodes {
		ns.ep.Close()
	}
}

// start installs every endpoint's frame handler, launches one goroutine per
// node, then starts the wall clock: its epoch is stamped after every loop is
// running, so a crash scheduled at step 0 still finds a live incarnation to
// stop.
func (rt *runtime) start() {
	for _, ns := range rt.nodes {
		ns := ns
		ns.ep.Serve(func(frame []byte) { rt.inbound(ns, frame) })
		rt.wg.Add(1)
		go rt.loop(ns)
	}
	rt.wc.Start(faults.NodeHooks{Crash: rt.crashNode, Recover: rt.recoverNode})
}

// stop shuts everything down: no more frames are handed to mailboxes, every
// pending delay/outage timer is stopped, every socket closes, every
// goroutine joins. The wall clock stops first, so no crash/recovery hook is
// in flight when wg.Wait begins. After stop returns, the per-node logs and
// storage maxima are safe to read from the caller.
func (rt *runtime) stop() {
	rt.wc.Stop()
	close(rt.done)
	rt.timerMu.Lock()
	rt.stopped = true
	for t := range rt.timers {
		t.Stop()
	}
	rt.timers = nil
	rt.timerMu.Unlock()
	rt.closeEndpoints()
	rt.wg.Wait()
}

// inbound decodes one frame off a node's socket and posts it to the node's
// mailbox. Undecodable frames are counted and dropped — on a real network a
// corrupt datagram is silence, and protocol timeouts own recovery. A full
// mailbox blocks the reader (bounded by SendTimeout), which stops the
// socket read loop — backpressure the peer's TCP stack propagates.
func (rt *runtime) inbound(ns *nodeState, frame []byte) {
	from, n := binary.Uvarint(frame)
	if n <= 0 {
		rt.badFrames.Add(1)
		return
	}
	msg, err := wire.Decode(frame[n:])
	if err != nil {
		rt.badFrames.Add(1)
		return
	}
	rt.post(ns, event{from: ioa.NodeID(from), msg: msg})
}

// loop is one node goroutine — one incarnation of the node: it handles its
// first event, then drains up to drainBatch more without going back to the
// scheduler. A checkpointing node additionally snapshots its durable state
// on a ticker — on its own goroutine, so Snapshot never races
// Deliver/Invoke — with one initial checkpoint before any event, so a crash
// at any point has an image to recover from.
func (rt *runtime) loop(ns *nodeState) {
	crashed, exited := ns.crashCh, ns.loopDone
	defer close(exited)
	defer rt.wg.Done()
	var tick <-chan time.Time
	if ns.ckpt {
		rt.checkpoint(ns)
		t := time.NewTicker(rt.cfg.Checkpoint)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-rt.done:
			return
		case <-crashed:
			return
		case <-tick:
			rt.checkpoint(ns)
		case ev := <-ns.mb:
			rt.handle(ns, ev)
			for i := 0; i < drainBatch; i++ {
				select {
				case ev := <-ns.mb:
					rt.handle(ns, ev)
				default:
					i = drainBatch
				}
			}
		}
	}
}

// checkpoint images the node's durable state under the snapshot mutex, where
// a later recovery reads it.
func (rt *runtime) checkpoint(ns *nodeState) {
	r, ok := ns.node.(ioa.Recoverable)
	if !ok {
		return
	}
	snap := r.Snapshot()
	ns.snapMu.Lock()
	ns.snap, ns.hasSnap = snap, true
	ns.snapMu.Unlock()
	rt.checkpoints.Add(1)
}

// crashNode stops a node mid-run: runs on the WallClock's event goroutine.
// The incarnation's loop is signalled and joined, the node's TCP endpoint is
// closed — in-flight frames from peers die as real network loss, counted by
// their senders — and its volatile state (queued mailbox events,
// not-yet-started invocations) is discarded. An operation the automaton held
// mid-protocol stays pending in the log forever, exactly what the
// consistency checkers' completion semantics expect of an op lost to a crash.
func (rt *runtime) crashNode(id ioa.NodeID) {
	ns := rt.nodes[id]
	if ns == nil || ns.down.Load() {
		return
	}
	ns.down.Store(true)
	close(ns.crashCh)
	<-ns.loopDone
	rt.netMu.RLock()
	ep := ns.ep
	rt.netMu.RUnlock()
	ep.Close()
	// Fold the dead endpoint's loss accounting into the runtime's counters
	// before a recovery replaces it, so faultStats never understates loss.
	s := ep.Stats()
	rt.retiredDropped.Add(int64(s.DroppedFull + s.DroppedDead + s.Malformed))
	rt.retiredRequeued.Add(int64(s.Requeued))
	rt.discardVolatile(ns)
}

// discardVolatile empties the node's mailbox and queues between incarnations.
// Only called with no loop goroutine running, so the loop-owned fields are
// safe to touch.
func (rt *runtime) discardVolatile(ns *nodeState) {
	for {
		select {
		case ev := <-ns.mb:
			if ev.inv != nil {
				ev.inv.state.CompareAndSwap(invQueued, invAbandoned)
			}
		default:
			for _, ie := range ns.invq {
				ie.state.CompareAndSwap(invQueued, invAbandoned)
			}
			ns.invq = nil
			ns.pendingIdx = -1
			if ns.pendingTk != nil {
				// The op dies with the crash: permanently pending.
				ns.pendingTk.Abandon()
				ns.pendingTk = nil
			}
			ns.pendingDone = nil
			return
		}
	}
}

// recoverNode restarts a crashed node from its last durable checkpoint: runs
// on the WallClock's event goroutine, strictly after the node's crash. The
// new incarnation is a pristine clone of the deployed automaton with the
// checkpoint restored onto it, listening on a FRESH endpoint: the address
// map is re-pointed under netMu, so peers redial the new address on their
// next send while anything aimed at the dead socket is counted loss.
func (rt *runtime) recoverNode(id ioa.NodeID) {
	ns := rt.nodes[id]
	if ns == nil || !ns.down.Load() || ns.init == nil {
		return
	}
	ep, err := transport.Listen(rt.cfg.ListenAddr, rt.cfg.transportConfig())
	if err != nil {
		return // no listener, no rejoin; the node stays down
	}
	node := ns.init.Clone()
	ns.snapMu.Lock()
	snap, ok := ns.snap, ns.hasSnap
	ns.snapMu.Unlock()
	if ok {
		// Same automaton type by construction; Restore cannot reject it.
		if err := node.(ioa.Recoverable).Restore(snap); err != nil {
			ep.Close()
			return // leave the node down rather than rejoin with bogus state
		}
	}
	ns.node = node
	ns.meter, _ = node.(ioa.StorageMeter)
	rt.discardVolatile(ns) // frames that raced the endpoint close die with the crash
	rt.netMu.Lock()
	ns.ep = ep
	rt.addrs[id] = ep.Addr()
	rt.netMu.Unlock()
	ep.Serve(func(frame []byte) { rt.inbound(ns, frame) })
	ns.crashCh = make(chan struct{})
	ns.loopDone = make(chan struct{})
	ns.down.Store(false)
	rt.wg.Add(1)
	go rt.loop(ns)
}

// handle processes one mailbox event on the node's goroutine, exactly as the
// live runtime does: invocations are queued and started only while no
// operation is pending, so a pipelining driver may submit several ops while
// the automaton still holds one at a time; deliveries go straight to the
// automaton.
func (rt *runtime) handle(ns *nodeState, ev event) {
	if ev.inv != nil {
		ns.invq = append(ns.invq, ev.inv)
	} else {
		rt.apply(ns, ns.node.Deliver(ev.from, ev.msg))
	}
	for ns.pendingIdx < 0 && ns.pendingTk == nil && len(ns.invq) > 0 {
		ie := ns.invq[0]
		ns.invq = ns.invq[1:]
		if !ie.state.CompareAndSwap(invQueued, invStarted) {
			continue // abandoned before it started: it never happened
		}
		ie.span.Mark(telemetry.StageStart)
		ns.pendingSpan = ie.span
		if rt.feed != nil {
			ns.pendingTk = rt.feed.Begin(ns.id, ie.inv.Kind, ie.inv.Value)
		} else {
			ns.log = append(ns.log, opRecord{
				kind:      ie.inv.Kind,
				input:     ie.inv.Value,
				invokeTS:  rt.clock.Add(1),
				respondTS: -1,
			})
			ns.pendingIdx = len(ns.log) - 1
		}
		ns.pendingDone = ie.done
		rt.apply(ns, ns.node.(ioa.Client).Invoke(ie.inv))
	}
}

// apply records a response (timestamped before the effects' sends are
// dispatched — the response is determined by then, so shrinking the
// recorded interval to that point is sound for the checkers), dispatches
// the sends, and refreshes the storage meters.
func (rt *runtime) apply(ns *nodeState, eff ioa.Effects) {
	if eff.Response != nil && (ns.pendingIdx >= 0 || ns.pendingTk != nil) {
		out := eff.Response.Value
		if ns.pendingTk != nil {
			// Stamped and released to the sink before the effects' sends
			// dispatch, so the feed clock preserves real-time precedence
			// exactly as the batch clock does.
			ns.pendingTk.Complete(out)
			ns.pendingTk = nil
		} else {
			rec := &ns.log[ns.pendingIdx]
			rec.output = out
			rec.respondTS = rt.clock.Add(1)
			ns.pendingIdx = -1
		}
		ns.pendingSpan.Mark(telemetry.StageEffect)
		ns.pendingSpan = nil
		if ns.pendingDone != nil {
			ns.pendingDone <- out // buffered, single outstanding op: never blocks
			ns.pendingDone = nil
		}
	}
	for _, send := range eff.Sends {
		rt.send(ns.id, send)
	}
	if ns.meter != nil {
		bits := int64(ns.meter.StorageBits())
		ns.curBits.Store(bits)
		ioa.RaiseMax(&ns.maxBits, bits)
	}
}

// send encodes one automaton message and applies the fault plan's drop and
// delay rules before anything touches a socket. Sequence numbers are global,
// as in the kernel and the live runtime, so the same plan seed draws from
// the same decision stream.
func (rt *runtime) send(from ioa.NodeID, s ioa.Send) {
	frame := binary.AppendUvarint(make([]byte, 0, 64), uint64(from))
	frame, err := wire.Append(frame, s.Msg)
	if err != nil {
		// An unregistered message type cannot cross the network; surfacing
		// it as loss would hide the bug, so panic — the wire registry tests
		// make this unreachable for shipped algorithms.
		panic(fmt.Sprintf("netrun: node %d sent unencodable message: %v", from, err))
	}
	if rt.plan != nil {
		seq := rt.seq.Add(1) - 1
		drop, delay := rt.plan.MessageFate(from, s.To, seq, rt.wc.Step())
		if drop {
			rt.drops.Add(1)
			return
		}
		if delay > 0 {
			rt.delayed.Add(1)
			rt.delaySteps.Add(int64(delay))
			rt.after(time.Duration(delay)*rt.cfg.StepDur, func() {
				rt.dispatch(from, s.To, frame)
			})
			return
		}
	}
	rt.dispatch(from, s.To, frame)
}

// dispatch gates the socket write on the plan's outage windows at the
// current step: a blocked frame is held — not dropped — and re-dispatched at
// the next outage boundary, re-checking then in case windows abut. Held
// frames are accounted as delays of (boundary - now) steps.
func (rt *runtime) dispatch(from, to ioa.NodeID, frame []byte) {
	if hold, steps := rt.wc.Hold(from, to); hold > 0 {
		rt.delayed.Add(1)
		rt.delaySteps.Add(int64(steps))
		rt.after(hold, func() { rt.dispatch(from, to, frame) })
		return
	}
	rt.transmit(from, to, frame)
}

// transmit writes the frame to the sender's own socket pool. A Send error
// (failed dial, closed endpoint) is real-network silence — the pool redials
// on the next send and protocol timeouts own recovery — but it is counted,
// so lossy-run reports stop understating loss. The endpoint and address are
// snapshotted under netMu (recovery replaces both); the Send itself runs
// outside the lock, since it can block for a full SendTimeout.
func (rt *runtime) transmit(from, to ioa.NodeID, frame []byte) {
	src := rt.nodes[from]
	if src == nil {
		return
	}
	rt.netMu.RLock()
	ep := src.ep
	addr, ok := rt.addrs[to]
	rt.netMu.RUnlock()
	if !ok {
		return
	}
	if err := ep.Send(addr, frame); err != nil {
		rt.sendErrs.Add(1)
	}
}

// after schedules f to run once after d, tracking the timer so stop can
// cancel it; the old untracked time.AfterFunc calls leaked every in-flight
// delay/outage timer past Close.
func (rt *runtime) after(d time.Duration, f func()) {
	rt.timerMu.Lock()
	defer rt.timerMu.Unlock()
	if rt.stopped {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		// The callback can only fire after the registration below released
		// the mutex, so t is always the registered timer here.
		rt.timerMu.Lock()
		delete(rt.timers, t)
		rt.timerMu.Unlock()
		select {
		case <-rt.done:
		default:
			f()
		}
	})
	rt.timers[t] = struct{}{}
}

// post enqueues with backpressure: the fast path is a non-blocking channel
// send; a full mailbox blocks the caller — a transport reader or a driver —
// up to timeout, after which the event is dropped and counted. A blocked
// reader stops consuming its socket, so the pressure propagates to the peer
// through TCP flow control instead of growing unbounded queues; the node
// loops themselves never block here (their sends go to sockets), so
// mailbox/outbox cycles cannot wedge the runtime.
func (rt *runtime) post(to *nodeState, ev event) bool {
	return rt.postTimeout(to, ev, rt.cfg.SendTimeout)
}

func (rt *runtime) postTimeout(to *nodeState, ev event, timeout time.Duration) bool {
	select {
	case to.mb <- ev:
		return true
	case <-rt.done:
		return false
	default:
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case to.mb <- ev:
		return true
	case <-t.C:
		rt.overflow.Add(1)
		return false
	case <-rt.done:
		return false
	}
}

// pendingOp is a handle on one asynchronously submitted invocation.
type pendingOp struct {
	ie     *invokeEvent
	failed bool // the post was dropped; the op never reached the node
}

// invokeAsync submits an operation at a client and returns immediately; the
// node starts it when every earlier invocation at that client has responded.
// Pipelining drivers keep several handles open per client. Invocations get
// the full op timeout to enqueue (a saturated client mailbox clears as the
// node drains).
func (rt *runtime) invokeAsync(client ioa.NodeID, inv ioa.Invocation) *pendingOp {
	ns := rt.nodes[client]
	ie := &invokeEvent{inv: inv, done: make(chan []byte, 1)}
	if rt.tracer != nil {
		ie.span = rt.tracer.Begin(inv.Kind.String())
	}
	p := &pendingOp{ie: ie}
	if !rt.postTimeout(ns, event{inv: ie}, rt.cfg.OpTimeout) {
		ie.state.Store(invAbandoned)
		p.failed = true
		ie.span.End()
	} else {
		ie.span.Mark(telemetry.StageQueue)
	}
	return p
}

// wait blocks for the response, the timeout, or ctx cancellation. It returns
// the response value, whether the operation actually started (a started but
// incomplete op is genuinely pending and must stay pending in any checked
// history; an unstarted one never happened), and whether it completed.
func (p *pendingOp) wait(ctx context.Context, timeout time.Duration) (out []byte, started, ok bool) {
	if p.failed {
		return nil, false, false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-p.ie.done:
		p.ie.span.Mark(telemetry.StageComplete)
		p.ie.span.End()
		return out, true, true
	case <-t.C:
	case <-ctx.Done():
	}
	if p.ie.state.CompareAndSwap(invQueued, invAbandoned) {
		p.ie.span.End()
		return nil, false, false // never started; the node will skip it
	}
	select {
	case out := <-p.ie.done:
		p.ie.span.Mark(telemetry.StageComplete)
		p.ie.span.End()
		return out, true, true
	default:
		p.ie.span.End()
		return nil, true, false
	}
}

// abandon cancels an invocation that has not started and reports whether it
// did; a started invocation is left to run.
func (p *pendingOp) abandon() bool {
	if p.failed || p.ie.state.CompareAndSwap(invQueued, invAbandoned) {
		p.ie.span.End()
		return true
	}
	return false
}

// Wait and Abandon adapt pendingOp to the shared driver's workload.Flight.
func (p *pendingOp) Wait(timeout time.Duration) bool {
	_, _, ok := p.wait(context.Background(), timeout)
	return ok
}

// Abandon implements workload.Flight.
func (p *pendingOp) Abandon() bool { return p.abandon() }

// invoke injects an operation at a client and waits for its response, the
// timeout, or the context's cancellation. It returns the response value and
// whether the operation completed in time, plus whether it actually started:
// an abandoned-but-started operation stays pending in the client's log and
// the client automaton remains mid-protocol; an unstarted one was dropped by
// backpressure and left no trace.
func (rt *runtime) invoke(ctx context.Context, client ioa.NodeID, inv ioa.Invocation, timeout time.Duration) (out []byte, started, ok bool) {
	return rt.invokeAsync(client, inv).wait(ctx, timeout)
}

// faultStats snapshots the fault counters in kernel form. Outage holds are
// folded into the delay counters (each hold is a delay to the next window
// boundary); mailbox overflow drops, failed socket sends and the transport
// endpoints' own loss accounting land in the transport counters, so a lossy
// run's report no longer understates loss.
func (rt *runtime) faultStats() ioa.FaultStats {
	stats := ioa.FaultStats{
		Drops:            int(rt.drops.Load()),
		DelayedMessages:  int(rt.delayed.Load()),
		DelayStepsTotal:  int(rt.delaySteps.Load()),
		Crashes:          rt.wc.Crashes(),
		Recoveries:       rt.wc.Recoveries(),
		Checkpoints:      int(rt.checkpoints.Load()),
		TransportDropped: int(rt.overflow.Load() + rt.sendErrs.Load() + rt.badFrames.Load() + rt.retiredDropped.Load()),
	}
	stats.TransportRequeued += int(rt.retiredRequeued.Load())
	rt.netMu.RLock()
	defer rt.netMu.RUnlock()
	for _, ns := range rt.nodes {
		s := ns.ep.Stats()
		stats.TransportDropped += int(s.DroppedFull + s.DroppedDead + s.Malformed)
		stats.TransportRequeued += int(s.Requeued)
	}
	return stats
}
