package netrun_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/netrun"
	"repro/internal/workload"
)

// TestPipelinedNetClients runs a pipelined multi-client workload over real
// loopback sockets with small mailboxes and transport outboxes, the regime
// the old spawn-on-overflow paths (mailbox post and transport enqueue)
// turned into goroutine storms. The run must complete with zero loss, the
// merged history must stay atomic, per-client program order must hold, and
// the goroutine count must stay O(nodes + conns). Scale is capped well
// below the live backend's 1000-client test: every node here owns a real
// TCP endpoint and each link a socket pair, so file descriptors — not
// goroutines — bound net-backend deployments.
func TestPipelinedNetClients(t *testing.T) {
	if testing.Short() {
		t.Skip("socket-heavy run")
	}
	const clients = 64
	cl, _ := deploy(t, "abd-mwmr", 5, 1, clients, clients)
	spec := workload.Spec{
		Writes:     2 * clients,
		Reads:      clients,
		TargetNu:   clients,
		ValueBytes: 32,
		Seed:       1,
	}
	cfg := netrun.Config{Mailbox: 8, Outbox: 8, Pipeline: 4, OpTimeout: 60 * time.Second}

	baseline := runtime.NumGoroutine()
	type outcome struct {
		res *workload.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := netrun.RunConfig(cl, spec, cfg)
		resCh <- outcome{res, err}
	}()

	peak := 0
	var out outcome
sample:
	for {
		select {
		case out = <-resCh:
			break sample
		case <-time.After(2 * time.Millisecond):
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	}
	if out.err != nil {
		t.Fatalf("run failed: %v", out.err)
	}
	if got, want := len(out.res.Latencies), spec.Writes+spec.Reads; got != want {
		t.Fatalf("completed %d of %d ops", got, want)
	}
	if out.res.Faults.TransportDropped != 0 {
		t.Fatalf("%d frames dropped on an unfaulted loopback run", out.res.Faults.TransportDropped)
	}
	// Budget: one loop goroutine per node, one driver per client, and for
	// each node endpoint an accept loop plus a reader and writer per open
	// connection. Clients talk to 5 servers and servers answer 2*clients
	// peers, so connection goroutines dominate; the budget is linear in
	// nodes + connections, which the old per-message spawn path blew past.
	nodes := 5 + 2*clients
	conns := 2 * (2 * clients * 5) // reader+writer per directed link, both ends
	budget := baseline + 2*nodes + conns + 256
	if peak > budget {
		t.Fatalf("goroutines peaked at %d (budget %d); overflow is spawning again", peak, budget)
	}
	// Per-client program order: HistoryFromOps inside RunConfig already
	// rejects overlap; re-assert interval ordering per client explicitly.
	lastEnd := make(map[ioa.NodeID]int)
	for _, op := range out.res.History.Ops {
		if op.RespondStep < 0 {
			continue
		}
		if op.InvokeStep < lastEnd[op.Client] {
			t.Fatalf("client %d: op invoked at %d before predecessor ended at %d", op.Client, op.InvokeStep, lastEnd[op.Client])
		}
		lastEnd[op.Client] = op.RespondStep
	}
	// No CheckAtomic here: the checker is worst-case exponential in write
	// concurrency and infeasible at nu=64; atomicity at this algorithm is
	// covered by TestNetRunChecksConsistency at checkable concurrency.
}
