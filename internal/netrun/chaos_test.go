package netrun_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/netrun"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestNetRecoveryServesSnapshotState is the socket-backend durability
// acceptance test: a value is written over TCP, every server endpoint is
// then severed (its listener closed, volatile state discarded) and each
// server recovers from its last checkpoint on a fresh socket, and a
// subsequent read must return the value — which at that point exists
// nowhere but in the restored snapshots behind the new endpoints.
func TestNetRecoveryServesSnapshotState(t *testing.T) {
	const stepDur = time.Millisecond
	cl, _ := deploy(t, store.AlgABDMW, 3, 1, 1, 1)
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Node: 1, Step: 500, RecoverStep: 650},
		{Node: 2, Step: 500, RecoverStep: 650},
		{Node: 3, Step: 500, RecoverStep: 650},
	}}
	t0 := time.Now()
	in, err := netrun.OpenInteractive(cl, plan, netrun.Config{StepDur: stepDur})
	if err != nil {
		t.Fatalf("OpenInteractive: %v", err)
	}
	defer in.Close()

	val := []byte("durable-across-socket-crash-0123")
	ctx := context.Background()
	if _, pending, err := in.Invoke(ctx, cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: val}); err != nil || pending {
		t.Fatalf("write: pending=%t err=%v", pending, err)
	}
	if since := time.Since(t0); since > 450*stepDur {
		t.Skipf("write took %v; host too slow to land it before the scheduled crash", since)
	}
	time.Sleep(time.Until(t0.Add(800 * stepDur)))
	out, pending, err := in.Invoke(ctx, cl.Readers[0], ioa.Invocation{Kind: ioa.OpRead})
	if err != nil || pending {
		t.Fatalf("read after total crash+recovery: pending=%t err=%v", pending, err)
	}
	if string(out) != string(val) {
		t.Fatalf("read %q after recovery, want the checkpointed value %q", out, val)
	}
	fs := in.FaultStats()
	if fs.Crashes != 3 || fs.Recoveries != 3 {
		t.Errorf("fault stats counted %d crashes, %d recoveries; want 3, 3", fs.Crashes, fs.Recoveries)
	}
	if fs.Checkpoints == 0 {
		t.Error("no checkpoints counted for recovering nodes")
	}
}

// TestNetHistoryAtomicThroughCrashRecover runs a batch workload over real
// sockets while one server is down from the start and rejoins mid-run from
// its checkpoint (taken before it acked anything, so no acknowledged state
// is lost). The merged history must stay atomic and the crash counted.
func TestNetHistoryAtomicThroughCrashRecover(t *testing.T) {
	cl, cond := deploy(t, store.AlgCAS, 5, 1, 2, 2)
	plan := &faults.Plan{Crashes: []faults.Crash{{Node: 1, Step: 0, RecoverStep: 2}}}
	res, err := netrun.RunConfig(cl, workload.Spec{
		Writes:     16,
		Reads:      16,
		TargetNu:   2,
		ValueBytes: 64,
		FaultPlan:  plan,
	}, netrun.Config{StepDur: time.Millisecond})
	if err != nil {
		t.Fatalf("netrun.RunConfig: %v", err)
	}
	if res.Quiescent {
		t.Error("f-bounded crash+recovery lost liveness")
	}
	if res.Faults.Crashes == 0 {
		t.Errorf("no crashes counted: %+v", res.Faults)
	}
	check(t, store.AlgCAS, cond, res.History)
}

// TestNetQuorumKillQuiesces severs a majority of server endpoints without
// recovery: liveness is legitimately lost (quiescent verdict), never
// safety, and the crashed endpoints' transport drops are still accounted.
func TestNetQuorumKillQuiesces(t *testing.T) {
	cl, _ := deploy(t, store.AlgABDMW, 3, 1, 1, 1)
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Node: 1, Step: 0},
		{Node: 2, Step: 0},
	}}
	res, err := netrun.RunConfig(cl, workload.Spec{
		Writes:     2,
		Reads:      1,
		TargetNu:   1,
		ValueBytes: 16,
		FaultPlan:  plan,
	}, netrun.Config{StepDur: time.Millisecond, OpTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("netrun.RunConfig: %v", err)
	}
	if !res.Quiescent || len(res.History.PendingOps()) == 0 {
		t.Fatalf("majority crash should be a quiescent verdict: quiescent=%t pending=%d",
			res.Quiescent, len(res.History.PendingOps()))
	}
	if res.Faults.Crashes != 2 {
		t.Errorf("counted %d crashes, want 2", res.Faults.Crashes)
	}
	check(t, store.AlgABDMW, "atomic", res.History)
}
