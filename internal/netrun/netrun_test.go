package netrun_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/netrun"
	"repro/internal/register"
	"repro/internal/store"
	"repro/internal/workload"
)

func deploy(t *testing.T, alg string, n, f, writers, readers int) (*cluster.Cluster, string) {
	t.Helper()
	cl, cond, err := store.DeployAlgorithmSized(alg, n, f, writers, readers)
	if err != nil {
		t.Fatalf("deploy %s: %v", alg, err)
	}
	return cl, cond
}

func check(t *testing.T, alg, cond string, h *ioa.History) {
	t.Helper()
	var err error
	switch cond {
	case "atomic":
		err = consistency.CheckAtomic(h, nil)
	case "regular":
		err = consistency.CheckRegular(h, nil)
	default:
		t.Fatalf("unknown condition %q", cond)
	}
	if err != nil {
		t.Errorf("%s net history not %s: %v", alg, cond, err)
	}
}

// TestNetRunChecksConsistency drives each multi-writer algorithm over real
// loopback TCP sockets and verifies the merged history passes the
// algorithm's consistency condition — the backend contract's safety half,
// now with every protocol message crossing the wire codec and a socket.
func TestNetRunChecksConsistency(t *testing.T) {
	for _, alg := range []string{store.AlgABDMW, store.AlgCAS, store.AlgCASGC} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cl, cond := deploy(t, alg, 5, 1, 3, 3)
			res, err := netrun.Run(cl, workload.Spec{
				Writes:     24,
				Reads:      24,
				TargetNu:   3,
				ValueBytes: 64,
			})
			if err != nil {
				t.Fatalf("netrun.Run: %v", err)
			}
			if res.Quiescent {
				t.Fatal("fault-free run reported quiescent")
			}
			if got := len(res.History.Ops); got != 48 {
				t.Fatalf("history has %d ops, want 48", got)
			}
			if len(res.Latencies) != 48 {
				t.Fatalf("measured %d latencies, want 48", len(res.Latencies))
			}
			if res.Storage.MaxTotalBits <= 0 || res.Storage.MaxServerBits <= 0 {
				t.Fatalf("storage not metered: %+v", res.Storage)
			}
			if res.PeakActiveWrites < 1 || res.PeakActiveWrites > 3 {
				t.Fatalf("peak active writes %d outside [1,3]", res.PeakActiveWrites)
			}
			check(t, alg, cond, res.History)
		})
	}
}

// TestNetDelayRulesApply runs under a pure delay plan and checks the delay
// counters moved while the history stays atomic and complete — the fault
// plan is being applied at the socket layer.
func TestNetDelayRulesApply(t *testing.T) {
	cl, cond := deploy(t, store.AlgCAS, 5, 1, 2, 2)
	plan, err := faults.Delay{Min: 1, Max: 8}.Build(5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netrun.Run(cl, workload.Spec{
		Writes:     16,
		Reads:      16,
		TargetNu:   2,
		ValueBytes: 64,
		FaultPlan:  plan,
	})
	if err != nil {
		t.Fatalf("netrun.Run: %v", err)
	}
	if res.Faults.DelayedMessages == 0 || res.Faults.DelayStepsTotal == 0 {
		t.Errorf("delay plan applied no delays: %+v", res.Faults)
	}
	if res.Quiescent {
		t.Error("pure delay run lost liveness")
	}
	check(t, store.AlgCAS, cond, res.History)
}

// TestNetPartitionHealsAndCompletes is the capability the live backend lacks:
// an outage window blocks every server-bound link from the start of the run,
// frames are physically held at the senders, and once the window ends (in
// wall-clock time, via StepDur) the held frames flow and every operation
// completes. Held messages are accounted as delays, and the history stays
// atomic.
func TestNetPartitionHealsAndCompletes(t *testing.T) {
	cl, cond := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	// Block everything for the first 200 steps; at StepDur=1ms the network
	// heals after ~200ms, well inside the op timeout.
	plan := &faults.Plan{Outages: []faults.Outage{{Start: 0, End: 200, Symmetric: true}}}
	res, err := netrun.RunConfig(cl, workload.Spec{
		Writes:     2,
		Reads:      2,
		TargetNu:   1,
		ValueBytes: 16,
		FaultPlan:  plan,
	}, netrun.Config{StepDur: time.Millisecond, OpTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("netrun.RunConfig: %v", err)
	}
	if res.Quiescent {
		t.Fatal("run stayed quiescent after the partition healed")
	}
	if got := len(res.History.Ops); got != 4 {
		t.Fatalf("history has %d ops, want 4", got)
	}
	if res.Faults.DelayedMessages == 0 {
		t.Error("partition held no messages")
	}
	check(t, store.AlgCAS, cond, res.History)
}

// bareServer is a minimal automaton WITHOUT the ioa.Recoverable surface,
// for pinning the one fault-plan combination the wall-clock backends still
// reject: scheduled recovery of a node that cannot snapshot its state.
type bareServer struct{ id ioa.NodeID }

func (s *bareServer) ID() ioa.NodeID                                       { return s.id }
func (s *bareServer) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects { return ioa.Effects{} }
func (s *bareServer) Clone() ioa.Node                                      { cp := *s; return &cp }

type bareClient struct{ id ioa.NodeID }

func (c *bareClient) ID() ioa.NodeID                                       { return c.id }
func (c *bareClient) Busy() bool                                           { return false }
func (c *bareClient) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects { return ioa.Effects{} }
func (c *bareClient) Clone() ioa.Node                                      { cp := *c; return &cp }
func (c *bareClient) Invoke(inv ioa.Invocation) ioa.Effects {
	return ioa.Effects{Response: &ioa.Response{Kind: inv.Kind}}
}

// TestNetUnsupportedPlansAreTyped pins the remaining eager rejections and
// their type: the random crash budget, and scheduled recovery of a node
// without a Snapshot/Restore surface, both surface as faults.ErrUnsupported
// via errors.Is before any socket opens. Crash schedules themselves are no
// longer rejected (see the chaos tests).
func TestNetUnsupportedPlansAreTyped(t *testing.T) {
	cl, _ := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	_, err := netrun.Run(cl, workload.Spec{Writes: 1, TargetNu: 1, ValueBytes: 8, Crashes: 1})
	if !errors.Is(err, faults.ErrUnsupported) {
		t.Errorf("crash budget: err = %v, want faults.ErrUnsupported", err)
	}

	sys := ioa.NewSystem()
	if err := sys.AddServer(&bareServer{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddClient(&bareClient{id: 101}); err != nil {
		t.Fatal(err)
	}
	bare := &cluster.Cluster{Name: "bare", Sys: sys, Servers: []ioa.NodeID{1}, Writers: []ioa.NodeID{101}}
	plan := &faults.Plan{Crashes: []faults.Crash{{Node: 1, Step: 5, RecoverStep: 10}}}
	_, err = netrun.Run(bare, workload.Spec{Writes: 1, TargetNu: 1, ValueBytes: 8, FaultPlan: plan})
	if !errors.Is(err, faults.ErrUnsupported) {
		t.Errorf("recovery without snapshot surface: err = %v, want faults.ErrUnsupported", err)
	}

	// A crash WITHOUT scheduled recovery needs no snapshot surface.
	noRecover := &faults.Plan{Crashes: []faults.Crash{{Node: 1, Step: 5}}}
	if err := netrun.PlanSupported(noRecover); err != nil {
		t.Errorf("crash-only plan: PlanSupported = %v, want nil", err)
	}
}

// TestNetLossyTimeoutIsVerdict forces every message to drop before its
// socket write: operations must time out, surface as a Quiescent verdict
// (not a hang or an error), and the empty completed history still checks
// atomic.
func TestNetLossyTimeoutIsVerdict(t *testing.T) {
	cl, _ := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	plan := &faults.Plan{Seed: 3, Rules: []faults.Rule{{DropProb: 1}}}
	res, err := netrun.RunConfig(cl, workload.Spec{
		Writes:     2,
		Reads:      1,
		TargetNu:   1,
		ValueBytes: 8,
		FaultPlan:  plan,
	}, netrun.Config{OpTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("netrun.RunConfig: %v", err)
	}
	if !res.Quiescent || len(res.History.PendingOps()) == 0 {
		t.Fatalf("total loss should be a quiescent verdict: quiescent=%t pending=%d",
			res.Quiescent, len(res.History.PendingOps()))
	}
	if res.Faults.Drops == 0 {
		t.Error("no drops counted")
	}
	if err := consistency.CheckAtomic(res.History, nil); err != nil {
		t.Errorf("partial history not atomic: %v", err)
	}
}

// TestNetInteractive exercises the single-op path: a write and a read at
// distinct clients over live sockets, with the read returning the written
// value, storage metered mid-session, and retirement semantics on timeout.
func TestNetInteractive(t *testing.T) {
	cl, _ := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	in, err := netrun.OpenInteractive(cl, nil, netrun.Config{})
	if err != nil {
		t.Fatalf("OpenInteractive: %v", err)
	}
	defer in.Close()

	writer, reader := cl.Writers[0], cl.Readers[0]
	val := register.MakeValue(32, 42)
	ctx := context.Background()
	if _, pending, err := in.Invoke(ctx, writer, ioa.Invocation{Kind: ioa.OpWrite, Value: val}); err != nil || pending {
		t.Fatalf("write: pending=%t err=%v", pending, err)
	}
	out, pending, err := in.Invoke(ctx, reader, ioa.Invocation{Kind: ioa.OpRead})
	if err != nil || pending {
		t.Fatalf("read: pending=%t err=%v", pending, err)
	}
	if string(out) != string(val) {
		t.Fatalf("read %d bytes, want the %d-byte written value", len(out), len(val))
	}
	if rep := in.Storage(cl); rep.MaxTotalBits <= 0 {
		t.Errorf("mid-session storage not metered: %+v", rep)
	}
	if in.Retired(writer) || in.Retired(reader) {
		t.Error("no operation timed out, but a client is retired")
	}
	if _, _, err := in.Invoke(ctx, ioa.NodeID(9999), ioa.Invocation{Kind: ioa.OpRead}); err == nil {
		t.Error("invoking a non-client node must fail")
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, _, err := in.Invoke(ctx, writer, ioa.Invocation{Kind: ioa.OpRead}); err == nil {
		t.Error("invoke after close must fail")
	}
}
