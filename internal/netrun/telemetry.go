package netrun

import (
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

// checkerStats is the slice of an online checker the sampler reads;
// consistency.OnlineChecker satisfies it.
type checkerStats interface {
	WindowLag() int
	OpsObserved() int64
	OpsVerified() int64
}

// nodeTransport is the per-node counter set the sampler lifts endpoint
// stats into. Endpoint counters are absolute totals that reset when a crash
// retires the endpoint, so the lift mirrors them with monotone Raise — the
// registry series never move backward, at the price of undercounting while
// a recovered endpoint's fresh totals catch up to the retired ones.
type nodeTransport struct {
	framesSent, framesRecv   telemetry.Counter
	batchesSent              telemetry.Counter
	bytesSent, bytesRecv     telemetry.Counter
	droppedFull, droppedDead telemetry.Counter
	requeued, malformed      telemetry.Counter
	batchFrames              [len(transport.BatchBucketBounds)]telemetry.Counter
}

// startTelemetry publishes the paper bounds for this run's shape and starts
// the sampling goroutine: per-node storage gauges from the same
// curBits/maxBits watermark path storageReport folds at shutdown,
// measured-vs-bound slack, online-checker lag, and the per-node transport
// counters lifted from transport.Endpoint.Stats. The returned stop joins
// the sampler after one final sample. A no-op when telemetry is off.
func (rt *runtime) startTelemetry(cl *cluster.Cluster, spec workload.Spec) (stop func()) {
	tel := rt.cfg.Telemetry
	if !tel.Active() {
		return func() {}
	}
	reg := tel.Registry
	sl := telemetry.L("shard", tel.ShardLabel())

	// The bounds are constants of the run's shape (N, f, log2|V|). An
	// interactive session has no fixed value size (spec is zero), so the
	// bound comparison is skipped there and only the raw gauges publish.
	var slack41, slack51 telemetry.Gauge
	var b41, b51 float64
	hasBounds := spec.ValueBytes > 0
	if hasBounds {
		p := core.Params{N: len(cl.Servers), F: cl.F}
		log2V := float64(8 * spec.ValueBytes)
		b41 = core.Theorem41MaxBits(p, log2V)
		b51 = core.Theorem51MaxBits(p, log2V)
		reg.Gauge(telemetry.MetricStorageBoundBits,
			"paper lower bound on per-node storage bits for this run's shape",
			sl, telemetry.L("theorem", "4.1")).Set(b41)
		reg.Gauge(telemetry.MetricStorageBoundBits,
			"paper lower bound on per-node storage bits for this run's shape",
			sl, telemetry.L("theorem", "5.1")).Set(b51)
		slack41 = reg.Gauge(telemetry.MetricStorageSlackBits,
			"measured max per-node storage minus the paper bound (negative would refute the bound)",
			sl, telemetry.L("theorem", "4.1"))
		slack51 = reg.Gauge(telemetry.MetricStorageSlackBits,
			"measured max per-node storage minus the paper bound (negative would refute the bound)",
			sl, telemetry.L("theorem", "5.1"))
	}

	type nodeGauges struct {
		ns       *nodeState
		cur, max telemetry.Gauge
	}
	var gs []nodeGauges
	for _, id := range cl.Servers {
		ns := rt.nodes[id]
		if ns == nil || !ns.metered {
			continue
		}
		nl := telemetry.L("node", strconv.Itoa(int(id)))
		gs = append(gs, nodeGauges{
			ns:  ns,
			cur: reg.Gauge(telemetry.MetricStorageBits, "current per-node storage bits (sampled)", sl, nl),
			max: reg.Gauge(telemetry.MetricStorageMaxBits, "per-node storage-bit watermark (sampled)", sl, nl),
		})
	}

	// One transport counter set per node (servers and clients both own an
	// endpoint).
	nt := make(map[*nodeState]*nodeTransport, len(rt.nodes))
	for _, ns := range rt.nodes {
		nl := telemetry.L("node", strconv.Itoa(int(ns.id)))
		t := &nodeTransport{
			framesSent:  reg.Counter(telemetry.MetricTransportFramesSent, "frames written to peer sockets", sl, nl),
			framesRecv:  reg.Counter(telemetry.MetricTransportFramesRecv, "frames received and handed to the node", sl, nl),
			batchesSent: reg.Counter(telemetry.MetricTransportBatchesSent, "compound envelope flushes (frames/batches = coalescing factor)", sl, nl),
			bytesSent:   reg.Counter(telemetry.MetricTransportBytesSent, "envelope bytes written to peer sockets", sl, nl),
			bytesRecv:   reg.Counter(telemetry.MetricTransportBytesRecv, "envelope bytes received", sl, nl),
			droppedFull: reg.Counter(telemetry.MetricTransportDroppedFull, "frames dropped on a full outbox past SendTimeout", sl, nl),
			droppedDead: reg.Counter(telemetry.MetricTransportDroppedDead, "frames lost to dead connections", sl, nl),
			requeued:    reg.Counter(telemetry.MetricTransportRequeued, "frames re-enqueued onto a redialed connection", sl, nl),
			malformed:   reg.Counter(telemetry.MetricTransportMalformed, "inbound envelopes that failed to split", sl, nl),
		}
		for i, ub := range transport.BatchBucketBounds {
			t.batchFrames[i] = reg.Counter(telemetry.MetricTransportBatchFrames,
				"flushes by frames-per-batch bucket", sl, nl, telemetry.L("le", strconv.Itoa(ub)))
		}
		nt[ns] = t
	}
	liftTransport := func() {
		rt.netMu.RLock()
		defer rt.netMu.RUnlock()
		for ns, t := range nt {
			s := ns.ep.Stats()
			t.framesSent.Raise(s.FramesSent)
			t.framesRecv.Raise(s.FramesReceived)
			t.batchesSent.Raise(s.BatchesSent)
			t.bytesSent.Raise(s.BytesSent)
			t.bytesRecv.Raise(s.BytesReceived)
			t.droppedFull.Raise(s.DroppedFull)
			t.droppedDead.Raise(s.DroppedDead)
			t.requeued.Raise(s.Requeued)
			t.malformed.Raise(s.Malformed)
			for i := range s.BatchFrames {
				t.batchFrames[i].Raise(s.BatchFrames[i])
			}
		}
	}

	var lagG, retainedG telemetry.Gauge
	var observedC, verifiedC telemetry.Counter
	chk, hasChk := rt.cfg.Sink.(checkerStats)
	if hasChk {
		lagG = reg.Gauge(telemetry.MetricCheckerLag, "online checker window lag (ops observed beyond the verified prefix)", sl)
		retainedG = reg.Gauge(telemetry.MetricCheckerRetained, "ops the online checker currently retains", sl)
		observedC = reg.Counter(telemetry.MetricCheckerObserved, "ops the online checker has observed", sl)
		verifiedC = reg.Counter(telemetry.MetricCheckerVerified, "ops the online checker has verified", sl)
	}

	sample := func() {
		maxSeen := int64(0)
		for _, g := range gs {
			g.cur.Set(float64(g.ns.curBits.Load()))
			m := g.ns.maxBits.Load()
			g.max.Set(float64(m))
			if m > maxSeen {
				maxSeen = m
			}
		}
		if hasBounds && len(gs) > 0 {
			slack41.Set(float64(maxSeen) - b41)
			slack51.Set(float64(maxSeen) - b51)
		}
		liftTransport()
		if hasChk {
			obs, ver := chk.OpsObserved(), chk.OpsVerified()
			lagG.Set(float64(chk.WindowLag()))
			retainedG.Set(float64(obs - ver))
			observedC.Raise(uint64(obs))
			verifiedC.Raise(uint64(ver))
		}
	}

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(tel.SampleInterval())
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample() // final: publish the end-of-run watermark
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
