package netrun

import (
	"context"
	"testing"
	"time"

	"repro/internal/abd"
	"repro/internal/faults"
	"repro/internal/ioa"
)

// TestPostDropsAfterSendTimeout wedges a mailbox with no consumer: posts
// beyond capacity must return within roughly SendTimeout, report failure,
// and be counted in the overflow counter — not spawn goroutines or vanish
// silently as the old spawn-on-overflow fallback did.
func TestPostDropsAfterSendTimeout(t *testing.T) {
	rt := &runtime{
		cfg:    Config{Mailbox: 2, SendTimeout: 20 * time.Millisecond}.withDefaults(),
		timers: make(map[*time.Timer]struct{}),
		done:   make(chan struct{}),
	}
	defer close(rt.done)
	ns := &nodeState{mb: make(chan event, 2), pendingIdx: -1}
	for i := 0; i < 2; i++ {
		if !rt.post(ns, event{}) {
			t.Fatal("post to empty mailbox failed")
		}
	}
	start := time.Now()
	if rt.post(ns, event{}) {
		t.Fatal("post to wedged mailbox succeeded")
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("drop took %v; must resolve around SendTimeout", took)
	}
	if d := rt.overflow.Load(); d != 1 {
		t.Fatalf("overflow counter = %d, want 1", d)
	}
	if s := rt.faultStats(); s.TransportDropped != 1 {
		t.Fatalf("TransportDropped = %d, want 1", s.TransportDropped)
	}
}

// TestDelayTimersStoppedOnClose schedules long delay timers (every message
// delayed seconds into the future with a short StepDur run) and stops the
// runtime while they are pending: stop must cancel and forget them all. The
// old untracked time.AfterFunc calls kept firing into the dead runtime and
// its closed sockets.
func TestDelayTimersStoppedOnClose(t *testing.T) {
	cl, err := abd.Deploy(abd.Options{Servers: 3, F: 1, Writers: 1, Readers: 1, MultiWriter: true})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := faults.Parse("delay=2000:4000")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sc.Build(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := newRuntime(cl, plan, Config{StepDur: time.Millisecond}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	rt.start()
	// The write's initial sends are all delayed, so the op cannot finish;
	// the short wait just lets the timers get registered.
	_, started, ok := rt.invoke(context.Background(), cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: []byte("v")}, 50*time.Millisecond)
	if !started || ok {
		t.Fatalf("expected a started, timed-out op (started=%v ok=%v)", started, ok)
	}
	rt.timerMu.Lock()
	pending := len(rt.timers)
	rt.timerMu.Unlock()
	if pending == 0 {
		t.Fatal("no delay timers pending; the scenario should have delayed every send")
	}
	rt.stop()
	rt.timerMu.Lock()
	defer rt.timerMu.Unlock()
	if rt.timers != nil {
		t.Fatalf("%d timers still tracked after stop", len(rt.timers))
	}
	if !rt.stopped {
		t.Fatal("stop did not mark the runtime stopped")
	}
}
