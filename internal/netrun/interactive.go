package netrun

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/workload"
)

// Interactive is a running net deployment accepting one-at-a-time client
// operations: the node goroutines and their sockets stay up between calls,
// so a sequence of Invoke calls interleaves with other clients' operations
// over real TCP connections exactly as a deployed service would. It is the
// net backend's single-op execution path — RunConfig remains for batch
// experiments.
//
// Invoke is safe for concurrent use across clients; operations at the same
// client are serialized (a register client automaton holds one operation at
// a time). A client whose operation times out is retired: its automaton is
// stuck mid-protocol waiting on lost frames, so later Invokes on it fail
// fast with ErrClientRetired rather than corrupting the protocol state.
type Interactive struct {
	cfg           Config
	rt            *runtime
	stopTelemetry func()

	mu     sync.Mutex
	perCl  map[ioa.NodeID]*clientGate
	closed bool
}

// clientGate serializes one client's operations and remembers retirement.
type clientGate struct {
	mu      sync.Mutex
	retired bool
}

// ErrClientRetired marks a net client whose earlier operation timed out:
// the automaton is mid-protocol and cannot accept another invocation.
var ErrClientRetired = fmt.Errorf("netrun: client retired after a timed-out operation")

// OpenInteractive clones the cluster's automata, opens every node's TCP
// endpoint and returns a session ready for Invoke. The fault plan applies in
// full, exactly as in RunConfig: drop/delay rules and outage windows at
// every socket write, scheduled crash/recovery on the runtime's wall-clock
// step mapping. Close stops the goroutines and closes every socket.
func OpenInteractive(cl *cluster.Cluster, plan *faults.Plan, cfg Config) (*Interactive, error) {
	cfg = cfg.withDefaults()
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	for _, id := range append(append([]ioa.NodeID(nil), cl.Writers...), cl.Readers...) {
		if _, err := cl.ClientAutomaton(id); err != nil {
			return nil, err
		}
	}
	rt, err := newRuntime(cl, plan, cfg)
	if err != nil {
		return nil, err
	}
	s := &Interactive{cfg: cfg, rt: rt, perCl: make(map[ioa.NodeID]*clientGate)}
	for _, ids := range [][]ioa.NodeID{cl.Writers, cl.Readers} {
		for _, id := range ids {
			s.perCl[id] = &clientGate{}
		}
	}
	rt.start()
	// Interactive sessions have no fixed value size, so the sampler skips
	// the paper-bound gauges and publishes the raw storage watermarks.
	s.stopTelemetry = rt.startTelemetry(cl, workload.Spec{})
	return s, nil
}

// Invoke runs one operation at the client to completion and returns its
// output (the read value; nil for writes). It blocks until the response,
// the per-op timeout, or ctx cancellation — whichever comes first. On
// timeout or cancellation the operation is abandoned: pending reports that
// it was genuinely invoked and may still take effect (its caller must keep
// it pending in any checked history), and the client is retired.
func (s *Interactive) Invoke(ctx context.Context, client ioa.NodeID, inv ioa.Invocation) (out []byte, pending bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("netrun: session closed")
	}
	gate := s.perCl[client]
	s.mu.Unlock()
	if gate == nil {
		return nil, false, fmt.Errorf("netrun: node %d is not a client of this deployment", client)
	}
	gate.mu.Lock()
	defer gate.mu.Unlock()
	if gate.retired {
		return nil, false, fmt.Errorf("client %d: %w", client, ErrClientRetired)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	out, started, ok := s.rt.invoke(ctx, client, inv, s.cfg.OpTimeout)
	if !ok {
		if !started {
			// Backpressure dropped the invocation before the automaton saw
			// it: the client is untouched and stays usable, and the op
			// must NOT appear in any checked history.
			return nil, false, fmt.Errorf("netrun: operation at client %d was dropped before it started (mailbox full past SendTimeout)", client)
		}
		gate.retired = true
		if err := ctx.Err(); err != nil {
			return nil, true, fmt.Errorf("netrun: operation at client %d abandoned: %w", client, err)
		}
		return nil, true, fmt.Errorf("netrun: operation at client %d timed out after %v (pending; client retired)", client, s.cfg.OpTimeout)
	}
	return out, false, nil
}

// Retired reports whether the client has been retired by a timed-out
// operation.
func (s *Interactive) Retired(client ioa.NodeID) bool {
	s.mu.Lock()
	gate := s.perCl[client]
	s.mu.Unlock()
	if gate == nil {
		return false
	}
	gate.mu.Lock()
	defer gate.mu.Unlock()
	return gate.retired
}

// Storage snapshots the per-server storage maxima observed so far. Safe to
// call while operations are in flight: the counters are atomics maintained
// by the node goroutines.
func (s *Interactive) Storage(cl *cluster.Cluster) ioa.StorageReport {
	return s.rt.storageReport(cl)
}

// FaultStats snapshots the drop/delay/hold events applied so far.
func (s *Interactive) FaultStats() ioa.FaultStats {
	return s.rt.faultStats()
}

// Close stops the node goroutines and closes every socket. Idempotent.
func (s *Interactive) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.rt.stop()
	s.stopTelemetry()
	return nil
}
