package netrun

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/workload"
)

// Run executes the workload spec on the cluster's automata over real
// sockets with the default Config. See RunConfig.
func Run(cl *cluster.Cluster, spec workload.Spec) (*workload.Result, error) {
	return RunConfig(cl, spec, Config{})
}

// RunConfig executes the workload on the net runtime: min(TargetNu, writers)
// writer goroutines and every reader goroutine issue operations from shared
// budgets until the spec's counts are exhausted, one operation in flight per
// client, every message crossing a real TCP socket. It returns the shared
// workload.Result shape — Latencies carries the per-operation wall times the
// store layer aggregates into percentiles. Fault plans run in full —
// drop/delay rules, outage windows and scheduled crash/recovery, the
// step-indexed ones mapped onto wall time by the runtime's faults.WallClock.
// The spec's random Crashes budget remains genuinely unsupported (it draws
// crash points from the simulator's schedule, which does not exist here) and
// is rejected with faults.ErrUnsupported.
func RunConfig(cl *cluster.Cluster, spec workload.Spec, cfg Config) (*workload.Result, error) {
	cfg = cfg.withDefaults()
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(cl); err != nil {
		return nil, err
	}
	if spec.Crashes != 0 {
		return nil, fmt.Errorf("netrun: %w: the random crash budget draws crash points from the simulator's schedule; schedule crashes via the fault plan instead (got Crashes=%d)",
			faults.ErrUnsupported, spec.Crashes)
	}
	if spec.Reads > 0 && len(cl.Readers) == 0 {
		return nil, fmt.Errorf("netrun: %d reads requested but the cluster has no readers", spec.Reads)
	}
	// Clients must actually be client automata; the cluster helper checks
	// the registered originals, which the runtime clones.
	for _, id := range append(append([]ioa.NodeID(nil), cl.Writers...), cl.Readers...) {
		if _, err := cl.ClientAutomaton(id); err != nil {
			return nil, err
		}
	}
	rt, err := newRuntime(cl, spec.FaultPlan, cfg)
	if err != nil {
		return nil, err
	}
	rt.start()
	stopTelemetry := rt.startTelemetry(cl, spec)

	// The windowed flight driver is shared with the live runtime
	// (workload.RunFlights); this runtime contributes the async invoke and
	// the telemetry hooks.
	onSubmit, observe := cfg.Telemetry.OpObserver()
	fres := workload.RunFlights(cl, spec, workload.FlightConfig{
		Pipeline:  cfg.Pipeline,
		SyncOps:   cfg.SyncOps,
		OpTimeout: cfg.OpTimeout,
		Invoke: func(client ioa.NodeID, inv ioa.Invocation) workload.Flight {
			return rt.invokeAsync(client, inv)
		},
		OnSubmit: onSubmit,
		Observe:  observe,
	})
	rt.stop()
	stopTelemetry()

	res := &workload.Result{
		PeakActiveWrites: fres.PeakActiveWrites,
		Log2V:            float64(8 * spec.ValueBytes),
		Faults:           rt.faultStats(),
		Latencies:        fres.Latencies,
	}

	if rt.feed != nil {
		// Streaming mode: the sink has already absorbed every settled op in
		// invocation order; all that remains here is the pending tail, which
		// Flush settles as abandoned and reports. Result.History carries just
		// those pending ops, so the pending/quiescent accounting below is
		// unchanged while run memory stays bounded by the sink, not the run.
		pend, ferr := rt.feed.Flush()
		if ferr != nil {
			return nil, fmt.Errorf("netrun: history sink: %w", ferr)
		}
		if res.History, err = ioa.HistoryFromOps(pend); err != nil {
			return nil, err
		}
	} else if res.History, err = rt.mergeHistory(cl); err != nil {
		return nil, err
	}
	if pending := len(res.History.PendingOps()); pending > 0 {
		if spec.FaultPlan == nil {
			return nil, fmt.Errorf("netrun: %d operations timed out with no fault plan installed", pending)
		}
		res.Quiescent = true
	}
	res.Storage = rt.storageReport(cl)
	res.NormalizedTotal = float64(res.Storage.MaxTotalBits) / res.Log2V
	return res, nil
}

// mergeHistory folds the per-client logs into one ioa.History ordered by the
// runtime clock.
func (rt *runtime) mergeHistory(cl *cluster.Cluster) (*ioa.History, error) {
	var ops []ioa.Op
	for _, ids := range [][]ioa.NodeID{cl.Writers, cl.Readers} {
		for _, id := range ids {
			ns := rt.nodes[id]
			for _, rec := range ns.log {
				op := ioa.Op{
					Client:      id,
					Kind:        rec.kind,
					Input:       rec.input,
					Output:      rec.output,
					InvokeStep:  int(rec.invokeTS),
					RespondStep: -1,
				}
				if rec.respondTS >= 0 {
					op.RespondStep = int(rec.respondTS)
				}
				ops = append(ops, op)
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].InvokeStep < ops[j].InvokeStep })
	return ioa.HistoryFromOps(ops)
}

// storageReport sums the per-server maxima observed by the node goroutines.
// As on the live backend, MaxTotalBits is the sum of per-server maxima — an
// upper estimate of the simulator's step-accurate global high-water mark,
// since no global snapshot exists in a concurrent run.
func (rt *runtime) storageReport(cl *cluster.Cluster) ioa.StorageReport {
	rep := ioa.StorageReport{PerServerMaxBits: make(map[ioa.NodeID]int, len(cl.Servers))}
	for _, id := range cl.Servers {
		ns := rt.nodes[id]
		if ns == nil || !ns.metered {
			continue
		}
		maxBits := int(ns.maxBits.Load())
		rep.PerServerMaxBits[id] = maxBits
		rep.MaxTotalBits += maxBits
		rep.CurrentTotalBits += int(ns.curBits.Load())
		if maxBits > rep.MaxServerBits {
			rep.MaxServerBits = maxBits
		}
	}
	return rep
}
