package ioa

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestAppendOpMatchesBatch feeds random op streams through AppendOp and
// HistoryFromOps and requires identical acceptance and identical state.
func TestAppendOpMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		ops := make([]Op, 0, n)
		step := 0
		for i := 0; i < n; i++ {
			step += rng.Intn(3) // sometimes ties, sometimes regressions below
			op := Op{
				Client:     NodeID(rng.Intn(3)),
				Kind:       OpKind(1 + rng.Intn(2)),
				InvokeStep: step,
			}
			switch rng.Intn(4) {
			case 0:
				op.RespondStep = -1
			case 1:
				op.RespondStep = op.InvokeStep - rng.Intn(2) // may be malformed
			default:
				op.RespondStep = op.InvokeStep + rng.Intn(5)
			}
			ops = append(ops, op)
		}
		if rng.Intn(3) == 0 && n > 1 { // force an ordering violation sometimes
			i := 1 + rng.Intn(n-1)
			ops[i].InvokeStep = ops[i-1].InvokeStep - 1 - rng.Intn(3)
		}

		batch, batchErr := HistoryFromOps(ops)
		inc := NewHistory()
		var incErr error
		for _, op := range ops {
			if incErr = inc.AppendOp(op); incErr != nil {
				break
			}
		}
		if (batchErr == nil) != (incErr == nil) {
			t.Fatalf("trial %d: batch err %v, incremental err %v", trial, batchErr, incErr)
		}
		if batchErr != nil {
			if batchErr.Error() != incErr.Error() {
				t.Fatalf("trial %d: error text diverged: %q vs %q", trial, batchErr, incErr)
			}
			continue
		}
		if len(batch.Ops) != len(inc.Ops) {
			t.Fatalf("trial %d: %d vs %d ops", trial, len(batch.Ops), len(inc.Ops))
		}
		for i := range batch.Ops {
			// Op holds slices; compare via formatting.
			if batch.Ops[i].String() != inc.Ops[i].String() {
				t.Fatalf("trial %d op %d: %v vs %v", trial, i, batch.Ops[i], inc.Ops[i])
			}
		}
		if batch.CompletedWrites() != inc.CompletedWrites() {
			t.Fatalf("trial %d: doneWrites %d vs %d", trial, batch.CompletedWrites(), inc.CompletedWrites())
		}
	}
}

// errSink fails every AppendOp after a trigger count.
type errSink struct {
	n    int
	seen []Op
}

func (s *errSink) AppendOp(op Op) error {
	if len(s.seen) >= s.n {
		return errors.New("sink full")
	}
	s.seen = append(s.seen, op)
	return nil
}

// TestOpFeedOrdersConcurrentCompletions hammers one feed from many
// goroutines and requires the emitted stream to be a well-formed history:
// invocation-ordered, every completion present.
func TestOpFeedOrdersConcurrentCompletions(t *testing.T) {
	h := NewHistory()
	f := NewOpFeed(h)
	const clients, opsEach = 8, 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				tk := f.Begin(NodeID(c), OpWrite, []byte(fmt.Sprintf("c%d-%d", c, i)))
				tk.Complete(nil)
			}
		}(c)
	}
	wg.Wait()
	pend, err := f.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(pend) != 0 {
		t.Fatalf("no op was abandoned, got %d pending", len(pend))
	}
	if got := len(h.Ops); got != clients*opsEach {
		t.Fatalf("sink saw %d ops, want %d", got, clients*opsEach)
	}
	// The sink is a *History built through AppendOp, so ordering and
	// well-formedness were already enforced on every insert; double-check
	// invocation order end to end anyway.
	for i := 1; i < len(h.Ops); i++ {
		if h.Ops[i].InvokeStep < h.Ops[i-1].InvokeStep {
			t.Fatalf("emitted out of invocation order at %d", i)
		}
	}
}

// TestOpFeedHoldsBehindOpenTicket verifies release order: a completed op is
// held while an earlier-invoked op is still open, and abandon/void settle
// the blockage correctly.
func TestOpFeedHoldsBehindOpenTicket(t *testing.T) {
	h := NewHistory()
	f := NewOpFeed(h)
	a := f.Begin(1, OpWrite, []byte("a"))
	b := f.Begin(2, OpWrite, []byte("b"))
	c := f.Begin(3, OpRead, nil)
	b.Complete(nil)
	if len(h.Ops) != 0 {
		t.Fatalf("b emitted while a still open")
	}
	if got := f.Open(); got != 2 {
		t.Fatalf("Open = %d, want 2", got)
	}
	snap := f.Snapshot()
	if len(snap) != 3 || !snap[0].Pending() || snap[1].Pending() || !snap[2].Pending() {
		t.Fatalf("snapshot wrong: %v", snap)
	}
	a.Abandon()
	if len(h.Ops) != 2 {
		t.Fatalf("abandoning a should release a(pending)+b, sink has %d", len(h.Ops))
	}
	if !h.Ops[0].Pending() || h.Ops[0].Client != 1 {
		t.Fatalf("first emitted op should be a, pending: %v", h.Ops[0])
	}
	c.Void()
	if len(h.Ops) != 2 {
		t.Fatalf("voided op must not be emitted, sink has %d", len(h.Ops))
	}
	if got := f.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1 (abandoned a)", got)
	}
	pend, err := f.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(pend) != 1 || pend[0].Client != 1 {
		t.Fatalf("flush pending = %v, want just client 1", pend)
	}
	// Settling twice is a no-op.
	b.Abandon()
	if got := f.Pending(); got != 1 {
		t.Fatalf("double settle changed state: Pending = %d", got)
	}
}

// TestOpFeedFlushAbandonsOpen verifies Flush settles still-open tickets as
// pending and reports them.
func TestOpFeedFlushAbandonsOpen(t *testing.T) {
	h := NewHistory()
	f := NewOpFeed(h)
	f.Begin(1, OpWrite, []byte("a"))
	b := f.Begin(2, OpRead, nil)
	b.Complete([]byte("a"))
	pend, err := f.Flush()
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(pend) != 1 || pend[0].Client != 1 || !pend[0].Pending() {
		t.Fatalf("flush pending = %v", pend)
	}
	if len(h.Ops) != 2 {
		t.Fatalf("sink has %d ops, want 2", len(h.Ops))
	}
}

// TestOpFeedStickySinkError verifies a sink failure stops emission but the
// feed keeps draining and reports the first error.
func TestOpFeedStickySinkError(t *testing.T) {
	s := &errSink{n: 1}
	f := NewOpFeed(s)
	for i := 0; i < 5; i++ {
		f.Begin(NodeID(i), OpWrite, []byte(fmt.Sprintf("v%d", i))).Complete(nil)
	}
	if f.Err() == nil {
		t.Fatal("sink error not sticky")
	}
	if _, err := f.Flush(); err == nil || err.Error() != "sink full" {
		t.Fatalf("flush err = %v, want sink full", err)
	}
	if len(s.seen) != 1 {
		t.Fatalf("sink absorbed %d ops after erroring, want 1", len(s.seen))
	}
}
