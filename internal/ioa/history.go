package ioa

import "fmt"

// Op records one operation in an execution's history: its invocation step,
// its response step (or -1 while pending), and its input/output values.
type Op struct {
	ID          int
	Client      NodeID
	Kind        OpKind
	Input       []byte // value written (writes)
	Output      []byte // value returned (reads)
	InvokeStep  int
	RespondStep int // -1 while pending
}

// Pending reports whether the operation has not yet responded.
func (o Op) Pending() bool { return o.RespondStep < 0 }

// PrecedesOp reports whether o completed before p was invoked (the real-time
// precedence relation "<" used by every consistency condition).
func (o Op) PrecedesOp(p Op) bool {
	return !o.Pending() && o.RespondStep < p.InvokeStep
}

// String formats the operation for debugging.
func (o Op) String() string {
	resp := "pending"
	if !o.Pending() {
		resp = fmt.Sprintf("%d", o.RespondStep)
	}
	return fmt.Sprintf("op%d client=%d %s in=%q out=%q [%d,%s]",
		o.ID, o.Client, o.Kind, o.Input, o.Output, o.InvokeStep, resp)
}

// History is the sequence of operations observed at the clients of an
// execution, in invocation order, together with the fault events the kernel
// applied while producing it.
type History struct {
	Ops []Op
	// Faults records the injected fault events (drops, delays, scheduled
	// crashes and recoveries) in the order they occurred. It is empty for
	// fault-free runs.
	Faults []FaultRecord
	open   map[NodeID]int // client -> index in Ops of its outstanding op
	// doneWrites counts completed writes so drivers tracking write
	// concurrency need not rescan Ops after every delivery.
	doneWrites int
	// lastEnd tracks each client's latest response step for AppendOp's
	// incremental well-formedness check. Built lazily on first AppendOp.
	lastEnd map[NodeID]int
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{open: make(map[NodeID]int)}
}

// HistoryFromOps builds a History from externally recorded operations — the
// live runtime merges its per-client logs through this. Ops must be ordered
// by InvokeStep; IDs are reassigned to slice order, and the open-operation
// index and completed-write count are rebuilt so the result behaves exactly
// like a kernel-recorded history. A client may have at most one pending
// operation (the well-formedness condition of Section 3).
func HistoryFromOps(ops []Op) (*History, error) {
	h := NewHistory()
	h.Ops = make([]Op, 0, len(ops))
	for _, op := range ops {
		if err := h.AppendOp(op); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// AppendOp appends one externally recorded operation, validating it
// incrementally under exactly the rules HistoryFromOps enforces in batch:
// nondecreasing InvokeStep, at most one pending operation per client, and no
// operation beginning before the client's previous one responded. The op's
// ID is reassigned to its slice position. A History fed exclusively through
// AppendOp is indistinguishable from one built by HistoryFromOps.
//
// AppendOp is the canonical implementation of the HistorySink interface;
// *History is the batch sink, an online checker is the streaming one.
func (h *History) AppendOp(op Op) error {
	if h.open == nil {
		h.open = make(map[NodeID]int)
	}
	if h.lastEnd == nil {
		h.lastEnd = make(map[NodeID]int, 8)
		for _, prev := range h.Ops {
			if !prev.Pending() {
				h.lastEnd[prev.Client] = prev.RespondStep
			}
		}
	}
	i := len(h.Ops)
	if i > 0 && op.InvokeStep < h.Ops[i-1].InvokeStep {
		return fmt.Errorf("ioa: ops out of invocation order at index %d", i)
	}
	// Well-formedness: a client's operations are sequential — nothing
	// may follow a pending op, and each op must begin no earlier than
	// the previous one's response.
	if prev, open := h.open[op.Client]; open {
		return fmt.Errorf("ioa: client %d has op %d after its pending op %d", op.Client, i, prev)
	}
	if end, seen := h.lastEnd[op.Client]; seen && op.InvokeStep < end {
		return fmt.Errorf("ioa: client %d op %d invoked at %d overlaps its previous op ending at %d", op.Client, i, op.InvokeStep, end)
	}
	op.ID = i
	if op.Pending() {
		h.open[op.Client] = i
	} else {
		if op.RespondStep < op.InvokeStep {
			return fmt.Errorf("ioa: op %d responds at %d before its invocation at %d", i, op.RespondStep, op.InvokeStep)
		}
		h.lastEnd[op.Client] = op.RespondStep
		if op.Kind == OpWrite {
			h.doneWrites++
		}
	}
	h.Ops = append(h.Ops, op)
	return nil
}

// clone returns a deep copy (Ops entries copied; value slices shared, they
// are immutable by the kernel's message contract).
func (h *History) clone() *History {
	out := &History{
		Ops:        make([]Op, len(h.Ops)),
		Faults:     append([]FaultRecord(nil), h.Faults...),
		open:       make(map[NodeID]int, len(h.open)),
		doneWrites: h.doneWrites,
	}
	copy(out.Ops, h.Ops)
	for k, v := range h.open {
		out.open[k] = v
	}
	if h.lastEnd != nil {
		out.lastEnd = make(map[NodeID]int, len(h.lastEnd))
		for k, v := range h.lastEnd {
			out.lastEnd[k] = v
		}
	}
	return out
}

// addFault appends a fault record.
func (h *History) addFault(r FaultRecord) { h.Faults = append(h.Faults, r) }

// beginOp appends a new pending operation and returns its ID.
func (h *History) beginOp(client NodeID, inv Invocation, step int) (int, error) {
	if _, busy := h.open[client]; busy {
		return 0, fmt.Errorf("ioa: client %d already has an outstanding operation", client)
	}
	id := len(h.Ops)
	h.Ops = append(h.Ops, Op{
		ID:          id,
		Client:      client,
		Kind:        inv.Kind,
		Input:       inv.Value,
		InvokeStep:  step,
		RespondStep: -1,
	})
	h.open[client] = id
	return id, nil
}

// endOp completes the outstanding operation of client.
func (h *History) endOp(client NodeID, resp Response, step int) error {
	idx, ok := h.open[client]
	if !ok {
		return fmt.Errorf("ioa: client %d responded with no outstanding operation", client)
	}
	op := &h.Ops[idx]
	if op.Kind != resp.Kind {
		return fmt.Errorf("ioa: client %d response kind %v does not match invocation kind %v", client, resp.Kind, op.Kind)
	}
	op.Output = resp.Value
	op.RespondStep = step
	if op.Kind == OpWrite {
		h.doneWrites++
	}
	if h.lastEnd != nil {
		h.lastEnd[client] = step
	}
	delete(h.open, client)
	return nil
}

// CompletedWrites returns the number of completed write operations.
func (h *History) CompletedWrites() int { return h.doneWrites }

// OpByID returns the operation with the given ID.
func (h *History) OpByID(id int) (Op, error) {
	if id < 0 || id >= len(h.Ops) {
		return Op{}, fmt.Errorf("ioa: no operation with id %d", id)
	}
	return h.Ops[id], nil
}

// Complete returns the completed operations.
func (h *History) Complete() []Op {
	out := make([]Op, 0, len(h.Ops))
	for _, op := range h.Ops {
		if !op.Pending() {
			out = append(out, op)
		}
	}
	return out
}

// PendingOps returns the operations still outstanding.
func (h *History) PendingOps() []Op {
	out := make([]Op, 0, len(h.open))
	for _, op := range h.Ops {
		if op.Pending() {
			out = append(out, op)
		}
	}
	return out
}
