package ioa

import "sync"

// HistorySink consumes a history one operation at a time, in invocation
// order, as each operation settles. *History is the batch implementation
// (AppendOp accumulates); consistency.OnlineChecker is the streaming one
// (AppendOp verifies and retires). The sink contract mirrors AppendOp's
// validation rules: nondecreasing InvokeStep across calls, and per-client
// sequential well-formedness.
type HistorySink interface {
	AppendOp(op Op) error
}

// ticket states. A ticket is settled once it leaves ticketOpen; settled
// tickets are emitted to the sink as soon as no earlier-invoked ticket is
// still open (emission is strictly in invocation order, so the sink's
// ordering contract holds by construction).
const (
	ticketOpen uint8 = iota
	ticketDone
	ticketAbandoned
	ticketVoided
)

// Ticket is one in-flight operation registered with an OpFeed. Exactly one
// of Complete, Abandon or Void settles it; later calls are no-ops.
type Ticket struct {
	feed  *OpFeed
	op    Op
	state uint8
}

// OpFeed orders concurrently completing operations into a HistorySink. Each
// operation is registered with Begin at invocation time — which stamps its
// InvokeStep from the feed's own clock, atomically with its position in the
// feed — and settled with Complete (stamps RespondStep and the output),
// Abandon (the op is permanently pending: it timed out or its client
// crashed and it will be reported as such) or Void (the op never started
// and is dropped from the history entirely). Settled operations are
// released to the sink in invocation order, each held only until every
// earlier-invoked operation has settled, so sink memory — not feed memory —
// dominates: the feed retains at most the operations concurrent with the
// oldest outstanding one.
//
// The feed's clock is the sole timestamp source for the history it emits;
// callers must not mix feed-stamped ops with externally stamped ones.
type OpFeed struct {
	mu      sync.Mutex
	sink    HistorySink
	clock   int64
	head    int       // index of the first unreleased ticket in tickets
	tickets []*Ticket // tickets[head:] is the feed, in invocation order
	open    int       // tickets still in state ticketOpen
	pending []Op      // abandoned ops already released, in invocation order
	err     error     // first sink error; emission stops, draining continues
}

// NewOpFeed returns a feed emitting into sink.
func NewOpFeed(sink HistorySink) *OpFeed {
	return &OpFeed{sink: sink}
}

// Begin registers a new operation, stamping its invocation from the feed
// clock, and returns its ticket.
func (f *OpFeed) Begin(client NodeID, kind OpKind, input []byte) *Ticket {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock++
	tk := &Ticket{feed: f, op: Op{
		Client:      client,
		Kind:        kind,
		Input:       input,
		InvokeStep:  int(f.clock),
		RespondStep: -1,
	}}
	f.tickets = append(f.tickets, tk)
	f.open++
	return tk
}

// Complete settles the ticket as responded with the given output, stamping
// its response from the feed clock. No-op if already settled.
func (tk *Ticket) Complete(output []byte) {
	f := tk.feed
	f.mu.Lock()
	defer f.mu.Unlock()
	if tk.state != ticketOpen {
		return
	}
	f.clock++
	tk.op.Output = output
	tk.op.RespondStep = int(f.clock)
	tk.state = ticketDone
	f.open--
	f.releaseLocked()
}

// Abandon settles the ticket as permanently pending: the operation was
// invoked but will never be observed to respond (timeout past the point of
// caring, client crash). It is emitted to the sink as a pending op and also
// retained in the feed's pending list. No-op if already settled.
func (tk *Ticket) Abandon() {
	f := tk.feed
	f.mu.Lock()
	defer f.mu.Unlock()
	if tk.state != ticketOpen {
		return
	}
	tk.state = ticketAbandoned
	f.open--
	f.releaseLocked()
}

// Void settles the ticket as never-happened: the operation failed before
// reaching the algorithm (validation error, closed store) and is excluded
// from the history. No-op if already settled.
func (tk *Ticket) Void() {
	f := tk.feed
	f.mu.Lock()
	defer f.mu.Unlock()
	if tk.state != ticketOpen {
		return
	}
	tk.state = ticketVoided
	f.open--
	f.releaseLocked()
}

// releaseLocked emits the settled prefix of the feed to the sink, in
// invocation order. Voided tickets are skipped; abandoned ones are recorded
// in f.pending as well as emitted. A sink error is sticky — emission stops
// but draining continues, so feed memory stays bounded after a violation.
func (f *OpFeed) releaseLocked() {
	for f.head < len(f.tickets) && f.tickets[f.head].state != ticketOpen {
		tk := f.tickets[f.head]
		f.tickets[f.head] = nil
		f.head++
		f.emitLocked(tk)
	}
	// Compact the released prefix once it dominates the slice.
	if f.head > 64 && f.head*2 >= len(f.tickets) {
		n := copy(f.tickets, f.tickets[f.head:])
		clear(f.tickets[n:])
		f.tickets = f.tickets[:n]
		f.head = 0
	}
}

func (f *OpFeed) emitLocked(tk *Ticket) {
	if tk.state == ticketVoided {
		return
	}
	if tk.state == ticketAbandoned {
		f.pending = append(f.pending, tk.op)
	}
	if f.err != nil {
		return
	}
	if err := f.sink.AppendOp(tk.op); err != nil {
		f.err = err
	}
}

// Flush abandons every still-open ticket, drains the whole feed into the
// sink, and returns every operation that ended pending (in invocation
// order) together with the first sink error, if any. Call once at
// shutdown, after all Complete/Abandon racers have finished.
func (f *OpFeed) Flush() ([]Op, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := f.head; i < len(f.tickets); i++ {
		tk := f.tickets[i]
		if tk.state == ticketOpen {
			tk.state = ticketAbandoned
			f.open--
		}
		f.tickets[i] = nil
		f.emitLocked(tk)
	}
	f.tickets = f.tickets[:0]
	f.head = 0
	return append([]Op(nil), f.pending...), f.err
}

// Snapshot returns the operations still held in the feed — settled ones
// blocked behind an earlier open ticket, and open ones as pending — in
// invocation order, voided entries skipped. Together with whatever the sink
// has absorbed, a snapshot completes a consistent point-in-time history.
func (f *OpFeed) Snapshot() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Op, 0, len(f.tickets)-f.head)
	for i := f.head; i < len(f.tickets); i++ {
		if tk := f.tickets[i]; tk.state != ticketVoided {
			out = append(out, tk.op)
		}
	}
	return out
}

// Open returns the number of tickets not yet settled.
func (f *OpFeed) Open() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.open
}

// Pending returns the number of operations known to end pending: abandoned
// tickets already released plus tickets still open right now.
func (f *OpFeed) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending) + f.open
}

// Err returns the sticky sink error, if any.
func (f *OpFeed) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
