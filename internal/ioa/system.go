package ioa

import (
	"fmt"
	"sort"
)

// ChanKey identifies a directed point-to-point channel.
type ChanKey struct {
	From, To NodeID
}

// queued is one in-flight message with its fault metadata: the global send
// sequence number (for deterministic fault decisions) and the earliest step
// at which it may be delivered (send step plus any fault-assigned delay).
// Without a fault plan readyAt equals the send step, so every queued message
// is immediately deliverable and the kernel behaves exactly as before.
type queued struct {
	msg     Message
	seq     uint64
	readyAt int
}

// System is the composed automaton: nodes plus channels plus failure state,
// advanced one discrete step at a time. The zero value is not usable; create
// systems with NewSystem.
type System struct {
	nodes    map[NodeID]Node
	ids      []NodeID // sorted, for deterministic iteration
	servers  map[NodeID]bool
	queues   map[ChanKey][]queued
	crashed  map[NodeID]bool
	silenced map[NodeID]bool
	frozen   map[ChanKey]bool
	steps    int
	hist     *History

	// Fault injection (nil plan means a fault-free run).
	faults      FaultPlan
	faultEvents []NodeFaultEvent // plan's node events, sorted by Step
	faultEvIdx  int              // first not-yet-applied event
	faultStats  FaultStats
	nextSeq     uint64 // global send sequence number

	// Storage accounting (servers implementing StorageMeter only).
	curBits      map[NodeID]int
	maxBits      map[NodeID]int
	curTotalBits int
	maxTotalBits int
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		nodes:    make(map[NodeID]Node),
		servers:  make(map[NodeID]bool),
		queues:   make(map[ChanKey][]queued),
		crashed:  make(map[NodeID]bool),
		silenced: make(map[NodeID]bool),
		frozen:   make(map[ChanKey]bool),
		hist:     NewHistory(),
		curBits:  make(map[NodeID]int),
		maxBits:  make(map[NodeID]int),
	}
}

// AddServer registers a server node. Server storage is metered when the node
// implements StorageMeter.
func (s *System) AddServer(n Node) error { return s.add(n, true) }

// AddClient registers a client node.
func (s *System) AddClient(c Client) error { return s.add(c, false) }

func (s *System) add(n Node, server bool) error {
	id := n.ID()
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("ioa: duplicate node id %d", id)
	}
	s.nodes[id] = n
	s.servers[id] = server
	s.ids = append(s.ids, id)
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	if server {
		s.meter(id)
	}
	return nil
}

// Node returns the node with the given id.
func (s *System) Node(id NodeID) (Node, error) {
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("ioa: no node with id %d", id)
	}
	return n, nil
}

// NodeIDs returns all node ids in ascending order.
func (s *System) NodeIDs() []NodeID {
	out := make([]NodeID, len(s.ids))
	copy(out, s.ids)
	return out
}

// ServerIDs returns the ids of server nodes in ascending order.
func (s *System) ServerIDs() []NodeID {
	out := make([]NodeID, 0, len(s.ids))
	for _, id := range s.ids {
		if s.servers[id] {
			out = append(out, id)
		}
	}
	return out
}

// Steps returns the number of steps taken so far; it identifies the current
// "point" of the execution in the paper's sense.
func (s *System) Steps() int { return s.steps }

// History returns the execution's operation history (live view).
func (s *System) History() *History { return s.hist }

// Crash fails a node: it takes no further steps. In-flight messages it sent
// earlier remain deliverable, matching the crash model of Section 3.
func (s *System) Crash(id NodeID) { s.crashed[id] = true }

// Crashed reports whether the node has crashed.
func (s *System) Crashed(id NodeID) bool { return s.crashed[id] }

// Recover lifts a Crash: the node resumes taking steps with its state intact,
// modeling a crash-recovery (long unresponsive pause) failure rather than the
// paper's permanent crash. Messages addressed to the node while it was down
// were held in the channels and become deliverable again.
func (s *System) Recover(id NodeID) { delete(s.crashed, id) }

// SetFaultPlan installs (or, with nil, removes) a fault plan. The plan's
// decisions apply to messages sent after this call; node events scheduled at
// or before the current step are applied immediately.
func (s *System) SetFaultPlan(p FaultPlan) {
	s.faults = p
	s.faultEvents = nil
	s.faultEvIdx = 0
	if p == nil {
		return
	}
	s.faultEvents = append([]NodeFaultEvent(nil), p.NodeEvents()...)
	sort.SliceStable(s.faultEvents, func(i, j int) bool {
		return s.faultEvents[i].Step < s.faultEvents[j].Step
	})
	s.applyNodeFaultEvents()
}

// FaultStats returns the fault events accounted so far.
func (s *System) FaultStats() FaultStats { return s.faultStats }

// applyNodeFaultEvents applies every scheduled crash/recovery whose step has
// been reached. Events that would not change the node's state (crashing an
// already-crashed node) are consumed silently.
func (s *System) applyNodeFaultEvents() {
	for s.faultEvIdx < len(s.faultEvents) {
		ev := s.faultEvents[s.faultEvIdx]
		if ev.Step > s.steps {
			return
		}
		s.faultEvIdx++
		if ev.Recover {
			if s.crashed[ev.Node] {
				delete(s.crashed, ev.Node)
				s.faultStats.Recoveries++
				s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultRecover, From: ev.Node})
			}
		} else if !s.crashed[ev.Node] {
			s.crashed[ev.Node] = true
			s.faultStats.Crashes++
			s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultCrash, From: ev.Node})
		}
	}
}

// linkBlocked reports whether the fault plan holds the link closed right now.
func (s *System) linkBlocked(k ChanKey) bool {
	return s.faults != nil && s.faults.LinkBlocked(k.From, k.To, s.steps)
}

// firstReady returns the index of the first queued message on k whose delay
// has elapsed, or -1. Delivering the first ready message (rather than the
// strict head) is what lets per-message delays reorder a link, matching the
// unordered asynchronous channels of the paper's model.
func (s *System) firstReady(k ChanKey) int {
	for i, e := range s.queues[k] {
		if e.readyAt <= s.steps {
			return i
		}
	}
	return -1
}

// FaultForward advances logical time when faults have made the system
// temporarily idle: every queued message is delayed, link-blocked or
// addressed to a crashed node, but a scheduled event (delay expiry, outage
// boundary, node crash/recovery) lies ahead. It jumps the step counter to the
// earliest such point, applies due node events, and reports whether it
// advanced. Schedulers call it before declaring the system quiescent; without
// a fault plan it always reports false.
func (s *System) FaultForward() bool {
	if s.faults == nil {
		return false
	}
	target := -1
	consider := func(t int) {
		if t > s.steps && (target == -1 || t < target) {
			target = t
		}
	}
	for i := s.faultEvIdx; i < len(s.faultEvents); i++ {
		consider(s.faultEvents[i].Step)
	}
	for k, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		minReady := q[0].readyAt
		for _, e := range q[1:] {
			if e.readyAt < minReady {
				minReady = e.readyAt
			}
		}
		consider(minReady)
		if t := s.faults.NextLinkChange(k.From, k.To, s.steps); t > 0 {
			consider(t)
		}
	}
	if target == -1 {
		return false
	}
	s.steps = target
	s.faultStats.FastForwards++
	s.applyNodeFaultEvents()
	return true
}

// Silence delays all messages from and to the node indefinitely and stops
// the node from taking steps. This is the construction used throughout the
// paper's proofs ("after point P all the messages from and to the writer are
// delayed indefinitely").
func (s *System) Silence(id NodeID) { s.silenced[id] = true }

// Unsilence lifts a Silence.
func (s *System) Unsilence(id NodeID) { delete(s.silenced, id) }

// Silenced reports whether the node is silenced.
func (s *System) Silenced(id NodeID) bool { return s.silenced[id] }

// Freeze stops deliveries on the directed channel from->to while leaving its
// queue intact. Used by the Theorem 6.5 construction to withhold
// value-dependent messages.
func (s *System) Freeze(from, to NodeID) { s.frozen[ChanKey{from, to}] = true }

// Unfreeze lifts a Freeze.
func (s *System) Unfreeze(from, to NodeID) { delete(s.frozen, ChanKey{from, to}) }

// QueueLen returns the number of undelivered messages on from->to.
func (s *System) QueueLen(from, to NodeID) int { return len(s.queues[ChanKey{from, to}]) }

// CanDeliver reports whether some message of from->to may be delivered under
// the current failure/silence/freeze/fault state: the channel must hold a
// message whose fault delay has elapsed, and the link must not be inside an
// outage window.
func (s *System) CanDeliver(from, to NodeID) bool {
	k := ChanKey{from, to}
	if len(s.queues[k]) == 0 {
		return false
	}
	if s.frozen[k] {
		return false
	}
	if s.crashed[to] || s.silenced[to] || s.silenced[from] {
		return false
	}
	if s.linkBlocked(k) {
		return false
	}
	return s.firstReady(k) >= 0
}

// DeliverableChannels returns all channels with some currently deliverable
// message (see CanDeliver), in deterministic (From, To) order.
func (s *System) DeliverableChannels() []ChanKey {
	keys := make([]ChanKey, 0, len(s.queues))
	for k, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		if s.CanDeliver(k.From, k.To) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	return keys
}

// Deliver pops the first ready message of the from->to channel and delivers
// it, advancing the execution by one step. Without a fault plan every message
// is immediately ready, so this is plain FIFO delivery.
func (s *System) Deliver(from, to NodeID) error {
	if !s.CanDeliver(from, to) {
		return fmt.Errorf("ioa: channel %d->%d has no deliverable message", from, to)
	}
	k := ChanKey{from, to}
	q := s.queues[k]
	i := s.firstReady(k)
	msg := q[i].msg
	if i == 0 {
		s.queues[k] = q[1:]
	} else {
		s.queues[k] = append(append([]queued(nil), q[:i]...), q[i+1:]...)
	}
	node := s.nodes[to]
	eff := node.Deliver(from, msg)
	return s.applyEffects(to, eff)
}

// DeliverSelect delivers the first message on from->to accepted by match,
// possibly out of FIFO order. The paper's channels are asynchronous and
// unordered; the Section 6 execution constructions rely on delivering a
// writer's value-independent messages while its value-dependent ones stay in
// the channel, which FIFO delivery cannot express. It returns false when no
// queued message matches; failure/silence/freeze guards apply as in Deliver.
func (s *System) DeliverSelect(from, to NodeID, match func(Message) bool) (bool, error) {
	k := ChanKey{from, to}
	q := s.queues[k]
	if len(q) == 0 {
		return false, nil
	}
	if s.frozen[k] || s.crashed[to] || s.silenced[to] || s.silenced[from] || s.linkBlocked(k) {
		return false, nil
	}
	for i, e := range q {
		if e.readyAt > s.steps || !match(e.msg) {
			continue
		}
		s.queues[k] = append(append([]queued(nil), q[:i]...), q[i+1:]...)
		node := s.nodes[to]
		eff := node.Deliver(from, e.msg)
		if err := s.applyEffects(to, eff); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Invoke starts an operation at a client, advancing the execution by one
// step. It returns the history ID of the new operation.
func (s *System) Invoke(client NodeID, inv Invocation) (int, error) {
	n, ok := s.nodes[client]
	if !ok {
		return 0, fmt.Errorf("ioa: no node with id %d", client)
	}
	c, ok := n.(Client)
	if !ok {
		return 0, fmt.Errorf("ioa: node %d is not a client", client)
	}
	if s.crashed[client] {
		return 0, fmt.Errorf("ioa: cannot invoke on crashed client %d", client)
	}
	if c.Busy() {
		return 0, fmt.Errorf("ioa: client %d is busy", client)
	}
	id, err := s.hist.beginOp(client, inv, s.steps)
	if err != nil {
		return 0, err
	}
	eff := c.Invoke(inv)
	if err := s.applyEffects(client, eff); err != nil {
		return 0, err
	}
	return id, nil
}

// applyEffects enqueues sends (subjecting each to the fault plan's drop and
// delay decisions), records responses, bumps the step counter, applies due
// scheduled node faults and refreshes storage accounting for the acting node.
func (s *System) applyEffects(actor NodeID, eff Effects) error {
	s.steps++
	for _, send := range eff.Sends {
		if _, ok := s.nodes[send.To]; !ok {
			return fmt.Errorf("ioa: node %d sent to unknown node %d", actor, send.To)
		}
		seq := s.nextSeq
		s.nextSeq++
		readyAt := s.steps
		if s.faults != nil {
			drop, delay := s.faults.MessageFate(actor, send.To, seq, s.steps)
			if drop {
				s.faultStats.Drops++
				s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultDrop, From: actor, To: send.To})
				continue
			}
			if delay > 0 {
				readyAt += delay
				s.faultStats.DelayedMessages++
				s.faultStats.DelayStepsTotal += delay
				s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultDelay, From: actor, To: send.To, Delay: delay})
			}
		}
		k := ChanKey{From: actor, To: send.To}
		s.queues[k] = append(s.queues[k], queued{msg: send.Msg, seq: seq, readyAt: readyAt})
	}
	if s.faults != nil {
		s.applyNodeFaultEvents()
	}
	if eff.Response != nil {
		if err := s.hist.endOp(actor, *eff.Response, s.steps); err != nil {
			return err
		}
	}
	if s.servers[actor] {
		s.meter(actor)
	}
	return nil
}

// meter refreshes the storage accounting for one server node.
func (s *System) meter(id NodeID) {
	m, ok := s.nodes[id].(StorageMeter)
	if !ok {
		return
	}
	bits := m.StorageBits()
	s.curTotalBits += bits - s.curBits[id]
	s.curBits[id] = bits
	if bits > s.maxBits[id] {
		s.maxBits[id] = bits
	}
	if s.curTotalBits > s.maxTotalBits {
		s.maxTotalBits = s.curTotalBits
	}
}

// StorageReport summarizes storage costs observed so far (running maxima, in
// bits), mirroring the paper's MaxStorage and TotalStorage definitions.
type StorageReport struct {
	// PerServerMaxBits maps each metered server to the maximum bits it held.
	PerServerMaxBits map[NodeID]int
	// MaxServerBits is the largest single-server maximum (MaxStorage).
	MaxServerBits int
	// MaxTotalBits is the maximum over time of the summed server storage
	// (TotalStorage).
	MaxTotalBits int
	// CurrentTotalBits is the summed server storage right now.
	CurrentTotalBits int
}

// Storage returns the storage report for the execution so far.
func (s *System) Storage() StorageReport {
	rep := StorageReport{
		PerServerMaxBits: make(map[NodeID]int, len(s.maxBits)),
		MaxTotalBits:     s.maxTotalBits,
		CurrentTotalBits: s.curTotalBits,
	}
	for id, b := range s.maxBits {
		rep.PerServerMaxBits[id] = b
		if b > rep.MaxServerBits {
			rep.MaxServerBits = b
		}
	}
	return rep
}

// Snapshot captures a deep copy of the entire system state: node states,
// channel contents, failure flags, history and storage accounting. Restoring
// a snapshot yields an independent System that can be advanced without
// affecting the original — the forking primitive behind valency probes.
type Snapshot struct {
	sys *System
}

// Snapshot returns a snapshot of the current state.
func (s *System) Snapshot() *Snapshot {
	return &Snapshot{sys: s.cloneState()}
}

// Restore materializes an independent System from the snapshot. The snapshot
// remains valid and can be restored again.
func (sn *Snapshot) Restore() *System {
	return sn.sys.cloneState()
}

func (s *System) cloneState() *System {
	out := &System{
		nodes:        make(map[NodeID]Node, len(s.nodes)),
		ids:          append([]NodeID(nil), s.ids...),
		servers:      make(map[NodeID]bool, len(s.servers)),
		queues:       make(map[ChanKey][]queued, len(s.queues)),
		crashed:      make(map[NodeID]bool, len(s.crashed)),
		silenced:     make(map[NodeID]bool, len(s.silenced)),
		frozen:       make(map[ChanKey]bool, len(s.frozen)),
		steps:        s.steps,
		hist:         s.hist.clone(),
		faults:       s.faults, // plans are immutable, safe to share
		faultEvents:  s.faultEvents,
		faultEvIdx:   s.faultEvIdx,
		faultStats:   s.faultStats,
		nextSeq:      s.nextSeq,
		curBits:      make(map[NodeID]int, len(s.curBits)),
		maxBits:      make(map[NodeID]int, len(s.maxBits)),
		curTotalBits: s.curTotalBits,
		maxTotalBits: s.maxTotalBits,
	}
	for id, n := range s.nodes {
		out.nodes[id] = n.Clone()
	}
	for id, v := range s.servers {
		out.servers[id] = v
	}
	for k, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		out.queues[k] = append([]queued(nil), q...)
	}
	for id := range s.crashed {
		out.crashed[id] = true
	}
	for id := range s.silenced {
		out.silenced[id] = true
	}
	for k := range s.frozen {
		out.frozen[k] = true
	}
	for id, b := range s.curBits {
		out.curBits[id] = b
	}
	for id, b := range s.maxBits {
		out.maxBits[id] = b
	}
	return out
}
