package ioa

import (
	"fmt"
	"sort"
)

// ChanKey identifies a directed point-to-point channel.
type ChanKey struct {
	From, To NodeID
}

// queued is one in-flight message with its fault metadata: the global send
// sequence number (for deterministic fault decisions) and the earliest step
// at which it may be delivered (send step plus any fault-assigned delay).
// Without a fault plan readyAt equals the send step, so every queued message
// is immediately deliverable and the kernel behaves exactly as before.
type queued struct {
	msg     Message
	seq     uint64
	readyAt int
}

// channel is the kernel's per-link state: the message queue plus the
// incrementally maintained readiness metadata that lets the schedulers avoid
// rescanning every queue on every sweep.
//
// Invariants (enforced by the differential kernel tests):
//
//   - ready is the number of queued messages with readyAt <= steps; messages
//     whose delay has not elapsed are represented by a message wake in the
//     system's wake heap, and ready is incremented exactly when that wake
//     pops.
//   - deliverable mirrors CanDeliver for this channel at the current step; it
//     is recomputed (refresh) after every event that can change any of its
//     inputs: send, delivery, crash/recover, silence, freeze, fault-plan
//     installation and link outage boundaries (via link wakes).
//   - linkWake is the step of this channel's scheduled link-change wake (0 if
//     none). At most one link wake per channel is outstanding, and while the
//     channel stays non-empty it equals the plan's NextLinkChange.
//
// Queue storage is pooled: messages are removed in place, so a channel's
// backing array is reused across its lifetime and steady-state delivery
// allocates nothing.
type channel struct {
	key         ChanKey
	q           []queued
	ready       int  // queued messages with readyAt <= steps
	frozen      bool // Freeze/Unfreeze state
	linkWake    int  // scheduled link-change wake step (0 = none)
	deliverable bool // cached CanDeliver, kept current by refresh
}

// wake is one entry of the system's min-heap over future scheduling
// boundaries: either a delayed message becoming ready (link == false) or a
// link outage boundary where a channel's blocked status may flip
// (link == true).
type wake struct {
	t    int
	ch   *channel
	link bool
}

// System is the composed automaton: nodes plus channels plus failure state,
// advanced one discrete step at a time. The zero value is not usable; create
// systems with NewSystem.
type System struct {
	nodes    map[NodeID]Node
	ids      []NodeID // sorted, for deterministic iteration
	servers  map[NodeID]bool
	crashed  map[NodeID]bool
	silenced map[NodeID]bool
	steps    int
	hist     *History

	// Channel index: chans is sorted by (From, To) and is the deterministic
	// iteration order of DeliverableChannels; chanIdx is the point lookup;
	// byFrom/byTo group channels by endpoint so crash/silence events refresh
	// only the affected links. nReady counts deliverable channels.
	chans   []*channel
	chanIdx map[ChanKey]*channel
	byFrom  map[NodeID][]*channel
	byTo    map[NodeID][]*channel
	nReady  int

	// wakes is the min-heap (by t) of future readiness boundaries; sweep is
	// the schedulers' reusable deliverable-channel buffer.
	wakes []wake
	sweep []ChanKey

	// Fault injection (nil plan means a fault-free run).
	faults      FaultPlan
	faultEvents []NodeFaultEvent // plan's node events, sorted by Step
	faultEvIdx  int              // first not-yet-applied event
	faultStats  FaultStats
	nextSeq     uint64 // global send sequence number

	// Storage accounting (servers implementing StorageMeter only).
	curBits      map[NodeID]int
	maxBits      map[NodeID]int
	curTotalBits int
	maxTotalBits int
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		nodes:    make(map[NodeID]Node),
		servers:  make(map[NodeID]bool),
		chanIdx:  make(map[ChanKey]*channel),
		byFrom:   make(map[NodeID][]*channel),
		byTo:     make(map[NodeID][]*channel),
		crashed:  make(map[NodeID]bool),
		silenced: make(map[NodeID]bool),
		hist:     NewHistory(),
		curBits:  make(map[NodeID]int),
		maxBits:  make(map[NodeID]int),
	}
}

// AddServer registers a server node. Server storage is metered when the node
// implements StorageMeter.
func (s *System) AddServer(n Node) error { return s.add(n, true) }

// AddClient registers a client node.
func (s *System) AddClient(c Client) error { return s.add(c, false) }

func (s *System) add(n Node, server bool) error {
	id := n.ID()
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("ioa: duplicate node id %d", id)
	}
	s.nodes[id] = n
	s.servers[id] = server
	// Insert at the sorted position instead of re-sorting the whole slice.
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] > id })
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
	if server {
		s.meter(id)
	}
	return nil
}

// Node returns the node with the given id.
func (s *System) Node(id NodeID) (Node, error) {
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("ioa: no node with id %d", id)
	}
	return n, nil
}

// NodeIDs returns all node ids in ascending order.
func (s *System) NodeIDs() []NodeID {
	out := make([]NodeID, len(s.ids))
	copy(out, s.ids)
	return out
}

// ServerIDs returns the ids of server nodes in ascending order.
func (s *System) ServerIDs() []NodeID {
	out := make([]NodeID, 0, len(s.ids))
	for _, id := range s.ids {
		if s.servers[id] {
			out = append(out, id)
		}
	}
	return out
}

// Steps returns the number of steps taken so far; it identifies the current
// "point" of the execution in the paper's sense.
func (s *System) Steps() int { return s.steps }

// History returns the execution's operation history (live view).
func (s *System) History() *History { return s.hist }

// ensureChan returns the channel entry for k, creating it (at its sorted
// index position) on first use.
func (s *System) ensureChan(k ChanKey) *channel {
	if ch := s.chanIdx[k]; ch != nil {
		return ch
	}
	ch := &channel{key: k}
	i := sort.Search(len(s.chans), func(i int) bool {
		c := s.chans[i].key
		if c.From != k.From {
			return c.From > k.From
		}
		return c.To > k.To
	})
	s.chans = append(s.chans, nil)
	copy(s.chans[i+1:], s.chans[i:])
	s.chans[i] = ch
	s.chanIdx[k] = ch
	s.byFrom[k.From] = append(s.byFrom[k.From], ch)
	s.byTo[k.To] = append(s.byTo[k.To], ch)
	return ch
}

// refresh recomputes a channel's deliverable flag from the current failure,
// silence, freeze and fault state, and maintains the channel's link wake:
// while the channel is non-empty under a fault plan, a wake is scheduled at
// the plan's next outage boundary so the flag is recomputed exactly when the
// link's blocked status may change.
func (s *System) refresh(ch *channel) {
	d := ch.ready > 0 && !ch.frozen &&
		!s.crashed[ch.key.To] && !s.silenced[ch.key.To] && !s.silenced[ch.key.From]
	if s.faults != nil && len(ch.q) > 0 {
		if d && s.faults.LinkBlocked(ch.key.From, ch.key.To, s.steps) {
			d = false
		}
		if ch.linkWake <= s.steps {
			if next := s.faults.NextLinkChange(ch.key.From, ch.key.To, s.steps); next > s.steps {
				ch.linkWake = next
				s.pushWake(wake{t: next, ch: ch, link: true})
			} else {
				ch.linkWake = 0
			}
		}
	}
	if d != ch.deliverable {
		ch.deliverable = d
		if d {
			s.nReady++
		} else {
			s.nReady--
		}
	}
}

// refreshNode refreshes every channel touching the node (used by silence
// changes, which affect both directions).
func (s *System) refreshNode(id NodeID) {
	for _, ch := range s.byFrom[id] {
		s.refresh(ch)
	}
	for _, ch := range s.byTo[id] {
		s.refresh(ch)
	}
}

// pushWake inserts a wake into the min-heap.
func (s *System) pushWake(w wake) {
	s.wakes = append(s.wakes, w)
	i := len(s.wakes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.wakes[parent].t <= s.wakes[i].t {
			break
		}
		s.wakes[parent], s.wakes[i] = s.wakes[i], s.wakes[parent]
		i = parent
	}
}

// popWake removes and returns the minimum wake.
func (s *System) popWake() wake {
	top := s.wakes[0]
	last := len(s.wakes) - 1
	s.wakes[0] = s.wakes[last]
	s.wakes[last] = wake{}
	s.wakes = s.wakes[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.wakes) && s.wakes[l].t < s.wakes[min].t {
			min = l
		}
		if r < len(s.wakes) && s.wakes[r].t < s.wakes[min].t {
			min = r
		}
		if min == i {
			break
		}
		s.wakes[i], s.wakes[min] = s.wakes[min], s.wakes[i]
		i = min
	}
	return top
}

// advance pops every wake whose step has been reached: delayed messages
// become ready and link boundaries trigger a refresh. It is called after
// every step-counter change so channel flags are always current.
func (s *System) advance() {
	for len(s.wakes) > 0 && s.wakes[0].t <= s.steps {
		w := s.popWake()
		if w.link {
			w.ch.linkWake = 0
		} else {
			w.ch.ready++
		}
		s.refresh(w.ch)
	}
}

// rebuildWakes recomputes every channel's ready count, the wake heap and the
// deliverable flags from the raw queues — used after fault-plan installation
// and snapshot restoration.
func (s *System) rebuildWakes() {
	s.wakes = s.wakes[:0]
	for _, ch := range s.chans {
		ch.linkWake = 0
		ch.ready = 0
		for _, e := range ch.q {
			if e.readyAt <= s.steps {
				ch.ready++
			} else {
				s.pushWake(wake{t: e.readyAt, ch: ch})
			}
		}
		s.refresh(ch)
	}
}

// CheckReadySetInvariants recomputes every channel's readiness from the raw
// queues — the way the pre-index kernel did on every sweep — and compares it
// against the incrementally maintained state. It returns an error describing
// the first mismatch. The differential kernel tests call it after every
// mutation; it is exported so engine-level tests outside this package can
// assert the invariants mid-workload too.
func (s *System) CheckReadySetInvariants() error {
	nReady := 0
	for i, ch := range s.chans {
		if i > 0 {
			prev := s.chans[i-1].key
			if prev.From > ch.key.From || (prev.From == ch.key.From && prev.To >= ch.key.To) {
				return fmt.Errorf("ioa: channel index out of order at %d: %v then %v", i, prev, ch.key)
			}
		}
		ready := 0
		for _, e := range ch.q {
			if e.readyAt <= s.steps {
				ready++
			}
		}
		if ready != ch.ready {
			return fmt.Errorf("ioa: channel %v ready count %d, recomputed %d (step %d)", ch.key, ch.ready, ready, s.steps)
		}
		want := ready > 0 && !ch.frozen &&
			!s.crashed[ch.key.To] && !s.silenced[ch.key.To] && !s.silenced[ch.key.From] &&
			!s.linkBlocked(ch.key)
		if want != ch.deliverable {
			return fmt.Errorf("ioa: channel %v deliverable flag %t, recomputed %t (step %d, q=%d ready=%d frozen=%t)",
				ch.key, ch.deliverable, want, s.steps, len(ch.q), ready, ch.frozen)
		}
		if ch.deliverable {
			nReady++
		}
	}
	if nReady != s.nReady {
		return fmt.Errorf("ioa: nReady %d, recomputed %d", s.nReady, nReady)
	}
	return nil
}

// Crash fails a node: it takes no further steps. In-flight messages it sent
// earlier remain deliverable, matching the crash model of Section 3.
func (s *System) Crash(id NodeID) {
	s.crashed[id] = true
	for _, ch := range s.byTo[id] {
		s.refresh(ch)
	}
}

// Crashed reports whether the node has crashed.
func (s *System) Crashed(id NodeID) bool { return s.crashed[id] }

// Recover lifts a Crash: the node resumes taking steps with its state intact,
// modeling a crash-recovery (long unresponsive pause) failure rather than the
// paper's permanent crash. Messages addressed to the node while it was down
// were held in the channels and become deliverable again.
func (s *System) Recover(id NodeID) {
	delete(s.crashed, id)
	for _, ch := range s.byTo[id] {
		s.refresh(ch)
	}
}

// SetFaultPlan installs (or, with nil, removes) a fault plan. The plan's
// decisions apply to messages sent after this call; node events scheduled at
// or before the current step are applied immediately.
func (s *System) SetFaultPlan(p FaultPlan) {
	s.faults = p
	s.faultEvents = nil
	s.faultEvIdx = 0
	if p != nil {
		s.faultEvents = append([]NodeFaultEvent(nil), p.NodeEvents()...)
		sort.SliceStable(s.faultEvents, func(i, j int) bool {
			return s.faultEvents[i].Step < s.faultEvents[j].Step
		})
	}
	s.rebuildWakes()
	if p != nil {
		s.applyNodeFaultEvents()
	}
}

// FaultStats returns the fault events accounted so far.
func (s *System) FaultStats() FaultStats { return s.faultStats }

// applyNodeFaultEvents applies every scheduled crash/recovery whose step has
// been reached. Events that would not change the node's state (crashing an
// already-crashed node) are consumed silently.
func (s *System) applyNodeFaultEvents() {
	for s.faultEvIdx < len(s.faultEvents) {
		ev := s.faultEvents[s.faultEvIdx]
		if ev.Step > s.steps {
			return
		}
		s.faultEvIdx++
		if ev.Recover {
			if s.crashed[ev.Node] {
				s.Recover(ev.Node)
				s.faultStats.Recoveries++
				s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultRecover, From: ev.Node})
			}
		} else if !s.crashed[ev.Node] {
			s.Crash(ev.Node)
			s.faultStats.Crashes++
			s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultCrash, From: ev.Node})
		}
	}
}

// linkBlocked reports whether the fault plan holds the link closed right now.
func (s *System) linkBlocked(k ChanKey) bool {
	return s.faults != nil && s.faults.LinkBlocked(k.From, k.To, s.steps)
}

// firstReady returns the index of the first queued message on the channel
// whose delay has elapsed. Delivering the first ready message (rather than
// the strict head) is what lets per-message delays reorder a link, matching
// the unordered asynchronous channels of the paper's model. In the common
// fault-free case every queued message is ready and the head is returned
// without scanning.
func (ch *channel) firstReady(steps int) int {
	if ch.ready == len(ch.q) {
		return 0
	}
	for i := range ch.q {
		if ch.q[i].readyAt <= steps {
			return i
		}
	}
	return -1
}

// removeAt deletes the i-th queued message in place, preserving FIFO order
// and reusing the backing array.
func (ch *channel) removeAt(i int) Message {
	msg := ch.q[i].msg
	copy(ch.q[i:], ch.q[i+1:])
	ch.q[len(ch.q)-1] = queued{} // release the message reference
	ch.q = ch.q[:len(ch.q)-1]
	ch.ready--
	return msg
}

// FaultForward advances logical time when faults have made the system
// temporarily idle: every queued message is delayed, link-blocked or
// addressed to a crashed node, but a scheduled event (delay expiry, outage
// boundary, node crash/recovery) lies ahead. It jumps the step counter to the
// earliest such point, applies due node events, and reports whether it
// advanced. Schedulers call it before declaring the system quiescent; without
// a fault plan it always reports false.
//
// The candidate set is the next scheduled node event plus the earliest valid
// wake: a link wake counts while its channel is non-empty, and a message
// wake counts only while its channel has no ready message (a channel that
// already holds a ready-but-undeliverable message — say, addressed to a
// crashed node — contributes no boundary, exactly as the per-channel
// minimum-readyAt sweep of the pre-index kernel behaved). The heap is
// traversed as a tree with subtree pruning (children never precede their
// parent), so the search touches only the invalid prefix of the heap instead
// of every queued message.
func (s *System) FaultForward() bool {
	if s.faults == nil {
		return false
	}
	target := -1
	if s.faultEvIdx < len(s.faultEvents) {
		if t := s.faultEvents[s.faultEvIdx].Step; t > s.steps {
			target = t
		}
	}
	if t := s.earliestWake(0, target); t != -1 {
		target = t
	}
	if target == -1 {
		return false
	}
	s.steps = target
	s.faultStats.FastForwards++
	s.advance()
	s.applyNodeFaultEvents()
	return true
}

// earliestWake returns the smallest wake time below heap index i that is a
// valid fault-forward candidate and beats bound (-1 = unbounded), or -1.
// Subtrees whose root cannot beat the bound are pruned.
func (s *System) earliestWake(i, bound int) int {
	if i >= len(s.wakes) {
		return -1
	}
	w := s.wakes[i]
	if bound != -1 && w.t >= bound {
		return -1
	}
	valid := w.t > s.steps
	if valid {
		if w.link {
			valid = len(w.ch.q) > 0
		} else {
			valid = w.ch.ready == 0
		}
	}
	if valid {
		return w.t // children are no earlier; this subtree's best
	}
	best := s.earliestWake(2*i+1, bound)
	if best != -1 {
		bound = best
	}
	if r := s.earliestWake(2*i+2, bound); r != -1 {
		best = r
	}
	return best
}

// Silence delays all messages from and to the node indefinitely and stops
// the node from taking steps. This is the construction used throughout the
// paper's proofs ("after point P all the messages from and to the writer are
// delayed indefinitely").
func (s *System) Silence(id NodeID) {
	s.silenced[id] = true
	s.refreshNode(id)
}

// Unsilence lifts a Silence.
func (s *System) Unsilence(id NodeID) {
	delete(s.silenced, id)
	s.refreshNode(id)
}

// Silenced reports whether the node is silenced.
func (s *System) Silenced(id NodeID) bool { return s.silenced[id] }

// Freeze stops deliveries on the directed channel from->to while leaving its
// queue intact. Used by the Theorem 6.5 construction to withhold
// value-dependent messages.
func (s *System) Freeze(from, to NodeID) {
	ch := s.ensureChan(ChanKey{from, to})
	ch.frozen = true
	s.refresh(ch)
}

// Unfreeze lifts a Freeze.
func (s *System) Unfreeze(from, to NodeID) {
	if ch := s.chanIdx[ChanKey{from, to}]; ch != nil {
		ch.frozen = false
		s.refresh(ch)
	}
}

// QueueLen returns the number of undelivered messages on from->to.
func (s *System) QueueLen(from, to NodeID) int {
	if ch := s.chanIdx[ChanKey{from, to}]; ch != nil {
		return len(ch.q)
	}
	return 0
}

// CanDeliver reports whether some message of from->to may be delivered under
// the current failure/silence/freeze/fault state: the channel must hold a
// message whose fault delay has elapsed, and the link must not be inside an
// outage window.
func (s *System) CanDeliver(from, to NodeID) bool {
	ch := s.chanIdx[ChanKey{from, to}]
	if ch == nil || ch.ready == 0 || ch.frozen {
		return false
	}
	if s.crashed[to] || s.silenced[to] || s.silenced[from] {
		return false
	}
	return !s.linkBlocked(ch.key)
}

// DeliverableChannels returns all channels with some currently deliverable
// message (see CanDeliver), in deterministic (From, To) order.
func (s *System) DeliverableChannels() []ChanKey {
	return s.AppendDeliverableChannels(make([]ChanKey, 0, s.nReady))
}

// AppendDeliverableChannels appends the deliverable channels, in
// deterministic (From, To) order, to dst and returns the extended slice —
// the allocation-free form of DeliverableChannels for callers that sweep
// repeatedly with a reusable buffer.
func (s *System) AppendDeliverableChannels(dst []ChanKey) []ChanKey {
	if s.nReady == 0 {
		return dst
	}
	for _, ch := range s.chans {
		if ch.deliverable {
			dst = append(dst, ch.key)
		}
	}
	return dst
}

// deliverables refills the schedulers' shared sweep buffer. The buffer is
// only valid until the next deliverables call; single-threaded scheduler
// loops refill it at most once per sweep.
func (s *System) deliverables() []ChanKey {
	s.sweep = s.AppendDeliverableChannels(s.sweep[:0])
	return s.sweep
}

// Deliver pops the first ready message of the from->to channel and delivers
// it, advancing the execution by one step. Without a fault plan every message
// is immediately ready, so this is plain FIFO delivery.
func (s *System) Deliver(from, to NodeID) error {
	if !s.CanDeliver(from, to) {
		return fmt.Errorf("ioa: channel %d->%d has no deliverable message", from, to)
	}
	ch := s.chanIdx[ChanKey{from, to}]
	msg := ch.removeAt(ch.firstReady(s.steps))
	s.refresh(ch)
	node := s.nodes[to]
	eff := node.Deliver(from, msg)
	return s.applyEffects(to, eff)
}

// DeliverSelect delivers the first message on from->to accepted by match,
// possibly out of FIFO order. The paper's channels are asynchronous and
// unordered; the Section 6 execution constructions rely on delivering a
// writer's value-independent messages while its value-dependent ones stay in
// the channel, which FIFO delivery cannot express. It returns false when no
// queued message matches; failure/silence/freeze guards apply as in Deliver.
func (s *System) DeliverSelect(from, to NodeID, match func(Message) bool) (bool, error) {
	ch := s.chanIdx[ChanKey{from, to}]
	if ch == nil || len(ch.q) == 0 {
		return false, nil
	}
	if ch.frozen || s.crashed[to] || s.silenced[to] || s.silenced[from] || s.linkBlocked(ch.key) {
		return false, nil
	}
	for i := range ch.q {
		if ch.q[i].readyAt > s.steps || !match(ch.q[i].msg) {
			continue
		}
		msg := ch.removeAt(i)
		s.refresh(ch)
		node := s.nodes[to]
		eff := node.Deliver(from, msg)
		if err := s.applyEffects(to, eff); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Invoke starts an operation at a client, advancing the execution by one
// step. It returns the history ID of the new operation.
func (s *System) Invoke(client NodeID, inv Invocation) (int, error) {
	n, ok := s.nodes[client]
	if !ok {
		return 0, fmt.Errorf("ioa: no node with id %d", client)
	}
	c, ok := n.(Client)
	if !ok {
		return 0, fmt.Errorf("ioa: node %d is not a client", client)
	}
	if s.crashed[client] {
		return 0, fmt.Errorf("ioa: cannot invoke on crashed client %d", client)
	}
	if c.Busy() {
		return 0, fmt.Errorf("ioa: client %d is busy", client)
	}
	id, err := s.hist.beginOp(client, inv, s.steps)
	if err != nil {
		return 0, err
	}
	eff := c.Invoke(inv)
	if err := s.applyEffects(client, eff); err != nil {
		return 0, err
	}
	return id, nil
}

// applyEffects enqueues sends (subjecting each to the fault plan's drop and
// delay decisions), records responses, bumps the step counter, applies due
// scheduled node faults and refreshes storage accounting for the acting node.
func (s *System) applyEffects(actor NodeID, eff Effects) error {
	s.steps++
	s.advance()
	for _, send := range eff.Sends {
		if _, ok := s.nodes[send.To]; !ok {
			return fmt.Errorf("ioa: node %d sent to unknown node %d", actor, send.To)
		}
		seq := s.nextSeq
		s.nextSeq++
		readyAt := s.steps
		if s.faults != nil {
			drop, delay := s.faults.MessageFate(actor, send.To, seq, s.steps)
			if drop {
				s.faultStats.Drops++
				s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultDrop, From: actor, To: send.To})
				continue
			}
			if delay > 0 {
				readyAt += delay
				s.faultStats.DelayedMessages++
				s.faultStats.DelayStepsTotal += delay
				s.hist.addFault(FaultRecord{Step: s.steps, Kind: FaultDelay, From: actor, To: send.To, Delay: delay})
			}
		}
		ch := s.ensureChan(ChanKey{From: actor, To: send.To})
		ch.q = append(ch.q, queued{msg: send.Msg, seq: seq, readyAt: readyAt})
		if readyAt <= s.steps {
			ch.ready++
		} else {
			s.pushWake(wake{t: readyAt, ch: ch})
		}
		s.refresh(ch)
	}
	if s.faults != nil {
		s.applyNodeFaultEvents()
	}
	if eff.Response != nil {
		if err := s.hist.endOp(actor, *eff.Response, s.steps); err != nil {
			return err
		}
	}
	if s.servers[actor] {
		s.meter(actor)
	}
	return nil
}

// meter refreshes the storage accounting for one server node.
func (s *System) meter(id NodeID) {
	m, ok := s.nodes[id].(StorageMeter)
	if !ok {
		return
	}
	bits := m.StorageBits()
	s.curTotalBits += bits - s.curBits[id]
	s.curBits[id] = bits
	if bits > s.maxBits[id] {
		s.maxBits[id] = bits
	}
	if s.curTotalBits > s.maxTotalBits {
		s.maxTotalBits = s.curTotalBits
	}
}

// StorageReport summarizes storage costs observed so far (running maxima, in
// bits), mirroring the paper's MaxStorage and TotalStorage definitions.
type StorageReport struct {
	// PerServerMaxBits maps each metered server to the maximum bits it held.
	PerServerMaxBits map[NodeID]int
	// MaxServerBits is the largest single-server maximum (MaxStorage).
	MaxServerBits int
	// MaxTotalBits is the maximum over time of the summed server storage
	// (TotalStorage).
	MaxTotalBits int
	// CurrentTotalBits is the summed server storage right now.
	CurrentTotalBits int
}

// Storage returns the storage report for the execution so far.
func (s *System) Storage() StorageReport {
	rep := StorageReport{
		PerServerMaxBits: make(map[NodeID]int, len(s.maxBits)),
		MaxTotalBits:     s.maxTotalBits,
		CurrentTotalBits: s.curTotalBits,
	}
	for id, b := range s.maxBits {
		rep.PerServerMaxBits[id] = b
		if b > rep.MaxServerBits {
			rep.MaxServerBits = b
		}
	}
	return rep
}

// Snapshot captures a deep copy of the entire system state: node states,
// channel contents, failure flags, history and storage accounting. Restoring
// a snapshot yields an independent System that can be advanced without
// affecting the original — the forking primitive behind valency probes.
type Snapshot struct {
	sys *System
}

// Snapshot returns a snapshot of the current state.
func (s *System) Snapshot() *Snapshot {
	return &Snapshot{sys: s.cloneState()}
}

// Restore materializes an independent System from the snapshot. The snapshot
// remains valid and can be restored again.
func (sn *Snapshot) Restore() *System {
	return sn.sys.cloneState()
}

func (s *System) cloneState() *System {
	out := &System{
		nodes:        make(map[NodeID]Node, len(s.nodes)),
		ids:          append([]NodeID(nil), s.ids...),
		servers:      make(map[NodeID]bool, len(s.servers)),
		chanIdx:      make(map[ChanKey]*channel, len(s.chans)),
		byFrom:       make(map[NodeID][]*channel, len(s.byFrom)),
		byTo:         make(map[NodeID][]*channel, len(s.byTo)),
		crashed:      make(map[NodeID]bool, len(s.crashed)),
		silenced:     make(map[NodeID]bool, len(s.silenced)),
		steps:        s.steps,
		hist:         s.hist.clone(),
		faults:       s.faults, // plans are immutable, safe to share
		faultEvents:  s.faultEvents,
		faultEvIdx:   s.faultEvIdx,
		faultStats:   s.faultStats,
		nextSeq:      s.nextSeq,
		curBits:      make(map[NodeID]int, len(s.curBits)),
		maxBits:      make(map[NodeID]int, len(s.maxBits)),
		curTotalBits: s.curTotalBits,
		maxTotalBits: s.maxTotalBits,
	}
	for id, n := range s.nodes {
		out.nodes[id] = n.Clone()
	}
	for id, v := range s.servers {
		out.servers[id] = v
	}
	// chans is iterated in index order, so the clone's index is sorted too.
	out.chans = make([]*channel, 0, len(s.chans))
	for _, ch := range s.chans {
		nc := &channel{key: ch.key, frozen: ch.frozen}
		if len(ch.q) > 0 {
			nc.q = append([]queued(nil), ch.q...)
		}
		out.chans = append(out.chans, nc)
		out.chanIdx[nc.key] = nc
		out.byFrom[nc.key.From] = append(out.byFrom[nc.key.From], nc)
		out.byTo[nc.key.To] = append(out.byTo[nc.key.To], nc)
	}
	for id := range s.crashed {
		out.crashed[id] = true
	}
	for id := range s.silenced {
		out.silenced[id] = true
	}
	for id, b := range s.curBits {
		out.curBits[id] = b
	}
	for id, b := range s.maxBits {
		out.maxBits[id] = b
	}
	out.rebuildWakes()
	return out
}
