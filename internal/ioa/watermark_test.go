package ioa

import (
	"sync"
	"sync/atomic"
	"testing"
)

// The regression this guards: a load-compare-store watermark loses updates
// when raisers interleave — writer A loads 0, writer B stores 100, writer A
// stores 10, and the high-water mark has regressed. RaiseMax must end at the
// true maximum under heavy contention.
func TestRaiseMaxMonotonicUnderContention(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	var m atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Interleave high and low raises so stale CAS attempts
				// are common.
				RaiseMax(&m, int64(w*perW+i))
				RaiseMax(&m, 1)
			}
		}(w)
	}
	wg.Wait()
	want := int64(writers*perW - 1)
	if got := m.Load(); got != want {
		t.Fatalf("watermark = %d, want %d", got, want)
	}
}

func TestRaiseMaxNeverLowers(t *testing.T) {
	var m atomic.Int64
	RaiseMax(&m, 42)
	RaiseMax(&m, 7)
	if got := m.Load(); got != 42 {
		t.Fatalf("watermark lowered to %d", got)
	}
}
