package ioa

import (
	"math/rand"
	"testing"
)

func newBenchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// chatterClient floods the kernel: on Invoke it pings every peer, and every
// peer (a chatterServer) pings it right back, so all client<->server channels
// stay continuously deliverable and FairRun sweeps at its steady-state cost.
type chatterClient struct {
	id    NodeID
	peers []NodeID
	busy  bool
}

func (c *chatterClient) ID() NodeID { return c.id }
func (c *chatterClient) Busy() bool { return c.busy }

func (c *chatterClient) Invoke(inv Invocation) Effects {
	c.busy = true
	sends := make([]Send, 0, len(c.peers))
	for _, p := range c.peers {
		sends = append(sends, Send{To: p, Msg: pingMsg{Seq: 1}})
	}
	return Effects{Sends: sends}
}

func (c *chatterClient) Deliver(from NodeID, msg Message) Effects {
	return Effects{Sends: []Send{{To: from, Msg: pingMsg{Seq: 1}}}}
}

func (c *chatterClient) Clone() Node { cp := *c; return &cp }

type chatterServer struct{ id NodeID }

func (s *chatterServer) ID() NodeID { return s.id }

func (s *chatterServer) Deliver(from NodeID, msg Message) Effects {
	return Effects{Sends: []Send{{To: from, Msg: pingMsg{Seq: 1}}}}
}

func (s *chatterServer) Clone() Node { cp := *s; return &cp }

// buildChatter wires nClients x nServers channels of perpetual traffic.
func buildChatter(b *testing.B, nClients, nServers int) *System {
	b.Helper()
	sys := NewSystem()
	servers := make([]NodeID, nServers)
	for i := range servers {
		servers[i] = NodeID(i + 1)
		if err := sys.AddServer(&chatterServer{id: servers[i]}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < nClients; i++ {
		id := NodeID(100 + i)
		if err := sys.AddClient(&chatterClient{id: id, peers: servers}); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Invoke(id, Invocation{Kind: OpWrite}); err != nil {
			b.Fatal(err)
		}
	}
	return sys
}

// BenchmarkFairRunSweep measures per-delivery cost of the fair scheduler on a
// system with 6x6=72 continuously busy directed channels — the hot loop under
// every experiment in the repository.
func BenchmarkFairRunSweep(b *testing.B) {
	sys := buildChatter(b, 6, 6)
	b.ReportAllocs()
	b.ResetTimer()
	if err := sys.FairRun(b.N, nil); err != ErrStepLimit {
		b.Fatalf("FairRun: %v", err)
	}
}

// BenchmarkRandomRunSweep measures the seeded-random scheduler, which pays
// the DeliverableChannels cost on every single delivery.
func BenchmarkRandomRunSweep(b *testing.B) {
	sys := buildChatter(b, 6, 6)
	rng := newBenchRand(17)
	b.ReportAllocs()
	b.ResetTimer()
	if err := sys.RandomRun(rng, b.N, nil); err != ErrStepLimit {
		b.Fatalf("RandomRun: %v", err)
	}
}
