package ioa

import (
	"fmt"
	"math/rand"
	"testing"
)

// --- naive reference implementations -------------------------------------
//
// These recompute scheduling decisions from the raw queues on every call,
// exactly as the pre-index kernel did. The differential tests drive the
// incremental kernel and this reference through identical schedules and
// assert identical decisions.

// naiveCanDeliver mirrors the original CanDeliver: full queue scan for a
// ready message plus failure/silence/freeze/outage guards.
func naiveCanDeliver(s *System, from, to NodeID) bool {
	ch := s.chanIdx[ChanKey{from, to}]
	if ch == nil || len(ch.q) == 0 || ch.frozen {
		return false
	}
	if s.crashed[to] || s.silenced[to] || s.silenced[from] {
		return false
	}
	if s.linkBlocked(ch.key) {
		return false
	}
	for _, e := range ch.q {
		if e.readyAt <= s.steps {
			return true
		}
	}
	return false
}

// naiveDeliverables mirrors the original DeliverableChannels: scan every
// channel, filter by naiveCanDeliver, and sort (the index is kept sorted, so
// scanning it in order suffices for the reference too — the sortedness
// itself is asserted by CheckReadySetInvariants).
func naiveDeliverables(s *System) []ChanKey {
	var keys []ChanKey
	for _, ch := range s.chans {
		if naiveCanDeliver(s, ch.key.From, ch.key.To) {
			keys = append(keys, ch.key)
		}
	}
	return keys
}

// naiveFaultForwardTarget mirrors the original FaultForward candidate sweep:
// the earliest future node event, per-channel minimum readyAt, or next link
// change of a non-empty channel. It returns -1 when no candidate exists.
func naiveFaultForwardTarget(s *System) int {
	if s.faults == nil {
		return -1
	}
	target := -1
	consider := func(t int) {
		if t > s.steps && (target == -1 || t < target) {
			target = t
		}
	}
	for i := s.faultEvIdx; i < len(s.faultEvents); i++ {
		consider(s.faultEvents[i].Step)
	}
	for _, ch := range s.chans {
		if len(ch.q) == 0 {
			continue
		}
		minReady := ch.q[0].readyAt
		for _, e := range ch.q[1:] {
			if e.readyAt < minReady {
				minReady = e.readyAt
			}
		}
		consider(minReady)
		if t := s.faults.NextLinkChange(ch.key.From, ch.key.To, s.steps); t > 0 {
			consider(t)
		}
	}
	return target
}

// diffPlan is a deterministic in-package fault plan: seeded drops and
// delays, a periodic outage square wave on links into one node, and a
// crash/recover schedule. (The real plan library lives in internal/faults,
// which depends on this package.)
type diffPlan struct {
	seed        uint64
	dropMod     uint64 // drop when hash%dropMod == 0 (0 = never)
	delayMod    uint64 // delay hash%16 steps when hash%delayMod == 0
	outageTo    NodeID // links into this node suffer outages (0 = none)
	outageFrom  int    // outage window start
	outagePerio int    // window repeats every outagePerio steps, open half
	events      []NodeFaultEvent
}

func (p *diffPlan) hash(seq uint64, salt uint64) uint64 {
	z := p.seed ^ (seq+1)*0x9e3779b97f4a7c15 ^ salt*0xd1b54a32d192ed03
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *diffPlan) MessageFate(from, to NodeID, seq uint64, step int) (bool, int) {
	if p.dropMod > 0 && p.hash(seq, 1)%p.dropMod == 0 {
		return true, 0
	}
	if p.delayMod > 0 && p.hash(seq, 2)%p.delayMod == 0 {
		return false, int(p.hash(seq, 3)%16) + 1
	}
	return false, 0
}

func (p *diffPlan) inOutage(step int) bool {
	if p.outageTo == 0 || step < p.outageFrom {
		return false
	}
	return (step-p.outageFrom)/p.outagePerio%2 == 0
}

func (p *diffPlan) LinkBlocked(from, to NodeID, step int) bool {
	return to == p.outageTo && p.inOutage(step)
}

func (p *diffPlan) NextLinkChange(from, to NodeID, step int) int {
	if p.outageTo == 0 || to != p.outageTo {
		return -1
	}
	if step < p.outageFrom {
		return p.outageFrom
	}
	// Next square-wave boundary strictly after step.
	return p.outageFrom + ((step-p.outageFrom)/p.outagePerio+1)*p.outagePerio
}

func (p *diffPlan) NodeEvents() []NodeFaultEvent { return p.events }

// --- differential drivers -------------------------------------------------

// diffCheck asserts the incremental state matches the naive recomputation:
// the ready-set invariants, the deliverable list and the fault-forward
// target.
func diffCheck(t *testing.T, s *System, ctx string) {
	t.Helper()
	if err := s.CheckReadySetInvariants(); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	naive := naiveDeliverables(s)
	fast := s.DeliverableChannels()
	if fmt.Sprint(naive) != fmt.Sprint(fast) {
		t.Fatalf("%s: deliverables mismatch\n naive: %v\n index: %v", ctx, naive, fast)
	}
	if len(fast) == 0 {
		// FaultForward is only invoked on idle systems; compare targets by
		// running the real one on a snapshot so the main system's step
		// counter is untouched.
		want := naiveFaultForwardTarget(s)
		probe := s.Snapshot().Restore()
		moved := probe.FaultForward()
		if want == -1 && moved {
			t.Fatalf("%s: FaultForward advanced to %d, naive sweep found no candidate", ctx, probe.Steps())
		}
		if want != -1 && (!moved || probe.Steps() != want) {
			t.Fatalf("%s: FaultForward moved=%t to step %d, naive target %d", ctx, moved, probe.Steps(), want)
		}
	}
}

// TestKernelDifferentialRandomSchedules drives mixed
// send/deliver/crash/recover/freeze/silence/fault schedules and, after every
// mutation, compares the incrementally maintained scheduler state against
// the naive full-rescan reference, including the delivery order actually
// chosen.
func TestKernelDifferentialRandomSchedules(t *testing.T) {
	plans := []FaultPlan{
		nil,
		&diffPlan{seed: 7, dropMod: 11, delayMod: 3},
		&diffPlan{
			seed: 9, delayMod: 2, outageTo: 2, outageFrom: 20, outagePerio: 60,
			events: []NodeFaultEvent{
				{Step: 25, Node: 3},
				{Step: 90, Node: 3, Recover: true},
			},
		},
	}
	for pi, plan := range plans {
		plan := plan
		t.Run(fmt.Sprintf("plan=%d", pi), func(t *testing.T) {
			const nServers, nClients = 4, 3
			sys := NewSystem()
			var servers []NodeID
			for i := 1; i <= nServers; i++ {
				id := NodeID(i)
				servers = append(servers, id)
				if err := sys.AddServer(&echoServer{id: id}); err != nil {
					t.Fatal(err)
				}
			}
			var clients []NodeID
			for i := 0; i < nClients; i++ {
				id := NodeID(100 + i)
				clients = append(clients, id)
				if err := sys.AddClient(&quorumClient{id: id, servers: servers, quorum: nServers}); err != nil {
					t.Fatal(err)
				}
			}
			sys.SetFaultPlan(plan)
			diffCheck(t, sys, "after SetFaultPlan")

			rng := rand.New(rand.NewSource(int64(41 + pi)))
			var order []ChanKey // delivery order actually taken
			for it := 0; it < 1500; it++ {
				ctx := fmt.Sprintf("iter %d", it)
				switch r := rng.Intn(20); {
				case r == 0:
					id := clients[rng.Intn(len(clients))]
					if n, _ := sys.Node(id); !n.(Client).Busy() && !sys.Crashed(id) {
						if _, err := sys.Invoke(id, Invocation{Kind: OpWrite}); err != nil {
							t.Fatalf("%s: %v", ctx, err)
						}
					}
				case r == 1:
					id := servers[rng.Intn(len(servers))]
					if sys.Crashed(id) {
						sys.Recover(id)
					} else {
						sys.Crash(id)
					}
				case r == 2:
					from := servers[rng.Intn(len(servers))]
					to := clients[rng.Intn(len(clients))]
					if rng.Intn(2) == 0 {
						sys.Freeze(from, to)
					} else {
						sys.Unfreeze(from, to)
					}
				case r == 3:
					id := servers[rng.Intn(len(servers))]
					if sys.Silenced(id) {
						sys.Unsilence(id)
					} else {
						sys.Silence(id)
					}
				default:
					keys := sys.DeliverableChannels()
					if len(keys) == 0 {
						if !sys.FaultForward() {
							// Quiescent: unfreeze/unsilence/recover everything
							// so the run can keep exercising the kernel.
							for _, id := range servers {
								sys.Recover(id)
								sys.Unsilence(id)
							}
							for _, c := range clients {
								for _, sv := range servers {
									sys.Unfreeze(sv, c)
								}
							}
						}
						diffCheck(t, sys, ctx+" (idle)")
						continue
					}
					k := keys[rng.Intn(len(keys))]
					if err := sys.Deliver(k.From, k.To); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					order = append(order, k)
				}
				diffCheck(t, sys, ctx)
			}
			if len(order) == 0 {
				t.Fatal("differential run delivered nothing")
			}
		})
	}
}

// TestKernelDifferentialFairRunOrder replays a fair run against a snapshot
// driven purely by the naive reference and asserts the two kernels deliver
// the same messages in the same order.
func TestKernelDifferentialFairRunOrder(t *testing.T) {
	build := func() *System {
		sys := NewSystem()
		var servers []NodeID
		for i := 1; i <= 5; i++ {
			id := NodeID(i)
			servers = append(servers, id)
			if err := sys.AddServer(&echoServer{id: id}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2; i++ {
			id := NodeID(100 + i)
			if err := sys.AddClient(&quorumClient{id: id, servers: servers, quorum: 3}); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Invoke(id, Invocation{Kind: OpWrite}); err != nil {
				t.Fatal(err)
			}
		}
		sys.SetFaultPlan(&diffPlan{
			seed: 3, delayMod: 2, outageTo: 1, outageFrom: 10, outagePerio: 25,
			events: []NodeFaultEvent{{Step: 12, Node: 4}, {Step: 40, Node: 4, Recover: true}},
		})
		return sys
	}

	fast := build()
	ref := build()
	const budget = 400
	var fastOrder, refOrder []ChanKey

	// Fast kernel: FairRun's own sweep logic, recording deliveries.
	for len(fastOrder) < budget {
		keys := fast.DeliverableChannels()
		if len(keys) == 0 {
			if fast.FaultForward() {
				continue
			}
			break
		}
		for _, k := range keys {
			if !fast.CanDeliver(k.From, k.To) {
				continue
			}
			if err := fast.Deliver(k.From, k.To); err != nil {
				t.Fatal(err)
			}
			fastOrder = append(fastOrder, k)
			if len(fastOrder) >= budget {
				break
			}
		}
	}
	// Reference kernel: identical loop shape, every decision recomputed
	// naively from the raw queues.
	for len(refOrder) < budget {
		keys := naiveDeliverables(ref)
		if len(keys) == 0 {
			target := naiveFaultForwardTarget(ref)
			if target == -1 {
				break
			}
			if !ref.FaultForward() || ref.Steps() != target {
				t.Fatalf("reference FaultForward disagrees with naive target %d (steps %d)", target, ref.Steps())
			}
			continue
		}
		for _, k := range keys {
			if !naiveCanDeliver(ref, k.From, k.To) {
				continue
			}
			if err := ref.Deliver(k.From, k.To); err != nil {
				t.Fatal(err)
			}
			refOrder = append(refOrder, k)
			if len(refOrder) >= budget {
				break
			}
		}
	}

	if len(fastOrder) != len(refOrder) {
		t.Fatalf("delivery counts differ: fast %d, reference %d", len(fastOrder), len(refOrder))
	}
	for i := range fastOrder {
		if fastOrder[i] != refOrder[i] {
			t.Fatalf("delivery %d differs: fast %v, reference %v", i, fastOrder[i], refOrder[i])
		}
	}
	if len(fastOrder) == 0 {
		t.Fatal("differential fair run delivered nothing")
	}
}
