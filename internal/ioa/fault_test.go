package ioa

import (
	"errors"
	"testing"
)

// stubPlan is a minimal FaultPlan for kernel-level tests: per-link drops,
// fixed per-link delays, one outage window per link, and a node event list.
type stubPlan struct {
	drop   map[ChanKey]bool
	delay  map[ChanKey]int
	outage map[ChanKey][2]int // [start, end)
	events []NodeFaultEvent
}

func (p *stubPlan) MessageFate(from, to NodeID, seq uint64, step int) (bool, int) {
	k := ChanKey{from, to}
	if p.drop[k] {
		return true, 0
	}
	return false, p.delay[k]
}

func (p *stubPlan) LinkBlocked(from, to NodeID, step int) bool {
	w, ok := p.outage[ChanKey{from, to}]
	return ok && step >= w[0] && step < w[1]
}

func (p *stubPlan) NextLinkChange(from, to NodeID, step int) int {
	w, ok := p.outage[ChanKey{from, to}]
	if !ok {
		return -1
	}
	if step < w[0] {
		return w[0]
	}
	if step < w[1] {
		return w[1]
	}
	return -1
}

func (p *stubPlan) NodeEvents() []NodeFaultEvent { return p.events }

// faultTestSystem builds a quorum client (id 100) over n echo servers
// (ids 1..n) acking after q pongs.
func faultTestSystem(t *testing.T, n, q int) (*System, NodeID) {
	t.Helper()
	sys := NewSystem()
	servers := make([]NodeID, n)
	for i := range servers {
		servers[i] = NodeID(i + 1)
		if err := sys.AddServer(&echoServer{id: servers[i]}); err != nil {
			t.Fatal(err)
		}
	}
	client := NodeID(100)
	if err := sys.AddClient(&quorumClient{id: client, servers: servers, quorum: q}); err != nil {
		t.Fatal(err)
	}
	return sys, client
}

// TestFaultDropStillReachesQuorum drops every message to one of three
// servers; a quorum-2 operation must still complete, and the drops must be
// recorded in the history and the stats.
func TestFaultDropStillReachesQuorum(t *testing.T) {
	sys, client := faultTestSystem(t, 3, 2)
	sys.SetFaultPlan(&stubPlan{drop: map[ChanKey]bool{{From: client, To: 3}: true}})
	if _, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 1000); err != nil {
		t.Fatalf("op under single-link drop: %v", err)
	}
	if got := sys.FaultStats().Drops; got != 1 {
		t.Errorf("drops = %d, want 1", got)
	}
	recs := sys.History().Faults
	if len(recs) != 1 || recs[0].Kind != FaultDrop || recs[0].To != 3 {
		t.Errorf("fault records = %+v, want one drop to server 3", recs)
	}
}

// TestFaultDropQuorumLost drops messages to two of three servers: the
// quorum-2 operation can never complete and the system must go quiescent
// rather than hang.
func TestFaultDropQuorumLost(t *testing.T) {
	sys, client := faultTestSystem(t, 3, 2)
	sys.SetFaultPlan(&stubPlan{drop: map[ChanKey]bool{
		{From: client, To: 2}: true,
		{From: client, To: 3}: true,
	}})
	id, err := sys.Invoke(client, Invocation{Kind: OpWrite})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FairRun(1000, OpDone(id)); !errors.Is(err, ErrQuiescent) {
		t.Fatalf("got %v, want ErrQuiescent", err)
	}
}

// TestFaultDelayFastForward delays the only server link far beyond any
// deliverable step: the scheduler must fast-forward logical time across the
// delay instead of reporting quiescence.
func TestFaultDelayFastForward(t *testing.T) {
	sys, client := faultTestSystem(t, 1, 1)
	sys.SetFaultPlan(&stubPlan{delay: map[ChanKey]int{{From: client, To: 1}: 1000}})
	if _, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 100); err != nil {
		t.Fatalf("op under delay: %v", err)
	}
	if sys.Steps() < 1000 {
		t.Errorf("steps = %d, want >= 1000 (time must have fast-forwarded)", sys.Steps())
	}
	st := sys.FaultStats()
	if st.FastForwards == 0 || st.DelayedMessages == 0 {
		t.Errorf("stats = %+v, want fast-forwards and delayed messages", st)
	}
}

// TestFaultDelayReordersLink sends two pings on one link where only the
// first is delayed; the second must overtake it.
func TestFaultDelayReordersLink(t *testing.T) {
	sys := NewSystem()
	srv := &echoServer{id: 1}
	if err := sys.AddServer(srv); err != nil {
		t.Fatal(err)
	}
	sender := &scriptClient{id: 100, sends: []Send{
		{To: 1, Msg: pingMsg{Seq: 1}},
		{To: 1, Msg: pingMsg{Seq: 2}},
	}}
	if err := sys.AddClient(sender); err != nil {
		t.Fatal(err)
	}
	sys.SetFaultPlan(&delayFirstPlan{})
	if _, err := sys.Invoke(100, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	if err := sys.FairRun(100, func(s *System) bool { return len(srv.received) == 2 }); err != nil {
		t.Fatal(err)
	}
	if srv.received[0] != 2 || srv.received[1] != 1 {
		t.Errorf("received order = %v, want [2 1] (delay must reorder)", srv.received)
	}
}

// scriptClient emits a fixed batch of sends on invocation and responds
// immediately.
type scriptClient struct {
	id    NodeID
	sends []Send
}

func (c *scriptClient) ID() NodeID                             { return c.id }
func (c *scriptClient) Busy() bool                             { return false }
func (c *scriptClient) Deliver(from NodeID, m Message) Effects { return Effects{} }
func (c *scriptClient) Clone() Node                            { cp := *c; return &cp }
func (c *scriptClient) Invoke(inv Invocation) Effects {
	return Effects{Sends: c.sends, Response: &Response{Kind: inv.Kind}}
}

// delayFirstPlan delays only the first message ever sent (seq 0).
type delayFirstPlan struct{}

func (delayFirstPlan) MessageFate(from, to NodeID, seq uint64, step int) (bool, int) {
	if seq == 0 {
		return false, 50
	}
	return false, 0
}
func (delayFirstPlan) LinkBlocked(from, to NodeID, step int) bool   { return false }
func (delayFirstPlan) NextLinkChange(from, to NodeID, step int) int { return -1 }
func (delayFirstPlan) NodeEvents() []NodeFaultEvent                 { return nil }

// TestFaultOutageHeals blocks the only server link for a window; the
// operation must stall through the window and complete after it heals.
func TestFaultOutageHeals(t *testing.T) {
	sys, client := faultTestSystem(t, 1, 1)
	sys.SetFaultPlan(&stubPlan{outage: map[ChanKey][2]int{{From: client, To: 1}: {0, 500}}})
	if _, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 100); err != nil {
		t.Fatalf("op across outage: %v", err)
	}
	if sys.Steps() < 500 {
		t.Errorf("steps = %d, want >= 500 (op must wait out the outage)", sys.Steps())
	}
}

// TestFaultScheduledCrashRecover crashes the only server before the send and
// recovers it at step 50: the held message must be delivered on recovery.
func TestFaultScheduledCrashRecover(t *testing.T) {
	sys, client := faultTestSystem(t, 1, 1)
	sys.SetFaultPlan(&stubPlan{events: []NodeFaultEvent{
		{Step: 0, Node: 1},
		{Step: 50, Node: 1, Recover: true},
	}})
	if !sys.Crashed(1) {
		t.Fatal("step-0 crash event not applied at SetFaultPlan")
	}
	if _, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 100); err != nil {
		t.Fatalf("op across crash/recovery: %v", err)
	}
	st := sys.FaultStats()
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("stats = %+v, want 1 crash and 1 recovery", st)
	}
	if sys.Crashed(1) {
		t.Error("server still crashed after scheduled recovery")
	}
}

// TestFaultSnapshotCarriesState snapshots a system mid-delay and verifies
// the restored copy completes the operation identically, including fault
// accounting.
func TestFaultSnapshotCarriesState(t *testing.T) {
	sys, client := faultTestSystem(t, 1, 1)
	sys.SetFaultPlan(&stubPlan{delay: map[ChanKey]int{{From: client, To: 1}: 200}})
	id, err := sys.Invoke(client, Invocation{Kind: OpWrite})
	if err != nil {
		t.Fatal(err)
	}
	fork := sys.Snapshot().Restore()
	for _, s := range []*System{sys, fork} {
		if err := s.FairRun(100, OpDone(id)); err != nil {
			t.Fatalf("run after snapshot: %v", err)
		}
	}
	if a, b := sys.FaultStats(), fork.FaultStats(); a != b {
		t.Errorf("fault stats diverged: %+v vs %+v", a, b)
	}
	if a, b := sys.Steps(), fork.Steps(); a != b {
		t.Errorf("steps diverged: %d vs %d", a, b)
	}
}
