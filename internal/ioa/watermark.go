package ioa

import "sync/atomic"

// RaiseMax lifts the watermark at m to at least v. A plain
// load-compare-store loses updates when two raisers interleave (the smaller
// value can land last and regress the recorded maximum); the CAS loop keeps
// the watermark monotone under any number of concurrent writers. Both
// concurrent runtimes use it for the per-server storage high-water marks.
func RaiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}
