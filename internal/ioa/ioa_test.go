package ioa

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// --- toy automata for kernel tests ---

type pingMsg struct{ Seq int }
type pongMsg struct{ Seq int }

// echoServer replies pong to every ping and records the order of sequence
// numbers it received.
type echoServer struct {
	id       NodeID
	received []int
	bits     int
}

func (s *echoServer) ID() NodeID { return s.id }

func (s *echoServer) Deliver(from NodeID, msg Message) Effects {
	p, ok := msg.(pingMsg)
	if !ok {
		return Effects{}
	}
	s.received = append(s.received, p.Seq)
	s.bits = 64 * len(s.received)
	return Effects{Sends: []Send{{To: from, Msg: pongMsg{Seq: p.Seq}}}}
}

func (s *echoServer) Clone() Node {
	return &echoServer{id: s.id, received: append([]int(nil), s.received...), bits: s.bits}
}

func (s *echoServer) StorageBits() int { return s.bits }

func (s *echoServer) StateDigest() string { return fmt.Sprint(s.received) }

// quorumClient sends one ping per server on write invocation and responds
// after quorum pongs.
type quorumClient struct {
	id      NodeID
	servers []NodeID
	quorum  int
	busy    bool
	seq     int
	acks    int
}

func (c *quorumClient) ID() NodeID { return c.id }
func (c *quorumClient) Busy() bool { return c.busy }

func (c *quorumClient) Invoke(inv Invocation) Effects {
	c.busy = true
	c.seq++
	c.acks = 0
	sends := make([]Send, 0, len(c.servers))
	for _, s := range c.servers {
		sends = append(sends, Send{To: s, Msg: pingMsg{Seq: c.seq}})
	}
	return Effects{Sends: sends}
}

func (c *quorumClient) Deliver(from NodeID, msg Message) Effects {
	p, ok := msg.(pongMsg)
	if !ok || p.Seq != c.seq || !c.busy {
		return Effects{}
	}
	c.acks++
	if c.acks == c.quorum {
		c.busy = false
		return Effects{Response: &Response{Kind: OpWrite}}
	}
	return Effects{}
}

func (c *quorumClient) Clone() Node {
	cp := *c
	cp.servers = append([]NodeID(nil), c.servers...)
	return &cp
}

func buildToySystem(t *testing.T, nServers, quorum int) (*System, []NodeID, NodeID) {
	t.Helper()
	sys := NewSystem()
	servers := make([]NodeID, nServers)
	for i := 0; i < nServers; i++ {
		servers[i] = NodeID(i + 1)
		if err := sys.AddServer(&echoServer{id: servers[i]}); err != nil {
			t.Fatal(err)
		}
	}
	client := NodeID(100)
	if err := sys.AddClient(&quorumClient{id: client, servers: servers, quorum: quorum}); err != nil {
		t.Fatal(err)
	}
	return sys, servers, client
}

// --- tests ---

func TestQuorumOpCompletes(t *testing.T) {
	sys, _, client := buildToySystem(t, 5, 3)
	op, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if op.Pending() {
		t.Fatal("operation should have completed")
	}
	if got := len(sys.History().Complete()); got != 1 {
		t.Fatalf("history has %d complete ops, want 1", got)
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	sys := NewSystem()
	if err := sys.AddServer(&echoServer{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddServer(&echoServer{id: 1}); err == nil {
		t.Fatal("duplicate node id should be rejected")
	}
}

func TestInvokeErrors(t *testing.T) {
	sys, servers, client := buildToySystem(t, 3, 2)
	if _, err := sys.Invoke(NodeID(999), Invocation{Kind: OpWrite}); err == nil {
		t.Error("invoke on unknown node should fail")
	}
	if _, err := sys.Invoke(servers[0], Invocation{Kind: OpWrite}); err == nil {
		t.Error("invoke on a server should fail")
	}
	if _, err := sys.Invoke(client, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Invoke(client, Invocation{Kind: OpWrite}); err == nil {
		t.Error("invoke on busy client should fail")
	}
	sys2, _, client2 := buildToySystem(t, 3, 2)
	sys2.Crash(client2)
	if _, err := sys2.Invoke(client2, Invocation{Kind: OpWrite}); err == nil {
		t.Error("invoke on crashed client should fail")
	}
}

func TestFIFOOrder(t *testing.T) {
	sys := NewSystem()
	srv := &echoServer{id: 1}
	if err := sys.AddServer(srv); err != nil {
		t.Fatal(err)
	}
	cl := &quorumClient{id: 100, servers: []NodeID{1}, quorum: 1}
	if err := sys.AddClient(cl); err != nil {
		t.Fatal(err)
	}
	// Issue 10 sequential writes; each sends seq i to the single server.
	for i := 0; i < 10; i++ {
		if _, err := sys.RunOp(100, Invocation{Kind: OpWrite}, 100); err != nil {
			t.Fatal(err)
		}
	}
	for i, seq := range srv.received {
		if seq != i+1 {
			t.Fatalf("server received %v, FIFO violated at %d", srv.received, i)
		}
	}
}

func TestCrashBlocksDeliveryButKeepsInFlight(t *testing.T) {
	sys, servers, client := buildToySystem(t, 3, 3)
	if _, err := sys.Invoke(client, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	// Deliver ping to server 0 so it emits a pong, then crash server 0: its
	// in-flight pong must remain deliverable.
	if err := sys.Deliver(client, servers[0]); err != nil {
		t.Fatal(err)
	}
	sys.Crash(servers[0])
	if !sys.CanDeliver(servers[0], client) {
		t.Error("in-flight message from crashed server should remain deliverable")
	}
	// Crash server 1 with its ping still queued: delivery to it is blocked.
	sys.Crash(servers[1])
	if sys.CanDeliver(client, servers[1]) {
		t.Error("delivery to crashed server should be blocked")
	}
	// Quorum of 3 with only two pongs obtainable: the op cannot finish.
	err := sys.FairRun(1000, AllOpsDone)
	if !errors.Is(err, ErrQuiescent) {
		t.Fatalf("got %v, want ErrQuiescent", err)
	}
}

func TestLivenessWithFFailures(t *testing.T) {
	// Quorum 3 of 5: any 2 crashes must not block termination.
	sys, servers, client := buildToySystem(t, 5, 3)
	sys.Crash(servers[1])
	sys.Crash(servers[4])
	if _, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 1000); err != nil {
		t.Fatalf("op should terminate with f=2 failures: %v", err)
	}
}

func TestSilenceBlocksBothDirections(t *testing.T) {
	sys, servers, client := buildToySystem(t, 3, 3)
	if _, err := sys.Invoke(client, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(client, servers[0]); err != nil {
		t.Fatal(err)
	}
	sys.Silence(client)
	if sys.CanDeliver(client, servers[1]) {
		t.Error("messages from silenced node must not deliver")
	}
	if sys.CanDeliver(servers[0], client) {
		t.Error("messages to silenced node must not deliver")
	}
	sys.Unsilence(client)
	if !sys.CanDeliver(client, servers[1]) {
		t.Error("unsilence should restore delivery")
	}
}

func TestFreezeChannel(t *testing.T) {
	sys, servers, client := buildToySystem(t, 3, 3)
	if _, err := sys.Invoke(client, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	sys.Freeze(client, servers[0])
	if sys.CanDeliver(client, servers[0]) {
		t.Error("frozen channel must not deliver")
	}
	if !sys.CanDeliver(client, servers[1]) {
		t.Error("other channels must be unaffected")
	}
	sys.Unfreeze(client, servers[0])
	if !sys.CanDeliver(client, servers[0]) {
		t.Error("unfreeze should restore delivery")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	sys, servers, client := buildToySystem(t, 3, 2)
	if _, err := sys.Invoke(client, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	stepsAt := sys.Steps()

	// Advance the original to completion.
	if err := sys.FairRun(1000, AllOpsDone); err != nil {
		t.Fatal(err)
	}

	// The snapshot must restore to the captured point, twice, independently.
	for i := 0; i < 2; i++ {
		fork := snap.Restore()
		if fork.Steps() != stepsAt {
			t.Fatalf("fork %d starts at step %d, want %d", i, fork.Steps(), stepsAt)
		}
		if len(fork.History().PendingOps()) != 1 {
			t.Fatalf("fork %d should have 1 pending op", i)
		}
		if err := fork.FairRun(1000, AllOpsDone); err != nil {
			t.Fatal(err)
		}
	}

	// Mutating a fork must not touch the original's servers.
	fork := snap.Restore()
	if err := fork.FairRun(1000, AllOpsDone); err != nil {
		t.Fatal(err)
	}
	n0, err := sys.Node(servers[0])
	if err != nil {
		t.Fatal(err)
	}
	f0, err := fork.Node(servers[0])
	if err != nil {
		t.Fatal(err)
	}
	if n0 == f0 {
		t.Fatal("fork shares node instances with original")
	}
}

func TestStorageAccounting(t *testing.T) {
	sys, servers, client := buildToySystem(t, 3, 3)
	for i := 0; i < 4; i++ {
		if _, err := sys.RunOp(client, Invocation{Kind: OpWrite}, 1000); err != nil {
			t.Fatal(err)
		}
	}
	rep := sys.Storage()
	// Each server received 4 pings at 64 bits each.
	for _, id := range servers {
		if got := rep.PerServerMaxBits[id]; got != 256 {
			t.Errorf("server %d max bits = %d, want 256", id, got)
		}
	}
	if rep.MaxServerBits != 256 {
		t.Errorf("MaxServerBits = %d, want 256", rep.MaxServerBits)
	}
	if rep.MaxTotalBits != 3*256 {
		t.Errorf("MaxTotalBits = %d, want %d", rep.MaxTotalBits, 3*256)
	}
	if rep.CurrentTotalBits != rep.MaxTotalBits {
		t.Errorf("CurrentTotalBits = %d, want %d (monotone toy)", rep.CurrentTotalBits, rep.MaxTotalBits)
	}
}

func TestRandomRunTerminates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sys, _, client := buildToySystem(t, 5, 3)
		id, err := sys.Invoke(client, Invocation{Kind: OpWrite})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		if err := sys.RandomRun(rng, 10000, OpDone(id)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		sys := NewSystem()
		srv := &echoServer{id: 1}
		if err := sys.AddServer(srv); err != nil {
			t.Fatal(err)
		}
		cl := &quorumClient{id: 100, servers: []NodeID{1}, quorum: 1}
		if err := sys.AddClient(cl); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 5; i++ {
			id, err := sys.Invoke(100, Invocation{Kind: OpWrite})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RandomRun(rng, 1000, OpDone(id)); err != nil {
				t.Fatal(err)
			}
		}
		return append([]int(nil), srv.received...)
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
}

func TestDrainServerToServer(t *testing.T) {
	// Build a system where server 1 gossips to server 2 on every ping.
	sys := NewSystem()
	gossiper := &gossipServer{id: 1, peer: 2}
	sink := &echoServer{id: 2}
	if err := sys.AddServer(gossiper); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddServer(sink); err != nil {
		t.Fatal(err)
	}
	cl := &quorumClient{id: 100, servers: []NodeID{1}, quorum: 1}
	if err := sys.AddClient(cl); err != nil {
		t.Fatal(err)
	}
	// Invoke and deliver only the client->gossiper ping, so the gossip
	// message sits undelivered on the 1->2 channel.
	if _, err := sys.Invoke(100, Invocation{Kind: OpWrite}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deliver(100, 1); err != nil {
		t.Fatal(err)
	}
	if sys.QueueLen(1, 2) != 1 {
		t.Fatalf("expected 1 gossip message queued, got %d", sys.QueueLen(1, 2))
	}
	n, err := sys.DrainServerToServer(100)
	if err != nil {
		t.Fatal(err)
	}
	// The gossip plus the sink's pong back to the gossiper are both
	// server-to-server messages.
	if n != 2 {
		t.Fatalf("drained %d messages, want 2", n)
	}
	if len(sink.received) != 1 {
		t.Fatal("gossip message was not delivered to the peer server")
	}
}

// gossipServer forwards every ping to a peer server and acks the sender.
type gossipServer struct {
	id   NodeID
	peer NodeID
}

func (s *gossipServer) ID() NodeID { return s.id }

func (s *gossipServer) Deliver(from NodeID, msg Message) Effects {
	p, ok := msg.(pingMsg)
	if !ok {
		return Effects{}
	}
	return Effects{Sends: []Send{
		{To: from, Msg: pongMsg{Seq: p.Seq}},
		{To: s.peer, Msg: p},
	}}
}

func (s *gossipServer) Clone() Node { cp := *s; return &cp }

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("OpKind.String mismatch")
	}
	if OpKind(99).String() == "" {
		t.Error("unknown OpKind should still format")
	}
}

func TestHistoryPrecedence(t *testing.T) {
	a := Op{InvokeStep: 0, RespondStep: 5}
	b := Op{InvokeStep: 6, RespondStep: 10}
	c := Op{InvokeStep: 3, RespondStep: 8}
	if !a.PrecedesOp(b) {
		t.Error("a should precede b")
	}
	if a.PrecedesOp(c) {
		t.Error("a overlaps c")
	}
	pending := Op{InvokeStep: 0, RespondStep: -1}
	if pending.PrecedesOp(b) {
		t.Error("pending op precedes nothing")
	}
}
