package ioa

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrStepLimit is returned when a scheduler exhausts its step budget before
// its stop condition holds.
var ErrStepLimit = errors.New("ioa: step limit reached")

// ErrQuiescent is returned when no message is deliverable and the stop
// condition does not hold (the system can make no further progress).
var ErrQuiescent = errors.New("ioa: system quiescent")

// StopFunc decides when a scheduler run is done.
type StopFunc func(*System) bool

// OpDone returns a StopFunc that holds once the operation with the given
// history ID has responded.
func OpDone(opID int) StopFunc {
	return func(s *System) bool {
		op, err := s.hist.OpByID(opID)
		return err == nil && !op.Pending()
	}
}

// AllOpsDone holds when no operation is pending.
func AllOpsDone(s *System) bool { return len(s.hist.open) == 0 }

// FairRun advances the system by repeatedly sweeping all deliverable
// channels in deterministic order, delivering one message per channel per
// sweep, until stop holds. Every continuously deliverable channel is served
// infinitely often, so a run that terminates only by stop is a prefix of a
// fair execution in the paper's sense.
//
// It returns nil when stop held, ErrQuiescent when the system ran out of
// deliverable messages first, and ErrStepLimit when maxSteps deliveries
// happened first.
func (s *System) FairRun(maxSteps int, stop StopFunc) error {
	if stop != nil && stop(s) {
		return nil
	}
	delivered := 0
	for {
		keys := s.deliverables()
		if len(keys) == 0 {
			// Under a fault plan the system may be only temporarily idle:
			// every queued message delayed, link-blocked or addressed to a
			// crashed node with a recovery ahead. Advance logical time to
			// the next scheduled fault boundary before giving up.
			if s.FaultForward() {
				continue
			}
			return ErrQuiescent
		}
		for _, k := range keys {
			if !s.CanDeliver(k.From, k.To) {
				continue // earlier delivery in this sweep changed the state
			}
			if err := s.Deliver(k.From, k.To); err != nil {
				return fmt.Errorf("fair run: %w", err)
			}
			delivered++
			if stop != nil && stop(s) {
				return nil
			}
			if delivered >= maxSteps {
				return ErrStepLimit
			}
		}
	}
}

// RandomRun advances the system by delivering uniformly random deliverable
// messages until stop holds. With probability 1 a random run is fair, and a
// seeded rng makes it reproducible. Returns the same sentinel errors as
// FairRun.
func (s *System) RandomRun(rng *rand.Rand, maxSteps int, stop StopFunc) error {
	if stop != nil && stop(s) {
		return nil
	}
	for delivered := 0; delivered < maxSteps; {
		keys := s.deliverables()
		if len(keys) == 0 {
			if s.FaultForward() {
				continue // fast-forwards do not consume the delivery budget
			}
			return ErrQuiescent
		}
		k := keys[rng.Intn(len(keys))]
		if err := s.Deliver(k.From, k.To); err != nil {
			return fmt.Errorf("random run: %w", err)
		}
		delivered++
		if stop != nil && stop(s) {
			return nil
		}
	}
	return ErrStepLimit
}

// Stepper advances a system one delivery at a time, rotating over the
// deliverable channels in (From, To) order so that every continuously
// deliverable channel is served within one rotation — a fair schedule taken
// one step at a time. The adversary machinery snapshots the system between
// Step calls to enumerate the "points" P_0, P_1, ... of an execution exactly
// as the paper's proofs do.
type Stepper struct {
	sys  *System
	last ChanKey
	init bool
}

// NewStepper returns a stepper over the system.
func NewStepper(sys *System) *Stepper { return &Stepper{sys: sys} }

// Step delivers the next message in rotation. It returns false when no
// message is deliverable.
func (st *Stepper) Step() (bool, error) {
	keys := st.sys.deliverables()
	for len(keys) == 0 {
		if !st.sys.FaultForward() {
			return false, nil
		}
		keys = st.sys.deliverables()
	}
	pick := keys[0]
	if st.init {
		for _, k := range keys {
			if k.From > st.last.From || (k.From == st.last.From && k.To > st.last.To) {
				pick = k
				break
			}
		}
	}
	st.init = true
	st.last = pick
	if err := st.sys.Deliver(pick.From, pick.To); err != nil {
		return false, fmt.Errorf("stepper: %w", err)
	}
	return true, nil
}

// DrainMatching delivers messages on channels accepted by the filter until
// none remain deliverable, and returns the number delivered. It is used by
// the Theorem 5.1 construction ("the channels between the servers act,
// delivering all their messages") with a server-to-server filter.
func (s *System) DrainMatching(maxSteps int, match func(from, to NodeID) bool) (int, error) {
	delivered := 0
	for {
		progressed := false
		for _, k := range s.deliverables() {
			if !match(k.From, k.To) {
				continue
			}
			if !s.CanDeliver(k.From, k.To) {
				continue
			}
			if err := s.Deliver(k.From, k.To); err != nil {
				return delivered, fmt.Errorf("drain: %w", err)
			}
			delivered++
			progressed = true
			if delivered >= maxSteps {
				return delivered, ErrStepLimit
			}
		}
		if !progressed {
			// Give fault-delayed or link-blocked matching messages a chance
			// to become deliverable before concluding the drain is done.
			if s.FaultForward() {
				continue
			}
			return delivered, nil
		}
	}
}

// DrainServerToServer delivers all pending server-to-server messages
// (gossip), as in the Theorem 5.1 valency definition.
func (s *System) DrainServerToServer(maxSteps int) (int, error) {
	return s.DrainMatching(maxSteps, func(from, to NodeID) bool {
		return s.servers[from] && s.servers[to]
	})
}

// RunOp invokes an operation at a client and fair-runs the system until the
// operation completes. It returns the completed operation.
func (s *System) RunOp(client NodeID, inv Invocation, maxSteps int) (Op, error) {
	id, err := s.Invoke(client, inv)
	if err != nil {
		return Op{}, err
	}
	if err := s.FairRun(maxSteps, OpDone(id)); err != nil {
		return Op{}, fmt.Errorf("op %d (%v at client %d): %w", id, inv.Kind, client, err)
	}
	return s.hist.OpByID(id)
}
