// Package ioa provides a deterministic, single-threaded simulation kernel for
// asynchronous message-passing systems in the I/O-automata style used by the
// paper (Section 3): a set of nodes (servers and clients) connected by
// point-to-point reliable FIFO channels, scheduled one discrete step at a
// time.
//
// Determinism is the load-bearing property. The paper's lower-bound proofs
// construct executions ("run the writer until point P, silence it, fork two
// futures...") that are only expressible when the schedule is data rather
// than an accident of thread timing. The kernel therefore exposes:
//
//   - single-step delivery primitives (Deliver, Invoke),
//   - fair and seeded-random schedulers built on top of them,
//   - crash failures (a node stops taking steps),
//   - silencing (messages from AND to a node are delayed indefinitely,
//     the construction used in the valency probes of Sections 4-6),
//   - per-channel freezing (used by the Theorem 6.5 construction, which
//     withholds value-dependent messages in the channels),
//   - whole-system snapshots with deep-cloned node state, and
//   - per-server storage accounting in bits, the paper's cost metric.
//
// Messages are treated as immutable values: nodes must never mutate a
// message (or a byte slice reachable from one) after sending it, which lets
// snapshots share message payloads safely.
package ioa

import "fmt"

// NodeID identifies a node. Servers and clients share one namespace.
type NodeID int

// Message is an immutable value exchanged between nodes.
type Message any

// OpKind distinguishes read and write operations.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Invocation starts an operation at a client.
type Invocation struct {
	Kind  OpKind
	Value []byte // value to write; nil for reads
}

// Response completes an operation at a client.
type Response struct {
	Kind  OpKind
	Value []byte // value read; nil for writes
}

// Send is an outgoing message directed at a node.
type Send struct {
	To  NodeID
	Msg Message
}

// Effects is everything a node does in reaction to one input event: messages
// it sends plus, for clients, the completion of the outstanding operation.
type Effects struct {
	Sends    []Send
	Response *Response
}

// Node is a deterministic event-driven automaton. Deliver must be a pure
// state transition: same state + same input => same new state and effects.
type Node interface {
	// ID returns the node's identity.
	ID() NodeID
	// Deliver handles a message from another node.
	Deliver(from NodeID, msg Message) Effects
	// Clone returns a deep copy of the node; used by snapshots. Immutable
	// payloads (message byte slices) may be shared.
	Clone() Node
}

// Client is a node at which operations can be invoked. A client has at most
// one outstanding operation at a time (the well-formedness condition of
// Section 3).
type Client interface {
	Node
	// Invoke starts an operation. It must not be called while Busy.
	Invoke(inv Invocation) Effects
	// Busy reports whether an operation is outstanding.
	Busy() bool
}

// StorageMeter is implemented by server nodes that report the size in bits
// of their currently stored state. This is the operational proxy for the
// paper's log2|S_i| storage cost (see DESIGN.md, substitutions table).
type StorageMeter interface {
	StorageBits() int
}

// NodeSnapshot is an opaque durable-state image produced by a Recoverable
// node. Images are self-contained: they must stay valid after the node that
// produced them keeps mutating (immutable payloads — message byte slices,
// erasure shards — may be shared, exactly as Clone shares them).
type NodeSnapshot any

// Recoverable is implemented by automata that support crash-recovery
// durability: Snapshot captures the node's durable state, Restore replaces a
// node's state from such an image. The wall-clock fault scheduler checkpoints
// Recoverable servers at configurable intervals and, on a scheduled recovery,
// restarts the node from its last checkpoint — state mutated after that
// checkpoint is lost, which is precisely the crash-recovery model the paper's
// storage bounds reason about (a server must persist enough to survive
// failures). A node without this surface can still crash permanently; only
// scheduled recovery requires it.
type Recoverable interface {
	Node
	// Snapshot returns a self-contained image of the node's durable state.
	// It is called on the node's own execution context, never concurrently
	// with Deliver/Invoke.
	Snapshot() NodeSnapshot
	// Restore replaces the node's state from an image a node of the same
	// type produced. It errors on a foreign image.
	Restore(snap NodeSnapshot) error
}

// Digester is implemented by nodes whose state can be fingerprinted
// deterministically. The adversary package uses digests to realize the
// injectivity ("one-to-one mapping from value pairs to server state
// vectors") arguments of Theorems 4.1 and B.1.
type Digester interface {
	StateDigest() string
}

// FaultPlan is a deterministic delivery filter and failure schedule consulted
// by the kernel when one is installed with System.SetFaultPlan. All methods
// must be pure functions of their arguments (plus the plan's own immutable
// configuration): the kernel calls them at deterministic points of the
// schedule, and two runs of the same seeded schedule with the same plan must
// make identical fault decisions. The internal/faults package provides the
// standard implementation.
type FaultPlan interface {
	// MessageFate decides, at send time, what happens to the message with
	// the given global send sequence number on the from->to link: dropped
	// (never enqueued) or held for delaySteps additional steps before it
	// becomes deliverable. A zero fate (false, 0) is normal delivery.
	MessageFate(from, to NodeID, seq uint64, step int) (drop bool, delaySteps int)
	// LinkBlocked reports whether the from->to link is inside an outage
	// (partition) window at the given step. Blocked messages are held, not
	// dropped, and flow again when the window closes.
	LinkBlocked(from, to NodeID, step int) bool
	// NextLinkChange returns the earliest step strictly after step at which
	// the from->to link's blocked status may change, or -1 when it never
	// changes again. The kernel uses it to fast-forward logical time across
	// outage windows when nothing else is deliverable.
	NextLinkChange(from, to NodeID, step int) int
	// NodeEvents returns the scheduled crash/recovery events, ascending by
	// Step. The kernel applies an event once the step counter reaches it.
	NodeEvents() []NodeFaultEvent
}

// NodeFaultEvent schedules a node crash or recovery at a step.
type NodeFaultEvent struct {
	Step    int
	Node    NodeID
	Recover bool
}

// FaultKind classifies a recorded fault event.
type FaultKind int

// Fault event kinds recorded in the history.
const (
	FaultDrop FaultKind = iota + 1
	FaultDelay
	FaultCrash
	FaultRecover
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCrash:
		return "crash"
	case FaultRecover:
		return "recover"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultRecord is one fault event as it occurred in an execution. Records are
// appended to the history so a run's fault trace is as replayable and
// fingerprintable as its operation trace.
type FaultRecord struct {
	Step int
	Kind FaultKind
	// From and To identify the affected link for drop/delay records; for
	// crash/recover records From is the affected node and To is unused.
	From, To NodeID
	// Delay is the number of steps a delayed message was held.
	Delay int
}

// FaultStats aggregates an execution's fault events.
type FaultStats struct {
	// Drops counts messages discarded at send time.
	Drops int
	// DelayedMessages counts messages assigned a nonzero delivery delay, and
	// DelayStepsTotal sums those delays.
	DelayedMessages int
	DelayStepsTotal int
	// Crashes and Recoveries count applied scheduled node events.
	Crashes    int
	Recoveries int
	// Checkpoints counts durable-state snapshots taken by the wall-clock
	// backends' crash-recovery machinery. Zero on the simulator, whose
	// crash-recovery keeps state intact in-process.
	Checkpoints int
	// FastForwards counts the times a scheduler advanced logical time
	// because every queued message was delayed, blocked or addressed to a
	// crashed node.
	FastForwards int
	// TransportDropped counts messages lost below the fault plan: mailbox
	// or connection outboxes that stayed full past the send deadline, and
	// frames stranded in a dead connection's outbox. Zero on the simulator,
	// whose channels are unbounded.
	TransportDropped int
	// TransportRequeued counts frames moved to a freshly dialed connection
	// after their original connection died between lookup and enqueue.
	TransportRequeued int
}

// Add accumulates another execution's fault counts — the one place
// field-by-field summation lives, so aggregators (store, session) cannot
// silently drop a later-added counter.
func (s *FaultStats) Add(o FaultStats) {
	s.Drops += o.Drops
	s.DelayedMessages += o.DelayedMessages
	s.DelayStepsTotal += o.DelayStepsTotal
	s.Crashes += o.Crashes
	s.Recoveries += o.Recoveries
	s.Checkpoints += o.Checkpoints
	s.FastForwards += o.FastForwards
	s.TransportDropped += o.TransportDropped
	s.TransportRequeued += o.TransportRequeued
}

// ValueBearer marks messages that carry information about a written value
// (the "value-dependent messages" of Definition 6.4). The Theorem 6.5
// execution construction withholds exactly these messages.
type ValueBearer interface {
	BearsValue() bool
}

// BearsValue reports whether a message is value-dependent.
func BearsValue(m Message) bool {
	v, ok := m.(ValueBearer)
	return ok && v.BearsValue()
}
