// Package adversary makes the paper's lower-bound proofs executable: it
// constructs, against a real algorithm implementation running on the ioa
// kernel, the exact execution families the proofs of Appendix B, Theorem 4.1
// and Theorem 6.5 reason about, and checks the structural facts those proofs
// rely on (valency of points, critical pairs, the one-changed-server lemma,
// and the injectivity of the value->server-state mappings that yields the
// counting bounds).
//
// Valency here is witness-based: the paper's "k-valent" is existential over
// extensions, which is not directly computable for an arbitrary algorithm;
// the probes in this package build one concrete fair extension (silencing
// the writer, exactly as Definition 4.3 prescribes) and observe what a read
// returns. A probe returning v is a sound witness that the point IS v-valent;
// the critical-pair scan only needs such witnesses plus the regularity
// guarantee that probes return v1 or v2 (Lemma 4.5), which the experiments
// additionally assert.
package adversary

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/ioa"
)

// Config parameterizes the execution constructions.
type Config struct {
	// Build constructs a fresh deterministic deployment.
	Build cluster.Builder
	// FailServers gives the indices (into cluster.Servers) of the servers
	// crashed at the beginning of every constructed execution, as in the
	// proofs ("the f servers in {1..N}-N fail at the beginning").
	FailServers []int
	// Gossip selects the Theorem 5.1 flavor of the valency probe: before
	// the read starts, all server-to-server channels deliver their
	// messages (Definition 5.3). Without it the probe follows Definition
	// 4.3 (Theorem 4.1, no-gossip algorithms).
	Gossip bool
	// MaxSteps bounds every scheduler run (default 200000).
	MaxSteps int
}

func (c Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return 200000
}

// build constructs the cluster and applies the initial failures.
func (c Config) buildFailed() (*cluster.Cluster, error) {
	cl, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("adversary: build: %w", err)
	}
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	if len(c.FailServers) > cl.F {
		return nil, fmt.Errorf("adversary: %d initial failures exceed f=%d", len(c.FailServers), cl.F)
	}
	for _, idx := range c.FailServers {
		if idx < 0 || idx >= len(cl.Servers) {
			return nil, fmt.Errorf("adversary: fail index %d out of range", idx)
		}
		cl.Sys.Crash(cl.Servers[idx])
	}
	return cl, nil
}

// liveServers returns the cluster's non-crashed servers in ascending order.
func liveServers(cl *cluster.Cluster) []ioa.NodeID {
	out := make([]ioa.NodeID, 0, len(cl.Servers))
	for _, id := range cl.Servers {
		if !cl.Sys.Crashed(id) {
			out = append(out, id)
		}
	}
	return out
}

// serverDigests returns the StateDigest of each given server.
func serverDigests(sys *ioa.System, ids []ioa.NodeID) ([]string, error) {
	out := make([]string, len(ids))
	for i, id := range ids {
		n, err := sys.Node(id)
		if err != nil {
			return nil, err
		}
		d, ok := n.(ioa.Digester)
		if !ok {
			return nil, fmt.Errorf("adversary: server %d does not implement ioa.Digester", id)
		}
		out[i] = d.StateDigest()
	}
	return out, nil
}

// TwoWritePoints is the execution alpha^(v1,v2) of Sections 4/5: the f
// chosen servers fail, a write of v1 runs to completion, then a write of v2
// runs to completion, with a snapshot taken at every point in between.
// Points[0] is the point P_0 after pi_1 terminates and before pi_2 begins;
// Points[len-1] is the point P_M after pi_2 terminates.
type TwoWritePoints struct {
	Cluster *cluster.Cluster
	V1, V2  []byte
	Points  []*ioa.Snapshot
}

// RunTwoWrites constructs alpha^(v1,v2).
func (c Config) RunTwoWrites(v1, v2 []byte) (*TwoWritePoints, error) {
	if bytes.Equal(v1, v2) {
		return nil, fmt.Errorf("adversary: v1 and v2 must be distinct")
	}
	cl, err := c.buildFailed()
	if err != nil {
		return nil, err
	}
	sys := cl.Sys
	writer := cl.Writers[0]
	if _, err := sys.RunOp(writer, ioa.Invocation{Kind: ioa.OpWrite, Value: v1}, c.maxSteps()); err != nil {
		return nil, fmt.Errorf("adversary: write pi1: %w", err)
	}
	pts := []*ioa.Snapshot{sys.Snapshot()} // P_0
	op2, err := sys.Invoke(writer, ioa.Invocation{Kind: ioa.OpWrite, Value: v2})
	if err != nil {
		return nil, fmt.Errorf("adversary: invoke pi2: %w", err)
	}
	pts = append(pts, sys.Snapshot()) // point just after the invocation step
	st := ioa.NewStepper(sys)
	for steps := 0; ; steps++ {
		if steps > c.maxSteps() {
			return nil, fmt.Errorf("adversary: pi2 did not terminate within %d steps: %w", c.maxSteps(), ioa.ErrStepLimit)
		}
		op, err := sys.History().OpByID(op2)
		if err != nil {
			return nil, err
		}
		if !op.Pending() {
			break
		}
		ok, err := st.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("adversary: pi2 quiescent before termination: %w", ioa.ErrQuiescent)
		}
		pts = append(pts, sys.Snapshot())
	}
	return &TwoWritePoints{Cluster: cl, V1: v1, V2: v2, Points: pts}, nil
}

// ProbeRead is the valency probe of Definitions 4.3/5.3: restore the
// snapshot, delay all messages from and to the writer indefinitely
// (Silence), in gossip mode let the server-to-server channels deliver all
// their messages, then run a read at the cluster's reader to completion
// under a fair schedule and return its output.
func (c Config) ProbeRead(tw *TwoWritePoints, point int) ([]byte, error) {
	if point < 0 || point >= len(tw.Points) {
		return nil, fmt.Errorf("adversary: point %d out of range [0,%d)", point, len(tw.Points))
	}
	sys := tw.Points[point].Restore()
	for _, w := range tw.Cluster.Writers {
		sys.Silence(w)
	}
	if c.Gossip {
		if _, err := sys.DrainServerToServer(c.maxSteps()); err != nil {
			return nil, fmt.Errorf("adversary: gossip drain: %w", err)
		}
	}
	if len(tw.Cluster.Readers) == 0 {
		return nil, fmt.Errorf("adversary: cluster has no reader for probes")
	}
	op, err := sys.RunOp(tw.Cluster.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, c.maxSteps())
	if err != nil {
		return nil, fmt.Errorf("adversary: probe read at point %d: %w", point, err)
	}
	return op.Output, nil
}

// CriticalPair captures a pair of adjacent points (Q1, Q2) = (P_i, P_{i+1})
// where the valency witness flips from v1 to v2 (Definition 4.7 / Lemma
// 4.6), together with the server-state evidence used in the counting
// argument of Section 4.3.3.
type CriticalPair struct {
	Index      int    // i: Q1 = P_i, Q2 = P_{i+1}
	ProbeQ1    []byte // read value witnessed from Q1 (= v1)
	ProbeQ2    []byte // read value witnessed from Q2
	Live       []ioa.NodeID
	DigestsQ1  []string // live-server digests at Q1
	DigestsQ2  []string // live-server digests at Q2
	NumChanged int      // how many live servers changed state Q1 -> Q2
	ChangedIdx int      // index (into Live) of the changed server, -1 if none
}

// StateVector serializes the tuple S^(v1,v2) of the Theorem 4.1 proof: the
// states of the N-f live servers at Q1, plus the identity and Q2-state of
// the (at most one) server that changed.
func (cp *CriticalPair) StateVector() string {
	var b bytes.Buffer
	for _, d := range cp.DigestsQ1 {
		b.WriteString(d)
		b.WriteByte(0)
	}
	fmt.Fprintf(&b, "|changed=%d|", cp.ChangedIdx)
	if cp.ChangedIdx >= 0 {
		b.WriteString(cp.DigestsQ2[cp.ChangedIdx])
	}
	return b.String()
}

// ErrNoCriticalPair is returned when no adjacent probe flip exists, which
// would contradict Lemma 4.6.
var ErrNoCriticalPair = errors.New("adversary: no critical pair found (contradicts Lemma 4.6)")

// FindCriticalPair probes every point of the execution and locates the last
// index i whose probe returns v1 while the probe of i+1 does not (Lemma 4.6
// guarantees existence: P_0 is 1-valent and P_M is not). It also verifies
// Lemma 4.5 — every probe returns v1 or v2 — and Lemma 4.8(b): at most one
// live server changes state between Q1 and Q2.
func (c Config) FindCriticalPair(tw *TwoWritePoints) (*CriticalPair, error) {
	probes := make([][]byte, len(tw.Points))
	for i := range tw.Points {
		out, err := c.ProbeRead(tw, i)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(out, tw.V1) && !bytes.Equal(out, tw.V2) {
			return nil, fmt.Errorf("adversary: probe at point %d returned %q, violating Lemma 4.5 (must be v1 or v2)", i, out)
		}
		probes[i] = out
	}
	if !bytes.Equal(probes[0], tw.V1) {
		return nil, fmt.Errorf("adversary: P_0 probe returned %q, want v1 (Lemma 4.6(i))", probes[0])
	}
	if bytes.Equal(probes[len(probes)-1], tw.V1) {
		return nil, fmt.Errorf("adversary: P_M probe returned v1, violating Lemma 4.6(ii)")
	}
	idx := -1
	for i := len(probes) - 2; i >= 0; i-- {
		if bytes.Equal(probes[i], tw.V1) && !bytes.Equal(probes[i+1], tw.V1) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, ErrNoCriticalPair
	}
	sysQ1 := tw.Points[idx].Restore()
	sysQ2 := tw.Points[idx+1].Restore()
	live := liveServers(tw.Cluster)
	d1, err := serverDigests(sysQ1, live)
	if err != nil {
		return nil, err
	}
	d2, err := serverDigests(sysQ2, live)
	if err != nil {
		return nil, err
	}
	cp := &CriticalPair{
		Index:      idx,
		ProbeQ1:    probes[idx],
		ProbeQ2:    probes[idx+1],
		Live:       live,
		DigestsQ1:  d1,
		DigestsQ2:  d2,
		ChangedIdx: -1,
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			cp.NumChanged++
			cp.ChangedIdx = i
		}
	}
	if cp.NumChanged > 1 {
		return nil, fmt.Errorf("adversary: %d servers changed between critical points, violating Lemma 4.8(b)", cp.NumChanged)
	}
	return cp, nil
}
