package adversary

import (
	"fmt"
	"math"

	"repro/internal/ioa"
)

// Theorem41Result reports the outcome of the executable Theorem 4.1 proof.
type Theorem41Result struct {
	// Values is the size |V| of the value set exercised.
	Values int
	// Pairs is the number of ordered distinct pairs = |V|·(|V|-1).
	Pairs int
	// DistinctVectors counts distinct S^(v1,v2) state vectors observed. The
	// theorem requires DistinctVectors == Pairs.
	DistinctVectors int
	// MaxChangedServers is the largest number of live servers that changed
	// between critical points across all pairs (Lemma 4.8 requires <= 1).
	MaxChangedServers int
	// WitnessedBitsLowerBound is log2(Pairs): a lower bound on
	// sum_{n in N} log2|S_n| + max_n log2|S_n| + log2(N-f) certified by the
	// experiment, the left side of the Theorem 4.1 counting inequality.
	WitnessedBitsLowerBound float64
	// Injective reports whether the one-to-one mapping held.
	Injective bool
}

// RunTheorem41 executes the proof of Theorem 4.1 against the algorithm: for
// every ordered pair (v1, v2) of distinct values it constructs the execution
// alpha^(v1,v2), finds a critical pair of points, extracts the state vector
// S^(v1,v2), and finally checks that the mapping from value pairs to state
// vectors is one-to-one — the counting step that yields
//
//	prod |S_n| · (N-f) · max|S_n|  >=  |V|·(|V|-1).
func (c Config) RunTheorem41(values [][]byte) (*Theorem41Result, error) {
	if len(values) < 2 {
		return nil, fmt.Errorf("adversary: need at least two values, got %d", len(values))
	}
	res := &Theorem41Result{Values: len(values)}
	vectors := make(map[string]string) // state vector -> "i,j" that produced it
	for i, v1 := range values {
		for j, v2 := range values {
			if i == j {
				continue
			}
			res.Pairs++
			tw, err := c.RunTwoWrites(v1, v2)
			if err != nil {
				return nil, fmt.Errorf("pair (%d,%d): %w", i, j, err)
			}
			cp, err := c.FindCriticalPair(tw)
			if err != nil {
				return nil, fmt.Errorf("pair (%d,%d): %w", i, j, err)
			}
			if cp.NumChanged > res.MaxChangedServers {
				res.MaxChangedServers = cp.NumChanged
			}
			key := cp.StateVector()
			if prev, dup := vectors[key]; dup {
				return nil, fmt.Errorf("adversary: state vector collision between pairs %s and (%d,%d): injectivity of Theorem 4.1 violated", prev, i, j)
			}
			vectors[key] = fmt.Sprintf("(%d,%d)", i, j)
		}
	}
	res.DistinctVectors = len(vectors)
	res.Injective = res.DistinctVectors == res.Pairs
	res.WitnessedBitsLowerBound = math.Log2(float64(res.Pairs))
	return res, nil
}

// AppendixBResult reports the outcome of the executable Theorem B.1 proof.
type AppendixBResult struct {
	Values          int
	DistinctVectors int
	// WitnessedBitsLowerBound is log2(Values): the certified lower bound on
	// sum over the N-f live servers of log2|S_n|.
	WitnessedBitsLowerBound float64
	Injective               bool
}

// RunAppendixB executes the proof of Theorem B.1: for every value v, the f
// chosen servers fail, v is written, all channels then deliver all their
// messages (the point P(v) of the proof), and the states of the N-f live
// servers are recorded. Distinct values must produce distinct state vectors
// — otherwise a read after P(v) could not distinguish them, violating
// regularity — which yields prod_{n in N} |S_n| >= |V|. The experiment also
// runs that read and checks it returns v.
func (c Config) RunAppendixB(values [][]byte) (*AppendixBResult, error) {
	if len(values) < 2 {
		return nil, fmt.Errorf("adversary: need at least two values, got %d", len(values))
	}
	res := &AppendixBResult{Values: len(values)}
	vectors := make(map[string]int)
	for i, v := range values {
		cl, err := c.buildFailed()
		if err != nil {
			return nil, err
		}
		sys := cl.Sys
		if _, err := sys.RunOp(cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: v}, c.maxSteps()); err != nil {
			return nil, fmt.Errorf("value %d: write: %w", i, err)
		}
		// "At P~(v), all the channels in the system act, delivering all
		// their messages."
		if _, err := sys.DrainMatching(c.maxSteps(), func(from, to ioa.NodeID) bool { return true }); err != nil {
			return nil, fmt.Errorf("value %d: drain: %w", i, err)
		}
		live := liveServers(cl)
		digests, err := serverDigests(sys, live)
		if err != nil {
			return nil, err
		}
		key := ""
		for _, d := range digests {
			key += d + "\x00"
		}
		if prev, dup := vectors[key]; dup {
			return nil, fmt.Errorf("adversary: values %d and %d left identical server states: Theorem B.1 injectivity violated", prev, i)
		}
		vectors[key] = i
		// The write client fails at P(v); a read must still return v.
		sys.Crash(cl.Writers[0])
		if len(cl.Readers) == 0 {
			return nil, fmt.Errorf("adversary: cluster has no reader")
		}
		op, err := sys.RunOp(cl.Readers[0], ioa.Invocation{Kind: ioa.OpRead}, c.maxSteps())
		if err != nil {
			return nil, fmt.Errorf("value %d: read: %w", i, err)
		}
		if string(op.Output) != string(v) {
			return nil, fmt.Errorf("value %d: read returned %q, want the written value (regularity)", i, op.Output)
		}
	}
	res.DistinctVectors = len(vectors)
	res.Injective = res.DistinctVectors == res.Values
	res.WitnessedBitsLowerBound = math.Log2(float64(res.Values))
	return res, nil
}
