package adversary

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/abd"
	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/coded"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/register"
)

func invWrite(v []byte) ioa.Invocation {
	return ioa.Invocation{Kind: ioa.OpWrite, Value: v}
}

// twoVersionBuilder deploys the two-version coded SWSR register — the exact
// class (regular, no gossip) of Theorems 4.1 and B.1.
func twoVersionBuilder(n, f int) cluster.Builder {
	return func() (*cluster.Cluster, error) {
		return coded.Deploy(coded.Options{Servers: n, F: f, Readers: 1})
	}
}

func abdBuilder(n, f int) cluster.Builder {
	return func() (*cluster.Cluster, error) {
		return abd.Deploy(abd.Options{Servers: n, F: f, Writers: 1, Readers: 1})
	}
}

func casBuilder(n, f, writers int) cluster.Builder {
	return func() (*cluster.Cluster, error) {
		return cas.Deploy(cas.Options{Servers: n, F: f, GCDepth: -1, Writers: writers, Readers: 1})
	}
}

func values(t *testing.T, count, size int) [][]byte {
	t.Helper()
	out := make([][]byte, count)
	for i := range out {
		out[i] = register.MakeValue(size, uint64(i+1))
	}
	return out
}

func TestRunTwoWritesShape(t *testing.T) {
	cfg := Config{Build: twoVersionBuilder(5, 2), FailServers: []int{3, 4}}
	vs := values(t, 2, 16)
	tw, err := cfg.RunTwoWrites(vs[0], vs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(tw.Points) < 3 {
		t.Fatalf("execution has only %d points", len(tw.Points))
	}
	// P_0 probe returns v1; P_M probe returns v2.
	out0, err := cfg.ProbeRead(tw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out0, vs[0]) {
		t.Errorf("P_0 probe returned %q, want v1", out0)
	}
	outM, err := cfg.ProbeRead(tw, len(tw.Points)-1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outM, vs[1]) {
		t.Errorf("P_M probe returned %q, want v2", outM)
	}
	if _, err := cfg.ProbeRead(tw, -1); err == nil {
		t.Error("out-of-range probe should fail")
	}
	if _, err := cfg.RunTwoWrites(vs[0], vs[0]); err == nil {
		t.Error("identical values must be rejected")
	}
}

func TestCriticalPairTwoVersion(t *testing.T) {
	cfg := Config{Build: twoVersionBuilder(5, 2), FailServers: []int{3, 4}}
	vs := values(t, 2, 16)
	tw, err := cfg.RunTwoWrites(vs[0], vs[1])
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cfg.FindCriticalPair(tw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp.ProbeQ1, vs[0]) {
		t.Error("Q1 must witness v1")
	}
	if bytes.Equal(cp.ProbeQ2, vs[0]) {
		t.Error("Q2 must not witness v1")
	}
	if cp.NumChanged > 1 {
		t.Errorf("Lemma 4.8 violated: %d servers changed", cp.NumChanged)
	}
	if len(cp.Live) != 3 {
		t.Errorf("expected 3 live servers, got %d", len(cp.Live))
	}
}

func TestCriticalPairABD(t *testing.T) {
	// ABD is atomic hence regular; the same construction must work on it.
	cfg := Config{Build: abdBuilder(5, 2), FailServers: []int{0, 2}}
	vs := values(t, 2, 16)
	tw, err := cfg.RunTwoWrites(vs[0], vs[1])
	if err != nil {
		t.Fatal(err)
	}
	cp, err := cfg.FindCriticalPair(tw)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NumChanged > 1 {
		t.Errorf("Lemma 4.8 violated: %d servers changed", cp.NumChanged)
	}
}

// TestTheorem41Injectivity is the executable proof of Theorem 4.1: the map
// from ordered value pairs to critical-point state vectors is one-to-one.
func TestTheorem41Injectivity(t *testing.T) {
	for _, builder := range []struct {
		name string
		b    cluster.Builder
	}{
		{"two-version", twoVersionBuilder(5, 2)},
		{"abd-swmr", abdBuilder(5, 2)},
	} {
		t.Run(builder.name, func(t *testing.T) {
			cfg := Config{Build: builder.b, FailServers: []int{3, 4}}
			vs := values(t, 4, 16)
			res, err := cfg.RunTheorem41(vs)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Injective {
				t.Errorf("mapping not injective: %d vectors for %d pairs", res.DistinctVectors, res.Pairs)
			}
			if res.Pairs != 12 {
				t.Errorf("pairs = %d, want 12", res.Pairs)
			}
			if res.MaxChangedServers > 1 {
				t.Errorf("Lemma 4.8 violated: %d", res.MaxChangedServers)
			}
			want := math.Log2(12)
			if math.Abs(res.WitnessedBitsLowerBound-want) > 1e-9 {
				t.Errorf("witnessed bits = %f, want %f", res.WitnessedBitsLowerBound, want)
			}
		})
	}
}

// TestTheorem41GossipModeProbe exercises the Theorem 5.1 probe variant
// (server-to-server channels drained before the read). The two-version
// register has no gossip, so results must agree with the plain probe.
func TestTheorem41GossipModeProbe(t *testing.T) {
	cfg := Config{Build: twoVersionBuilder(5, 2), FailServers: []int{3, 4}, Gossip: true}
	vs := values(t, 3, 16)
	res, err := cfg.RunTheorem41(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injective {
		t.Error("gossip-mode run should remain injective")
	}
}

// TestTheorem51OnGossipingRegister runs the full Theorem 5.1 machinery —
// gossip-draining valency probes, critical pairs, injectivity — against an
// algorithm that actually uses server-to-server gossip.
func TestTheorem51OnGossipingRegister(t *testing.T) {
	build := func() (*cluster.Cluster, error) {
		return coded.DeployGossip(coded.Options{Servers: 5, F: 2, Readers: 1})
	}
	cfg := Config{Build: build, FailServers: []int{3, 4}, Gossip: true}
	vs := values(t, 3, 16)
	res, err := cfg.RunTheorem41(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injective {
		t.Errorf("Theorem 5.1 mapping not injective: %d vectors for %d pairs", res.DistinctVectors, res.Pairs)
	}
	// With gossip, Lemma 5.8 still bounds per-step server changes at one.
	if res.MaxChangedServers > 1 {
		t.Errorf("Lemma 5.8 violated: %d servers changed", res.MaxChangedServers)
	}
	// Appendix B also applies unchanged.
	rb, err := cfg.RunAppendixB(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Injective {
		t.Error("Appendix B mapping should be injective on the gossiping register")
	}
}

// TestAppendixBInjectivity is the executable proof of Theorem B.1.
func TestAppendixBInjectivity(t *testing.T) {
	for _, builder := range []struct {
		name string
		b    cluster.Builder
	}{
		{"two-version", twoVersionBuilder(5, 2)},
		{"solo", func() (*cluster.Cluster, error) {
			return coded.DeploySolo(coded.SoloOptions{Servers: 5, F: 2, Readers: 1})
		}},
		{"abd", abdBuilder(5, 2)},
	} {
		t.Run(builder.name, func(t *testing.T) {
			cfg := Config{Build: builder.b, FailServers: []int{3, 4}}
			vs := values(t, 5, 16)
			res, err := cfg.RunAppendixB(vs)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Injective {
				t.Errorf("mapping not injective: %d vectors for %d values", res.DistinctVectors, res.Values)
			}
			if math.Abs(res.WitnessedBitsLowerBound-math.Log2(5)) > 1e-9 {
				t.Errorf("witnessed bits = %f", res.WitnessedBitsLowerBound)
			}
		})
	}
}

// TestTheorem41MeasuredStorageRespectsBound closes the loop: the storage the
// algorithms actually use is at least the Corollary 4.2 lower bound.
func TestTheorem41MeasuredStorageRespectsBound(t *testing.T) {
	n, f := 5, 2
	valBytes := 64
	log2V := float64(8 * valBytes)
	p := core.Params{N: n, F: f}
	bound := core.Theorem41TotalBits(p, log2V)
	for _, builder := range []struct {
		name string
		b    cluster.Builder
	}{
		{"two-version", twoVersionBuilder(n, f)},
		{"abd", abdBuilder(n, f)},
	} {
		cl, err := builder.b()
		if err != nil {
			t.Fatal(err)
		}
		vs := values(t, 2, valBytes)
		for _, v := range vs {
			if _, err := cl.Sys.RunOp(cl.Writers[0], invWrite(v), 200000); err != nil {
				t.Fatal(err)
			}
		}
		got := float64(cl.Sys.Storage().MaxTotalBits)
		if got < bound {
			t.Errorf("%s: measured %0.f bits below Corollary 4.2 bound %.0f", builder.name, got, bound)
		}
	}
}

// TestTheorem65CAS runs the executable Theorem 6.5 experiment against CAS.
func TestTheorem65CAS(t *testing.T) {
	n, f, nu := 5, 2, 2
	// The paper's alpha^v_0 fails the last f+1-nu servers.
	cfg := Config{Build: casBuilder(n, f, nu), FailServers: []int{4}}
	// Value vectors: pairs of distinct values from a pool of 4.
	pool := values(t, 4, 32)
	var vectors [][][]byte
	for i := range pool {
		for j := range pool {
			if i != j {
				vectors = append(vectors, [][]byte{pool[i], pool[j]})
			}
		}
	}
	res, err := cfg.RunTheorem65(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllRecovered {
		t.Errorf("all %d values should be recoverable from the prefix for a coded algorithm: %v", nu, res.Recovered)
	}
	if res.VectorsDistinct != res.VectorsTried {
		t.Errorf("injectivity violated: %d distinct of %d vectors", res.VectorsDistinct, res.VectorsTried)
	}
	if res.PrefixServers != n-f+nu-1 {
		t.Errorf("prefix = %d servers, want N-f+nu-1 = %d", res.PrefixServers, n-f+nu-1)
	}
	if res.WitnessedBitsLowerBound <= 0 {
		t.Error("expected a positive witnessed bound")
	}
}

// TestTheorem65ABDOverwrites documents the replication contrast: with
// uniform prefix delivery, ABD servers keep only the maximum tag, so not all
// values stay recoverable (the paper's staggered construction is needed for
// replication-style algorithms).
func TestTheorem65ABDOverwrites(t *testing.T) {
	cfg := Config{Build: func() (*cluster.Cluster, error) {
		return abd.Deploy(abd.Options{Servers: 5, F: 2, Writers: 2, Readers: 1, MultiWriter: true})
	}, FailServers: []int{4}}
	pool := values(t, 3, 32)
	vectors := [][][]byte{{pool[0], pool[1]}, {pool[0], pool[2]}}
	res, err := cfg.RunTheorem65(vectors)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, r := range res.Recovered {
		if r {
			recovered++
		}
	}
	if recovered == len(res.Recovered) {
		t.Error("expected at least one value to be lost to tag overwriting in ABD")
	}
	if recovered == 0 {
		t.Error("the maximum-tag value should remain recoverable in ABD")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{Build: twoVersionBuilder(5, 2), FailServers: []int{0, 1, 2}}
	if _, err := cfg.RunTwoWrites([]byte("a"), []byte("b")); err == nil {
		t.Error("more failures than f must be rejected")
	}
	cfg = Config{Build: twoVersionBuilder(5, 2), FailServers: []int{99}}
	if _, err := cfg.RunTwoWrites([]byte("a"), []byte("b")); err == nil {
		t.Error("out-of-range failure index must be rejected")
	}
	cfg = Config{Build: twoVersionBuilder(5, 2)}
	if _, err := cfg.RunTheorem41([][]byte{[]byte("x")}); err == nil {
		t.Error("need two values")
	}
	if _, err := cfg.RunAppendixB([][]byte{[]byte("x")}); err == nil {
		t.Error("need two values")
	}
	if _, err := cfg.RunTheorem65(nil); err == nil {
		t.Error("need vectors")
	}
}
