package adversary

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/ioa"
	"repro/internal/quorum"
)

// EmbargoPoint is the point P_0 of the Section 6.4 execution alpha^v_0: nu
// write operations have each advanced to the phase in which their
// value-dependent messages sit in the client-to-server channels, and no
// value-dependent message has been delivered to any server.
type EmbargoPoint struct {
	Cluster *cluster.Cluster
	Values  [][]byte // Values[i] is being written by Cluster.Writers[i]
	Snap    *ioa.Snapshot
}

// RunEmbargoedWrites constructs alpha^v_0 for nu = len(values) writers: it
// builds the cluster, applies the configured failures, invokes one write per
// writer, and schedules every component EXCEPT that value-dependent
// client-to-server messages are never delivered, until the system is
// quiescent under that embargo. It verifies that each writer is then parked
// in a value-dependent phase (Assumption 3(b): the one phase carrying value
// information), which holds for every algorithm in the Theorem 6.5 class.
func (c Config) RunEmbargoedWrites(values [][]byte) (*EmbargoPoint, error) {
	nu := len(values)
	if nu < 1 {
		return nil, fmt.Errorf("adversary: need at least one value")
	}
	cl, err := c.buildFailed()
	if err != nil {
		return nil, err
	}
	if len(cl.Writers) < nu {
		return nil, fmt.Errorf("adversary: cluster has %d writers, need %d", len(cl.Writers), nu)
	}
	sys := cl.Sys
	for i := 0; i < nu; i++ {
		if _, err := sys.Invoke(cl.Writers[i], ioa.Invocation{Kind: ioa.OpWrite, Value: values[i]}); err != nil {
			return nil, fmt.Errorf("adversary: invoke write %d: %w", i, err)
		}
	}
	if err := c.embargoRun(cl); err != nil {
		return nil, err
	}
	// Every writer must now be parked in its value-dependent phase.
	for i := 0; i < nu; i++ {
		n, err := sys.Node(cl.Writers[i])
		if err != nil {
			return nil, err
		}
		pw, ok := n.(quorum.PhasedWriter)
		if !ok {
			return nil, fmt.Errorf("adversary: writer %d does not implement quorum.PhasedWriter", cl.Writers[i])
		}
		if _, vd := pw.WritePhase(); !vd {
			return nil, fmt.Errorf("adversary: writer %d is not in a value-dependent phase at P_0; algorithm outside the Theorem 6.5 class?", cl.Writers[i])
		}
	}
	return &EmbargoPoint{Cluster: cl, Values: values, Snap: sys.Snapshot()}, nil
}

// embargoRun schedules fairly but never delivers value-bearing messages,
// until no non-value-bearing message is deliverable.
func (c Config) embargoRun(cl *cluster.Cluster) error {
	sys := cl.Sys
	notValue := func(m ioa.Message) bool { return !ioa.BearsValue(m) }
	for steps := 0; ; {
		progressed := false
		for _, k := range sys.DeliverableChannels() {
			ok, err := sys.DeliverSelect(k.From, k.To, notValue)
			if err != nil {
				return fmt.Errorf("adversary: embargo run: %w", err)
			}
			if ok {
				progressed = true
				steps++
				if steps > c.maxSteps() {
					return fmt.Errorf("adversary: embargo run: %w", ioa.ErrStepLimit)
				}
			}
		}
		if !progressed {
			return nil
		}
	}
}

// DeliverValuePrefix restores the embargo point and delivers every queued
// value-dependent message from the first `writers` writers to the first
// `prefix` LIVE servers (the "deliver all the value-dependent messages to
// the first a servers" step of Section 6.4). Server replies (acks) are NOT
// delivered, so writers learn nothing. It returns the resulting system.
func (ep *EmbargoPoint) DeliverValuePrefix(cfg Config, writerSet []int, prefix int) (*ioa.System, error) {
	sys := ep.Snap.Restore()
	live := liveServers(ep.Cluster.WithSystem(sys))
	if prefix < 0 || prefix > len(live) {
		return nil, fmt.Errorf("adversary: prefix %d out of range [0,%d]", prefix, len(live))
	}
	isValue := func(m ioa.Message) bool { return ioa.BearsValue(m) }
	for _, wi := range writerSet {
		if wi < 0 || wi >= len(ep.Values) {
			return nil, fmt.Errorf("adversary: writer index %d out of range", wi)
		}
		w := ep.Cluster.Writers[wi]
		for _, s := range live[:prefix] {
			for {
				ok, err := sys.DeliverSelect(w, s, isValue)
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
			}
		}
	}
	return sys, nil
}

// ProbeRecover checks whether value index `target` is recoverable from the
// given system state with only value-INDEPENDENT help: all writers other
// than the target are silenced outright, the target writer may act but its
// remaining value-dependent messages are withheld (its channels deliver only
// value-independent messages), and a read runs to completion. It returns the
// read's output. This realizes the (j, C0)-valency probes of Section 6.4.2.
func (ep *EmbargoPoint) ProbeRecover(cfg Config, sys *ioa.System, target int) ([]byte, error) {
	fork := sys.Snapshot().Restore()
	for i, w := range ep.Cluster.Writers[:len(ep.Values)] {
		if i != target {
			fork.Silence(w)
		}
	}
	if len(ep.Cluster.Readers) == 0 {
		return nil, fmt.Errorf("adversary: cluster has no reader")
	}
	// Only WRITE clients' value-dependent messages are embargoed
	// (Definition 6.4 concerns the write protocol; a reader's write-back
	// may carry values freely).
	writerSet := make(map[ioa.NodeID]bool, len(ep.Values))
	for _, w := range ep.Cluster.Writers[:len(ep.Values)] {
		writerSet[w] = true
	}
	notValue := func(m ioa.Message) bool { return !ioa.BearsValue(m) }
	embargoSweep := func() (bool, error) {
		progressed := false
		for _, k := range fork.DeliverableChannels() {
			if writerSet[k.From] {
				ok, err := fork.DeliverSelect(k.From, k.To, notValue)
				if err != nil {
					return false, err
				}
				progressed = progressed || ok
				continue
			}
			if !fork.CanDeliver(k.From, k.To) {
				continue
			}
			if err := fork.Deliver(k.From, k.To); err != nil {
				return false, err
			}
			progressed = true
		}
		return progressed, nil
	}
	// First let the target writer settle under the embargo (the adversary
	// may delay the read's messages arbitrarily, so scheduling the read
	// after quiescence is a legitimate extension): the writer's remaining
	// value-INDEPENDENT phases complete using the acks already earned.
	for steps := 0; ; steps++ {
		if steps > cfg.maxSteps() {
			return nil, fmt.Errorf("adversary: recovery probe settle: %w", ioa.ErrStepLimit)
		}
		progressed, err := embargoSweep()
		if err != nil {
			return nil, err
		}
		if !progressed {
			break
		}
	}
	readID, err := fork.Invoke(ep.Cluster.Readers[0], ioa.Invocation{Kind: ioa.OpRead})
	if err != nil {
		return nil, err
	}
	for steps := 0; ; steps++ {
		op, err := fork.History().OpByID(readID)
		if err != nil {
			return nil, err
		}
		if !op.Pending() {
			return op.Output, nil
		}
		if steps > cfg.maxSteps() {
			return nil, fmt.Errorf("adversary: recovery probe: %w", ioa.ErrStepLimit)
		}
		progressed, err := embargoSweep()
		if err != nil {
			return nil, err
		}
		if !progressed {
			return nil, fmt.Errorf("adversary: recovery probe quiescent before the read terminated: %w", ioa.ErrQuiescent)
		}
	}
}

// Theorem65Result reports the outcome of the executable Theorem 6.5
// experiment.
type Theorem65Result struct {
	// Nu is the number of concurrent writes.
	Nu int
	// PrefixServers is the number of live servers that received the
	// value-dependent messages (the proof's first N-f+nu-1 servers).
	PrefixServers int
	// Recovered[i] reports whether value i was individually recoverable
	// from the prefix state with only value-independent help.
	Recovered []bool
	// AllRecovered is true when every one of the nu values was recoverable
	// — the "sufficient information of all nu values is contained in the
	// prefix" conclusion that drives the counting bound.
	AllRecovered bool
	// VectorsDistinct counts distinct prefix-state digests across the value
	// vectors exercised by RunTheorem65; equal to VectorsTried when the
	// one-to-one mapping of Section 6.4.4 holds.
	VectorsTried, VectorsDistinct int
	// WitnessedBitsLowerBound is log2(VectorsTried) when injective: the
	// certified lower bound on the summed storage of the prefix servers.
	WitnessedBitsLowerBound float64
}

// RunTheorem65 executes the core of the Theorem 6.5 argument against a
// coded algorithm for each value vector in vectors (each of length nu):
//
//  1. Construct the embargo point P_0 (queries done, value-dependent
//     messages undelivered in the channels).
//  2. Deliver every writer's value-dependent messages to the first
//     min(N-f+nu-1, live) servers, without delivering any ack.
//  3. For each value index j, probe that v_j is recoverable from that state
//     using only value-independent actions (all other writers silenced):
//     the "sufficient information" valency of Section 6.4.2.
//  4. Digest the prefix servers' states; across value vectors the digests
//     must be pairwise distinct — the one-to-one mapping of Section 6.4.4
//     from value vectors to server states, which yields
//     (nu!)·(N-f+nu-1)^nu · prod|S_n| >= C(|V|-1, nu)·nu! .
//
// Step 3 holds for erasure-coded algorithms (CAS): every value's coded
// state coexists at the servers. For replication-style algorithms (ABD) the
// uniform-prefix delivery overwrites older tags and only the maximum-tag
// value remains recoverable; the paper's full staggered-prefix construction
// (Lemma 6.10) covers those too, and the result reports per-value
// recoverability so callers can observe the difference.
func (c Config) RunTheorem65(vectors [][][]byte) (*Theorem65Result, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("adversary: no value vectors")
	}
	nu := len(vectors[0])
	res := &Theorem65Result{Nu: nu, Recovered: make([]bool, nu), AllRecovered: true}
	digests := make(map[string]int)
	for vi, vals := range vectors {
		if len(vals) != nu {
			return nil, fmt.Errorf("adversary: vector %d has length %d, want %d", vi, len(vals), nu)
		}
		ep, err := c.RunEmbargoedWrites(vals)
		if err != nil {
			return nil, fmt.Errorf("vector %d: %w", vi, err)
		}
		sysLive := liveServers(ep.Cluster)
		n := len(ep.Cluster.Servers)
		f := ep.Cluster.F
		prefix := n - f + nu - 1
		if prefix > len(sysLive) {
			prefix = len(sysLive)
		}
		res.PrefixServers = prefix
		all := make([]int, nu)
		for i := range all {
			all[i] = i
		}
		sys, err := ep.DeliverValuePrefix(c, all, prefix)
		if err != nil {
			return nil, fmt.Errorf("vector %d: %w", vi, err)
		}
		for j := 0; j < nu; j++ {
			out, err := ep.ProbeRecover(c, sys, j)
			recovered := err == nil && bytes.Equal(out, vals[j])
			if vi == 0 {
				res.Recovered[j] = recovered
			}
			if !recovered {
				res.AllRecovered = false
			}
		}
		ds, err := serverDigests(sys, sysLive[:prefix])
		if err != nil {
			return nil, err
		}
		key := ""
		for _, d := range ds {
			key += d + "\x00"
		}
		if _, dup := digests[key]; !dup {
			digests[key] = vi
		}
		res.VectorsTried++
	}
	res.VectorsDistinct = len(digests)
	if res.VectorsDistinct == res.VectorsTried {
		res.WitnessedBitsLowerBound = math.Log2(float64(res.VectorsTried))
	}
	return res, nil
}
