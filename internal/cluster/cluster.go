// Package cluster defines the common shape of a deployed register emulation:
// a simulated system plus the roles of its nodes. Algorithm packages (abd,
// cas, coded) produce Clusters; the workload driver and the adversary
// machinery consume them uniformly.
package cluster

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/quorum"
)

// Conventional node-id ranges. Servers, writers and readers share the ioa
// namespace; these offsets keep them disjoint and recognizable in traces.
const (
	ServerBase = 1
	WriterBase = 101
	ReaderBase = 201
)

// Cluster is a deployed register emulation.
type Cluster struct {
	// Name identifies the algorithm (e.g. "abd-mwmr", "cas").
	Name string
	// Sys is the simulated system containing all nodes.
	Sys *ioa.System
	// Servers, Writers, Readers list node ids by role, ascending.
	Servers []ioa.NodeID
	Writers []ioa.NodeID
	Readers []ioa.NodeID
	// F is the number of crash failures the deployment tolerates.
	F int
	// Profile classifies the write protocol per Section 6.1.
	Profile quorum.WriteProfile
}

// Builder constructs a fresh, deterministic deployment. The adversary
// machinery rebuilds clusters repeatedly to construct execution families
// (one execution per value pair).
type Builder func() (*Cluster, error)

// ServerIDs returns the conventional server ids 1..n.
func ServerIDs(n int) []ioa.NodeID {
	out := make([]ioa.NodeID, n)
	for i := range out {
		out[i] = ioa.NodeID(ServerBase + i)
	}
	return out
}

// WriterIDs returns the conventional writer ids.
func WriterIDs(n int) []ioa.NodeID {
	out := make([]ioa.NodeID, n)
	for i := range out {
		out[i] = ioa.NodeID(WriterBase + i)
	}
	return out
}

// ReaderIDs returns the conventional reader ids.
func ReaderIDs(n int) []ioa.NodeID {
	return ReaderIDsAfter(0, n)
}

// ReaderIDsAfter returns n reader ids placed after a deployment with the
// given writer count. The fixed WriterBase..ReaderBase gap fits 100 writers;
// a larger deployment shifts the reader range up past the writers instead of
// colliding with them ("duplicate node id"). Deployments that fit the fixed
// ranges keep their historical ids, so simulator fingerprints are unchanged.
func ReaderIDsAfter(writers, n int) []ioa.NodeID {
	base := ReaderBase
	if WriterBase+writers > base {
		base = WriterBase + writers
	}
	out := make([]ioa.NodeID, n)
	for i := range out {
		out[i] = ioa.NodeID(base + i)
	}
	return out
}

// ValidateRoleCounts checks a deployment's requested client counts; every
// algorithm deploy (abd, cas, coded) applies the same rule, so it lives
// here. The algorithm name only decorates the error.
func ValidateRoleCounts(algorithm string, writers, readers int) error {
	if writers < 1 || readers < 0 {
		return fmt.Errorf("%s: need at least one writer and no negative reader count (writers=%d readers=%d)",
			algorithm, writers, readers)
	}
	return nil
}

// Automaton returns the node automaton registered under id. Execution
// backends other than the simulator (see internal/live) pull the automata
// out of the deployment through this: the System is only the registry, and
// the backend drives each automaton itself.
func (c *Cluster) Automaton(id ioa.NodeID) (ioa.Node, error) {
	return c.Sys.Node(id)
}

// RecoverableAutomaton returns the automaton registered under id if it
// offers the crash-recovery Snapshot/Restore surface, or an error naming the
// node otherwise. Wall-clock backends call it for every node a fault plan
// schedules a recovery for, so the missing surface fails at setup time.
func (c *Cluster) RecoverableAutomaton(id ioa.NodeID) (ioa.Recoverable, error) {
	n, err := c.Sys.Node(id)
	if err != nil {
		return nil, err
	}
	r, ok := n.(ioa.Recoverable)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d (%T) has no Snapshot/Restore surface", id, n)
	}
	return r, nil
}

// ClientAutomaton returns the client automaton registered under id.
func (c *Cluster) ClientAutomaton(id ioa.NodeID) (ioa.Client, error) {
	n, err := c.Sys.Node(id)
	if err != nil {
		return nil, err
	}
	cl, ok := n.(ioa.Client)
	if !ok {
		return nil, fmt.Errorf("cluster: node %d is not a client", id)
	}
	return cl, nil
}

// Validate performs basic shape checks.
func (c *Cluster) Validate() error {
	if c.Sys == nil {
		return fmt.Errorf("cluster: nil system")
	}
	if len(c.Servers) == 0 {
		return fmt.Errorf("cluster: no servers")
	}
	if len(c.Writers) == 0 {
		return fmt.Errorf("cluster: no writers")
	}
	if c.F < 0 || c.F >= len(c.Servers) {
		return fmt.Errorf("cluster: f=%d out of range for %d servers", c.F, len(c.Servers))
	}
	return nil
}

// WithSystem returns a shallow copy of the cluster bound to a different
// system instance (e.g. one restored from a snapshot).
func (c *Cluster) WithSystem(sys *ioa.System) *Cluster {
	cp := *c
	cp.Sys = sys
	return &cp
}
