package cluster

import (
	"testing"

	"repro/internal/ioa"
)

func TestIDLayout(t *testing.T) {
	s := ServerIDs(3)
	w := WriterIDs(2)
	r := ReaderIDs(2)
	if s[0] != ServerBase || s[2] != ServerBase+2 {
		t.Errorf("server ids %v", s)
	}
	if w[0] != WriterBase || r[0] != ReaderBase {
		t.Errorf("writer/reader bases %v %v", w, r)
	}
	// Ranges must not overlap for realistic sizes.
	if ServerBase+99 >= WriterBase || WriterBase+99 >= ReaderBase {
		t.Error("id ranges overlap")
	}
}

func TestValidate(t *testing.T) {
	good := &Cluster{
		Sys:     ioa.NewSystem(),
		Servers: ServerIDs(3),
		Writers: WriterIDs(1),
		F:       1,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	cases := []*Cluster{
		{Servers: ServerIDs(3), Writers: WriterIDs(1), F: 1},                        // nil sys
		{Sys: ioa.NewSystem(), Writers: WriterIDs(1), F: 0},                         // no servers
		{Sys: ioa.NewSystem(), Servers: ServerIDs(3), F: 1},                         // no writers
		{Sys: ioa.NewSystem(), Servers: ServerIDs(3), Writers: WriterIDs(1), F: 3},  // f >= N
		{Sys: ioa.NewSystem(), Servers: ServerIDs(3), Writers: WriterIDs(1), F: -1}, // f < 0
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestWithSystem(t *testing.T) {
	orig := &Cluster{
		Sys:     ioa.NewSystem(),
		Servers: ServerIDs(3),
		Writers: WriterIDs(1),
		F:       1,
		Name:    "x",
	}
	other := ioa.NewSystem()
	cp := orig.WithSystem(other)
	if cp.Sys != other {
		t.Error("WithSystem must bind the new system")
	}
	if orig.Sys == other {
		t.Error("original must be untouched")
	}
	if cp.Name != "x" || len(cp.Servers) != 3 {
		t.Error("metadata must carry over")
	}
}

func TestReaderIDsAfterAvoidsWriterCollisions(t *testing.T) {
	// Deployments that fit the fixed ranges keep their historical ids, so
	// simulator fingerprints are unchanged.
	small := ReaderIDsAfter(4, 3)
	if small[0] != ReaderBase || small[2] != ReaderBase+2 {
		t.Fatalf("small deployment moved the reader base: %v", small)
	}
	// 1000 writers used to collide with the fixed reader range ("duplicate
	// node id 201"); the shifted range must start past the last writer.
	writers := WriterIDs(1000)
	readers := ReaderIDsAfter(1000, 1000)
	if readers[0] != writers[len(writers)-1]+1 {
		t.Fatalf("reader base %d does not follow last writer %d", readers[0], writers[len(writers)-1])
	}
	seen := make(map[ioa.NodeID]bool)
	for _, id := range append(append([]ioa.NodeID{}, writers...), readers...) {
		if seen[id] {
			t.Fatalf("duplicate node id %d", id)
		}
		seen[id] = true
	}
}
