package cluster

import (
	"testing"

	"repro/internal/ioa"
)

func TestIDLayout(t *testing.T) {
	s := ServerIDs(3)
	w := WriterIDs(2)
	r := ReaderIDs(2)
	if s[0] != ServerBase || s[2] != ServerBase+2 {
		t.Errorf("server ids %v", s)
	}
	if w[0] != WriterBase || r[0] != ReaderBase {
		t.Errorf("writer/reader bases %v %v", w, r)
	}
	// Ranges must not overlap for realistic sizes.
	if ServerBase+99 >= WriterBase || WriterBase+99 >= ReaderBase {
		t.Error("id ranges overlap")
	}
}

func TestValidate(t *testing.T) {
	good := &Cluster{
		Sys:     ioa.NewSystem(),
		Servers: ServerIDs(3),
		Writers: WriterIDs(1),
		F:       1,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	cases := []*Cluster{
		{Servers: ServerIDs(3), Writers: WriterIDs(1), F: 1},                        // nil sys
		{Sys: ioa.NewSystem(), Writers: WriterIDs(1), F: 0},                         // no servers
		{Sys: ioa.NewSystem(), Servers: ServerIDs(3), F: 1},                         // no writers
		{Sys: ioa.NewSystem(), Servers: ServerIDs(3), Writers: WriterIDs(1), F: 3},  // f >= N
		{Sys: ioa.NewSystem(), Servers: ServerIDs(3), Writers: WriterIDs(1), F: -1}, // f < 0
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestWithSystem(t *testing.T) {
	orig := &Cluster{
		Sys:     ioa.NewSystem(),
		Servers: ServerIDs(3),
		Writers: WriterIDs(1),
		F:       1,
		Name:    "x",
	}
	other := ioa.NewSystem()
	cp := orig.WithSystem(other)
	if cp.Sys != other {
		t.Error("WithSystem must bind the new system")
	}
	if orig.Sys == other {
		t.Error("original must be untouched")
	}
	if cp.Name != "x" || len(cp.Servers) != 3 {
		t.Error("metadata must carry over")
	}
}
