// Package core implements the paper's primary contribution: the
// information-theoretic storage-cost lower bounds of
//
//	Cadambe, Wang, Lynch, "Information-Theoretic Lower Bounds on the
//	Storage Cost of Shared Memory Emulation" (PODC 2016).
//
// Four bounds are provided, each in two forms:
//
//   - The EXACT finite-|V| form, as stated in the theorems, parameterized by
//     log2|V| (so |V| may be astronomically large without overflow).
//   - The NORMALIZED asymptotic form (total storage / log2|V| as |V| -> inf)
//     that Figure 1 plots.
//
// The bounds:
//
//	Theorem B.1 / Corollary B.2 ("Singleton"):
//	    TotalStorage >= N·log2|V| / (N-f).
//	Theorem 4.1 / Corollary 4.2 (no server gossip):
//	    TotalStorage >= N·(log2|V| + log2(|V|-1) - log2(N-f)) / (N-f+1).
//	Theorem 5.1 / Corollary 5.2 (universal, gossip allowed):
//	    TotalStorage >= N·(log2|V| + log2(|V|-1) - 2·log2(N-f)) / (N-f+2).
//	Theorem 6.5 / Corollary 6.6 (single value-dependent write phase):
//	    with ν* = min(ν, f+1),
//	    Σ_{n in subset} log2|S_n| >= log2 C(|V|-1, ν*)
//	                                 - ν*·log2(N-f+ν*-1) - log2(ν*!),
//	    TotalStorage >= ν*·N/(N-f+ν*-1) · log2|V| - o(log2|V|).
//
// Upper bounds for comparison (Figure 1): replication/ABD at f+1 and
// erasure-coded algorithms at ν·N/(N-f), both normalized.
package core

import (
	"fmt"
	"math"
)

// Params identifies a system configuration: N servers of which f may crash.
type Params struct {
	N int // number of servers
	F int // tolerated crash failures
}

// Validate checks 0 <= f < N.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("core: need at least one server, got N=%d", p.N)
	}
	if p.F < 0 || p.F >= p.N {
		return fmt.Errorf("core: need 0 <= f < N, got N=%d f=%d", p.N, p.F)
	}
	return nil
}

// --- helpers on log2-scale quantities ---

// Log2Pow2Minus1 returns log2(2^b - 1) for b > 0 without overflow: for large
// b it is b up to an error below 2^-b/ln2.
func Log2Pow2Minus1(b float64) float64 {
	if b <= 0 {
		return math.Inf(-1)
	}
	if b > 45 {
		// log2(2^b - 1) = b + log2(1 - 2^-b); the correction term is below
		// 1e-13 bits, far under the resolution of any storage measurement.
		return b
	}
	return math.Log2(math.Exp2(b) - 1)
}

// Log2Factorial returns log2(m!).
func Log2Factorial(m int) float64 {
	if m < 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(m) + 1)
	return lg / math.Ln2
}

// Log2BinomPow2 returns log2 C(2^b - 1, m): the binomial coefficient of the
// Theorem 6.5 counting argument, with the population 2^b - 1 given on the
// log2 scale. It uses the termwise expansion
// log2 Π_{i=0..m-1}(A-i) - log2 m! with A = 2^b - 1, which is numerically
// stable (no lgamma cancellation) and collapses to m·b - log2 m! when b is
// large.
func Log2BinomPow2(b float64, m int) float64 {
	if m < 0 {
		return math.Inf(-1)
	}
	if m == 0 {
		return 0
	}
	if b <= 0 {
		return math.Inf(-1)
	}
	if b >= 500 {
		// A - i is indistinguishable from 2^b at float64 precision.
		return float64(m)*b - Log2Factorial(m)
	}
	a := math.Exp2(b) - 1
	if float64(m) > a {
		return math.Inf(-1)
	}
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += math.Log2(a - float64(i))
	}
	return sum - Log2Factorial(m)
}

// --- Theorem B.1 (Appendix B): the Singleton-style bound ---

// SingletonSubsetBits returns the Theorem B.1 bound on the summed storage of
// any N-f servers: log2|V| bits.
func SingletonSubsetBits(log2V float64) float64 { return log2V }

// SingletonTotalBits returns the Corollary B.2 bound on TotalStorage:
// N·log2|V|/(N-f) bits.
func SingletonTotalBits(p Params, log2V float64) float64 {
	return float64(p.N) * log2V / float64(p.N-p.F)
}

// SingletonMaxBits returns the Corollary B.2 bound on MaxStorage:
// log2|V|/(N-f) bits.
func SingletonMaxBits(p Params, log2V float64) float64 {
	return log2V / float64(p.N-p.F)
}

// --- Theorem 4.1: algorithms without server gossip ---

// theorem41RHS is the right-hand side of the Theorem 4.1 subset constraint:
// log2|V| + log2(|V|-1) - log2(N-f).
func theorem41RHS(p Params, log2V float64) float64 {
	return log2V + Log2Pow2Minus1(log2V) - math.Log2(float64(p.N-p.F))
}

// Theorem41SubsetBits returns the Theorem 4.1 constraint: for every set of
// N-f servers, (sum of their storage) + (their max storage) must be at least
// the returned number of bits.
func Theorem41SubsetBits(p Params, log2V float64) float64 {
	return theorem41RHS(p, log2V)
}

// Theorem41TotalBits returns the Corollary 4.2 TotalStorage bound:
// N·(log2|V| + log2(|V|-1) - log2(N-f)) / (N-f+1) bits.
func Theorem41TotalBits(p Params, log2V float64) float64 {
	return float64(p.N) * theorem41RHS(p, log2V) / float64(p.N-p.F+1)
}

// Theorem41MaxBits returns the Corollary 4.2 MaxStorage bound.
func Theorem41MaxBits(p Params, log2V float64) float64 {
	return theorem41RHS(p, log2V) / float64(p.N-p.F+1)
}

// --- Theorem 5.1: universal bound (gossip allowed) ---

// theorem51RHS is log2|V| + log2(|V|-1) - 2·log2(N-f).
func theorem51RHS(p Params, log2V float64) float64 {
	return log2V + Log2Pow2Minus1(log2V) - 2*math.Log2(float64(p.N-p.F))
}

// Theorem51SubsetBits returns the Theorem 5.1 constraint: for every set of
// N-f servers, (sum of their storage) + 2·(their max storage) must be at
// least the returned number of bits.
func Theorem51SubsetBits(p Params, log2V float64) float64 {
	return theorem51RHS(p, log2V)
}

// Theorem51TotalBits returns the Corollary 5.2 TotalStorage bound:
// N·(log2|V| + log2(|V|-1) - 2·log2(N-f)) / (N-f+2) bits.
func Theorem51TotalBits(p Params, log2V float64) float64 {
	return float64(p.N) * theorem51RHS(p, log2V) / float64(p.N-p.F+2)
}

// Theorem51MaxBits returns the Corollary 5.2 MaxStorage bound.
func Theorem51MaxBits(p Params, log2V float64) float64 {
	return theorem51RHS(p, log2V) / float64(p.N-p.F+2)
}

// --- Theorem 6.5: single value-dependent write phase ---

// NuStar returns ν* = min(ν, f+1): the effective concurrency beyond which
// the Theorem 6.5 bound saturates.
func NuStar(p Params, nu int) int {
	if nu < p.F+1 {
		return nu
	}
	return p.F + 1
}

// Theorem65SubsetSize returns the size of the server subset the theorem
// constrains: min(N-f+ν-1, N).
func Theorem65SubsetSize(p Params, nu int) int {
	m := p.N - p.F + nu - 1
	if m > p.N {
		return p.N
	}
	return m
}

// Theorem65SubsetBits returns the Theorem 6.5 bound on the summed storage of
// any Theorem65SubsetSize(p, ν) servers:
// log2 C(|V|-1, ν*) - ν*·log2(N-f+ν*-1) - log2(ν*!) bits.
func Theorem65SubsetBits(p Params, nu int, log2V float64) float64 {
	ns := NuStar(p, nu)
	if ns < 1 {
		return 0
	}
	b := Log2BinomPow2(log2V, ns) -
		float64(ns)*math.Log2(float64(p.N-p.F+ns-1)) -
		Log2Factorial(ns)
	if b < 0 {
		return 0
	}
	return b
}

// Theorem65TotalBits returns the Corollary 6.6 TotalStorage bound, derived
// from the subset bound by the same extension argument as Corollary 4.2:
// if the m = min(N-f+ν-1, N) least-loaded servers sum to at least B, each of
// the other N-m servers holds at least B/m, so the total is at least N·B/m.
// As |V| -> inf this approaches ν*·N/(N-f+ν*-1)·log2|V|.
func Theorem65TotalBits(p Params, nu int, log2V float64) float64 {
	m := Theorem65SubsetSize(p, nu)
	if m < 1 {
		return 0
	}
	return float64(p.N) * Theorem65SubsetBits(p, nu, log2V) / float64(m)
}

// Theorem65MaxBits returns the Corollary 6.6 MaxStorage bound.
func Theorem65MaxBits(p Params, nu int, log2V float64) float64 {
	m := Theorem65SubsetSize(p, nu)
	if m < 1 {
		return 0
	}
	return Theorem65SubsetBits(p, nu, log2V) / float64(m)
}

// --- normalized (|V| -> infinity) forms, as plotted in Figure 1 ---

// NormalizedSingleton returns N/(N-f).
func NormalizedSingleton(p Params) float64 {
	return float64(p.N) / float64(p.N-p.F)
}

// NormalizedTheorem41 returns 2N/(N-f+1).
func NormalizedTheorem41(p Params) float64 {
	return 2 * float64(p.N) / float64(p.N-p.F+1)
}

// NormalizedTheorem51 returns 2N/(N-f+2).
func NormalizedTheorem51(p Params) float64 {
	return 2 * float64(p.N) / float64(p.N-p.F+2)
}

// NormalizedTheorem65 returns ν*·N/(N-f+ν*-1) for ν >= 1, and 0 for ν = 0.
func NormalizedTheorem65(p Params, nu int) float64 {
	ns := NuStar(p, nu)
	if ns < 1 {
		return 0
	}
	return float64(ns) * float64(p.N) / float64(p.N-p.F+ns-1)
}

// NormalizedABD returns the replication upper bound the paper plots for
// ABD-style algorithms: f+1 (a replication algorithm needs f+1 full copies;
// see [3, 13]). Note that textbook ABD on all N servers stores N copies; use
// NormalizedFullReplication for that accounting.
func NormalizedABD(p Params) float64 { return float64(p.F + 1) }

// NormalizedFullReplication returns N: one full copy on every server, the
// storage of the ABD implementation in this repository.
func NormalizedFullReplication(p Params) float64 { return float64(p.N) }

// NormalizedErasureUpper returns the erasure-coded upper bound ν·N/(N-f)
// reached by the algorithms of [2,4,5,12] with ν active writes (ν >= 1).
func NormalizedErasureUpper(p Params, nu int) float64 {
	if nu < 1 {
		return 0
	}
	return float64(nu) * float64(p.N) / float64(p.N-p.F)
}

// ReplicationCrossoverNu returns the smallest ν at which the erasure-coded
// upper bound ν·N/(N-f) meets or exceeds the replication bound f+1 — the
// concurrency beyond which replication is the cheaper strategy (Section
// 2.3's observation).
func ReplicationCrossoverNu(p Params) int {
	// nu >= (f+1)(N-f)/N
	return int(math.Ceil(float64(p.F+1) * float64(p.N-p.F) / float64(p.N)))
}
