package core

import (
	"fmt"
	"strings"
)

// Figure1Row is one x-position of Figure 1: the normalized total-storage
// bounds at a given number of active writes ν.
type Figure1Row struct {
	Nu int
	// Lower bounds.
	TheoremB1 float64 // N/(N-f)
	Theorem51 float64 // 2N/(N-f+2)
	Theorem65 float64 // ν*·N/(N-f+ν*-1)
	// Upper bounds.
	ABD     float64 // f+1
	Erasure float64 // ν·N/(N-f)
}

// Figure1 regenerates the data of the paper's Figure 1 for the given
// parameters: normalized total-storage cost (cost / log2|V| as |V| -> inf)
// against the number of active writes ν = 0..maxNu. The paper plots N=21,
// f=10, maxNu=16.
func Figure1(p Params, maxNu int) ([]Figure1Row, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxNu < 0 {
		return nil, fmt.Errorf("core: negative maxNu %d", maxNu)
	}
	rows := make([]Figure1Row, 0, maxNu+1)
	for nu := 0; nu <= maxNu; nu++ {
		rows = append(rows, Figure1Row{
			Nu:        nu,
			TheoremB1: NormalizedSingleton(p),
			Theorem51: NormalizedTheorem51(p),
			Theorem65: NormalizedTheorem65(p, nu),
			ABD:       NormalizedABD(p),
			Erasure:   NormalizedErasureUpper(p, nu),
		})
	}
	return rows, nil
}

// Figure1Table formats Figure 1 rows as an aligned text table (CSV-ish, one
// row per ν), matching the series of the paper's plot.
func Figure1Table(p Params, rows []Figure1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 1: normalized total-storage cost, N=%d, f=%d (|V| -> inf)\n", p.N, p.F)
	fmt.Fprintf(&b, "%4s %12s %12s %12s %10s %14s\n",
		"nu", "Thm_B.1", "Thm_5.1", "Thm_6.5", "ABD", "erasure_upper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %12.4f %12.4f %12.4f %10.4f %14.4f\n",
			r.Nu, r.TheoremB1, r.Theorem51, r.Theorem65, r.ABD, r.Erasure)
	}
	return b.String()
}

// Section7Conclusion describes which statements of the paper's concluding
// Section 7 apply to an algorithm achieving normalized total-storage cost g
// at concurrency ν.
type Section7Conclusion struct {
	// Feasible is false when g is below the universal Theorem 5.1 bound —
	// no such algorithm can exist.
	Feasible bool
	// Statements lists the structural consequences the paper derives.
	Statements []string
}

// Section7Summary evaluates the "state of the art" summary of Section 7 for
// a hypothetical algorithm with normalized total cost g(ν, N, f).
func Section7Summary(p Params, nu int, g float64) Section7Conclusion {
	out := Section7Conclusion{Feasible: true}
	if g < NormalizedTheorem51(p) {
		out.Feasible = false
		out.Statements = append(out.Statements, fmt.Sprintf(
			"infeasible: g=%.3f < 2N/(N-f+2)=%.3f (Theorem 5.1 universal bound)",
			g, NormalizedTheorem51(p)))
		return out
	}
	t65 := NormalizedTheorem65(p, nu)
	if nu >= 1 && g < t65 {
		out.Statements = append(out.Statements,
			"g < ν·N/(N-f+ν-1): by Theorem 6.5 the algorithm must (a) send its value in multiple phases, or (b) not separate value and metadata in the writer state, or (c) take non-black-box write actions")
	}
	if g < float64(p.F+1) {
		out.Statements = append(out.Statements,
			"g < f+1 for all ν: by [23] (Spiegelman et al.), in some executions servers must store symbols jointly encoding values across versions")
	}
	if len(out.Statements) == 0 {
		out.Statements = append(out.Statements,
			"g is consistent with all known bounds; the gap between 2N/(N-f+2) and the upper bounds remains open (Section 7)")
	}
	return out
}
