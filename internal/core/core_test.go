package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// paperParams is the configuration of the paper's Figure 1.
var paperParams = Params{N: 21, F: 10}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		p      Params
		wantOK bool
	}{
		{Params{21, 10}, true},
		{Params{1, 0}, true},
		{Params{5, 5}, false},
		{Params{0, 0}, false},
		{Params{5, -1}, false},
	}
	for _, tt := range tests {
		if err := tt.p.Validate(); (err == nil) != tt.wantOK {
			t.Errorf("%+v: err=%v wantOK=%v", tt.p, err, tt.wantOK)
		}
	}
}

// TestFigure1PaperConstants pins the normalized values of the paper's
// Figure 1 (N=21, f=10).
func TestFigure1PaperConstants(t *testing.T) {
	p := paperParams
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"Theorem B.1 = N/(N-f) = 21/11", NormalizedSingleton(p), 21.0 / 11.0},
		{"Theorem 4.1 = 2N/(N-f+1) = 42/12", NormalizedTheorem41(p), 3.5},
		{"Theorem 5.1 = 2N/(N-f+2) = 42/13", NormalizedTheorem51(p), 42.0 / 13.0},
		{"Theorem 6.5 nu=1", NormalizedTheorem65(p, 1), 21.0 / 11.0},
		{"Theorem 6.5 nu=2", NormalizedTheorem65(p, 2), 42.0 / 12.0},
		{"Theorem 6.5 nu=11 hits f+1", NormalizedTheorem65(p, 11), 11.0},
		{"Theorem 6.5 saturates beyond f+1", NormalizedTheorem65(p, 16), 11.0},
		{"ABD = f+1", NormalizedABD(p), 11.0},
		{"erasure nu=1", NormalizedErasureUpper(p, 1), 21.0 / 11.0},
		{"erasure nu=6", NormalizedErasureUpper(p, 6), 6 * 21.0 / 11.0},
		{"full replication", NormalizedFullReplication(p), 21.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEq(tt.got, tt.want, 1e-12) {
				t.Errorf("got %.6f, want %.6f", tt.got, tt.want)
			}
		})
	}
}

func TestReplicationCrossover(t *testing.T) {
	// (f+1)(N-f)/N = 11*11/21 = 5.76... -> 6.
	if got := ReplicationCrossoverNu(paperParams); got != 6 {
		t.Errorf("crossover = %d, want 6", got)
	}
	// Sanity: at the crossover, erasure >= ABD; just before, erasure < ABD.
	nu := ReplicationCrossoverNu(paperParams)
	if NormalizedErasureUpper(paperParams, nu) < NormalizedABD(paperParams) {
		t.Error("erasure bound at crossover should be >= ABD")
	}
	if NormalizedErasureUpper(paperParams, nu-1) >= NormalizedABD(paperParams) {
		t.Error("erasure bound before crossover should be < ABD")
	}
}

// TestBoundDominance verifies the ordering the paper relies on:
// B.1 <= 5.1 <= 4.1, and Theorem 6.5 at nu>=2 dominates 4.1.
func TestBoundDominance(t *testing.T) {
	prop := func(nRaw, fRaw uint8) bool {
		n := int(nRaw%30) + 3
		f := int(fRaw) % (n / 2)
		if n-f < 2 {
			return true
		}
		p := Params{N: n, F: f}
		if NormalizedSingleton(p) > NormalizedTheorem51(p)+1e-9 {
			return false
		}
		if NormalizedTheorem51(p) > NormalizedTheorem41(p)+1e-9 {
			return false
		}
		// Theorem 6.5 at nu=2 equals Theorem 4.1's constant 2N/(N-f+1),
		// provided nu* = 2 (i.e. f >= 1).
		if f >= 1 && !almostEq(NormalizedTheorem65(p, 2), NormalizedTheorem41(p), 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTheorem65Monotone verifies monotonicity in nu and saturation at f+1.
func TestTheorem65Monotone(t *testing.T) {
	p := paperParams
	prev := 0.0
	for nu := 0; nu <= 20; nu++ {
		cur := NormalizedTheorem65(p, nu)
		if cur < prev-1e-12 {
			t.Fatalf("Theorem 6.5 bound decreased at nu=%d", nu)
		}
		if cur > float64(p.F+1)+1e-12 {
			t.Fatalf("Theorem 6.5 bound exceeded f+1 at nu=%d", nu)
		}
		prev = cur
	}
}

// TestExactApproachesNormalized: exact bounds divided by log2|V| converge to
// the normalized constants from below as |V| grows.
func TestExactApproachesNormalized(t *testing.T) {
	p := paperParams
	for _, log2V := range []float64{64, 1024, 1 << 20} {
		checks := []struct {
			name  string
			exact float64
			norm  float64
		}{
			{"B.1", SingletonTotalBits(p, log2V), NormalizedSingleton(p)},
			{"4.1", Theorem41TotalBits(p, log2V), NormalizedTheorem41(p)},
			{"5.1", Theorem51TotalBits(p, log2V), NormalizedTheorem51(p)},
			{"6.5/nu=3", Theorem65TotalBits(p, 3, log2V), NormalizedTheorem65(p, 3)},
			{"6.5/nu=16", Theorem65TotalBits(p, 16, log2V), NormalizedTheorem65(p, 16)},
		}
		for _, c := range checks {
			ratio := c.exact / log2V
			if ratio > c.norm+1e-9 {
				t.Errorf("log2V=%g %s: exact/log2V = %f exceeds normalized %f", log2V, c.name, ratio, c.norm)
			}
			// Within 5% at log2V >= 1024 (the o(log|V|) term vanishes).
			if log2V >= 1024 && ratio < c.norm*0.95 {
				t.Errorf("log2V=%g %s: exact/log2V = %f too far below normalized %f", log2V, c.name, ratio, c.norm)
			}
		}
	}
}

func TestLog2Helpers(t *testing.T) {
	if got := Log2Pow2Minus1(3); !almostEq(got, math.Log2(7), 1e-12) {
		t.Errorf("Log2Pow2Minus1(3) = %f, want log2 7", got)
	}
	if got := Log2Pow2Minus1(100); !almostEq(got, 100, 1e-9) {
		t.Errorf("Log2Pow2Minus1(100) = %f, want ~100", got)
	}
	if !math.IsInf(Log2Pow2Minus1(0), -1) {
		t.Error("Log2Pow2Minus1(0) should be -inf (empty set)")
	}
	if got := Log2Factorial(5); !almostEq(got, math.Log2(120), 1e-9) {
		t.Errorf("Log2Factorial(5) = %f, want log2 120", got)
	}
	if got := Log2Factorial(0); got != 0 {
		t.Errorf("Log2Factorial(0) = %f, want 0", got)
	}
	// C(7, 3) = 35 with b=3 (2^3-1 = 7).
	if got := Log2BinomPow2(3, 3); !almostEq(got, math.Log2(35), 1e-9) {
		t.Errorf("Log2BinomPow2(3,3) = %f, want log2 35", got)
	}
	if got := Log2BinomPow2(3, 0); got != 0 {
		t.Errorf("Log2BinomPow2(3,0) = %f, want 0", got)
	}
	// m > population: impossible.
	if !math.IsInf(Log2BinomPow2(1, 5), -1) {
		t.Error("Log2BinomPow2(1,5) should be -inf")
	}
	// Continuity across the b=500 branch switch.
	lo := Log2BinomPow2(499.999, 4)
	hi := Log2BinomPow2(500.001, 4)
	if math.Abs(hi-lo) > 0.01 {
		t.Errorf("Log2BinomPow2 discontinuous at branch: %f vs %f", lo, hi)
	}
}

func TestTheorem65SubsetForms(t *testing.T) {
	p := paperParams
	// Subset size: min(N-f+nu-1, N).
	if got := Theorem65SubsetSize(p, 3); got != 13 {
		t.Errorf("subset size nu=3: %d, want 13", got)
	}
	if got := Theorem65SubsetSize(p, 99); got != p.N {
		t.Errorf("subset size saturates at N: got %d", got)
	}
	// NuStar.
	if got := NuStar(p, 3); got != 3 {
		t.Errorf("NuStar(3) = %d", got)
	}
	if got := NuStar(p, 30); got != p.F+1 {
		t.Errorf("NuStar(30) = %d, want f+1", got)
	}
	// Subset bound is nonnegative and grows with nu.
	prev := -1.0
	for nu := 1; nu <= 12; nu++ {
		b := Theorem65SubsetBits(p, nu, 4096)
		if b < 0 {
			t.Fatalf("negative subset bound at nu=%d", nu)
		}
		if b < prev {
			t.Fatalf("subset bound decreased at nu=%d", nu)
		}
		prev = b
	}
	// Tiny |V| where the correction terms dominate: clamps to 0.
	if got := Theorem65SubsetBits(p, 5, 2); got != 0 {
		t.Errorf("tiny-|V| bound should clamp to 0, got %f", got)
	}
}

func TestFigure1Generation(t *testing.T) {
	rows, err := Figure1(paperParams, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("got %d rows, want 17", len(rows))
	}
	// Pin a few cells against the paper's plot.
	if !almostEq(rows[0].TheoremB1, 21.0/11.0, 1e-12) {
		t.Error("row 0 B.1 mismatch")
	}
	if !almostEq(rows[11].Theorem65, 11.0, 1e-12) {
		t.Error("Theorem 6.5 must reach f+1 at nu=11")
	}
	if !almostEq(rows[16].Erasure, 16*21.0/11.0, 1e-12) {
		t.Error("erasure upper bound at nu=16 mismatch")
	}
	table := Figure1Table(paperParams, rows)
	if !strings.Contains(table, "Thm_6.5") || !strings.Contains(table, "N=21") {
		t.Error("table header malformed")
	}
	if got := len(strings.Split(strings.TrimSpace(table), "\n")); got != 19 {
		t.Errorf("table has %d lines, want 19 (2 header + 17 rows)", got)
	}
	if _, err := Figure1(Params{N: 0, F: 0}, 4); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := Figure1(paperParams, -1); err == nil {
		t.Error("negative maxNu should fail")
	}
}

func TestSection7Summary(t *testing.T) {
	p := paperParams
	// Below the universal bound: infeasible.
	c := Section7Summary(p, 4, 1.0)
	if c.Feasible {
		t.Error("g=1.0 should be infeasible (below Theorem 5.1)")
	}
	// Between 5.1 and 6.5 at nu=8: must have structural consequences.
	c = Section7Summary(p, 8, 4.0)
	if !c.Feasible {
		t.Error("g=4.0 should be feasible")
	}
	found65 := false
	found23 := false
	for _, s := range c.Statements {
		if strings.Contains(s, "Theorem 6.5") {
			found65 = true
		}
		if strings.Contains(s, "[23]") {
			found23 = true
		}
	}
	if !found65 || !found23 {
		t.Errorf("expected Theorem 6.5 and [23] consequences, got %v", c.Statements)
	}
	// Above everything: open-gap statement.
	c = Section7Summary(p, 2, 50.0)
	if !c.Feasible || len(c.Statements) != 1 || !strings.Contains(c.Statements[0], "open") {
		t.Errorf("high g should be unconstrained, got %v", c.Statements)
	}
}

// TestBoundsBelowUpperBounds: every lower bound must lie at or below the
// achievable upper bounds it is compared against in Figure 1.
func TestBoundsBelowUpperBounds(t *testing.T) {
	prop := func(nRaw, fRaw, nuRaw uint8) bool {
		n := int(nRaw%28) + 3
		f := int(fRaw) % ((n + 1) / 2)
		if n-f < 2 {
			return true
		}
		nu := int(nuRaw%16) + 1
		p := Params{N: n, F: f}
		// Theorem 6.5 (applies to single-value-phase algorithms; the
		// erasure algorithms are in that class): bound <= their cost.
		if NormalizedTheorem65(p, nu) > NormalizedErasureUpper(p, nu)+1e-9 {
			return false
		}
		// Universal bounds <= replication cost f+1... only meaningful when
		// f+1 >= 2N/(N-f+2); check against full replication N instead,
		// which every bound must respect.
		if NormalizedTheorem51(p) > NormalizedFullReplication(p)+1e-9 {
			return false
		}
		if NormalizedSingleton(p) > NormalizedFullReplication(p)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
