// Package quorum provides quorum-system arithmetic and the write-protocol
// classification of Section 6.1: phases, value-dependent send actions, and
// the three assumptions under which Theorem 6.5 applies.
package quorum

import "fmt"

// System is a threshold quorum system over n servers: every subset of
// exactly Size servers is a quorum.
type System struct {
	N    int
	Size int
}

// Majority returns the majority quorum system over n servers.
func Majority(n int) System { return System{N: n, Size: n/2 + 1} }

// Threshold returns the quorum system whose quorums are the subsets of the
// given size.
func Threshold(n, size int) (System, error) {
	if size < 1 || size > n {
		return System{}, fmt.Errorf("quorum: size %d out of range [1,%d]", size, n)
	}
	return System{N: n, Size: size}, nil
}

// Intersection returns the guaranteed size of the intersection of a quorum
// of q with a quorum of other (can be negative when they may be disjoint).
func (q System) Intersection(other System) int {
	return q.Size + other.Size - q.N
}

// Intersects reports whether every quorum of q intersects every quorum of
// other.
func (q System) Intersects(other System) bool { return q.Intersection(other) > 0 }

// LiveWith reports whether some quorum survives f crashed servers.
func (q System) LiveWith(f int) bool { return q.Size <= q.N-f }

// PhaseSpec describes one phase of a write protocol in the sense of
// Definition 6.1: send to a set of servers, await a quorum of responses,
// finish.
type PhaseSpec struct {
	// Name identifies the phase (e.g. "query", "pre-write", "finalize").
	Name string
	// Quorum is the response quorum the phase awaits.
	Quorum System
	// ValueDependent reports whether the phase performs any value-dependent
	// send action (Definition 6.4): a message whose content depends on the
	// value being written.
	ValueDependent bool
}

// WriteProfile classifies a write protocol against the assumptions of
// Section 6.1.
type WriteProfile struct {
	// Algorithm names the protocol.
	Algorithm string
	// Phases lists the protocol's phases in order (Assumption 2 requires
	// the protocol to decompose into such phases).
	Phases []PhaseSpec
	// MetadataSeparated reports Assumption 1: the writer's state has the
	// form (v, m, h(v, m)) — value, metadata, and a value-derived component.
	MetadataSeparated bool
	// BlackBox reports Assumption 3(a): all write-client actions treat the
	// value as a black box.
	BlackBox bool
}

// ValueDependentPhases counts phases that send value-dependent messages.
func (p WriteProfile) ValueDependentPhases() int {
	n := 0
	for _, ph := range p.Phases {
		if ph.ValueDependent {
			n++
		}
	}
	return n
}

// Theorem65Applies checks Assumptions 1, 2 and 3 of Section 6.1: metadata
// separation, decomposability into phases, black-box actions, and at most
// one value-dependent phase with no value-dependent phase after it. It
// returns nil when the storage lower bound of Theorem 6.5 applies to the
// algorithm.
func (p WriteProfile) Theorem65Applies() error {
	if !p.MetadataSeparated {
		return fmt.Errorf("quorum: %s violates Assumption 1 (writer state does not separate value and metadata)", p.Algorithm)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("quorum: %s violates Assumption 2 (write protocol not decomposed into phases)", p.Algorithm)
	}
	if !p.BlackBox {
		return fmt.Errorf("quorum: %s violates Assumption 3(a) (non-black-box write actions)", p.Algorithm)
	}
	seenValueDep := false
	for _, ph := range p.Phases {
		if seenValueDep && ph.ValueDependent {
			return fmt.Errorf("quorum: %s violates Assumption 3(b): phase %q sends value-dependent messages after an earlier value-dependent phase", p.Algorithm, ph.Name)
		}
		if ph.ValueDependent {
			seenValueDep = true
		}
	}
	return nil
}

// PhasedWriter is implemented by write clients whose current phase can be
// introspected. The Theorem 6.5 execution construction uses it to pause a
// writer exactly when its value-dependent messages sit undelivered in the
// channels.
type PhasedWriter interface {
	// WritePhase returns the 1-based index of the phase the outstanding
	// write is in (0 when idle) and whether that phase's sends are
	// value-dependent.
	WritePhase() (phase int, valueDependent bool)
}
