package quorum

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMajority(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {21, 11},
	}
	for _, tt := range tests {
		if got := Majority(tt.n).Size; got != tt.want {
			t.Errorf("Majority(%d).Size = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestThreshold(t *testing.T) {
	if _, err := Threshold(5, 3); err != nil {
		t.Errorf("valid threshold rejected: %v", err)
	}
	if _, err := Threshold(5, 0); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Threshold(5, 6); err == nil {
		t.Error("size > n should fail")
	}
}

func TestIntersection(t *testing.T) {
	q := System{N: 5, Size: 3}
	if got := q.Intersection(q); got != 1 {
		t.Errorf("3+3-5 = %d, want 1", got)
	}
	if !q.Intersects(q) {
		t.Error("majorities of 5 must intersect")
	}
	small := System{N: 5, Size: 2}
	if small.Intersects(small) {
		t.Error("two 2-of-5 quorums may be disjoint")
	}
}

// TestMajorityAlwaysIntersects is the classic quorum property.
func TestMajorityAlwaysIntersects(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%40) + 1
		m := Majority(n)
		return m.Intersects(m)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLiveWith(t *testing.T) {
	q := System{N: 5, Size: 3}
	if !q.LiveWith(2) {
		t.Error("3-of-5 should survive 2 crashes")
	}
	if q.LiveWith(3) {
		t.Error("3-of-5 cannot survive 3 crashes")
	}
}

func profile(phases []PhaseSpec, metaSep, blackBox bool) WriteProfile {
	return WriteProfile{Algorithm: "test", Phases: phases, MetadataSeparated: metaSep, BlackBox: blackBox}
}

func TestTheorem65Applies(t *testing.T) {
	q := System{N: 5, Size: 3}
	okPhases := []PhaseSpec{
		{Name: "query", Quorum: q, ValueDependent: false},
		{Name: "put", Quorum: q, ValueDependent: true},
		{Name: "fin", Quorum: q, ValueDependent: false},
	}
	tests := []struct {
		name    string
		p       WriteProfile
		wantOK  bool
		wantSub string
	}{
		{"canonical", profile(okPhases, true, true), true, ""},
		{"no metadata separation", profile(okPhases, false, true), false, "Assumption 1"},
		{"no phases", profile(nil, true, true), false, "Assumption 2"},
		{"non black box", profile(okPhases, true, false), false, "Assumption 3(a)"},
		{"two value phases", profile([]PhaseSpec{
			{Name: "hash", Quorum: q, ValueDependent: true},
			{Name: "code", Quorum: q, ValueDependent: true},
		}, true, true), false, "Assumption 3(b)"},
		{"value phase then metadata ok", profile([]PhaseSpec{
			{Name: "code", Quorum: q, ValueDependent: true},
			{Name: "fin", Quorum: q, ValueDependent: false},
		}, true, true), true, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Theorem65Applies()
			if (err == nil) != tt.wantOK {
				t.Fatalf("err = %v, wantOK %v", err, tt.wantOK)
			}
			if err != nil && !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q should mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestValueDependentPhases(t *testing.T) {
	q := System{N: 3, Size: 2}
	p := profile([]PhaseSpec{
		{Name: "a", Quorum: q, ValueDependent: true},
		{Name: "b", Quorum: q, ValueDependent: false},
		{Name: "c", Quorum: q, ValueDependent: true},
	}, true, true)
	if got := p.ValueDependentPhases(); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
}
