package live_test

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/store"
	"repro/internal/workload"
)

// lossyDelayGrid filters the standard scenario library down to its
// drop/delay points. The wall-clock scheduler runs partitions and crashes on
// the live backend too, but those are timing-dependent by construction and
// exercised by the chaos tests; this differential grid keeps only the rule
// classes whose sim and live runs face the same fault odds, plus a composed
// point stressing rule overlay on both substrates.
func lossyDelayGrid(t *testing.T) []string {
	t.Helper()
	grid := []string{"none"}
	for _, sc := range faults.Library() {
		spec := sc.String()
		parsed, err := faults.Parse(spec)
		if err != nil {
			t.Fatalf("library spec %q does not parse: %v", spec, err)
		}
		plan, err := parsed.Build(5, 1, 1)
		if err != nil || live.PlanSupported(plan) != nil {
			continue
		}
		if len(plan.Outages) > 0 || len(plan.Crashes) > 0 {
			continue
		}
		grid = append(grid, spec)
	}
	if len(grid) < 3 {
		t.Fatalf("library lost its lossy/delay points: %v", grid)
	}
	return append(grid, "lossy=0.02+delay=1:24")
}

// TestCrossBackendDifferential is the backend contract test: the same
// workload.MultiSpec runs on the simulator and on the live runtime at every
// lossy/delay grid point, and each backend's histories must pass the
// algorithm's consistency condition (store.Run errors otherwise). The
// simulator side additionally re-asserts its determinism oracle role — the
// same seed fingerprints byte-identically at two worker counts — while the
// live side is checked for safety, the only guarantee it makes.
func TestCrossBackendDifferential(t *testing.T) {
	for _, alg := range []string{store.AlgABDMW, store.AlgCAS} {
		for _, spec := range lossyDelayGrid(t) {
			alg, spec := alg, spec
			t.Run(fmt.Sprintf("%s/%s", alg, spec), func(t *testing.T) {
				t.Parallel()
				opts := func(backend string, workers int) store.Options {
					return store.Options{
						Shards:     4,
						Algorithms: []string{alg},
						Servers:    5,
						F:          1,
						Workers:    workers,
						Backend:    backend,
						Workload: workload.MultiSpec{
							Seed:         11,
							Keys:         16,
							Ops:          48,
							ReadFraction: 0.4,
							TargetNu:     2,
							ValueBytes:   64,
							Faults:       []string{spec},
						},
					}
				}
				simA, err := store.Run(opts(store.BackendSim, 1))
				if err != nil {
					t.Fatalf("sim backend: %v", err)
				}
				simB, err := store.Run(opts(store.BackendSim, 4))
				if err != nil {
					t.Fatalf("sim backend (4 workers): %v", err)
				}
				if a, b := simA.Fingerprint(), simB.Fingerprint(); a != b {
					t.Errorf("simulator oracle broke: fingerprints differ across worker counts\n%s\n%s", a, b)
				}
				liveRes, err := store.Run(opts(store.BackendLive, 4))
				if err != nil {
					t.Fatalf("live backend: %v", err)
				}
				// Under pure delay (no loss) the live run must not lose
				// liveness; under loss, quiescent shards are legitimate
				// verdicts on either backend.
				if spec == "none" || spec == "delay=1:24" {
					if liveRes.QuiescentShards != 0 {
						t.Errorf("live backend lost liveness under %q: %d quiescent shards", spec, liveRes.QuiescentShards)
					}
				}
			})
		}
	}
}
