package live_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestLivePartitionGateTiming pins the wall-clock outage gate on the live
// backend: under a full partition over [0, healStep) at StepDur=1ms, an
// operation invoked at open cannot complete before the heal boundary (the
// gate is closed) and must complete well before the op timeout once the
// window ends (the gate opens). Frames parked at the gate are accounted as
// delays.
func TestLivePartitionGateTiming(t *testing.T) {
	const (
		stepDur   = time.Millisecond
		healStep  = 400
		tolerance = 25 * time.Millisecond // clock-read skew between test and runtime epoch
	)
	cl, _ := deploy(t, store.AlgCAS, 3, 1, 1, 1)
	plan := &faults.Plan{Outages: []faults.Outage{{Start: 0, End: healStep, Symmetric: true}}}
	t0 := time.Now()
	in, err := live.OpenInteractive(cl, plan, live.Config{StepDur: stepDur, OpTimeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("OpenInteractive: %v", err)
	}
	defer in.Close()

	val := make([]byte, 32)
	if _, pending, err := in.Invoke(context.Background(), cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: val}); err != nil || pending {
		t.Fatalf("write through the partition: pending=%t err=%v", pending, err)
	}
	elapsed := time.Since(t0)
	heal := healStep * stepDur
	if elapsed < heal-tolerance {
		t.Errorf("write completed %v after open, before the partition healed at %v — the gate leaked", elapsed, heal)
	}
	if max := heal + 10*time.Second; elapsed > max {
		t.Errorf("write completed %v after open; the gate did not reopen near the heal boundary %v", elapsed, heal)
	}
	if fs := in.FaultStats(); fs.DelayedMessages == 0 || fs.DelayStepsTotal == 0 {
		t.Errorf("partition held no frames: %+v", fs)
	}
}

// TestLiveRecoveryServesSnapshotState is the durability acceptance test: a
// value is written, EVERY server then crashes (discarding all volatile
// state) and recovers from its last checkpoint, and a subsequent read must
// return the value — which at that point exists nowhere but in the restored
// snapshots. Crash, recovery and checkpoint counts surface in FaultStats.
func TestLiveRecoveryServesSnapshotState(t *testing.T) {
	const stepDur = time.Millisecond
	cl, _ := deploy(t, store.AlgABDMW, 3, 1, 1, 1)
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Node: 1, Step: 500, RecoverStep: 650},
		{Node: 2, Step: 500, RecoverStep: 650},
		{Node: 3, Step: 500, RecoverStep: 650},
	}}
	t0 := time.Now()
	in, err := live.OpenInteractive(cl, plan, live.Config{StepDur: stepDur})
	if err != nil {
		t.Fatalf("OpenInteractive: %v", err)
	}
	defer in.Close()

	val := []byte("durable-through-total-crash-0123")
	ctx := context.Background()
	if _, pending, err := in.Invoke(ctx, cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: val}); err != nil || pending {
		t.Fatalf("write: pending=%t err=%v", pending, err)
	}
	if since := time.Since(t0); since > 450*stepDur {
		t.Skipf("write took %v; host too slow to land it before the scheduled crash", since)
	}
	// Sleep past the recovery step plus margin, then read: the only copies
	// of the value live in the servers' restored checkpoints.
	time.Sleep(time.Until(t0.Add(800 * stepDur)))
	out, pending, err := in.Invoke(ctx, cl.Readers[0], ioa.Invocation{Kind: ioa.OpRead})
	if err != nil || pending {
		t.Fatalf("read after total crash+recovery: pending=%t err=%v", pending, err)
	}
	if string(out) != string(val) {
		t.Fatalf("read %q after recovery, want the checkpointed value %q", out, val)
	}
	fs := in.FaultStats()
	if fs.Crashes != 3 || fs.Recoveries != 3 {
		t.Errorf("fault stats counted %d crashes, %d recoveries; want 3, 3", fs.Crashes, fs.Recoveries)
	}
	if fs.Checkpoints == 0 {
		t.Error("no checkpoints counted for recovering nodes")
	}
}

// TestLiveHistoryAtomicThroughCrashRecover runs a batch workload while one
// server is down from the start and rejoins mid-run from its checkpoint
// (taken before it acked anything, so no acknowledged state is lost and the
// f-tolerance argument holds). The merged history must stay atomic and the
// crash/recovery must be counted.
func TestLiveHistoryAtomicThroughCrashRecover(t *testing.T) {
	cl, cond := deploy(t, store.AlgCAS, 5, 1, 2, 2)
	plan := &faults.Plan{Crashes: []faults.Crash{{Node: 1, Step: 0, RecoverStep: 2}}}
	res, err := live.RunConfig(cl, workload.Spec{
		Writes:     24,
		Reads:      24,
		TargetNu:   2,
		ValueBytes: 64,
		FaultPlan:  plan,
	}, live.Config{StepDur: time.Millisecond})
	if err != nil {
		t.Fatalf("live.RunConfig: %v", err)
	}
	if res.Quiescent {
		t.Errorf("f-bounded crash+recovery lost liveness: %d pending", res.PendingOps)
	}
	if res.Faults.Crashes == 0 {
		t.Errorf("no crashes counted: %+v", res.Faults)
	}
	check(t, store.AlgCAS, cond, res)
}

// TestLiveCrashReapsGoroutines pins the leak contract: crashed nodes' loops
// and timers are fully reaped — after a run whose plan crashes servers
// without recovery, Close returns the process to its goroutine baseline.
func TestLiveCrashReapsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	cl, _ := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Node: 1, Step: 50},
		{Node: 2, Step: 50},
	}}
	in, err := live.OpenInteractive(cl, plan, live.Config{StepDur: time.Millisecond})
	if err != nil {
		t.Fatalf("OpenInteractive: %v", err)
	}
	if _, pending, err := in.Invoke(context.Background(), cl.Writers[0], ioa.Invocation{Kind: ioa.OpWrite, Value: make([]byte, 16)}); err != nil || pending {
		t.Fatalf("write before crash: pending=%t err=%v", pending, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for in.FaultStats().Crashes < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("crashes never fired: %+v", in.FaultStats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after crash+Close: baseline %d, now %d", base, runtime.NumGoroutine())
}

// TestLiveQuorumKillQuiesces crashes a majority without recovery: liveness
// is legitimately lost (quiescent verdict, ops pending), never safety.
func TestLiveQuorumKillQuiesces(t *testing.T) {
	cl, _ := deploy(t, store.AlgABDMW, 3, 1, 1, 1)
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Node: 1, Step: 0},
		{Node: 2, Step: 0},
	}}
	res, err := live.RunConfig(cl, workload.Spec{
		Writes:     2,
		Reads:      1,
		TargetNu:   1,
		ValueBytes: 16,
		FaultPlan:  plan,
	}, live.Config{StepDur: time.Millisecond, OpTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("live.RunConfig: %v", err)
	}
	if !res.Quiescent || res.PendingOps == 0 {
		t.Fatalf("majority crash should be a quiescent verdict: quiescent=%t pending=%d", res.Quiescent, res.PendingOps)
	}
	if err := consistency.CheckAtomic(res.History, nil); err != nil {
		t.Errorf("partial history not atomic: %v", err)
	}
}
