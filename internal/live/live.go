// Package live executes register-emulation clusters on a real concurrent
// runtime: every node automaton runs on its own goroutine with a buffered
// mailbox, messages flow over channels the moment they are sent, and
// wall-clock time replaces the simulator's discrete steps. The node automata
// are exactly the ones `internal/abd`, `internal/cas` and `internal/coded`
// deploy — the cluster is only the registry; this package clones the
// automata out of it and drives them itself, so the same deployment runs
// unchanged on either backend.
//
// The contract with the simulator backend (DESIGN.md section 8):
//
//   - The simulator is the determinism oracle: same seed, same schedule,
//     byte-identical histories and fingerprints. The live runtime makes NO
//     such promise — schedules here are an accident of goroutine timing, and
//     two runs of the same spec produce different histories.
//   - Safety is checked the same way on both: operations are recorded in
//     per-client logs (mutex-free — each log is owned by its node's
//     goroutine, ordered by a shared atomic clock) and merged into an
//     ioa.History for the internal/consistency checkers. A history the live
//     runtime produced must pass the same condition the algorithm guarantees
//     on the simulator.
//   - Faults: drop and delay rules of a faults.Plan are reused verbatim —
//     MessageFate is consulted at send time with a global send sequence
//     number, exactly as the kernel does, with delay steps scaled to wall
//     time by Config.StepDur. Outage windows and scheduled crash/recovery
//     events, positioned in kernel steps, run against the same step clock
//     via a faults.WallClock (DESIGN.md section 12): a partitioned link's
//     messages are held until the window's wall-clock boundary, a crashed
//     node's goroutine stops and its volatile state (mailbox, queues, the
//     automaton itself) is discarded, and a scheduled recovery restarts the
//     node from its last durable checkpoint (ioa.Recoverable). Recovery for
//     a node without the Snapshot/Restore surface is the one remaining
//     unsupported combination, rejected with faults.ErrUnsupported.
//   - Flow control (DESIGN.md section 11): mailboxes are bounded and a
//     sender facing a full mailbox blocks up to Config.SendTimeout before
//     the message is dropped and counted — real backpressure in place of
//     the old unbounded spawn-on-overflow fallback, which grew a goroutine
//     per overflowing message, broke per-link FIFO, and lost messages with
//     no accounting. The paper's channels are unordered, so the stronger
//     FIFO the bounded path preserves is sound; the drop-after-deadline is
//     message loss the asynchronous model already admits, surfaced in
//     FaultStats.TransportDropped.
//   - Liveness is a verdict, not a hang: every operation carries a timeout,
//     and a run whose operations time out under a fault plan reports
//     Quiescent with the timed-out operations pending in the history (their
//     effects may still land — the atomicity checker's standard completion
//     semantics cover exactly this).
package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// Config tunes the live runtime. The zero value selects the defaults.
type Config struct {
	// StepDur converts a fault plan's delay steps into wall-clock time
	// (default 100µs; delay=1:24 thus holds messages up to ~2.4ms).
	StepDur time.Duration
	// OpTimeout bounds each operation's completion (default 5s). A client
	// whose operation times out is retired — its automaton may still be
	// waiting on lost messages — and the operation stays pending in the
	// history unless its response arrives before shutdown.
	OpTimeout time.Duration
	// Mailbox is the per-node buffered channel capacity (default 128).
	Mailbox int
	// SendTimeout bounds how long a sender blocks on a full mailbox before
	// the message is dropped and counted (default 1s). This is the
	// backpressure window: under sustained overload, senders slow to the
	// receiver's drain rate instead of growing unbounded queues.
	SendTimeout time.Duration
	// Pipeline is the number of operations each batch driver keeps in
	// flight per client (default 1: one at a time, the pre-pipelining
	// behavior). The node queues invocations and starts each only when its
	// predecessor responds, so the client automaton still holds one
	// operation at a time and per-client program order is preserved;
	// recorded operation intervals never overlap within a client.
	Pipeline int
	// Checkpoint is the durable-state snapshot interval for nodes the fault
	// plan schedules a recovery for (default 5ms). A recovering node
	// restarts from its last checkpoint; state mutated after it is lost,
	// exactly the crash-recovery model the paper's storage bounds assume.
	Checkpoint time.Duration
	// Sink, when non-nil, switches the runtime to streaming history mode:
	// operations are registered with an ioa.OpFeed at invocation and
	// released into the sink in invocation order as they settle, instead of
	// accumulating in per-client logs merged at shutdown. The feed's own
	// clock stamps every op, and Result.History then carries only the
	// pending tail (the sink has absorbed everything else). Feed an
	// OnlineChecker here to verify the run while it executes.
	Sink ioa.HistorySink
	// SyncOps, when positive, installs periodic quiescence points in the
	// batch drivers: after every SyncOps issued operations (globally, across
	// all drivers), every driver drains its in-flight operations and they
	// meet at a barrier before any issues again. Each sync is a moment with
	// nothing in flight — a clean cut in the recorded history — so an online
	// checker fed through Sink is guaranteed a window-retirement opportunity
	// at least once per sync, bounding its peak memory by construction
	// rather than by the scheduler happening to align the clients' idle
	// gaps. Zero disables syncing; the store engine's online-check mode
	// (store.Options.OnlineCheck) defaults it to the retirement window, and
	// a negative value forces it off even there.
	SyncOps int
	// Telemetry, when it carries a registry, streams run metrics into it:
	// per-node storage-bit gauges sampled on a ticker next to the paper's
	// Theorem 4.1/5.1 bounds, op counters/latency histograms from the batch
	// drivers, online-checker lag gauges, and sampled op-lifecycle spans.
	// nil (the default) records nothing and costs nothing on the hot path.
	Telemetry *telemetry.RunTelemetry
}

func (c Config) withDefaults() Config {
	if c.StepDur <= 0 {
		c.StepDur = 100 * time.Microsecond
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 128
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Checkpoint <= 0 {
		c.Checkpoint = 5 * time.Millisecond
	}
	return c
}

// drainBatch bounds how many extra mailbox events a node loop handles per
// wakeup: coalescing amortizes the scheduler round trip under load, the
// bound keeps one hot node from running unpreempted forever.
const drainBatch = 32

// PlanSupported reports whether a fault plan is well-formed for the live
// runtime. Every fault class runs here now — drop/delay rules, outage
// windows and scheduled crash/recovery events, the step-indexed ones mapped
// onto wall time by a faults.WallClock — so this only validates the plan's
// shape. The one genuinely unsupported combination, scheduled recovery of a
// node without the ioa.Recoverable surface, needs the deployed automata to
// detect and is rejected by the runtime itself with faults.ErrUnsupported.
func PlanSupported(p *faults.Plan) error {
	if p == nil {
		return nil
	}
	return p.Validate()
}

// event is one mailbox entry: a message delivery, or (inv != nil) an
// operation invocation injected by the driver. Both are handled on the
// node's own goroutine, so automaton state is goroutine-confined.
type event struct {
	from ioa.NodeID
	msg  ioa.Message
	inv  *invokeEvent
}

// Invocation lifecycle states. The single atomic state arbitrates the race
// between the node loop starting a queued invocation and a driver abandoning
// it on timeout: exactly one of the two CAS transitions wins, so an
// abandoned invocation either never ran at all or is a genuine pending op.
const (
	invQueued    int32 = iota // in a mailbox or node queue, not yet started
	invStarted                // the automaton has been invoked
	invAbandoned              // the driver gave up before it started
)

type invokeEvent struct {
	inv   ioa.Invocation
	done  chan []byte     // buffered 1; receives the response value when recorded
	state atomic.Int32    // invQueued -> invStarted (node) | invAbandoned (driver)
	span  *telemetry.Span // sampled lifecycle trace; nil for unsampled ops
}

// opRecord is one per-client log entry. InvokeTS/RespondTS come from the
// runtime's atomic clock, whose modification order is consistent with real
// time — so merged records preserve the real-time precedence relation the
// consistency checkers test.
type opRecord struct {
	kind      ioa.OpKind
	input     []byte
	output    []byte
	invokeTS  int64
	respondTS int64 // -1 while pending
}

// nodeState is everything a node goroutine owns: the automaton clone, its
// mailbox, the client op log and the server storage maxima. Only the node's
// own goroutine touches these fields between start and join — across a
// scheduled crash, ownership passes to the WallClock's event goroutine (which
// joins the loop first) and back to the next incarnation's loop.
type nodeState struct {
	id   ioa.NodeID
	node ioa.Node
	mb   chan event // one channel for the node's whole lifetime, across incarnations

	log         []opRecord
	pendingIdx  int         // index in log of the outstanding op; -1 when none
	pendingTk   *ioa.Ticket // outstanding op's feed ticket (streaming mode)
	pendingDone chan []byte
	invq        []*invokeEvent // pipelined invocations awaiting their turn
	deferred    []event        // events siphoned off mb while blocked on a peer's full mailbox

	meter            ioa.StorageMeter // nil unless the node reports storage; loop-owned (rewritten on recovery)
	metered          bool             // set once at construction: the automaton type reports storage
	curBits, maxBits atomic.Int64     // written by the node loop, readable mid-run
	pendingSpan      *telemetry.Span  // outstanding op's trace span; loop-owned

	// Crash-recovery machinery (DESIGN.md section 12). crashCh and loopDone
	// belong to one incarnation of the node loop; the WallClock goroutine
	// replaces them only between incarnations (after closing crashCh and
	// joining loopDone), so the loop reads them race-free.
	init     ioa.Node    // pristine automaton recovery restarts from; nil when no recovery is scheduled
	ckpt     bool        // the plan schedules a recovery: checkpoint durable state
	down     atomic.Bool // true between a crash and its recovery
	crashCh  chan struct{}
	loopDone chan struct{}

	snapMu  sync.Mutex
	snap    ioa.NodeSnapshot // last durable checkpoint (written by the loop, read at recovery)
	hasSnap bool
}

// runtime drives one cluster's automata concurrently.
type runtime struct {
	cfg   Config
	plan  *faults.Plan
	wc    *faults.WallClock // step clock + crash/recovery event schedule
	nodes map[ioa.NodeID]*nodeState

	clock atomic.Int64  // history timestamp source (batch mode)
	feed  *ioa.OpFeed   // streaming-mode op pipeline; nil in batch mode
	seq   atomic.Uint64 // global send sequence number for MessageFate

	tracer *telemetry.Tracer // sampled op-lifecycle spans; nil when telemetry is off

	drops, delayed, delaySteps atomic.Int64
	overflow                   atomic.Int64 // messages dropped after SendTimeout on a full mailbox
	dead                       atomic.Int64 // messages addressed to a crashed node, dropped
	checkpoints                atomic.Int64 // durable-state snapshots taken

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{} // pending delay/outage timers, stopped at shutdown
	stopped bool

	done chan struct{}
	wg   sync.WaitGroup
}

// newRuntime clones every automaton out of the cluster registry and prepares
// (but does not start) a node goroutine per automaton. The cluster itself is
// left untouched — its simulator System remains pristine.
func newRuntime(cl *cluster.Cluster, plan *faults.Plan, cfg Config) (*runtime, error) {
	if err := PlanSupported(plan); err != nil {
		return nil, err
	}
	rt := &runtime{
		cfg:    cfg,
		plan:   plan,
		nodes:  make(map[ioa.NodeID]*nodeState),
		timers: make(map[*time.Timer]struct{}),
		done:   make(chan struct{}),
	}
	if cfg.Sink != nil {
		rt.feed = ioa.NewOpFeed(cfg.Sink)
	}
	if cfg.Telemetry.Active() {
		rt.tracer = cfg.Telemetry.Registry.Tracer()
	}
	for _, id := range cl.Sys.NodeIDs() {
		n, err := cl.Automaton(id)
		if err != nil {
			return nil, err
		}
		ns := &nodeState{
			id:         id,
			node:       n.Clone(),
			mb:         make(chan event, cfg.Mailbox),
			pendingIdx: -1,
			crashCh:    make(chan struct{}),
			loopDone:   make(chan struct{}),
		}
		ns.meter, _ = ns.node.(ioa.StorageMeter)
		ns.metered = ns.meter != nil
		rt.nodes[id] = ns
	}
	if plan != nil {
		for _, id := range plan.RecoveredNodes() {
			ns := rt.nodes[id]
			if ns == nil {
				return nil, fmt.Errorf("live: fault plan schedules recovery of unknown node %d", id)
			}
			if _, ok := ns.node.(ioa.Recoverable); !ok {
				return nil, fmt.Errorf("live: %w: node %d (%T) is scheduled to recover but has no Snapshot/Restore surface",
					faults.ErrUnsupported, id, ns.node)
			}
			ns.init = ns.node.Clone()
			ns.ckpt = true
		}
	}
	rt.wc = faults.NewWallClock(plan, cfg.StepDur)
	return rt, nil
}

// start launches one goroutine per node, then starts the wall clock: its
// epoch is stamped after every loop is running, so a crash scheduled at step
// 0 still finds a live incarnation to stop.
func (rt *runtime) start() {
	for _, ns := range rt.nodes {
		rt.wg.Add(1)
		go rt.loop(ns)
	}
	rt.wc.Start(faults.NodeHooks{Crash: rt.crashNode, Recover: rt.recoverNode})
}

// stop shuts the node goroutines down, stops every pending delay timer and
// joins everything. The wall clock stops first: after wc.Stop returns no
// crash/recovery hook is in flight, so no new loop goroutine can race
// wg.Wait. After stop returns, the per-node logs and storage maxima are safe
// to read from the caller, and no timer from this run remains scheduled.
func (rt *runtime) stop() {
	rt.wc.Stop()
	close(rt.done)
	rt.timerMu.Lock()
	rt.stopped = true
	for t := range rt.timers {
		t.Stop()
	}
	rt.timers = nil
	rt.timerMu.Unlock()
	rt.wg.Wait()
}

// after schedules f to run once after d, tracking the timer so stop can
// cancel it. The old untracked time.AfterFunc calls leaked every in-flight
// delay timer past Close — harmless-looking until a short run with a long
// delay tail keeps firing into a dead runtime.
func (rt *runtime) after(d time.Duration, f func()) {
	rt.timerMu.Lock()
	defer rt.timerMu.Unlock()
	if rt.stopped {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		// The callback can only fire after the registration below released
		// the mutex, so t is always the registered timer here.
		rt.timerMu.Lock()
		delete(rt.timers, t)
		rt.timerMu.Unlock()
		select {
		case <-rt.done:
		default:
			f()
		}
	})
	rt.timers[t] = struct{}{}
}

// loop is one node goroutine — one incarnation of the node: it handles its
// first event, then drains up to drainBatch more without going back to the
// scheduler — under load a node wakes once per burst instead of once per
// message. Events the node siphoned off its own mailbox while blocked
// sending (see postFrom) are handled first: they arrived before anything
// still queued, so per-link FIFO holds. A checkpointing node additionally
// snapshots its durable state on a ticker — on its own goroutine, so
// Snapshot never races Deliver/Invoke — with one initial checkpoint before
// any event, so a crash at any point has an image to recover from.
func (rt *runtime) loop(ns *nodeState) {
	crashed, exited := ns.crashCh, ns.loopDone
	defer close(exited)
	defer rt.wg.Done()
	var tick <-chan time.Time
	if ns.ckpt {
		rt.checkpoint(ns)
		t := time.NewTicker(rt.cfg.Checkpoint)
		defer t.Stop()
		tick = t.C
	}
	for {
		if len(ns.deferred) > 0 {
			select {
			case <-rt.done:
				return
			case <-crashed:
				return
			default:
			}
			ev := ns.deferred[0]
			ns.deferred = ns.deferred[1:]
			rt.handle(ns, ev)
			continue
		}
		select {
		case <-rt.done:
			return
		case <-crashed:
			return
		case <-tick:
			rt.checkpoint(ns)
		case ev := <-ns.mb:
			rt.handle(ns, ev)
			for i := 0; i < drainBatch && len(ns.deferred) == 0; i++ {
				select {
				case ev := <-ns.mb:
					rt.handle(ns, ev)
				default:
					i = drainBatch
				}
			}
		}
	}
}

// checkpoint images the node's durable state under the snapshot mutex, where
// a later recovery reads it.
func (rt *runtime) checkpoint(ns *nodeState) {
	r, ok := ns.node.(ioa.Recoverable)
	if !ok {
		return
	}
	snap := r.Snapshot()
	ns.snapMu.Lock()
	ns.snap, ns.hasSnap = snap, true
	ns.snapMu.Unlock()
	rt.checkpoints.Add(1)
}

// crashNode stops a node mid-run: runs on the WallClock's event goroutine.
// The incarnation's loop is signalled and joined, then the node's volatile
// state — everything but the checkpoint — is discarded: queued mailbox
// events, siphoned events, not-yet-started invocations (abandoned, so their
// drivers see "never happened"). An operation the automaton held mid-protocol
// stays pending in the log forever, which is exactly what the consistency
// checkers' completion semantics expect of an op lost to a crash.
func (rt *runtime) crashNode(id ioa.NodeID) {
	ns := rt.nodes[id]
	if ns == nil || ns.down.Load() {
		return
	}
	ns.down.Store(true)
	close(ns.crashCh)
	<-ns.loopDone
	rt.discardVolatile(ns)
}

// discardVolatile empties the node's mailbox and queues between incarnations.
// Only called with no loop goroutine running, so the loop-owned fields are
// safe to touch.
func (rt *runtime) discardVolatile(ns *nodeState) {
	for {
		select {
		case ev := <-ns.mb:
			if ev.inv != nil {
				ev.inv.state.CompareAndSwap(invQueued, invAbandoned)
			}
		default:
			ns.deferred = nil
			for _, ie := range ns.invq {
				ie.state.CompareAndSwap(invQueued, invAbandoned)
			}
			ns.invq = nil
			ns.pendingIdx = -1
			if ns.pendingTk != nil {
				// The op dies with the crash: permanently pending.
				ns.pendingTk.Abandon()
				ns.pendingTk = nil
			}
			ns.pendingDone = nil
			return
		}
	}
}

// recoverNode restarts a crashed node from its last durable checkpoint: runs
// on the WallClock's event goroutine, strictly after the node's crash (the
// clock fires all node events in schedule order on one goroutine). The new
// incarnation is a pristine clone of the deployed automaton with the
// checkpoint restored onto it — volatile state since the checkpoint is lost,
// the durable state provably survives.
func (rt *runtime) recoverNode(id ioa.NodeID) {
	ns := rt.nodes[id]
	if ns == nil || !ns.down.Load() || ns.init == nil {
		return
	}
	node := ns.init.Clone()
	ns.snapMu.Lock()
	snap, ok := ns.snap, ns.hasSnap
	ns.snapMu.Unlock()
	if ok {
		// Same automaton type by construction; Restore cannot reject it.
		if err := node.(ioa.Recoverable).Restore(snap); err != nil {
			return // leave the node down rather than rejoin with bogus state
		}
	}
	ns.node = node
	ns.meter, _ = node.(ioa.StorageMeter)
	rt.discardVolatile(ns) // frames that raced the down flag die with the crash
	ns.crashCh = make(chan struct{})
	ns.loopDone = make(chan struct{})
	ns.down.Store(false)
	rt.wg.Add(1)
	go rt.loop(ns)
}

// handle processes one mailbox event on the node's goroutine. Invocations
// are queued and started only while no operation is pending, so a pipelining
// driver may submit several ops while the automaton still holds one at a
// time; deliveries go straight to the automaton.
func (rt *runtime) handle(ns *nodeState, ev event) {
	if ev.inv != nil {
		ns.invq = append(ns.invq, ev.inv)
	} else {
		rt.apply(ns, ns.node.Deliver(ev.from, ev.msg))
	}
	// Start queued invocations while the client is free. Normally at most
	// one starts; the loop only cascades when an invocation responds
	// immediately (e.g. a degenerate automaton), or skips abandoned entries.
	for ns.pendingIdx < 0 && ns.pendingTk == nil && len(ns.invq) > 0 {
		ie := ns.invq[0]
		ns.invq = ns.invq[1:]
		if !ie.state.CompareAndSwap(invQueued, invStarted) {
			continue // abandoned before it started: it never happened
		}
		ie.span.Mark(telemetry.StageStart)
		ns.pendingSpan = ie.span
		if rt.feed != nil {
			ns.pendingTk = rt.feed.Begin(ns.id, ie.inv.Kind, ie.inv.Value)
		} else {
			ns.log = append(ns.log, opRecord{
				kind:      ie.inv.Kind,
				input:     ie.inv.Value,
				invokeTS:  rt.clock.Add(1),
				respondTS: -1,
			})
			ns.pendingIdx = len(ns.log) - 1
		}
		ns.pendingDone = ie.done
		rt.apply(ns, ns.node.(ioa.Client).Invoke(ie.inv))
	}
}

// apply records a response (the timestamp is taken before the effects' sends
// are dispatched: the response is determined by then, so shrinking the
// recorded operation interval to that point is sound for the checkers — the
// linearization point of a quorum operation precedes response
// determination), dispatches the sends, and refreshes the storage meters.
func (rt *runtime) apply(ns *nodeState, eff ioa.Effects) {
	if eff.Response != nil && (ns.pendingIdx >= 0 || ns.pendingTk != nil) {
		out := eff.Response.Value
		if ns.pendingTk != nil {
			// Stamped and released to the sink before the effects' sends
			// dispatch, so the feed clock preserves real-time precedence
			// exactly as the batch clock does.
			ns.pendingTk.Complete(out)
			ns.pendingTk = nil
		} else {
			rec := &ns.log[ns.pendingIdx]
			rec.output = out
			rec.respondTS = rt.clock.Add(1)
			ns.pendingIdx = -1
		}
		ns.pendingSpan.Mark(telemetry.StageEffect)
		ns.pendingSpan = nil
		if ns.pendingDone != nil {
			ns.pendingDone <- out // buffered, single outstanding op: never blocks
			ns.pendingDone = nil
		}
	}
	for _, send := range eff.Sends {
		rt.send(ns, send)
	}
	if ns.meter != nil {
		bits := int64(ns.meter.StorageBits())
		ns.curBits.Store(bits)
		ioa.RaiseMax(&ns.maxBits, bits)
	}
}

// send applies the fault plan's drop/delay rules and routes the message to
// the target mailbox. Sequence numbers are global, as in the kernel, so the
// same plan seed draws from the same decision stream.
func (rt *runtime) send(from *nodeState, s ioa.Send) {
	to := rt.nodes[s.To]
	if to == nil {
		return
	}
	ev := event{from: from.id, msg: s.Msg}
	if rt.plan != nil {
		seq := rt.seq.Add(1) - 1
		drop, delay := rt.plan.MessageFate(from.id, s.To, seq, rt.wc.Step())
		if drop {
			rt.drops.Add(1)
			return
		}
		if delay > 0 {
			rt.delayed.Add(1)
			rt.delaySteps.Add(int64(delay))
			rt.after(time.Duration(delay)*rt.cfg.StepDur, func() {
				// A timer goroutine has no mailbox to siphon; it blocks
				// plainly with the deadline.
				rt.deliver(nil, to, ev)
			})
			return
		}
	}
	rt.deliver(from, to, ev)
}

// deliver gates the message on the plan's outage windows at the current
// step, then posts it. A blocked message is held — not dropped — and
// re-delivered at the next outage boundary, re-checking then in case windows
// abut; held messages are accounted as delays of (boundary - now) steps,
// exactly as on the net backend. Messages addressed to a crashed node are
// transport-level loss: nothing is listening.
func (rt *runtime) deliver(sender, to *nodeState, ev event) {
	if hold, steps := rt.wc.Hold(ev.from, to.id); hold > 0 {
		rt.delayed.Add(1)
		rt.delaySteps.Add(int64(steps))
		rt.after(hold, func() { rt.deliver(nil, to, ev) })
		return
	}
	if to.down.Load() {
		rt.dead.Add(1)
		return
	}
	rt.postFrom(sender, to, ev, rt.cfg.SendTimeout)
}

// post enqueues with backpressure from outside any node loop: the fast path
// is a non-blocking channel send; a full mailbox blocks the caller up to
// timeout, after which the event is dropped and counted. It reports whether
// the event was enqueued.
func (rt *runtime) post(to *nodeState, ev event) bool {
	return rt.postFrom(nil, to, ev, rt.cfg.SendTimeout)
}

// postFrom enqueues with backpressure and deadlock avoidance. A node loop
// (sender != nil) blocked on a peer's full mailbox keeps siphoning its OWN
// mailbox into its deferred queue, so a cycle of mutually full mailboxes
// (client blocked on server, server blocked on that client's responses)
// cannot wedge: every blocked node keeps consuming, some send always
// completes, and the system self-regulates to the slowest consumer instead
// of spawning a goroutine per overflowing message. Only when the deadline
// expires with the peer still full is the event dropped and counted —
// message loss the unordered lossy channel model already admits. Per-link
// FIFO is preserved: siphoned events are handled before anything still in
// the mailbox, in arrival order.
func (rt *runtime) postFrom(sender, to *nodeState, ev event, timeout time.Duration) bool {
	select {
	case to.mb <- ev:
		return true
	case <-rt.done:
		return false
	default:
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		if sender == nil {
			select {
			case to.mb <- ev:
				return true
			case <-t.C:
				rt.overflow.Add(1)
				return false
			case <-rt.done:
				return false
			}
		}
		select {
		case to.mb <- ev:
			return true
		case own := <-sender.mb:
			sender.deferred = append(sender.deferred, own)
		case <-sender.crashCh:
			// The sender's incarnation was crashed while blocked here; the
			// undelivered message dies with it, and the loop above notices
			// the crash as soon as this send unwinds.
			rt.dead.Add(1)
			return false
		case <-t.C:
			rt.overflow.Add(1)
			return false
		case <-rt.done:
			return false
		}
	}
}

// pendingOp is a handle on one asynchronously submitted invocation.
type pendingOp struct {
	ie     *invokeEvent
	failed bool // the post was dropped; the op never reached the node
}

// invokeAsync submits an operation at a client and returns immediately; the
// node starts it when every earlier invocation at that client has responded.
// Pipelining drivers keep several handles open per client.
func (rt *runtime) invokeAsync(client ioa.NodeID, inv ioa.Invocation) *pendingOp {
	ns := rt.nodes[client]
	ie := &invokeEvent{inv: inv, done: make(chan []byte, 1)}
	if rt.tracer != nil {
		ie.span = rt.tracer.Begin(inv.Kind.String())
	}
	p := &pendingOp{ie: ie}
	// Invocations get the full op timeout to enqueue, not just SendTimeout:
	// a client mailbox saturated by protocol traffic clears as the node
	// drains, and dropping the invocation early would under-run fault-free
	// workloads that are merely overloaded.
	if !rt.postFrom(nil, ns, event{inv: ie}, rt.cfg.OpTimeout) {
		ie.state.Store(invAbandoned)
		p.failed = true
		ie.span.End()
	} else {
		ie.span.Mark(telemetry.StageQueue)
	}
	return p
}

// wait blocks for the response, the timeout, or ctx cancellation. It returns
// the response value, whether the operation actually started (a started but
// incomplete op is genuinely pending: it may still take effect and must stay
// pending in any checked history; an unstarted one never happened), and
// whether it completed.
func (p *pendingOp) wait(ctx context.Context, timeout time.Duration) (out []byte, started, ok bool) {
	if p.failed {
		return nil, false, false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-p.ie.done:
		p.ie.span.Mark(telemetry.StageComplete)
		p.ie.span.End()
		return out, true, true
	case <-t.C:
	case <-ctx.Done():
	}
	if p.ie.state.CompareAndSwap(invQueued, invAbandoned) {
		p.ie.span.End()
		return nil, false, false // never started; the node will skip it
	}
	// Already started — it may even have completed in the race window.
	select {
	case out := <-p.ie.done:
		p.ie.span.Mark(telemetry.StageComplete)
		p.ie.span.End()
		return out, true, true
	default:
		p.ie.span.End()
		return nil, true, false
	}
}

// abandon cancels an invocation that has not started and reports whether it
// did; a started invocation is left to run.
func (p *pendingOp) abandon() bool {
	if p.failed || p.ie.state.CompareAndSwap(invQueued, invAbandoned) {
		p.ie.span.End()
		return true
	}
	return false
}

// Wait and Abandon adapt pendingOp to the shared driver's workload.Flight.
func (p *pendingOp) Wait(timeout time.Duration) bool {
	_, _, ok := p.wait(context.Background(), timeout)
	return ok
}

// Abandon implements workload.Flight.
func (p *pendingOp) Abandon() bool { return p.abandon() }

// invoke injects an operation at a client and waits for its response, the
// timeout, or the context's cancellation. It returns the response value and
// whether the operation completed in time, plus whether it actually started:
// an abandoned-but-started operation stays pending in the client's log and
// the client automaton remains mid-protocol; an unstarted one was dropped by
// backpressure and left no trace.
func (rt *runtime) invoke(ctx context.Context, client ioa.NodeID, inv ioa.Invocation, timeout time.Duration) (out []byte, started, ok bool) {
	return rt.invokeAsync(client, inv).wait(ctx, timeout)
}

// faultStats snapshots the fault counters in kernel form. Backpressure
// drops (mailbox full past SendTimeout) and messages addressed to a crashed
// node are transport-level loss, not plan decisions, so they land in
// TransportDropped; outage holds fold into the delay counters exactly as on
// the net backend.
func (rt *runtime) faultStats() ioa.FaultStats {
	return ioa.FaultStats{
		Drops:            int(rt.drops.Load()),
		DelayedMessages:  int(rt.delayed.Load()),
		DelayStepsTotal:  int(rt.delaySteps.Load()),
		Crashes:          rt.wc.Crashes(),
		Recoveries:       rt.wc.Recoveries(),
		Checkpoints:      int(rt.checkpoints.Load()),
		TransportDropped: int(rt.overflow.Load() + rt.dead.Load()),
	}
}
