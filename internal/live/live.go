// Package live executes register-emulation clusters on a real concurrent
// runtime: every node automaton runs on its own goroutine with a buffered
// mailbox, messages flow over channels the moment they are sent, and
// wall-clock time replaces the simulator's discrete steps. The node automata
// are exactly the ones `internal/abd`, `internal/cas` and `internal/coded`
// deploy — the cluster is only the registry; this package clones the
// automata out of it and drives them itself, so the same deployment runs
// unchanged on either backend.
//
// The contract with the simulator backend (DESIGN.md section 8):
//
//   - The simulator is the determinism oracle: same seed, same schedule,
//     byte-identical histories and fingerprints. The live runtime makes NO
//     such promise — schedules here are an accident of goroutine timing, and
//     two runs of the same spec produce different histories.
//   - Safety is checked the same way on both: operations are recorded in
//     per-client logs (mutex-free — each log is owned by its node's
//     goroutine, ordered by a shared atomic clock) and merged into an
//     ioa.History for the internal/consistency checkers. A history the live
//     runtime produced must pass the same condition the algorithm guarantees
//     on the simulator.
//   - Faults: drop and delay rules of a faults.Plan are reused verbatim —
//     MessageFate is consulted at send time with a global send sequence
//     number, exactly as the kernel does, with delay steps scaled to wall
//     time by Config.StepDur. Outage windows and scheduled crashes are
//     defined in kernel steps and have no wall-clock meaning, so plans using
//     them are rejected eagerly; those scenarios stay on the simulator.
//   - Liveness is a verdict, not a hang: every operation carries a timeout,
//     and a run whose operations time out under a fault plan reports
//     Quiescent with the timed-out operations pending in the history (their
//     effects may still land — the atomicity checker's standard completion
//     semantics cover exactly this).
package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
)

// Config tunes the live runtime. The zero value selects the defaults.
type Config struct {
	// StepDur converts a fault plan's delay steps into wall-clock time
	// (default 100µs; delay=1:24 thus holds messages up to ~2.4ms).
	StepDur time.Duration
	// OpTimeout bounds each operation's completion (default 5s). A client
	// whose operation times out is retired — its automaton may still be
	// waiting on lost messages — and the operation stays pending in the
	// history unless its response arrives before shutdown.
	OpTimeout time.Duration
	// Mailbox is the per-node buffered channel capacity (default 128).
	// Overflow never blocks a node loop: excess sends complete from
	// spawned goroutines.
	Mailbox int
}

func (c Config) withDefaults() Config {
	if c.StepDur <= 0 {
		c.StepDur = 100 * time.Microsecond
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 128
	}
	return c
}

// PlanSupported reports whether a fault plan can run on the live runtime:
// drop/delay rules only. Outage windows and scheduled crash/recovery events
// are positioned in kernel steps, which have no wall-clock analogue here, so
// they stay simulator-only; rejecting them eagerly keeps the error at setup
// time instead of mid-run.
func PlanSupported(p *faults.Plan) error {
	if p == nil {
		return nil
	}
	if len(p.Outages) > 0 || len(p.Crashes) > 0 {
		return fmt.Errorf("live: fault plan schedules outages or crashes, which are step-indexed and simulator-only; the live runtime supports drop/delay rules")
	}
	return p.Validate()
}

// event is one mailbox entry: a message delivery, or (inv != nil) an
// operation invocation injected by the driver. Both are handled on the
// node's own goroutine, so automaton state is goroutine-confined.
type event struct {
	from ioa.NodeID
	msg  ioa.Message
	inv  *invokeEvent
}

type invokeEvent struct {
	inv  ioa.Invocation
	done chan []byte // buffered 1; receives the response value when recorded
}

// opRecord is one per-client log entry. InvokeTS/RespondTS come from the
// runtime's atomic clock, whose modification order is consistent with real
// time — so merged records preserve the real-time precedence relation the
// consistency checkers test.
type opRecord struct {
	kind      ioa.OpKind
	input     []byte
	output    []byte
	invokeTS  int64
	respondTS int64 // -1 while pending
}

// nodeState is everything a node goroutine owns: the automaton clone, its
// mailbox, the client op log and the server storage maxima. Only the node's
// own goroutine touches these fields between start and join.
type nodeState struct {
	id   ioa.NodeID
	node ioa.Node
	mb   chan event

	log         []opRecord
	pendingIdx  int // index in log of the outstanding op; -1 when none
	pendingDone chan []byte

	meter            ioa.StorageMeter // nil unless the node reports storage
	curBits, maxBits atomic.Int64     // written by the node loop, readable mid-run
}

// runtime drives one cluster's automata concurrently.
type runtime struct {
	cfg   Config
	plan  *faults.Plan
	nodes map[ioa.NodeID]*nodeState

	clock atomic.Int64  // history timestamp source
	seq   atomic.Uint64 // global send sequence number for MessageFate

	drops, delayed, delaySteps atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

// newRuntime clones every automaton out of the cluster registry and prepares
// (but does not start) a node goroutine per automaton. The cluster itself is
// left untouched — its simulator System remains pristine.
func newRuntime(cl *cluster.Cluster, plan *faults.Plan, cfg Config) (*runtime, error) {
	if err := PlanSupported(plan); err != nil {
		return nil, err
	}
	rt := &runtime{
		cfg:   cfg,
		plan:  plan,
		nodes: make(map[ioa.NodeID]*nodeState),
		done:  make(chan struct{}),
	}
	for _, id := range cl.Sys.NodeIDs() {
		n, err := cl.Automaton(id)
		if err != nil {
			return nil, err
		}
		ns := &nodeState{
			id:         id,
			node:       n.Clone(),
			mb:         make(chan event, cfg.Mailbox),
			pendingIdx: -1,
		}
		ns.meter, _ = ns.node.(ioa.StorageMeter)
		rt.nodes[id] = ns
	}
	return rt, nil
}

// start launches one goroutine per node.
func (rt *runtime) start() {
	for _, ns := range rt.nodes {
		rt.wg.Add(1)
		go rt.loop(ns)
	}
}

// stop shuts the node goroutines down and joins them. After stop returns,
// the per-node logs and storage maxima are safe to read from the caller.
func (rt *runtime) stop() {
	close(rt.done)
	rt.wg.Wait()
}

func (rt *runtime) loop(ns *nodeState) {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.done:
			return
		case ev := <-ns.mb:
			rt.handle(ns, ev)
		}
	}
}

// handle processes one mailbox event on the node's goroutine. The response
// timestamp is recorded before the effects' sends are dispatched: the
// response is determined by then, so shrinking the recorded operation
// interval to that point is sound for the checkers (the linearization point
// of a quorum operation precedes response determination).
func (rt *runtime) handle(ns *nodeState, ev event) {
	var eff ioa.Effects
	if ev.inv != nil {
		ns.log = append(ns.log, opRecord{
			kind:      ev.inv.inv.Kind,
			input:     ev.inv.inv.Value,
			invokeTS:  rt.clock.Add(1),
			respondTS: -1,
		})
		ns.pendingIdx = len(ns.log) - 1
		ns.pendingDone = ev.inv.done
		eff = ns.node.(ioa.Client).Invoke(ev.inv.inv)
	} else {
		eff = ns.node.Deliver(ev.from, ev.msg)
	}
	if eff.Response != nil && ns.pendingIdx >= 0 {
		rec := &ns.log[ns.pendingIdx]
		rec.output = eff.Response.Value
		rec.respondTS = rt.clock.Add(1)
		ns.pendingIdx = -1
		if ns.pendingDone != nil {
			ns.pendingDone <- rec.output // buffered, single outstanding op: never blocks
			ns.pendingDone = nil
		}
	}
	for _, send := range eff.Sends {
		rt.send(ns.id, send)
	}
	if ns.meter != nil {
		bits := int64(ns.meter.StorageBits())
		ns.curBits.Store(bits)
		if bits > ns.maxBits.Load() {
			ns.maxBits.Store(bits)
		}
	}
}

// send applies the fault plan's drop/delay rules and routes the message to
// the target mailbox. Sequence numbers are global, as in the kernel, so the
// same plan seed draws from the same decision stream.
func (rt *runtime) send(from ioa.NodeID, s ioa.Send) {
	to := rt.nodes[s.To]
	if to == nil {
		return
	}
	ev := event{from: from, msg: s.Msg}
	if rt.plan != nil {
		seq := rt.seq.Add(1) - 1
		drop, delay := rt.plan.MessageFate(from, s.To, seq, 0)
		if drop {
			rt.drops.Add(1)
			return
		}
		if delay > 0 {
			rt.delayed.Add(1)
			rt.delaySteps.Add(int64(delay))
			time.AfterFunc(time.Duration(delay)*rt.cfg.StepDur, func() {
				select {
				case <-rt.done:
				default:
					rt.post(to, ev)
				}
			})
			return
		}
	}
	rt.post(to, ev)
}

// post enqueues without ever blocking the caller: a full mailbox falls back
// to a spawned goroutine, so node loops cannot deadlock on a cycle of full
// buffers. Overflow reordering is fine — the channels are unordered in the
// paper's model, and the simulator's delay rules reorder links anyway.
func (rt *runtime) post(to *nodeState, ev event) {
	select {
	case to.mb <- ev:
	default:
		go func() {
			select {
			case to.mb <- ev:
			case <-rt.done:
			}
		}()
	}
}

// invoke injects an operation at a client and waits for its response, the
// timeout, or the context's cancellation. It returns the response value and
// whether the operation completed in time; an abandoned operation stays
// pending in the client's log and the client automaton remains mid-protocol.
func (rt *runtime) invoke(ctx context.Context, client ioa.NodeID, inv ioa.Invocation, timeout time.Duration) ([]byte, bool) {
	ns := rt.nodes[client]
	done := make(chan []byte, 1)
	rt.post(ns, event{inv: &invokeEvent{inv: inv, done: done}})
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-done:
		return out, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// faultStats snapshots the fault counters in kernel form.
func (rt *runtime) faultStats() ioa.FaultStats {
	return ioa.FaultStats{
		Drops:           int(rt.drops.Load()),
		DelayedMessages: int(rt.delayed.Load()),
		DelayStepsTotal: int(rt.delaySteps.Load()),
	}
}
