package live_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/workload"
)

// TestPipelinedThousandClients runs 2000 concurrent clients (1000 writers,
// 1000 readers) with depth-4 pipelines against 5 servers whose mailboxes
// (capacity 16) overflow for the whole run — sustained backpressure, the
// regime the old spawn-on-overflow path turned into a goroutine storm. The
// run must complete, the merged history must be well-formed (RunConfig
// rejects per-client interval overlap via ioa.HistoryFromOps — the
// per-client FIFO/ordering property pipelining must preserve), and the
// goroutine count sampled during the run must stay O(nodes + drivers).
func TestPipelinedThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-client run")
	}
	const clients = 1000
	cl, _ := deploy(t, "abd-mwmr", 5, 1, clients, clients)
	spec := workload.Spec{
		Writes:     2 * clients,
		Reads:      clients,
		TargetNu:   clients,
		ValueBytes: 32,
		Seed:       1,
	}
	cfg := live.Config{Mailbox: 16, Pipeline: 4, OpTimeout: 60 * time.Second}

	baseline := runtime.NumGoroutine()
	type outcome struct {
		res *live.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := live.RunConfig(cl, spec, cfg)
		resCh <- outcome{res, err}
	}()

	peak := 0
	var out outcome
sample:
	for {
		select {
		case out = <-resCh:
			break sample
		case <-time.After(2 * time.Millisecond):
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	}
	if out.err != nil {
		t.Fatalf("run failed: %v", out.err)
	}
	// No CheckAtomic here: the checker is worst-case exponential in write
	// concurrency and infeasible at nu=1000. Well-formedness (per-client
	// interval ordering) is enforced by HistoryFromOps inside RunConfig and
	// re-asserted below; atomicity at this algorithm/size is covered by the
	// smaller-scale differential tests.
	if out.res.CompletedOps != spec.Writes+spec.Reads {
		t.Fatalf("completed %d of %d ops", out.res.CompletedOps, spec.Writes+spec.Reads)
	}
	// Budget: node goroutines (servers + clients), one driver per client,
	// plus slack for the harness and stray delay timers. The old overflow
	// path spawned a goroutine per overflowing message and blew far past
	// this under a sustained 2000-on-5 overload.
	nodes := 5 + 2*clients
	drivers := 2 * clients
	budget := baseline + nodes + drivers + 256
	if peak > budget {
		t.Fatalf("goroutines peaked at %d (budget %d); overflow is spawning again", peak, budget)
	}
	// Per-client FIFO: each client's records were merged in invocation
	// order; HistoryFromOps has already rejected any overlap, so it is
	// enough to confirm every client's ops are interval-ordered.
	lastEnd := make(map[ioa.NodeID]int)
	for _, op := range out.res.History.Ops {
		if op.RespondStep < 0 {
			continue
		}
		if op.InvokeStep < lastEnd[op.Client] {
			t.Fatalf("client %d: op invoked at %d before predecessor ended at %d", op.Client, op.InvokeStep, lastEnd[op.Client])
		}
		lastEnd[op.Client] = op.RespondStep
	}
}
