package live_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/store"
	"repro/internal/workload"
)

func deploy(t *testing.T, alg string, n, f, writers, readers int) (*cluster.Cluster, string) {
	t.Helper()
	cl, cond, err := store.DeployAlgorithmSized(alg, n, f, writers, readers)
	if err != nil {
		t.Fatalf("deploy %s: %v", alg, err)
	}
	return cl, cond
}

func check(t *testing.T, alg, cond string, res *live.Result) {
	t.Helper()
	var err error
	switch cond {
	case "atomic":
		err = consistency.CheckAtomic(res.History, nil)
	case "regular":
		err = consistency.CheckRegular(res.History, nil)
	default:
		t.Fatalf("unknown condition %q", cond)
	}
	if err != nil {
		t.Errorf("%s live history not %s: %v", alg, cond, err)
	}
}

// TestLiveRunChecksConsistency drives each multi-writer algorithm on the
// live runtime and verifies the merged history passes the algorithm's
// consistency condition — the backend contract's safety half.
func TestLiveRunChecksConsistency(t *testing.T) {
	for _, alg := range []string{store.AlgABDMW, store.AlgCAS, store.AlgCASGC} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			cl, cond := deploy(t, alg, 5, 1, 3, 3)
			res, err := live.Run(cl, workload.Spec{
				Writes:     24,
				Reads:      24,
				TargetNu:   3,
				ValueBytes: 64,
			})
			if err != nil {
				t.Fatalf("live.Run: %v", err)
			}
			if res.CompletedOps != 48 {
				t.Fatalf("completed %d ops, want 48", res.CompletedOps)
			}
			if res.Quiescent || res.PendingOps != 0 {
				t.Fatalf("fault-free run reported quiescent=%t pending=%d", res.Quiescent, res.PendingOps)
			}
			if got := len(res.History.Ops); got != 48 {
				t.Fatalf("history has %d ops, want 48", got)
			}
			if len(res.Latencies) != 48 || res.OpsPerSec <= 0 {
				t.Fatalf("latency/throughput not measured: %d latencies, %v ops/sec", len(res.Latencies), res.OpsPerSec)
			}
			if res.Storage.MaxTotalBits <= 0 || res.Storage.MaxServerBits <= 0 {
				t.Fatalf("storage not metered: %+v", res.Storage)
			}
			if res.PeakActiveWrites < 1 || res.PeakActiveWrites > 3 {
				t.Fatalf("peak active writes %d outside [1,3]", res.PeakActiveWrites)
			}
			check(t, alg, cond, res)
		})
	}
}

// TestLiveDelayRulesApply runs under a pure delay plan and checks the delay
// counters moved while the history stays atomic and complete.
func TestLiveDelayRulesApply(t *testing.T) {
	cl, cond := deploy(t, store.AlgCAS, 5, 1, 2, 2)
	plan, err := faults.Delay{Min: 1, Max: 8}.Build(5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := live.Run(cl, workload.Spec{
		Writes:     16,
		Reads:      16,
		TargetNu:   2,
		ValueBytes: 64,
		FaultPlan:  plan,
	})
	if err != nil {
		t.Fatalf("live.Run: %v", err)
	}
	if res.Faults.DelayedMessages == 0 || res.Faults.DelayStepsTotal == 0 {
		t.Errorf("delay plan applied no delays: %+v", res.Faults)
	}
	if res.Quiescent {
		t.Errorf("pure delay run lost liveness: %d pending", res.PendingOps)
	}
	check(t, store.AlgCAS, cond, res)
}

// bareServer is a minimal automaton WITHOUT the ioa.Recoverable surface,
// for pinning the one fault-plan combination the wall-clock backends still
// reject: scheduled recovery of a node that cannot snapshot its state.
type bareServer struct{ id ioa.NodeID }

func (s *bareServer) ID() ioa.NodeID                                       { return s.id }
func (s *bareServer) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects { return ioa.Effects{} }
func (s *bareServer) Clone() ioa.Node                                      { cp := *s; return &cp }

type bareClient struct{ id ioa.NodeID }

func (c *bareClient) ID() ioa.NodeID                                       { return c.id }
func (c *bareClient) Busy() bool                                           { return false }
func (c *bareClient) Deliver(from ioa.NodeID, msg ioa.Message) ioa.Effects { return ioa.Effects{} }
func (c *bareClient) Clone() ioa.Node                                      { cp := *c; return &cp }
func (c *bareClient) Invoke(inv ioa.Invocation) ioa.Effects {
	return ioa.Effects{Response: &ioa.Response{Kind: inv.Kind}}
}

// bareCluster deploys one bareServer and one bareClient writer.
func bareCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	sys := ioa.NewSystem()
	if err := sys.AddServer(&bareServer{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddClient(&bareClient{id: 101}); err != nil {
		t.Fatal(err)
	}
	return &cluster.Cluster{
		Name:    "bare",
		Sys:     sys,
		Servers: []ioa.NodeID{1},
		Writers: []ioa.NodeID{101},
	}
}

// TestLiveUnsupportedPlansAreTyped pins the remaining eager rejections and
// their type: the random crash budget, and scheduled recovery of a node
// without a Snapshot/Restore surface, both surface as faults.ErrUnsupported
// via errors.Is before any goroutine starts. Outage windows and crash
// schedules themselves are no longer rejected (see the chaos tests).
func TestLiveUnsupportedPlansAreTyped(t *testing.T) {
	cl, _ := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	_, err := live.Run(cl, workload.Spec{Writes: 1, TargetNu: 1, ValueBytes: 8, Crashes: 1})
	if !errors.Is(err, faults.ErrUnsupported) {
		t.Errorf("crash budget: err = %v, want faults.ErrUnsupported", err)
	}

	plan := &faults.Plan{Crashes: []faults.Crash{{Node: 1, Step: 5, RecoverStep: 10}}}
	_, err = live.Run(bareCluster(t), workload.Spec{Writes: 1, TargetNu: 1, ValueBytes: 8, FaultPlan: plan})
	if !errors.Is(err, faults.ErrUnsupported) {
		t.Errorf("recovery without snapshot surface: err = %v, want faults.ErrUnsupported", err)
	}

	// A crash WITHOUT scheduled recovery needs no snapshot surface.
	noRecover := &faults.Plan{Crashes: []faults.Crash{{Node: 1, Step: 5}}}
	if err := live.PlanSupported(noRecover); err != nil {
		t.Errorf("crash-only plan: PlanSupported = %v, want nil", err)
	}
}

// TestLiveLossyTimeoutIsVerdict forces every client-bound message to drop:
// operations must time out, surface as a Quiescent verdict (not a hang or
// an error), and the empty completed history still checks atomic.
func TestLiveLossyTimeoutIsVerdict(t *testing.T) {
	cl, _ := deploy(t, store.AlgCAS, 5, 1, 1, 1)
	plan := &faults.Plan{Seed: 3, Rules: []faults.Rule{{DropProb: 1}}}
	res, err := live.RunConfig(cl, workload.Spec{
		Writes:     2,
		Reads:      1,
		TargetNu:   1,
		ValueBytes: 8,
		FaultPlan:  plan,
	}, live.Config{OpTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("live.RunConfig: %v", err)
	}
	if !res.Quiescent || res.PendingOps == 0 {
		t.Fatalf("total loss should be a quiescent verdict: quiescent=%t pending=%d", res.Quiescent, res.PendingOps)
	}
	if err := consistency.CheckAtomic(res.History, nil); err != nil {
		t.Errorf("partial history not atomic: %v", err)
	}
}

// TestLivePercentile pins the nearest-rank percentile helper.
func TestLivePercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		p    float64
		want time.Duration
	}{{0.5, 2}, {0.99, 4}, {1, 4}, {0.01, 1}}
	for _, tc := range cases {
		if got := live.Percentile(ds, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := live.Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}
