package live

import (
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// checkerStats is the slice of an online checker the storage sampler reads;
// consistency.OnlineChecker satisfies it. Structural, so the runtime keeps
// not importing the checker.
type checkerStats interface {
	WindowLag() int
	OpsObserved() int64
	OpsVerified() int64
}

// startTelemetry publishes the paper bounds for this run's shape and starts
// the sampling goroutine: every tick it reads each server node's storage
// meter (the same curBits/maxBits watermark path storageReport folds at
// shutdown — gauges can never exceed that watermark), the measured-vs-bound
// slack, and the online checker's lag. The returned stop joins the sampler
// after one final sample, so the end-of-run watermark is always published.
// A no-op when telemetry is off.
func (rt *runtime) startTelemetry(cl *cluster.Cluster, spec workload.Spec) (stop func()) {
	tel := rt.cfg.Telemetry
	if !tel.Active() {
		return func() {}
	}
	reg := tel.Registry
	sl := telemetry.L("shard", tel.ShardLabel())

	// The bounds are constants of the run's shape (N, f, log2|V|): publish
	// once, and let every storage sample carry slack against them. An
	// interactive session has no fixed value size (spec is zero), so the
	// bound comparison is skipped there and only the raw gauges publish.
	var slack41, slack51 telemetry.Gauge
	var b41, b51 float64
	hasBounds := spec.ValueBytes > 0
	if hasBounds {
		p := core.Params{N: len(cl.Servers), F: cl.F}
		log2V := float64(8 * spec.ValueBytes)
		b41 = core.Theorem41MaxBits(p, log2V)
		b51 = core.Theorem51MaxBits(p, log2V)
		reg.Gauge(telemetry.MetricStorageBoundBits,
			"paper lower bound on per-node storage bits for this run's shape",
			sl, telemetry.L("theorem", "4.1")).Set(b41)
		reg.Gauge(telemetry.MetricStorageBoundBits,
			"paper lower bound on per-node storage bits for this run's shape",
			sl, telemetry.L("theorem", "5.1")).Set(b51)
		slack41 = reg.Gauge(telemetry.MetricStorageSlackBits,
			"measured max per-node storage minus the paper bound (negative would refute the bound)",
			sl, telemetry.L("theorem", "4.1"))
		slack51 = reg.Gauge(telemetry.MetricStorageSlackBits,
			"measured max per-node storage minus the paper bound (negative would refute the bound)",
			sl, telemetry.L("theorem", "5.1"))
	}

	type nodeGauges struct {
		ns       *nodeState
		cur, max telemetry.Gauge
	}
	var gs []nodeGauges
	for _, id := range cl.Servers {
		ns := rt.nodes[id]
		if ns == nil || !ns.metered {
			continue
		}
		nl := telemetry.L("node", strconv.Itoa(int(id)))
		gs = append(gs, nodeGauges{
			ns:  ns,
			cur: reg.Gauge(telemetry.MetricStorageBits, "current per-node storage bits (sampled)", sl, nl),
			max: reg.Gauge(telemetry.MetricStorageMaxBits, "per-node storage-bit watermark (sampled)", sl, nl),
		})
	}

	var lagG, retainedG telemetry.Gauge
	var observedC, verifiedC telemetry.Counter
	chk, hasChk := rt.cfg.Sink.(checkerStats)
	if hasChk {
		lagG = reg.Gauge(telemetry.MetricCheckerLag, "online checker window lag (ops observed beyond the verified prefix)", sl)
		retainedG = reg.Gauge(telemetry.MetricCheckerRetained, "ops the online checker currently retains", sl)
		observedC = reg.Counter(telemetry.MetricCheckerObserved, "ops the online checker has observed", sl)
		verifiedC = reg.Counter(telemetry.MetricCheckerVerified, "ops the online checker has verified", sl)
	}

	sample := func() {
		maxSeen := int64(0)
		for _, g := range gs {
			g.cur.Set(float64(g.ns.curBits.Load()))
			m := g.ns.maxBits.Load()
			g.max.Set(float64(m))
			if m > maxSeen {
				maxSeen = m
			}
		}
		if hasBounds && len(gs) > 0 {
			slack41.Set(float64(maxSeen) - b41)
			slack51.Set(float64(maxSeen) - b51)
		}
		if hasChk {
			obs, ver := chk.OpsObserved(), chk.OpsVerified()
			lagG.Set(float64(chk.WindowLag()))
			retainedG.Set(float64(obs - ver))
			observedC.Raise(uint64(obs))
			verifiedC.Raise(uint64(ver))
		}
	}

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(tel.SampleInterval())
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample() // final: publish the end-of-run watermark
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
