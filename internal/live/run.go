package live

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/workload"
)

// Result reports a live run: the merged history and safety-relevant fields
// mirror workload.Result (AsWorkload converts), plus the wall-clock
// throughput and per-operation latencies only a concurrent runtime can
// measure.
type Result struct {
	// History is the merged per-client operation log, ordered by the
	// runtime's atomic clock; timed-out operations appear pending.
	History *ioa.History
	// Storage reports per-server storage maxima. MaxTotalBits is the sum
	// of the per-server maxima — an upper estimate of the simulator's
	// step-accurate total high-water mark, since no global snapshot exists
	// in a concurrent run.
	Storage ioa.StorageReport
	// PeakActiveWrites is the measured maximum of concurrently in-flight
	// writes (the execution's ν).
	PeakActiveWrites int
	// Log2V and NormalizedTotal normalize storage as in workload.Result.
	Log2V           float64
	NormalizedTotal float64
	// Quiescent reports that some operations never completed (possible
	// only under a fault plan; fault-free timeouts are errors).
	Quiescent bool
	// PendingOps counts operations still pending at shutdown.
	PendingOps int
	// Faults aggregates the drop/delay events the runtime applied.
	Faults ioa.FaultStats
	// Elapsed, OpsPerSec, CompletedOps and Latencies measure the run:
	// Latencies holds one wall-clock duration per operation that completed
	// within its timeout, in no particular order.
	Elapsed      time.Duration
	OpsPerSec    float64
	CompletedOps int
	Latencies    []time.Duration
}

// AsWorkload converts to the simulator backend's result shape, so the store
// engine aggregates either backend's shards uniformly.
func (r *Result) AsWorkload() *workload.Result {
	return &workload.Result{
		History:          r.History,
		Storage:          r.Storage,
		PeakActiveWrites: r.PeakActiveWrites,
		Log2V:            r.Log2V,
		NormalizedTotal:  r.NormalizedTotal,
		Quiescent:        r.Quiescent,
		Faults:           r.Faults,
		Latencies:        r.Latencies,
	}
}

// LatencyPercentile returns the p-th percentile (0 < p <= 1) of the
// completed-operation latencies, or 0 when none completed.
func (r *Result) LatencyPercentile(p float64) time.Duration {
	return Percentile(r.Latencies, p)
}

// Percentile returns the p-th percentile of the durations (nearest-rank on
// a sorted copy), or 0 for an empty slice.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run executes the workload spec on the cluster's automata under the live
// concurrent runtime with the default Config. See RunConfig.
func Run(cl *cluster.Cluster, spec workload.Spec) (*Result, error) {
	return RunConfig(cl, spec, Config{})
}

// RunConfig executes the workload on the live runtime: min(TargetNu,
// writers) writer goroutines and every reader goroutine issue operations
// from shared budgets until the spec's counts are exhausted, one operation
// in flight per client. Fault plans run in full — drop/delay rules, outage
// windows and scheduled crash/recovery, the step-indexed ones mapped onto
// wall time by the runtime's faults.WallClock. The spec's random Crashes
// budget remains genuinely unsupported (it draws crash points from the
// simulator's schedule, which does not exist here) and is rejected with
// faults.ErrUnsupported.
func RunConfig(cl *cluster.Cluster, spec workload.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(cl); err != nil {
		return nil, err
	}
	if spec.Crashes != 0 {
		return nil, fmt.Errorf("live: %w: the random crash budget draws crash points from the simulator's schedule; schedule crashes via the fault plan instead (got Crashes=%d)",
			faults.ErrUnsupported, spec.Crashes)
	}
	if spec.Reads > 0 && len(cl.Readers) == 0 {
		return nil, fmt.Errorf("live: %d reads requested but the cluster has no readers", spec.Reads)
	}
	// Clients must actually be client automata; the cluster helper checks
	// the registered originals, which the runtime clones.
	for _, id := range append(append([]ioa.NodeID(nil), cl.Writers...), cl.Readers...) {
		if _, err := cl.ClientAutomaton(id); err != nil {
			return nil, err
		}
	}
	rt, err := newRuntime(cl, spec.FaultPlan, cfg)
	if err != nil {
		return nil, err
	}
	rt.start()
	stopTelemetry := rt.startTelemetry(cl, spec)

	// The windowed flight driver is shared with the net runtime
	// (workload.RunFlights); this runtime contributes the async invoke and
	// the telemetry hooks.
	onSubmit, observe := cfg.Telemetry.OpObserver()
	fres := workload.RunFlights(cl, spec, workload.FlightConfig{
		Pipeline:  cfg.Pipeline,
		SyncOps:   cfg.SyncOps,
		OpTimeout: cfg.OpTimeout,
		Invoke: func(client ioa.NodeID, inv ioa.Invocation) workload.Flight {
			return rt.invokeAsync(client, inv)
		},
		OnSubmit: onSubmit,
		Observe:  observe,
	})
	rt.stop()
	stopTelemetry()

	res := &Result{
		PeakActiveWrites: fres.PeakActiveWrites,
		Log2V:            float64(8 * spec.ValueBytes),
		Faults:           rt.faultStats(),
		Elapsed:          fres.Elapsed,
		Latencies:        fres.Latencies,
	}
	res.CompletedOps = len(res.Latencies)
	if secs := fres.Elapsed.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.CompletedOps) / secs
	}

	if rt.feed != nil {
		// Streaming mode: the sink has already absorbed every settled op in
		// invocation order; all that remains here is the pending tail, which
		// Flush settles as abandoned and reports. Result.History carries just
		// those pending ops, so the pending/quiescent accounting below is
		// unchanged while run memory stays bounded by the sink, not the run.
		pend, ferr := rt.feed.Flush()
		if ferr != nil {
			return nil, fmt.Errorf("live: history sink: %w", ferr)
		}
		if res.History, err = ioa.HistoryFromOps(pend); err != nil {
			return nil, err
		}
	} else if res.History, err = rt.mergeHistory(cl); err != nil {
		return nil, err
	}
	res.PendingOps = len(res.History.PendingOps())
	if res.PendingOps > 0 {
		if spec.FaultPlan == nil {
			return nil, fmt.Errorf("live: %d operations timed out with no fault plan installed", res.PendingOps)
		}
		res.Quiescent = true
	}
	res.Storage = rt.storageReport(cl)
	res.NormalizedTotal = float64(res.Storage.MaxTotalBits) / res.Log2V
	return res, nil
}

// mergeHistory folds the per-client logs into one ioa.History ordered by the
// runtime clock.
func (rt *runtime) mergeHistory(cl *cluster.Cluster) (*ioa.History, error) {
	var ops []ioa.Op
	for _, ids := range [][]ioa.NodeID{cl.Writers, cl.Readers} {
		for _, id := range ids {
			ns := rt.nodes[id]
			for _, rec := range ns.log {
				op := ioa.Op{
					Client:      id,
					Kind:        rec.kind,
					Input:       rec.input,
					Output:      rec.output,
					InvokeStep:  int(rec.invokeTS),
					RespondStep: -1,
				}
				if rec.respondTS >= 0 {
					op.RespondStep = int(rec.respondTS)
				}
				ops = append(ops, op)
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].InvokeStep < ops[j].InvokeStep })
	return ioa.HistoryFromOps(ops)
}

// storageReport sums the per-server maxima observed by the node goroutines.
// It keys on the construction-time metered flag, not ns.meter: the meter is
// rewritten by crash recovery on the scheduler goroutine, while the bit
// counts live in atomics that any goroutine may read mid-run.
func (rt *runtime) storageReport(cl *cluster.Cluster) ioa.StorageReport {
	rep := ioa.StorageReport{PerServerMaxBits: make(map[ioa.NodeID]int, len(cl.Servers))}
	for _, id := range cl.Servers {
		ns := rt.nodes[id]
		if ns == nil || !ns.metered {
			continue
		}
		maxBits := int(ns.maxBits.Load())
		rep.PerServerMaxBits[id] = maxBits
		rep.MaxTotalBits += maxBits
		rep.CurrentTotalBits += int(ns.curBits.Load())
		if maxBits > rep.MaxServerBits {
			rep.MaxServerBits = maxBits
		}
	}
	return rep
}
