// Package shmem is the public API of this reproduction of
//
//	Cadambe, Wang, Lynch — "Information-Theoretic Lower Bounds on the
//	Storage Cost of Shared Memory Emulation" (PODC 2016,
//	arXiv:1605.06844).
//
// The center of the API is the handle: Open deploys a sharded register
// store on either execution backend and returns a Store whose methods cover
// the whole lifecycle —
//
//	st, err := shmem.Open(shmem.Config{}, shmem.WithShards(4))
//	defer st.Close()
//	st.Put(ctx, key, value)        // interactive, context-aware client ops
//	st.Get(ctx, key)               // routed to the key's shard
//	st.RunMulti(multiSpec)         // batch experiments on fresh clusters
//	st.Metrics()                   // storage reports, fault stats, latencies
//	st.CheckConsistency()          // verdict over the interactive history
//
// Around the handle, the package bundles:
//
//   - deployments of the register-emulation algorithms the paper reasons
//     about (ABD replication, CAS/CASGC erasure-coded atomic storage, and
//     two erasure-coded SWSR regular registers),
//   - the paper's storage-cost lower bounds (Theorems B.1, 4.1, 5.1, 6.5
//     and their corollaries) in exact and normalized form, plus the
//     Figure 1 series generator,
//   - seeded workload execution with storage metering and consistency
//     checking (atomicity, regularity, weak regularity), and
//   - the executable-proof experiments: critical-point/valency analysis and
//     the injectivity counting arguments run against live algorithm code.
//
// See the examples directory for runnable walkthroughs, MIGRATION.md for
// the mapping from the pre-Open free functions, and EXPERIMENTS.md for the
// paper-versus-measured record.
package shmem

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/abd"
	"repro/internal/adversary"
	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/coded"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/netrun"
	"repro/internal/register"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// --- the store handle ---

// Config names everything a Store needs: the algorithm mix, the per-shard
// cluster shape (n, f), the shard count, the execution backend, the fault
// scenarios, and the interactive tuning. The zero value opens a one-shard
// CAS store of 5 servers tolerating 1 crash on the simulator; functional
// options (WithBackend, WithShards, ...) adjust it from there.
type Config = session.Config

// Option adjusts a Config passed to Open.
type Option = session.Option

// Store is a handle over a sharded register store: interactive Put/Get
// routed to per-shard deployments, batch experiments, a unified metrics
// snapshot, and consistency checking over the interactive history — on
// either backend. Close releases it.
type Store = session.Store

// Metrics is a Store's unified snapshot: per-shard storage reports, fault
// stats, op counts and latency percentiles.
type Metrics = session.Metrics

// StoreShardMetrics is one shard's slice of a Metrics snapshot.
type StoreShardMetrics = session.ShardMetrics

// Open deploys the configured shards on the configured backend and returns
// the store handle. Configuration errors (unknown algorithm or backend,
// malformed or backend-unsupported fault specs, invalid client counts)
// surface here, not mid-operation.
func Open(cfg Config, opts ...Option) (*Store, error) { return session.Open(cfg, opts...) }

// WithBackend selects the execution backend: "sim" (the deterministic
// simulator, the default), "live" (the concurrent goroutine-per-node
// runtime) or "net" (the live runtime's real-network sibling: every node
// owns a TCP socket and messages cross the loopback network). Unknown names
// fail Open with ErrUnknownBackend.
func WithBackend(name string) Option { return session.WithBackend(name) }

// WithTransport selects the net backend with every node endpoint listening
// on addrSpec — an address whose port part should stay 0 so each node gets
// its own ephemeral port (e.g. "127.0.0.1:0"; "" keeps that default). It
// implies WithBackend("net").
func WithTransport(addrSpec string) Option { return session.WithTransport(addrSpec) }

// WithNetConfig tunes the net runtime (listen address, step duration for
// fault delays and partitions, per-operation timeout, transport dial and
// queue bounds).
func WithNetConfig(nc NetConfig) Option { return session.WithNetConfig(nc) }

// WithShards sets the number of independent register shards keys are
// routed across.
func WithShards(n int) Option { return session.WithShards(n) }

// WithFaults assigns fault scenario specs (internal/faults grammar),
// cycled per shard.
func WithFaults(specs ...string) Option { return session.WithFaults(specs...) }

// WithLiveConfig tunes the live runtime (step duration, op timeout,
// mailbox capacity).
func WithLiveConfig(lc LiveConfig) Option { return session.WithLiveConfig(lc) }

// WithStepBudget bounds the deliveries each interactive simulator
// operation may consume (default DefaultStepBudget); exhausting it returns
// ErrStepBudget.
func WithStepBudget(n int) Option { return session.WithStepBudget(n) }

// WithClients sets the per-shard writer and reader client counts.
func WithClients(writers, readers int) Option { return session.WithClients(writers, readers) }

// WithSeed sets the fault and batch-workload seed.
func WithSeed(seed int64) Option { return session.WithSeed(seed) }

// WithWorkers bounds the worker pool batch runs (Store.RunMulti) use.
func WithWorkers(n int) Option { return session.WithWorkers(n) }

// WithPipeline sets the per-client operation pipeline depth the live and net
// batch drivers use: each driver keeps up to depth operations in flight at
// one client, with the node starting each only after its predecessor
// responds, so per-client program order is preserved. Ignored on the
// simulator and for interactive Put/Get.
func WithPipeline(depth int) Option { return session.WithPipeline(depth) }

// WithSkipCheck disables batch runs' per-shard consistency checking — needed
// for high-concurrency throughput sweeps, where the checkers' worst-case
// exponential cost in write concurrency is unaffordable. Interactive
// CheckConsistency is unaffected.
func WithSkipCheck() Option { return session.WithSkipCheck() }

// WithOnlineCheck streams every settled operation into a windowed online
// atomicity checker as the store runs, instead of accumulating the full
// history for one offline check: provably-linearized prefixes are retired
// on the fly, memory stays bounded by the window, CheckConsistency reads
// off the standing verdict, and Metrics reports the verified frontier
// (OpsVerified, WindowLag). Applies to interactive atomic-condition shards
// and, through Store.RunMulti, to batch runs on the live and net backends
// (the simulator's complete histories get the equivalent parallel windowed
// batch check). Regular-condition shards keep the offline checker.
func WithOnlineCheck() Option { return session.WithOnlineCheck() }

// WithOnlineWindow sets the online checker's retirement window in
// operations (0 keeps the DefaultOnlineWindow).
func WithOnlineWindow(n int) Option { return session.WithOnlineWindow(n) }

// WithHistoryCap bounds the interactive history a batch-history shard
// retains (0 keeps DefaultHistoryCap); at the cap further operations fail
// with ErrHistoryFull. Online-checked shards reclaim retired prefixes, so
// the cap binds only their unretired residue.
func WithHistoryCap(n int) Option { return session.WithHistoryCap(n) }

// Telemetry is a metrics registry: lock-free counters, gauges and latency
// histograms the store's runtimes publish into when the registry is wired
// through WithTelemetry — per-node storage-bit gauges compared live against
// the paper bounds (Theorems 4.1 and 5.1), op-latency histograms, transport
// frame/batch counters and online-checker lag, each labelled by shard.
// Scrape it over HTTP with ServeTelemetry or dump it directly with
// WritePrometheus.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty metrics registry ready for WithTelemetry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// WithTelemetry publishes the store's runtime metrics into reg on the live
// and net backends (the simulator is not instrumented). Nil disables
// instrumentation at zero cost — uninstrumented runs stay on the exact
// pre-telemetry code paths.
func WithTelemetry(reg *Telemetry) Option { return session.WithTelemetry(reg) }

// TelemetryServer is a running telemetry HTTP endpoint; Close releases it.
type TelemetryServer = telemetry.Server

// ServeTelemetry starts an HTTP server on addr exposing reg as
// Prometheus-text /metrics, sampled op-lifecycle traces as JSON /trace, and
// the standard pprof profiles under /debug/pprof/. Use addr ":0" (or
// "127.0.0.1:0") for an ephemeral port; the server's Addr reports the bound
// address.
func ServeTelemetry(addr string, reg *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg)
}

// DefaultOnlineWindow is the online checker's retirement window when none
// is configured.
const DefaultOnlineWindow = consistency.DefaultWindowOps

// DefaultHistoryCap is the retained interactive history bound a
// batch-history shard gets when WithHistoryCap is not used.
const DefaultHistoryCap = session.DefaultHistoryCap

// ErrHistoryFull reports an interactive operation refused because its
// shard's retained history reached the cap (WithHistoryCap); the operation
// never started. Branch with errors.Is.
var ErrHistoryFull = session.ErrHistoryFull

// DefaultStepBudget is the delivery budget an interactive simulator
// operation (or a workload run without MaxSteps) gets when no explicit
// budget is configured.
const DefaultStepBudget = workload.DefaultStepBudget

// ErrStepBudget reports that an interactive simulator operation exhausted
// its delivery budget before completing; widen it with WithStepBudget.
var ErrStepBudget = store.ErrStepBudget

// ErrUnknownBackend reports a backend selector naming no registered backend.
// Every selection surface — Open, WithBackend, StoreOptions.Backend, the CLI
// -backend flags — wraps it, so callers branch with errors.Is; the message
// lists the valid names (StoreBackends).
var ErrUnknownBackend = store.ErrUnknownBackend

// Re-exported foundation types.
type (
	// Cluster is a deployed register emulation: a simulated system plus
	// node roles.
	Cluster = cluster.Cluster
	// Params is a system configuration (N servers, f tolerated failures).
	Params = core.Params
	// WorkloadSpec describes a seeded workload (writes, reads, target
	// write-concurrency ν, value size, crashes).
	WorkloadSpec = workload.Spec
	// WorkloadResult carries the history, the storage report and the
	// normalized total cost of a run.
	WorkloadResult = workload.Result
	// MultiWorkloadSpec describes a seeded multi-key workload (keyspace
	// size, Zipf/uniform key skew, per-key read/write mix, per-shard ν).
	MultiWorkloadSpec = workload.MultiSpec
	// StoreOptions configures a sharded multi-register store run.
	StoreOptions = store.Options
	// StoreResult aggregates the per-shard storage reports and consistency
	// verdicts of a sharded store run.
	StoreResult = store.Result
	// ShardResult is one shard's slice of a StoreResult.
	ShardResult = store.ShardResult
	// Figure1Row is one ν-position of the Figure 1 series.
	Figure1Row = core.Figure1Row
	// FaultPlan is a deterministic, seeded fault schedule: message drops,
	// bounded delays (which reorder links), link outages/partitions and
	// scheduled server crashes/recoveries. Install one via
	// WorkloadSpec.FaultPlan or per shard via MultiWorkloadSpec.Faults.
	FaultPlan = faults.Plan
	// FaultScenario is a named, parameterized recipe that expands into a
	// FaultPlan for an (n, f) deployment.
	FaultScenario = faults.Scenario
	// FaultStats aggregates an execution's injected fault events.
	FaultStats = ioa.FaultStats
	// FaultRecord is one injected fault event as recorded in a History.
	FaultRecord = ioa.FaultRecord
	// StorageReport is the kernel's running-maximum storage accounting.
	StorageReport = ioa.StorageReport
	// History is an execution's operation history.
	History = ioa.History
	// Invocation starts an operation at a client.
	Invocation = ioa.Invocation
	// NodeID identifies a node.
	NodeID = ioa.NodeID
)

// Operation kinds for Invocation.
const (
	OpRead  = ioa.OpRead
	OpWrite = ioa.OpWrite
)

// DeployABD builds an ABD replication register: n servers tolerating f
// crashes, with the given writer and reader clients. multiWriter selects the
// two-phase MWMR write protocol.
//
// Deprecated: use Open with Config.Algorithms "abd" / "abd-mwmr" for store
// handles; the builder helpers (ABDBuilder) remain for the executable
// proofs.
func DeployABD(n, f, writers, readers int, multiWriter bool) (*Cluster, error) {
	return abd.Deploy(abd.Options{Servers: n, F: f, Writers: writers, Readers: readers, MultiWriter: multiWriter})
}

// DeployCAS builds a Coded Atomic Storage register with code dimension
// k = n-2f. gcDepth < 0 disables garbage collection (plain CAS); gcDepth = δ
// keeps the δ+1 newest finalized versions (CASGC).
//
// Deprecated: use Open with Config.Algorithms "cas" / "casgc" for store
// handles; the builder helpers (CASBuilder) remain for the executable
// proofs.
func DeployCAS(n, f, gcDepth, writers, readers int) (*Cluster, error) {
	return cas.Deploy(cas.Options{Servers: n, F: f, GCDepth: gcDepth, Writers: writers, Readers: readers})
}

// DeployTwoVersion builds the bounded-storage erasure-coded SWSR regular
// register (two coded versions per server, k = n-2f) — the algorithm class
// of Theorems 4.1/5.1.
func DeployTwoVersion(n, f, readers int) (*Cluster, error) {
	return coded.Deploy(coded.Options{Servers: n, F: f, Readers: readers})
}

// DeployTwoVersionGossip builds the gossiping variant of the two-version
// register: servers spread finalization notes to their peers, placing the
// algorithm in the universal (gossip-allowed) class of Theorem 5.1.
func DeployTwoVersionGossip(n, f, readers int) (*Cluster, error) {
	return coded.DeployGossip(coded.Options{Servers: n, F: f, Readers: readers})
}

// DeploySolo builds the single-version k = n-f register that meets the
// Theorem B.1 (Singleton) bound with equality but only tolerates failures
// that precede the written value (see package coded for the discussion).
func DeploySolo(n, f, readers int) (*Cluster, error) {
	return coded.DeploySolo(coded.SoloOptions{Servers: n, F: f, Readers: readers})
}

// RunWorkload drives the cluster through the seeded workload, metering
// storage.
//
// Deprecated: use Store.RunWorkload on an Open handle, which deploys the
// cluster itself and runs on any backend (see MIGRATION.md).
//
// This is a pure forwarder to the internal workload engine, kept only for
// compatibility — in the style of a //go:fix inline forwarder, calls should
// be replaced by their handle-based equivalent rather than new ones written.
func RunWorkload(cl *Cluster, spec WorkloadSpec) (*WorkloadResult, error) {
	return workload.Run(cl, spec)
}

// RunStore partitions a multi-key workload across many independent register
// deployments (one per shard, any mix of algorithms), runs them in parallel
// on a worker pool with deterministic per-shard seeds, and aggregates the
// per-shard storage reports and consistency verdicts. Results are
// byte-identical across runs regardless of the worker count.
//
// Deprecated: use Store.RunMulti on an Open handle, which carries the
// algorithm mix, backend and fault scenarios in its Config (see
// MIGRATION.md).
//
// This is a pure forwarder to the internal store engine, kept only for
// compatibility — in the style of a //go:fix inline forwarder, calls should
// be replaced by their handle-based equivalent rather than new ones written.
func RunStore(opts StoreOptions) (*StoreResult, error) {
	return store.Run(opts)
}

// DeployAlgorithm builds a fresh cluster for the named algorithm ("abd",
// "abd-mwmr", "cas", "casgc", "twoversion", "twoversion-gossip" or "solo")
// sized for write concurrency nu, and returns the consistency condition the
// algorithm guarantees ("atomic" or "regular").
//
// Deprecated: Open deploys the named algorithms itself (Config.Algorithms).
func DeployAlgorithm(alg string, n, f, nu int) (*Cluster, string, error) {
	return store.DeployAlgorithm(alg, n, f, nu)
}

// DeployAlgorithmSized builds a cluster for the named algorithm with
// explicit writer and reader counts — how the live load generator scales
// client concurrency. Single-writer algorithms reject writers != 1.
//
// Deprecated: Open deploys sized clusters itself (WithClients).
func DeployAlgorithmSized(alg string, n, f, writers, readers int) (*Cluster, string, error) {
	return store.DeployAlgorithmSized(alg, n, f, writers, readers)
}

// StoreAlgorithms lists the algorithm names DeployAlgorithm accepts.
func StoreAlgorithms() []string { return store.Algorithms() }

// StoreBackends lists the execution backends StoreOptions.Backend accepts:
// "sim" (the deterministic simulator, the default), "live" (the concurrent
// goroutine-per-node runtime) and "net" (one real TCP socket per node over
// the loopback network).
func StoreBackends() []string { return store.Backends() }

// LiveConfig tunes the live concurrent runtime (step duration for fault
// delays, per-operation timeout, mailbox capacity). The zero value selects
// the defaults.
type LiveConfig = live.Config

// NetConfig tunes the real-network runtime behind the "net" backend: the
// listen address spec (ephemeral loopback ports by default), the step
// duration mapping fault delays and partition windows to wall time, the
// per-operation timeout, and the transport's dial timeout and per-connection
// send queue capacity. The zero value selects the defaults.
type NetConfig = netrun.Config

// LiveResult reports a live run: safety fields mirror WorkloadResult, plus
// wall-clock throughput and per-operation latencies.
type LiveResult = live.Result

// RunLiveWorkload executes the workload on the live concurrent runtime:
// every node automaton on its own goroutine, messages over channels, fault
// drop/delay rules applied in wall-clock time. The simulator remains the
// determinism oracle; live histories vary run to run and are checked for
// safety only.
//
// Deprecated: use Store.RunWorkload on a handle opened with
// WithBackend("live") — or WithBackend("net") for real sockets; latencies
// now travel on WorkloadResult.Latencies (see MIGRATION.md).
//
// This is a pure forwarder to the internal live runtime, kept only for
// compatibility — in the style of a //go:fix inline forwarder, calls should
// be replaced by their handle-based equivalent rather than new ones written.
func RunLiveWorkload(cl *Cluster, spec WorkloadSpec, cfg LiveConfig) (*LiveResult, error) {
	return live.RunConfig(cl, spec, cfg)
}

// LatencyPercentile returns the p-th percentile (0 < p <= 1) of the given
// latencies, nearest-rank.
func LatencyPercentile(ds []time.Duration, p float64) time.Duration {
	return live.Percentile(ds, p)
}

// ParseFaultScenario parses a fault scenario spec — "crash-f[@STEP[:RECOVER]]",
// "crash-majority[@STEP[:RECOVER]]", "partition@START:HEAL[:ISOLATE]",
// "lossy=PROB", "delay=MIN:MAX", combinable with "+" — into a FaultScenario.
// "" and "none" parse to nil (no faults).
func ParseFaultScenario(spec string) (FaultScenario, error) { return faults.Parse(spec) }

// BuildFaultPlan parses a scenario spec and expands it into a concrete plan
// for an (n, f) deployment. It returns nil for "" and "none".
func BuildFaultPlan(spec string, n, f int, seed int64) (*FaultPlan, error) {
	sc, err := faults.Parse(spec)
	if err != nil || sc == nil {
		return nil, err
	}
	return sc.Build(n, f, seed)
}

// FaultScenarioLibrary returns the standard scenario grid: quorum-preserving
// crash of f, quorum-killing crash of f+1, healing partition, lossy links
// and delay/reorder.
func FaultScenarioLibrary() []FaultScenario { return faults.Library() }

// FaultScenarioUsage describes the scenario spec grammar, for CLI help.
func FaultScenarioUsage() string { return faults.Usage() }

// Write performs one write operation to completion under a fair schedule,
// with a DefaultStepBudget delivery budget (ErrStepBudget when exhausted).
//
// Deprecated: open a handle with Open and use Store.Put, which works on
// every backend and takes a context; WithStepBudget replaces the fixed
// budget (see MIGRATION.md). This forwarder is simulator-only and kept for
// compatibility; replace calls rather than writing new ones.
func Write(cl *Cluster, writer int, value []byte) error {
	if writer < 0 || writer >= len(cl.Writers) {
		return fmt.Errorf("shmem: writer index %d out of range [0,%d)", writer, len(cl.Writers))
	}
	_, err := runClusterOp(cl, cl.Writers[writer], ioa.Invocation{Kind: ioa.OpWrite, Value: value}, DefaultStepBudget)
	return err
}

// Read performs one read operation to completion under a fair schedule and
// returns the value, with a DefaultStepBudget delivery budget
// (ErrStepBudget when exhausted).
//
// Deprecated: open a handle with Open and use Store.Get, which works on
// every backend and takes a context; WithStepBudget replaces the fixed
// budget (see MIGRATION.md). This forwarder is simulator-only and kept for
// compatibility; replace calls rather than writing new ones.
func Read(cl *Cluster, reader int) ([]byte, error) {
	if reader < 0 || reader >= len(cl.Readers) {
		return nil, fmt.Errorf("shmem: reader index %d out of range [0,%d)", reader, len(cl.Readers))
	}
	return runClusterOp(cl, cl.Readers[reader], ioa.Invocation{Kind: ioa.OpRead}, DefaultStepBudget)
}

// runClusterOp executes one operation under a fair schedule with the given
// delivery budget, mapping the kernel's bare step-limit sentinel to the
// typed ErrStepBudget.
func runClusterOp(cl *Cluster, client ioa.NodeID, inv ioa.Invocation, budget int) ([]byte, error) {
	op, err := cl.Sys.RunOp(client, inv, budget)
	if errors.Is(err, ioa.ErrStepLimit) {
		return nil, fmt.Errorf("shmem: %v at client %d: %w (budget %d deliveries)", inv.Kind, client, ErrStepBudget, budget)
	}
	if err != nil {
		return nil, err
	}
	return op.Output, nil
}

// MakeValue returns a deterministic pseudo-random value of the given size,
// unique per seed — writes in checked histories must have distinct values.
func MakeValue(size int, seed uint64) []byte { return register.MakeValue(size, seed) }

// CheckAtomic verifies linearizability of a history (unique write values).
func CheckAtomic(h *History, initial []byte) error { return consistency.CheckAtomic(h, initial) }

// CheckAtomicWindowed verifies linearizability by the clean-cut windowed
// decomposition the online checker uses, checking the cut segments in
// parallel — the batch face of the streaming checker, far faster than
// CheckAtomic on long low-concurrency histories. windowOps <= 0 selects
// DefaultOnlineWindow.
func CheckAtomicWindowed(h *History, initial []byte, windowOps int) error {
	return consistency.CheckWindowed(h, initial, windowOps)
}

// OnlineChecker is the streaming linearizability checker behind
// WithOnlineCheck: feed it operations in invocation order with Observe and
// it retires provably-linearized prefixes as they form, keeping memory
// bounded by the window. NewOnlineChecker builds one for direct use over
// histories produced outside a Store.
type OnlineChecker = consistency.OnlineChecker

// NewOnlineChecker returns a streaming linearizability checker for a
// register with the given initial value (nil for a fresh register).
// windowOps <= 0 selects DefaultOnlineWindow.
func NewOnlineChecker(initial []byte, windowOps int) *OnlineChecker {
	return consistency.NewOnlineChecker(initial, consistency.WithWindowOps(windowOps))
}

// CheckRegular verifies single-writer regularity of a history.
func CheckRegular(h *History, initial []byte) error { return consistency.CheckRegular(h, initial) }

// CheckWeaklyRegular verifies the multi-writer weak regularity of Section
// 6.2.
func CheckWeaklyRegular(h *History, initial []byte) error {
	return consistency.CheckWeaklyRegular(h, initial)
}

// --- bounds ---

// SingletonTotalBits returns the Theorem B.1 / Corollary B.2 total-storage
// bound in bits.
func SingletonTotalBits(p Params, log2V float64) float64 { return core.SingletonTotalBits(p, log2V) }

// Theorem41TotalBits returns the Corollary 4.2 total-storage bound in bits.
func Theorem41TotalBits(p Params, log2V float64) float64 { return core.Theorem41TotalBits(p, log2V) }

// Theorem51TotalBits returns the Corollary 5.2 total-storage bound in bits.
func Theorem51TotalBits(p Params, log2V float64) float64 { return core.Theorem51TotalBits(p, log2V) }

// Theorem65TotalBits returns the Corollary 6.6 total-storage bound in bits
// at write concurrency nu.
func Theorem65TotalBits(p Params, nu int, log2V float64) float64 {
	return core.Theorem65TotalBits(p, nu, log2V)
}

// Figure1 regenerates the paper's Figure 1 series for ν = 0..maxNu.
func Figure1(p Params, maxNu int) ([]Figure1Row, error) { return core.Figure1(p, maxNu) }

// Figure1Table formats Figure 1 rows as a text table.
func Figure1Table(p Params, rows []Figure1Row) string { return core.Figure1Table(p, rows) }

// ReplicationCrossoverNu returns the write concurrency at which replication
// overtakes erasure coding (Section 2.3).
func ReplicationCrossoverNu(p Params) int { return core.ReplicationCrossoverNu(p) }

// Section7Summary evaluates the paper's concluding feasibility summary for
// a normalized cost g at concurrency nu.
func Section7Summary(p Params, nu int, g float64) core.Section7Conclusion {
	return core.Section7Summary(p, nu, g)
}

// --- executable proofs ---

// ProofConfig parameterizes the executable-proof experiments.
type ProofConfig = adversary.Config

// Theorem41Result reports the executable Theorem 4.1 proof outcome.
type Theorem41Result = adversary.Theorem41Result

// AppendixBResult reports the executable Theorem B.1 proof outcome.
type AppendixBResult = adversary.AppendixBResult

// Theorem65Result reports the executable Theorem 6.5 experiment outcome.
type Theorem65Result = adversary.Theorem65Result

// TwoVersionBuilder returns a cluster.Builder for the two-version coded
// register, for use with ProofConfig.
func TwoVersionBuilder(n, f int) cluster.Builder {
	return func() (*Cluster, error) {
		return DeployTwoVersion(n, f, 1)
	}
}

// ABDBuilder returns a cluster.Builder for the SWMR ABD register.
func ABDBuilder(n, f int) cluster.Builder {
	return func() (*Cluster, error) {
		return DeployABD(n, f, 1, 1, false)
	}
}

// CASBuilder returns a cluster.Builder for a plain CAS register with the
// given number of writers.
func CASBuilder(n, f, writers int) cluster.Builder {
	return func() (*Cluster, error) {
		return DeployCAS(n, f, -1, writers, 1)
	}
}
