package shmem

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ioa"
)

// storageMaxRe matches one shmem_storage_max_bits sample line; labels are
// emitted sorted by key, so node precedes shard.
var storageMaxRe = regexp.MustCompile(`^shmem_storage_max_bits\{node="(\d+)",shard="(\d+)"\} (\S+)$`)

// TestTelemetryScrapeDuringLiveRun wires a registry into a live store, runs
// a batch workload while repeatedly scraping the HTTP endpoint, and checks
// the central telemetry invariant: a sampled storage gauge can never exceed
// the final ioa watermark for its node (the gauges read the same monotone
// maxBits atomics the post-run storage report folds). It also asserts the
// paper-bound gauges and latency histograms are present in the exposition —
// the live bound comparison the subsystem exists for.
func TestTelemetryScrapeDuringLiveRun(t *testing.T) {
	reg := NewTelemetry()
	srv, err := ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st, err := Open(Config{
		Algorithms: []string{"cas"},
		Servers:    5,
		F:          1,
		Shards:     2,
	}, WithBackend("live"), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	type runOut struct {
		res *StoreResult
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := st.RunMulti(MultiWorkloadSpec{
			Seed: 3, Keys: 16, Ops: 600, ReadFraction: 0.3, TargetNu: 2, ValueBytes: 64,
		})
		done <- runOut{res, err}
	}()

	// Scrape continuously while the run executes, retaining the largest
	// gauge value ever observed per (shard, node) series.
	observed := map[[2]int]float64{} // [shard, node] -> max gauge seen
	var lastBody string
	scrape := func() {
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("scrape content-type = %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("scrape read: %v", err)
		}
		lastBody = string(b)
		for _, line := range strings.Split(lastBody, "\n") {
			m := storageMaxRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			node, _ := strconv.Atoi(m[1])
			shard, _ := strconv.Atoi(m[2])
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad gauge value in %q: %v", line, err)
			}
			key := [2]int{shard, node}
			if old, ok := observed[key]; !ok || v > old {
				observed[key] = v
			}
		}
	}

	var out runOut
	deadline := time.After(2 * time.Minute)
	for running := true; running; {
		select {
		case out = <-done:
			running = false
		case <-deadline:
			t.Fatal("RunMulti did not finish within 2 minutes")
		default:
			scrape()
			time.Sleep(2 * time.Millisecond)
		}
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	scrape() // final: the stopped samplers have published the settled watermarks

	if len(observed) == 0 {
		t.Fatal("no shmem_storage_max_bits series ever appeared in /metrics")
	}
	for key, v := range observed {
		shard, node := key[0], key[1]
		if shard >= len(out.res.PerShard) {
			t.Fatalf("gauge for unknown shard %d", shard)
		}
		watermark, ok := out.res.PerShard[shard].Storage.PerServerMaxBits[ioa.NodeID(node)]
		if !ok {
			t.Fatalf("gauge for shard %d node %d, but the storage report has no such server", shard, node)
		}
		if v > float64(watermark) {
			t.Errorf("shard %d node %d: sampled max gauge %v exceeds the ioa watermark %d", shard, node, v, watermark)
		}
	}

	for _, want := range []string{
		`shmem_storage_bound_bits{shard="0",theorem="4.1"}`,
		`shmem_storage_bound_bits{shard="0",theorem="5.1"}`,
		`shmem_storage_bound_bits{shard="1",theorem="4.1"}`,
		"# TYPE shmem_storage_max_bits gauge",
		"# TYPE shmem_op_latency_seconds histogram",
		"shmem_op_latency_seconds_bucket",
		`shmem_ops_completed_total{kind="write",shard="0"}`,
	} {
		if !strings.Contains(lastBody, want) {
			t.Errorf("final scrape is missing %q", want)
		}
	}
}
