// Fault-scenario walkthrough: the paper's algorithms are all stated against
// failures — ABD tolerates f of n = 2f+1 crashed replicas, CAS tolerates f
// crashed coded servers — and this example makes those claims executable.
// It drives one ABD register through four seeded fault scenarios:
//
//  1. crash-f: exactly f servers crash — every operation still completes
//     and the history is atomic (the tolerance the algorithm promises);
//  2. crash-majority: f+1 servers crash — no majority quorum survives, so
//     the run goes quiescent (liveness lost), yet the operations that did
//     complete still form an atomic history (safety kept);
//  3. partition@…: a quorum-killing partition opens, stalls the run, then
//     heals — the held messages flow and everything completes atomically;
//  4. a lossy-link sweep: rising drop probabilities cost more and more
//     liveness but never safety.
//
// Every fault decision hashes (seed, message sequence), so each scenario
// replays byte-identically: the printed fault-event counts are data, not
// accidents of timing.
package main

import (
	"fmt"
	"log"

	shmem "repro"
)

const (
	servers = 3
	f       = 1
)

// runScenario executes a fixed ABD workload under the given fault spec: a
// store handle opened with the scenario runs it as a batch experiment (the
// plan is built from the handle's seed, so every scenario replays
// byte-identically).
func runScenario(spec string) (*shmem.WorkloadResult, error) {
	st, err := shmem.Open(shmem.Config{
		Algorithms: []string{"abd"},
		Servers:    servers,
		F:          f,
		Readers:    2,
	}, shmem.WithFaults(spec), shmem.WithSeed(7))
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.RunWorkload(shmem.WorkloadSpec{
		Seed: 11, Writes: 5, Reads: 5, TargetNu: 1, ValueBytes: 64,
	})
}

func report(title, spec string) *shmem.WorkloadResult {
	res, err := runScenario(spec)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	verdict := "all operations completed"
	if res.Quiescent {
		verdict = fmt.Sprintf("QUIESCENT with %d operations stuck pending", len(res.History.PendingOps()))
	}
	atomic := "atomic"
	if err := shmem.CheckAtomic(res.History, nil); err != nil {
		atomic = "VIOLATED: " + err.Error()
	}
	fmt.Printf("%-28s %s\n", title, verdict)
	fmt.Printf("%-28s faults: %d drops, %d delayed, %d crashes, %d recoveries; consistency: %s\n\n",
		"", res.Faults.Drops, res.Faults.DelayedMessages, res.Faults.Crashes,
		res.Faults.Recoveries, atomic)
	return res
}

func main() {
	fmt.Printf("ABD register, n = %d servers, f = %d (majority quorums of %d)\n\n",
		servers, f, servers/2+1)

	report("baseline (no faults):", "none")
	report("crash f servers:", "crash-f@0")
	r := report("crash f+1 servers:", "crash-majority@0")
	if !r.Quiescent {
		log.Fatal("expected liveness loss with f+1 crashed servers")
	}
	report("partition, then heal:", "partition@30:5000")
	report("crash f, then recover:", "crash-f@10:600")

	fmt.Println("lossy-link sweep (drop probability vs verdict):")
	fmt.Printf("  %-8s %-6s %-9s %-10s\n", "p", "drops", "verdict", "atomic?")
	for _, spec := range []string{"lossy=0.01", "lossy=0.05", "lossy=0.15", "lossy=0.3"} {
		res, err := runScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ok"
		if res.Quiescent {
			verdict = "quiescent"
		}
		atomic := "yes"
		if err := shmem.CheckAtomic(res.History, nil); err != nil {
			atomic = "NO"
		}
		fmt.Printf("  %-8s %-6d %-9s %-10s\n", spec[len("lossy="):], res.Faults.Drops, verdict, atomic)
	}
	fmt.Println("\nloss costs liveness at high p — never atomicity: exactly the asymmetry")
	fmt.Println("between the paper's safety proofs and its f-bounded liveness assumptions.")
}
