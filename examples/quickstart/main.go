// Quickstart: open an atomic shared-memory store — five simulated
// asynchronous servers per shard running the ABD algorithm, two shards
// serving a small keyspace — write and read interactively, and verify the
// resulting history is linearizable.
package main

import (
	"context"
	"fmt"
	"log"

	shmem "repro"
)

func main() {
	// One handle covers deployment, client operations, metrics and
	// checking. The zero Config is a one-shard CAS store on the simulator;
	// options adjust it.
	st, err := shmem.Open(shmem.Config{
		Algorithms: []string{"abd"},
		Servers:    5,
		F:          2,
	}, shmem.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Write values under two keys and read them back. Keys are routed to
	// shards by a mixing hash; each shard is an independent register
	// emulation.
	ctx := context.Background()
	if err := st.Put(ctx, 1, []byte("hello, shared memory")); err != nil {
		log.Fatal(err)
	}
	if err := st.Put(ctx, 2, []byte("a second key, likely another shard")); err != nil {
		log.Fatal(err)
	}
	got, err := st.Get(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key 1 reads: %q\n", got)
	fmt.Printf("key 1 lives on shard %d, key 2 on shard %d\n", st.KeyShard(1), st.KeyShard(2))

	// The whole interactive history is atomic (linearizable), per shard.
	if err := st.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("interactive history is atomic")

	// Storage cost: ABD replicates, so each server holds one full value.
	m := st.Metrics()
	fmt.Printf("%d writes + %d reads; total storage high-water mark: %d bits\n",
		m.TotalWrites, m.TotalReads, m.AggregateMaxTotalBits)

	// The same handle runs batch experiments on fresh clusters.
	res, err := st.RunWorkload(shmem.WorkloadSpec{
		Seed: 1, Writes: 8, Reads: 8, TargetNu: 1, ValueBytes: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.CheckConsistency(st.Condition()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch experiment: %d ops, normalized storage %.2f (Theorem B.1 floor %.2f)\n",
		len(res.History.Ops), res.NormalizedTotal,
		shmem.SingletonTotalBits(shmem.Params{N: 5, F: 2}, res.Log2V)/res.Log2V)
}
