// Quickstart: emulate an atomic shared-memory register over five simulated
// asynchronous servers with the ABD algorithm, survive two server crashes,
// and verify the resulting history is linearizable.
package main

import (
	"fmt"
	"log"

	shmem "repro"
)

func main() {
	// Five servers tolerating f=2 crashes, one writer, one reader.
	cl, err := shmem.DeployABD(5, 2, 1, 1, false)
	if err != nil {
		log.Fatal(err)
	}

	// Write a value and read it back.
	v1 := []byte("hello, shared memory")
	if err := shmem.Write(cl, 0, v1); err != nil {
		log.Fatal(err)
	}
	got, err := shmem.Read(cl, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after write: %q\n", got)

	// Crash f servers; the register must stay live and consistent.
	cl.Sys.Crash(cl.Servers[0])
	cl.Sys.Crash(cl.Servers[3])
	v2 := []byte("still alive with f crashes")
	if err := shmem.Write(cl, 0, v2); err != nil {
		log.Fatal(err)
	}
	got, err = shmem.Read(cl, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after crashes: %q\n", got)

	// The whole history is atomic (linearizable).
	if err := shmem.CheckAtomic(cl.Sys.History(), nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("history is atomic")

	// Storage cost: ABD replicates, so each server holds one full value.
	rep := cl.Sys.Storage()
	fmt.Printf("total storage high-water mark: %d bits across %d servers\n",
		rep.MaxTotalBits, len(cl.Servers))
}
